// Scale-harness equivalence suite: seeded scenarios over every axis of
// the scale matrix — peer count, replica count, page size, Zipf skew,
// and live churn schedule (joins that trigger splits, group merges) —
// where the distributed result must equal the in-memory reference
// executor even when the churn lands between the pulls of an open
// stream. Plus the 1024-peer ranked-query bound: logarithmic message
// budget and completion far under the overlay's operation deadline.
package unistore_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"unistore"
	"unistore/internal/algebra"
	"unistore/internal/benchscen"
	"unistore/internal/workload"
)

// eqScale is one seeded scenario of the equivalence matrix.
type eqScale struct {
	parts    int     // key-space partitions
	replicas int     // replica-group size
	pageSize int     // paged-scan bound
	zipfS    float64 // dataset skew
	churn    string  // "", "join-split", "merge", "both"
	seed     int64
}

func (cs eqScale) name() string {
	churn := cs.churn
	if churn == "" {
		churn = "steady"
	}
	return fmt.Sprintf("n%d_r%d_pg%d_s%.1f_%s_seed%d",
		cs.parts, cs.replicas, cs.pageSize, cs.zipfS, churn, cs.seed)
}

// eqScaleSmall always runs — the deterministic tier-1 slice.
var eqScaleSmall = []eqScale{
	{parts: 16, replicas: 1, pageSize: 4, zipfS: 0.8, churn: "", seed: 101},
	{parts: 16, replicas: 2, pageSize: 4, zipfS: 1.1, churn: "join-split", seed: 102},
	{parts: 32, replicas: 2, pageSize: 8, zipfS: 1.1, churn: "merge", seed: 103},
	{parts: 32, replicas: 1, pageSize: 4, zipfS: 1.4, churn: "join-split", seed: 104},
	{parts: 16, replicas: 2, pageSize: 2, zipfS: 0.9, churn: "both", seed: 105},
}

// eqScaleLarge widens the matrix when the binary runs under -race —
// CI's race job sweeps it, tier-1 stays fast.
var eqScaleLarge = []eqScale{
	{parts: 64, replicas: 2, pageSize: 4, zipfS: 1.1, churn: "both", seed: 201},
	{parts: 64, replicas: 1, pageSize: 8, zipfS: 0.8, churn: "merge", seed: 202},
	{parts: 48, replicas: 3, pageSize: 4, zipfS: 1.2, churn: "join-split", seed: 203},
	{parts: 32, replicas: 2, pageSize: 2, zipfS: 1.4, churn: "both", seed: 204},
}

// mergeIdx picks a peer whose replica group can retire: a non-root
// partition that does not contain the query origin (peer 0).
func mergeIdx(c *unistore.Cluster) int {
	ps := c.Peers()
	for i := len(ps) - 1; i > 0; i-- {
		if !ps[i].Path().Equal(ps[0].Path()) && ps[i].Path().Len() > 0 {
			return i
		}
	}
	return -1
}

func runEqScale(t *testing.T, cs eqScale) {
	c := unistore.New(unistore.Config{
		Peers: cs.parts, Replicas: cs.replicas, Seed: cs.seed,
		PageSize: cs.pageSize, RangeShards: 4, ProbeParallelism: 2,
	})
	ds := workload.Generate(workload.Options{Seed: cs.seed + 1, Persons: 60, ZipfS: cs.zipfS})
	c.BulkInsert(ds.Triples...)
	c.Net().Settle()

	// A paged scan streams while the overlay churns between pulls.
	want := aggCanon(aggOracle(t, benchscen.ScanQuery, ds.Triples))
	st, err := c.QueryStreamFrom(context.Background(), 0, benchscen.ScanQuery)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer st.Close()
	var got []algebra.Binding
	pull := func(k int) bool {
		for i := 0; i < k; i++ {
			row, ok := st.Next()
			if !ok {
				return false
			}
			got = append(got, row)
		}
		return true
	}
	pull(3)
	if cs.churn == "join-split" || cs.churn == "both" {
		c.JoinPeer(1)
		if err := c.SplitGroup(1); err != nil {
			t.Fatalf("live split: %v", err)
		}
		pull(3)
	}
	if cs.churn == "merge" || cs.churn == "both" {
		idx := mergeIdx(c)
		if idx < 0 {
			t.Fatal("no mergeable partition")
		}
		if err := c.MergeGroup(idx); err != nil {
			t.Fatalf("live merge: %v", err)
		}
	}
	for pull(64) {
	}
	if diff := aggCanon(got); !reflect.DeepEqual(diff, want) {
		t.Fatalf("scan diverged from reference across churn %q:\ngot  %d rows %v\nwant %d rows %v",
			cs.churn, len(diff), diff, len(want), want)
	}

	// The post-churn overlay must still answer aggregates exactly.
	res, err := c.QueryFrom(0, benchscen.GroupByAggQuery)
	if err != nil {
		t.Fatalf("post-churn aggregate: %v", err)
	}
	want2 := aggCanon(aggOracle(t, benchscen.GroupByAggQuery, ds.Triples))
	if got2 := aggCanon(res.Bindings); !reflect.DeepEqual(got2, want2) {
		t.Fatalf("post-churn aggregate diverged:\ngot  %v\nwant %v", got2, want2)
	}
}

func TestScaleEquivalenceMatrix(t *testing.T) {
	cases := eqScaleSmall
	if raceEnabled {
		cases = append(append([]eqScale{}, eqScaleSmall...), eqScaleLarge...)
	}
	for _, cs := range cases {
		t.Run(cs.name(), func(t *testing.T) { runEqScale(t, cs) })
	}
}

// ranked1024MsgBudget bounds a cold ranked top-k on a 1024-peer
// overlay. Measured 55 messages (range shower over the name region
// plus per-shard cutoffs); the budget leaves ~35% headroom so a
// super-logarithmic regression fails while scheduling jitter passes.
const ranked1024MsgBudget = 75

// TestRanked1024PeersWithinBudget: the flagship scale point — a ranked
// query on 1024 peers must return the exact reference answer within a
// logarithmic-style message budget and complete in simulated seconds,
// far under the overlay's 2-minute operation deadline (no stall, no
// deadline rescue).
func TestRanked1024PeersWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-peer overlay build")
	}
	c := unistore.New(unistore.Config{
		Peers: 1024, Seed: 71, PageSize: benchscen.ScanPageSize,
		RangeShards: 8, ProbeParallelism: 2,
	})
	ds := workload.Generate(workload.Options{Seed: 72, Persons: 150})
	c.BulkInsert(ds.Triples...)
	c.Net().Settle()

	res, err := c.QueryFrom(0, benchscen.TopKQuery)
	if err != nil {
		t.Fatalf("ranked query: %v", err)
	}
	want := aggCanon(aggOracle(t, benchscen.TopKQuery, ds.Triples))
	if got := aggCanon(res.Bindings); !reflect.DeepEqual(got, want) {
		t.Fatalf("ranked result diverged at 1024 peers:\ngot  %v\nwant %v", got, want)
	}
	if res.Messages > ranked1024MsgBudget {
		t.Errorf("ranked query cost %d messages at 1024 peers, budget %d",
			res.Messages, ranked1024MsgBudget)
	}
	if res.Elapsed > 15*time.Second {
		t.Errorf("ranked query took %v simulated at 1024 peers — approaching the operation deadline", res.Elapsed)
	}
	t.Logf("1024 peers: %d msgs, %d hops, %v simulated", res.Messages, res.Hops, res.Elapsed)
}
