package unistore_test

import (
	"fmt"
	"sort"
	"testing"

	"unistore"
	"unistore/internal/workload"
)

// Repro: ranked top-k with the DEFAULT shard count (1) must still
// return the globally best rows even though entries within one shower
// arrive in peer-arrival order, not key order.
func TestZZRankedTopKCorrectDefaultShards(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := unistore.New(unistore.Config{Peers: 64, Seed: seed})
		ds := workload.Generate(workload.Options{Seed: seed + 100, Persons: 150})
		c.BulkInsert(ds.Triples...)
		c.Net().Settle()

		full, err := c.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n`)
		if err != nil {
			t.Fatal(err)
		}
		c.Net().Settle()
		want := make([]string, 0, 5)
		for i := 0; i < 5 && i < len(full.Bindings); i++ {
			want = append(want, full.Bindings[i]["n"].Lexical())
		}

		res, err := c.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`)
		if err != nil {
			t.Fatal(err)
		}
		c.Net().Settle()
		got := make([]string, 0, len(res.Bindings))
		for _, b := range res.Bindings {
			got = append(got, b["n"].Lexical())
		}
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("seed %d: top-5 mismatch\n got %v\nwant %v", seed, got, want)
		}
	}
}

// Same but with 8 shards (the tested configuration) — a shard still
// spans several partitions.
func TestZZRankedTopKCorrectEightShards(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := unistore.New(unistore.Config{Peers: 64, Seed: seed, RangeShards: 8, ProbeParallelism: 2})
		ds := workload.Generate(workload.Options{Seed: seed + 100, Persons: 150})
		c.BulkInsert(ds.Triples...)
		c.Net().Settle()

		full, err := c.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n`)
		if err != nil {
			t.Fatal(err)
		}
		c.Net().Settle()
		want := make([]string, 0, 5)
		for i := 0; i < 5 && i < len(full.Bindings); i++ {
			want = append(want, full.Bindings[i]["n"].Lexical())
		}

		res, err := c.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`)
		if err != nil {
			t.Fatal(err)
		}
		c.Net().Settle()
		got := make([]string, 0, len(res.Bindings))
		for _, b := range res.Bindings {
			got = append(got, b["n"].Lexical())
		}
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("seed %d: top-5 mismatch\n got %v\nwant %v", seed, got, want)
		}
	}
}
