// Streaming-executor tests at the public API: top-k early termination
// must measurably reduce network traffic on a 64-peer simnet, the
// streaming cursor must deliver rows before query completion, and
// cancellation must leak neither goroutines nor pending overlay
// operations (CI runs this file under -race).
package unistore_test

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"unistore"
	"unistore/internal/workload"
)

// streamCluster builds the deterministic 64-peer cluster the
// message-count assertions run on: sharded range scans give the
// early-out shards to skip, and a small window keeps them unissued.
func streamCluster(seed int64) *unistore.Cluster {
	return unistore.New(unistore.Config{
		Peers: 64, Seed: seed,
		RangeShards:      8,
		ProbeParallelism: 2,
	})
}

func loadPersons(c *unistore.Cluster, seed int64, n int) {
	ds := workload.Generate(workload.Options{Seed: seed, Persons: n})
	c.BulkInsert(ds.Triples...)
}

// TestLimitAndTopKSendFewerMessages: on a 64-peer simnet, LIMIT-k and
// ranked top-k queries must send strictly fewer messages than the
// exhaustive scan of the same pattern.
func TestLimitAndTopKSendFewerMessages(t *testing.T) {
	c := streamCluster(31)
	loadPersons(c, 32, 150)
	full, err := c.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	c.Net().Settle()
	for _, src := range []string{
		`SELECT ?n WHERE {(?p,'name',?n)} LIMIT 3`,
		`SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`,
		`SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n TOP 5`,
	} {
		res, err := c.QueryFrom(0, src)
		if err != nil {
			t.Fatal(err)
		}
		c.Net().Settle()
		if len(res.Bindings) == 0 {
			t.Fatalf("%q returned nothing", src)
		}
		if res.Messages >= full.Messages {
			t.Errorf("%q sent %d messages, full scan %d — early termination must stop remote probes",
				src, res.Messages, full.Messages)
		}
		t.Logf("%q: %d messages (full scan %d)", src, res.Messages, full.Messages)
	}
}

// TestDescendingTopKStreamsPages: a DESCENDING ranked top-k on a
// paged, sharded cluster must return the exact reverse-order result
// while sending strictly fewer messages than the exhaustive scan —
// the reverse-scan page order lets the rank frontier stream pages
// top-down and stop mid-shard instead of buffering whole shards.
func TestDescendingTopKStreamsPages(t *testing.T) {
	build := func() *unistore.Cluster {
		c := unistore.New(unistore.Config{
			Peers: 64, Seed: 41, RangeShards: 8, ProbeParallelism: 2, PageSize: 4,
		})
		loadPersons(c, 42, 150)
		return c
	}
	c := build()
	full, err := c.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	c.Net().Settle()
	// Expected: the 5 largest names, descending.
	var names []string
	for _, b := range full.Bindings {
		names = append(names, b["n"].Lexical())
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	want := names[:5]

	c2 := build() // fresh cluster: no warm caches to confound counts
	res, err := c2.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	c2.Net().Settle()
	var got []string
	for _, b := range res.Bindings {
		got = append(got, b["n"].Lexical())
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("desc top-5 = %v, want %v", got, want)
	}
	if res.Messages >= full.Messages {
		t.Errorf("desc top-5 sent %d messages, full scan %d — descending pages must stream and stop early",
			res.Messages, full.Messages)
	}
	t.Logf("desc top-5: %d messages (full scan %d)", res.Messages, full.Messages)
}

// TestTimeToFirstResultBeatsCompletion: a streaming scan must have its
// first row strictly before the last shard lands.
func TestTimeToFirstResultBeatsCompletion(t *testing.T) {
	c := streamCluster(33)
	loadPersons(c, 34, 150)
	// Sequential shard processing guarantees a gap between the first
	// and last response.
	c.Engine(0).SetParallelism(1)
	res, err := c.QueryFrom(0, `SELECT ?n WHERE {(?p,'name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeToFirst <= 0 || res.TimeToFirst >= res.Elapsed {
		t.Errorf("time-to-first %v must fall inside (0, %v)", res.TimeToFirst, res.Elapsed)
	}
}

// TestQueryStreamDeliversIncrementally exercises the pull cursor end
// to end in deterministic mode.
func TestQueryStreamDeliversIncrementally(t *testing.T) {
	c := streamCluster(35)
	loadPersons(c, 36, 80)
	st, err := c.QueryStream(context.Background(), `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 4`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var names []string
	for {
		row, ok := st.Next()
		if !ok {
			break
		}
		names = append(names, row["n"].Str)
	}
	if len(names) != 4 || !sort.StringsAreSorted(names) {
		t.Fatalf("streamed top-4 = %v", names)
	}
	if st.TimeToFirst() > st.Elapsed() {
		t.Errorf("time-to-first %v after completion %v", st.TimeToFirst(), st.Elapsed())
	}
}

// TestCancellationReleasesEverything: canceling queries mid-flight in
// concurrent mode must leave no pending overlay operation and no
// lingering goroutine once the cluster closes.
func TestCancellationReleasesEverything(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		c := unistore.New(unistore.Config{
			Peers: 64, Seed: 37,
			RangeShards: 8, ProbeParallelism: 1,
			Concurrent:   true,
			TimeDilation: 20, // slow enough that cancellation races real work
		})
		defer c.Close()
		loadPersons(c, 38, 100)
		for i := 0; i < 8; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			st, err := c.QueryStreamFrom(ctx, i, `SELECT ?n WHERE {(?p,'name',?n)}`)
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				// Half the queries die by context, half by Close; both
				// paths must release the pending table.
				cancel()
			}
			if _, ok := st.Next(); !ok && i%2 == 1 {
				t.Errorf("query %d: no row before close", i)
			}
			st.Close()
			cancel()
		}
		c.Net().Quiesce()
		for i, p := range c.Peers() {
			if n := p.PendingOps(); n != 0 {
				t.Errorf("peer %d holds %d pending ops after cancellation", i, n)
			}
		}
	}()
	// The network's scheduler and worker goroutines exit in Close;
	// allow some slack for the runtime's own background goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestConcurrentTopKMatchesDeterministic: the ordered shard release
// must make concurrent-mode top-k results identical to the
// deterministic reference even though shard completions race.
func TestConcurrentTopKMatchesDeterministic(t *testing.T) {
	ds := workload.Generate(workload.Options{Seed: 40, Persons: 60})
	q := `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 7`

	ref := streamCluster(41)
	ref.Insert(ds.Triples...)
	want, err := ref.QueryFrom(0, q)
	if err != nil {
		t.Fatal(err)
	}

	c := unistore.New(unistore.Config{
		Peers: 64, Seed: 41,
		RangeShards: 8, ProbeParallelism: 2,
		Concurrent: true,
	})
	defer c.Close()
	c.BulkInsert(ds.Triples...)
	got, err := c.QueryFrom(0, q)
	if err != nil {
		t.Fatal(err)
	}
	render := func(r *unistore.Result) string {
		s := ""
		for _, row := range r.Rows() {
			s += fmt.Sprint(row) + "|"
		}
		return s
	}
	if render(got) != render(want) {
		t.Fatalf("concurrent top-k diverged:\n got %s\nwant %s", render(got), render(want))
	}
}
