package unistore_test

import (
	"context"
	"fmt"

	"unistore"
)

// ExampleConfig shows the knobs a cluster is built with: overlay size,
// replication, the similarity index, and the streaming executor's
// fan-out window and range sharding (which give LIMIT/top-k queries
// shards to skip when they terminate early).
func ExampleConfig() {
	c := unistore.New(unistore.Config{
		Peers:            32,   // key-space partitions
		Replicas:         2,    // replica group per partition
		Seed:             7,    // all randomness flows from here
		EnableQGram:      true, // maintain the similarity index
		ProbeParallelism: 4,    // at most 4 overlay ops in flight per query
		RangeShards:      8,    // split each range scan into 8 showers
	})
	c.InsertTuple(unistore.NewTuple("a12").
		Set("title", unistore.S("Similarity Queries")).
		Set("year", unistore.N(2006)))
	res, err := c.Query(`SELECT ?t WHERE {(?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2006}`)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rows()[0][0])
	// Output: Similarity Queries
}

// ExampleCluster_QueryStream runs a ranked top-k query through the
// streaming pipeline: rows arrive through the cursor in ranking order
// as shards of the ordered scan are released, and the query's remote
// probes stop as soon as the bound proves no better name can arrive.
func ExampleCluster_QueryStream() {
	c := unistore.New(unistore.Config{Peers: 32, Seed: 1, RangeShards: 8})
	for i, name := range []string{"carol", "alice", "dave", "bob", "erin"} {
		c.InsertTuple(unistore.NewTuple(fmt.Sprintf("p%d", i)).
			Set("name", unistore.S(name)))
	}
	st, err := c.QueryStream(context.Background(),
		`SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 3`)
	if err != nil {
		panic(err)
	}
	defer st.Close()
	for {
		row, ok := st.Next()
		if !ok {
			break
		}
		fmt.Println(row["n"])
	}
	// Output:
	// alice
	// bob
	// carol
}
