// Publications: the paper's flagship scenario (§2) — a distributed
// bibliography over persons, publications and conferences (Fig. 3
// schema), queried with joins, similarity filters, and the skyline
// operator: "a skyline of authors that reaches from the youngest
// authors to those who published the most, considering only authors
// published in the ICDE series, tolerating typos in the series name."
package main

import (
	"fmt"
	"log"

	"unistore"
	"unistore/internal/workload"
)

func main() {
	// A 64-peer wide-area overlay with similarity indexing.
	c := unistore.New(unistore.Config{
		Peers:       64,
		Latency:     unistore.LatencyWAN,
		EnableQGram: true,
		Seed:        42,
	})

	// 150 researchers with publications at conferences; 20% of the
	// conference series names carry typos ("ICDEE", "ICD", ...), which
	// is exactly what the edist filter is for.
	ds := workload.Generate(workload.Options{Seed: 7, Persons: 150, TypoRate: 0.2})
	c.BulkInsert(ds.Triples...) // parallel bulk load: one settle for the batch

	fmt.Printf("loaded %d triples over %d peers\n\n", len(ds.Triples), c.Size())

	// The paper's example query, verbatim structure.
	res, err := c.Query(`SELECT ?name,?age,?cnt
		WHERE {(?a,'name',?name) (?a,'age',?age)
		(?a,'num_of_pubs',?cnt)
		(?a,'has_published',?title) (?p,'title',?title)
		(?p,'published_in',?conf) (?c,'confname',?conf)
		(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
		} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("skyline of ICDE authors (age MIN, publications MAX):")
	fmt.Println("  name                        | age | pubs")
	for _, b := range res.Bindings {
		fmt.Printf("  %-27s | %3.0f | %4.0f\n",
			b["name"].Str, b["age"].Num, b["cnt"].Num)
	}
	fmt.Printf("(%d skyline members, %d messages, %v simulated latency)\n\n",
		len(res.Bindings), res.Messages, res.Elapsed)

	// Top-N instead of a skyline: the 5 most prolific authors.
	top, err := c.Query(`SELECT ?name,?cnt WHERE {
		(?a,'name',?name) (?a,'num_of_pubs',?cnt)} ORDER BY ?cnt DESC TOP 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 authors by publication count:")
	for _, row := range top.Rows() {
		fmt.Printf("  %-27s %s\n", row[0], row[1])
	}

	// Substring-flavored search via contains().
	sub, err := c.Query(`SELECT ?t WHERE {(?p,'title',?t) FILTER contains(?t,'skyline')} LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntitles mentioning 'skyline' (%d):\n", len(sub.Bindings))
	for _, row := range sub.Rows() {
		fmt.Printf("  %s\n", row[0])
	}
}
