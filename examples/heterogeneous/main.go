// Heterogeneous: public data management with multiple schemas (§1–§2).
// Two communities publish bibliographic data under different attribute
// vocabularies (dblp:* and ceur:*); correspondence triples — ordinary
// data in the "map" namespace — bridge them, and the system applies
// them automatically during query rewriting.
package main

import (
	"fmt"
	"log"

	"unistore"
	"unistore/internal/workload"
)

func main() {
	c := unistore.New(unistore.Config{Peers: 32, Seed: 5})

	// The same logical world, two vocabularies.
	dblp, ceur, mappings := workload.HeterogeneousPair(21, 25)
	c.BulkInsert(dblp.Triples...)
	c.BulkInsert(ceur.Triples...)
	fmt.Printf("inserted %d dblp:* and %d ceur:* triples\n\n",
		len(dblp.Triples), len(ceur.Triples))

	query := `SELECT ?n WHERE {(?p,'dblp:name',?n)}`

	// Without mappings, the query only sees its own schema.
	plain, err := c.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without mappings: %d persons (dblp only)\n", len(plain.Bindings))

	// Publish the correspondences — they are triples like any other
	// and can be queried explicitly...
	for _, m := range mappings {
		c.AddMapping(m)
	}
	meta, err := c.Query(`SELECT ?f,?t WHERE {(?m,'map:from',?f) (?m,'map:to',?t)}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d correspondence triples; sample:\n", len(meta.Bindings))
	for i, row := range meta.Rows() {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s  =  %s\n", row[0], row[1])
	}

	// ...or applied automatically: the system fetches the mappings,
	// rewrites the query across the closure, and unites the results.
	mapped, err := c.QueryWithMappings(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith automatic rewriting: %d persons (both schemas)\n", len(mapped.Bindings))

	// The rewriting composes with the full query surface: a skyline
	// across both communities.
	sky, err := c.QueryWithMappings(`SELECT ?n,?age,?cnt WHERE {
		(?p,'dblp:name',?n) (?p,'dblp:age',?age) (?p,'dblp:num_of_pubs',?cnt)
	} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-schema author skyline (%d members):\n", len(sky.Bindings))
	for _, b := range sky.Bindings {
		fmt.Printf("  %-28s age %2.0f, %2.0f pubs\n",
			b["n"].Str, b["age"].Num, b["cnt"].Num)
	}
}
