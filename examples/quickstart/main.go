// Quickstart: build a small UniStore cluster, insert the paper's Fig. 2
// example tuples, and run basic VQL queries — exact lookup, range,
// similarity, and tuple reconstruction.
package main

import (
	"fmt"
	"log"

	"unistore"
)

func main() {
	// An 8-peer overlay on constant-latency links, with the q-gram
	// similarity index enabled.
	c := unistore.New(unistore.Config{Peers: 8, EnableQGram: true})

	// The two example tuples of the paper's Fig. 2: each 3-attribute
	// tuple becomes 3 triples, each indexed 3 ways → 18 entries.
	// BulkInsertTuples loads the batch through the parallel insert
	// path: all DHT puts overlap, one quiescence at the end.
	c.BulkInsertTuples(
		unistore.NewTuple("a12").
			Set("title", unistore.S("Similarity...")).
			Set("confname", unistore.S("ICDE 2006 - Workshops")).
			Set("year", unistore.N(2006)),
		unistore.NewTuple("v34").
			Set("title", unistore.S("Progressive...")).
			Set("confname", unistore.S("ICDE 2005")).
			Set("year", unistore.N(2005)))

	run := func(label, q string) *unistore.Result {
		res, err := c.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("-- %s\n   %s\n", label, q)
		fmt.Printf("   %d result(s), %d messages, %v simulated\n",
			len(res.Bindings), res.Messages, res.Elapsed)
		for _, row := range res.Rows() {
			fmt.Printf("   %v\n", row)
		}
		fmt.Println()
		return res
	}

	// Exact attribute#value lookup — routed to one peer in O(log n).
	run("exact lookup", `SELECT ?p WHERE {(?p,'confname','ICDE 2005')}`)

	// Range query over a numeric attribute — the order-preserving hash
	// makes this a prefix routing problem, no flooding.
	run("range query", `SELECT ?p,?y WHERE {(?p,'year',?y) FILTER ?y >= 2006}`)

	// Similarity: tolerate typos with edit distance (q-gram index).
	run("similarity", `SELECT ?c WHERE {(?p,'confname',?c) FILTER edist(?c,'ICDE 2005')<3}`)

	// Reconstruct the origin tuple from the OID index — schema-level
	// query with a variable in attribute position.
	run("reconstruct a12", `SELECT ?attr,?val WHERE {('a12',?attr,?val)}`)

	// Every peer sees the same data; ask another peer.
	res, err := c.QueryFrom(5, `SELECT ?t WHERE {(?p,'title',?t)} ORDER BY ?t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- titles via peer 5: %v\n", res.Rows())
}
