// Conference: the demo's "conference data sharing system" (§4) —
// participants insert contact data and recommendations (restaurants,
// bars, sights) from their own machines; peers come and go; updates
// propagate with loose consistency; skyline queries pick restaurants.
package main

import (
	"fmt"
	"log"
	"time"

	"unistore"
)

func main() {
	// PlanetLab-like wide-area delays, 3 replicas per partition,
	// periodic anti-entropy — the robustness configuration.
	c := unistore.New(unistore.Config{
		Peers:               48,
		Replicas:            3,
		Latency:             unistore.LatencyPlanetLab,
		AntiEntropyInterval: 10 * time.Second,
		Seed:                11,
	})

	// Participants share contacts...
	people := []struct {
		name, email string
		office      string
	}{
		{"marcel", "marcel@tu-ilmenau.de", "Z2044"},
		{"kai-uwe", "kus@tu-ilmenau.de", "Z2045"},
		{"manfred", "manfred@epfl.ch", "BC148"},
		{"roman", "roman@epfl.ch", "BC149"},
	}
	var contacts []*unistore.Tuple
	for _, p := range people {
		contacts = append(contacts, unistore.NewTuple(unistore.GenerateOID("contact")).
			Set("name", unistore.S(p.name)).
			Set("email", unistore.S(p.email)).
			Set("office", unistore.S(p.office)))
	}
	c.BulkInsertTuples(contacts...)

	// ...and restaurant recommendations with price and rating.
	restaurants := []struct {
		name   string
		price  float64
		rating float64
	}{
		{"Chez Pierre", 85, 9.1},
		{"Noodle Bar", 18, 7.4},
		{"Trattoria Roma", 40, 8.2},
		{"Burger Hut", 12, 5.0},
		{"Le Gourmet", 120, 9.5},
		{"Tapas Corner", 30, 8.0},
		{"Curry House", 22, 8.6},
	}
	var recs []*unistore.Tuple
	for _, r := range restaurants {
		recs = append(recs, unistore.NewTuple(unistore.GenerateOID("rest")).
			Set("restname", unistore.S(r.name)).
			Set("price", unistore.N(r.price)).
			Set("rating", unistore.N(r.rating)))
	}
	c.BulkInsertTuples(recs...)
	fmt.Printf("conference data shared across %d peers (3 replicas each)\n\n", c.Size())

	// Where to eat tonight: cheap AND good — a skyline.
	res, err := c.Query(`SELECT ?r,?p,?s WHERE {
		(?x,'restname',?r) (?x,'price',?p) (?x,'rating',?s)
	} ORDER BY SKYLINE OF ?p MIN, ?s MAX`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restaurant skyline (price MIN, rating MAX):")
	for _, b := range res.Bindings {
		fmt.Printf("  %-16s CHF %3.0f  %.1f/10\n", b["r"].Str, b["p"].Num, b["s"].Num)
	}
	fmt.Printf("(answered in %v simulated over PlanetLab-like links)\n\n", res.Elapsed)

	// A participant corrects their office — loosely consistent update.
	var oid string
	who, err := c.Query(`SELECT ?x WHERE {(?x,'name','marcel')}`)
	if err != nil || len(who.Bindings) == 0 {
		log.Fatal("marcel not found")
	}
	oid = who.Bindings[0]["x"].Str
	c.Update(unistore.T(oid, "office", "Z2088"))
	check, err := c.Query(`SELECT ?o WHERE {('` + oid + `','office',?o)}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update, marcel's office: %v\n\n", check.Rows())

	// Churn: a fifth of the peers vanish mid-conference; replicated
	// data stays available, best-effort.
	for i := 0; i < c.Size(); i += 5 {
		c.Kill(i)
	}
	after, err := c.Query(`SELECT ?r WHERE {(?x,'restname',?r)}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after killing %d peers: %d/%d restaurants still reachable\n",
		(c.Size()+4)/5, len(after.Bindings), len(restaurants))
}
