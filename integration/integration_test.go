// Package integration drives a real multi-process UniStore cluster:
// it builds the unistore daemon, launches N OS processes wired over
// loopback TCP, loads a workload through the line protocol, and
// asserts every query answers exactly what an in-process simnet
// cluster answers — including after one process is killed outright.
//
// The suite is opt-in: it execs the go toolchain and real processes,
// so plain `go test ./...` skips it. Enable with UNISTORE_INTEGRATION=1
// (the CI integration job does). UNISTORE_LOG_DIR redirects per-node
// stderr logs to a directory CI can upload on failure; UNISTORE_RACE=1
// builds the daemon with the race detector.
package integration

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"unistore/internal/core"
	"unistore/internal/workload"
)

func requireIntegration(t *testing.T) {
	t.Helper()
	if os.Getenv("UNISTORE_INTEGRATION") != "1" {
		t.Skip("set UNISTORE_INTEGRATION=1 to run the multi-process suite")
	}
}

// buildDaemon compiles cmd/unistore once per test process.
var buildOnce struct {
	sync.Once
	bin string
	err error
}

func daemonBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "unistore-bin")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "unistore")
		args := []string{"build"}
		if os.Getenv("UNISTORE_RACE") == "1" {
			args = append(args, "-race")
		}
		args = append(args, "-o", bin, "unistore/cmd/unistore")
		cmd := exec.Command("go", args...)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildOnce.err = fmt.Errorf("go build: %v\n%s", err, out)
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

func repoRoot() string {
	wd, _ := os.Getwd()
	return filepath.Dir(wd) // integration/ sits directly under the root
}

func logDir(t *testing.T) string {
	if d := os.Getenv("UNISTORE_LOG_DIR"); d != "" {
		os.MkdirAll(d, 0o755)
		return d
	}
	return t.TempDir()
}

// daemon is one running node process plus its protocol client.
type daemon struct {
	proc int
	cmd  *exec.Cmd
	in   *bufio.Writer
	out  *bufio.Reader
	addr string
	// debugAddr is the resolved -debug HTTP address ("" unless the
	// cluster was started with debug endpoints).
	debugAddr string
	log       *os.File
	dead      bool
}

// command sends one protocol line and returns the status line.
func (d *daemon) command(line string) (string, error) {
	if _, err := d.in.WriteString(line + "\n"); err != nil {
		return "", err
	}
	if err := d.in.Flush(); err != nil {
		return "", err
	}
	resp, err := d.out.ReadString('\n')
	return strings.TrimSpace(resp), err
}

func (d *daemon) ping(t *testing.T) {
	t.Helper()
	if resp, err := d.command("PING"); err != nil || resp != "PONG" {
		t.Fatalf("proc %d: PING -> %q, %v", d.proc, resp, err)
	}
}

func (d *daemon) insert(t *testing.T, oid, attr, value string) {
	t.Helper()
	resp, err := d.command(fmt.Sprintf("INSERT %s %s %s", oid, attr, value))
	if err != nil || resp != "OK" {
		t.Fatalf("proc %d: INSERT %s %s -> %q, %v", d.proc, oid, attr, resp, err)
	}
}

func (d *daemon) barrier(t *testing.T) {
	t.Helper()
	resp, err := d.command("BARRIER")
	if err != nil || resp != "OK" {
		t.Fatalf("proc %d: BARRIER -> %q, %v", d.proc, resp, err)
	}
}

// query returns the result rows, sorted for order-independent
// comparison.
func (d *daemon) query(t *testing.T, vql string) []string {
	t.Helper()
	resp, err := d.command("QUERY " + vql)
	if err != nil {
		t.Fatalf("proc %d: QUERY: %v", d.proc, err)
	}
	var n int
	if _, err := fmt.Sscanf(resp, "OK %d", &n); err != nil {
		t.Fatalf("proc %d: QUERY %s -> %q", d.proc, vql, resp)
	}
	rows := make([]string, 0, n)
	for i := 0; i < n; i++ {
		row, err := d.out.ReadString('\n')
		if err != nil {
			t.Fatalf("proc %d: row %d/%d: %v", d.proc, i, n, err)
		}
		rows = append(rows, strings.TrimRight(row, "\n"))
	}
	if dot, err := d.out.ReadString('\n'); err != nil || strings.TrimSpace(dot) != "." {
		t.Fatalf("proc %d: missing terminator, got %q, %v", d.proc, dot, err)
	}
	sort.Strings(rows)
	return rows
}

// kill9 delivers SIGKILL — the churn case's unclean process death.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	d.dead = true
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill proc %d: %v", d.proc, err)
	}
	d.cmd.Wait()
}

type clusterOpts struct {
	procs, partitions, replicas, page int
	seed                              int64
	// dataRoot, when set, gives every process a durable -data directory
	// (dataRoot/proc<N>) with the given -fsync policy, so a killed
	// process can be restarted onto its WAL.
	dataRoot string
	fsync    string
	// trace turns on distributed query tracing; debug gives every
	// process a -debug HTTP listener (resolved into daemon.debugAddr).
	trace bool
	debug bool
}

// daemonArgs builds the command line for one process. listen is the
// concrete address on a restart (the peers still hold routes to it);
// "127.0.0.1:0" on first launch.
func daemonArgs(o clusterOpts, pi int, listen, seedAddr string) []string {
	args := []string{
		"-listen", listen,
		"-peers", fmt.Sprint(o.partitions),
		"-replicas", fmt.Sprint(o.replicas),
		"-procs", fmt.Sprint(o.procs),
		"-proc", fmt.Sprint(pi),
		"-seed", fmt.Sprint(o.seed),
		"-page", fmt.Sprint(o.page),
	}
	if o.dataRoot != "" {
		args = append(args, "-data", filepath.Join(o.dataRoot, fmt.Sprintf("proc%d", pi)))
		if o.fsync != "" {
			args = append(args, "-fsync", o.fsync)
		}
	}
	if o.trace {
		args = append(args, "-trace")
	}
	if o.debug {
		args = append(args, "-debug", "127.0.0.1:0")
	}
	if seedAddr != "" {
		args = append(args, "-seeds", seedAddr)
	}
	return args
}

// startCluster launches the daemons and waits for every READY. All
// processes are cleaned up (SIGKILL if still alive) when the test ends.
func startCluster(t *testing.T, o clusterOpts) []*daemon {
	t.Helper()
	bin := daemonBinary(t)
	logs := logDir(t)
	daemons := make([]*daemon, 0, o.procs)
	t.Cleanup(func() {
		for _, d := range daemons {
			if !d.dead {
				d.cmd.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, d := range daemons {
			if d.dead {
				continue
			}
			done := make(chan struct{})
			go func(d *daemon) { d.cmd.Wait(); close(done) }(d)
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				d.cmd.Process.Kill()
				d.cmd.Wait()
			}
		}
		for _, d := range daemons {
			d.log.Close()
		}
	})
	var seedAddr string
	for pi := 0; pi < o.procs; pi++ {
		var seeds string
		if pi > 0 {
			seeds = seedAddr
		}
		d := launchDaemon(t, bin, logs, pi,
			daemonArgs(o, pi, "127.0.0.1:0", seeds),
			fmt.Sprintf("%s-node%d.log", t.Name(), pi))
		daemons = append(daemons, d)
		if pi == 0 {
			seedAddr = d.addr
		}
	}
	for _, d := range daemons {
		d.expectLine(t, "READY ", 90*time.Second)
	}
	return daemons
}

// launchDaemon starts one node process and reads its ADDR line.
func launchDaemon(t *testing.T, bin, logs string, pi int, args []string, logName string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	logf, err := os.Create(filepath.Join(logs, logName))
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = logf
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{
		proc: pi, cmd: cmd,
		in:  bufio.NewWriter(stdin),
		out: bufio.NewReader(stdout),
		log: logf,
	}
	// The daemon prints its resolved address immediately; READY
	// follows only once the whole cluster has bootstrapped. With -debug
	// the resolved debug address comes between the two.
	line := d.expectLine(t, "ADDR ", 30*time.Second)
	d.addr = strings.TrimPrefix(line, "ADDR ")
	for _, a := range args {
		if a == "-debug" {
			line := d.expectLine(t, "DEBUG ", 30*time.Second)
			d.debugAddr = strings.TrimPrefix(line, "DEBUG ")
		}
	}
	return d
}

// restart relaunches a killed daemon on its ORIGINAL address (the
// survivors' routing tables still point there) with the same flags —
// including the same -data directory, so it recovers its WAL and
// rejoins. The daemon struct is updated in place: the cluster cleanup
// and any later commands address the new process.
func (d *daemon) restart(t *testing.T, o clusterOpts, seedAddr string) {
	t.Helper()
	if !d.dead {
		t.Fatal("restart of a live daemon")
	}
	bin := daemonBinary(t)
	logs := logDir(t)
	nd := launchDaemon(t, bin, logs, d.proc,
		daemonArgs(o, d.proc, d.addr, seedAddr),
		fmt.Sprintf("%s-node%d-restart.log", t.Name(), d.proc))
	nd.expectLine(t, "READY ", 90*time.Second)
	d.log.Close()
	d.cmd, d.in, d.out, d.log, d.addr, d.dead = nd.cmd, nd.in, nd.out, nd.log, nd.addr, false
}

// expectLine reads one stdout line with the given prefix, failing the
// test (and pointing at the node log) on mismatch or timeout.
func (d *daemon) expectLine(t *testing.T, prefix string, timeout time.Duration) string {
	t.Helper()
	ch := make(chan string, 1)
	go func() {
		line, err := d.out.ReadString('\n')
		if err != nil {
			close(ch)
			return
		}
		ch <- strings.TrimSpace(line)
	}()
	select {
	case line, ok := <-ch:
		if !ok || !strings.HasPrefix(line, prefix) {
			t.Fatalf("proc %d: expected %q line, got %q (log: %s)", d.proc, prefix, line, d.log.Name())
		}
		return line
	case <-time.After(timeout):
		t.Fatalf("proc %d: no %q line within %v (log: %s)", d.proc, prefix, timeout, d.log.Name())
		return ""
	}
}

// referenceRows answers the queries on an in-process simnet cluster
// loaded with the same triples — the ground truth the TCP cluster must
// match.
func referenceRows(t *testing.T, o clusterOpts, ds *workload.Dataset, queries []string) map[string][]string {
	t.Helper()
	ref := core.NewCluster(core.Config{
		Peers: o.partitions, Replicas: o.replicas, Seed: o.seed, PageSize: o.page,
	})
	ref.Insert(ds.Triples...)
	out := make(map[string][]string, len(queries))
	for _, q := range queries {
		res, err := ref.Query(q)
		if err != nil {
			t.Fatalf("reference %s: %v", q, err)
		}
		rows := make([]string, 0, len(res.Bindings))
		for _, row := range res.Rows() {
			rows = append(rows, strings.Join(row, "\t"))
		}
		sort.Strings(rows)
		out[q] = rows
	}
	return out
}

var equivalenceQueries = []string{
	`SELECT ?n WHERE {(?p,'name',?n)}`,
	`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30}`,
	`SELECT ?p WHERE {(?p,'age',?a) FILTER ?a >= 40}`,
	`SELECT count(?a) AS ?cnt WHERE {(?p,'age',?a)}`,
	`SELECT ?conf, count(*) AS ?cnt WHERE {(?u,'published_in',?conf)} GROUP BY ?conf`,
	`SELECT min(?a) AS ?lo, max(?a) AS ?hi, avg(?a) AS ?mean WHERE {(?p,'age',?a)}`,
}

func loadWorkload(t *testing.T, d *daemon, ds *workload.Dataset) {
	t.Helper()
	for _, tr := range ds.Triples {
		d.insert(t, tr.OID, tr.Attr, tr.Val.String())
	}
}

func barrierAll(t *testing.T, daemons []*daemon) {
	t.Helper()
	// Two rounds: the first drains each process's own queues; the
	// second covers frames that round one pushed across processes
	// (replica propagation is asynchronous to the insert acks).
	for round := 0; round < 2; round++ {
		for _, d := range daemons {
			if !d.dead {
				d.barrier(t)
			}
		}
	}
}

// TestClusterMatchesSimnet is the core equivalence suite: inserts and
// queries through real TCP daemons answer exactly as simnet does.
func TestClusterMatchesSimnet(t *testing.T) {
	requireIntegration(t)
	o := clusterOpts{procs: 3, partitions: 8, replicas: 2, page: 8, seed: 5}
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 30})
	want := referenceRows(t, o, ds, equivalenceQueries)

	daemons := startCluster(t, o)
	for _, d := range daemons {
		d.ping(t)
	}
	loadWorkload(t, daemons[0], ds)
	barrierAll(t, daemons)

	for _, q := range equivalenceQueries {
		for _, d := range daemons {
			got := d.query(t, q)
			if strings.Join(got, "\n") != strings.Join(want[q], "\n") {
				t.Errorf("proc %d: %s\nwant %d rows:\n%s\ngot %d rows:\n%s",
					d.proc, q, len(want[q]), strings.Join(want[q], "\n"),
					len(got), strings.Join(got, "\n"))
			}
		}
	}
}

// TestClusterSurvivesProcessKill is the churn case: after loading and
// converging, one process dies by SIGKILL — no drain, no goodbye — and
// the survivors must still answer every query exactly, via the replica
// failover path (each replica group straddles processes by placement).
func TestClusterSurvivesProcessKill(t *testing.T) {
	requireIntegration(t)
	o := clusterOpts{procs: 3, partitions: 8, replicas: 2, page: 8, seed: 5}
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 25})
	want := referenceRows(t, o, ds, equivalenceQueries)

	daemons := startCluster(t, o)
	loadWorkload(t, daemons[0], ds)
	barrierAll(t, daemons)

	daemons[2].kill9(t)

	for _, q := range equivalenceQueries {
		for _, d := range daemons[:2] {
			got := d.query(t, q)
			if strings.Join(got, "\n") != strings.Join(want[q], "\n") {
				t.Errorf("proc %d after kill: %s\nwant %d rows:\n%s\ngot %d rows:\n%s",
					d.proc, q, len(want[q]), strings.Join(want[q], "\n"),
					len(got), strings.Join(got, "\n"))
			}
		}
	}
}

// TestClusterRestartRecovery is the crash-recovery case end to end: a
// WAL-backed process dies by SIGKILL mid-bulk-insert, more writes land
// while it is down, and it restarts onto the SAME -data directory and
// -listen address. The restarted process must recover every write it
// acked from its WAL (the unclean death leaves no CLEAN marker, so
// this walks the torn-tail scan), rejoin its replica groups, catch up
// on the missed writes by digest delta, and then every process —
// including the restarted one — must answer every equivalence query
// exactly.
func TestClusterRestartRecovery(t *testing.T) {
	requireIntegration(t)
	// The WAL dirs live under the log dir: with UNISTORE_LOG_DIR set
	// (the CI job), a failing run uploads the daemon logs AND the WAL
	// state that produced the failure.
	dataRoot := filepath.Join(logDir(t), t.Name()+"-data")
	t.Cleanup(func() {
		if !t.Failed() && os.Getenv("UNISTORE_LOG_DIR") != "" {
			os.RemoveAll(dataRoot)
		}
	})
	o := clusterOpts{
		procs: 3, partitions: 8, replicas: 2, page: 8, seed: 5,
		dataRoot: dataRoot, fsync: "always",
	}
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 30})
	want := referenceRows(t, o, ds, equivalenceQueries)

	daemons := startCluster(t, o)
	half := len(ds.Triples) / 2
	for _, tr := range ds.Triples[:half] {
		daemons[0].insert(t, tr.OID, tr.Attr, tr.Val.String())
	}
	barrierAll(t, daemons)

	// SIGKILL: the victim's acked writes exist only in its WAL now.
	daemons[2].kill9(t)

	// The cluster keeps taking writes the dead process will have
	// missed. No barrier here: BARRIER spans all processes and cannot
	// complete with one dead — the acked inserts plus the post-restart
	// barrier cover convergence.
	for _, tr := range ds.Triples[half:] {
		daemons[0].insert(t, tr.OID, tr.Attr, tr.Val.String())
	}

	daemons[2].restart(t, o, daemons[0].addr)
	barrierAll(t, daemons)

	for _, q := range equivalenceQueries {
		for _, d := range daemons {
			got := d.query(t, q)
			if strings.Join(got, "\n") != strings.Join(want[q], "\n") {
				t.Errorf("proc %d after restart: %s\nwant %d rows:\n%s\ngot %d rows:\n%s",
					d.proc, q, len(want[q]), strings.Join(want[q], "\n"),
					len(got), strings.Join(got, "\n"))
			}
		}
	}
}

// TestClusterGracefulShutdown checks QUIT: a daemon drains and exits
// zero, and the remaining processes keep answering.
func TestClusterGracefulShutdown(t *testing.T) {
	requireIntegration(t)
	o := clusterOpts{procs: 2, partitions: 4, replicas: 2, page: 8, seed: 5}
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 10})
	daemons := startCluster(t, o)
	loadWorkload(t, daemons[0], ds)
	barrierAll(t, daemons)

	if resp, err := daemons[1].command("QUIT"); err != nil || resp != "OK" {
		t.Fatalf("QUIT -> %q, %v", resp, err)
	}
	done := make(chan error, 1)
	go func() { done <- daemons[1].cmd.Wait() }()
	select {
	case err := <-done:
		daemons[1].dead = true
		if err != nil {
			t.Fatalf("daemon exited non-zero after QUIT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of QUIT")
	}
	got := daemons[0].query(t, `SELECT ?n WHERE {(?p,'name',?n)}`)
	if len(got) == 0 {
		t.Fatal("survivor returned no rows after peer shutdown")
	}
}
