// Observability over real TCP: the -debug endpoints must serve live
// metrics, health, pprof and recent traces from a running multi-process
// cluster, and the trace tree a TCP query assembles must be
// structurally identical to the tree the same deterministic scenario
// produces on simnet — same spans in the same shape, only ids, peers
// and timings differ.
package integration

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"unistore/internal/core"
	"unistore/internal/trace"
	"unistore/internal/workload"
)

const obsQuery = `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`

func httpGet(t *testing.T, d *daemon, path string) (int, string) {
	t.Helper()
	if d.debugAddr == "" {
		t.Fatalf("proc %d has no debug listener", d.proc)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get("http://" + d.debugAddr + path)
	if err != nil {
		t.Fatalf("proc %d: GET %s: %v", d.proc, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("proc %d: GET %s: read body: %v", d.proc, path, err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts one series from Prometheus text output,
// returning 0 when absent.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, _ := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return v
		}
	}
	return 0
}

// TestDebugEndpointsServeLiveCluster drives a traced 3-process cluster
// and asserts every debug endpoint answers: /healthz OK on every
// process, /metrics carrying non-zero core series, /trace/recent
// holding the query's assembled tree, and /debug/pprof/ responding.
func TestDebugEndpointsServeLiveCluster(t *testing.T) {
	requireIntegration(t)
	o := clusterOpts{procs: 3, partitions: 8, replicas: 2, page: 8, seed: 5, trace: true, debug: true}
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 30})
	daemons := startCluster(t, o)
	loadWorkload(t, daemons[0], ds)
	barrierAll(t, daemons)
	if rows := daemons[0].query(t, obsQuery); len(rows) != 5 {
		t.Fatalf("top-5 returned %d rows", len(rows))
	}

	for _, d := range daemons {
		status, body := httpGet(t, d, "/healthz")
		if status != http.StatusOK {
			t.Errorf("proc %d: /healthz = %d: %s", d.proc, status, body)
		}
		var h core.NodeHealth
		if err := json.Unmarshal([]byte(body), &h); err != nil || !h.OK {
			t.Errorf("proc %d: /healthz not OK: %s (%v)", d.proc, body, err)
		}
		if h.RoutesKnown < h.ClusterSize {
			t.Errorf("proc %d: knows %d/%d routes", d.proc, h.RoutesKnown, h.ClusterSize)
		}
	}

	// Core series must be live on every process (frames move during
	// bootstrap and replication alone); query-path series are summed
	// across processes — which peer serves a range depends on placement.
	var rangeServed, delivered float64
	for _, d := range daemons {
		status, body := httpGet(t, d, "/metrics")
		if status != http.StatusOK {
			t.Fatalf("proc %d: /metrics = %d", d.proc, status)
		}
		for _, series := range []string{"unistore_net_frames_out", "unistore_net_bytes_out", "unistore_net_frames_in"} {
			if metricValue(body, series) == 0 {
				t.Errorf("proc %d: %s is zero:\n%s", d.proc, series, body)
			}
		}
		rangeServed += metricValue(body, "unistore_pgrid_range_served")
		delivered += metricValue(body, "unistore_pgrid_delivered")
	}
	if rangeServed == 0 {
		t.Error("no process served a range branch for the ranked query")
	}
	if delivered == 0 {
		t.Error("no process delivered a routed message")
	}

	status, body := httpGet(t, daemons[0], "/trace/recent")
	if status != http.StatusOK {
		t.Fatalf("/trace/recent = %d", status)
	}
	var recent []*trace.QueryTrace
	if err := json.Unmarshal([]byte(body), &recent); err != nil {
		t.Fatalf("/trace/recent is not a trace array: %v\n%s", err, body)
	}
	if len(recent) == 0 || len(recent[0].Spans) == 0 {
		t.Fatalf("/trace/recent holds no assembled trace: %s", body)
	}
	if orphans := recent[0].Orphans(); len(orphans) != 0 {
		t.Errorf("served trace has %d orphans: %+v", len(orphans), orphans)
	}

	if status, _ := httpGet(t, daemons[0], "/debug/pprof/"); status != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", status)
	}
	if status, _ := httpGet(t, daemons[0], "/debug/pprof/cmdline"); status != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", status)
	}
}

// TestTraceStructureMatchesSimnet pins transport independence: the
// ranked top-k on the 3-process TCP cluster assembles a trace tree
// structurally identical (canonical form: kind/stage/path shape,
// ignoring ids, peers, timings) to the one simnet assembles for the
// same deterministic scenario. Hedge/retry spans are filtered on both
// sides — real-clock timing may fire failovers simnet's virtual clock
// does not.
func TestTraceStructureMatchesSimnet(t *testing.T) {
	requireIntegration(t)
	o := clusterOpts{procs: 3, partitions: 8, replicas: 2, page: 8, seed: 5, trace: true, debug: true}
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 30})
	steady := func(s trace.Span) bool { return s.Flags&(trace.FlagHedge|trace.FlagRetry) == 0 }

	ref := core.NewCluster(core.Config{
		Peers: o.partitions, Replicas: o.replicas, Seed: o.seed, PageSize: o.page,
		Tracing: true,
	})
	ref.Insert(ds.Triples...)
	if _, err := ref.QueryFrom(0, obsQuery); err != nil { // warm route caches like the TCP side
		t.Fatal(err)
	}
	res, err := ref.QueryFrom(0, obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("simnet reference produced no trace")
	}
	want := res.Trace.Canonical(steady)

	daemons := startCluster(t, o)
	loadWorkload(t, daemons[0], ds)
	barrierAll(t, daemons)
	// Process 0 hosts global peer 0 (round-robin placement) and queries
	// from it, matching the reference origin. Warm once, then trace.
	daemons[0].query(t, obsQuery)
	if rows := daemons[0].query(t, obsQuery); len(rows) != 5 {
		t.Fatalf("top-5 returned %d rows over TCP", len(rows))
	}
	_, body := httpGet(t, daemons[0], "/trace/recent")
	var recent []*trace.QueryTrace
	if err := json.Unmarshal([]byte(body), &recent); err != nil || len(recent) == 0 {
		t.Fatalf("/trace/recent: %v\n%s", err, body)
	}
	got := recent[0].Canonical(steady)

	if got != want {
		t.Errorf("TCP trace tree differs structurally from simnet:\n--- simnet ---\n%s\n--- tcp ---\n%s", want, got)
	}
	if orphans := recent[0].Orphans(); len(orphans) != 0 {
		t.Errorf("TCP trace has %d orphans", len(orphans))
	}
	msgs, bytes := recent[0].Totals()
	if msgs == 0 || bytes == 0 {
		t.Errorf("TCP trace accounts no traffic: %d msgs / %d bytes", msgs, bytes)
	}
}
