// Package unistore is a Go reproduction of "UniStore: Querying a
// DHT-based Universal Storage" (Karnstedt, Sattler, Richtarsky, Müller,
// Hauswirth, Schmidt, John — ICDE 2007 demonstration, technical report
// LSIR-REPORT-2006-011).
//
// UniStore stores logical tuples vertically as (OID, attribute, value)
// triples — the layout of RDF — and indexes every triple three ways
// (by OID, by attribute#value, and by value) into a P-Grid structured
// overlay: a virtual binary trie with an order-preserving hash, prefix
// routing in logarithmic hops, skew-adaptive load balancing, replica
// groups with loosely consistent updates, and native range queries.
// Queries are written in VQL, a SPARQL-derived language with FILTER
// predicates (including edit-distance similarity), ORDER BY, LIMIT,
// TOP-N and SKYLINE OF clauses; they compile through a logical algebra
// into mutant query plans that either pull data to the query peer or
// migrate themselves through the overlay, re-optimized by a cost model
// at every hosting peer.
//
// The physical substrate — the TCP/IP network and the PlanetLab
// testbed of the paper's demonstration — is replaced by a
// discrete-event simulator, so clusters of hundreds of peers run
// in-process, repeatably, in milliseconds of wall time. The simulator
// runs deterministically by default; Config.Concurrent switches it to
// goroutine-driven delivery, where peers handle messages in parallel,
// queries can be issued from many goroutines at once, and batches load
// through the parallel bulk-insert path.
//
// # Quickstart
//
//	c := unistore.New(unistore.Config{Peers: 64, EnableQGram: true})
//	c.InsertTuple(unistore.NewTuple("a12").
//		Set("title", unistore.S("Similarity Queries")).
//		Set("confname", unistore.S("ICDE 2006")).
//		Set("year", unistore.N(2006)))
//	res, err := c.Query(`SELECT ?t WHERE {(?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2006}`)
//
// # Bulk loading
//
// Datasets load fastest through BulkInsert / BulkInsertTuples, which
// spread the batch across source peers and overlap every DHT round
// trip instead of settling the network per call:
//
//	c := unistore.New(unistore.Config{Peers: 64, Concurrent: true})
//	defer c.Close()
//	c.BulkInsert(dataset...) // one quiescence for the whole batch
//
// # Streaming queries
//
// Execution is a streaming operator pipeline: rows flow between
// operators as overlay responses arrive, LIMIT and ranked top-k
// queries terminate remote probes as soon as the bound proves no
// better row can arrive, and QueryStream exposes results as a pull
// cursor before the query completes:
//
//	st, _ := c.QueryStream(ctx, `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`)
//	defer st.Close()
//	for row, ok := st.Next(); ok; row, ok = st.Next() {
//		fmt.Println(row["n"])
//	}
//
// Queries accept a context (QueryCtx / QueryFromCtx / QueryStream):
// canceling it stops the pipeline and releases its pending overlay
// operations instead of letting them run to waste — including plans
// that migrated to other peers, which are chased down and stopped.
//
// # Message-layer fast path
//
// Peers learn the partition→node map from the responses they observe,
// so repeat probes reach the responsible peer in one hop instead of
// O(log n); probes of an index join that map to the same cached peer
// coalesce into one batched request/response pair; and with
// Config.PageSize set, range scans are answered in bounded pages that
// the query pulls only while its pipeline still needs rows. All three
// are invisible to results (stale cache entries repair themselves
// under churn) and priced by the cost model, so limit-aware plan
// choices stay honest.
//
// # Replica-aware reads
//
// With Config.Replicas > 1 every remote read targets the partition's
// replica SET: the routing cache learns whole replica groups from
// responses, probes pick a replica by load-aware power-of-two-choices
// and transparently hedge to a sibling after Config.HedgeAfter, range
// scans re-shower partitions that never finished answering, and paged
// scans resume on a sibling replica when their server dies between
// pages — so killing peers mid-workload (Cluster.Kill) leaves query
// results exact. Config.ReadReplicas bounds the candidate replicas
// (1 pins reads to the single-owner baseline the benchmarks compare
// against), and Config.AntiEntropyInterval turns on digest-based
// replica reconciliation that ships version summaries instead of full
// state.
//
// See the examples directory for complete programs, README.md for the
// module layout, docs/architecture.md for the query lifecycle and the
// streaming pipeline, and docs/vql.md for the query language.
package unistore

import (
	"unistore/internal/core"
	"unistore/internal/optimizer"
	"unistore/internal/physical"
	"unistore/internal/schema"
	"unistore/internal/triple"
)

// Config parameterizes a cluster. The zero value gives a 16-peer
// overlay with constant 1ms links and the cost-based optimizer enabled.
type Config = core.Config

// Cluster is a running universal storage: a simulated network of
// P-Grid peers, each with a triple store and a query engine.
type Cluster = core.Cluster

// Result is a completed query: bindings plus execution metrics
// (simulated latency, time-to-first-result, messages, routing hops).
type Result = core.Result

// Stream is an open streaming query: Next yields rows as the
// distributed pipeline produces them, before the query has finished;
// Close cancels the remainder. Obtained from Cluster.QueryStream.
type Stream = core.Stream

// LatencyProfile selects the simulated network's delay model.
type LatencyProfile = core.LatencyProfile

// Latency profiles for Config.Latency.
const (
	LatencyConstant   = core.LatencyConstant
	LatencyLAN        = core.LatencyLAN
	LatencyWAN        = core.LatencyWAN
	LatencyPlanetLab  = core.LatencyPlanetLab
	LatencyTwoCluster = core.LatencyTwoCluster
)

// Triple is one (OID, attribute, value) fact — the unit of storage.
type Triple = triple.Triple

// Tuple is a logical tuple; storage decomposes it into triples.
type Tuple = triple.Tuple

// Value is a typed attribute value (string or number).
type Value = triple.Value

// Mapping is an attribute correspondence used to bridge heterogeneous
// schemas.
type Mapping = schema.Mapping

// OptimizerOptions tunes plan selection (Config.Optimizer).
type OptimizerOptions = optimizer.Options

// Optimizer modes: pull data to the query peer, migrate the plan, or
// decide per step by estimated cost.
const (
	ModeAuto  = optimizer.ModeAuto
	ModeFetch = optimizer.ModeFetch
	ModeShip  = optimizer.ModeShip
)

// Access strategies (OptimizerOptions.ForceStrategy) — the physical
// operator alternatives the paper's demo toggles.
const (
	StratAuto      = physical.StratAuto
	StratOIDLookup = physical.StratOIDLookup
	StratAVLookup  = physical.StratAVLookup
	StratAVRange   = physical.StratAVRange
	StratValLookup = physical.StratValLookup
	StratBroadcast = physical.StratBroadcast
	StratQGram     = physical.StratQGram
)

// New builds a cluster: the overlay trie, routing tables, replica
// groups and per-peer query engines.
func New(cfg Config) *Cluster { return core.NewCluster(cfg) }

// NewTuple creates an empty logical tuple with the given OID.
func NewTuple(oid string) *Tuple { return triple.NewTuple(oid) }

// T constructs a triple with a string value.
func T(oid, attr, val string) Triple { return triple.T(oid, attr, val) }

// TN constructs a triple with a numeric value.
func TN(oid, attr string, val float64) Triple { return triple.TN(oid, attr, val) }

// S constructs a string value.
func S(s string) Value { return triple.S(s) }

// N constructs a numeric value.
func N(f float64) Value { return triple.N(f) }

// GenerateOID returns a fresh system-generated OID with the given
// prefix, grouping the triples of one logical tuple.
func GenerateOID(prefix string) string { return triple.GenerateOID(prefix) }
