// Message-budget regression guard: the ranked top-5, warm index-join
// and paged full-scan scenarios (internal/benchscen — the same
// constructors cmd/benchjson records into BENCH_PR3.json, so budget
// and record measure identical workloads by construction) run on the
// 64-peer simnet and fail if their message counts exceed the
// checked-in budgets. The budgets sit ~25% above the measured values
// of this PR, so a future change that makes the message layer chatty —
// losing the routing-cache fast path, breaking probe batching, pulling
// pages past an early-out — fails CI instead of silently regressing.
package unistore_test

import (
	"testing"

	"unistore/internal/benchscen"
	"unistore/internal/core"
)

// Checked-in budgets (messages per query, deterministic 64-peer
// simnet). Measured at PR 3: topk 32, index-join warm 11, paged scan
// 106.
const (
	budgetTopK          = 40
	budgetIndexJoinWarm = 16
	budgetPagedScan     = 135
)

// measure runs one query and returns its settled message count.
func measure(t *testing.T, c *core.Cluster, src string) int {
	t.Helper()
	before := c.Net().Stats().MessagesSent
	res, err := c.QueryFrom(0, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) == 0 {
		t.Fatalf("%q returned nothing", src)
	}
	c.Net().Settle()
	return c.Net().Stats().MessagesSent - before
}

func TestMessageBudgetRankedTopK(t *testing.T) {
	msgs := measure(t, benchscen.TopK(), benchscen.TopKQuery)
	if msgs > budgetTopK {
		t.Errorf("ranked top-5 sent %d messages, budget %d", msgs, budgetTopK)
	}
	t.Logf("ranked top-5: %d messages (budget %d)", msgs, budgetTopK)
}

func TestMessageBudgetIndexJoinWarm(t *testing.T) {
	c := benchscen.IndexJoin(false)
	plan, err := benchscen.IndexJoinPlan()
	if err != nil {
		t.Fatal(err)
	}
	// Warm the origin's routing cache, then measure.
	c.Engine(0).RunPlan(plan)
	c.Net().Settle()
	before := c.Net().Stats().MessagesSent
	bs, _ := c.Engine(0).RunPlan(plan)
	c.Net().Settle()
	msgs := c.Net().Stats().MessagesSent - before
	if len(bs) == 0 {
		t.Fatal("index join returned nothing")
	}
	if msgs > budgetIndexJoinWarm {
		t.Errorf("warm index join sent %d messages, budget %d", msgs, budgetIndexJoinWarm)
	}
	t.Logf("warm index join: %d messages (budget %d)", msgs, budgetIndexJoinWarm)
}

func TestMessageBudgetPagedScan(t *testing.T) {
	c, _ := benchscen.Scan()
	msgs := measure(t, c, benchscen.ScanQuery)
	if msgs > budgetPagedScan {
		t.Errorf("paged full scan sent %d messages, budget %d", msgs, budgetPagedScan)
	}
	t.Logf("paged full scan: %d messages (budget %d)", msgs, budgetPagedScan)
}
