// Message-budget regression guard: the ranked top-5, warm index-join,
// paged full-scan and churn top-k scenarios (internal/benchscen — the
// same constructors cmd/benchjson records into BENCH_PR5.json, so
// budget and record measure identical workloads by construction) run
// on the 64-peer simnet and fail if their message counts exceed the
// checked-in budgets. The budgets sit ~25-40% above the measured
// values, so a future change that makes the message layer chatty —
// losing the routing-cache fast path, breaking probe batching, pulling
// pages past an early-out, retrying replicas unboundedly — fails CI
// instead of silently regressing.
package unistore_test

import (
	"testing"

	"unistore/internal/benchscen"
	"unistore/internal/core"
)

// Checked-in budgets (messages per query, deterministic 64-peer
// simnet). Measured at PR 3: topk 32, index-join warm 11, paged scan
// 106. Measured at PR 4: churn top-k with 10% dead peers and failover
// retries 35. Measured at PR 5: pushed-down GROUP BY over ~600
// publication rows 44 (the centralized fallback moves 226).
// Measured at PR 8: restart-rejoin catch-up on the 16-peer durability
// scenario 40 (the empty-disk full sync moves 314).
// Re-measured at PR 10 (deterministic spec-seeded routing + shortest-
// path reference choice): topk 25, index-join warm 13, paged scan 94,
// group-by 38, churn top-k 39, rejoin catch-up 41 — budgets kept.
const (
	budgetTopK          = 40
	budgetIndexJoinWarm = 16
	budgetPagedScan     = 135
	budgetChurnTopK     = 50
	budgetGroupByAgg    = 60
	budgetRejoinCatchup = 60
	// budgetFlowInflightBytes bounds the worst per-peer peak of queued
	// bytes on the slow-replica flow scenario with credit windows on.
	// Measured at PR 9: 32.8KB controlled (371KB uncontrolled) — a
	// sender that stops honoring receiver windows blows through this.
	// Re-measured at PR 10: 56.3KB — deterministic shortest-path
	// routing funnels more concurrent senders (one credit window each)
	// through subtree-root peers; an ungated bulk stream still lands
	// 5x+ above the budget.
	budgetFlowInflightBytes = 72 << 10
)

// measure runs one query and returns its settled message count.
func measure(t *testing.T, c *core.Cluster, src string) int {
	t.Helper()
	before := c.Net().Stats().MessagesSent
	res, err := c.QueryFrom(0, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) == 0 {
		t.Fatalf("%q returned nothing", src)
	}
	c.Net().Settle()
	return c.Net().Stats().MessagesSent - before
}

func TestMessageBudgetRankedTopK(t *testing.T) {
	msgs := measure(t, benchscen.TopK(), benchscen.TopKQuery)
	if msgs > budgetTopK {
		t.Errorf("ranked top-5 sent %d messages, budget %d", msgs, budgetTopK)
	}
	t.Logf("ranked top-5: %d messages (budget %d)", msgs, budgetTopK)
}

func TestMessageBudgetIndexJoinWarm(t *testing.T) {
	c := benchscen.IndexJoin(false)
	plan, err := benchscen.IndexJoinPlan()
	if err != nil {
		t.Fatal(err)
	}
	// Warm the origin's routing cache, then measure.
	c.Engine(0).RunPlan(plan)
	c.Net().Settle()
	before := c.Net().Stats().MessagesSent
	bs, _ := c.Engine(0).RunPlan(plan)
	c.Net().Settle()
	msgs := c.Net().Stats().MessagesSent - before
	if len(bs) == 0 {
		t.Fatal("index join returned nothing")
	}
	if msgs > budgetIndexJoinWarm {
		t.Errorf("warm index join sent %d messages, budget %d", msgs, budgetIndexJoinWarm)
	}
	t.Logf("warm index join: %d messages (budget %d)", msgs, budgetIndexJoinWarm)
}

func TestMessageBudgetPagedScan(t *testing.T) {
	c, _ := benchscen.Scan()
	msgs := measure(t, c, benchscen.ScanQuery)
	if msgs > budgetPagedScan {
		t.Errorf("paged full scan sent %d messages, budget %d", msgs, budgetPagedScan)
	}
	t.Logf("paged full scan: %d messages (budget %d)", msgs, budgetPagedScan)
}

// TestMessageBudgetGroupByAgg is the in-network aggregation budget:
// the pushed-down GROUP BY must keep shipping group states, not rows —
// losing the pushdown (or paging group pages past need) trips it. The
// centralized fallback on the same data measures ~5× more messages, so
// the budget also implicitly guards the strategy choice.
func TestMessageBudgetGroupByAgg(t *testing.T) {
	c, _ := benchscen.GroupByAgg(true)
	msgs := measure(t, c, benchscen.GroupByAggQuery)
	if msgs > budgetGroupByAgg {
		t.Errorf("pushed-down group-by sent %d messages, budget %d", msgs, budgetGroupByAgg)
	}
	t.Logf("pushed-down group-by: %d messages (budget %d)", msgs, budgetGroupByAgg)
}

// TestMessageBudgetChurnTopK is the replica-read budget: the ranked
// top-5 with 10% of the nodes killed mid-flight must recover through
// hedges and re-showers without blowing the message budget — failover
// is a bounded handful of extra envelopes, not a broadcast storm.
func TestMessageBudgetChurnTopK(t *testing.T) {
	cr, err := benchscen.ChurnTopKRun(benchscen.ChurnTopK(false))
	if err != nil {
		t.Fatal(err)
	}
	if cr.Rows == 0 {
		t.Fatal("churn top-k returned nothing")
	}
	if cr.Dead == 0 {
		t.Fatal("churn top-k killed nobody")
	}
	if cr.Msgs > budgetChurnTopK {
		t.Errorf("churn top-5 sent %d messages, budget %d", cr.Msgs, budgetChurnTopK)
	}
	t.Logf("churn top-5: %d messages with %d dead peers (budget %d)", cr.Msgs, cr.Dead, budgetChurnTopK)
}

// TestMessageBudgetRejoinCatchup is the restart-recovery budget: a
// WAL-recovered replica rejoining its group must catch up through the
// digest delta — a join handshake, two digests, one pull with identity
// hashes, and pages carrying only the writes it missed. Losing the
// delta path (falling back to full-state sync, shipping whole buckets,
// or re-pulling buckets the rejoiner is ahead on) costs hundreds of
// messages on this scenario and trips the budget.
func TestMessageBudgetRejoinCatchup(t *testing.T) {
	r, err := benchscen.DurabilityRun()
	if err != nil {
		t.Fatal(err)
	}
	if !r.DeltaExact {
		t.Fatal("rejoined replica did not converge to its sibling")
	}
	if r.Recovered != r.AckedAtKill {
		t.Fatalf("WAL recovery rebuilt %d facts, victim acked %d", r.Recovered, r.AckedAtKill)
	}
	if r.DeltaMsgs > budgetRejoinCatchup {
		t.Errorf("rejoin catch-up sent %d messages, budget %d", r.DeltaMsgs, budgetRejoinCatchup)
	}
	t.Logf("rejoin catch-up: %d messages (budget %d; full sync moves %d)",
		r.DeltaMsgs, budgetRejoinCatchup, r.FullMsgs)
}

// TestMessageBudgetFlowInflightBytes is the backpressure budget: under
// the mixed read/write workload with one 10x-throttled replica, no
// peer's inbound queue may peak above the checked-in byte budget while
// flow control is on, and the throttled rejoiner must still converge
// exactly. Losing credit gating on any bulk stream (gossip fan-out,
// digest catch-up, paged scans) multiplies the peak several-fold and
// trips this before it ships.
func TestMessageBudgetFlowInflightBytes(t *testing.T) {
	res, err := benchscen.FlowRun(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CatchupExact {
		t.Fatal("throttled rejoiner did not converge to its sibling")
	}
	if res.RowCount == 0 {
		t.Fatal("flow scenario returned no rows")
	}
	if res.MaxInflightBytes > budgetFlowInflightBytes {
		t.Errorf("peak in-flight %dB per peer, budget %dB", res.MaxInflightBytes, budgetFlowInflightBytes)
	}
	if res.FlowBulkSends == 0 {
		t.Error("no credit-gated bulk sends fired; flow control is vacuous")
	}
	t.Logf("flow: peak in-flight %dB (budget %dB), tail stall %.0fms, %d bulk sends / %d stalls",
		res.MaxInflightBytes, budgetFlowInflightBytes, res.SlowStallMS, res.FlowBulkSends, res.FlowStalls)
}
