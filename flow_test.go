// Flow-control equivalence tests at the public API: receiver-driven
// credit windows are a transport concern and must be invisible to
// query results at ANY window setting — a 1-message stop-and-wait
// window, a few-hundred-byte window and an effectively infinite one
// must all return the rows of the uncontrolled unpaged reference, at
// every page size, deterministic and concurrent (CI runs this package
// under -race). A throttled replica killed mid-workload must not dent
// exactness either: the failover release frees its credit and reads
// fail over to the sibling.
package unistore_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"unistore"
	"unistore/internal/workload"
)

// flowWindows is the window axis of the equivalence matrix: one
// message (stop-and-wait), tiny bytes, the defaults, and effectively
// infinite credit.
var flowWindows = []struct {
	name  string
	bytes int
	msgs  int
}{
	{"one-msg", 1 << 20, 1},
	{"tiny-bytes", 384, 1024},
	{"default", 0, 0},
	{"infinite", 1 << 30, 1 << 20},
}

var flowQueries = []string{
	`SELECT ?n WHERE {(?p,'name',?n)}`,
	`SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 6`,
	`SELECT ?c, count(*) AS ?n WHERE {(?u,'published_in',?c)} GROUP BY ?c`,
}

func flowConfig(pageSize, winBytes, winMsgs int, disable bool) unistore.Config {
	return unistore.Config{
		Peers: 32, Replicas: 2, Seed: 91,
		RangeShards: 4, ProbeParallelism: 2,
		PageSize:           pageSize,
		FlowWindowBytes:    winBytes,
		FlowWindowMsgs:     winMsgs,
		DisableFlowControl: disable,
	}
}

// TestFlowControlEquivalenceMatrix: every (window × page-size) cell
// returns exactly the rows of the flow-disabled unpaged reference.
func TestFlowControlEquivalenceMatrix(t *testing.T) {
	ds := workload.Generate(workload.Options{Seed: 92, Persons: 90})

	ref := unistore.New(flowConfig(0, 0, 0, true))
	ref.BulkInsert(ds.Triples...)
	want := make(map[string][]string)
	for _, q := range flowQueries {
		want[q] = queryRows(t, ref, 0, q)
		if len(want[q]) == 0 {
			t.Fatalf("reference empty for %q", q)
		}
	}

	for _, w := range flowWindows {
		for _, ps := range []int{1, 3, 1 << 20} {
			t.Run(fmt.Sprintf("win=%s/page=%d", w.name, ps), func(t *testing.T) {
				c := unistore.New(flowConfig(ps, w.bytes, w.msgs, false))
				c.BulkInsert(ds.Triples...)
				for _, q := range flowQueries {
					if got := queryRows(t, c, 0, q); fmt.Sprint(got) != fmt.Sprint(want[q]) {
						t.Errorf("%q: got %d rows %v, want %d rows %v",
							q, len(got), got, len(want[q]), want[q])
					}
				}
			})
		}
	}
}

// TestFlowControlEquivalenceConcurrent runs the tight-window cells in
// concurrent mode with several goroutines hammering the cluster — the
// -race job makes the flow table's locking claims enforceable.
func TestFlowControlEquivalenceConcurrent(t *testing.T) {
	ds := workload.Generate(workload.Options{Seed: 92, Persons: 90})

	ref := unistore.New(flowConfig(0, 0, 0, true))
	ref.BulkInsert(ds.Triples...)
	want := make(map[string][]string)
	for _, q := range flowQueries {
		want[q] = queryRows(t, ref, 0, q)
	}

	for _, w := range flowWindows[:2] { // one-msg and tiny-bytes: the stressful cells
		t.Run(w.name, func(t *testing.T) {
			cfg := flowConfig(3, w.bytes, w.msgs, false)
			cfg.Concurrent = true
			c := unistore.New(cfg)
			defer c.Close()
			c.BulkInsert(ds.Triples...)

			const goroutines = 6
			var wg sync.WaitGroup
			errs := make(chan string, goroutines*len(flowQueries))
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for qi, q := range flowQueries {
						res, err := c.QueryFrom((g+qi)%c.Size(), q)
						if err != nil {
							errs <- fmt.Sprintf("%q: %v", q, err)
							continue
						}
						got := sortedRows(res)
						if fmt.Sprint(got) != fmt.Sprint(want[q]) {
							errs <- fmt.Sprintf("%q: got %v, want %v", q, got, want[q])
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Error(e)
			}
		})
	}
}

// TestFlowSlowReplicaKillMidStreamExact: a 10×-throttled replica is
// killed while paged scans are pulling from it under a tiny credit
// window. The kill must release every charge held against the corpse
// (the zero-credit liveness rule at system level) and reads must fail
// over to the live sibling with results intact.
func TestFlowSlowReplicaKillMidStreamExact(t *testing.T) {
	ds := workload.Generate(workload.Options{Seed: 94, Persons: 80})

	ref := unistore.New(flowConfig(8, 512, 4, false))
	ref.BulkInsert(ds.Triples...)
	want := make(map[string][]string)
	for _, q := range flowQueries {
		want[q] = queryRows(t, ref, 0, q)
	}

	cfg := flowConfig(8, 512, 4, false)
	cfg.Concurrent = true
	c := unistore.New(cfg)
	defer c.Close()
	c.BulkInsert(ds.Triples...)
	for _, q := range flowQueries { // learn replica sets before the kill
		queryRows(t, c, 0, q)
	}

	const victim = 5
	c.Net().SetServiceDelay(c.Peers()[victim].ID(), 2*time.Millisecond)

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*2*len(flowQueries))
	var once sync.Once
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 2; r++ {
				for _, q := range flowQueries {
					res, err := c.QueryFrom((victim+1+g)%c.Size(), q)
					if err != nil {
						errs <- fmt.Sprintf("%q: %v", q, err)
						continue
					}
					got := sortedRows(res)
					if fmt.Sprint(got) != fmt.Sprint(want[q]) {
						errs <- fmt.Sprintf("%q: got %v, want %v", q, got, want[q])
					}
					// First completed query: kill the throttled replica
					// while the others are still streaming from it.
					once.Do(func() { c.Kill(victim) })
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	leaks := 0
	for i := 0; i < c.Size(); i++ {
		leaks += c.Peers()[i].PendingOps()
	}
	if leaks != 0 {
		t.Errorf("pending operations leaked across the mid-stream kill: %d", leaks)
	}
}
