// Package ranking implements UniStore's ranking operators: skyline
// (block-nested-loop and sort-filter variants, plus the merge step the
// distributed operator uses) and top-N selection. The paper's flagship
// example — "a skyline of authors from the youngest to those who
// published most" — is ORDER BY SKYLINE OF ?age MIN, ?cnt MAX over the
// join result.
package ranking

import (
	"sort"
)

// Direction states whether smaller or larger coordinates are better.
type Direction bool

// Directions.
const (
	Min Direction = false // smaller is better
	Max Direction = true  // larger is better
)

// Dominates reports whether point a dominates point b under the given
// directions: a is at least as good in every coordinate and strictly
// better in at least one. Both points must have len(dirs) coordinates.
func Dominates(a, b []float64, dirs []Direction) bool {
	strictly := false
	for i, d := range dirs {
		av, bv := a[i], b[i]
		if d == Max {
			av, bv = -av, -bv
		}
		if av > bv {
			return false
		}
		if av < bv {
			strictly = true
		}
	}
	return strictly
}

// SkylineBNL computes skyline indexes with the block-nested-loop
// algorithm: every candidate is compared against the current window.
// O(n·s) comparisons with s the skyline size; no ordering requirements.
func SkylineBNL(points [][]float64, dirs []Direction) []int {
	var window []int
	for i, p := range points {
		dominated := false
		for _, j := range window {
			if Dominates(points[j], p, dirs) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// p enters the window; evict everything it dominates.
		keep := window[:0]
		for _, j := range window {
			if !Dominates(p, points[j], dirs) {
				keep = append(keep, j)
			}
		}
		window = append(keep, i)
	}
	sort.Ints(window)
	return window
}

// SkylineSortFilter computes the same skyline by first sorting on a
// monotone score (the sum of normalized coordinates) so that no point
// can be dominated by a later one — each candidate is then only checked
// against already-accepted points. O(n log n + n·s).
func SkylineSortFilter(points [][]float64, dirs []Direction) []int {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	score := func(p []float64) float64 {
		s := 0.0
		for i, d := range dirs {
			v := p[i]
			if d == Max {
				v = -v
			}
			s += v
		}
		return s
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return score(points[idx[a]]) < score(points[idx[b]])
	})
	var out []int
	for _, i := range idx {
		dominated := false
		for _, j := range out {
			if Dominates(points[j], points[i], dirs) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// SkylineMerge merges two local skylines into the skyline of the union
// — the reduction step of the distributed skyline operator: each peer
// computes the skyline of its partition, the query peer merges.
// Inputs need not be skylines themselves; the result is always the
// skyline of the concatenation, with indexes into the concatenation
// (a's indexes first).
func SkylineMerge(a, b [][]float64, dirs []Direction) []int {
	all := make([][]float64, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	return SkylineBNL(all, dirs)
}

// --- Top-N ------------------------------------------------------------------

// TopN returns the indexes of the n best points under the scoring
// function (lower score = better), in ascending score order. It runs in
// O(len(points) · log n) with a bounded heap (ThresholdTopK), never
// materializing a full sort — the advantage the top-N operator has
// over ORDER BY+LIMIT.
func TopN(n int, count int, score func(i int) float64) []int {
	if n <= 0 || count <= 0 {
		return nil
	}
	tk := NewThresholdTopK(n, func(a, b int) bool { return score(a) < score(b) })
	for i := 0; i < count; i++ {
		tk.Offer(i)
	}
	return tk.Ranked()
}

// --- Streaming top-k with threshold early-out --------------------------------

// ThresholdTopK accumulates the k best rows of a stream under an
// arbitrary strict ordering ("less" means strictly better) and answers
// the threshold question of streaming top-k: once k rows are held and
// the producer can guarantee that every future row is at least as bad
// as some frontier value, no future row can displace the current
// worst, so the consumer may stop the producer early. This is the
// termination rule the streaming executor applies to LIMIT/TOP queries
// whose final access path emits rows in ranking order (the
// order-preserving hash makes range-scan shards arrive sorted).
//
// Ties are resolved first-come: a row equal to the current worst does
// not displace it, which reproduces the stable sort-then-truncate
// semantics of the materializing tail.
type ThresholdTopK[T any] struct {
	k    int
	less func(a, b T) bool
	// heap of the current best k with the WORST at index 0.
	items []T
}

// NewThresholdTopK creates an accumulator keeping the k best rows
// under less (less(a,b) == a is strictly better than b).
func NewThresholdTopK[T any](k int, less func(a, b T) bool) *ThresholdTopK[T] {
	return &ThresholdTopK[T]{k: k, less: less}
}

// Offer presents a row; it reports whether the row entered the current
// top-k (displacing the previous worst when full).
func (t *ThresholdTopK[T]) Offer(v T) bool {
	if t.k <= 0 {
		return false
	}
	if len(t.items) < t.k {
		t.items = append(t.items, v)
		t.up(len(t.items) - 1)
		return true
	}
	// Full: v enters only if strictly better than the current worst.
	if !t.less(v, t.items[0]) {
		return false
	}
	t.items[0] = v
	t.down(0)
	return true
}

// Full reports whether k rows are held.
func (t *ThresholdTopK[T]) Full() bool { return len(t.items) >= t.k }

// Worst returns the k-th best row held so far; ok is false while fewer
// than one row is held.
func (t *ThresholdTopK[T]) Worst() (T, bool) {
	var zero T
	if len(t.items) == 0 {
		return zero, false
	}
	return t.items[0], true
}

// Done reports whether the stream can terminate: k rows are held and
// frontier — a lower bound on every row still to come — is no better
// than the current worst. With an order-emitting producer the frontier
// is simply the last row released.
func (t *ThresholdTopK[T]) Done(frontier T) bool {
	return t.Full() && !t.less(frontier, t.items[0])
}

// Ranked returns the accumulated rows best-first. The accumulator is
// unchanged.
func (t *ThresholdTopK[T]) Ranked() []T {
	out := append([]T(nil), t.items...)
	sort.SliceStable(out, func(i, j int) bool { return t.less(out[i], out[j]) })
	return out
}

// up/down restore the max-at-root heap order ("max" = worst row).
func (t *ThresholdTopK[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		// items[i] worse than items[parent] ⇒ items[parent] is better.
		if !t.less(t.items[parent], t.items[i]) {
			break
		}
		t.items[i], t.items[parent] = t.items[parent], t.items[i]
		i = parent
	}
}

func (t *ThresholdTopK[T]) down(i int) {
	n := len(t.items)
	for {
		worst := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n && t.less(t.items[worst], t.items[c]) {
				worst = c
			}
		}
		if worst == i {
			return
		}
		t.items[i], t.items[worst] = t.items[worst], t.items[i]
		i = worst
	}
}
