// Package ranking implements UniStore's ranking operators: skyline
// (block-nested-loop and sort-filter variants, plus the merge step the
// distributed operator uses) and top-N selection. The paper's flagship
// example — "a skyline of authors from the youngest to those who
// published most" — is ORDER BY SKYLINE OF ?age MIN, ?cnt MAX over the
// join result.
package ranking

import (
	"container/heap"
	"sort"
)

// Direction states whether smaller or larger coordinates are better.
type Direction bool

// Directions.
const (
	Min Direction = false // smaller is better
	Max Direction = true  // larger is better
)

// Dominates reports whether point a dominates point b under the given
// directions: a is at least as good in every coordinate and strictly
// better in at least one. Both points must have len(dirs) coordinates.
func Dominates(a, b []float64, dirs []Direction) bool {
	strictly := false
	for i, d := range dirs {
		av, bv := a[i], b[i]
		if d == Max {
			av, bv = -av, -bv
		}
		if av > bv {
			return false
		}
		if av < bv {
			strictly = true
		}
	}
	return strictly
}

// SkylineBNL computes skyline indexes with the block-nested-loop
// algorithm: every candidate is compared against the current window.
// O(n·s) comparisons with s the skyline size; no ordering requirements.
func SkylineBNL(points [][]float64, dirs []Direction) []int {
	var window []int
	for i, p := range points {
		dominated := false
		for _, j := range window {
			if Dominates(points[j], p, dirs) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// p enters the window; evict everything it dominates.
		keep := window[:0]
		for _, j := range window {
			if !Dominates(p, points[j], dirs) {
				keep = append(keep, j)
			}
		}
		window = append(keep, i)
	}
	sort.Ints(window)
	return window
}

// SkylineSortFilter computes the same skyline by first sorting on a
// monotone score (the sum of normalized coordinates) so that no point
// can be dominated by a later one — each candidate is then only checked
// against already-accepted points. O(n log n + n·s).
func SkylineSortFilter(points [][]float64, dirs []Direction) []int {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	score := func(p []float64) float64 {
		s := 0.0
		for i, d := range dirs {
			v := p[i]
			if d == Max {
				v = -v
			}
			s += v
		}
		return s
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return score(points[idx[a]]) < score(points[idx[b]])
	})
	var out []int
	for _, i := range idx {
		dominated := false
		for _, j := range out {
			if Dominates(points[j], points[i], dirs) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// SkylineMerge merges two local skylines into the skyline of the union
// — the reduction step of the distributed skyline operator: each peer
// computes the skyline of its partition, the query peer merges.
// Inputs need not be skylines themselves; the result is always the
// skyline of the concatenation, with indexes into the concatenation
// (a's indexes first).
func SkylineMerge(a, b [][]float64, dirs []Direction) []int {
	all := make([][]float64, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	return SkylineBNL(all, dirs)
}

// --- Top-N ------------------------------------------------------------------

// TopN returns the indexes of the n best points under the scoring
// function (lower score = better), in ascending score order. It runs in
// O(len(points) · log n) with a bounded max-heap, never materializing a
// full sort — the advantage the top-N operator has over ORDER BY+LIMIT.
func TopN(n int, count int, score func(i int) float64) []int {
	if n <= 0 || count <= 0 {
		return nil
	}
	h := &maxHeap{score: score}
	for i := 0; i < count; i++ {
		if h.Len() < n {
			heap.Push(h, i)
			continue
		}
		if score(i) < score(h.items[0]) {
			h.items[0] = i
			heap.Fix(h, 0)
		}
	}
	out := make([]int, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(int)
	}
	return out
}

// maxHeap keeps the worst of the current best-n at the root.
type maxHeap struct {
	items []int
	score func(i int) float64
}

func (h *maxHeap) Len() int           { return len(h.items) }
func (h *maxHeap) Less(i, j int) bool { return h.score(h.items[i]) > h.score(h.items[j]) }
func (h *maxHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *maxHeap) Push(x any)         { h.items = append(h.items, x.(int)) }
func (h *maxHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
