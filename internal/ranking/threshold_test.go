package ranking

import (
	"math/rand"
	"sort"
	"testing"
)

func intTopK(k int) *ThresholdTopK[int] {
	return NewThresholdTopK(k, func(a, b int) bool { return a < b })
}

func TestThresholdTopKOrderedStream(t *testing.T) {
	// An order-emitting producer: the tracker must fill, then declare
	// Done the moment the frontier reaches the k-th best.
	tk := intTopK(3)
	for i, v := range []int{1, 2, 3} {
		if !tk.Offer(v) {
			t.Fatalf("row %d rejected while filling", i)
		}
		if i < 2 && tk.Done(v) {
			t.Fatalf("done before full at row %d", i)
		}
	}
	if !tk.Full() {
		t.Fatal("tracker must be full after k offers")
	}
	if !tk.Done(3) {
		t.Fatal("ordered stream must terminate at the k-th row")
	}
	if got := tk.Ranked(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("ranked = %v", got)
	}
}

func TestThresholdTopKTiesAreFirstCome(t *testing.T) {
	// A row equal to the current worst must not displace it (stable
	// sort-then-truncate semantics), and Done holds on an equal
	// frontier.
	tk := intTopK(2)
	tk.Offer(5)
	tk.Offer(7)
	if tk.Offer(7) {
		t.Fatal("tie must not displace the held row")
	}
	if !tk.Done(7) {
		t.Fatal("equal frontier cannot improve the result")
	}
	if tk.Done(6) {
		t.Fatal("a better frontier can still improve the result")
	}
}

func TestThresholdTopKUnorderedMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(6)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(25)
		}
		tk := intTopK(k)
		for _, v := range vals {
			tk.Offer(v)
		}
		want := append([]int(nil), vals...)
		sort.Ints(want)
		if k > n {
			k = n
		}
		want = want[:k]
		got := tk.Ranked()
		if len(got) != len(want) {
			t.Fatalf("iter %d: size %d want %d", iter, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: got %v want %v", iter, got, want)
			}
		}
		worst, ok := tk.Worst()
		if !ok || worst != want[len(want)-1] {
			t.Fatalf("iter %d: worst %d want %d", iter, worst, want[len(want)-1])
		}
	}
}
