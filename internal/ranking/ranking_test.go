package ranking

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestDominates(t *testing.T) {
	dirs := []Direction{Min, Max} // the paper's ?age MIN, ?cnt MAX
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{30, 10}, []float64{40, 5}, true},   // younger and more pubs
		{[]float64{30, 10}, []float64{30, 10}, false}, // equal: no strict edge
		{[]float64{30, 10}, []float64{25, 5}, false},  // b younger
		{[]float64{30, 10}, []float64{30, 9}, true},   // tie on age, more pubs
		{[]float64{40, 5}, []float64{30, 10}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b, dirs); got != c.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSkylineBNLPaperExample(t *testing.T) {
	// Authors: (age, num_of_pubs).
	points := [][]float64{
		{25, 3},  // young, few pubs — in skyline
		{30, 10}, // dominated by none
		{40, 12}, // older but most pubs — in skyline
		{35, 8},  // dominated by {30,10}
		{28, 10}, // dominates {30,10}
		{50, 12}, // dominated by {40,12}
	}
	dirs := []Direction{Min, Max}
	got := SkylineBNL(points, dirs)
	want := []int{0, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("skyline = %v, want %v", got, want)
	}
}

func TestSkylineSingleAndEmpty(t *testing.T) {
	dirs := []Direction{Min}
	if got := SkylineBNL(nil, dirs); len(got) != 0 {
		t.Error("empty input must give empty skyline")
	}
	if got := SkylineBNL([][]float64{{5}}, dirs); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("singleton skyline = %v", got)
	}
	// Single MIN dimension: skyline = all minima.
	pts := [][]float64{{3}, {1}, {2}, {1}}
	got := SkylineBNL(pts, dirs)
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("1-d skyline = %v", got)
	}
}

func TestSkylineDuplicatesSurvive(t *testing.T) {
	// Equal points do not dominate each other; both stay.
	pts := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	got := SkylineBNL(pts, []Direction{Min, Min})
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("skyline = %v", got)
	}
}

// Property: BNL and sort-filter agree, and the result is exactly the
// set of non-dominated points.
func TestSkylineVariantsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(60)
		d := 1 + rng.Intn(4)
		dirs := make([]Direction, d)
		for i := range dirs {
			dirs[i] = rng.Intn(2) == 0
		}
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = float64(rng.Intn(10))
			}
		}
		bnl := SkylineBNL(pts, dirs)
		sf := SkylineSortFilter(pts, dirs)
		// Both must be the set of non-dominated points... except for
		// duplicates: sort-filter keeps the first of equal points that
		// arrive in different order. Compare as point multisets of the
		// non-dominated set computed naively.
		var naive []int
		for i := range pts {
			dominated := false
			for j := range pts {
				if Dominates(pts[j], pts[i], dirs) {
					dominated = true
					break
				}
			}
			if !dominated {
				naive = append(naive, i)
			}
		}
		if !reflect.DeepEqual(bnl, naive) {
			t.Fatalf("BNL %v != naive %v (pts=%v dirs=%v)", bnl, naive, pts, dirs)
		}
		if !reflect.DeepEqual(sf, naive) {
			t.Fatalf("sort-filter %v != naive %v (pts=%v dirs=%v)", sf, naive, pts, dirs)
		}
	}
}

func TestSkylineMergeEqualsGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dirs := []Direction{Min, Max}
	for iter := 0; iter < 100; iter++ {
		mk := func(n int) [][]float64 {
			pts := make([][]float64, n)
			for i := range pts {
				pts[i] = []float64{float64(rng.Intn(20)), float64(rng.Intn(20))}
			}
			return pts
		}
		a, b := mk(rng.Intn(30)), mk(rng.Intn(30))
		// Distributed: local skylines, then merge.
		la := SkylineBNL(a, dirs)
		lb := SkylineBNL(b, dirs)
		subA := make([][]float64, len(la))
		for i, j := range la {
			subA[i] = a[j]
		}
		subB := make([][]float64, len(lb))
		for i, j := range lb {
			subB[i] = b[j]
		}
		merged := SkylineMerge(subA, subB, dirs)
		// Global skyline over the union.
		all := append(append([][]float64{}, a...), b...)
		global := SkylineBNL(all, dirs)
		// Compare as multisets of points.
		key := func(p []float64) [2]float64 { return [2]float64{p[0], p[1]} }
		gotSet := map[[2]float64]int{}
		for _, i := range merged {
			pts := append(append([][]float64{}, subA...), subB...)
			gotSet[key(pts[i])]++
		}
		wantSet := map[[2]float64]int{}
		for _, i := range global {
			wantSet[key(all[i])]++
		}
		if !reflect.DeepEqual(gotSet, wantSet) {
			t.Fatalf("merge %v != global %v", gotSet, wantSet)
		}
	}
}

func TestTopN(t *testing.T) {
	scores := []float64{5, 1, 4, 2, 3}
	got := TopN(3, len(scores), func(i int) float64 { return scores[i] })
	if !reflect.DeepEqual(got, []int{1, 3, 4}) {
		t.Errorf("top-3 = %v", got)
	}
	if got := TopN(10, len(scores), func(i int) float64 { return scores[i] }); len(got) != 5 {
		t.Errorf("n > count must return all: %v", got)
	}
	if got := TopN(0, 5, func(int) float64 { return 0 }); got != nil {
		t.Errorf("n=0 must return nil: %v", got)
	}
	if got := TopN(3, 0, func(int) float64 { return 0 }); got != nil {
		t.Errorf("empty input must return nil: %v", got)
	}
}

// Property: TopN equals sort-then-take.
func TestTopNEqualsSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(100)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(1000)) // distinct-ish
		}
		k := 1 + rng.Intn(10)
		got := TopN(k, n, func(i int) float64 { return scores[i] })
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
		if k > n {
			k = n
		}
		want := idx[:k]
		// Scores must match even if ties reorder indexes.
		for i := range got {
			if scores[got[i]] != scores[want[i]] {
				t.Fatalf("top-%d scores mismatch: got %v want %v", k, got, want)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("top-%d lengths: %d vs %d", k, len(got), len(want))
		}
	}
}

func TestSkylineMinimalWindowInvariant(t *testing.T) {
	// No skyline member may dominate another.
	rng := rand.New(rand.NewSource(31))
	dirs := []Direction{Min, Min, Max}
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{float64(rng.Intn(15)), float64(rng.Intn(15)), float64(rng.Intn(15))}
	}
	sky := SkylineBNL(pts, dirs)
	for _, i := range sky {
		for _, j := range sky {
			if i != j && Dominates(pts[i], pts[j], dirs) {
				t.Fatalf("skyline member %d dominates member %d", i, j)
			}
		}
	}
}

func BenchmarkSkylineBNL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 2000)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	dirs := []Direction{Min, Max}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SkylineBNL(pts, dirs)
	}
}

func BenchmarkSkylineSortFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 2000)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	dirs := []Direction{Min, Max}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SkylineSortFilter(pts, dirs)
	}
}

func BenchmarkTopN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 10000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopN(10, len(scores), func(i int) float64 { return scores[i] })
	}
}
