package core

// End-to-end tracing tests: the assembled QueryTrace must account for
// every overlay message of a traced query — reconciling EXACTLY with
// the simulator's sent counters on a quiet deterministic run — and
// must stay structurally complete (flagged, never orphaned) when the
// query survives peer kills through hedges and re-showers.

import (
	"testing"

	"unistore/internal/trace"
	"unistore/internal/vql"
	"unistore/internal/workload"
)

const rankedTopK = `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`

// tracedTopKCluster is the deterministic 64-peer ranked top-k
// scenario with tracing on: single replica, no loss, nothing but the
// query moves once settled.
func tracedTopKCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster(Config{
		Peers: 64, Seed: 12, RangeShards: 8, ProbeParallelism: 2,
		Tracing: true,
	})
	ds := workload.Generate(workload.Options{Seed: 13, Persons: 300})
	c.BulkInsert(ds.Triples...)
	c.net.Settle()
	return c
}

// TestQueryTraceReconcilesExactly pins the accounting identity: every
// overlay message of the traced ranked top-k is charged to exactly one
// span field, so the trace's totals equal the simulator's message and
// byte deltas — not approximately, exactly.
func TestQueryTraceReconcilesExactly(t *testing.T) {
	c := tracedTopKCluster(t)
	q, err := vql.ParseQuery(rankedTopK)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.compile(q)
	if err != nil {
		t.Fatal(err)
	}
	before := c.net.Stats()
	bs, ex := c.engines[0].RunPlan(plan)
	// Drain stragglers (late shard pages, cancels): their riders fold
	// into a repeated Trace() call, their cost into the stats delta.
	c.net.Settle()
	after := c.net.Stats()
	qt := ex.Trace()

	if len(bs) != 5 {
		t.Fatalf("top-5 returned %d rows", len(bs))
	}
	if qt == nil || len(qt.Spans) == 0 {
		t.Fatal("traced query produced no trace")
	}
	if orphans := qt.Orphans(); len(orphans) != 0 {
		t.Fatalf("trace has %d orphaned spans: %+v", len(orphans), orphans)
	}
	msgs, bytes := qt.Totals()
	wantMsgs := after.MessagesSent - before.MessagesSent
	wantBytes := after.BytesSent - before.BytesSent
	if msgs != wantMsgs || bytes != wantBytes {
		t.Errorf("trace totals %d msgs / %d bytes, simnet sent %d msgs / %d bytes\n%s",
			msgs, bytes, wantMsgs, wantBytes, qt.String())
	}
	// The physical pipeline contributes its own layer: stage spans
	// with row counts and serve timestamps (time-to-first-row).
	stages := 0
	for _, s := range qt.Spans {
		if s.Kind == "stage" {
			stages++
			if s.Stage == "" {
				t.Errorf("stage span without operator label: %+v", s)
			}
			if s.Rows == 0 && s.RowsIn == 0 {
				t.Errorf("stage span carries no row accounting: %+v", s)
			}
			if s.Srv < s.Enq {
				t.Errorf("stage first-row before start: %+v", s)
			}
		}
	}
	if stages == 0 {
		t.Error("no pipeline stage spans in the trace")
	}
}

// TestResultTraceAndPerQueryRegistryDelta covers the public surface:
// QueryFrom returns the assembled trace, and a registry snapshot delta
// around the query attributes its traffic.
func TestResultTraceAndPerQueryRegistryDelta(t *testing.T) {
	c := tracedTopKCluster(t)
	before := c.Registry().Snapshot()
	res, err := c.QueryFrom(0, rankedTopK)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Result.Trace is nil on a tracing cluster")
	}
	if len(res.Trace.Orphans()) != 0 {
		t.Errorf("orphaned spans in result trace")
	}
	msgs, _ := res.Trace.Totals()
	if msgs == 0 {
		t.Error("trace accounted zero messages")
	}
	d := c.Registry().Snapshot().Sub(before)
	if got := d.Counters["net.messages_sent"]; int(got) < res.Messages {
		t.Errorf("registry delta %d messages < result's %d", got, res.Messages)
	}
	if d.Counters["pgrid.range_served"] == 0 {
		t.Error("per-query registry delta shows no served range branches")
	}
}

// TestUntracedQueriesCarryNoTrace pins the default: without
// Config.Tracing, results have no trace and the overlay sends no
// trace context (the overhead guard in msgbudget_test.go asserts the
// byte identity; this pins the API surface).
func TestUntracedQueriesCarryNoTrace(t *testing.T) {
	c := NewCluster(Config{Peers: 16, Seed: 3})
	ds := workload.Generate(workload.Options{Seed: 13, Persons: 50})
	c.BulkInsert(ds.Triples...)
	res, err := c.QueryFrom(0, rankedTopK)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("untraced cluster returned a trace: %+v", res.Trace)
	}
}

// TestTraceCompleteUnderPeerKills: with one replica of most partitions
// dead, the traced ranked top-k must still assemble a complete tree —
// hedge/retry spans flagged as such, no span orphaned — while the
// result stays exact.
func TestTraceCompleteUnderPeerKills(t *testing.T) {
	build := func(tracing bool) *Cluster {
		c := NewCluster(Config{
			Peers: 32, Replicas: 2, Seed: 21, RangeShards: 8,
			ProbeParallelism: 2, PageSize: 8, Tracing: tracing,
		})
		ds := workload.Generate(workload.Options{Seed: 22, Persons: 300})
		c.BulkInsert(ds.Triples...)
		if _, err := c.QueryFrom(0, rankedTopK); err != nil {
			t.Fatal(err)
		}
		c.net.Settle()
		return c
	}
	ref, err := build(false).QueryFrom(0, rankedTopK)
	if err != nil {
		t.Fatal(err)
	}

	c := build(true)
	q, err := vql.ParseQuery(rankedTopK)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.compile(q)
	if err != nil {
		t.Fatal(err)
	}
	// Start the plan and kill the peers its first-hop branch envelopes
	// are in flight toward (visible as network backlog) — their branch
	// shares are genuinely lost, forcing hedged pulls and re-showers.
	// At most one replica per partition dies and never the origin.
	ex := c.engines[0].Start(plan, nil)
	byPath := map[string]bool{c.peers[0].Path().String(): true}
	killed := 0
	kill := func(i int) {
		p := c.peers[i]
		if !c.net.Alive(p.ID()) {
			return
		}
		if path := p.Path().String(); !byPath[path] {
			byPath[path] = true
			c.Kill(i)
			killed++
		}
	}
	want := len(c.peers) / 10
	for i := 1; i < len(c.peers) && killed < want; i++ {
		if c.net.Load(c.peers[i].ID()) > 0 {
			kill(i)
		}
	}
	for i := 1; i < len(c.peers) && killed < want; i++ {
		kill(i)
	}
	if killed == 0 {
		t.Fatal("killed nobody")
	}
	ex.Wait()
	c.net.Settle()
	if len(ex.Result()) != len(ref.Bindings) {
		t.Fatalf("churned query returned %d rows, want %d", len(ex.Result()), len(ref.Bindings))
	}
	qt := ex.Trace()
	if qt == nil {
		t.Fatal("no trace under churn")
	}
	if orphans := qt.Orphans(); len(orphans) != 0 {
		t.Fatalf("churned trace has %d orphans: %+v\n%s", len(orphans), orphans, qt.String())
	}
	flagged := 0
	for _, s := range qt.Spans {
		if s.Flags&(trace.FlagHedge|trace.FlagRetry) != 0 {
			flagged++
		}
	}
	if flagged == 0 {
		t.Errorf("failover fired but no span is flagged hedge/retry:\n%s", qt.String())
	}
	// Dedup must hold even with hedged duplicates in flight.
	seen := map[uint64]bool{}
	for _, s := range qt.Spans {
		if s.ID != 0 && seen[s.ID] {
			t.Fatalf("duplicate span id %d in assembled trace", s.ID)
		}
		seen[s.ID] = true
	}
}
