package core

// Unified metrics plumbing. Peers, the network and the WAL each keep
// their own counters; the registry mirrors them under stable dotted
// names at snapshot time via OnCollect collectors, so the hot paths
// never touch the registry. Cluster (simnet) and Node (real TCP)
// register the same peer collector — /metrics looks identical in both
// worlds.

import (
	"unistore/internal/pgrid"
	"unistore/internal/trace"
)

// setCounter forces a monotonic counter to an absolute value sampled
// from an external source of truth. Collectors run serialized under
// the registry's snapshot, so the read-modify-write cannot race.
func setCounter(r *trace.Registry, name string, v int64) {
	c := r.Counter(name)
	if d := v - c.Value(); d != 0 {
		c.Add(d)
	}
}

// registerPeerMetrics installs a collector aggregating the hosted
// peers' overlay counters. The callback re-resolves the peer slice
// each snapshot, so joins and rejoins are picked up.
func registerPeerMetrics(reg *trace.Registry, peers func() []*pgrid.Peer) {
	reg.OnCollect(func(r *trace.Registry) {
		var a pgrid.PeerStats
		for _, p := range peers() {
			st := p.Stats()
			a.Forwarded += st.Forwarded
			a.Delivered += st.Delivered
			a.RangeServed += st.RangeServed
			a.RouteFailures += st.RouteFailures
			a.GossipApplied += st.GossipApplied
			a.GossipSuppressed += st.GossipSuppressed
			a.ExchangesRun += st.ExchangesRun
			a.RouteCacheHits += st.RouteCacheHits
			a.RouteCacheMisses += st.RouteCacheMisses
			a.RouteCacheInvalidations += st.RouteCacheInvalidations
			a.RouteCacheFwdHits += st.RouteCacheFwdHits
			a.PagesServed += st.PagesServed
			a.ProbeGroups += st.ProbeGroups
			a.ProbeRetries += st.ProbeRetries
			a.ScanRetries += st.ScanRetries
			a.PagePullHedges += st.PagePullHedges
			a.WriteRetries += st.WriteRetries
			a.DigestRounds += st.DigestRounds
			a.DigestPulls += st.DigestPulls
			a.FlowBulkSends += st.FlowBulkSends
			a.FlowStalls += st.FlowStalls
		}
		setCounter(r, "pgrid.forwarded", int64(a.Forwarded))
		setCounter(r, "pgrid.delivered", int64(a.Delivered))
		setCounter(r, "pgrid.range_served", int64(a.RangeServed))
		setCounter(r, "pgrid.route_failures", int64(a.RouteFailures))
		setCounter(r, "pgrid.gossip.applied", int64(a.GossipApplied))
		setCounter(r, "pgrid.gossip.suppressed", int64(a.GossipSuppressed))
		setCounter(r, "pgrid.antientropy.exchanges", int64(a.ExchangesRun))
		setCounter(r, "pgrid.route_cache.hits", int64(a.RouteCacheHits))
		setCounter(r, "pgrid.route_cache.misses", int64(a.RouteCacheMisses))
		setCounter(r, "pgrid.route_cache.invalidations", int64(a.RouteCacheInvalidations))
		setCounter(r, "pgrid.route_cache.fwd_hits", int64(a.RouteCacheFwdHits))
		setCounter(r, "pgrid.pages_served", int64(a.PagesServed))
		setCounter(r, "pgrid.probe.groups", int64(a.ProbeGroups))
		setCounter(r, "pgrid.probe.retries", int64(a.ProbeRetries))
		setCounter(r, "pgrid.scan.retries", int64(a.ScanRetries))
		setCounter(r, "pgrid.page_pull.hedges", int64(a.PagePullHedges))
		setCounter(r, "pgrid.write.retries", int64(a.WriteRetries))
		setCounter(r, "pgrid.digest.rounds", int64(a.DigestRounds))
		setCounter(r, "pgrid.digest.pulls", int64(a.DigestPulls))
		setCounter(r, "pgrid.flow.bulk_sends", int64(a.FlowBulkSends))
		setCounter(r, "pgrid.flow.stalls", int64(a.FlowStalls))
		if n := a.RouteCacheHits + a.RouteCacheMisses; n > 0 {
			r.Gauge("pgrid.route_cache.hit_rate").Set(float64(a.RouteCacheHits) / float64(n))
		}
		if a.FlowBulkSends > 0 {
			p := float64(a.FlowStalls) / float64(a.FlowBulkSends)
			if p > 1 {
				p = 1
			}
			r.Gauge("pgrid.flow.pressure").Set(p)
		}
	})
}
