// Package core assembles UniStore's triple storage layer (paper Fig. 1)
// from its substrates: a simulated network (simnet), the P-Grid overlay
// (pgrid), the per-peer storage service (store), the VQL analyzer
// (vql + algebra), the query executor with mutant plans (physical), the
// cost-based adaptive optimizer (optimizer), and schema mappings
// (schema). A Cluster is a whole universal storage — the unit the
// examples, tools and experiments drive.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unistore/internal/algebra"
	"unistore/internal/cost"
	"unistore/internal/keys"
	"unistore/internal/optimizer"
	"unistore/internal/pgrid"
	"unistore/internal/physical"
	"unistore/internal/schema"
	"unistore/internal/simnet"
	"unistore/internal/trace"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// LatencyProfile selects the simulated network's delay model.
type LatencyProfile string

// Latency profiles.
const (
	LatencyConstant   LatencyProfile = "constant"    // 1ms fixed (hop counting)
	LatencyLAN        LatencyProfile = "lan"         // local cluster
	LatencyWAN        LatencyProfile = "wan"         // generic wide area
	LatencyPlanetLab  LatencyProfile = "planetlab"   // the paper's testbed
	LatencyTwoCluster LatencyProfile = "two-cluster" // two LAN sites over a WAN link
)

func (p LatencyProfile) model() simnet.LatencyModel {
	switch p {
	case LatencyLAN:
		return simnet.LANLatency()
	case LatencyWAN:
		return simnet.NewPairwiseLatency(simnet.WANLatency(), simnet.LANLatency())
	case LatencyPlanetLab:
		return simnet.NewPairwiseLatency(simnet.PlanetLabLatency(), simnet.LANLatency())
	case LatencyTwoCluster:
		return simnet.TwoClusterLatency()
	default:
		return simnet.ConstantLatency(time.Millisecond)
	}
}

// Config parameterizes a Cluster.
type Config struct {
	// Peers is the number of key-space partitions (default 16).
	Peers int
	// Replicas is the replica-group size per partition (default 1).
	Replicas int
	// Latency selects the delay model (default constant 1ms).
	Latency LatencyProfile
	// LossRate drops messages with this probability.
	LossRate float64
	// Seed drives all randomness (default 1).
	Seed int64
	// EnableQGram maintains the distributed q-gram index on inserts.
	EnableQGram bool
	// Optimizer tunes plan selection; zero value = DefaultOptions.
	Optimizer optimizer.Options
	// DisableOptimizer executes plans exactly as compiled.
	DisableOptimizer bool
	// AntiEntropyInterval is the period of digest-based replica
	// reconciliation: replicas exchange per-prefix version summaries
	// and pull only the differing buckets, in PageSize-bounded pages.
	// 0 disables the rounds.
	AntiEntropyInterval time.Duration
	// ReadReplicas bounds how many replicas the read path spreads
	// probes and page pulls over (power-of-two-choices with hedged
	// failover): 0 uses every replica the routing caches learn, 1 pins
	// reads to the primary owner — the single-owner baseline.
	ReadReplicas int
	// HedgeAfter is the simulated time a direct probe may stay
	// unanswered before it is hedged to a sibling replica (range scans
	// re-shower missing partitions at a multiple of it). 0 selects
	// pgrid.DefaultHedgeAfter; negative disables hedging and scan
	// retries (fail-slow: churned queries wait out the operation
	// deadline).
	HedgeAfter time.Duration
	// AdaptiveSamples, when non-nil, builds the trie adapted to this
	// key sample (load balancing under skew) instead of peer-balanced.
	AdaptiveSamples []keys.Key
	// Concurrent switches the simulated network into concurrent mode
	// once the overlay is built: messages are delivered by per-node
	// worker goroutines in parallel, and queries/inserts may be issued
	// from many goroutines at once. Exact per-seed repeatability of
	// message interleavings is traded for wall-clock parallelism; the
	// overlay topology itself is still built deterministically.
	Concurrent bool
	// TimeDilation compresses simulated link latency into wall clock
	// in concurrent mode: wall = simulated/TimeDilation (default
	// simnet.DefaultTimeDilation = 1000, i.e. a 1ms link costs 1µs).
	// Lower values make the simulation more faithful to real latency;
	// 1 runs in real time. Ignored in deterministic mode.
	TimeDilation float64
	// ProbeParallelism bounds each query's in-flight fan-out window:
	// at most this many overlay probes or range shards in flight at
	// once across the query's whole streaming pipeline. 0 = unbounded
	// full fan-out (default), 1 = strictly sequential probing (the
	// benchmarks' baseline).
	ProbeParallelism int
	// RangeShards splits every range scan into this many key-space
	// shards showered independently (<= 1 disables sharding).
	RangeShards int
	// PageSize bounds every range-scan response to this many entries:
	// a responsible peer with more rows answers in pages, and the
	// query origin pulls continuations only while its pipeline still
	// needs rows — an early-terminated LIMIT/top-k never requests the
	// next page. 0 disables paging (one monolithic response per
	// partition, the pre-paging behaviour).
	PageSize int
	// DisableRouteCache turns off the peers' learned partition→node
	// routing caches (and with them probe batching): every probe pays
	// the full O(log n) routed path. Benchmarks use it as the baseline
	// for the fast-path comparison.
	DisableRouteCache bool
	// FlowWindowBytes is each peer's receive window in payload bytes for
	// credit-gated bulk streams (paged scans, anti-entropy pages,
	// replicated insert fan-out): receivers advertise at most this much
	// un-acked in-flight data per sender, shrunk while their inbound
	// backlog grows. 0 selects pgrid's default (64 KiB).
	FlowWindowBytes int
	// FlowWindowMsgs is the companion message-count window (0 selects
	// pgrid's default of 32).
	FlowWindowMsgs int
	// DisableFlowControl turns off receiver-driven credit gating
	// entirely: windows advertise as unlimited and senders never park
	// bulk sends. Benchmarks use it as the uncontrolled baseline.
	DisableFlowControl bool
	// Tracing enables end-to-end query tracing: peers record serving
	// spans for traced operations and piggyback them home on responses,
	// and every query Result carries the assembled QueryTrace. Off by
	// default — traced runs pay extra bytes (never extra messages).
	Tracing bool
}

func (c Config) withDefaults() Config {
	if c.Peers <= 0 {
		c.Peers = 16
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Optimizer == (optimizer.Options{}) {
		c.Optimizer = optimizer.DefaultOptions()
	}
	if c.DisableOptimizer {
		c.Optimizer.Disabled = true
	}
	return c
}

// Cluster is a running universal storage: the simulated network, the
// overlay peers, and a query engine per peer. With Config.Concurrent
// set, Insert/Query may be called from multiple goroutines; call Close
// when done to stop the network goroutines.
type Cluster struct {
	cfg     Config
	pcfg    pgrid.Config
	net     *simnet.Network
	peers   []*pgrid.Peer
	engines []*physical.Engine
	opt     *optimizer.Optimizer
	stats   *cost.Stats
	// statsMu guards the optimizer statistics: ingest paths write them
	// and query optimization (including per-host re-optimization of
	// migrated plans) reads them, possibly from many goroutines in
	// concurrent mode.
	statsMu sync.RWMutex
	clock   atomic.Uint64
	// rates memoizes the O(peers) routing-cache counter aggregation so
	// repeated compilations at large N don't rescan every peer; entries
	// expire after rateWindow of simulated time.
	ratesMu   sync.Mutex
	ratesOK   bool
	ratesAt   time.Duration
	hitRate   float64
	retryRate float64
	probeRTT  time.Duration
	pressure  float64
	// reg is the cluster's unified metrics registry: peer and network
	// counters surface there under stable dotted names at snapshot time.
	reg *trace.Registry
}

// lockedReopt adapts the optimizer's Rechoose to the cluster's stats
// lock: hosted-plan re-optimization runs on network worker goroutines
// and must not race with concurrent ingest updating the statistics.
type lockedReopt struct{ c *Cluster }

func (l lockedReopt) Rechoose(steps []physical.Step, tail physical.Tail, bindingCount int, peer *pgrid.Peer) []physical.Step {
	l.c.statsMu.RLock()
	defer l.c.statsMu.RUnlock()
	return l.c.opt.Rechoose(steps, tail, bindingCount, peer)
}

// NewCluster builds and wires a cluster.
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	net := simnet.New(simnet.Config{
		Latency:  cfg.Latency.model(),
		LossRate: cfg.LossRate,
		Seed:     cfg.Seed,
	})
	pcfg := pgrid.DefaultConfig()
	if cfg.AntiEntropyInterval > 0 {
		pcfg.AntiEntropyEvery = int64(cfg.AntiEntropyInterval)
	}
	pcfg.PageSize = cfg.PageSize
	pcfg.DisableRouteCache = cfg.DisableRouteCache
	pcfg.ReadReplicas = cfg.ReadReplicas
	pcfg.HedgeAfter = int64(cfg.HedgeAfter)
	pcfg.FlowWindowBytes = cfg.FlowWindowBytes
	pcfg.FlowWindowMsgs = cfg.FlowWindowMsgs
	pcfg.DisableFlowControl = cfg.DisableFlowControl
	pcfg.Tracing = cfg.Tracing
	var peers []*pgrid.Peer
	if cfg.AdaptiveSamples != nil {
		peers = pgrid.BuildAdaptive(net, cfg.Peers, cfg.Replicas, cfg.AdaptiveSamples, pcfg)
	} else {
		// Build from the same seeded spec plan NewNode uses: the ref
		// tables become a pure function of (peers, replicas, seed), so a
		// simnet cluster and a multi-process TCP cluster of the same
		// scenario share routing structure — a traced query assembles a
		// structurally identical tree on either transport.
		specs := pgrid.BalancedSpecs(cfg.Peers, cfg.Replicas, pcfg, cfg.Seed)
		var err error
		peers, err = pgrid.BuildFromSpecs(net, specs, specs, pcfg)
		if err != nil {
			// Unreachable: a fresh simulator hosting every spec assigns
			// IDs sequentially, exactly as the specs name them.
			panic(err)
		}
	}
	stats := cost.DefaultStats(cfg.Peers)
	stats.Replicas = cfg.Replicas
	stats.TotalTriples = 0
	stats.PageSize = cfg.PageSize
	stats.ReadReplicas = effectiveReadReplicas(cfg)
	opt := optimizer.New(stats, cfg.Optimizer)
	c := &Cluster{cfg: cfg, pcfg: pcfg, net: net, peers: peers, opt: opt, stats: stats}
	c.reg = trace.NewRegistry()
	registerPeerMetrics(c.reg, func() []*pgrid.Peer { return c.peers })
	c.reg.OnCollect(func(r *trace.Registry) {
		st := c.net.Stats()
		setCounter(r, "net.messages_sent", int64(st.MessagesSent))
		setCounter(r, "net.messages_delivered", int64(st.MessagesDelivered))
		setCounter(r, "net.messages_dropped", int64(st.MessagesDropped))
		setCounter(r, "net.bytes_sent", int64(st.BytesSent))
	})
	for _, p := range peers {
		eng := physical.NewEngine(p, lockedReopt{c})
		eng.SetParallelism(cfg.ProbeParallelism)
		eng.SetRangeShards(cfg.RangeShards)
		c.engines = append(c.engines, eng)
	}
	if cfg.Concurrent {
		net.StartConcurrent(cfg.TimeDilation)
	}
	return c
}

// Close stops the network goroutines of a concurrent cluster (no-op in
// deterministic mode). The cluster must not be used afterwards.
func (c *Cluster) Close() { c.net.Stop() }

// Engine exposes the query engine attached to one peer (benchmarks and
// tests tune fan-out windows through it).
func (c *Cluster) Engine(peerIdx int) *physical.Engine {
	return c.engines[peerIdx%len(c.engines)]
}

// Net exposes the simulated network (experiment instrumentation).
func (c *Cluster) Net() *simnet.Network { return c.net }

// Peers returns the overlay peers.
func (c *Cluster) Peers() []*pgrid.Peer { return c.peers }

// Stats returns the optimizer's statistics snapshot.
func (c *Cluster) Stats() *cost.Stats { return c.stats }

// Registry returns the cluster's unified metrics registry. Snapshot it
// for point-in-time values, or take before/after Snapshot.Sub deltas
// around a query for per-query attribution.
func (c *Cluster) Registry() *trace.Registry { return c.reg }

// Size returns the number of peers.
func (c *Cluster) Size() int { return len(c.peers) }

// nextVersion issues a cluster-wide write version.
func (c *Cluster) nextVersion() uint64 { return c.clock.Add(1) }

// --- Data ingestion ---------------------------------------------------------

// Insert stores triples from an arbitrary peer and drains the network
// (all index entries and replicas placed). Statistics update so the
// optimizer sees real attribute cardinalities.
func (c *Cluster) Insert(ts ...triple.Triple) {
	c.InsertFrom(int(c.net.Int63())%len(c.peers), ts...)
}

// InsertFrom stores triples entering the system at a specific peer.
func (c *Cluster) InsertFrom(peerIdx int, ts ...triple.Triple) {
	p := c.peers[peerIdx%len(c.peers)]
	v := c.nextVersion()
	for _, tr := range ts {
		p.InsertTriple(tr, v)
		if c.cfg.EnableQGram {
			physical.InsertGrams(p, tr, v)
		}
	}
	c.noteInserted(ts)
	c.net.Settle()
}

// noteInserted updates the optimizer statistics for freshly ingested
// triples; the stats lock orders it against concurrent optimization.
func (c *Cluster) noteInserted(ts []triple.Triple) {
	c.statsMu.Lock()
	for _, tr := range ts {
		c.stats.TriplesPerAttr[tr.Attr]++
	}
	c.stats.TotalTriples += len(ts)
	c.statsMu.Unlock()
}

// bulkLoaders bounds the goroutines a concurrent-mode BulkInsert uses.
const bulkLoaders = 8

// BulkInsert loads triples through the parallel bulk-insert path: the
// batch is split across source peers (spreading the routing load over
// the overlay instead of funnelling every insert through one origin)
// and, in concurrent mode, issued from a bounded pool of loader
// goroutines. One network quiescence at the end replaces the per-call
// settling of Insert, so the DHT round trips of a batch overlap
// instead of serializing — O(1) wall-clock per batch rather than
// O(triples).
func (c *Cluster) BulkInsert(ts ...triple.Triple) {
	if len(ts) == 0 {
		return
	}
	v := c.nextVersion()
	c.noteInserted(ts)
	loaders := len(c.peers)
	if loaders > bulkLoaders {
		loaders = bulkLoaders
	}
	if !c.net.Concurrent() || loaders <= 1 {
		// Deterministic mode: issue everything fire-and-forget from
		// round-robin origins, then drain the network once.
		for i, tr := range ts {
			c.insertAt(c.peers[i%len(c.peers)], tr, v)
		}
		c.net.Settle()
		return
	}
	var wg sync.WaitGroup
	chunk := (len(ts) + loaders - 1) / loaders
	for w := 0; w < loaders; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ts) {
			hi = len(ts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, part []triple.Triple) {
			defer wg.Done()
			p := c.peers[w%len(c.peers)]
			for _, tr := range part {
				c.insertAt(p, tr, v)
			}
		}(w, ts[lo:hi])
	}
	wg.Wait()
	c.net.Quiesce()
}

// BulkInsertAcked loads triples through the acked, replica-aware write
// path: every entry is tracked to its ack (dead or slow owners retried
// to siblings), and sends toward a known partition owner are
// credit-gated against that receiver's advertised flow window — the
// write path benchmarks exercise when measuring backpressure. Origins
// rotate round-robin like BulkInsert but skip dead peers (a dead
// origin would apply locally and never replicate); one quiescence at
// the end covers the acks.
func (c *Cluster) BulkInsertAcked(ts ...triple.Triple) {
	if len(ts) == 0 {
		return
	}
	var live []*pgrid.Peer
	for _, p := range c.peers {
		if c.net.Alive(p.ID()) {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return
	}
	v := c.nextVersion()
	c.noteInserted(ts)
	for i, tr := range ts {
		p := live[i%len(live)]
		p.InsertTripleAcked(tr, v, nil)
		if c.cfg.EnableQGram {
			physical.InsertGrams(p, tr, v)
		}
	}
	c.settle()
}

// BulkInsertTuples decomposes and bulk-loads logical tuples.
func (c *Cluster) BulkInsertTuples(tps ...*triple.Tuple) {
	var ts []triple.Triple
	for _, tp := range tps {
		ts = append(ts, tp.Triples()...)
	}
	c.BulkInsert(ts...)
}

// insertAt issues one triple (and its q-gram postings) from peer p.
func (c *Cluster) insertAt(p *pgrid.Peer, tr triple.Triple, v uint64) {
	p.InsertTriple(tr, v)
	if c.cfg.EnableQGram {
		physical.InsertGrams(p, tr, v)
	}
}

// InsertTuple decomposes and stores one logical tuple.
func (c *Cluster) InsertTuple(tp *triple.Tuple) {
	c.Insert(tp.Triples()...)
}

// Update overwrites fact (oid, attr) with a new value at a fresh
// version; replicas converge by gossip/anti-entropy.
func (c *Cluster) Update(tr triple.Triple) {
	p := c.peers[int(c.net.Int63())%len(c.peers)]
	c.insertAt(p, tr, c.nextVersion())
	c.net.Settle()
}

// Delete tombstones fact (oid, attr).
func (c *Cluster) Delete(oid, attr string) {
	p := c.peers[int(c.net.Int63())%len(c.peers)]
	p.DeleteTriple(oid, attr, c.nextVersion())
	c.net.Settle()
}

// AddMapping publishes an attribute correspondence into the overlay.
func (c *Cluster) AddMapping(m schema.Mapping) {
	c.Insert(m.Triples(triple.GenerateOID("map"))...)
}

// --- Querying ----------------------------------------------------------------

// Result is a completed query: bindings plus execution metrics.
type Result struct {
	Bindings []algebra.Binding
	Vars     []string
	Elapsed  time.Duration // simulated time
	// TimeToFirst is the simulated time until the first result row was
	// available from the streaming pipeline (equal to Elapsed for
	// blocking tails such as skyline and full sorts).
	TimeToFirst time.Duration
	// Messages is the network-wide message traffic attributed to this
	// query. It is measured as a counter delta, which is only
	// meaningful when queries run one at a time — in concurrent mode
	// (overlapping queries, background timers) it reports 0.
	Messages int
	Hops     int
	Plan     string
	// Trace is the assembled end-to-end trace of this query — the
	// synthetic query root, one span per pipeline stage, and every
	// overlay span the traced operations produced (including spans
	// shipped home by migrated plan remainders). Nil unless the cluster
	// was built with Config.Tracing.
	Trace *trace.QueryTrace
}

// Rows renders the bindings as string rows following Vars order — the
// demo UI's result tab.
func (r *Result) Rows() [][]string {
	rows := make([][]string, 0, len(r.Bindings))
	for _, b := range r.Bindings {
		row := make([]string, len(r.Vars))
		for i, v := range r.Vars {
			if val, ok := b[v]; ok {
				row[i] = val.String()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Query parses and executes VQL from a random peer.
func (c *Cluster) Query(src string) (*Result, error) {
	return c.QueryFrom(int(c.net.Int63())%len(c.peers), src)
}

// QueryFrom executes VQL originating at a specific peer.
func (c *Cluster) QueryFrom(peerIdx int, src string) (*Result, error) {
	return c.QueryFromCtx(context.Background(), peerIdx, src)
}

// QueryCtx executes VQL from a random peer under a cancellation
// context: canceling ctx terminates the query early — unissued probes
// and shards are never sent, pending overlay operations are released —
// and returns the rows produced so far.
func (c *Cluster) QueryCtx(ctx context.Context, src string) (*Result, error) {
	return c.QueryFromCtx(ctx, int(c.net.Int63())%len(c.peers), src)
}

// QueryFromCtx is QueryCtx originating at a specific peer.
func (c *Cluster) QueryFromCtx(ctx context.Context, peerIdx int, src string) (*Result, error) {
	q, err := vql.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return c.execQueryCtx(ctx, peerIdx, q)
}

func (c *Cluster) execQuery(peerIdx int, q *vql.Query) (*Result, error) {
	return c.execQueryCtx(context.Background(), peerIdx, q)
}

func (c *Cluster) execQueryCtx(ctx context.Context, peerIdx int, q *vql.Query) (*Result, error) {
	plan, err := c.compile(q)
	if err != nil {
		return nil, err
	}
	eng := c.engines[peerIdx%len(c.engines)]
	concurrent := c.net.Concurrent()
	before := 0
	if !concurrent {
		before = c.net.Stats().MessagesSent
	}
	bs, ex := eng.RunPlanCtx(ctx, plan)
	res := &Result{
		Bindings:    bs,
		Vars:        resultVars(q),
		Elapsed:     ex.Elapsed(),
		TimeToFirst: ex.TimeToFirst(),
		Hops:        ex.MaxHops(),
		Plan:        plan.String(),
		Trace:       ex.Trace(),
	}
	if !concurrent {
		res.Messages = c.net.Stats().MessagesSent - before
	}
	return res, nil
}

// effectiveReadReplicas is the replica count the read path can
// actually spread over: the configured bound clipped to the replica
// group size.
func effectiveReadReplicas(cfg Config) int {
	r := cfg.Replicas
	if cfg.ReadReplicas > 0 && cfg.ReadReplicas < r {
		r = cfg.ReadReplicas
	}
	if r < 1 {
		r = 1
	}
	return r
}

// compile parses nothing — it lowers and cost-optimizes a parsed query
// under the statistics lock, after refreshing the observed routing-
// cache hit rate and probe-retry rate so probe pricing tracks how warm
// the caches really are and how churned the overlay is.
func (c *Cluster) compile(q *vql.Query) (*physical.Plan, error) {
	plan, err := physical.CompileQuery(q)
	if err != nil {
		return nil, err
	}
	rate, retries, rtt, pressure := c.routeCacheRates()
	// Store the refreshed rates under the brief write lock, then
	// optimize under the read lock so concurrent compilations still
	// run in parallel.
	c.statsMu.Lock()
	c.stats.CacheHitRate = rate
	c.stats.RetryRate = retries
	c.stats.ProbeRTT = rtt
	c.stats.Pressure = pressure
	c.statsMu.Unlock()
	c.statsMu.RLock()
	c.opt.Optimize(plan)
	c.statsMu.RUnlock()
	return plan, nil
}

// routeCacheRates aggregates the peers' routing-cache counters into
// the fraction of probes that went direct (the cost model's
// CacheHitRate input), the fraction of direct probe GROUPS that had
// to be hedged or retried (its RetryRate input — groups over groups,
// so batching many keys into one group cannot dilute the rate), and
// the mean of the cached per-replica latency EWMAs (its ProbeRTT
// input — direct probes priced at the round trips the replica
// choosers actually observed).
// rateWindow is how long (simulated time) a memoized rate snapshot
// stays fresh. Short enough that a warmup phase followed by a measured
// query recomputes, long enough that back-to-back compilations at
// 1024 peers pay the full-peer scan once.
const rateWindow = 5 * time.Millisecond

func (c *Cluster) routeCacheRates() (hitRate, retryRate float64, probeRTT time.Duration, pressure float64) {
	now := c.net.Now()
	c.ratesMu.Lock()
	if c.ratesOK && now >= c.ratesAt && now-c.ratesAt < rateWindow {
		hitRate, retryRate, probeRTT, pressure = c.hitRate, c.retryRate, c.probeRTT, c.pressure
		c.ratesMu.Unlock()
		return
	}
	c.ratesMu.Unlock()
	hitRate, retryRate, probeRTT, pressure = c.scanCacheRates()
	c.ratesMu.Lock()
	c.ratesOK, c.ratesAt = true, now
	c.hitRate, c.retryRate, c.probeRTT, c.pressure = hitRate, retryRate, probeRTT, pressure
	c.ratesMu.Unlock()
	return
}

// scanCacheRates does the actual O(peers) counter aggregation.
func (c *Cluster) scanCacheRates() (hitRate, retryRate float64, probeRTT time.Duration, pressure float64) {
	hits, misses, groups, retries := 0, 0, 0, 0
	bulkSends, stalls := 0, 0
	var rttSum time.Duration
	rttN := 0
	for _, p := range c.peers {
		st := p.Stats()
		hits += st.RouteCacheHits
		misses += st.RouteCacheMisses
		groups += st.ProbeGroups
		retries += st.ProbeRetries
		bulkSends += st.FlowBulkSends
		stalls += st.FlowStalls
		sum, n := p.RouteCacheLatency()
		rttSum += sum
		rttN += n
	}
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	if groups > 0 {
		retryRate = float64(retries) / float64(groups)
		if retryRate > 1 {
			retryRate = 1
		}
	}
	if rttN > 0 {
		probeRTT = rttSum / time.Duration(rttN)
	}
	if bulkSends > 0 {
		pressure = float64(stalls) / float64(bulkSends)
		if pressure > 1 {
			pressure = 1
		}
	}
	return hitRate, retryRate, probeRTT, pressure
}

// Stream is an open streaming query: rows arrive through Next as the
// distributed pipeline produces them, before the query has finished —
// the time-to-first-result interface. Close abandons the remainder.
type Stream struct {
	// Vars lists the result variables in projection order.
	Vars []string
	cur  *physical.Cursor
	plan string
}

// QueryStream opens a VQL query from a random peer and returns a pull
// cursor over its result stream. The caller must exhaust or Close it.
func (c *Cluster) QueryStream(ctx context.Context, src string) (*Stream, error) {
	return c.QueryStreamFrom(ctx, int(c.net.Int63())%len(c.peers), src)
}

// QueryStreamFrom is QueryStream originating at a specific peer.
func (c *Cluster) QueryStreamFrom(ctx context.Context, peerIdx int, src string) (*Stream, error) {
	q, err := vql.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	plan, err := c.compile(q)
	if err != nil {
		return nil, err
	}
	eng := c.engines[peerIdx%len(c.engines)]
	return &Stream{
		Vars: resultVars(q),
		cur:  eng.Open(ctx, plan),
		plan: plan.String(),
	}, nil
}

// Next returns the next result row; ok is false at end of stream. In
// deterministic mode it drives the simulated network; in concurrent
// mode it blocks until the pipeline emits.
func (s *Stream) Next() (algebra.Binding, bool) { return s.cur.Next() }

// Close terminates the query early, canceling its remaining overlay
// operations. Safe after exhaustion.
func (s *Stream) Close() { s.cur.Close() }

// Plan renders the executed physical plan.
func (s *Stream) Plan() string { return s.plan }

// TimeToFirst reports the simulated time until the first row was
// available (valid once at least one row arrived or the stream ended).
func (s *Stream) TimeToFirst() time.Duration { return s.cur.Exec().TimeToFirst() }

// Elapsed reports the query's total simulated time (valid once the
// stream ended).
func (s *Stream) Elapsed() time.Duration { return s.cur.Exec().Elapsed() }

// QueryWithMappings answers a query over heterogeneous schemas: it
// first retrieves all correspondence triples from the overlay, then
// executes every rewriting of the query and unites the results — the
// paper's "automatically by the system" path.
func (c *Cluster) QueryWithMappings(src string) (*Result, error) {
	q, err := vql.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	peerIdx := int(c.net.Int63()) % len(c.peers)
	mapRes, err := c.execQuery(peerIdx, schema.MappingQuery())
	if err != nil {
		return nil, err
	}
	var mappings []schema.Mapping
	for _, b := range mapRes.Bindings {
		mappings = append(mappings, schema.Mapping{
			From: b["f"].Str, To: b["t"].Str,
		})
	}
	closure := schema.NewClosure(mappings)
	// Ranking, aggregation, ordering, limiting and projection must
	// apply to the UNION of the variants' bindings, not per variant (a
	// union of skylines is not the skyline of the union, and a union of
	// group counts is not the count of the union) — so the variants run
	// without the tail clauses, which are applied afterwards.
	tail := physical.Tail{
		Skyline: q.Skyline,
		OrderBy: q.OrderBy,
		TopN:    q.Top,
		Limit:   q.Limit,
		Project: q.Select,
	}
	if aggNode, outs, err := algebra.AggregateClauses(q); err != nil {
		return nil, err
	} else if aggNode != nil {
		tail.GroupBy = aggNode.GroupBy
		tail.Aggs = aggNode.Items
		tail.Having = aggNode.Having
		if len(q.Select) > 0 || len(q.Aggs) > 0 {
			tail.Project = append(append([]string{}, q.Select...), outs...)
		}
	}
	stripped := *q
	stripped.Skyline = nil
	stripped.OrderBy = nil
	stripped.Limit = 0
	stripped.Top = false
	stripped.Select = nil
	stripped.Aggs = nil
	stripped.GroupBy = nil
	stripped.Having = nil
	stripped.Distinct = false
	variants := schema.Rewrite(&stripped, closure)
	union := &Result{Vars: resultVars(q)}
	seen := map[string]bool{}
	for _, v := range variants {
		r, err := c.execQuery(peerIdx, v)
		if err != nil {
			return nil, err
		}
		union.Messages += r.Messages
		if r.Elapsed > union.Elapsed {
			union.Elapsed = r.Elapsed
		}
		for _, b := range r.Bindings {
			k := bindingKey(b)
			if !seen[k] {
				seen[k] = true
				union.Bindings = append(union.Bindings, b)
			}
		}
	}
	union.Messages += mapRes.Messages
	union.Bindings = tail.Apply(union.Bindings)
	return union, nil
}

func bindingKey(b algebra.Binding) string {
	var vars []string
	for k := range b {
		vars = append(vars, k)
	}
	sort.Strings(vars)
	var sb strings.Builder
	for _, v := range vars {
		sb.WriteString(v + "=" + b[v].Lexical() + ";")
	}
	return sb.String()
}

func resultVars(q *vql.Query) []string {
	if len(q.Select) > 0 || len(q.Aggs) > 0 {
		out := append([]string{}, q.Select...)
		for _, a := range q.Aggs {
			out = append(out, a.As)
		}
		return out
	}
	return q.Vars()
}

// --- Introspection (the demo UI's inspection tabs) ---------------------------

// LocalData returns the triples stored at one peer — "inspect the
// local data".
func (c *Cluster) LocalData(peerIdx int) []triple.Triple {
	return c.peers[peerIdx%len(c.peers)].Store().All()
}

// RoutingTable renders one peer's routing table — "inspect the locally
// built routing tables".
func (c *Cluster) RoutingTable(peerIdx int) string {
	p := c.peers[peerIdx%len(c.peers)]
	var sb strings.Builder
	fmt.Fprintf(&sb, "peer %d path=%s replicas=%d\n", p.ID(), p.Path(), len(p.Replicas()))
	for l := 0; l < p.Levels(); l++ {
		fmt.Fprintf(&sb, "  level %d:", l)
		for _, r := range p.Refs(l) {
			fmt.Fprintf(&sb, " %d(%s)", r.ID, r.Path)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// StorageLoad returns per-peer live entry counts — the load-balancing
// measurements.
func (c *Cluster) StorageLoad() []int {
	out := make([]int, len(c.peers))
	for i, p := range c.peers {
		out[i] = p.Store().Len()
	}
	return out
}

// Kill and Revive drive churn experiments.
func (c *Cluster) Kill(peerIdx int)   { c.net.Kill(c.peers[peerIdx%len(c.peers)].ID()) }
func (c *Cluster) Revive(peerIdx int) { c.net.Revive(c.peers[peerIdx%len(c.peers)].ID()) }

// settle drains the network in whichever mode it runs.
func (c *Cluster) settle() {
	if c.net.Concurrent() {
		c.net.Quiesce()
	} else {
		c.net.Settle()
	}
}

// samePathGroup returns every live peer sharing peers[idx]'s partition
// path — the replica group the membership operations act on.
func (c *Cluster) samePathGroup(idx int) []*pgrid.Peer {
	base := c.peers[idx%len(c.peers)].Path()
	var g []*pgrid.Peer
	for _, p := range c.peers {
		if p.Path().Equal(base) {
			g = append(g, p)
		}
	}
	return g
}

// JoinPeer boots a brand-new peer into the running cluster via the
// overlay join protocol: it contacts the target, adopts its partition
// path, routing refs and replica set, and receives the partition's
// state by anti-entropy pages. The group grows by one replica; call
// SplitGroup afterwards to divide the enlarged group into two deeper
// partitions. Returns the new peer's index.
func (c *Cluster) JoinPeer(targetIdx int) int {
	target := c.peers[targetIdx%len(c.peers)]
	p := pgrid.NewPeer(c.net, c.pcfg)
	p.Join(target.ID())
	c.settle()
	eng := physical.NewEngine(p, lockedReopt{c})
	eng.SetParallelism(c.cfg.ProbeParallelism)
	eng.SetRangeShards(c.cfg.RangeShards)
	c.peers = append(c.peers, p)
	c.engines = append(c.engines, eng)
	return len(c.peers) - 1
}

// RejoinPeer boots a replacement peer into the running cluster via the
// restart-rejoin protocol: prepare (when non-nil) runs before any
// message flows — it is where the caller recovers the peer's store from
// its WAL directory — and the peer then re-registers with the target's
// replica group. With recovered state the catch-up is digest-delta
// anti-entropy (cost ∝ missed writes); with an empty store it degrades
// to the full-state join sync. Returns the new peer's index.
func (c *Cluster) RejoinPeer(targetIdx int, prepare func(*pgrid.Peer) error) (int, error) {
	target := c.peers[targetIdx%len(c.peers)]
	p := pgrid.NewPeer(c.net, c.pcfg)
	if prepare != nil {
		if err := prepare(p); err != nil {
			return -1, err
		}
	}
	p.Rejoin(target.ID())
	c.settle()
	eng := physical.NewEngine(p, lockedReopt{c})
	eng.SetParallelism(c.cfg.ProbeParallelism)
	eng.SetRangeShards(c.cfg.RangeShards)
	c.peers = append(c.peers, p)
	c.engines = append(c.engines, eng)
	return len(c.peers) - 1, nil
}

// SplitGroup performs a live P-Grid split of peers[peerIdx]'s replica
// group: the group divides into the path+0 and path+1 halves, each half
// retains only its partition's entries and hands the rest to the other
// side, and stale routing-cache entries for the old partition are
// invalidated cluster-wide as queries observe the new paths. Queries
// in flight across the split stay exact (scan claims migrate and the
// coverage ledger accounts for the abandoned half).
func (c *Cluster) SplitGroup(peerIdx int) error {
	if err := pgrid.SplitGroup(c.samePathGroup(peerIdx)); err != nil {
		return err
	}
	c.settle()
	return nil
}

// MergeGroup retires peers[peerIdx]'s replica group by merging its
// partition into the sibling partition: the leavers first transfer all
// their entries to the sibling group (data phase), the sibling group
// widens its path to the common parent, and the leavers then depart.
// The sibling must be a leaf partition (exact sibling path) — merging
// into a subdivided sibling would need a cascade of merges.
func (c *Cluster) MergeGroup(peerIdx int) error {
	leavers := c.samePathGroup(peerIdx)
	base := leavers[0].Path()
	if base.Len() == 0 {
		return fmt.Errorf("core: cannot merge the root partition")
	}
	sibling := base.Prefix(base.Len() - 1).Append(1 - base.Bit(base.Len()-1))
	var sibs []*pgrid.Peer
	for _, p := range c.peers {
		if p.Path().Equal(sibling) {
			sibs = append(sibs, p)
		}
	}
	if len(sibs) == 0 {
		return fmt.Errorf("core: no leaf group at sibling partition %s", sibling)
	}
	// Data before structure: the widened group must already hold the
	// leavers' entries when routing starts sending it the merged
	// partition's queries.
	pgrid.TransferStores(leavers, sibs[0])
	c.settle()
	if err := pgrid.WidenGroup(sibs); err != nil {
		return err
	}
	for _, p := range leavers {
		c.net.Kill(p.ID())
	}
	c.settle()
	return nil
}
