package core

import (
	"sort"
	"strings"
	"testing"
	"time"

	"unistore/internal/workload"
)

// startNodes launches an in-process multi-"process" cluster: several
// core.Nodes, each with its own netx transport on loopback TCP.
func startNodes(t *testing.T, procs, parts, replicas int) []*Node {
	t.Helper()
	nodes := make([]*Node, 0, procs)
	var seeds []string
	for pi := 0; pi < procs; pi++ {
		n, err := NewNode(NodeConfig{
			Seeds: seeds, Partitions: parts, Replicas: replicas,
			Procs: procs, ProcIndex: pi, Seed: 5, PageSize: 8,
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if pi == 0 {
			seeds = []string{n.Addr()}
		}
	}
	for _, n := range nodes {
		if !n.WaitReady(10 * time.Second) {
			t.Fatalf("node %s never saw full routes: %v", n.Addr(), n.Transport().Routes())
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close(5 * time.Second)
		}
	})
	return nodes
}

func sortedRows(r *Result) []string {
	rows := make([]string, 0, len(r.Bindings))
	for _, row := range r.Rows() {
		rows = append(rows, strings.Join(row, "\t"))
	}
	sort.Strings(rows)
	return rows
}

// TestNodeMatchesSimnetCluster loads the same workload into a
// multi-transport Node cluster and a single-process simnet Cluster and
// requires identical answers for lookups, range filters, and
// aggregations — the tentpole's equivalence claim in miniature.
func TestNodeMatchesSimnetCluster(t *testing.T) {
	const procs, parts, replicas = 2, 4, 2
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 25})

	ref := NewCluster(Config{Peers: parts, Replicas: replicas, Seed: 5})
	ref.Insert(ds.Triples...)

	nodes := startNodes(t, procs, parts, replicas)
	w := nodes[0]
	for _, tr := range ds.Triples {
		if err := w.Insert(tr, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if !n.Barrier(10 * time.Second) {
			t.Fatal("barrier did not quiesce")
		}
	}

	queries := []string{
		`SELECT ?n WHERE {(?p,'name',?n)}`,
		`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30}`,
		`SELECT count(?a) AS ?cnt WHERE {(?p,'age',?a)}`,
		`SELECT ?conf, count(*) AS ?cnt WHERE {(?u,'published_in',?conf)} GROUP BY ?conf`,
	}
	for _, q := range queries {
		want, err := ref.Query(q)
		if err != nil {
			t.Fatalf("%s: reference: %v", q, err)
		}
		// Query from every process: answers must agree regardless of
		// which side of the TCP split originates the plan.
		for ni, n := range nodes {
			got, err := n.Query(q)
			if err != nil {
				t.Fatalf("%s: node %d: %v", q, ni, err)
			}
			w, g := sortedRows(want), sortedRows(got)
			if strings.Join(w, "\n") != strings.Join(g, "\n") {
				t.Errorf("%s: node %d diverged\nsimnet (%d rows):\n%s\nnode (%d rows):\n%s",
					q, ni, len(w), strings.Join(w, "\n"), len(g), strings.Join(g, "\n"))
			}
		}
	}
}

// TestNodeSurvivesPeerProcessDeath closes one node outright (the
// in-process analog of kill -9) and checks the survivor still answers
// every query completely from its replica halves.
func TestNodeSurvivesPeerProcessDeath(t *testing.T) {
	const procs, parts, replicas = 2, 4, 2
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 20})

	ref := NewCluster(Config{Peers: parts, Replicas: replicas, Seed: 5})
	ref.Insert(ds.Triples...)

	nodes := startNodes(t, procs, parts, replicas)
	for _, tr := range ds.Triples {
		if err := nodes[0].Insert(tr, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if !n.Barrier(10 * time.Second) {
			t.Fatal("barrier did not quiesce")
		}
	}
	// Hard-kill process 1: no graceful drain, just sever the transport.
	nodes[1].Transport().Close()

	q := `SELECT ?n WHERE {(?p,'name',?n)}`
	want, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nodes[0].Query(q)
	if err != nil {
		t.Fatal(err)
	}
	w, g := sortedRows(want), sortedRows(got)
	if strings.Join(w, "\n") != strings.Join(g, "\n") {
		t.Fatalf("post-death divergence\nwant (%d rows):\n%s\ngot (%d rows):\n%s",
			len(w), strings.Join(w, "\n"), len(g), strings.Join(g, "\n"))
	}
}
