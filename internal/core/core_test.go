package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"unistore/internal/optimizer"
	"unistore/internal/schema"
	"unistore/internal/triple"
	"unistore/internal/workload"
)

func smallCluster(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	c := NewCluster(cfg)
	ds := workload.Generate(workload.Options{Seed: 42, Persons: 40, TypoRate: 0.2})
	c.Insert(ds.Triples...)
	return c
}

func TestEndToEndQuery(t *testing.T) {
	c := smallCluster(t, Config{Peers: 16, Seed: 3})
	res, err := c.Query(`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30} ORDER BY ?a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) == 0 {
		t.Fatal("no young persons found")
	}
	prev := -1.0
	for _, b := range res.Bindings {
		a := b["a"].Num
		if a >= 30 {
			t.Errorf("filter leaked age %v", a)
		}
		if a < prev {
			t.Errorf("ORDER BY violated: %v after %v", a, prev)
		}
		prev = a
	}
	if res.Messages <= 0 || res.Elapsed <= 0 {
		t.Errorf("metrics missing: %+v", res)
	}
	if len(res.Vars) != 2 || res.Vars[0] != "n" {
		t.Errorf("vars = %v", res.Vars)
	}
}

func TestResultRows(t *testing.T) {
	c := smallCluster(t, Config{Peers: 8, Seed: 4})
	res, err := c.Query(`SELECT ?n WHERE {(?p,'name',?n)} LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 3 || len(rows[0]) != 1 || rows[0][0] == "" {
		t.Errorf("rows = %v", rows)
	}
}

func TestQueryFromEveryPeerAgrees(t *testing.T) {
	c := smallCluster(t, Config{Peers: 8, Seed: 5})
	var ref int
	for i := 0; i < c.Size(); i++ {
		res, err := c.QueryFrom(i, `SELECT ?p WHERE {(?p,'age',?a) FILTER ?a >= 40}`)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = len(res.Bindings)
			continue
		}
		if len(res.Bindings) != ref {
			t.Fatalf("peer %d sees %d results, peer 0 saw %d", i, len(res.Bindings), ref)
		}
	}
}

func TestUpdateAndDelete(t *testing.T) {
	c := NewCluster(Config{Peers: 8, Seed: 6})
	c.Insert(triple.T("p1", "phone", "111"))
	c.Update(triple.T("p1", "phone", "222"))
	res, err := c.Query(`SELECT ?v WHERE {('p1','phone',?v)}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0]["v"].Str != "222" {
		t.Fatalf("after update: %v", res.Bindings)
	}
	c.Delete("p1", "phone")
	res, err = c.Query(`SELECT ?v WHERE {('p1','phone',?v)}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 0 {
		t.Fatalf("after delete: %v", res.Bindings)
	}
}

func TestSimilarityQueryEndToEnd(t *testing.T) {
	c := NewCluster(Config{Peers: 16, Seed: 7, EnableQGram: true})
	ds := workload.Generate(workload.Options{Seed: 9, Persons: 30, TypoRate: 0.4})
	c.Insert(ds.Triples...)
	res, err := c.Query(`SELECT ?sr WHERE {(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}`)
	if err != nil {
		t.Fatal(err)
	}
	// Every returned series must be a (possibly typo'd) ICDE; the
	// ground truth map verifies.
	for _, b := range res.Bindings {
		sr := b["sr"].Str
		clean := ds.CleanSeries[sr]
		if clean != "ICDE" && clean != "ICDM" && clean != "ICDT" && clean != "CIDR" {
			// edist<3 can also legitimately match near series names;
			// just require the distance bound holds.
			t.Logf("matched %q (clean %q)", sr, clean)
		}
	}
}

func TestPaperQueryEndToEnd(t *testing.T) {
	c := smallCluster(t, Config{Peers: 32, Seed: 8, EnableQGram: true})
	res, err := c.Query(`SELECT ?n,?age,?cnt WHERE {
		(?a,'name',?n) (?a,'age',?age) (?a,'num_of_pubs',?cnt)
		(?a,'has_published',?title) (?p,'title',?title)
		(?p,'published_in',?conf) (?c,'confname',?conf)
		(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
	} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`)
	if err != nil {
		t.Fatal(err)
	}
	// Skyline invariant: no result dominates another.
	for i, a := range res.Bindings {
		for j, b := range res.Bindings {
			if i == j {
				continue
			}
			if a["age"].Num <= b["age"].Num && a["cnt"].Num >= b["cnt"].Num &&
				(a["age"].Num < b["age"].Num || a["cnt"].Num > b["cnt"].Num) {
				t.Errorf("skyline member %v dominates %v", a, b)
			}
		}
	}
}

func TestQueryWithMappings(t *testing.T) {
	c := NewCluster(Config{Peers: 16, Seed: 10})
	a, b, ms := workload.HeterogeneousPair(20, 10)
	c.Insert(a.Triples...)
	c.Insert(b.Triples...)
	// Without mappings: only dblp data answers.
	res, err := c.Query(`SELECT ?n WHERE {(?p,'dblp:name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	plain := len(res.Bindings)
	if plain != 10 {
		t.Fatalf("dblp-only recall = %d, want 10", plain)
	}
	for _, m := range ms {
		c.AddMapping(m)
	}
	mapped, err := c.QueryWithMappings(`SELECT ?n WHERE {(?p,'dblp:name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(mapped.Bindings) != 20 {
		t.Fatalf("mapped recall = %d, want 20 (both schemas)", len(mapped.Bindings))
	}
}

func TestIntrospection(t *testing.T) {
	c := smallCluster(t, Config{Peers: 8, Seed: 11})
	if len(c.LocalData(0)) == 0 {
		// Some peer must hold data; peer 0 might be empty by chance —
		// check the sum.
		total := 0
		for i := 0; i < c.Size(); i++ {
			total += len(c.LocalData(i))
		}
		if total == 0 {
			t.Error("no peer holds any data")
		}
	}
	rt := c.RoutingTable(0)
	if !strings.Contains(rt, "level") {
		t.Errorf("routing table rendering: %q", rt)
	}
	loads := c.StorageLoad()
	if len(loads) != 8 {
		t.Errorf("loads = %v", loads)
	}
}

func TestChurnWithReplication(t *testing.T) {
	c := NewCluster(Config{Peers: 8, Replicas: 2, Seed: 12, AntiEntropyInterval: 5 * time.Second})
	ds := workload.Generate(workload.Options{Seed: 13, Persons: 20})
	c.Insert(ds.Triples...)
	c.Kill(0)
	c.Kill(5)
	res, err := c.QueryFrom(2, `SELECT ?n WHERE {(?p,'name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) < 15 { // best-effort: most data remains visible
		t.Errorf("churn lost too much: %d/20 names visible", len(res.Bindings))
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	c := NewCluster(Config{Peers: 4, Seed: 14})
	if _, err := c.Query(`SELECT garbage`); err == nil {
		t.Error("syntax error must surface")
	}
	if _, err := c.Query(`SELECT ?x WHERE {(?p,'a',?v)}`); err == nil {
		t.Error("unbound select variable must surface")
	}
}

func TestMappingRoundTripThroughOverlay(t *testing.T) {
	c := NewCluster(Config{Peers: 8, Seed: 15})
	c.AddMapping(schema.Mapping{From: "name", To: "fullname"})
	res, err := c.Query(schema.MappingQuery().String())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 {
		t.Fatalf("stored mappings = %d", len(res.Bindings))
	}
	if res.Bindings[0]["f"].Str != "name" || res.Bindings[0]["t"].Str != "fullname" {
		t.Errorf("mapping = %v", res.Bindings[0])
	}
}

func TestConfigDefaults(t *testing.T) {
	c := NewCluster(Config{})
	if c.Size() != 16 {
		t.Errorf("default peers = %d", c.Size())
	}
	res, err := c.Query(`SELECT ?v WHERE {('none','a',?v)}`)
	if err != nil || len(res.Bindings) != 0 {
		t.Errorf("empty cluster query: %v %v", res, err)
	}
}

func BenchmarkClusterQuery(b *testing.B) {
	c := NewCluster(Config{Peers: 32, Seed: 20})
	ds := workload.Generate(workload.Options{Seed: 21, Persons: 100})
	c.Insert(ds.Triples...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(`SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30}`); err != nil {
			b.Fatal(err)
		}
	}
}

// TestProbeRTTSurfacedFromCaches: after warm probe traffic the
// compile-time stats refresh must surface a positive observed probe
// RTT out of the peers' per-replica latency EWMAs.
func TestProbeRTTSurfacedFromCaches(t *testing.T) {
	// Fetch mode keeps the probing stage at the origin (a shipped plan
	// would run its probes where the keys live, all loopback).
	c := NewCluster(Config{Peers: 16, Seed: 5, Latency: LatencyLAN,
		Optimizer: optimizer.Options{Mode: optimizer.ModeFetch}})
	for i := 0; i < 20; i++ {
		c.Insert(triple.T(fmt.Sprintf("r%02d", i), "name", fmt.Sprintf("n%02d", i)),
			triple.T(fmt.Sprintf("r%02d", i), "friend", fmt.Sprintf("n%02d", (i+1)%20)))
	}
	// The friend pattern's value variable is bound upstream, so the
	// second stage resolves with direct value probes — the traffic that
	// feeds the per-replica latency EWMAs.
	src := `SELECT ?p,?q WHERE {(?p,'name',?n) (?q,'friend',?n)}`
	// First run warms the caches; the second sends direct probes whose
	// round trips feed the EWMAs; the third compile reads them.
	for i := 0; i < 3; i++ {
		if _, err := c.QueryFrom(0, src); err != nil {
			t.Fatal(err)
		}
		c.Net().Settle()
	}
	if rtt := c.Stats().ProbeRTT; rtt <= 0 {
		t.Fatalf("observed probe RTT not surfaced: %v", rtt)
	}
}
