package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"unistore/internal/cost"
	"unistore/internal/netx"
	"unistore/internal/optimizer"
	"unistore/internal/pgrid"
	"unistore/internal/physical"
	"unistore/internal/store"
	"unistore/internal/store/wal"
	"unistore/internal/trace"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// NodeConfig parameterizes one process of a multi-process cluster. The
// topology fields (Partitions, Replicas, Procs, Seed) must be
// identical in every process: each daemon independently computes the
// same overlay plan (pgrid.BalancedSpecs) and instantiates the slice
// it hosts, so no process ever has to ship topology to another.
type NodeConfig struct {
	// Listen is the TCP address to bind; ":0" picks a free port.
	Listen string
	// Seeds are listen addresses of already-running nodes (empty for
	// the first process).
	Seeds []string
	// Partitions is the cluster-wide number of key-space partitions.
	Partitions int
	// Replicas is the replica-group size per partition.
	Replicas int
	// Procs is the total process count; ProcIndex identifies this one
	// (0-based). Peer i is hosted by process i mod Procs, which places
	// the members of a replica group on different processes — killing
	// one process keeps every partition covered.
	Procs     int
	ProcIndex int
	// Seed drives the shared overlay plan and this process's transport
	// randomness.
	Seed int64
	// PageSize bounds range-scan response pages (0 disables paging).
	PageSize int
	// DataDir, when set, makes every hosted peer durable: each gets a
	// write-ahead log + snapshots under DataDir/peer-NNNN, recovered on
	// startup. Empty keeps the seed behavior (memory only).
	DataDir string
	// Fsync is the WAL fsync policy (wal.SyncAlways default).
	Fsync wal.SyncPolicy
	// Logf receives transport diagnostics.
	Logf func(format string, args ...any)
	// Tracing enables end-to-end query tracing on every hosted peer:
	// each Query result carries the assembled trace tree, and recent
	// trees are retained for the daemon's /trace/recent endpoint.
	Tracing bool
	// SlowQuery, when positive, logs (via Logf) the full trace tree of
	// any traced query slower than this wall-clock threshold, with the
	// optimizer's cost estimate printed next to the observed messages,
	// bytes and latency.
	SlowQuery time.Duration
}

func (c NodeConfig) withDefaults() (NodeConfig, error) {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Procs <= 0 {
		c.Procs = 1
	}
	if c.ProcIndex < 0 || c.ProcIndex >= c.Procs {
		return c, fmt.Errorf("core: proc index %d out of range [0,%d)", c.ProcIndex, c.Procs)
	}
	if c.ProcIndex >= 1<<versionProcBits {
		return c, fmt.Errorf("core: proc index %d exceeds version namespace (%d)", c.ProcIndex, 1<<versionProcBits)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// versionProcBits is the low-bit slice of every write version that
// carries the issuing process index: version = seq<<bits | proc.
// Versions from different processes can never collide, and within a
// process they are strictly monotone — the store's last-writer-wins
// rule stays total without any cross-process coordination.
const versionProcBits = 10

// Node is one process's share of a multi-process UniStore cluster: a
// netx transport, the overlay peers this process hosts, and a query
// engine per peer. It is the daemon-side counterpart of Cluster.
type Node struct {
	cfg     NodeConfig
	tr      *netx.Transport
	specs   []pgrid.NodeSpec
	peers   []*pgrid.Peer
	engines []*physical.Engine
	opt     *optimizer.Optimizer
	stats   *cost.Stats
	statsMu sync.RWMutex
	seq     atomic.Uint64
	dbs     []*wal.DB
	// reg mirrors peer/transport/WAL counters under stable dotted
	// names; tlog retains recent query traces for introspection.
	reg  *trace.Registry
	tlog *trace.TraceLog
}

// nodeReopt adapts hosted-plan re-optimization to the node's stats
// lock, mirroring the cluster's lockedReopt.
type nodeReopt struct{ n *Node }

func (l nodeReopt) Rechoose(steps []physical.Step, tail physical.Tail, bindingCount int, peer *pgrid.Peer) []physical.Step {
	l.n.statsMu.RLock()
	defer l.n.statsMu.RUnlock()
	return l.n.opt.Rechoose(steps, tail, bindingCount, peer)
}

// NewNode plans the cluster-wide overlay, instantiates this process's
// peers on a freshly bound TCP transport, and starts the transport
// (announcing to the seeds). It returns once the local half is up;
// WaitReady blocks until the whole cluster's routes are known.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pcfg := pgrid.DefaultConfig()
	pcfg.PageSize = cfg.PageSize
	pcfg.Tracing = cfg.Tracing
	specs := pgrid.BalancedSpecs(cfg.Partitions, cfg.Replicas, pcfg, cfg.Seed)
	var hosted []pgrid.NodeSpec
	for _, s := range specs {
		if int(s.ID)%cfg.Procs == cfg.ProcIndex {
			hosted = append(hosted, s)
		}
	}
	if len(hosted) == 0 {
		return nil, fmt.Errorf("core: process %d/%d hosts no peers (%d total)", cfg.ProcIndex, cfg.Procs, len(specs))
	}
	tr, err := netx.New(netx.Config{
		Listen: cfg.Listen,
		Seeds:  cfg.Seeds,
		Seed:   cfg.Seed + int64(cfg.ProcIndex)*7919,
		Logf:   cfg.Logf,
	}, pgrid.WireCodec{})
	if err != nil {
		return nil, err
	}
	peers, err := pgrid.BuildFromSpecs(tr, specs, hosted, pcfg)
	if err != nil {
		tr.Close()
		return nil, err
	}
	var dbs []*wal.DB
	if cfg.DataDir != "" {
		// Recovery runs before the transport starts: each peer's store
		// is rebuilt from its snapshot + log while no message can race
		// it, and only then does the WAL attach for log-before-apply.
		for i, p := range peers {
			dir := filepath.Join(cfg.DataDir, fmt.Sprintf("peer-%04d", hosted[i].ID))
			db, err := wal.Open(dir, p.Store(), wal.Options{Sync: cfg.Fsync})
			if err != nil {
				for _, d := range dbs {
					d.Close()
				}
				tr.Close()
				return nil, fmt.Errorf("core: recover %s: %w", dir, err)
			}
			dbs = append(dbs, db)
		}
	}
	stats := cost.DefaultStats(cfg.Partitions)
	stats.Replicas = cfg.Replicas
	stats.TotalTriples = 0
	stats.PageSize = cfg.PageSize
	n := &Node{cfg: cfg, tr: tr, specs: specs, peers: peers, stats: stats, dbs: dbs}
	n.recoverSeq()
	n.opt = optimizer.New(stats, optimizer.DefaultOptions())
	for _, p := range peers {
		n.engines = append(n.engines, physical.NewEngine(p, nodeReopt{n}))
	}
	n.reg = trace.NewRegistry()
	n.tlog = trace.NewTraceLog(0)
	registerPeerMetrics(n.reg, func() []*pgrid.Peer { return n.peers })
	n.reg.OnCollect(func(r *trace.Registry) {
		st := n.tr.Stats()
		setCounter(r, "net.frames_out", st.FramesOut)
		setCounter(r, "net.frames_in", st.FramesIn)
		setCounter(r, "net.bytes_out", st.BytesOut)
		setCounter(r, "net.bytes_in", st.BytesIn)
		setCounter(r, "net.dials", st.Dials)
		setCounter(r, "net.dial_errors", st.DialErrs)
		setCounter(r, "net.drops.queue_ctrl", st.DropsQueueCtrl)
		setCounter(r, "net.drops.queue_bulk", st.DropsQueueBulk)
		setCounter(r, "net.drops.dead", st.DropsDead)
		setCounter(r, "net.drops.inbox", st.DropsInbox)
		setCounter(r, "net.bad_frames", st.BadFrames)
		var syncs, logBytes int64
		for _, db := range n.dbs {
			syncs += db.Syncs()
			logBytes += db.LogSize()
		}
		setCounter(r, "wal.syncs", syncs)
		r.Gauge("wal.log_bytes").Set(float64(logBytes))
	})
	tr.Start()
	return n, nil
}

// recoverSeq resumes the process-local version sequence past every
// version this process issued before the restart (identified by the
// proc-index bits), so recovered writes are never reissued with stale —
// hence losing — versions.
func (n *Node) recoverSeq() {
	mask := uint64(1)<<versionProcBits - 1
	var top uint64
	for _, p := range n.peers {
		p.Store().FactsEach(func(e store.Entry) {
			if e.Version&mask == uint64(n.cfg.ProcIndex) && e.Version>>versionProcBits > top {
				top = e.Version >> versionProcBits
			}
		})
	}
	if top > 0 {
		n.seq.Store(top)
	}
}

// Recovery reports what each hosted peer's WAL recovery found, in
// Peers() order (nil when the node runs without a DataDir).
func (n *Node) Recovery() []wal.RecoveryInfo {
	var out []wal.RecoveryInfo
	for _, db := range n.dbs {
		out = append(out, db.Info())
	}
	return out
}

// Rejoin re-registers every hosted peer with its replica group after a
// restart: a peer that recovered state asks for digest-delta catch-up
// (cost ∝ missed writes); an empty one falls back to full-state sync.
// Fire-and-forget — convergence is observable via Barrier plus the
// stores themselves. Single-process clusters have nowhere to rejoin to.
func (n *Node) Rejoin() {
	for _, p := range n.peers {
		for _, r := range p.Replicas() {
			if int(r.ID)%n.cfg.Procs != n.cfg.ProcIndex {
				p.Rejoin(r.ID)
				break
			}
		}
	}
}

// Addr returns the transport's resolved listen address — what other
// processes pass as a seed.
func (n *Node) Addr() string { return n.tr.Addr() }

// Peers returns the locally hosted overlay peers.
func (n *Node) Peers() []*pgrid.Peer { return n.peers }

// Transport exposes the underlying netx transport.
func (n *Node) Transport() *netx.Transport { return n.tr }

// ClusterSize returns the cluster-wide peer count.
func (n *Node) ClusterSize() int { return len(n.specs) }

// WaitReady blocks until this process knows a route to every peer in
// the cluster (bootstrap converged) or the timeout elapses.
func (n *Node) WaitReady(timeout time.Duration) bool {
	return n.tr.WaitRoutes(len(n.specs), timeout)
}

// nextVersion issues a write version unique across the cluster: the
// process-local sequence in the high bits, the process index in the
// low bits.
func (n *Node) nextVersion() uint64 {
	return n.seq.Add(1)<<versionProcBits | uint64(n.cfg.ProcIndex)
}

// Insert stores one triple through the acked write path and blocks
// until every index entry reached a responsible peer (replica push is
// asynchronous; Barrier covers it).
func (n *Node) Insert(tr triple.Triple, timeout time.Duration) error {
	p := n.peers[int(n.seq.Load())%len(n.peers)]
	h := p.InsertTripleAcked(tr, n.nextVersion(), nil)
	if res := h.Wait(timeout); !res.Complete {
		return fmt.Errorf("core: insert %s/%s not acked within %v", tr.OID, tr.Attr, timeout)
	}
	n.statsMu.Lock()
	n.stats.TriplesPerAttr[tr.Attr]++
	n.stats.TotalTriples++
	n.statsMu.Unlock()
	return nil
}

// Query parses and executes VQL from a local peer. Traced queries
// land in the node's trace log, and — past the SlowQuery threshold —
// in the slow-query log with the optimizer's estimate alongside what
// the query actually cost.
func (n *Node) Query(src string) (*Result, error) {
	q, err := vql.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	plan, err := physical.CompileQuery(q)
	if err != nil {
		return nil, err
	}
	n.statsMu.RLock()
	n.opt.Optimize(plan)
	est := n.opt.EstimatePlan(plan)
	n.statsMu.RUnlock()
	eng := n.engines[0]
	start := time.Now()
	bs, ex := eng.RunPlanCtx(context.Background(), plan)
	wall := time.Since(start)
	res := &Result{
		Bindings:    bs,
		Vars:        resultVars(q),
		Elapsed:     ex.Elapsed(),
		TimeToFirst: ex.TimeToFirst(),
		Hops:        ex.MaxHops(),
		Plan:        plan.String(),
		Trace:       ex.Trace(),
	}
	if res.Trace != nil {
		msgs, bytes := res.Trace.Totals()
		res.Messages = msgs
		n.tlog.Add(res.Trace)
		if n.cfg.SlowQuery > 0 && wall >= n.cfg.SlowQuery && n.cfg.Logf != nil {
			n.cfg.Logf("slow query (%v wall, %v simulated): estimate %.0f msgs / %v latency, observed %d msgs / %d bytes\nplan: %s\n%s",
				wall, res.Elapsed, est.Messages, est.Latency, msgs, bytes, res.Plan, res.Trace.String())
		}
	}
	return res, nil
}

// Registry returns the node's unified metrics registry (peer overlay
// counters, transport counters, WAL counters — collected at snapshot).
func (n *Node) Registry() *trace.Registry { return n.reg }

// TraceLog returns the bounded buffer of recently completed query
// traces (always non-nil; empty unless NodeConfig.Tracing).
func (n *Node) TraceLog() *trace.TraceLog { return n.tlog }

// NodeHealth is the liveness summary served by /healthz.
type NodeHealth struct {
	OK bool `json:"ok"`
	// Addr is the transport's resolved listen address.
	Addr string `json:"addr"`
	// Peers is the hosted peer count; ClusterSize the cluster-wide one;
	// RoutesKnown how many cluster peers this process can route to.
	Peers       int `json:"peers"`
	ClusterSize int `json:"clusterSize"`
	RoutesKnown int `json:"routesKnown"`
	// WALErrors lists the failure message of every hosted WAL whose log
	// is wedged (fsync or append failure); empty when durable and
	// healthy, or when running memory-only.
	WALErrors []string `json:"walErrors,omitempty"`
}

// Health reports process liveness: the transport must know a route to
// the whole cluster and every hosted WAL must be writable.
func (n *Node) Health() NodeHealth {
	h := NodeHealth{
		Addr:        n.tr.Addr(),
		Peers:       len(n.peers),
		ClusterSize: len(n.specs),
		RoutesKnown: len(n.tr.Routes()),
	}
	for i, db := range n.dbs {
		if err := db.Err(); err != nil {
			h.WALErrors = append(h.WALErrors, fmt.Sprintf("peer-%04d: %v", n.peers[i].ID(), err))
		}
	}
	h.OK = h.RoutesKnown >= h.ClusterSize && len(h.WALErrors) == 0
	return h
}

// Barrier waits until this process is quiescent: no queued transport
// frames and no pending overlay operations on any local peer. It
// reports whether quiescence was reached within the timeout. A
// cluster-wide barrier is every process's Barrier passing — the
// integration harness calls it on each daemon in turn.
func (n *Node) Barrier(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		rest := time.Until(deadline)
		if rest <= 0 {
			return false
		}
		if !n.tr.Flush(rest) {
			return false
		}
		pending := 0
		for _, p := range n.peers {
			pending += p.PendingOps()
		}
		if pending == 0 && n.tr.Flush(50*time.Millisecond) {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close shuts the node down gracefully: drains pending operations (up
// to the timeout), closes the transport — which flushes queued frames,
// cancels timers, and joins every goroutine — and only then closes the
// WALs, fsyncing the tail and writing each clean-shutdown marker (no
// mutation can arrive once the transport is down).
func (n *Node) Close(timeout time.Duration) error {
	n.Barrier(timeout)
	err := n.tr.Close()
	for _, db := range n.dbs {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
