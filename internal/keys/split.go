package keys

import "math/big"

// This file implements range partitioning for parallel query
// execution: a key range can be split at bit midpoints into disjoint
// contiguous shards, each of which routes through the overlay as an
// independent (smaller) shower query.

// keyToInt interprets k as a w-bit fixed-point fraction of the key
// space scaled by 2^w: bit i of the key contributes 2^(w-1-i).
func keyToInt(k Key, w int) *big.Int {
	v := new(big.Int)
	for i := 0; i < k.Len() && i < w; i++ {
		if k.Bit(i) == 1 {
			v.SetBit(v, w-1-i, 1)
		}
	}
	return v
}

// intToKey converts a w-bit scaled fraction back to a key, trimming
// trailing zero bits (a shorter key bounds the same region).
func intToKey(v *big.Int, w int) Key {
	n := w
	for n > 1 && v.Bit(w-n) == 0 {
		n--
	}
	k := Empty
	for i := 0; i < n; i++ {
		k = k.Append(int(v.Bit(w - 1 - i)))
	}
	return k
}

// Midpoint returns a key that splits r into two non-empty halves
// [r.Lo, m) and [m, r.Hi), and ok=false when r is too narrow to split
// (a single point, or bounds at the depth limit).
func Midpoint(r Range) (Key, bool) {
	w := r.Lo.Len()
	if r.HiOpen && r.Hi.Len() > w {
		w = r.Hi.Len()
	}
	w++ // one extra bit of resolution so adjacent shallow bounds still split
	if w > MaxDepth {
		w = MaxDepth // full-depth bounds split at full resolution
	}
	lo := keyToInt(r.Lo, w)
	hi := new(big.Int)
	if r.HiOpen {
		hi = keyToInt(r.Hi, w)
	} else {
		hi.SetBit(hi, w, 1) // end of the key space: 2^w
	}
	mid := new(big.Int).Add(lo, hi)
	mid.Rsh(mid, 1)
	if mid.Cmp(lo) <= 0 || mid.Cmp(hi) >= 0 {
		return Key{}, false
	}
	return intToKey(mid, w), true
}

// SplitRange partitions r into at most n contiguous disjoint subranges
// whose union is exactly r, splitting at bit midpoints breadth-first
// so shards cover comparable key-space volumes. Fewer than n (possibly
// just r itself) are returned when the range is too narrow.
func SplitRange(r Range, n int) []Range {
	out := []Range{r}
	for len(out) < n {
		next := make([]Range, 0, 2*len(out))
		progressed := false
		for i, s := range out {
			if len(next)+(len(out)-i) >= n {
				next = append(next, out[i:]...)
				break
			}
			if m, ok := Midpoint(s); ok {
				next = append(next,
					Range{Lo: s.Lo, Hi: m, HiOpen: true},
					Range{Lo: m, Hi: s.Hi, HiOpen: s.HiOpen})
				progressed = true
			} else {
				next = append(next, s)
			}
		}
		out = next
		if !progressed {
			break
		}
	}
	return out
}
