// Package keys implements UniStore's binary key space and the
// order-preserving (prefix-preserving) hash function that P-Grid uses to
// place data.
//
// A Key is a finite string of bits. Peers in the P-Grid overlay are
// responsible for a prefix of the key space; triples are inserted under
// keys derived from the triple's index fields. Because the hash is
// order-preserving (lexicographically smaller strings map to
// lexicographically smaller keys), range and prefix queries on the
// original data translate directly into prefix operations on keys —
// the property the paper contrasts with Chord-style uniform hashing.
package keys

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Key is an immutable bit string, most-significant bit first.
// The zero value is the empty key (the root of the key space).
type Key struct {
	bits []byte // packed, MSB first; bits beyond n are zero
	n    int    // number of valid bits
}

// MaxDepth is the maximum number of bits a key derived from data may
// carry. 256 bits comfortably exceeds any realistic trie depth while
// keeping keys comparable at fixed cost.
const MaxDepth = 256

// Empty is the empty key (zero bits): the whole key space.
var Empty = Key{}

// FromBits builds a key from a string of '0' and '1' runes.
// It panics on any other rune; it is intended for tests and literals.
func FromBits(s string) Key {
	k := Key{bits: make([]byte, (len(s)+7)/8), n: len(s)}
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			k.bits[i/8] |= 1 << (7 - uint(i%8))
		default:
			panic(fmt.Sprintf("keys: invalid bit rune %q in %q", r, s))
		}
	}
	return k
}

// FromBytes builds a key from raw bytes, using nbits bits of them.
func FromBytes(b []byte, nbits int) Key {
	if nbits < 0 || nbits > len(b)*8 {
		panic(fmt.Sprintf("keys: nbits %d out of range for %d bytes", nbits, len(b)))
	}
	nb := (nbits + 7) / 8
	k := Key{bits: make([]byte, nb), n: nbits}
	copy(k.bits, b[:nb])
	// Mask trailing bits so Equal/Compare can rely on zeroed padding.
	if rem := nbits % 8; rem != 0 && nb > 0 {
		k.bits[nb-1] &= byte(0xFF << (8 - uint(rem)))
	}
	return k
}

// Len reports the number of bits in the key.
func (k Key) Len() int { return k.n }

// IsEmpty reports whether the key has zero bits.
func (k Key) IsEmpty() bool { return k.n == 0 }

// Bit returns the i-th bit (0 or 1). It panics if i is out of range.
func (k Key) Bit(i int) int {
	if i < 0 || i >= k.n {
		panic(fmt.Sprintf("keys: bit index %d out of range [0,%d)", i, k.n))
	}
	if k.bits[i/8]&(1<<(7-uint(i%8))) != 0 {
		return 1
	}
	return 0
}

// Append returns a new key with bit b (0 or 1) appended.
func (k Key) Append(b int) Key {
	nb := (k.n + 8) / 8
	bits := make([]byte, nb)
	copy(bits, k.bits)
	if b != 0 {
		bits[k.n/8] |= 1 << (7 - uint(k.n%8))
	}
	return Key{bits: bits, n: k.n + 1}
}

// Prefix returns the first n bits of the key. It panics if n exceeds Len.
func (k Key) Prefix(n int) Key {
	if n < 0 || n > k.n {
		panic(fmt.Sprintf("keys: prefix length %d out of range [0,%d]", n, k.n))
	}
	return FromBytes(k.bits, n)
}

// HasPrefix reports whether p is a prefix of k (every key has the empty
// prefix).
func (k Key) HasPrefix(p Key) bool {
	if p.n > k.n {
		return false
	}
	return k.CommonPrefixLen(p) == p.n
}

// CommonPrefixLen returns the length of the longest common prefix of k
// and o.
func (k Key) CommonPrefixLen(o Key) int {
	max := k.n
	if o.n < max {
		max = o.n
	}
	n := 0
	for n+8 <= max && k.bits[n/8] == o.bits[n/8] {
		n += 8
	}
	for n < max && k.Bit(n) == o.Bit(n) {
		n++
	}
	return n
}

// Compare orders keys lexicographically by bits; a proper prefix sorts
// before any extension of it. Returns -1, 0, or +1.
func (k Key) Compare(o Key) int {
	max := k.n
	if o.n < max {
		max = o.n
	}
	cp := k.CommonPrefixLen(o)
	if cp < max {
		if k.Bit(cp) < o.Bit(cp) {
			return -1
		}
		return 1
	}
	switch {
	case k.n < o.n:
		return -1
	case k.n > o.n:
		return 1
	}
	return 0
}

// Equal reports whether the two keys have identical bits.
func (k Key) Equal(o Key) bool { return k.n == o.n && k.Compare(o) == 0 }

// Flip returns a copy of the key with bit i inverted.
func (k Key) Flip(i int) Key {
	if i < 0 || i >= k.n {
		panic(fmt.Sprintf("keys: flip index %d out of range [0,%d)", i, k.n))
	}
	bits := make([]byte, len(k.bits))
	copy(bits, k.bits)
	bits[i/8] ^= 1 << (7 - uint(i%8))
	return Key{bits: bits, n: k.n}
}

// String renders the key as a string of '0'/'1' runes ("" for Empty).
func (k Key) String() string {
	var sb strings.Builder
	sb.Grow(k.n)
	for i := 0; i < k.n; i++ {
		sb.WriteByte('0' + byte(k.Bit(i)))
	}
	return sb.String()
}

// Bytes returns the packed bit representation (MSB first) and the bit
// count. The returned slice must not be modified.
func (k Key) Bytes() ([]byte, int) { return k.bits, k.n }

// Successor returns the smallest key of the same length strictly greater
// than k, and ok=false if k is the maximum key of its length (all ones).
func (k Key) Successor() (Key, bool) {
	bits := make([]byte, len(k.bits))
	copy(bits, k.bits)
	for i := k.n - 1; i >= 0; i-- {
		mask := byte(1 << (7 - uint(i%8)))
		if bits[i/8]&mask == 0 {
			bits[i/8] |= mask
			return Key{bits: bits, n: k.n}, true
		}
		bits[i/8] &^= mask
	}
	return Key{}, false
}

// --- Order-preserving hashing -----------------------------------------

// HashString maps a string to a key of exactly MaxDepth bits such that
// lexicographic order of strings is preserved: s < t (as byte strings)
// implies HashString(s) <= HashString(t), with equality only when one is
// a prefix of the other beyond MaxDepth/8 bytes. This is the
// prefix-preserving hash the paper attributes to P-Grid: a shared string
// prefix yields a shared key prefix, so substring/range/prefix queries
// route to a contiguous region of the trie.
func HashString(s string) Key {
	nb := MaxDepth / 8
	b := make([]byte, nb)
	copy(b, s)
	return FromBytes(b, MaxDepth)
}

// HashStringPrefix maps a string to a key of min(8*len(s), MaxDepth)
// bits — the key-space region covering all strings with prefix s. Use it
// to derive range bounds for prefix queries.
func HashStringPrefix(s string) Key {
	n := 8 * len(s)
	if n > MaxDepth {
		n = MaxDepth
	}
	return FromBytes([]byte(s), n)
}

// HashUint64 maps an unsigned integer to a 64-bit big-endian key;
// numeric order equals key order.
func HashUint64(v uint64) Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return FromBytes(b[:], 64)
}

// HashInt64 maps a signed integer to a 64-bit key preserving numeric
// order (by offsetting the sign bit).
func HashInt64(v int64) Key {
	return HashUint64(uint64(v) ^ (1 << 63))
}

// HashFloat64 maps a float to a 64-bit key preserving numeric order for
// all finite values (and -Inf < finite < +Inf). NaN maps above +Inf.
func HashFloat64(f float64) Key {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u // negative: flip all bits
	} else {
		u |= 1 << 63 // positive: set sign bit
	}
	return HashUint64(u)
}

// EncodeFloatOrdered returns an 8-byte big-endian encoding of f whose
// lexicographic byte order matches numeric order. It is the byte-level
// counterpart of HashFloat64, used when numbers are embedded inside
// composite string keys.
func EncodeFloatOrdered(f float64) []byte {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return b[:]
}

// Range is a half-open interval [Lo, Hi) of the key space, used by
// range queries. An empty Hi means "to the end of the key space".
type Range struct {
	Lo, Hi Key
	// HiOpen reports whether Hi bounds the range; if false, the range
	// extends to the maximum key.
	HiOpen bool
}

// Contains reports whether key k of a stored datum falls in the range.
// The comparison treats k as a point in [Lo, Hi).
func (r Range) Contains(k Key) bool {
	if k.Compare(r.Lo) < 0 {
		return false
	}
	if r.HiOpen && k.Compare(r.Hi) >= 0 {
		return false
	}
	return true
}

// OverlapsPrefix reports whether any key with prefix p can lie in r.
// Used by range routing to prune trie branches.
func (r Range) OverlapsPrefix(p Key) bool {
	// Smallest key with prefix p is p itself (padded with zeros);
	// largest is p padded with ones. Compare against bounds.
	if r.HiOpen {
		// p-min >= Hi → no overlap. p (as prefix) compares >= Hi when
		// Hi is not an extension of p and p >= Hi.
		if !r.Hi.HasPrefix(p) && p.Compare(r.Hi) >= 0 {
			return false
		}
	}
	// p-max < Lo → no overlap: true iff Lo has prefix p is false and
	// p < Lo... p-max is p followed by all ones; p-max < Lo only if Lo
	// has p as proper prefix? No: if Lo has prefix p, overlap possible.
	if r.Lo.HasPrefix(p) {
		return true
	}
	return p.Compare(r.Lo) >= 0
}

// PrefixRange returns the range covering exactly the keys with prefix p.
func PrefixRange(p Key) Range {
	hi, ok := p.Successor()
	if !ok {
		return Range{Lo: p} // p is all ones: range extends to the end
	}
	return Range{Lo: p, Hi: hi, HiOpen: true}
}

// StringRange returns the key range covering all strings s with
// lo <= s < hi (byte-wise). If hi is empty the range is unbounded above.
func StringRange(lo, hi string) Range {
	r := Range{Lo: HashString(lo)}
	if hi != "" {
		r.Hi = HashString(hi)
		r.HiOpen = true
	}
	return r
}

// --- Binary marshaling --------------------------------------------------------
//
// Keys cross process boundaries inside wire messages (the real
// transport's gob-encoded payloads). The format is 2 bytes of
// big-endian bit count followed by the packed bits, MSB first — the
// in-memory layout, made explicit and validated on decode.

// maxWireBits bounds the bit count accepted from the wire: far above
// MaxDepth and every derivable key, far below anything that could make
// a hostile length allocate real memory.
const maxWireBits = 1 << 15

// MarshalBinary implements encoding.BinaryMarshaler.
func (k Key) MarshalBinary() ([]byte, error) {
	nb := (k.n + 7) / 8
	out := make([]byte, 2+nb)
	binary.BigEndian.PutUint16(out, uint16(k.n))
	copy(out[2:], k.bits[:nb])
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Unlike
// FromBytes it rejects malformed input with an error instead of
// panicking: wire data is untrusted.
func (k *Key) UnmarshalBinary(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("keys: key blob too short (%d bytes)", len(data))
	}
	n := int(binary.BigEndian.Uint16(data))
	if n > maxWireBits {
		return fmt.Errorf("keys: key length %d bits exceeds wire bound", n)
	}
	nb := (n + 7) / 8
	if len(data) != 2+nb {
		return fmt.Errorf("keys: key blob carries %d bytes for %d bits", len(data)-2, n)
	}
	*k = FromBytes(data[2:], n)
	return nil
}
