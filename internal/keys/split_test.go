package keys

import (
	"math/rand"
	"testing"
)

func randomKey(rng *rand.Rand, bits int) Key {
	k := Empty
	for i := 0; i < bits; i++ {
		k = k.Append(rng.Intn(2))
	}
	return k
}

func TestMidpointSplitsRange(t *testing.T) {
	cases := []Range{
		{},                            // whole key space
		PrefixRange(FromBits("0")),    // half
		PrefixRange(FromBits("1011")), // deep prefix
		StringRange("aaa", "zzz"),     // string-derived bounds
		{Lo: FromBits("01"), Hi: FromBits("11"), HiOpen: true},
	}
	for _, r := range cases {
		m, ok := Midpoint(r)
		if !ok {
			t.Fatalf("Midpoint(%v) not splittable", r)
		}
		if !r.Contains(m) {
			t.Fatalf("midpoint %s outside range %v", m, r)
		}
		if m.Compare(r.Lo) <= 0 {
			t.Fatalf("midpoint %s not above Lo %s", m, r.Lo)
		}
		if r.HiOpen && m.Compare(r.Hi) >= 0 {
			t.Fatalf("midpoint %s not below Hi %s", m, r.Hi)
		}
	}
}

func TestMidpointUnsplittable(t *testing.T) {
	// A single-point-wide range at the depth limit cannot split.
	lo := Empty
	for i := 0; i < MaxDepth; i++ {
		lo = lo.Append(0)
	}
	hi, _ := lo.Successor()
	if _, ok := Midpoint(Range{Lo: lo, Hi: hi, HiOpen: true}); ok {
		t.Fatal("expected depth-limited range to be unsplittable")
	}
}

// TestSplitRangePartition verifies the shards are a disjoint
// contiguous cover: membership of any key in the original range equals
// membership in exactly one shard.
func TestSplitRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ranges := []Range{
		{},
		PrefixRange(FromBits("10")),
		StringRange("conf", "conz"),
		{Lo: FromBits("001"), Hi: FromBits("11011"), HiOpen: true},
	}
	for _, r := range ranges {
		for _, n := range []int{1, 2, 3, 4, 7, 16} {
			shards := SplitRange(r, n)
			if len(shards) < 1 || len(shards) > n {
				t.Fatalf("SplitRange(%v,%d) returned %d shards", r, n, len(shards))
			}
			// Contiguity: shard i's Hi is shard i+1's Lo.
			if !shards[0].Lo.Equal(r.Lo) {
				t.Fatalf("first shard starts at %s, want %s", shards[0].Lo, r.Lo)
			}
			for i := 0; i+1 < len(shards); i++ {
				if !shards[i].HiOpen || !shards[i].Hi.Equal(shards[i+1].Lo) {
					t.Fatalf("shards %d/%d not contiguous: %v | %v", i, i+1, shards[i], shards[i+1])
				}
			}
			last := shards[len(shards)-1]
			if last.HiOpen != r.HiOpen || (r.HiOpen && !last.Hi.Equal(r.Hi)) {
				t.Fatalf("last shard ends at %v, want %v", last, r)
			}
			// Random keys: in-range keys land in exactly one shard.
			for trial := 0; trial < 200; trial++ {
				k := randomKey(rng, 1+rng.Intn(MaxDepth-1))
				in := 0
				for _, s := range shards {
					if s.Contains(k) {
						in++
					}
				}
				want := 0
				if r.Contains(k) {
					want = 1
				}
				if in != want {
					t.Fatalf("key %s in %d shards of %v (split %d), want %d", k, in, r, n, want)
				}
			}
		}
	}
}
