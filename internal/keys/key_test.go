package keys

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromBitsRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "0101", "11111111", "101010101", "0000000000000001"}
	for _, c := range cases {
		if got := FromBits(c).String(); got != c {
			t.Errorf("FromBits(%q).String() = %q", c, got)
		}
	}
}

func TestFromBitsPanicsOnBadRune(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid rune")
		}
	}()
	FromBits("01x")
}

func TestBitAndAppend(t *testing.T) {
	k := Empty
	want := "110100101"
	for _, r := range want {
		k = k.Append(int(r - '0'))
	}
	if k.String() != want {
		t.Fatalf("appended key = %q, want %q", k.String(), want)
	}
	for i := range want {
		if byte('0'+byte(k.Bit(i))) != want[i] {
			t.Errorf("bit %d = %d", i, k.Bit(i))
		}
	}
}

func TestPrefixAndHasPrefix(t *testing.T) {
	k := FromBits("1101001")
	for i := 0; i <= k.Len(); i++ {
		p := k.Prefix(i)
		if !k.HasPrefix(p) {
			t.Errorf("key should have prefix %q", p)
		}
		if p.Len() != i {
			t.Errorf("prefix length = %d, want %d", p.Len(), i)
		}
	}
	if k.HasPrefix(FromBits("10")) {
		t.Error("1101001 should not have prefix 10")
	}
	if !k.HasPrefix(Empty) {
		t.Error("every key has the empty prefix")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"1", "0", 0},
		{"101", "100", 2},
		{"1111111111", "1111111110", 9},
		{"10", "1011", 2},
		{"11001100110011", "11001100110011", 14},
	}
	for _, c := range cases {
		if got := FromBits(c.a).CommonPrefixLen(FromBits(c.b)); got != c.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	ordered := []string{"", "0", "00", "01", "011", "1", "10", "101", "11"}
	for i, a := range ordered {
		for j, b := range ordered {
			got := FromBits(a).Compare(FromBits(b))
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%q,%q) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFlip(t *testing.T) {
	k := FromBits("0000")
	f := k.Flip(2)
	if f.String() != "0010" {
		t.Errorf("flip = %q", f.String())
	}
	if k.String() != "0000" {
		t.Error("Flip must not mutate the receiver")
	}
}

func TestSuccessor(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"0", "1", true},
		{"01", "10", true},
		{"1011", "1100", true},
		{"111", "", false},
		{"1010", "1011", true},
	}
	for _, c := range cases {
		got, ok := FromBits(c.in).Successor()
		if ok != c.ok || (ok && got.String() != c.want) {
			t.Errorf("Successor(%q) = %q,%v want %q,%v", c.in, got.String(), ok, c.want, c.ok)
		}
	}
}

func TestHashStringOrderPreserving(t *testing.T) {
	words := []string{"", "ICDE", "ICDE 2005", "ICDE 2006", "VLDB", "a", "aa", "ab", "b", "confname", "year"}
	for i, a := range words {
		for j, b := range words {
			ka, kb := HashString(a), HashString(b)
			cmp := ka.Compare(kb)
			switch {
			case i == j && cmp != 0:
				t.Errorf("HashString(%q) != itself", a)
			case a < b && cmp > 0:
				t.Errorf("order violated: %q < %q but key greater", a, b)
			case a > b && cmp < 0:
				t.Errorf("order violated: %q > %q but key smaller", a, b)
			}
		}
	}
}

func TestHashStringPrefixPreserving(t *testing.T) {
	if !HashString("ICDE 2006").HasPrefix(HashStringPrefix("ICDE")) {
		t.Error("string prefix must yield key prefix")
	}
	if HashString("VLDB").HasPrefix(HashStringPrefix("ICDE")) {
		t.Error("unrelated string must not share the prefix")
	}
}

// Property: order preservation on random strings (the core guarantee the
// overlay's range queries rely on).
func TestHashStringOrderProperty(t *testing.T) {
	f := func(a, b string) bool {
		// Truncate to the depth the hash can distinguish.
		if len(a) > MaxDepth/8 {
			a = a[:MaxDepth/8]
		}
		if len(b) > MaxDepth/8 {
			b = b[:MaxDepth/8]
		}
		cmp := HashString(a).Compare(HashString(b))
		switch {
		case a == b:
			return cmp == 0
		case a < b:
			return cmp <= 0
		default:
			return cmp >= 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashInt64Order(t *testing.T) {
	vals := []int64{math.MinInt64, -1e12, -42, -1, 0, 1, 7, 2005, 2006, 1e12, math.MaxInt64}
	for i := 0; i < len(vals)-1; i++ {
		if HashInt64(vals[i]).Compare(HashInt64(vals[i+1])) >= 0 {
			t.Errorf("HashInt64 order violated between %d and %d", vals[i], vals[i+1])
		}
	}
}

func TestHashFloat64Order(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2.5, -0.0, 0.0, 1e-300, 2.5, 2005, 1e300, math.Inf(1)}
	for i := 0; i < len(vals)-1; i++ {
		a, b := HashFloat64(vals[i]), HashFloat64(vals[i+1])
		if vals[i] == vals[i+1] {
			if a.Compare(b) != 0 {
				t.Errorf("equal floats %v,%v map to different keys", vals[i], vals[i+1])
			}
			continue
		}
		if a.Compare(b) >= 0 {
			t.Errorf("HashFloat64 order violated between %v and %v", vals[i], vals[i+1])
		}
	}
}

func TestHashFloat64OrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		cmp := HashFloat64(a).Compare(HashFloat64(b))
		switch {
		case a == b:
			return cmp == 0
		case a < b:
			return cmp < 0
		default:
			return cmp > 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPrefixRange(t *testing.T) {
	r := PrefixRange(FromBits("10"))
	in := []string{"10", "100", "101", "1011111"}
	out := []string{"0", "01", "11", "110"}
	for _, s := range in {
		if !r.Contains(FromBits(s)) {
			t.Errorf("range of prefix 10 should contain %q", s)
		}
	}
	for _, s := range out {
		if r.Contains(FromBits(s)) {
			t.Errorf("range of prefix 10 should not contain %q", s)
		}
	}
}

func TestPrefixRangeAllOnes(t *testing.T) {
	r := PrefixRange(FromBits("111"))
	if r.HiOpen {
		t.Error("all-ones prefix range must be unbounded above")
	}
	if !r.Contains(FromBits("1110")) || !r.Contains(FromBits("1111")) {
		t.Error("all-ones prefix range must contain its extensions")
	}
	if r.Contains(FromBits("110")) {
		t.Error("all-ones prefix range must not contain smaller keys")
	}
}

func TestRangeOverlapsPrefix(t *testing.T) {
	r := Range{Lo: FromBits("0100"), Hi: FromBits("1010"), HiOpen: true}
	overlapping := []string{"", "0", "1", "01", "10", "011", "100"}
	disjoint := []string{"00", "11", "000", "1011", "111"}
	for _, p := range overlapping {
		if !r.OverlapsPrefix(FromBits(p)) {
			t.Errorf("range [0100,1010) should overlap prefix %q", p)
		}
	}
	for _, p := range disjoint {
		if r.OverlapsPrefix(FromBits(p)) {
			t.Errorf("range [0100,1010) should not overlap prefix %q", p)
		}
	}
}

// Property: OverlapsPrefix never reports false for a prefix that actually
// contains an in-range key (no false negatives — routing soundness).
func TestOverlapsPrefixSoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randKey := func(n int) Key {
		k := Empty
		for i := 0; i < n; i++ {
			k = k.Append(rng.Intn(2))
		}
		return k
	}
	for iter := 0; iter < 3000; iter++ {
		lo, hi := randKey(8), randKey(8)
		if lo.Compare(hi) > 0 {
			lo, hi = hi, lo
		}
		r := Range{Lo: lo, Hi: hi, HiOpen: true}
		k := randKey(8)
		if !r.Contains(k) {
			continue
		}
		for n := 0; n <= 8; n++ {
			if !r.OverlapsPrefix(k.Prefix(n)) {
				t.Fatalf("range [%s,%s) contains %s but OverlapsPrefix(%s) = false",
					lo, hi, k, k.Prefix(n))
			}
		}
	}
}

func TestStringRange(t *testing.T) {
	r := StringRange("ICDE", "ICDF")
	if !r.Contains(HashString("ICDE 2006")) {
		t.Error("ICDE 2006 should be in [ICDE, ICDF)")
	}
	if r.Contains(HashString("VLDB")) {
		t.Error("VLDB should not be in [ICDE, ICDF)")
	}
	unbounded := StringRange("x", "")
	if unbounded.HiOpen {
		t.Error("empty hi must produce an unbounded range")
	}
}

func TestFromBytesMasksTrailingBits(t *testing.T) {
	a := FromBytes([]byte{0xFF}, 4)
	b := FromBytes([]byte{0xF0}, 4)
	if !a.Equal(b) {
		t.Error("trailing bits must be masked so equal prefixes compare equal")
	}
}

func TestEncodeFloatOrdered(t *testing.T) {
	vals := []float64{math.Inf(-1), -7.5, -1, 0, 1, 2.5, 2006, math.Inf(1)}
	for i := 0; i < len(vals)-1; i++ {
		a := string(EncodeFloatOrdered(vals[i]))
		b := string(EncodeFloatOrdered(vals[i+1]))
		if !(a < b) {
			t.Errorf("byte order violated between %v and %v", vals[i], vals[i+1])
		}
	}
}

func TestKeyStringBuilderMatchesBits(t *testing.T) {
	var sb strings.Builder
	k := FromBits("1001110")
	for i := 0; i < k.Len(); i++ {
		sb.WriteByte('0' + byte(k.Bit(i)))
	}
	if sb.String() != k.String() {
		t.Errorf("String() mismatch: %q vs %q", sb.String(), k.String())
	}
}

func BenchmarkHashString(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashString("av:confname#ICDE 2006 - Workshops")
	}
}

func BenchmarkCompare(b *testing.B) {
	x := HashString("av:confname#ICDE 2006 - Workshops")
	y := HashString("av:confname#ICDE 2005")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Compare(y)
	}
}
