// Package physical implements UniStore's distributed query execution
// engine: physical operators over the P-Grid overlay (key lookups,
// shower range scans, broadcasts, DHT index joins and the q-gram
// similarity access path), composed into mutant query plans (Papadimos
// & Maier) that can either pull data to the query peer ("fetch") or
// migrate themselves — remaining steps plus intermediate bindings — to
// the peer hosting the next region ("ship"), re-optimizing at every
// host.
//
// Execution is a streaming operator pipeline, not
// materialize-then-advance: each plan step runs as a stage whose
// overlay responses flow into an incremental symmetric hash join the
// moment they arrive, stages overlap (a later stage's independent scan
// opens while earlier stages still stream), every operation of a query
// shares one bounded in-flight window, and the tail sink terminates
// the pipeline early when a LIMIT or ranked top-k bound proves no
// further response can change the result — canceling pending overlay
// operations and never issuing the queued ones. Blocking tails
// (skyline, multi-key orderings) still materialize before the tail
// applies; everything else streams, and Engine.Open exposes the
// pipeline as a pull cursor (Open/Next/Close).
package physical

import (
	"fmt"
	"strings"

	"unistore/internal/agg"
	"unistore/internal/algebra"
	"unistore/internal/vql"
)

// AccessStrategy selects the physical operator resolving one pattern.
// Several implementations exist per logical operator (§2: "for each
// logical operator there are several physical implementations"); the
// cost model picks among them.
type AccessStrategy int

// Strategies.
const (
	// StratAuto defers the choice to the runtime/optimizer.
	StratAuto AccessStrategy = iota
	// StratOIDLookup resolves a ground-subject pattern with one OID-key
	// lookup per subject.
	StratOIDLookup
	// StratAVLookup resolves attr+value with one exact A#v-key lookup
	// (or one per bound value — the DHT index join).
	StratAVLookup
	// StratAVRange showers over the attribute's key region.
	StratAVRange
	// StratValLookup uses the v index: exact value, any attribute.
	StratValLookup
	// StratBroadcast floods all partitions and filters locally — the
	// fallback for unrestricted patterns, and the naive baseline the
	// experiments compare against.
	StratBroadcast
	// StratQGram answers a similarity predicate on the pattern's value
	// via the distributed q-gram index: gram-posting range queries,
	// count filtering, exact verification, then per-candidate lookups.
	StratQGram
)

func (s AccessStrategy) String() string {
	switch s {
	case StratAuto:
		return "auto"
	case StratOIDLookup:
		return "oid-lookup"
	case StratAVLookup:
		return "av-lookup"
	case StratAVRange:
		return "av-range"
	case StratValLookup:
		return "v-lookup"
	case StratBroadcast:
		return "broadcast"
	case StratQGram:
		return "qgram"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// SimSpec is a similarity predicate attached to a step.
type SimSpec struct {
	Var     string
	Target  string
	MaxDist int
}

// Step resolves one triple pattern and joins it into the running
// binding set.
type Step struct {
	Pat   vql.Pattern
	Strat AccessStrategy
	// JoinOn lists variables shared with the bindings accumulated by
	// earlier steps (empty for the first step or a cartesian join).
	JoinOn []string
	// Filters apply to the joined bindings right after this step.
	Filters []vql.Expr
	// Sims are similarity predicates applicable after this step;
	// a StratQGram step consumes the one matching its value variable.
	Sims []SimSpec
	// ValuePrefix narrows an A#v range scan to values with this string
	// prefix — the pushed-down form of startswith(?v,'p'), exploiting
	// the order-preserving hash's native prefix search.
	ValuePrefix string
	// Ship requests migrating the plan to this step's region before
	// executing it (mutant behaviour). Set by the optimizer or forced
	// by experiments.
	Ship bool
}

func (st Step) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s%s", st.Strat, st.Pat)
	if len(st.JoinOn) > 0 {
		fmt.Fprintf(&sb, " join[%s]", strings.Join(st.JoinOn, ","))
	}
	for _, f := range st.Filters {
		fmt.Fprintf(&sb, " filter[%s]", f)
	}
	for _, s := range st.Sims {
		fmt.Fprintf(&sb, " sim[edist(?%s,'%s')<=%d]", s.Var, s.Target, s.MaxDist)
	}
	if st.Ship {
		sb.WriteString(" ship")
	}
	return sb.String()
}

// Tail is the post-join pipeline: skyline, ordering, limit,
// projection. The streaming executor consumes it incrementally where
// it can — unordered limits stop the pipeline at the k-th row, and a
// single-key ordering over the final scan's value variable streams in
// ranking order with a threshold stop — while Apply remains the
// blocking (and normalizing) formulation.
type Tail struct {
	Skyline []vql.SkylineKey
	// GroupBy/Aggs/Having describe the aggregation (GROUP BY, the
	// aggregate select items, and the group filter). AggPushdown is the
	// optimizer's strategy choice: peer-side partial aggregation when
	// the plan shape allows it, centralized fallback otherwise (the
	// executor re-validates feasibility at run time).
	GroupBy     []string
	Aggs        []agg.Item
	Having      vql.Expr
	AggPushdown bool
	OrderBy     []vql.OrderKey
	TopN        bool
	Limit       int
	Project     []string
}

// HasAgg reports whether the tail aggregates (GROUP BY, aggregate
// items, or DISTINCT compiled as grouping).
func (t Tail) HasAgg() bool { return len(t.GroupBy) > 0 || len(t.Aggs) > 0 }

// Apply runs the tail pipeline over a binding set: aggregation (when
// present), then ordering, limiting and projection. The streaming
// executor aggregates incrementally and calls post directly; Apply is
// the blocking, normalizing formulation over raw rows.
func (t Tail) Apply(bs []algebra.Binding) []algebra.Binding {
	if t.HasAgg() {
		bs = algebra.ExecuteAggregate(&algebra.Aggregate{
			GroupBy: t.GroupBy, Items: t.Aggs, Having: t.Having,
		}, bs)
	}
	return t.post(bs)
}

// post applies the non-aggregating tail clauses to (possibly already
// aggregated) rows.
func (t Tail) post(bs []algebra.Binding) []algebra.Binding {
	if len(t.Skyline) > 0 {
		idx := algebra.SkylineIndexes(bs, t.Skyline)
		out := make([]algebra.Binding, len(idx))
		for i, j := range idx {
			out[i] = bs[j]
		}
		bs = out
	}
	if len(t.OrderBy) > 0 {
		algebra.SortBindings(bs, t.OrderBy)
	}
	if t.Limit > 0 && len(bs) > t.Limit {
		bs = bs[:t.Limit]
	}
	if len(t.Project) > 0 {
		out := make([]algebra.Binding, len(bs))
		for i, b := range bs {
			nb := algebra.Binding{}
			for _, v := range t.Project {
				if val, ok := b[v]; ok {
					nb[v] = val
				}
			}
			out[i] = nb
		}
		bs = out
	}
	return bs
}

// Plan is a compiled physical plan: the mutant unit that travels
// between peers.
type Plan struct {
	Steps []Step
	Tail  Tail
}

func (p *Plan) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	out := strings.Join(parts, " → ")
	if p.Tail.HasAgg() {
		mode := "centralized"
		if p.Tail.AggPushdown {
			mode = "pushdown"
		}
		items := make([]string, len(p.Tail.Aggs))
		for i, it := range p.Tail.Aggs {
			items[i] = it.String()
		}
		out += fmt.Sprintf(" ⇒ γ[%s; %s; %s]",
			strings.Join(p.Tail.GroupBy, ","), strings.Join(items, ","), mode)
	}
	return out
}

// WireSize estimates the serialized plan size.
func (p *Plan) WireSize() int {
	return len(p.String()) + 32
}

// Compile lowers a logical plan (from algebra.Build) into a physical
// plan with strategies chosen by pattern shape. The optimizer refines
// strategies and ship decisions afterwards.
func Compile(lp algebra.Plan) (*Plan, error) {
	p := &Plan{}
	inner := lp
	// Unwrap tail operators (outermost first).
	for {
		switch x := inner.(type) {
		case *algebra.Project:
			p.Tail.Project = x.Vars
			inner = x.Input
			continue
		case *algebra.Limit:
			p.Tail.Limit = x.N
			inner = x.Input
			continue
		case *algebra.TopN:
			p.Tail.Limit = x.N
			p.Tail.TopN = true
			p.Tail.OrderBy = x.Keys
			inner = x.Input
			continue
		case *algebra.OrderBy:
			p.Tail.OrderBy = x.Keys
			inner = x.Input
			continue
		case *algebra.Skyline:
			p.Tail.Skyline = x.Keys
			inner = x.Input
			continue
		case *algebra.Aggregate:
			p.Tail.GroupBy = x.GroupBy
			p.Tail.Aggs = x.Items
			p.Tail.Having = x.Having
			inner = x.Input
			continue
		}
		break
	}
	if err := compileJoins(inner, p); err != nil {
		return nil, err
	}
	for i := range p.Steps {
		if p.Steps[i].Strat == StratAuto {
			p.Steps[i].Strat = DefaultStrategy(p.Steps[i])
		}
	}
	return p, nil
}

// compileJoins flattens the left-deep join tree into steps, attaching
// filters and similarity selections to the step after which their
// variables are bound.
func compileJoins(lp algebra.Plan, p *Plan) error {
	switch x := lp.(type) {
	case *algebra.PatternScan:
		p.Steps = append(p.Steps, Step{Pat: x.Pat})
		return nil
	case *algebra.Join:
		if err := compileJoins(x.L, p); err != nil {
			return err
		}
		scan, ok := x.R.(*algebra.PatternScan)
		if !ok {
			return fmt.Errorf("physical: join right side is %T, want left-deep tree", x.R)
		}
		p.Steps = append(p.Steps, Step{Pat: scan.Pat, JoinOn: x.On})
		return nil
	case *algebra.Select:
		if err := compileJoins(x.Input, p); err != nil {
			return err
		}
		last := &p.Steps[len(p.Steps)-1]
		last.Filters = append(last.Filters, x.Cond)
		return nil
	case *algebra.SimilaritySelect:
		if err := compileJoins(x.Input, p); err != nil {
			return err
		}
		last := &p.Steps[len(p.Steps)-1]
		last.Sims = append(last.Sims, SimSpec{Var: x.Var, Target: x.Target, MaxDist: x.MaxDist})
		return nil
	}
	return fmt.Errorf("physical: unsupported logical node %T below the tail", lp)
}

// DefaultStrategy picks the access path a pattern's shape dictates,
// without statistics: the canonical mapping of Fig. 2's three indexes.
func DefaultStrategy(st Step) AccessStrategy {
	pat := st.Pat
	switch {
	case !pat.S.IsVar():
		return StratOIDLookup
	case !pat.A.IsVar() && !pat.V.IsVar():
		return StratAVLookup
	case !pat.A.IsVar():
		// A similarity predicate on this pattern's value variable can
		// use the q-gram index; the optimizer decides. Shape-wise the
		// attribute region range scan is the default.
		return StratAVRange
	case !pat.V.IsVar():
		return StratValLookup
	default:
		return StratBroadcast
	}
}

// CompileQuery is the one-call path from VQL text to a physical plan.
func CompileQuery(q *vql.Query) (*Plan, error) {
	lp, err := algebra.Build(q)
	if err != nil {
		return nil, err
	}
	return Compile(lp)
}
