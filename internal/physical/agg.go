package physical

// This file implements the streaming aggregation operator: the
// coordinator half of in-network GROUP BY. Two strategies share one
// merge table (agg.Table, the same code the reference executor and the
// serving peers run):
//
//   - pushdown: the single scan step issues aggregated overlay
//     operations (RangeQueryAgg / LookupAgg); each partition answers
//     with per-group partial states, paged as bounded batches of
//     groups, and the coordinator merges them. Rows never cross the
//     network.
//   - centralized fallback: rows stream out of the ordinary pipeline
//     (joins, filters, q-gram verification) and fold into the table as
//     they arrive — aggregation state is bounded by groups, not rows,
//     even though rows crossed the network.
//
// Either way the groups finalize through the tail sink, so HAVING,
// ORDER BY over aggregate outputs, and LIMIT reuse the existing
// termination machinery. When the ordering key is a group variable the
// final scan emits in key order (the rank frontier), groups complete
// at key boundaries and stream into the threshold top-k — a
// `GROUP BY ?v ORDER BY ?v LIMIT k` stops pulling pages as soon as k
// groups are settled.

import (
	"unistore/internal/agg"
	"unistore/internal/algebra"
	"unistore/internal/vql"
)

// aggPushdownable reports whether the plan's aggregation can run
// peer-side: a single step (no upstream join whose rows the peers
// cannot see), no residual predicates the overlay cannot evaluate, an
// access path that resolves to scans or exact lookups, and every
// grouping/aggregate input variable bound by the step's own pattern.
func aggPushdownable(steps []Step, t Tail) bool {
	if !t.HasAgg() || len(steps) != 1 {
		return false
	}
	st := steps[0]
	if len(st.Filters) > 0 || len(st.Sims) > 0 {
		return false
	}
	switch st.Strat {
	case StratOIDLookup, StratAVLookup, StratValLookup, StratAVRange, StratBroadcast:
	default:
		return false
	}
	vars := map[string]bool{}
	for _, v := range st.Pat.Vars() {
		vars[v] = true
	}
	for _, g := range t.GroupBy {
		if !vars[g] {
			return false
		}
	}
	for _, it := range t.Aggs {
		if it.Var != "" && !vars[it.Var] {
			return false
		}
	}
	return true
}

// AggPushdownable is the optimizer's view of aggregation-pushdown
// feasibility for a compiled plan.
func AggPushdownable(p *Plan) bool { return aggPushdownable(p.Steps, p.Tail) }

// AggRankStreamable reports whether the centralized strategy could run
// this plan's aggregation in rank-fed streaming mode — ORDER BY a
// single group variable that the final scan emits in key order — the
// one shape where a LIMIT lets rows-shipped terminate early. It
// mirrors the executor's own gate (sinkRank + group-var ordering), so
// the optimizer's limit discount never credits a plan the executor
// would run blocking.
func AggRankStreamable(p *Plan) bool {
	t := p.Tail
	return t.HasAgg() && t.Limit > 0 && len(t.OrderBy) == 1 &&
		containsVar(t.GroupBy, t.OrderBy[0].Var) && rankStreamable(p.Steps, t)
}

// aggTerm lowers a pattern term to the overlay's pattern
// representation.
func aggTerm(t vql.Term) agg.Term {
	if t.IsVar() {
		return agg.VarTerm(t.Var)
	}
	return agg.LitTerm(t.Val)
}

// aggRun is the per-query aggregation state. All methods require
// Exec.pmu, like the stages feeding it.
type aggRun struct {
	ex       *Exec
	spec     *agg.Spec
	table    *agg.Table
	pushdown bool

	// stream marks the rank-fed mode: the centralized input arrives in
	// ranking order of rankVar (a group variable), so the groups of a
	// rank value are complete the moment the stream moves past it and
	// can feed the sink's threshold top-k before EOS.
	stream  bool
	rankVar string
	curSet  bool
	cur     string

	started bool // any input (rows or states) arrived
	flushed bool // EOS finalization ran
	drained bool // remaining groups were handed to finishPipeline
}

// newAggRun prepares the aggregation for one execution. The wire spec
// carries the step's pattern only on the pushdown path — the
// centralized table is fed bindings, not entries.
func newAggRun(ex *Exec, pushdown bool) *aggRun {
	spec := &agg.Spec{GroupBy: ex.tail.GroupBy, Items: ex.tail.Aggs}
	if pushdown {
		pat := ex.steps[0].Pat
		spec.Pat = [3]agg.Term{aggTerm(pat.S), aggTerm(pat.A), aggTerm(pat.V)}
	}
	return &aggRun{ex: ex, spec: spec, table: agg.NewTable(spec), pushdown: pushdown}
}

// configureStream arms the rank-fed mode once the sink settled on its
// termination discipline.
func (a *aggRun) configureStream(k *tailSink) {
	if a.pushdown || k.mode != sinkRank {
		return
	}
	a.stream = true
	a.rankVar = k.rankVar
}

// addRows folds centralized rows into the table. In stream mode a
// change of the ranking value completes every open group (they all
// carry the previous value), which finalizes and emits them in rank
// order — the sink's threshold stop can then cancel the rest of the
// scan mid-flight.
func (a *aggRun) addRows(rows []algebra.Binding) {
	for _, b := range rows {
		a.started = true
		if a.stream {
			lex := b[a.rankVar].Lexical()
			if a.curSet && lex != a.cur {
				a.emitCompleted()
				if a.ex.stopped || a.ex.migrated {
					return
				}
			}
			a.curSet, a.cur = true, lex
		}
		a.table.Add(b)
	}
}

// merge folds pushed-down partial states into the table.
func (a *aggRun) merge(states []agg.State) {
	if len(states) > 0 {
		a.started = true
	}
	a.table.MergeStates(states)
}

// emitCompleted finalizes every open group (stream mode: they share
// the now-passed rank value), empties the table and pushes the
// surviving rows — HAVING applied — to the sink in ranking order.
func (a *aggRun) emitCompleted() {
	rows := algebra.FinalizeAggregate(a.ex.tail.Having, a.table)
	a.table = agg.NewTable(a.spec)
	if len(rows) == 0 {
		return
	}
	algebra.SortBindings(rows, a.ex.tail.OrderBy)
	a.ex.sink.push(rows)
}

// flush finalizes the remaining groups at pipeline EOS and hands them
// to the sink (sorted when an ordering applies, so the rank sink's
// threshold semantics hold even for aggregate-output orderings that
// could not stream).
func (a *aggRun) flush(k *tailSink) {
	if a.flushed {
		return
	}
	a.flushed = true
	a.drained = true
	rows := algebra.FinalizeAggregate(a.ex.tail.Having, a.table)
	a.table = agg.NewTable(a.spec)
	if len(a.ex.tail.OrderBy) > 0 {
		algebra.SortBindings(rows, a.ex.tail.OrderBy)
	}
	k.push(rows)
}

// drainInto finalizes whatever groups remain (a cancel or early-out
// interrupted the pipeline before flush) and appends them to the rows
// the sink already delivered. Groups a stream-mode early-out left open
// rank strictly worse than every delivered row, so the tail's
// normalization keeps the delivered prefix exact.
func (a *aggRun) drainInto(rows []algebra.Binding) []algebra.Binding {
	if a.drained {
		return rows
	}
	a.drained = true
	if !a.started {
		return rows
	}
	return append(rows, algebra.FinalizeAggregate(a.ex.tail.Having, a.table)...)
}
