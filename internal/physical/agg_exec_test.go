package physical_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	. "unistore/internal/physical"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// aggTestCorpus: 40 persons over 4 groups with ages, some persons
// lacking an age triple (NULL semantics), plus enough values for
// grouped MIN/MAX spread.
func aggTestCorpus() []triple.Triple {
	var ts []triple.Triple
	groups := []string{"db", "os", "net", "ai"}
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("p%02d", i)
		ts = append(ts, triple.T(id, "group", groups[i%len(groups)]))
		if i%7 != 0 {
			ts = append(ts, triple.TN(id, "age", float64(20+i%13)))
		}
	}
	return ts
}

var aggQueries = []string{
	`SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g`,
	`SELECT ?g, count(?a) AS ?n, sum(?a) AS ?s, avg(?a) AS ?m, min(?a) AS ?lo, max(?a) AS ?hi
		WHERE {(?p,'group',?g) (?p,'age',?a)} GROUP BY ?g`,
	`SELECT ?g, count(DISTINCT ?a) AS ?d WHERE {(?p,'group',?g) (?p,'age',?a)} GROUP BY ?g HAVING ?d >= 3`,
	`SELECT count(*) WHERE {(?p,'group',?g)}`,
	`SELECT count(*) WHERE {(?p,'nosuchattr',?g)}`,
	`SELECT DISTINCT ?g WHERE {(?p,'group',?g)}`,
	`SELECT DISTINCT ?a WHERE {(?p,'age',?a)}`,
	`SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g ORDER BY ?n DESC LIMIT 2`,
	`SELECT ?a, count(*) AS ?n WHERE {(?p,'age',?a)} GROUP BY ?a ORDER BY ?a LIMIT 3`,
	`SELECT ?g, max(?a) AS ?hi WHERE {(?p,'group',?g) (?p,'age',?a)} GROUP BY ?g ORDER BY ?hi DESC LIMIT 1`,
}

// aggRun compiles one query and runs it with the aggregation strategy
// forced, returning the canonical rows.
func aggForcedRun(t *testing.T, tn *testNet, src string, pushdown bool) ([]string, *Exec) {
	t.Helper()
	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	plan.Tail.AggPushdown = pushdown
	bs, ex := tn.engines[0].RunPlan(plan)
	return canon(bs), ex
}

// TestAggExecEquivalence: pushdown and centralized must both equal the
// in-memory oracle for every aggregate query shape, across page sizes.
func TestAggExecEquivalence(t *testing.T) {
	corpus := aggTestCorpus()
	for _, pageSize := range []int{0, 1, 3} {
		tn := buildNetPaged(t, 16, int64(300+pageSize), nil, pageSize)
		tn.load(corpus)
		for _, src := range aggQueries {
			want := canon(referenceRun(t, src, corpus))
			ordered := strings.Contains(src, "ORDER BY") && strings.Contains(src, "LIMIT")
			for _, push := range []bool{false, true} {
				got, ex := aggForcedRun(t, tn, src, push)
				if !ex.Done() {
					t.Fatalf("page %d push=%v: %q did not complete", pageSize, push, src)
				}
				if ordered {
					// LIMIT over ties may admit different witnesses;
					// sizes must match and rows must be plausible.
					if len(got) != len(want) {
						t.Fatalf("page %d push=%v: %q sizes differ: %d vs %d\n got %v\nwant %v",
							pageSize, push, src, len(got), len(want), got, want)
					}
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("page %d push=%v: %q\n got %v\nwant %v", pageSize, push, src, got, want)
				}
			}
		}
	}
}

// TestAggPushdownMovesFewerRows: on a grouping scan the pushdown
// strategy must ship less than the centralized fallback — groups, not
// rows.
func TestAggPushdownMovesFewerRows(t *testing.T) {
	corpus := aggTestCorpus()
	src := `SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g`
	tn := buildNetPaged(t, 16, 500, nil, 4)
	tn.load(corpus)
	tn.net.ResetStats()
	central, _ := aggForcedRun(t, tn, src, false)
	centralBytes := tn.net.Stats().BytesSent
	tn.net.ResetStats()
	pushed, _ := aggForcedRun(t, tn, src, true)
	pushBytes := tn.net.Stats().BytesSent
	if !reflect.DeepEqual(central, pushed) {
		t.Fatalf("strategies disagree:\n%v\n%v", central, pushed)
	}
	if pushBytes >= centralBytes {
		t.Errorf("pushdown moved %dB, centralized %dB — states must beat rows", pushBytes, centralBytes)
	}
	t.Logf("bytes: pushdown %d vs centralized %d", pushBytes, centralBytes)
}

// TestAggGroupKeyRankEarlyOut: GROUP BY ?v ORDER BY ?v LIMIT k over
// the scan's value variable must terminate the scan early — fewer
// messages than the exhaustive grouped scan.
func TestAggGroupKeyRankEarlyOut(t *testing.T) {
	var corpus []triple.Triple
	for i := 0; i < 200; i++ {
		corpus = append(corpus, triple.TN(fmt.Sprintf("x%03d", i), "score", float64(i%50)))
	}
	full := `SELECT ?s, count(*) AS ?n WHERE {(?p,'score',?s)} GROUP BY ?s ORDER BY ?s`
	topk := `SELECT ?s, count(*) AS ?n WHERE {(?p,'score',?s)} GROUP BY ?s ORDER BY ?s LIMIT 3`

	tn := buildNetPaged(t, 32, 501, nil, 4)
	for _, e := range tn.engines {
		e.SetRangeShards(8)
		e.SetParallelism(2)
	}
	tn.load(corpus)

	wantFull := referenceRun(t, full, corpus)
	wantTop := canon(wantFull[:3])

	tn.net.ResetStats()
	gotFull, _ := aggForcedRun(t, tn, full, false)
	fullMsgs := tn.net.Stats().MessagesSent
	tn.net.ResetStats()
	gotTop, ex := aggForcedRun(t, tn, topk, false)
	topMsgs := tn.net.Stats().MessagesSent

	if len(gotFull) != 50 {
		t.Fatalf("full grouped scan returned %d groups", len(gotFull))
	}
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Fatalf("rank-fed group top-k wrong:\n got %v\nwant %v", gotTop, wantTop)
	}
	if topMsgs >= fullMsgs {
		t.Errorf("group-key top-k sent %d msgs, full scan %d — rank frontier must stop the scan", topMsgs, fullMsgs)
	}
	if ex.Elapsed() <= 0 {
		t.Error("no elapsed time recorded")
	}
	t.Logf("group-key rank: top-3 %d msgs vs full %d msgs", topMsgs, fullMsgs)
}
