package physical_test

import (
	"fmt"
	"testing"

	. "unistore/internal/physical"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// shipPlan compiles a three-step join that migrates at step 2 and
// whose final step resolves every bound person with an exact OID probe
// — so the HOSTED remainder has real overlay work a cancel can save.
func shipPlan(t testing.TB) *Plan {
	t.Helper()
	q, err := vql.ParseQuery(`SELECT ?n,?a,?e WHERE {(?p,'name',?n) (?p,'age',?a) (?p,'email',?e)}`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	plan.Steps[1].Ship = true
	plan.Steps[2].Strat = StratOIDLookup
	return plan
}

func cancelCorpus() []triple.Triple {
	var ts []triple.Triple
	for i := 0; i < 120; i++ {
		// Leading-character variation spreads the OID keys over the
		// partition space (FNV's high bytes barely move for strings
		// differing only at the tail), so the host's probes really
		// travel.
		id := fmt.Sprintf("%c-cx%03d", 'a'+i%26, i)
		ts = append(ts,
			triple.T(id, "name", fmt.Sprintf("nm%03d", i)),
			triple.TN(id, "age", float64(20+i%50)),
			triple.T(id, "email", fmt.Sprintf("e%03d@x.org", i)))
	}
	return ts
}

// throttle bounds every engine's in-flight window so a hosted plan's
// probe fan-out streams instead of bursting — giving an in-flight
// cancel something to stop.
func throttle(tn *testNet) {
	for _, e := range tn.engines {
		e.SetParallelism(2)
	}
}

// totalPending sums pending overlay operations across the overlay.
func totalPending(tn *testNet) int {
	n := 0
	for _, p := range tn.peers {
		n += p.PendingOps()
	}
	return n
}

// totalHosted sums live hosted plans across the engines.
func totalHosted(tn *testNet) int {
	n := 0
	for _, e := range tn.engines {
		n += e.HostedPlans()
	}
	return n
}

// TestCancelPropagatesToMigratedHost: canceling a query whose plan has
// migrated must send a cancel to the hosting peer, which stops the
// hosted remainder — saving its network traffic — and must leave no
// pending overlay operation or live hosted plan anywhere.
func TestCancelPropagatesToMigratedHost(t *testing.T) {
	corpus := cancelCorpus()

	// Reference: the same shipped query run to completion.
	ref := buildNet(t, 32, 211, nil)
	ref.load(corpus)
	throttle(ref)
	ref.net.ResetStats()
	_, ex := ref.engines[0].RunPlan(shipPlan(t))
	if !ex.Done() {
		t.Fatal("reference shipped query did not complete")
	}
	fullMsgs := ref.net.Stats().MessagesSent

	// Canceled run: same topology and data, cancel right after the
	// plan migrates.
	tn := buildNet(t, 32, 211, nil)
	tn.load(corpus)
	throttle(tn)
	tn.net.ResetStats()
	cx := tn.engines[0].Start(shipPlan(t), nil)
	for !cx.Migrated() && tn.net.Step() {
	}
	if !cx.Migrated() {
		t.Fatal("plan never migrated")
	}
	cx.Cancel()
	if !cx.Done() {
		t.Fatal("canceled query must complete immediately for the local waiter")
	}
	tn.net.Settle()
	canceledMsgs := tn.net.Stats().MessagesSent

	if n := totalPending(tn); n != 0 {
		t.Errorf("%d pending overlay operations leaked after cancel", n)
	}
	if n := totalHosted(tn); n != 0 {
		t.Errorf("%d hosted plans still live after cancel", n)
	}
	if canceledMsgs >= fullMsgs {
		t.Errorf("cancel saved nothing: %d messages vs %d for the full run — the hosted remainder kept working",
			canceledMsgs, fullMsgs)
	}
	t.Logf("shipped-query cancel: %d messages vs %d full", canceledMsgs, fullMsgs)
}

// TestCancelBeforePlanArrives: a cancel that overtakes its planMsg
// must tombstone the plan so it is dropped on arrival, not executed.
func TestCancelBeforePlanArrives(t *testing.T) {
	corpus := cancelCorpus()
	tn := buildNet(t, 32, 212, nil)
	tn.load(corpus)
	cx := tn.engines[0].Start(shipPlan(t), nil)
	for !cx.Migrated() && tn.net.Step() {
	}
	if !cx.Migrated() {
		t.Fatal("plan never migrated")
	}
	// Cancel immediately — the planMsg and the cancelMsg now race
	// through the overlay; whichever order they arrive in, nothing may
	// keep running.
	cx.Cancel()
	tn.net.Settle()
	if n := totalPending(tn); n != 0 {
		t.Errorf("%d pending ops leaked", n)
	}
	if n := totalHosted(tn); n != 0 {
		t.Errorf("%d hosted plans live", n)
	}
}

// TestShippedQueryStillCompletesAfterCancelInfraAdded guards the happy
// path: an uncanceled shipped query must return exactly its results
// (the cancel machinery must not interfere with normal completion).
func TestShippedQueryStillCompletes(t *testing.T) {
	corpus := cancelCorpus()
	tn := buildNet(t, 32, 213, nil)
	tn.load(corpus)
	got, ex := tn.engines[0].RunPlan(shipPlan(t))
	if !ex.Done() {
		t.Fatal("shipped query did not complete")
	}
	want := canon(referenceRun(t, `SELECT ?n,?a,?e WHERE {(?p,'name',?n) (?p,'age',?a) (?p,'email',?e)}`, corpus))
	if len(got) != len(want) {
		t.Fatalf("shipped query returned %d rows, want %d", len(got), len(want))
	}
	tn.net.Settle()
	if n := totalHosted(tn); n != 0 {
		t.Errorf("%d hosted plans linger after completion", n)
	}
}
