package physical

// Tracing glue for the executor. A traced query's tree has three
// layers: a synthetic "query" root span at the origin (or a "plan"
// span at each migration host), one synthetic "stage" span per plan
// step carrying the operator's rows in/out and time-to-first-row, and
// under each stage the real overlay spans its operations produced —
// drained from the peer's per-op accumulators, where the piggybacked
// riders land. Untraced queries have a zero tc and skip all of it.

import (
	"fmt"

	"unistore/internal/pgrid"
	"unistore/internal/trace"
)

// Traced reports whether this execution records spans.
func (ex *Exec) Traced() bool { return ex.tc.Active() }

// recordTraceQID remembers a traced overlay operation's qid so span
// collection can drain its accumulator from the peer.
func (ex *Exec) recordTraceQID(qid uint64) {
	ex.mu.Lock()
	ex.tqids = append(ex.tqids, qid)
	ex.mu.Unlock()
}

// topts returns the per-operation trace options of one stage: overlay
// operations the stage issues become children of its synthetic span.
// Nil (no options, no overhead) when the query is untraced.
func (s *stage) topts() []pgrid.OpOption {
	if s.spanID == 0 {
		return nil
	}
	return []pgrid.OpOption{pgrid.WithTrace(trace.Ctx{
		TraceID: s.ex.tc.TraceID, Parent: s.spanID, Depth: s.ex.tc.Depth + 1,
	})}
}

// stageSpan synthesizes the pipeline-stage span. Srv is the instant
// the first row left the operator (time-to-first-row against Enq);
// Rep the downstream EOS. Callers hold pmu.
func (s *stage) stageSpan(started, now int64) trace.Span {
	ex := s.ex
	sp := trace.Span{
		ID: s.spanID, Parent: ex.rootSpan.ID, TraceID: ex.tc.TraceID,
		Kind: "stage", Stage: fmt.Sprintf("s%d:%s", s.idx, s.st.Strat),
		Peer: int64(ex.eng.peer.ID()), Path: ex.rootSpan.Path,
		Depth: ex.tc.Depth,
		Enq:   started, Srv: started, Rep: now,
		Rows: s.rowsOut, RowsIn: s.rowsIn,
	}
	if s.firstOut != 0 {
		sp.Srv = s.firstOut
	}
	if s.eosAt != 0 {
		sp.Rep = s.eosAt
	}
	return sp
}

// collectSpansLocked gathers every span this Exec produced so far: the
// root (query or plan) span, the synthetic stage spans, the overlay
// spans drained from the peer, and spans shipped home by hosted
// remainders. Draining is cumulative — spans already pulled stay in
// ex.drained, so a repeated collection only adds riders that arrived
// in between. Callers hold pmu.
func (ex *Exec) collectSpansLocked() []trace.Span {
	if !ex.tc.Active() {
		return nil
	}
	now := int64(ex.eng.peer.Net().Now())
	ex.mu.Lock()
	qids := ex.tqids
	ex.tqids = nil
	root := ex.rootSpan
	root.Rows = len(ex.result)
	root.Rep = now
	if ex.finished > 0 {
		root.Rep = int64(ex.finished)
	}
	started := int64(ex.started)
	remote := append([]trace.Span(nil), ex.remote...)
	ex.mu.Unlock()
	for _, qid := range qids {
		ex.drained = append(ex.drained, ex.eng.peer.TakeTrace(qid)...)
	}
	spans := []trace.Span{root}
	for _, s := range ex.stages {
		if s.spanID != 0 {
			spans = append(spans, s.stageSpan(started, now))
		}
	}
	spans = append(spans, ex.drained...)
	spans = append(spans, remote...)
	return spans
}

// Trace assembles the end-to-end trace of this query: the synthetic
// query root, one span per pipeline stage, and every overlay span the
// traced operations produced — including spans shipped home by
// migrated remainders. Nil when the peer does not trace. Safe to call
// repeatedly; a later call folds in riders that arrived since.
func (ex *Exec) Trace() *trace.QueryTrace {
	if !ex.tc.Active() {
		return nil
	}
	ex.pmu.Lock()
	spans := ex.collectSpansLocked()
	ex.pmu.Unlock()
	return trace.Assemble(ex.tc.TraceID, ex.rootSpan.ID, spans)
}
