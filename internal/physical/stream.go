package physical

// This file implements the streaming side of the executor: the shared
// bounded operation window, the per-step pipeline stages (incremental
// symmetric joins fed by overlay operations), the tail sink with its
// LIMIT/top-k early-termination rules, and the pull cursor handed to
// callers. Exec (exec.go) owns the lifecycle; everything here runs
// under Exec.pmu, the single pipeline lock.

import (
	"sync"
	"time"

	"unistore/internal/agg"
	"unistore/internal/algebra"
	"unistore/internal/keys"
	"unistore/internal/pgrid"
	"unistore/internal/ranking"
	"unistore/internal/store"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// --- Bounded in-flight window -------------------------------------------------

// windowOp is one overlay operation scheduled through the window.
type windowOp struct {
	issue    func(cb func(pgrid.OpResult)) *pgrid.Handle
	complete func(pgrid.OpResult)
}

// opWindow drives every overlay operation of one query — probes, range
// shards, gram fan-outs, across all pipeline stages — through a single
// bounded in-flight window: at most `limit` operations outstanding at
// once (0 = unbounded), excess operations queued FIFO and issued as
// completions free slots. Closing the window drops the queue and
// cancels the outstanding operations, which is how an early-out stops
// traffic that has not been sent yet. All methods require Exec.pmu.
type opWindow struct {
	ex       *Exec
	limit    int
	inFlight int
	queue    []*windowOp
	handles  map[*windowOp]*pgrid.Handle
	closed   bool
}

func newOpWindow(ex *Exec, limit int) *opWindow {
	return &opWindow{ex: ex, limit: limit, handles: make(map[*windowOp]*pgrid.Handle)}
}

func (w *opWindow) submit(issue func(cb func(pgrid.OpResult)) *pgrid.Handle, complete func(pgrid.OpResult)) {
	if w.closed {
		return
	}
	op := &windowOp{issue: issue, complete: complete}
	if w.limit <= 0 || w.inFlight < w.limit {
		w.fire(op)
		return
	}
	w.queue = append(w.queue, op)
}

// fire issues one operation. The completion callback arrives on a
// network goroutine (or the event loop) and re-enters through
// Exec.opDone, which serializes on pmu — so the handle is recorded
// before the callback body can observe the map.
func (w *opWindow) fire(op *windowOp) {
	w.inFlight++
	w.ex.noteOp()
	h := op.issue(func(res pgrid.OpResult) { w.ex.opDone(op, res) })
	w.handles[op] = h
	if h != nil && w.ex.tc.Active() {
		w.ex.recordTraceQID(h.QID())
	}
}

// pump tops the window up after a completion.
func (w *opWindow) pump() {
	for !w.closed && len(w.queue) > 0 && (w.limit <= 0 || w.inFlight < w.limit) {
		op := w.queue[0]
		w.queue = w.queue[1:]
		w.fire(op)
	}
}

// close drops queued operations and cancels outstanding ones.
func (w *opWindow) close() {
	if w.closed {
		return
	}
	w.closed = true
	w.queue = nil
	for op, h := range w.handles {
		h.Cancel()
		delete(w.handles, op)
	}
}

// opDone is the single re-entry point from the overlay into the
// pipeline: it serializes on pmu, runs the operation's stage logic and
// tops the window up.
func (ex *Exec) opDone(op *windowOp, res pgrid.OpResult) {
	ex.pmu.Lock()
	defer ex.pmu.Unlock()
	w := ex.win
	delete(w.handles, op)
	w.inFlight--
	if w.closed {
		return
	}
	ex.noteHops(res.Hops)
	op.complete(res)
	w.pump()
}

// --- Pipeline stages ----------------------------------------------------------

// stageMode is the right-side resolution a stage settled on.
type stageMode int

const (
	// modeUndecided defers the probe-vs-fallback choice until the first
	// upstream row reveals whether the probe variable is bound.
	modeUndecided stageMode = iota
	// modeProbes issues one exact lookup per distinct upstream value —
	// the streaming DHT index join.
	modeProbes
	// modeScan showers a key range (sharded when configured).
	modeScan
	// modeFixed issues lookups for statically known keys.
	modeFixed
	// modeQGram runs the two-phase q-gram similarity access path.
	modeQGram
	// modeEmpty produces no right-side rows at all.
	modeEmpty
)

// stage executes one plan step as a streaming operator: upstream rows
// arrive through addLeft, overlay results through onEntries, and every
// matching pair leaves through emit as soon as it exists. A stage with
// probe-derivable join variables streams lookups per distinct upstream
// value; otherwise its scan opens in parallel with the upstream and an
// incremental symmetric hash join pairs the two sides in either
// arrival order. All methods require Exec.pmu.
type stage struct {
	ex  *Exec
	idx int
	st  Step
	// predStep carries the predicates emit applies to joined rows; the
	// q-gram path swaps in a copy with its verified predicate removed.
	predStep Step

	hasUp  bool
	join   *algebra.JoinState
	upDone bool
	opened bool

	mode     stageMode
	fallback stageMode // what modeUndecided becomes without a bound probe var
	// Probe configuration (modeProbes / modeUndecided).
	probeVar  string
	probeKind triple.IndexKind
	probeKey  func(v triple.Value) keys.Key
	probed    map[string]bool
	// probePend buffers probe keys derived from one upstream batch;
	// flushProbes coalesces them into a single MultiLookup operation,
	// which the peer groups per cached responsible node — a k-value
	// index join costs ~peers-touched messages instead of k.
	probePend []keys.Key
	capped    bool // AV-range probe set exceeded probeCap; escalated to a scan
	// Scan configuration (modeScan and escalation).
	scanKind  triple.IndexKind
	scanRange keys.Range
	issuedAll bool
	// Fixed keys (modeFixed).
	fixedKeys []keys.Key
	fixedKind triple.IndexKind
	// Q-gram state (qgram.go).
	sim         SimSpec
	gramList    []string
	gramResults [][]store.Entry
	gramsLeft   int
	verified    bool

	// Ordered shard release for the final stage of a streaming top-k:
	// shards are issued with a small lookahead and their results are
	// released strictly in key order, so rows leave the stage in
	// ranking order and the sink can stop the scan early.
	rank      bool
	rankDesc  bool
	rankAhead int
	shards    []keys.Range
	shardBuf  [][]store.Entry
	shardOK   []bool
	nextIssue int
	nextRel   int

	// aggPush runs the stage's access path in aggregated form: overlay
	// operations carry the query's aggregation spec and deliver partial
	// group states to the coordinator table instead of rows.
	aggPush bool

	opsOut  int
	seen    map[string]bool // fact-level dedup of replica copies
	eosDown bool

	// Tracing (zero spanID = untraced): the stage's synthetic span id,
	// its operator row counts, and the first-row / EOS instants.
	spanID   uint64
	rowsIn   int
	rowsOut  int
	firstOut int64
	eosAt    int64
}

func newStage(ex *Exec, idx int, st Step) *stage {
	s := &stage{
		ex: ex, idx: idx, st: st, predStep: st,
		hasUp:  idx > 0 || ex.seeded,
		probed: make(map[string]bool),
		seen:   make(map[string]bool),
	}
	if ex.tc.Active() {
		s.spanID = ex.eng.peer.NewTraceID()
	}
	if s.hasUp {
		s.join = algebra.NewJoinState(st.JoinOn)
	}
	return s
}

// classify decides how the stage resolves its pattern, mirroring the
// materializing executor's runtime strategy grounding: variables bound
// by earlier steps turn range strategies into streaming lookups.
func (s *stage) classify() {
	pat := s.st.Pat
	switch s.st.Strat {
	case StratOIDLookup:
		s.classifyLookup(pat.S, triple.ByOID, func(v triple.Value) keys.Key {
			return triple.OIDKey(v.Str)
		}, func() keys.Key { return triple.OIDKey(pat.S.Val.Str) })
	case StratAVLookup:
		attr := pat.A.Val.Str
		s.classifyLookup(pat.V, triple.ByAV, func(v triple.Value) keys.Key {
			return triple.AVKey(attr, v)
		}, func() keys.Key { return triple.AVKey(attr, pat.V.Val) })
	case StratValLookup:
		s.classifyLookup(pat.V, triple.ByVal, func(v triple.Value) keys.Key {
			return triple.ValKey(v)
		}, func() keys.Key { return triple.ValKey(pat.V.Val) })
	case StratAVRange:
		attr := pat.A.Val.Str
		s.scanKind = triple.ByAV
		if s.st.ValuePrefix != "" {
			// Pushed-down startswith: the order-preserving hash makes
			// the matching values a contiguous key interval.
			s.scanRange = triple.AVStringPrefixRange(attr, s.st.ValuePrefix)
		} else {
			s.scanRange = triple.AVPrefixRange(attr)
		}
		if pat.V.IsVar() && s.hasUp && !s.rank {
			// A value variable bound upstream turns the scan into
			// streaming per-value probes (escalating back to the scan
			// past probeCap).
			s.mode = modeUndecided
			s.fallback = modeScan
			s.probeVar = pat.V.Var
			s.probeKind = triple.ByAV
			s.probeKey = func(v triple.Value) keys.Key { return triple.AVKey(attr, v) }
			return
		}
		s.mode = modeScan
	case StratBroadcast:
		s.mode = modeScan
		s.scanKind = triple.ByOID
		s.scanRange = keys.Range{}
	case StratQGram:
		s.classifyQGram()
	default:
		// Unknown strategy: degrade to broadcast, never wrong.
		s.mode = modeScan
		s.scanKind = triple.ByOID
		s.scanRange = keys.Range{}
	}
}

// classifyLookup configures a lookup-style stage: ground term → fixed
// key; variable bound upstream → streaming probes; otherwise the right
// side is empty (no probe can be derived).
func (s *stage) classifyLookup(term vql.Term, kind triple.IndexKind, key func(triple.Value) keys.Key, fixed func() keys.Key) {
	if !term.IsVar() {
		s.mode = modeFixed
		s.fixedKind = kind
		s.fixedKeys = []keys.Key{fixed()}
		return
	}
	if s.hasUp {
		s.mode = modeUndecided
		s.fallback = modeEmpty
		s.probeVar = term.Var
		s.probeKind = kind
		s.probeKey = key
		return
	}
	s.mode = modeEmpty
}

// barrier reports whether the stage must wait for its complete
// upstream before doing any right-side work: mutant (ship) steps may
// migrate the plan away, and an ordered top-k scan must not interleave
// late upstream rows with released shards.
func (s *stage) barrier() bool {
	return (s.st.Ship && s.idx > 0) || s.rank
}

// open activates the right side. For deferred (barrier) stages this
// happens at upstream EOS; everything else opens when the pipeline
// starts, so independent scans overlap with upstream work.
func (s *stage) open() {
	if s.opened {
		return
	}
	s.opened = true
	if s.hasUp && s.upDone && s.join.LeftCount() == 0 {
		// Nothing to join against: skip the access path entirely.
		s.mode = modeEmpty
		return
	}
	switch s.mode {
	case modeUndecided:
		for _, b := range s.join.LeftRows() {
			s.noteLeft(b)
		}
		s.flushProbes()
	case modeScan:
		if s.aggPush {
			s.openAggScan()
			return
		}
		s.openScan()
	case modeFixed:
		s.issuedAll = true
		for _, k := range s.fixedKeys {
			k := k
			if s.aggPush {
				spec := s.ex.agg.spec
				s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
					return s.ex.eng.peer.LookupAgg(s.fixedKind, k, spec,
						func(states []agg.State) { s.ex.opAggStates(states) }, cb, s.topts()...)
				}, func(pgrid.OpResult) {})
				continue
			}
			s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
				return s.ex.eng.peer.Lookup(s.fixedKind, k, cb, s.topts()...)
			}, func(res pgrid.OpResult) { s.onEntries(res.Entries) })
		}
	case modeQGram:
		s.openQGram()
	}
}

// openAggScan showers the stage's key range with the aggregation
// pushed to the serving peers: each shard's partitions answer with
// per-group partial states (paged as bounded batches of groups) that
// stream into the coordinator's merge table.
func (s *stage) openAggScan() {
	if s.issuedAll {
		return
	}
	s.issuedAll = true
	shards := []keys.Range{s.scanRange}
	if n := s.ex.eng.shards(); n > 1 {
		shards = keys.SplitRange(s.scanRange, n)
	}
	spec := s.ex.agg.spec
	for _, r := range shards {
		r := r
		s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
			return s.ex.eng.peer.RangeQueryAgg(s.scanKind, r, spec,
				func(states []agg.State) { s.ex.opAggStates(states) }, cb, s.topts()...)
		}, func(pgrid.OpResult) {})
	}
}

// opAggStates is the pushdown re-entry point from the overlay: one
// batch of partial group states enters the merge table under pmu.
func (ex *Exec) opAggStates(states []agg.State) {
	ex.pmu.Lock()
	defer ex.pmu.Unlock()
	if ex.stopped || ex.migrated || ex.win.closed || ex.agg == nil {
		return
	}
	ex.agg.merge(states)
}

// addLeft feeds upstream rows into the stage. Probes derived from the
// whole batch flush as one coalesced operation before the joined rows
// move on.
func (s *stage) addLeft(rows []algebra.Binding) {
	if s.ex.stopped || s.ex.migrated {
		return
	}
	s.rowsIn += len(rows)
	var out []algebra.Binding
	for _, b := range rows {
		if s.opened {
			s.noteLeft(b)
		}
		out = append(out, s.join.AddLeft(b)...)
	}
	s.flushProbes()
	s.emit(out)
}

// noteLeft derives right-side work from one upstream row: the first
// row decides probe-vs-fallback, every row may contribute a new probe.
func (s *stage) noteLeft(b algebra.Binding) {
	if s.mode == modeUndecided {
		if _, ok := b[s.probeVar]; ok {
			s.mode = modeProbes
		} else {
			s.mode = s.fallback
			if s.mode == modeScan {
				s.openScan()
			}
			return
		}
	}
	if s.mode != modeProbes || s.capped {
		return
	}
	v, ok := b[s.probeVar]
	if !ok {
		return
	}
	lex := v.Lexical()
	if s.probed[lex] {
		return
	}
	s.probed[lex] = true
	if s.st.Strat == StratAVRange && len(s.probed) > s.ex.eng.probeCap {
		// Too many distinct values for per-value probes: one region
		// scan covers everything (fact dedup absorbs the overlap with
		// probes already in flight). Buffered probes are dropped — the
		// scan subsumes them before they were ever sent.
		s.capped = true
		s.probePend = nil
		s.openScan()
		return
	}
	s.probePend = append(s.probePend, s.probeKey(v))
}

// flushProbes turns the buffered probe keys into one overlay
// operation: a single Lookup for one key, a MultiLookup otherwise
// (which the peer splits per cached responsible node, falling back to
// individually routed lookups for uncached keys).
func (s *stage) flushProbes() {
	if len(s.probePend) == 0 {
		return
	}
	ks := s.probePend
	s.probePend = nil
	if len(ks) == 1 {
		k := ks[0]
		s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
			return s.ex.eng.peer.Lookup(s.probeKind, k, cb, s.topts()...)
		}, func(res pgrid.OpResult) { s.onEntries(res.Entries) })
		return
	}
	s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
		return s.ex.eng.peer.MultiLookup(s.probeKind, ks, cb, s.topts()...)
	}, func(res pgrid.OpResult) { s.onEntries(res.Entries) })
}

// openScan showers the stage's key range, split into the engine's
// shard count. Responses stream page by page into the join (the
// overlay's paged scans deliver partial pages as they arrive). The
// rank stage instead issues shards with a bounded lookahead and
// releases results strictly in key order.
func (s *stage) openScan() {
	if s.issuedAll || len(s.shards) > 0 {
		return
	}
	shards := []keys.Range{s.scanRange}
	if n := s.ex.eng.shards(); n > 1 {
		shards = keys.SplitRange(s.scanRange, n)
	}
	if s.rank {
		if s.rankDesc {
			for i, j := 0, len(shards)-1; i < j; i, j = i+1, j-1 {
				shards[i], shards[j] = shards[j], shards[i]
			}
		}
		s.shards = shards
		s.shardBuf = make([][]store.Entry, len(shards))
		s.shardOK = make([]bool, len(shards))
		s.rankAhead = s.ex.eng.window()
		if s.rankAhead <= 0 {
			// An unbounded window would defeat the early-out; keep a
			// small ordered lookahead instead.
			s.rankAhead = 2
		}
		s.issueRank()
		return
	}
	s.issuedAll = true
	for _, r := range shards {
		r := r
		s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
			return s.ex.eng.peer.RangeQueryPages(s.scanKind, r,
				func(es []store.Entry) { s.ex.opPage(s, -1, es) }, cb, s.topts()...)
		}, func(res pgrid.OpResult) { s.onEntries(res.Entries) })
	}
}

// issueRank keeps at most rankAhead ordered shards beyond the release
// frontier in flight. Descending ranks issue shards high-to-low (the
// shard list was reversed at openScan) and ask the overlay to serve
// each partition's pages top-down, so pages arrive in ranking order
// for both directions.
func (s *stage) issueRank() {
	for s.nextIssue < len(s.shards) && s.nextIssue < s.nextRel+s.rankAhead {
		slot := s.nextIssue
		s.nextIssue++
		r := s.shards[slot]
		s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
			return s.ex.eng.peer.RangeQueryPagesOrdered(s.scanKind, r, s.rankDesc,
				func(es []store.Entry) { s.ex.opPage(s, slot, es) }, cb, s.topts()...)
		}, func(pgrid.OpResult) { s.onRankShard(slot) })
	}
}

// opPage is the streaming re-entry point from the overlay: one page
// (or one partition's shard answer) enters the pipeline under pmu.
// slot < 0 marks an unordered scan; otherwise the page belongs to the
// rank stage's ordered shard at that slot.
func (ex *Exec) opPage(s *stage, slot int, entries []store.Entry) {
	ex.pmu.Lock()
	defer ex.pmu.Unlock()
	if ex.stopped || ex.migrated || ex.win.closed {
		return
	}
	if slot < 0 {
		s.onEntries(entries)
		return
	}
	s.onRankPage(slot, entries)
}

// onRankPage handles one page of an ordered shard. Pages arrive in
// ranking order within a shard for BOTH directions (descending ranks
// ask the overlay to page each partition top-down), so when the shard
// sits exactly at the release frontier, its pages flow straight into
// the join — which is what lets a top-k threshold stop fire mid-shard
// and cancel the remaining page pulls. Pages of shards beyond the
// frontier are buffered until release.
func (s *stage) onRankPage(slot int, entries []store.Entry) {
	if len(entries) == 0 {
		return
	}
	if slot == s.nextRel {
		s.onEntries(entries)
		return
	}
	s.shardBuf[slot] = append(s.shardBuf[slot], entries...)
}

// onRankShard marks an ordered shard complete and releases the
// contiguous prefix of completed shards in ranking order, then flushes
// the buffered pages of the shard now sitting at the frontier so its
// remaining pages can stream directly.
func (s *stage) onRankShard(slot int) {
	s.shardOK[slot] = true
	for s.nextRel < len(s.shards) && s.shardOK[s.nextRel] {
		entries := s.shardBuf[s.nextRel]
		s.shardBuf[s.nextRel] = nil
		s.nextRel++
		s.onEntries(entries)
		if s.ex.stopped || s.ex.migrated {
			return
		}
	}
	if s.nextRel < len(s.shards) && len(s.shardBuf[s.nextRel]) > 0 {
		entries := s.shardBuf[s.nextRel]
		s.shardBuf[s.nextRel] = nil
		s.onEntries(entries)
		if s.ex.stopped || s.ex.migrated {
			return
		}
	}
	s.issueRank()
}

// onEntries turns fetched entries into bindings, joins them against
// the upstream side and emits the merged rows.
func (s *stage) onEntries(entries []store.Entry) {
	rows := s.toBindings(entries)
	if !s.hasUp {
		s.emit(rows)
		return
	}
	var out []algebra.Binding
	for _, b := range rows {
		out = append(out, s.join.AddRight(b)...)
	}
	s.emit(out)
}

// toBindings unifies entries with the pattern, deduplicating replica
// copies of the same fact across the stage's whole lifetime.
func (s *stage) toBindings(entries []store.Entry) []algebra.Binding {
	var out []algebra.Binding
	for _, e := range entries {
		fact := e.Triple.OID + "\x00" + e.Triple.Attr + "\x00" + e.Triple.Val.Lexical()
		if s.seen[fact] {
			continue
		}
		s.seen[fact] = true
		if b, ok := algebra.MatchPattern(s.st.Pat, e.Triple); ok {
			out = append(out, b)
		}
	}
	return out
}

// emit applies the step's predicates and pushes surviving rows to the
// next stage (or the tail sink).
func (s *stage) emit(rows []algebra.Binding) {
	if s.ex.stopped || s.ex.migrated {
		return
	}
	rows = applyStepPredicates(s.predStep, rows)
	if len(rows) == 0 {
		return
	}
	s.rowsOut += len(rows)
	if s.spanID != 0 && s.firstOut == 0 {
		s.firstOut = int64(s.ex.eng.peer.Net().Now())
	}
	if s.idx == len(s.ex.stages)-1 {
		if a := s.ex.agg; a != nil && !a.pushdown {
			// Centralized aggregation: rows fold into the group table
			// instead of materializing in the sink — the sink only sees
			// finalized groups.
			a.addRows(rows)
			return
		}
		s.ex.sink.push(rows)
		return
	}
	s.ex.stages[s.idx+1].addLeft(rows)
}

// upstreamEOS records that every upstream row has arrived; barrier
// stages resolve here (migrate the plan, or open locally).
func (s *stage) upstreamEOS() {
	if s.upDone || s.ex.stopped || s.ex.migrated {
		return
	}
	s.upDone = true
	if !s.opened && s.st.Ship && s.idx > 0 {
		if target, ok := shipTarget(s.st); ok && !s.ex.eng.peer.Responsible(target) {
			s.ex.migrateFrom(s.idx)
			return
		}
	}
	if !s.opened {
		s.ex.openFrom(s.idx)
	}
	s.flushProbes() // probes derived from the final upstream batch
	s.checkDone()
}

// rightDone reports whether the stage's own access path is exhausted.
func (s *stage) rightDone() bool {
	if !s.opened {
		return false
	}
	switch s.mode {
	case modeUndecided, modeEmpty:
		// Undecided at upstream EOS means no row ever arrived.
		return true
	case modeProbes:
		return s.upDone && s.opsOut == 0
	case modeScan:
		if s.rank {
			return s.nextRel == len(s.shards) && s.opsOut == 0
		}
		return s.issuedAll && s.opsOut == 0
	case modeFixed:
		return s.issuedAll && s.opsOut == 0
	case modeQGram:
		return s.gramsLeft == 0 && s.verified && s.opsOut == 0
	}
	return false
}

// checkDone propagates EOS downstream once both sides are exhausted.
func (s *stage) checkDone() {
	if s.eosDown || s.ex.stopped || s.ex.migrated || !s.upDone || !s.rightDone() {
		return
	}
	s.eosDown = true
	if s.spanID != 0 {
		s.eosAt = int64(s.ex.eng.peer.Net().Now())
	}
	if s.idx == len(s.ex.stages)-1 {
		s.ex.sink.eos()
		return
	}
	s.ex.stages[s.idx+1].upstreamEOS()
}

// submitOp routes one overlay operation through the query's window,
// tracking the stage's outstanding count for EOS detection.
func (s *stage) submitOp(issue func(cb func(pgrid.OpResult)) *pgrid.Handle, complete func(pgrid.OpResult)) {
	s.opsOut++
	s.ex.win.submit(issue, func(res pgrid.OpResult) {
		s.opsOut--
		complete(res)
		s.checkDone()
	})
}

// --- Tail sink ----------------------------------------------------------------

// sinkMode is the termination discipline the tail runs under.
type sinkMode int

const (
	// sinkAll materializes every row and applies the tail at EOS —
	// required by skyline, multi-key ordering, and orderings the final
	// stage cannot emit natively.
	sinkAll sinkMode = iota
	// sinkLimit streams rows in arrival order and — when a limit is
	// set — stops the pipeline as soon as that many rows exist.
	sinkLimit
	// sinkRank consumes an order-emitting final stage and stops once
	// the threshold test proves no better row can arrive.
	sinkRank
)

// tailSink terminates the pipeline: it accumulates emitted rows,
// decides when no further network work can change the result, and
// finalizes through Tail.Apply (which is a no-op re-normalization for
// the streaming modes). All methods require Exec.pmu.
type tailSink struct {
	ex      *Exec
	mode    sinkMode
	limit   int
	rankVar string
	topk    *ranking.ThresholdTopK[algebra.Binding]
	rows    []algebra.Binding
}

func newTailSink(ex *Exec) *tailSink {
	t := ex.tail
	k := &tailSink{ex: ex, mode: sinkAll, limit: t.Limit}
	// With an aggregation the sink consumes finalized GROUP rows. The
	// rank discipline additionally needs those rows to arrive in
	// ranking order, which only the centralized path streaming over the
	// group key can provide: pushdown delivers unordered partial states
	// and must materialize before ordering.
	aggRankOK := true
	if t.HasAgg() {
		aggRankOK = ex.agg != nil && !ex.agg.pushdown &&
			len(t.OrderBy) == 1 && containsVar(t.GroupBy, t.OrderBy[0].Var)
	}
	switch {
	case ex.eng.materialized() || len(t.Skyline) > 0 || (t.Limit <= 0 && len(t.OrderBy) > 0):
		// Blocking tail: every row is needed before the first can leave.
	case len(t.OrderBy) == 0:
		// Unordered: stream rows as they arrive; a limit stops early.
		k.mode = sinkLimit
	case t.Limit <= 0:
		// Ordered without limit: blocking.
	case len(t.OrderBy) == 1 && rankStreamable(ex.steps, t) && aggRankOK:
		k.mode = sinkRank
		key := t.OrderBy[0]
		k.rankVar = key.Var
		k.topk = ranking.NewThresholdTopK(t.Limit, func(a, b algebra.Binding) bool {
			c := a[key.Var].Compare(b[key.Var])
			if key.Desc {
				c = -c
			}
			return c < 0
		})
	}
	return k
}

// containsVar reports membership in a variable list.
func containsVar(vars []string, v string) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

// rankStreamable reports whether the final step's access path can emit
// rows in ranking order: a range scan over the ordering variable's
// attribute region, whose key order is value order under the
// order-preserving hash.
func rankStreamable(steps []Step, t Tail) bool {
	if len(steps) == 0 {
		return false
	}
	last := steps[len(steps)-1]
	return last.Strat == StratAVRange && !last.Pat.A.IsVar() &&
		last.Pat.V.IsVar() && last.Pat.V.Var == t.OrderBy[0].Var
}

// push receives rows from the final stage.
func (k *tailSink) push(rows []algebra.Binding) {
	switch k.mode {
	case sinkAll:
		k.rows = append(k.rows, rows...)
	case sinkLimit:
		for _, b := range rows {
			k.rows = append(k.rows, b)
			k.deliver(b)
			if k.limit > 0 && len(k.rows) >= k.limit {
				k.ex.earlyOut()
				return
			}
		}
	case sinkRank:
		for _, b := range rows {
			if k.topk.Offer(b) {
				k.rows = append(k.rows, b)
				k.deliver(b)
			}
			// The final stage emits in ranking order, so the row just
			// seen bounds everything still to come.
			if k.topk.Done(b) {
				k.ex.earlyOut()
				return
			}
		}
	}
}

// deliver hands one streamed row to the cursor (projected as the final
// result will be) and stamps time-to-first-result.
func (k *tailSink) deliver(b algebra.Binding) {
	k.ex.noteFirstResult()
	if cur := k.ex.cursor; cur != nil {
		cur.push([]algebra.Binding{projectRow(b, k.ex.tail.Project)})
	}
}

// eos finalizes the pipeline once every stage is exhausted. An
// aggregation flushes its remaining groups through the sink first, so
// LIMIT and rank termination apply to the finalized group rows (the
// flush itself may early-out, which already completed the query).
func (k *tailSink) eos() {
	if a := k.ex.agg; a != nil {
		a.flush(k)
		if k.ex.stopped || k.ex.Done() {
			return
		}
	}
	k.ex.finishPipeline(k.rows)
}

// projectRow mirrors Tail.Apply's projection for streamed rows.
func projectRow(b algebra.Binding, vars []string) algebra.Binding {
	if len(vars) == 0 {
		return b
	}
	nb := algebra.Binding{}
	for _, v := range vars {
		if val, ok := b[v]; ok {
			nb[v] = val
		}
	}
	return nb
}

// --- Pull cursor --------------------------------------------------------------

// Cursor is the pull side of a streaming query: rows become available
// as the pipeline emits them, before the query has finished. Next
// blocks (concurrent mode) or drives the simulation (deterministic
// mode) until a row or EOS; Close cancels the rest of the query. A
// Cursor is intended for a single consuming goroutine.
type Cursor struct {
	ex     *Exec
	mu     sync.Mutex
	rows   []algebra.Binding
	pos    int
	done   bool
	notify chan struct{}
}

func newCursor(ex *Exec) *Cursor {
	return &Cursor{ex: ex, notify: make(chan struct{}, 1)}
}

// push appends rows; called by the sink (streaming) or at finish.
func (c *Cursor) push(rows []algebra.Binding) {
	c.mu.Lock()
	c.rows = append(c.rows, rows...)
	c.mu.Unlock()
	c.wake()
}

// finish tops the cursor up to the final result and marks EOS. Rows
// already streamed stay as delivered; only the remainder is appended
// (the final result always extends the streamed prefix).
func (c *Cursor) finish(result []algebra.Binding) {
	c.mu.Lock()
	if n := len(c.rows); n < len(result) {
		c.rows = append(c.rows, result[n:]...)
	}
	c.done = true
	c.mu.Unlock()
	c.wake()
}

func (c *Cursor) wake() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// Next returns the next result row, blocking (or pumping the simulated
// network) until one is available; ok is false at end of stream.
func (c *Cursor) Next() (algebra.Binding, bool) {
	net := c.ex.eng.peer.Net()
	drv := pgrid.DriverOf(net)
	deadline := time.Duration(-1)
	for {
		c.mu.Lock()
		if c.pos < len(c.rows) {
			b := c.rows[c.pos]
			c.pos++
			c.mu.Unlock()
			return b, true
		}
		if c.done {
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Unlock()
		if c.ex.ctx.Err() != nil {
			c.ex.Cancel()
			continue
		}
		if drv == nil {
			select {
			case <-c.notify:
			case <-c.ex.doneCh:
				// The exec finalizes the cursor before closing doneCh,
				// so the next pass observes done (or the final rows).
			case <-c.ex.ctx.Done():
			case <-time.After(net.WallTimeout(waitTimeout)):
				// Mirror Exec.Wait's bound: a query whose responses
				// were swallowed must not block the consumer forever.
				c.ex.Cancel()
			}
			continue
		}
		if deadline < 0 {
			deadline = net.Now() + waitTimeout
		}
		if drv.Pending() == 0 || net.Now() >= deadline {
			c.ex.Cancel()
			continue
		}
		drv.Step()
	}
}

// Close terminates the query early (a no-op after completion) and
// releases its network state.
func (c *Cursor) Close() { c.ex.Cancel() }

// Exec returns the execution handle behind the cursor (metrics).
func (c *Cursor) Exec() *Exec { return c.ex }
