package physical_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"unistore/internal/cost"
	"unistore/internal/keys"
	"unistore/internal/optimizer"
	"unistore/internal/pgrid"
	. "unistore/internal/physical"
	"unistore/internal/simnet"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// This file property-tests the central correctness contract: for any
// query the distributed engine must return exactly the bindings of the
// in-memory reference executor, under every optimizer mode.

// randCorpus builds a random multi-entity corpus with joinable links.
func randCorpus(rng *rand.Rand, persons int) []triple.Triple {
	var ts []triple.Triple
	groups := []string{"db", "os", "net"}
	for i := 0; i < persons; i++ {
		id := fmt.Sprintf("p%02d", i)
		ts = append(ts,
			triple.T(id, "name", fmt.Sprintf("n%02d", i)),
			triple.TN(id, "age", float64(20+rng.Intn(40))),
			triple.T(id, "group", groups[rng.Intn(len(groups))]))
		if rng.Intn(2) == 0 {
			ts = append(ts, triple.TN(id, "score", float64(rng.Intn(10))))
		}
		// Link to another person (friend-of-a-friend style, Fig. 3's
		// has_friend edge).
		ts = append(ts, triple.T(id, "friend", fmt.Sprintf("n%02d", rng.Intn(persons))))
	}
	return ts
}

// randQuery composes a random query over the corpus's schema.
func randQuery(rng *rand.Rand) string {
	patterns := []string{
		`(?p,'name',?n)`,
		`(?p,'age',?a)`,
		`(?p,'group',?g)`,
		`(?p,'score',?s)`,
		`(?p,'friend',?f)`,
		`(?q,'name',?f)`, // join person→friend name
		fmt.Sprintf(`(?p,'group','%s')`, []string{"db", "os", "net"}[rng.Intn(3)]),
		fmt.Sprintf(`(?p,'name','n%02d')`, rng.Intn(20)),
	}
	n := 1 + rng.Intn(4)
	picked := map[int]bool{}
	where := ""
	usesVar := map[string]bool{"p": true}
	for len(picked) < n {
		i := rng.Intn(len(patterns))
		if picked[i] {
			continue
		}
		picked[i] = true
		where += " " + patterns[i]
		switch i {
		case 0:
			usesVar["n"] = true
		case 1:
			usesVar["a"] = true
		case 2:
			usesVar["g"] = true
		case 3:
			usesVar["s"] = true
		case 4:
			usesVar["f"] = true
		case 5:
			usesVar["q"] = true
			usesVar["f"] = true
		}
	}
	if usesVar["a"] && rng.Intn(2) == 0 {
		where += fmt.Sprintf(" FILTER ?a %s %d",
			[]string{"<", "<=", ">", ">=", "!="}[rng.Intn(5)], 25+rng.Intn(30))
	}
	if usesVar["n"] && rng.Intn(4) == 0 {
		where += " FILTER edist(?n,'n05')<2"
	}
	q := "SELECT * WHERE {" + where + "}"
	if usesVar["a"] && rng.Intn(3) == 0 {
		q += " ORDER BY ?a"
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(5))
		}
	}
	return q
}

func TestRandomQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	corpus := randCorpus(rng, 20)
	stats := cost.DefaultStats(16)
	modes := []optimizer.Options{
		{Mode: optimizer.ModeFetch, UseQGram: true},
		{Mode: optimizer.ModeShip, UseQGram: true},
		{Mode: optimizer.ModeAuto, UseQGram: true, ShipThreshold: 8},
		{Disabled: true},
	}
	// Every mode runs with a different peer-side page size (0 = off, 1
	// = maximally paged), so the whole suite also proves that probe
	// batching (always on, via the routing caches warmed as queries
	// run) and response paging never change any result.
	pageSizes := []int{1, 3, 0, 2}
	nets := make([]*testNet, len(modes))
	for mi, m := range modes {
		nets[mi] = buildNetPaged(t, 16, int64(100+mi), optimizer.New(stats, m), pageSizes[mi])
		nets[mi].load(corpus)
	}
	for iter := 0; iter < 60; iter++ {
		src := randQuery(rng)
		q, err := vql.ParseQuery(src)
		if err != nil {
			t.Fatalf("generated query invalid: %q: %v", src, err)
		}
		want := canon(referenceRun(t, src, corpus))
		ordered := len(q.OrderBy) > 0 && q.Limit > 0
		for mi := range modes {
			got, ex := distributedRun(t, nets[mi], iter%16, src)
			if !ex.Done() {
				t.Fatalf("mode %d: %q did not complete", mi, src)
			}
			g := canon(got)
			if ordered {
				// LIMIT after ORDER BY may pick different ties; compare
				// sizes and that every result is in the full set.
				if len(g) != len(want) && len(got) != q.Limit {
					t.Fatalf("mode %d: %q sizes differ: %d vs %d", mi, src, len(g), len(want))
				}
				continue
			}
			if !reflect.DeepEqual(g, want) {
				t.Fatalf("mode %d: %q\n got %v\nwant %v", mi, src, g, want)
			}
		}
	}
}

// TestProbeCapFallback: when a join variable binds many distinct
// values, the executor must fall back to a range scan rather than
// issuing unbounded parallel lookups — and stay correct.
func TestProbeCapFallback(t *testing.T) {
	tn := buildNet(t, 16, 77, nil)
	var corpus []triple.Triple
	for i := 0; i < 150; i++ { // > probeCap (64) distinct ages
		id := fmt.Sprintf("x%03d", i)
		corpus = append(corpus,
			triple.TN(id, "uid", float64(i)),
			triple.T(id, "tag", fmt.Sprintf("t%03d", i)))
	}
	tn.load(corpus)
	src := `SELECT ?p,?u,?g WHERE {(?p,'uid',?u) (?p,'tag',?g)}`
	want := canon(referenceRun(t, src, corpus))
	got, ex := distributedRun(t, tn, 0, src)
	if !ex.Done() {
		t.Fatal("did not complete")
	}
	if !reflect.DeepEqual(canon(got), want) {
		t.Fatalf("probe-cap path diverged: %d vs %d results", len(got), len(want))
	}
}

// TestLossyNetworkBestEffort: with 5% loss the engine must still
// terminate and return a subset of the reference results.
func TestLossyNetworkBestEffort(t *testing.T) {
	tn := buildNetLossy(t, 16, 31, 0.05)
	corpus := randCorpus(rand.New(rand.NewSource(5)), 15)
	tn.load(corpus)
	src := `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`
	fullSet := map[string]bool{}
	for _, s := range canon(referenceRun(t, src, corpus)) {
		fullSet[s] = true
	}
	got, ex := distributedRun(t, tn, 3, src)
	if !ex.Done() {
		t.Fatal("lossy query did not terminate")
	}
	for _, s := range canon(got) {
		if !fullSet[s] {
			t.Fatalf("lossy run fabricated result %q", s)
		}
	}
	if len(got) == 0 {
		t.Error("5% loss should not wipe out all results")
	}
	t.Logf("lossy run returned %d/%d results", len(got), len(fullSet))
}

// TestPrefixPushdownCorrectAndCheaper: startswith pushdown must return
// the reference results with fewer messages than the full range scan.
func TestPrefixPushdownCorrectAndCheaper(t *testing.T) {
	stats := cost.DefaultStats(64)
	opt := optimizer.New(stats, optimizer.Options{Mode: optimizer.ModeFetch})
	var corpus []triple.Triple
	for i := 0; i < 200; i++ {
		corpus = append(corpus, triple.T(fmt.Sprintf("b%03d", i), "title",
			fmt.Sprintf("%c-paper-%03d", 'a'+i%26, i)))
	}
	// Pruning only matters when the attribute's data spans several
	// partitions, so build the trie adapted to this corpus (on a
	// peer-balanced trie the whole attribute fits one partition and
	// both access paths cost the same).
	var samples []keys.Key
	for _, tr := range corpus {
		samples = append(samples, triple.IndexKey(tr, triple.ByAV))
	}
	net := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: 88})
	peers := pgrid.BuildAdaptive(net, 64, 1, samples, pgrid.DefaultConfig())
	tn := &testNet{net: net, peers: peers}
	for _, p := range peers {
		tn.engines = append(tn.engines, NewEngine(p, opt))
	}
	tn.load(corpus)
	src := `SELECT ?t WHERE {(?p,'title',?t) FILTER startswith(?t,'m-paper')}`
	want := canon(referenceRun(t, src, corpus))

	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	// With pushdown.
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(plan)
	if plan.Steps[0].ValuePrefix == "" {
		t.Fatal("pushdown not applied")
	}
	tn.net.ResetStats()
	got, _ := tn.engines[0].RunPlan(plan)
	withMsgs := tn.net.Stats().MessagesSent
	if !reflect.DeepEqual(canon(got), want) {
		t.Fatalf("pushdown results: %v want %v", canon(got), want)
	}
	// Without pushdown (manually cleared).
	plan2, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(plan2)
	plan2.Steps[0].ValuePrefix = ""
	tn.net.ResetStats()
	got2, _ := tn.engines[0].RunPlan(plan2)
	withoutMsgs := tn.net.Stats().MessagesSent
	if !reflect.DeepEqual(canon(got2), want) {
		t.Fatalf("full-scan results diverged")
	}
	if withMsgs >= withoutMsgs {
		t.Errorf("pushdown %d msgs, full scan %d — prefix routing must prune", withMsgs, withoutMsgs)
	}
	t.Logf("prefix search: %d msgs vs %d full scan", withMsgs, withoutMsgs)
}
