package physical_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"unistore/internal/algebra"
	"unistore/internal/cost"
	"unistore/internal/optimizer"
	"unistore/internal/pgrid"
	. "unistore/internal/physical"
	"unistore/internal/simnet"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// testNet bundles an overlay with engines on every peer.
type testNet struct {
	net     *simnet.Network
	peers   []*pgrid.Peer
	engines []*Engine
	triples []triple.Triple
}

func buildNet(t testing.TB, n int, seed int64, reopt Reoptimizer) *testNet {
	return buildNetPaged(t, n, seed, reopt, 0)
}

// buildNetPaged is buildNet with peer-side range paging enabled at the
// given page size (0 = off) — the equivalence suite runs the same
// queries across page sizes to prove paging is invisible to results.
func buildNetPaged(t testing.TB, n int, seed int64, reopt Reoptimizer, pageSize int) *testNet {
	net := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: seed})
	cfg := pgrid.DefaultConfig()
	cfg.PageSize = pageSize
	peers := pgrid.BuildBalanced(net, n, 1, cfg)
	tn := &testNet{net: net, peers: peers}
	for _, p := range peers {
		tn.engines = append(tn.engines, NewEngine(p, reopt))
	}
	return tn
}

// buildNetLossy builds an overlay with replicated partitions over a
// lossy network, for best-effort behaviour tests.
func buildNetLossy(t testing.TB, n int, seed int64, loss float64) *testNet {
	net := simnet.New(simnet.Config{
		Latency: simnet.ConstantLatency(time.Millisecond), Seed: seed, LossRate: loss})
	peers := pgrid.BuildBalanced(net, n, 2, pgrid.DefaultConfig())
	tn := &testNet{net: net, peers: peers}
	for _, p := range peers {
		tn.engines = append(tn.engines, NewEngine(p, nil))
	}
	return tn
}

// load inserts triples (with gram postings) and drains the network.
func (tn *testNet) load(ts []triple.Triple) {
	for i, tr := range ts {
		p := tn.peers[i%len(tn.peers)]
		p.InsertTriple(tr, 1)
		InsertGrams(p, tr, 1)
	}
	tn.triples = append(tn.triples, ts...)
	tn.net.Run()
}

func paperData() []triple.Triple {
	var ts []triple.Triple
	person := func(id, name string, age, pubs float64, titles ...string) {
		ts = append(ts,
			triple.T(id, "name", name),
			triple.TN(id, "age", age),
			triple.TN(id, "num_of_pubs", pubs))
		for _, title := range titles {
			ts = append(ts, triple.T(id, "has_published", title))
		}
	}
	pub := func(id, title, conf string) {
		ts = append(ts, triple.T(id, "title", title), triple.T(id, "published_in", conf))
	}
	conf := func(id, name, series string) {
		ts = append(ts, triple.T(id, "confname", name), triple.T(id, "series", series))
	}
	person("p1", "alice", 28, 10, "Similarity Queries")
	person("p2", "bob", 45, 25, "Progressive Skylines")
	person("p3", "carol", 25, 3, "Universal Storage")
	person("p4", "dave", 33, 25, "Mutant Plans")
	pub("u1", "Similarity Queries", "ICDE 2006")
	pub("u2", "Progressive Skylines", "ICDE 2005")
	pub("u3", "Universal Storage", "VLDB 2006")
	pub("u4", "Mutant Plans", "ICDE 2005")
	conf("c1", "ICDE 2006", "ICDE")
	conf("c2", "ICDE 2005", "ICDE")
	conf("c3", "VLDB 2006", "VLDB")
	return ts
}

// canon renders bindings order-independently for comparison.
func canon(bs []algebra.Binding) []string {
	var out []string
	for _, b := range bs {
		var vars []string
		for k := range b {
			vars = append(vars, k)
		}
		sort.Strings(vars)
		s := ""
		for _, v := range vars {
			s += v + "=" + b[v].Lexical() + ";"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// referenceRun executes the query with the in-memory oracle.
func referenceRun(t testing.TB, src string, data []triple.Triple) []algebra.Binding {
	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lp, err := algebra.Build(q)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return algebra.Execute(lp, &algebra.MemSource{Triples: data})
}

// distributedRun executes the query over the overlay from a peer.
func distributedRun(t testing.TB, tn *testNet, engineIdx int, src string) ([]algebra.Binding, *Exec) {
	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bs, ex, err := tn.engines[engineIdx].Run(q)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return bs, ex
}

// checkAgainstReference asserts the distributed engine matches the
// oracle for the query (ignoring result order unless ordered).
func checkAgainstReference(t *testing.T, tn *testNet, src string) {
	t.Helper()
	want := canon(referenceRun(t, src, tn.triples))
	for _, idx := range []int{0, len(tn.engines) / 2, len(tn.engines) - 1} {
		got, ex := distributedRun(t, tn, idx, src)
		if !ex.Done() {
			t.Fatalf("engine %d: query did not complete", idx)
		}
		if !reflect.DeepEqual(canon(got), want) {
			t.Fatalf("engine %d:\n got %v\nwant %v\nquery %s", idx, canon(got), want, src)
		}
	}
}

func TestSinglePatternQueries(t *testing.T) {
	tn := buildNet(t, 16, 1, nil)
	tn.load(paperData())
	for _, src := range []string{
		`SELECT ?n WHERE {(?p,'name',?n)}`,      // attribute range
		`SELECT ?a WHERE {('p1','age',?a)}`,     // OID lookup
		`SELECT ?p WHERE {(?p,'name','alice')}`, // exact A#v lookup
		`SELECT ?attr WHERE {('p2',?attr,?v)}`,  // schema-level
		`SELECT ?s WHERE {(?s,?a,'ICDE 2005')}`, // v-index lookup
		`SELECT * WHERE {(?s,?a,?v)}`,           // full broadcast
	} {
		checkAgainstReference(t, tn, src)
	}
}

func TestJoinQueries(t *testing.T) {
	tn := buildNet(t, 16, 2, nil)
	tn.load(paperData())
	for _, src := range []string{
		`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`,
		`SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30}`,
		`SELECT ?n WHERE {(?p,'name',?n) (?p,'has_published',?t)
			(?u,'title',?t) (?u,'published_in',?cn)
			(?c,'confname',?cn) (?c,'series','ICDE')}`,
	} {
		checkAgainstReference(t, tn, src)
	}
}

func TestPaperSkylineQueryDistributed(t *testing.T) {
	tn := buildNet(t, 32, 3, nil)
	tn.load(paperData())
	src := `SELECT ?n,?age,?cnt WHERE {
		(?p,'name',?n) (?p,'age',?age) (?p,'num_of_pubs',?cnt)
		(?p,'has_published',?t) (?u,'title',?t) (?u,'published_in',?cn)
		(?c,'confname',?cn) (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
	} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`
	checkAgainstReference(t, tn, src)
	// And the expected authors appear.
	got, _ := distributedRun(t, tn, 0, src)
	names := map[string]bool{}
	for _, b := range got {
		names[b["n"].Str] = true
	}
	if !names["alice"] || !names["dave"] || names["bob"] {
		t.Errorf("skyline authors = %v", names)
	}
}

func TestOrderLimitTopDistributed(t *testing.T) {
	tn := buildNet(t, 16, 4, nil)
	tn.load(paperData())
	got, _ := distributedRun(t, tn, 1,
		`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)} ORDER BY ?a LIMIT 2`)
	if len(got) != 2 || got[0]["n"].Str != "carol" || got[1]["n"].Str != "alice" {
		t.Errorf("youngest two = %v", got)
	}
	got, _ = distributedRun(t, tn, 2,
		`SELECT ?n,?c WHERE {(?p,'name',?n) (?p,'num_of_pubs',?c)} ORDER BY ?c DESC TOP 2`)
	if len(got) != 2 {
		t.Errorf("top-2 = %v", got)
	}
}

func TestShipModeMatchesFetchMode(t *testing.T) {
	src := `SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a >= 30}`
	stats := cost.DefaultStats(16)
	for _, mode := range []optimizer.Mode{optimizer.ModeFetch, optimizer.ModeShip, optimizer.ModeAuto} {
		opt := optimizer.New(stats, optimizer.Options{Mode: mode, UseQGram: true})
		tn := buildNet(t, 16, 5, opt)
		tn.load(paperData())
		q, err := vql.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := CompileQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		opt.Optimize(plan)
		got, ex := tn.engines[0].RunPlan(plan)
		if !ex.Done() {
			t.Fatalf("mode %v: did not complete", mode)
		}
		want := canon(referenceRun(t, src, tn.triples))
		if !reflect.DeepEqual(canon(got), want) {
			t.Errorf("mode %v: got %v want %v", mode, canon(got), want)
		}
	}
}

func TestMutantPlanActuallyMigrates(t *testing.T) {
	stats := cost.DefaultStats(32)
	opt := optimizer.New(stats, optimizer.Options{Mode: optimizer.ModeShip})
	tn := buildNet(t, 32, 6, opt)
	tn.load(paperData())
	q, err := vql.ParseQuery(`SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(plan)
	shipSteps := 0
	for _, st := range plan.Steps {
		if st.Ship {
			shipSteps++
		}
	}
	if shipSteps == 0 {
		t.Fatal("ModeShip must mark steps for migration")
	}
	tn.net.ResetStats()
	got, ex := tn.engines[0].RunPlan(plan)
	if !ex.Done() {
		t.Fatal("shipped plan did not complete")
	}
	if tn.net.Stats().PerKind[pgrid.KindApp] == 0 {
		t.Error("no app-routed plan migration observed")
	}
	want := canon(referenceRun(t, `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`, tn.triples))
	if !reflect.DeepEqual(canon(got), want) {
		t.Errorf("migrated result mismatch: %v vs %v", canon(got), want)
	}
}

func TestQGramStrategyCorrect(t *testing.T) {
	stats := cost.DefaultStats(32)
	stats.TriplesPerAttr["series"] = 3
	opt := optimizer.New(stats, optimizer.Options{Mode: optimizer.ModeFetch, UseQGram: true})
	tn := buildNet(t, 32, 7, opt)
	tn.load(paperData())
	src := `SELECT ?sr WHERE {(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}`
	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Force the q-gram access path.
	forced := optimizer.New(stats, optimizer.Options{
		Mode: optimizer.ModeFetch, UseQGram: true, ForceStrategy: StratQGram})
	forced.Optimize(plan)
	if plan.Steps[0].Strat != StratQGram {
		t.Fatalf("forced strategy not applied: %v", plan.Steps[0].Strat)
	}
	got, ex := tn.engines[3].RunPlan(plan)
	if !ex.Done() {
		t.Fatal("q-gram query did not complete")
	}
	want := canon(referenceRun(t, src, tn.triples))
	if !reflect.DeepEqual(canon(got), want) {
		t.Errorf("q-gram path: got %v want %v", canon(got), want)
	}
}

func TestQGramBeatsBroadcastOnMessages(t *testing.T) {
	// The E5 shape: at scale, the q-gram access path must use fewer
	// messages than broadcasting the similarity predicate.
	stats := cost.DefaultStats(64)
	tn := buildNet(t, 64, 8, nil)
	var data []triple.Triple
	for i := 0; i < 200; i++ {
		data = append(data, triple.T(fmt.Sprintf("c%d", i), "series",
			fmt.Sprintf("CONF%03d", i)))
	}
	data = append(data, triple.T("cx", "series", "ICDE"), triple.T("cy", "series", "ICDM"))
	tn.load(data)
	mkPlan := func(strat AccessStrategy) *Plan {
		q, err := vql.ParseQuery(`SELECT ?sr WHERE {(?c,'series',?sr) FILTER edist(?sr,'ICDE')<2}`)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := CompileQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		opt := optimizer.New(stats, optimizer.Options{Mode: optimizer.ModeFetch, UseQGram: true, ForceStrategy: strat})
		opt.Optimize(plan)
		return plan
	}
	tn.net.ResetStats()
	gotQ, _ := tn.engines[0].RunPlan(mkPlan(StratQGram))
	qMsgs := tn.net.Stats().MessagesSent
	tn.net.ResetStats()
	gotB, _ := tn.engines[0].RunPlan(mkPlan(StratBroadcast))
	bMsgs := tn.net.Stats().MessagesSent
	if !reflect.DeepEqual(canon(gotQ), canon(gotB)) {
		t.Fatalf("access paths disagree: %v vs %v", canon(gotQ), canon(gotB))
	}
	if qMsgs >= bMsgs {
		t.Errorf("q-gram used %d messages, broadcast %d — index must win at 64 peers", qMsgs, bMsgs)
	}
	t.Logf("similarity messages: qgram=%d broadcast=%d", qMsgs, bMsgs)
}

func TestOptimizerReordersSelectiveFirst(t *testing.T) {
	stats := cost.DefaultStats(64)
	stats.TriplesPerAttr["name"] = 10000
	stats.TriplesPerAttr["age"] = 10000
	opt := optimizer.New(stats, optimizer.DefaultOptions())
	q, err := vql.ParseQuery(`SELECT ?n WHERE {(?p,'name',?n) (?p,'age',30)}`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(plan)
	if plan.Steps[0].Strat != StratAVLookup {
		t.Errorf("selective exact lookup must run first: %s", plan)
	}
}

func TestDisabledOptimizerKeepsOrder(t *testing.T) {
	stats := cost.DefaultStats(16)
	opt := optimizer.New(stats, optimizer.Options{Disabled: true})
	tn := buildNet(t, 16, 9, opt)
	tn.load(paperData())
	src := `SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a > 20}`
	q, _ := vql.ParseQuery(src)
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(plan)
	for _, st := range plan.Steps {
		if st.Ship {
			t.Error("disabled optimizer must not ship")
		}
	}
	got, ex := tn.engines[0].RunPlan(plan)
	if !ex.Done() {
		t.Fatal("did not complete")
	}
	want := canon(referenceRun(t, src, tn.triples))
	if !reflect.DeepEqual(canon(got), want) {
		t.Errorf("disabled optimizer result mismatch")
	}
}

func TestEmptyResultQueries(t *testing.T) {
	tn := buildNet(t, 16, 10, nil)
	tn.load(paperData())
	got, ex := distributedRun(t, tn, 0, `SELECT ?p WHERE {(?p,'name','nobody')}`)
	if !ex.Done() || len(got) != 0 {
		t.Errorf("empty query: done=%v n=%d", ex.Done(), len(got))
	}
	got, ex = distributedRun(t, tn, 0,
		`SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a > 200}`)
	if !ex.Done() || len(got) != 0 {
		t.Errorf("empty filter query: done=%v n=%d", ex.Done(), len(got))
	}
}

func TestElapsedAndStats(t *testing.T) {
	tn := buildNet(t, 16, 11, nil)
	tn.load(paperData())
	_, ex := distributedRun(t, tn, 0, `SELECT ?n WHERE {(?p,'name',?n)}`)
	if ex.Elapsed() <= 0 {
		t.Error("simulated latency must be positive")
	}
	if ex.OpsIssued() == 0 {
		t.Error("ops counter must advance")
	}
}

func TestCompileRejectsNonLeftDeep(t *testing.T) {
	bad := &algebra.Join{
		L: &algebra.PatternScan{Pat: vql.Pattern{S: vql.V("a"), A: vql.Lit("x"), V: vql.V("b")}},
		R: &algebra.Join{
			L:  &algebra.PatternScan{Pat: vql.Pattern{S: vql.V("c"), A: vql.Lit("y"), V: vql.V("d")}},
			R:  &algebra.PatternScan{Pat: vql.Pattern{S: vql.V("e"), A: vql.Lit("z"), V: vql.V("f")}},
			On: nil,
		},
	}
	if _, err := Compile(bad); err == nil {
		t.Error("bushy tree must be rejected")
	}
}

func TestStrategyStrings(t *testing.T) {
	for s := StratAuto; s <= StratQGram; s++ {
		if s.String() == "" {
			t.Errorf("strategy %d has no name", s)
		}
	}
}

func BenchmarkDistributedTwoPatternJoin(b *testing.B) {
	tn := buildNet(b, 32, 12, nil)
	var data []triple.Triple
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("p%d", i)
		data = append(data,
			triple.T(id, "name", fmt.Sprintf("person%03d", i)),
			triple.TN(id, "age", float64(20+i%60)))
	}
	tn.load(data)
	q, err := vql.ParseQuery(`SELECT ?n WHERE {(?p,'age',30) (?p,'name',?n)}`)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.engines[i%32].RunPlan(plan)
	}
}
