package physical_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	. "unistore/internal/physical"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// namesCorpus builds `n` persons with distinct, sortable names.
func namesCorpus(n int) []triple.Triple {
	var ts []triple.Triple
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p%03d", i)
		ts = append(ts,
			triple.T(id, "name", fmt.Sprintf("name%03d", i)),
			triple.TN(id, "age", float64(20+i%50)))
	}
	return ts
}

// runCounted executes src and returns (bindings, messages) with the
// network settled before and after, so counts attribute cleanly.
func runCounted(t *testing.T, tn *testNet, src string) ([]map[string]triple.Value, int) {
	t.Helper()
	tn.net.Settle()
	tn.net.ResetStats()
	got, ex := distributedRun(t, tn, 0, src)
	if !ex.Done() {
		t.Fatalf("%q did not complete", src)
	}
	tn.net.Settle()
	rows := make([]map[string]triple.Value, len(got))
	for i, b := range got {
		rows[i] = b
	}
	return rows, tn.net.Stats().MessagesSent
}

// TestLimitEarlyTerminationFewerMessages: with the range scan sharded,
// a LIMIT query must stop issuing shards once enough rows exist —
// strictly fewer messages than the exhaustive scan, rows a subset of
// the full result.
func TestLimitEarlyTerminationFewerMessages(t *testing.T) {
	tn := buildNet(t, 64, 21, nil)
	tn.load(namesCorpus(200))
	for _, e := range tn.engines {
		e.SetRangeShards(8)
		e.SetParallelism(2)
	}
	full, fullMsgs := runCounted(t, tn, `SELECT ?n WHERE {(?p,'name',?n)}`)
	limited, limMsgs := runCounted(t, tn, `SELECT ?n WHERE {(?p,'name',?n)} LIMIT 3`)
	if len(limited) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(limited))
	}
	fullSet := map[string]bool{}
	for _, b := range full {
		fullSet[b["n"].Str] = true
	}
	for _, b := range limited {
		if !fullSet[b["n"].Str] {
			t.Fatalf("limited run fabricated %q", b["n"].Str)
		}
	}
	if limMsgs >= fullMsgs {
		t.Errorf("LIMIT used %d messages, full scan %d — early-out must stop the shower", limMsgs, fullMsgs)
	}
	t.Logf("messages: limit=%d full=%d", limMsgs, fullMsgs)
}

// TestTopKStreamingOrderedAndCheaper: an ORDER BY + LIMIT over the
// scanned value variable streams in ranking order (order-preserving
// hash), so the executor must return exactly the reference top-k while
// skipping the tail of the shard sequence.
func TestTopKStreamingOrderedAndCheaper(t *testing.T) {
	tn := buildNet(t, 64, 22, nil)
	tn.load(namesCorpus(200))
	for _, e := range tn.engines {
		e.SetRangeShards(8)
		e.SetParallelism(2)
	}
	_, fullMsgs := runCounted(t, tn, `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n`)

	src := `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 5`
	want := canon(referenceRun(t, src, tn.triples))
	got, topMsgs := runCounted(t, tn, src)
	var names []string
	for _, b := range got {
		names = append(names, b["n"].Str)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("top-k not in order: %v", names)
		}
	}
	gotB := make([]map[string]triple.Value, len(got))
	copy(gotB, got)
	gotCanon := canonMaps(gotB)
	if !reflect.DeepEqual(gotCanon, want) {
		t.Fatalf("top-k mismatch:\n got %v\nwant %v", gotCanon, want)
	}
	if topMsgs >= fullMsgs {
		t.Errorf("top-k used %d messages, full ordered scan %d", topMsgs, fullMsgs)
	}
	t.Logf("messages: top-k=%d full=%d", topMsgs, fullMsgs)

	// DESC streams the shard sequence in reverse key order.
	desc, _ := runCounted(t, tn, `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n DESC LIMIT 4`)
	if len(desc) != 4 || desc[0]["n"].Str != "name199" || desc[3]["n"].Str != "name196" {
		t.Fatalf("DESC top-4 = %v", desc)
	}
}

func canonMaps(rows []map[string]triple.Value) []string {
	bs := make([]map[string]triple.Value, len(rows))
	copy(bs, rows)
	var out []string
	for _, b := range bs {
		out = append(out, fmt.Sprintf("n=%s;", b["n"].Lexical()))
	}
	// Mirror canon()'s sorted rendering for single-var rows.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestEarlyOutReleasesPendingOps: after an early-terminated query and
// a settled network, no pending operation may linger at any peer.
func TestEarlyOutReleasesPendingOps(t *testing.T) {
	tn := buildNet(t, 32, 23, nil)
	tn.load(namesCorpus(100))
	for _, e := range tn.engines {
		e.SetRangeShards(8)
		e.SetParallelism(2)
	}
	_, _ = runCounted(t, tn, `SELECT ?n WHERE {(?p,'name',?n)} LIMIT 2`)
	for i, p := range tn.peers {
		if n := p.PendingOps(); n != 0 {
			t.Errorf("peer %d holds %d pending ops after early-out", i, n)
		}
	}
}

// TestContextCancelStopsQuery: a canceled context terminates the query
// immediately with partial (possibly empty) results and releases every
// pending operation.
func TestContextCancelStopsQuery(t *testing.T) {
	tn := buildNet(t, 32, 24, nil)
	tn.load(namesCorpus(100))
	q, err := vql.ParseQuery(`SELECT ?n WHERE {(?p,'name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first response can arrive
	bs, ex := tn.engines[0].RunPlanCtx(ctx, plan)
	if !ex.Done() {
		t.Fatal("canceled query must complete")
	}
	if len(bs) != 0 {
		t.Fatalf("canceled-before-start query returned %d rows", len(bs))
	}
	tn.net.Settle()
	for i, p := range tn.peers {
		if n := p.PendingOps(); n != 0 {
			t.Errorf("peer %d holds %d pending ops after cancel", i, n)
		}
	}
	// The engine must remain usable afterwards.
	src := `SELECT ?n WHERE {(?p,'name',?n)} LIMIT 1`
	got, ex2 := distributedRun(t, tn, 0, src)
	if !ex2.Done() || len(got) != 1 {
		t.Fatalf("engine unusable after cancel: done=%v rows=%d", ex2.Done(), len(got))
	}
}

// TestMaterializeTailBaselineEquivalent: the benchmark baseline knob
// must not change results, only traffic.
func TestMaterializeTailBaselineEquivalent(t *testing.T) {
	tn := buildNet(t, 64, 25, nil)
	tn.load(namesCorpus(120))
	for _, e := range tn.engines {
		e.SetRangeShards(8)
	}
	src := `SELECT ?n WHERE {(?p,'name',?n)} ORDER BY ?n LIMIT 6`
	stream, streamMsgs := runCounted(t, tn, src)
	tn.engines[0].SetMaterializeTail(true)
	mat, matMsgs := runCounted(t, tn, src)
	tn.engines[0].SetMaterializeTail(false)
	if !reflect.DeepEqual(canonMaps(stream), canonMaps(mat)) {
		t.Fatalf("baseline diverged: %v vs %v", stream, mat)
	}
	if streamMsgs >= matMsgs {
		t.Errorf("streaming used %d messages, materializing baseline %d", streamMsgs, matMsgs)
	}
	t.Logf("messages: streaming=%d materializing=%d", streamMsgs, matMsgs)
}

// TestCursorStreamsBeforeCompletion: the pull cursor must yield the
// first rows of a sharded scan while later shards are still unissued,
// and Close must cancel the remainder.
func TestCursorStreamsBeforeCompletion(t *testing.T) {
	tn := buildNet(t, 64, 26, nil)
	tn.load(namesCorpus(150))
	eng := tn.engines[0]
	eng.SetRangeShards(8)
	eng.SetParallelism(1)
	q, err := vql.ParseQuery(`SELECT ?n WHERE {(?p,'name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	cur := eng.Open(context.Background(), plan)
	row, ok := cur.Next()
	if !ok || row["n"].Str == "" {
		t.Fatalf("cursor yielded no first row: %v ok=%v", row, ok)
	}
	if cur.Exec().Done() {
		t.Error("query must still be running after the first row of a sequential sharded scan")
	}
	cur.Close()
	if !cur.Exec().Done() {
		t.Error("Close must terminate the query")
	}
	tn.net.Settle()
	for i, p := range tn.peers {
		if n := p.PendingOps(); n != 0 {
			t.Errorf("peer %d holds %d pending ops after cursor close", i, n)
		}
	}
}
