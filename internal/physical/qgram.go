package physical

import (
	"sort"

	"unistore/internal/pgrid"
	"unistore/internal/qgram"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// This file implements the distributed q-gram similarity access path
// (companion paper [6]): string values are indexed under their padded
// q-grams in a dedicated key-space region; a similarity selection
// edist(?v, c) <= k routes one range query per gram of c, count-filters
// the collected candidate values, verifies survivors with the banded
// edit distance, and resolves the matching values with exact A#v
// lookups — touching only O(|c|) regions instead of every peer.

// InsertGrams publishes the q-gram postings for a string-valued triple.
// Call alongside the triple insert when the similarity index is
// enabled; version follows the triple's version. Grams are inserted in
// sorted order so the message sequence (and thus every seeded run) is
// deterministic.
func InsertGrams(p *pgrid.Peer, tr triple.Triple, version uint64) int {
	if tr.Val.Kind != triple.KindString {
		return 0
	}
	set := qgram.GramSet(tr.Val.Str, qgram.Q)
	grams := make([]string, 0, len(set))
	for g := range set {
		grams = append(grams, g)
	}
	sort.Strings(grams)
	for _, g := range grams {
		gt := triple.GramTriple(tr.Attr, g, tr.Val.Str)
		p.InsertEntry(store.Entry{
			Kind:    triple.ByVal,
			Key:     triple.GramKey(tr.Attr, g, tr.Val.Str),
			Triple:  gt,
			Version: version,
		})
	}
	return len(grams)
}

// qgramStep resolves a pattern (?s, attr, ?v) under a similarity
// predicate on ?v using the distributed q-gram index.
func (ex *Exec) qgramStep(st Step) {
	pat := st.Pat
	sim, ok := simFor(st)
	if !ok || pat.A.IsVar() {
		// No usable predicate: degrade to the attribute range scan.
		ex.rangeScan(st, triple.ByAV, triple.AVPrefixRange(pat.A.Val.Str))
		return
	}
	attr := pat.A.Val.Str
	grams := qgram.GramSet(sim.Target, qgram.Q)
	if len(grams) == 0 {
		ex.advance(st, nil)
		return
	}
	gramList := make([]string, 0, len(grams))
	for g := range grams {
		gramList = append(gramList, g)
	}
	sort.Strings(gramList)
	ex.runFanout(len(gramList), func(slot int, complete func(pgrid.OpResult)) {
		ex.eng.peer.RangeQuery(triple.ByVal, triple.GramRange(attr, gramList[slot]), false, complete)
	}, func(results [][]store.Entry) {
		// Count, per candidate value, how many of the target's grams it
		// shares (each slot contributes each value at most once).
		counts := make(map[string]int)
		for _, entries := range results {
			seen := map[string]bool{}
			for _, e := range entries {
				val := e.Triple.Val.Str
				if !seen[val] {
					seen[val] = true
					counts[val]++
				}
			}
		}
		ex.qgramVerify(st, sim, attr, counts)
	})
}

// simFor extracts the similarity predicate applicable to the step's
// value variable.
func simFor(st Step) (SimSpec, bool) {
	v := st.Pat.V
	if !v.IsVar() {
		return SimSpec{}, false
	}
	for _, s := range st.Sims {
		if s.Var == v.Var {
			return s, true
		}
	}
	return SimSpec{}, false
}

// qgramVerify count-filters the candidates, verifies exactly, then
// probes the A#v index for the surviving values.
func (ex *Exec) qgramVerify(st Step, sim SimSpec, attr string, counts map[string]int) {
	var candidates []string
	for val, shared := range counts {
		thr := qgram.CountFilterThreshold(len(sim.Target), len(val), qgram.Q, sim.MaxDist)
		if thr > 0 && shared < thr {
			// The distinct-gram count underestimates the true shared
			// multiplicity only when grams repeat; re-check exactly
			// before pruning (soundness over speed).
			if qgram.SharedGrams(sim.Target, val, qgram.Q) < thr {
				continue
			}
		}
		if qgram.WithinDistance(sim.Target, val, sim.MaxDist) {
			candidates = append(candidates, val)
		}
	}
	sort.Strings(candidates)
	if len(candidates) == 0 {
		ex.advance(st, nil)
		return
	}
	// Resolve matching values to full bindings via the A#v index. The
	// similarity predicate is already verified; drop it so advance()
	// does not re-check (it would pass anyway).
	probe := st
	probe.Sims = dropSim(st.Sims, probe.Pat.V.Var)
	ex.multiLookupValues(probe, attr, candidates)
}

// dropSim removes the (verified) similarity predicate on var v.
func dropSim(sims []SimSpec, v string) []SimSpec {
	out := make([]SimSpec, 0, len(sims))
	for _, s := range sims {
		if s.Var != v {
			out = append(out, s)
		}
	}
	return out
}

// multiLookupValues probes A#v keys for each candidate value through
// the bounded fan-out window.
func (ex *Exec) multiLookupValues(st Step, attr string, values []string) {
	ex.runFanoutJoin(st, len(values), func(slot int, complete func(pgrid.OpResult)) {
		ex.eng.peer.Lookup(triple.ByAV, triple.AVKey(attr, triple.S(values[slot])), complete)
	})
}
