package physical

import (
	"sort"

	"unistore/internal/pgrid"
	"unistore/internal/qgram"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// This file implements the distributed q-gram similarity access path
// (companion paper [6]): string values are indexed under their padded
// q-grams in a dedicated key-space region; a similarity selection
// edist(?v, c) <= k routes one range query per gram of c, count-filters
// the collected candidate values, verifies survivors with the banded
// edit distance, and resolves the matching values with exact A#v
// lookups — touching only O(|c|) regions instead of every peer.

// InsertGrams publishes the q-gram postings for a string-valued triple.
// Call alongside the triple insert when the similarity index is
// enabled; version follows the triple's version. Grams are inserted in
// sorted order so the message sequence (and thus every seeded run) is
// deterministic.
func InsertGrams(p *pgrid.Peer, tr triple.Triple, version uint64) int {
	if tr.Val.Kind != triple.KindString {
		return 0
	}
	set := qgram.GramSet(tr.Val.Str, qgram.Q)
	grams := make([]string, 0, len(set))
	for g := range set {
		grams = append(grams, g)
	}
	sort.Strings(grams)
	for _, g := range grams {
		gt := triple.GramTriple(tr.Attr, g, tr.Val.Str)
		p.InsertEntry(store.Entry{
			Kind:    triple.ByVal,
			Key:     triple.GramKey(tr.Attr, g, tr.Val.Str),
			Triple:  gt,
			Version: version,
		})
	}
	return len(grams)
}

// classifyQGram configures a stage resolving a pattern (?s, attr, ?v)
// under a similarity predicate on ?v via the distributed q-gram index:
// phase one showers one gram-posting range query per gram of the
// target (all must complete before the count filter can prune), phase
// two streams one A#v verification probe per surviving candidate.
func (s *stage) classifyQGram() {
	pat := s.st.Pat
	sim, ok := simFor(s.st)
	if !ok || pat.A.IsVar() {
		// No usable predicate: degrade to the attribute range scan.
		s.mode = modeScan
		s.scanKind = triple.ByAV
		s.scanRange = triple.AVPrefixRange(pat.A.Val.Str)
		return
	}
	grams := qgram.GramSet(sim.Target, qgram.Q)
	if len(grams) == 0 {
		s.mode = modeEmpty
		return
	}
	s.mode = modeQGram
	s.sim = sim
	s.gramList = make([]string, 0, len(grams))
	for g := range grams {
		s.gramList = append(s.gramList, g)
	}
	sort.Strings(s.gramList)
	// The predicate is verified exactly during phase two; drop it from
	// the predicates emit re-checks (it would pass anyway).
	s.predStep.Sims = dropSim(s.st.Sims, pat.V.Var)
}

// openQGram issues the gram-posting range queries.
func (s *stage) openQGram() {
	attr := s.st.Pat.A.Val.Str
	s.gramResults = make([][]store.Entry, len(s.gramList))
	s.gramsLeft = len(s.gramList)
	for i, g := range s.gramList {
		slot, gram := i, g
		s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
			return s.ex.eng.peer.RangeQuery(triple.ByVal, triple.GramRange(attr, gram), false, cb, s.topts()...)
		}, func(res pgrid.OpResult) { s.onGram(slot, res.Entries) })
	}
}

// onGram collects one gram's postings; the last one triggers the
// count-filter + verification phase.
func (s *stage) onGram(slot int, entries []store.Entry) {
	s.gramResults[slot] = entries
	s.gramsLeft--
	if s.gramsLeft > 0 {
		return
	}
	// Count, per candidate value, how many of the target's grams it
	// shares (each slot contributes each value at most once).
	counts := make(map[string]int)
	for _, entries := range s.gramResults {
		seen := map[string]bool{}
		for _, e := range entries {
			val := e.Triple.Val.Str
			if !seen[val] {
				seen[val] = true
				counts[val]++
			}
		}
	}
	s.gramResults = nil
	s.qgramVerify(counts)
}

// qgramVerify count-filters the candidates, verifies exactly, then
// streams A#v probes for the surviving values.
func (s *stage) qgramVerify(counts map[string]int) {
	sim := s.sim
	var candidates []string
	for val, shared := range counts {
		thr := qgram.CountFilterThreshold(len(sim.Target), len(val), qgram.Q, sim.MaxDist)
		if thr > 0 && shared < thr {
			// The distinct-gram count underestimates the true shared
			// multiplicity only when grams repeat; re-check exactly
			// before pruning (soundness over speed).
			if qgram.SharedGrams(sim.Target, val, qgram.Q) < thr {
				continue
			}
		}
		if qgram.WithinDistance(sim.Target, val, sim.MaxDist) {
			candidates = append(candidates, val)
		}
	}
	sort.Strings(candidates)
	s.verified = true
	attr := s.st.Pat.A.Val.Str
	for _, val := range candidates {
		k := triple.AVKey(attr, triple.S(val))
		s.submitOp(func(cb func(pgrid.OpResult)) *pgrid.Handle {
			return s.ex.eng.peer.Lookup(triple.ByAV, k, cb, s.topts()...)
		}, func(res pgrid.OpResult) { s.onEntries(res.Entries) })
	}
}

// simFor extracts the similarity predicate applicable to the step's
// value variable.
func simFor(st Step) (SimSpec, bool) {
	v := st.Pat.V
	if !v.IsVar() {
		return SimSpec{}, false
	}
	for _, s := range st.Sims {
		if s.Var == v.Var {
			return s, true
		}
	}
	return SimSpec{}, false
}

// dropSim removes the (verified) similarity predicate on var v.
func dropSim(sims []SimSpec, v string) []SimSpec {
	out := make([]SimSpec, 0, len(sims))
	for _, s := range sims {
		if s.Var != v {
			out = append(out, s)
		}
	}
	return out
}
