package physical

import (
	"fmt"
	"sync"
	"time"

	"unistore/internal/algebra"
	"unistore/internal/keys"
	"unistore/internal/pgrid"
	"unistore/internal/qgram"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// Reoptimizer lets a plan host revise the remaining steps with its own
// statistics before continuing — the paper's adaptive, repeatedly
// applied optimization. A nil Reoptimizer keeps plans as compiled.
type Reoptimizer interface {
	Rechoose(steps []Step, bindingCount int, peer *pgrid.Peer) []Step
}

// Engine attaches query processing to one peer: it owns the peer's app
// handler, hosts migrated plans, and tracks queries this peer
// originated. An Engine is safe for concurrent use: multiple
// goroutines may Start/Run queries against it in the network's
// concurrent mode.
type Engine struct {
	peer  *pgrid.Peer
	reopt Reoptimizer

	mu      sync.Mutex
	seq     uint64
	queries map[uint64]*Exec

	// probeCap bounds how many distinct bound values a step resolves
	// with parallel exact lookups before falling back to a range scan.
	probeCap int
	// parallelism bounds the in-flight probe/shard window per step:
	// the fan-out pool issues at most this many overlay operations at
	// once, topping the window up as completions arrive. 0 = issue
	// everything at once (full fan-out); 1 = strictly sequential.
	parallelism int
	// rangeShards splits each range scan into this many key-space
	// shards showered independently. 1 = a single shower (default).
	rangeShards int
}

// planMsg carries a mutant plan to its next host.
type planMsg struct {
	Steps    []Step
	Tail     Tail
	Bindings []algebra.Binding
	Origin   simnet.NodeID
	RootQID  uint64
	Hops     int
}

func (m planMsg) WireSize() int {
	s := 64 + len(m.Steps)*48
	for _, b := range m.Bindings {
		s += 24 * len(b)
	}
	return s
}

// resultMsg returns final bindings to the query origin.
type resultMsg struct {
	RootQID  uint64
	Bindings []algebra.Binding
	Hops     int
}

func (m resultMsg) WireSize() int {
	s := 16
	for _, b := range m.Bindings {
		s += 24 * len(b)
	}
	return s
}

// NewEngine wires an engine to a peer, installing the app handler that
// receives mutant plans and results.
func NewEngine(p *pgrid.Peer, reopt Reoptimizer) *Engine {
	e := &Engine{peer: p, reopt: reopt, queries: make(map[uint64]*Exec),
		probeCap: 64, parallelism: 0, rangeShards: 1}
	p.SetAppHandler(e.handleApp)
	return e
}

// Peer returns the engine's peer.
func (e *Engine) Peer() *pgrid.Peer { return e.peer }

// SetParallelism bounds the per-step fan-out window: at most n overlay
// probes (or range shards) in flight at once. n == 0 restores the
// unbounded full fan-out; n == 1 degrades to the strictly sequential
// probe-wait-probe path (the baseline the benchmarks compare against).
func (e *Engine) SetParallelism(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 0 {
		n = 0
	}
	e.parallelism = n
}

// SetRangeShards makes every range scan fan out as n key-space shards
// showered independently (n <= 1 disables sharding).
func (e *Engine) SetRangeShards(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 1 {
		n = 1
	}
	e.rangeShards = n
}

func (e *Engine) window() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallelism
}

func (e *Engine) shards() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rangeShards
}

func (e *Engine) handleApp(_ *pgrid.Peer, payload any, from simnet.NodeID, hops int) {
	switch m := payload.(type) {
	case planMsg:
		// Host a migrated plan: re-optimize the remainder, continue.
		steps := m.Steps
		if e.reopt != nil {
			steps = e.reopt.Rechoose(steps, len(m.Bindings), e.peer)
		}
		ex := &Exec{
			eng: e, steps: steps, tail: m.Tail,
			bindings: m.Bindings, origin: m.Origin, rootQID: m.RootQID,
			started: e.peer.Net().Now(),
			seeded:  true,
			doneCh:  make(chan struct{}),
		}
		ex.run()
	case resultMsg:
		e.mu.Lock()
		ex, ok := e.queries[m.RootQID]
		e.mu.Unlock()
		if !ok || ex.Done() {
			return
		}
		ex.finishWith(m.Bindings)
	}
}

// Exec drives one query (or the hosted remainder of one) at one peer.
//
// The step machinery (bindings, stepIdx) forms a single logical thread
// of control: it runs on the starting goroutine until the first
// overlay operation is issued, then hops to the origin peer's response
// path (the network worker goroutine in concurrent mode). Fields read
// by other goroutines (done, result, counters) are guarded by mu; the
// completion channel orders the final result for waiters.
type Exec struct {
	eng      *Engine
	steps    []Step
	tail     Tail
	bindings []algebra.Binding
	stepIdx  int
	// origin/rootQID route the final result back when this Exec hosts a
	// migrated plan; origin == peer id means this is the root.
	origin  simnet.NodeID
	rootQID uint64
	// seeded marks a hosted plan that arrived with intermediate
	// bindings: its first step joins instead of seeding.
	seeded bool

	mu       sync.Mutex
	started  time.Duration
	finished time.Duration
	done     bool
	result   []algebra.Binding
	onDone   func(*Exec)
	doneCh   chan struct{}

	// Stats (guarded by mu while running; stable once Done).
	opsIssued int
	maxHops   int
}

// Start begins executing a compiled plan at the engine's peer,
// returning the Exec handle. The callback (optional) fires on
// completion; Wait drives the network (deterministic mode) or blocks
// until the responses land (concurrent mode).
func (e *Engine) Start(p *Plan, onDone func(*Exec)) *Exec {
	ex := &Exec{
		eng:    e,
		steps:  p.Steps,
		tail:   p.Tail,
		origin: e.peer.ID(),
		onDone: onDone,
		doneCh: make(chan struct{}),
	}
	e.mu.Lock()
	e.seq++
	ex.rootQID = e.seq
	e.queries[ex.rootQID] = ex
	e.mu.Unlock()
	ex.started = e.peer.Net().Now()
	ex.run()
	return ex
}

// Run compiles and executes a parsed query end to end, driving the
// simulated network until completion; the synchronous entry point.
func (e *Engine) Run(q *vql.Query) ([]algebra.Binding, *Exec, error) {
	plan, err := CompileQuery(q)
	if err != nil {
		return nil, nil, err
	}
	ex := e.Start(plan, nil)
	ex.Wait()
	return ex.Result(), ex, nil
}

// RunPlan executes an already-compiled plan synchronously.
func (e *Engine) RunPlan(p *Plan) ([]algebra.Binding, *Exec) {
	ex := e.Start(p, nil)
	ex.Wait()
	return ex.Result(), ex
}

// waitTimeout bounds a synchronous query in simulated time: generous
// for any experiment topology, yet guaranteeing termination when
// message loss or churn swallows responses while periodic timers keep
// the event queue alive.
const waitTimeout = 5 * time.Minute

// Wait blocks until the query completes. In deterministic mode it
// pumps the network; in concurrent mode it waits on the completion
// signal (the network's own goroutines deliver the responses).
func (ex *Exec) Wait() {
	net := ex.eng.peer.Net()
	if net.Concurrent() {
		select {
		case <-ex.doneCh:
		case <-time.After(net.WallTimeout(waitTimeout)):
		}
		return
	}
	deadline := net.Now() + waitTimeout
	for !ex.Done() && net.Pending() > 0 && net.Now() < deadline {
		net.Step()
	}
}

// Done reports completion.
func (ex *Exec) Done() bool {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.done
}

// Result returns the final bindings (nil until Done).
func (ex *Exec) Result() []algebra.Binding {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.result
}

// Elapsed returns the simulated time the query took.
func (ex *Exec) Elapsed() time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.finished - ex.started
}

// OpsIssued returns the number of overlay operations the query issued.
func (ex *Exec) OpsIssued() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.opsIssued
}

// MaxHops returns the maximum routing distance observed.
func (ex *Exec) MaxHops() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.maxHops
}

// Bindings returns the current intermediate bindings (diagnostics).
func (ex *Exec) Bindings() []algebra.Binding { return ex.bindings }

func (ex *Exec) noteOp() {
	ex.mu.Lock()
	ex.opsIssued++
	ex.mu.Unlock()
}

func (ex *Exec) noteHops(h int) {
	ex.mu.Lock()
	if h > ex.maxHops {
		ex.maxHops = h
	}
	ex.mu.Unlock()
}

func (ex *Exec) run() {
	if ex.stepIdx >= len(ex.steps) {
		ex.complete()
		return
	}
	st := ex.steps[ex.stepIdx]
	if st.Ship && ex.stepIdx > 0 {
		if target, ok := shipTarget(st); ok && !ex.eng.peer.Responsible(target) {
			ex.migrate(target)
			return
		}
	}
	ex.runStep(st)
}

// migrate sends the remaining plan to the peer owning target.
func (ex *Exec) migrate(target keys.Key) {
	m := planMsg{
		Steps:    ex.steps[ex.stepIdx:],
		Tail:     ex.tail,
		Bindings: ex.bindings,
		Origin:   ex.origin,
		RootQID:  ex.rootQID,
	}
	// Shipping must not loop: the receiving host starts at step 0 with
	// Ship cleared on the first step.
	m.Steps = append([]Step(nil), m.Steps...)
	m.Steps[0].Ship = false
	ex.eng.peer.SendApp(target, m)
	// This Exec's role ends here; the result flows to ex.origin.
	if ex.origin == ex.eng.peer.ID() {
		// Root stays registered, waiting for resultMsg.
		return
	}
	ex.markDone()
}

// shipTarget picks the region key the step's data lives at.
func shipTarget(st Step) (keys.Key, bool) {
	pat := st.Pat
	switch st.Strat {
	case StratOIDLookup:
		if !pat.S.IsVar() {
			return triple.OIDKey(pat.S.Val.Str), true
		}
	case StratAVLookup:
		if !pat.A.IsVar() && !pat.V.IsVar() {
			return triple.AVKey(pat.A.Val.Str, pat.V.Val), true
		}
	case StratAVRange, StratQGram:
		if !pat.A.IsVar() {
			return triple.AVPrefixRange(pat.A.Val.Str).Lo, true
		}
	case StratValLookup:
		if !pat.V.IsVar() {
			return triple.ValKey(pat.V.Val), true
		}
	}
	return keys.Key{}, false
}

func (ex *Exec) complete() {
	ex.finishWith(ex.tail.Apply(ex.bindings))
}

// markDone flips the done flag and closes the completion channel once.
func (ex *Exec) markDone() bool {
	ex.mu.Lock()
	if ex.done {
		ex.mu.Unlock()
		return false
	}
	ex.done = true
	close(ex.doneCh)
	ex.mu.Unlock()
	return true
}

func (ex *Exec) finishWith(bs []algebra.Binding) {
	if ex.origin != ex.eng.peer.ID() {
		// Hosted plan: tail already applied here; ship the result home.
		ex.eng.peer.SendAppDirect(ex.origin, resultMsg{RootQID: ex.rootQID, Bindings: bs})
		ex.markDone()
		return
	}
	ex.mu.Lock()
	if ex.done {
		ex.mu.Unlock()
		return
	}
	ex.result = bs
	ex.finished = ex.eng.peer.Net().Now()
	ex.done = true
	close(ex.doneCh)
	onDone := ex.onDone
	ex.mu.Unlock()
	ex.eng.mu.Lock()
	delete(ex.eng.queries, ex.rootQID)
	ex.eng.mu.Unlock()
	if onDone != nil {
		onDone(ex)
	}
}

// --- Step execution ---------------------------------------------------------

// runStep resolves the pattern with the chosen physical operator and
// joins the results into the binding set.
func (ex *Exec) runStep(st Step) {
	pat := st.Pat
	// Runtime grounding: variables bound by earlier steps turn range
	// strategies into (multi-)lookups — the DHT index join.
	boundVals := ex.boundValues(pat)
	switch st.Strat {
	case StratOIDLookup:
		ex.multiLookup(st, triple.ByOID, ex.oidProbes(pat, boundVals))
	case StratAVLookup:
		ex.multiLookup(st, triple.ByAV, ex.avProbes(pat, boundVals))
	case StratValLookup:
		ex.multiLookup(st, triple.ByVal, ex.valProbes(pat, boundVals))
	case StratAVRange:
		if vals, ok := boundVals[varName(pat.V)]; ok && len(vals) <= ex.eng.probeCap {
			// Bound value variable: probe per value instead of scanning.
			ks := make([]keys.Key, 0, len(vals))
			for _, v := range vals {
				ks = append(ks, triple.AVKey(pat.A.Val.Str, v))
			}
			ex.multiLookup(st, triple.ByAV, ks)
			return
		}
		if st.ValuePrefix != "" {
			// Pushed-down startswith: the order-preserving hash makes
			// the matching values a contiguous key interval.
			ex.rangeScan(st, triple.ByAV, triple.AVStringPrefixRange(pat.A.Val.Str, st.ValuePrefix))
			return
		}
		ex.rangeScan(st, triple.ByAV, triple.AVPrefixRange(pat.A.Val.Str))
	case StratBroadcast:
		ex.rangeScan(st, triple.ByOID, keys.Range{})
	case StratQGram:
		ex.qgramStep(st)
	default:
		// Unknown strategy: degrade to broadcast, never wrong.
		ex.rangeScan(st, triple.ByOID, keys.Range{})
	}
}

func varName(t vql.Term) string {
	if t.IsVar() {
		return t.Var
	}
	return ""
}

// boundValues collects, per pattern variable, the distinct values bound
// by the accumulated bindings.
func (ex *Exec) boundValues(pat vql.Pattern) map[string][]triple.Value {
	out := map[string][]triple.Value{}
	if (ex.stepIdx == 0 && !ex.seeded) || len(ex.bindings) == 0 {
		return out
	}
	for _, term := range []vql.Term{pat.S, pat.A, pat.V} {
		if !term.IsVar() {
			continue
		}
		seen := map[string]bool{}
		var vals []triple.Value
		bound := false
		for _, b := range ex.bindings {
			v, ok := b[term.Var]
			if !ok {
				continue
			}
			bound = true
			k := v.Lexical()
			if !seen[k] {
				seen[k] = true
				vals = append(vals, v)
			}
		}
		if bound {
			out[term.Var] = vals
		}
	}
	return out
}

func (ex *Exec) oidProbes(pat vql.Pattern, bound map[string][]triple.Value) []keys.Key {
	if !pat.S.IsVar() {
		return []keys.Key{triple.OIDKey(pat.S.Val.Str)}
	}
	var ks []keys.Key
	for _, v := range bound[pat.S.Var] {
		ks = append(ks, triple.OIDKey(v.Str))
	}
	return ks
}

func (ex *Exec) avProbes(pat vql.Pattern, bound map[string][]triple.Value) []keys.Key {
	attr := pat.A.Val.Str
	if !pat.V.IsVar() {
		return []keys.Key{triple.AVKey(attr, pat.V.Val)}
	}
	var ks []keys.Key
	for _, v := range bound[pat.V.Var] {
		ks = append(ks, triple.AVKey(attr, v))
	}
	return ks
}

func (ex *Exec) valProbes(pat vql.Pattern, bound map[string][]triple.Value) []keys.Key {
	if !pat.V.IsVar() {
		return []keys.Key{triple.ValKey(pat.V.Val)}
	}
	var ks []keys.Key
	for _, v := range bound[pat.V.Var] {
		ks = append(ks, triple.ValKey(v))
	}
	return ks
}

// fanout drives one step's overlay operations through a bounded
// in-flight window: up to `window` probes (or range shards) run at
// once, and each completion tops the window up until every slot has
// resolved. Results land in per-slot order so the merged entry list —
// and therefore the joined bindings — is deterministic regardless of
// response arrival order. A window of 1 is the sequential baseline;
// 0 issues everything at once.
type fanout struct {
	ex     *Exec
	issue  func(slot int, complete func(pgrid.OpResult))
	finish func(results [][]store.Entry)
	nSlots int

	mu      sync.Mutex
	results [][]store.Entry
	next    int // next slot to issue
	done    int // slots completed
}

// runFanout executes nSlots operations with the engine's window and
// calls finish with the per-slot results once all have resolved.
func (ex *Exec) runFanout(nSlots int, issue func(slot int, complete func(pgrid.OpResult)), finish func(results [][]store.Entry)) {
	f := &fanout{ex: ex, issue: issue, finish: finish, nSlots: nSlots,
		results: make([][]store.Entry, nSlots)}
	w := ex.eng.window()
	if w <= 0 || w > nSlots {
		w = nSlots
	}
	f.next = w
	for slot := 0; slot < w; slot++ {
		f.start(slot)
	}
}

// runFanoutJoin is runFanout with the common completion: flatten the
// per-slot results in slot order and join them into the binding set.
func (ex *Exec) runFanoutJoin(st Step, nSlots int, issue func(slot int, complete func(pgrid.OpResult))) {
	ex.runFanout(nSlots, issue, func(results [][]store.Entry) {
		var merged []store.Entry
		for _, r := range results {
			merged = append(merged, r...)
		}
		ex.advance(st, merged)
	})
}

func (f *fanout) start(slot int) {
	f.ex.noteOp()
	f.issue(slot, func(res pgrid.OpResult) { f.complete(slot, res) })
}

func (f *fanout) complete(slot int, res pgrid.OpResult) {
	f.ex.noteHops(res.Hops)
	f.mu.Lock()
	f.results[slot] = res.Entries
	f.done++
	nxt := -1
	if f.next < f.nSlots {
		nxt = f.next
		f.next++
	}
	finished := f.done == f.nSlots
	f.mu.Unlock()
	if nxt >= 0 {
		f.start(nxt)
	}
	if finished {
		f.finish(f.results)
	}
}

// multiLookup fans the probe keys out over the engine's window and
// joins the union of results.
func (ex *Exec) multiLookup(st Step, kind triple.IndexKind, ks []keys.Key) {
	if len(ks) == 0 {
		// No probes derivable (e.g., join variable bound nothing):
		// empty result.
		ex.advance(st, nil)
		return
	}
	ex.runFanoutJoin(st, len(ks), func(slot int, complete func(pgrid.OpResult)) {
		ex.eng.peer.Lookup(kind, ks[slot], complete)
	})
}

// rangeScan showers over a key range — split into the engine's shard
// count and showered independently when sharding is enabled — and
// joins the results.
func (ex *Exec) rangeScan(st Step, kind triple.IndexKind, r keys.Range) {
	shards := []keys.Range{r}
	if n := ex.eng.shards(); n > 1 {
		shards = keys.SplitRange(r, n)
	}
	ex.runFanoutJoin(st, len(shards), func(slot int, complete func(pgrid.OpResult)) {
		ex.eng.peer.RangeQuery(kind, shards[slot], false, complete)
	})
}

// advance joins fetched entries into the binding set, applies the
// step's filters and similarity predicates, and proceeds.
func (ex *Exec) advance(st Step, entries []store.Entry) {
	patBindings := entriesToBindings(st.Pat, entries)
	var joined []algebra.Binding
	if ex.stepIdx == 0 && !ex.seeded {
		joined = patBindings
	} else {
		joined = algebra.HashJoin(ex.bindings, patBindings, st.JoinOn)
	}
	joined = applyStepPredicates(st, joined)
	ex.bindings = joined
	ex.stepIdx++
	ex.run()
}

// applyStepPredicates evaluates the step's filters and similarity
// predicates over a binding set.
func applyStepPredicates(st Step, bs []algebra.Binding) []algebra.Binding {
	if len(st.Filters) == 0 && len(st.Sims) == 0 {
		return bs
	}
	out := bs[:0]
	for _, b := range bs {
		ok := true
		for _, f := range st.Filters {
			if !algebra.EvalExpr(f, b) {
				ok = false
				break
			}
		}
		for _, s := range st.Sims {
			if !ok {
				break
			}
			v, bound := b[s.Var]
			if !bound || !qgram.WithinDistance(v.String(), s.Target, s.MaxDist) {
				ok = false
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// entriesToBindings unifies fetched entries with the pattern,
// deduplicating replica copies of the same fact.
func entriesToBindings(pat vql.Pattern, entries []store.Entry) []algebra.Binding {
	seen := map[string]bool{}
	var out []algebra.Binding
	for _, e := range entries {
		fact := e.Triple.OID + "\x00" + e.Triple.Attr + "\x00" + e.Triple.Val.Lexical()
		if seen[fact] {
			continue
		}
		seen[fact] = true
		if b, ok := algebra.MatchPattern(pat, e.Triple); ok {
			out = append(out, b)
		}
	}
	return out
}

// String renders execution state.
func (ex *Exec) String() string {
	return fmt.Sprintf("exec{step=%d/%d bindings=%d done=%v}",
		ex.stepIdx, len(ex.steps), len(ex.bindings), ex.Done())
}
