package physical

import (
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"unistore/internal/algebra"
	"unistore/internal/keys"
	"unistore/internal/pgrid"
	"unistore/internal/qgram"
	"unistore/internal/simnet"
	"unistore/internal/trace"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// Reoptimizer lets a plan host revise the remaining steps with its own
// statistics before continuing — the paper's adaptive, repeatedly
// applied optimization. The tail travels with the plan so limit-aware
// costing applies at every host. A nil Reoptimizer keeps plans as
// compiled.
type Reoptimizer interface {
	Rechoose(steps []Step, tail Tail, bindingCount int, peer *pgrid.Peer) []Step
}

// hostKey identifies a hosted (migrated) plan globally: the root
// origin plus the root's query id. Different origins allocate query
// ids independently, so the pair is the unit of uniqueness.
type hostKey struct {
	origin simnet.NodeID
	qid    uint64
}

// Engine attaches query processing to one peer: it owns the peer's app
// handler, hosts migrated plans, and tracks queries this peer
// originated. An Engine is safe for concurrent use: multiple
// goroutines may Start/Run/Open queries against it in the network's
// concurrent mode.
type Engine struct {
	peer  *pgrid.Peer
	reopt Reoptimizer

	mu      sync.Mutex
	seq     uint64
	queries map[uint64]*Exec
	// hosted tracks migrated plans this engine is executing (or has
	// re-shipped onward), so a cancelMsg from the origin can stop them
	// — or chase them one hop further.
	hosted map[hostKey]*Exec
	// canceledHosts tombstones cancellations that arrived before their
	// planMsg (both are routed independently); the plan is dropped on
	// arrival instead of executed. Values are the simulated creation
	// instant: tombstones whose plan never shows up (a cancel that
	// lost the race with normal completion, a lost planMsg) are pruned
	// after hostedForwardTTL so benign races cannot fill the table.
	canceledHosts map[hostKey]time.Duration

	// probeCap bounds how many distinct bound values a range-strategy
	// step resolves with streaming exact lookups before escalating to a
	// range scan.
	probeCap int
	// parallelism bounds the per-query in-flight window: the pipeline
	// issues at most this many overlay operations at once across all
	// its stages, topping the window up as completions arrive. 0 =
	// issue everything as soon as it is derivable (full fan-out);
	// 1 = strictly sequential.
	parallelism int
	// rangeShards splits each range scan into this many key-space
	// shards showered independently. 1 = a single shower (default).
	rangeShards int
	// materializeTail forces every tail into the blocking (collect
	// everything, then sort/limit/project) discipline — the
	// pre-streaming behaviour, kept as the benchmarks' baseline.
	materializeTail bool
}

// planMsg carries a mutant plan to its next host. TC is the trace
// context the hosted remainder continues under (zero when the query is
// untraced); Spans accumulates the spans of hosts earlier in the
// migration chain, so the final host ships the complete set home.
type planMsg struct {
	Steps    []Step
	Tail     Tail
	Bindings []algebra.Binding
	Origin   simnet.NodeID
	RootQID  uint64
	Hops     int
	TC       trace.Ctx
	Spans    []trace.Span
}

func (m planMsg) WireSize() int {
	s := 64 + len(m.Steps)*48
	for _, b := range m.Bindings {
		s += 24 * len(b)
	}
	s += m.TC.WireSize()
	for _, sp := range m.Spans {
		s += spanWireSize(sp)
	}
	return s
}

// spanWireSize estimates one full span's encoded size in an app
// payload (ids, counters and timestamps at varint-ish cost, plus the
// packed path and the stage label).
func spanWireSize(sp trace.Span) int {
	return 56 + len(sp.Path)/8 + len(sp.Stage) + len(sp.Kind)
}

// resultMsg returns final bindings to the query origin, carrying the
// hosted remainder's spans home when the query is traced.
type resultMsg struct {
	RootQID  uint64
	Bindings []algebra.Binding
	Hops     int
	Spans    []trace.Span
}

func (m resultMsg) WireSize() int {
	s := 16
	for _, b := range m.Bindings {
		s += 24 * len(b)
	}
	for _, sp := range m.Spans {
		s += spanWireSize(sp)
	}
	return s
}

// cancelMsg chases a migrated plan: the origin (or an intermediate
// host forwarding along the migration chain) tells the current host to
// stop executing the remainder and release its pending overlay
// operations. TC ties the cancellation to the query's trace.
type cancelMsg struct {
	Origin  simnet.NodeID
	RootQID uint64
	TC      trace.Ctx
}

func (m cancelMsg) WireSize() int { return 16 + m.TC.WireSize() }

func init() {
	// Register the application payloads (and the interface-typed AST
	// nodes they embed in Step.Filters) with the wire codec, so mutant
	// plans survive real transports the same way they cross the simnet.
	gob.Register(planMsg{})
	gob.Register(resultMsg{})
	gob.Register(cancelMsg{})
	gob.Register(vql.Cmp{})
	gob.Register(vql.And{})
	gob.Register(vql.Or{})
	gob.Register(vql.Not{})
	gob.Register(vql.BoolFunc{})
	gob.Register(vql.VarOperand{})
	gob.Register(vql.LitOperand{})
	gob.Register(vql.FuncOperand{})
}

// NewEngine wires an engine to a peer, installing the app handler that
// receives mutant plans and results.
func NewEngine(p *pgrid.Peer, reopt Reoptimizer) *Engine {
	e := &Engine{peer: p, reopt: reopt, queries: make(map[uint64]*Exec),
		hosted: make(map[hostKey]*Exec), canceledHosts: make(map[hostKey]time.Duration),
		probeCap: 64, parallelism: 0, rangeShards: 1}
	p.SetAppHandler(e.handleApp)
	return e
}

// Peer returns the engine's peer.
func (e *Engine) Peer() *pgrid.Peer { return e.peer }

// SetParallelism bounds the per-query fan-out window: at most n
// overlay operations (probes, range shards, gram queries) in flight at
// once across the whole pipeline. n == 0 restores the unbounded full
// fan-out; n == 1 degrades to the strictly sequential
// probe-wait-probe path (the baseline the benchmarks compare against).
func (e *Engine) SetParallelism(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 0 {
		n = 0
	}
	e.parallelism = n
}

// SetRangeShards makes every range scan fan out as n key-space shards
// showered independently (n <= 1 disables sharding). Sharding is also
// what gives top-k queries something to skip: an early-out cancels the
// shards not yet issued.
func (e *Engine) SetRangeShards(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 1 {
		n = 1
	}
	e.rangeShards = n
}

// SetMaterializeTail disables LIMIT/top-k early termination: every
// operator runs to completion and the tail applies once, as the
// materializing executor did. The before/after benchmarks use this as
// their baseline; production paths leave it off.
func (e *Engine) SetMaterializeTail(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materializeTail = on
}

func (e *Engine) materialized() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.materializeTail
}

func (e *Engine) window() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallelism
}

func (e *Engine) shards() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rangeShards
}

func (e *Engine) handleApp(_ *pgrid.Peer, payload any, from simnet.NodeID, hops int) {
	switch m := payload.(type) {
	case planMsg:
		// Host a migrated plan: re-optimize the remainder, continue.
		key := hostKey{m.Origin, m.RootQID}
		steps := m.Steps
		if e.reopt != nil {
			steps = e.reopt.Rechoose(steps, m.Tail, len(m.Bindings), e.peer)
		}
		ex := &Exec{
			eng: e, steps: steps, tail: m.Tail,
			seeded: true, seedRows: m.Bindings,
			origin: m.Origin, rootQID: m.RootQID,
			ctx:     context.Background(),
			started: e.peer.Net().Now(),
			doneCh:  make(chan struct{}),
		}
		if m.TC.Active() && e.peer.TracingEnabled() {
			// The hosted remainder continues the origin's trace: a
			// "plan" span roots this host's work, charged the plan
			// message's own delivery cost.
			now := int64(e.peer.Net().Now())
			id := e.peer.NewTraceID()
			ex.rootSpan = trace.Span{
				ID: id, Parent: m.TC.Parent, TraceID: m.TC.TraceID,
				Kind: "plan", Peer: int64(e.peer.ID()), Path: e.peer.Path().String(),
				Flags: m.TC.Flags, Depth: m.TC.Depth,
				MsgsIn: hops, BytesIn: hops * m.WireSize(),
				Enq: now, Srv: now,
			}
			ex.tc = m.TC.Child(id)
			ex.remote = m.Spans
		}
		e.mu.Lock()
		if _, canceled := e.canceledHosts[key]; canceled {
			// The cancel overtook the plan: never start it.
			delete(e.canceledHosts, key)
			e.mu.Unlock()
			return
		}
		e.sweepHostedLocked()
		e.hosted[key] = ex
		e.mu.Unlock()
		ex.pmu.Lock()
		ex.startPipeline()
		ex.pmu.Unlock()
	case resultMsg:
		e.mu.Lock()
		ex, ok := e.queries[m.RootQID]
		e.mu.Unlock()
		if !ok || ex.Done() {
			return
		}
		if len(m.Spans) > 0 {
			// The first span is the hosting chain's root; charge the
			// result message's own delivery to it so the assembled
			// trace keeps reconciling with the transport counters.
			sp := append([]trace.Span(nil), m.Spans...)
			mh := hops
			if mh < 1 {
				mh = 1
			}
			sp[0].MsgsOut += mh
			sp[0].BytesOut += mh * m.WireSize()
			ex.mu.Lock()
			ex.remote = append(ex.remote, sp...)
			ex.mu.Unlock()
		}
		ex.finishWith(m.Bindings)
	case cancelMsg:
		key := hostKey{m.Origin, m.RootQID}
		now := e.peer.Net().Now()
		e.mu.Lock()
		ex, ok := e.hosted[key]
		if !ok {
			// Plan not here (yet): tombstone so a late arrival is
			// dropped instead of executed. At the cap, the OLDEST
			// tombstone gives way — dropping the new one would let the
			// one plan we know was just canceled run to completion.
			e.pruneTombstonesLocked(now)
			if len(e.canceledHosts) >= maxCancelTombstones {
				oldest, oldestBorn := hostKey{}, now+1
				for k, born := range e.canceledHosts {
					if born < oldestBorn {
						oldest, oldestBorn = k, born
					}
				}
				delete(e.canceledHosts, oldest)
			}
			e.canceledHosts[key] = now
			e.mu.Unlock()
			return
		}
		delete(e.hosted, key)
		e.mu.Unlock()
		if target, forward := ex.cancelHosted(); forward {
			// The plan moved on before the cancel caught up: chase it.
			e.peer.SendApp(target, m)
		}
	}
}

// maxCancelTombstones bounds the canceled-before-arrival memory
// between prunes.
const maxCancelTombstones = 1024

// hostedForwardTTL is how long (simulated) completed bookkeeping is
// kept for cancel handling: re-shipped hosted entries (needed to
// forward a cancel along the migration chain) and tombstones (needed
// to drop a plan the cancel overtook). Past the overlay's operation
// deadline the origin has long given up, so chasing is pointless.
const hostedForwardTTL = 2 * time.Minute

// pruneTombstonesLocked drops tombstones older than the TTL — the
// cancels that lost a benign race with normal completion and whose
// planMsg will therefore never arrive. Callers hold e.mu.
func (e *Engine) pruneTombstonesLocked(now time.Duration) {
	for k, born := range e.canceledHosts {
		if now-born > hostedForwardTTL {
			delete(e.canceledHosts, k)
		}
	}
}

// sweepHostedLocked drops completed hosted plans once they both
// accumulate and age out. Entries that re-shipped onward stay until
// the TTL because they are what forwards a late cancel along the
// migration chain; sweeping them early would quietly reintroduce
// run-to-completion remainders. Callers hold e.mu.
func (e *Engine) sweepHostedLocked() {
	if len(e.hosted) < 64 {
		return
	}
	now := e.peer.Net().Now()
	for k, ex := range e.hosted {
		if ex.Done() && now-ex.startedAt() > hostedForwardTTL {
			delete(e.hosted, k)
		}
	}
}

// dropHosted removes a hosted plan's registration once it completed,
// guarding on identity so a plan re-registered under the same key is
// untouched.
func (e *Engine) dropHosted(key hostKey, ex *Exec) {
	e.mu.Lock()
	if e.hosted[key] == ex {
		delete(e.hosted, key)
	}
	e.mu.Unlock()
}

// HostedPlans reports how many migrated plans this engine currently
// tracks (running, or re-shipped and awaiting potential cancels) —
// leak detection in tests.
func (e *Engine) HostedPlans() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, ex := range e.hosted {
		if !ex.Done() {
			n++
		}
	}
	return n
}

// Exec drives one query (or the hosted remainder of one) at one peer.
//
// Execution is a streaming pipeline: one stage per plan step, results
// flowing between stages as soon as overlay responses arrive, all
// overlay operations scheduled through a single bounded in-flight
// window, and the tail sink stopping the whole pipeline the moment a
// LIMIT or top-k bound proves no further traffic can change the
// result. Pipeline state is guarded by pmu and mutated only through
// the window's completion path; externally visible state (done,
// result, counters) is guarded by mu, with the completion channel
// ordering the final result for waiters.
type Exec struct {
	eng      *Engine
	steps    []Step
	tail     Tail
	origin   simnet.NodeID
	rootQID  uint64
	seeded   bool
	seedRows []algebra.Binding
	ctx      context.Context

	// Pipeline state (guarded by pmu).
	pmu    sync.Mutex
	win    *opWindow
	stages []*stage
	sink   *tailSink
	// agg is the aggregation coordinator (nil for non-aggregating
	// tails): merges pushed-down partial states or folds centralized
	// rows, then finalizes groups through the sink.
	agg      *aggRun
	stopped  bool
	migrated bool
	// migratedTo is the region key the plan was shipped to — where a
	// cancel must be sent to stop the hosted remainder.
	migratedTo keys.Key

	mu       sync.Mutex
	started  time.Duration
	finished time.Duration
	first    time.Duration
	done     bool
	result   []algebra.Binding
	onDone   func(*Exec)
	doneCh   chan struct{}
	cursor   *Cursor

	// Stats (guarded by mu while running; stable once Done).
	opsIssued int
	maxHops   int

	// Tracing. tc and rootSpan are set at creation and immutable; the
	// zero tc means the query is untraced and every tracing path is a
	// no-op. tqids and remote are guarded by mu; drained only mutates
	// under pmu (span collection).
	tc       trace.Ctx
	rootSpan trace.Span
	tqids    []uint64
	remote   []trace.Span
	drained  []trace.Span
}

// Start begins executing a compiled plan at the engine's peer,
// returning the Exec handle. The callback (optional) fires on
// completion; Wait drives the network (deterministic mode) or blocks
// until the responses land (concurrent mode).
func (e *Engine) Start(p *Plan, onDone func(*Exec)) *Exec {
	return e.StartCtx(context.Background(), p, onDone)
}

// StartCtx is Start with a cancellation context: canceling ctx stops
// the pipeline, cancels the query's pending overlay operations and
// completes the Exec with whatever rows had been produced.
func (e *Engine) StartCtx(ctx context.Context, p *Plan, onDone func(*Exec)) *Exec {
	ex := e.newExec(ctx, p, onDone)
	ex.pmu.Lock()
	ex.startPipeline()
	ex.pmu.Unlock()
	return ex
}

// Open starts a plan and returns a pull cursor over its result
// stream — the Volcano-style Open half of the Open/Next/Close
// contract; the cursor's Next and Close complete it. Rows become
// available as the pipeline emits them, before the query finishes.
func (e *Engine) Open(ctx context.Context, p *Plan) *Cursor {
	ex := e.newExec(ctx, p, nil)
	cur := newCursor(ex)
	ex.cursor = cur
	ex.pmu.Lock()
	ex.startPipeline()
	ex.pmu.Unlock()
	return cur
}

func (e *Engine) newExec(ctx context.Context, p *Plan, onDone func(*Exec)) *Exec {
	if ctx == nil {
		ctx = context.Background()
	}
	ex := &Exec{
		eng:    e,
		steps:  p.Steps,
		tail:   p.Tail,
		origin: e.peer.ID(),
		ctx:    ctx,
		onDone: onDone,
		doneCh: make(chan struct{}),
	}
	e.mu.Lock()
	e.seq++
	ex.rootQID = e.seq
	e.queries[ex.rootQID] = ex
	e.mu.Unlock()
	ex.started = e.peer.Net().Now()
	if e.peer.TracingEnabled() {
		now := int64(ex.started)
		ex.rootSpan = trace.Span{
			ID: e.peer.NewTraceID(), TraceID: e.peer.NewTraceID(),
			Kind: "query", Peer: int64(e.peer.ID()), Path: e.peer.Path().String(),
			Enq: now, Srv: now,
		}
		ex.tc = trace.Ctx{TraceID: ex.rootSpan.TraceID, Parent: ex.rootSpan.ID, Depth: 1}
	}
	return ex
}

// Run compiles and executes a parsed query end to end, driving the
// simulated network until completion; the synchronous entry point.
func (e *Engine) Run(q *vql.Query) ([]algebra.Binding, *Exec, error) {
	plan, err := CompileQuery(q)
	if err != nil {
		return nil, nil, err
	}
	ex := e.Start(plan, nil)
	ex.Wait()
	return ex.Result(), ex, nil
}

// RunPlan executes an already-compiled plan synchronously.
func (e *Engine) RunPlan(p *Plan) ([]algebra.Binding, *Exec) {
	return e.RunPlanCtx(context.Background(), p)
}

// RunPlanCtx executes a compiled plan synchronously under a
// cancellation context.
func (e *Engine) RunPlanCtx(ctx context.Context, p *Plan) ([]algebra.Binding, *Exec) {
	ex := e.StartCtx(ctx, p, nil)
	ex.Wait()
	return ex.Result(), ex
}

// waitTimeout bounds a synchronous query in simulated time: generous
// for any experiment topology, yet guaranteeing termination when
// message loss or churn swallows responses while periodic timers keep
// the event queue alive.
const waitTimeout = 5 * time.Minute

// Wait blocks until the query completes. In deterministic mode it
// pumps the network; in concurrent mode it waits on the completion
// signal (the network's own goroutines deliver the responses). A
// canceled context terminates the query early with partial results.
func (ex *Exec) Wait() {
	net := ex.eng.peer.Net()
	d := pgrid.DriverOf(net)
	if d == nil {
		select {
		case <-ex.doneCh:
		case <-ex.ctx.Done():
			ex.Cancel()
			<-ex.doneCh
		case <-time.After(net.WallTimeout(waitTimeout)):
		}
		return
	}
	deadline := net.Now() + waitTimeout
	for !ex.Done() && d.Pending() > 0 && net.Now() < deadline {
		if ex.ctx.Err() != nil {
			ex.Cancel()
			return
		}
		d.Step()
	}
}

// Done reports completion.
func (ex *Exec) Done() bool {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.done
}

// Result returns the final bindings (nil until Done).
func (ex *Exec) Result() []algebra.Binding {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.result
}

// Elapsed returns the simulated time the query took.
func (ex *Exec) Elapsed() time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.finished - ex.started
}

// TimeToFirst returns the simulated time until the first result row
// was available: for streaming tails the instant the first row left
// the pipeline, for blocking tails (skyline, full sorts) the
// completion instant.
func (ex *Exec) TimeToFirst() time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.first > 0 {
		return ex.first - ex.started
	}
	return ex.finished - ex.started
}

// OpsIssued returns the number of overlay operations the query issued.
func (ex *Exec) OpsIssued() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.opsIssued
}

// MaxHops returns the maximum routing distance observed.
func (ex *Exec) MaxHops() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.maxHops
}

// Bindings returns the rows the tail sink has accumulated so far
// (diagnostics; the final result once Done). The completed path reads
// only the result, so completion callbacks may call it safely.
func (ex *Exec) Bindings() []algebra.Binding {
	ex.mu.Lock()
	if ex.done {
		defer ex.mu.Unlock()
		return ex.result
	}
	ex.mu.Unlock()
	ex.pmu.Lock()
	defer ex.pmu.Unlock()
	if ex.sink == nil {
		return nil
	}
	return ex.sink.rows
}

func (ex *Exec) noteOp() {
	ex.mu.Lock()
	ex.opsIssued++
	ex.mu.Unlock()
}

func (ex *Exec) noteHops(h int) {
	ex.mu.Lock()
	if h > ex.maxHops {
		ex.maxHops = h
	}
	ex.mu.Unlock()
}

func (ex *Exec) noteFirstResult() {
	now := ex.eng.peer.Net().Now()
	ex.mu.Lock()
	if ex.first == 0 {
		ex.first = now
	}
	ex.mu.Unlock()
}

// --- Pipeline lifecycle -------------------------------------------------------

// startPipeline builds and opens the stage pipeline. Callers hold pmu.
func (ex *Exec) startPipeline() {
	ex.win = newOpWindow(ex, ex.eng.window())
	if ex.tail.HasAgg() {
		// The pushdown choice made at compile time is re-validated
		// against this execution: a hosted remainder (seeded rows) or a
		// reordered plan that no longer qualifies falls back to the
		// centralized path, never to a wrong answer.
		push := ex.tail.AggPushdown && !ex.seeded && aggPushdownable(ex.steps, ex.tail)
		ex.agg = newAggRun(ex, push)
	}
	ex.sink = newTailSink(ex)
	if ex.agg != nil {
		ex.agg.configureStream(ex.sink)
	}
	if ex.ctx.Err() != nil {
		// Canceled before the first operation: keep the promise that
		// nothing is sent on behalf of a dead query.
		ex.stopped = true
		ex.finishPipeline(nil)
		return
	}
	if len(ex.steps) == 0 {
		if ex.agg != nil {
			ex.agg.started = true
			ex.agg.addRows(ex.seedRows)
			ex.finishPipeline(nil)
			return
		}
		ex.finishPipeline(ex.seedRows)
		return
	}
	for i, st := range ex.steps {
		ex.stages = append(ex.stages, newStage(ex, i, st))
	}
	if ex.sink.mode == sinkRank {
		last := ex.stages[len(ex.stages)-1]
		last.rank = true
		last.rankDesc = ex.tail.OrderBy[0].Desc
	}
	for _, s := range ex.stages {
		s.classify()
	}
	if ex.agg != nil && ex.agg.pushdown {
		ex.stages[0].aggPush = true
	}
	ex.openFrom(0)
	s0 := ex.stages[0]
	if s0.hasUp && len(ex.seedRows) > 0 {
		s0.addLeft(ex.seedRows)
	}
	s0.upstreamEOS()
}

// openFrom opens stages i.. in order, halting before a barrier stage
// whose upstream is still flowing (it opens itself at upstream EOS —
// or migrates instead).
func (ex *Exec) openFrom(i int) {
	for j := i; j < len(ex.stages); j++ {
		s := ex.stages[j]
		if s.barrier() && !s.upDone {
			return
		}
		s.open()
	}
}

// migrateFrom sends the remaining plan (steps idx..) with the
// materialized upstream rows to the peer owning the next region.
// Callers hold pmu.
func (ex *Exec) migrateFrom(idx int) {
	s := ex.stages[idx]
	target, _ := shipTarget(s.st)
	// Shipping must not loop: the receiving host starts at step 0 with
	// Ship cleared on the first step.
	steps := append([]Step(nil), ex.steps[idx:]...)
	steps[0].Ship = false
	m := planMsg{
		Steps:    steps,
		Tail:     ex.tail,
		Bindings: s.join.LeftRows(),
		Origin:   ex.origin,
		RootQID:  ex.rootQID,
	}
	if ex.tc.Active() {
		// The remainder's host roots its work under the migrating
		// stage's span; spans produced here travel along so the final
		// host can ship the whole chain home.
		m.TC = trace.Ctx{TraceID: ex.tc.TraceID, Parent: s.spanID, Depth: ex.tc.Depth + 1}
		m.Spans = ex.collectSpansLocked()
	}
	ex.migrated = true
	ex.migratedTo = target
	ex.win.close()
	ex.eng.peer.SendApp(target, m)
	// This Exec's role ends here; the result flows to ex.origin.
	if ex.origin == ex.eng.peer.ID() {
		// Root stays registered, waiting for resultMsg.
		return
	}
	ex.markDone()
}

// earlyOut stops the pipeline once the sink has proven the result
// cannot improve: queued operations are dropped, in-flight ones
// canceled, and the query completes with the rows at hand. Callers
// hold pmu.
func (ex *Exec) earlyOut() {
	if ex.stopped {
		return
	}
	ex.stopped = true
	ex.win.close()
	ex.finishPipeline(ex.sink.rows)
}

// finishPipeline normalizes the accumulated rows through the tail and
// completes the query. Callers hold pmu. With an aggregation the sink
// delivered finalized GROUP rows (plus whatever groups a cancel left
// unflushed), so only the post-aggregation clauses re-apply —
// re-aggregating group rows would count groups instead of rows.
func (ex *Exec) finishPipeline(rows []algebra.Binding) {
	ex.win.close()
	if ex.agg != nil {
		ex.finishWith(ex.tail.post(ex.agg.drainInto(rows)))
		return
	}
	ex.finishWith(ex.tail.Apply(rows))
}

// Cancel terminates the query early: the pipeline stops, queued
// operations are dropped, pending overlay operations are canceled at
// the peer, and the Exec completes with the rows produced so far. If
// the plan migrated, a cancel message chases it to the hosting peer
// (and onward along any further migrations) so the remote remainder
// stops too instead of running to completion. Canceling a completed
// query is a no-op.
func (ex *Exec) Cancel() {
	ex.pmu.Lock()
	defer ex.pmu.Unlock()
	if ex.Done() {
		return
	}
	if ex.migrated {
		// The plan is executing elsewhere: tell the host to stop, then
		// release the local waiter.
		ex.eng.peer.SendApp(ex.migratedTo, cancelMsg{Origin: ex.origin, RootQID: ex.rootQID, TC: ex.tc})
		ex.finishWith(nil)
		return
	}
	if ex.stopped {
		return
	}
	ex.stopped = true
	ex.win.close()
	var rows []algebra.Binding
	if ex.sink != nil {
		rows = ex.sink.rows
	}
	ex.finishPipeline(rows)
}

// shipTarget picks the region key the step's data lives at.
func shipTarget(st Step) (keys.Key, bool) {
	pat := st.Pat
	switch st.Strat {
	case StratOIDLookup:
		if !pat.S.IsVar() {
			return triple.OIDKey(pat.S.Val.Str), true
		}
	case StratAVLookup:
		if !pat.A.IsVar() && !pat.V.IsVar() {
			return triple.AVKey(pat.A.Val.Str, pat.V.Val), true
		}
	case StratAVRange, StratQGram:
		if !pat.A.IsVar() {
			return triple.AVPrefixRange(pat.A.Val.Str).Lo, true
		}
	case StratValLookup:
		if !pat.V.IsVar() {
			return triple.ValKey(pat.V.Val), true
		}
	}
	return keys.Key{}, false
}

// cancelHosted stops a hosted (migrated-in) plan without shipping any
// result home: the pipeline halts, queued operations are dropped and
// pending overlay operations released. If this host already re-shipped
// the plan onward, it reports the next region so the caller can
// forward the cancel along the chain.
func (ex *Exec) cancelHosted() (next keys.Key, forward bool) {
	ex.pmu.Lock()
	defer ex.pmu.Unlock()
	if ex.migrated {
		return ex.migratedTo, true
	}
	if ex.Done() {
		return keys.Key{}, false
	}
	ex.stopped = true
	ex.win.close()
	ex.markDone()
	return keys.Key{}, false
}

// startedAt returns the simulated instant the Exec was created.
func (ex *Exec) startedAt() time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.started
}

// Migrated reports whether this Exec shipped its plan to another peer
// (tests synchronize on the migration instant through it).
func (ex *Exec) Migrated() bool {
	ex.pmu.Lock()
	defer ex.pmu.Unlock()
	return ex.migrated
}

// markDone flips the done flag and closes the completion channel once.
func (ex *Exec) markDone() bool {
	ex.mu.Lock()
	if ex.done {
		ex.mu.Unlock()
		return false
	}
	ex.done = true
	close(ex.doneCh)
	ex.mu.Unlock()
	return true
}

func (ex *Exec) finishWith(bs []algebra.Binding) {
	if ex.origin != ex.eng.peer.ID() {
		// Hosted plan: tail already applied here; ship the result home
		// with the migration chain's spans (every caller reaching this
		// branch holds pmu, which span collection requires).
		msg := resultMsg{RootQID: ex.rootQID, Bindings: bs}
		if ex.tc.Active() {
			msg.Spans = ex.collectSpansLocked()
		}
		ex.eng.peer.SendAppDirect(ex.origin, msg)
		ex.markDone()
		ex.eng.dropHosted(hostKey{ex.origin, ex.rootQID}, ex)
		return
	}
	ex.mu.Lock()
	if ex.done {
		ex.mu.Unlock()
		return
	}
	ex.result = bs
	ex.finished = ex.eng.peer.Net().Now()
	ex.done = true
	close(ex.doneCh)
	onDone := ex.onDone
	cur := ex.cursor
	ex.mu.Unlock()
	ex.eng.mu.Lock()
	delete(ex.eng.queries, ex.rootQID)
	ex.eng.mu.Unlock()
	if cur != nil {
		cur.finish(bs)
	}
	if onDone != nil {
		onDone(ex)
	}
}

// applyStepPredicates evaluates the step's filters and similarity
// predicates over a binding set (in place; the input must be freshly
// allocated by the caller).
func applyStepPredicates(st Step, bs []algebra.Binding) []algebra.Binding {
	if len(st.Filters) == 0 && len(st.Sims) == 0 {
		return bs
	}
	out := bs[:0]
	for _, b := range bs {
		ok := true
		for _, f := range st.Filters {
			if !algebra.EvalExpr(f, b) {
				ok = false
				break
			}
		}
		for _, s := range st.Sims {
			if !ok {
				break
			}
			v, bound := b[s.Var]
			if !bound || !qgram.WithinDistance(v.String(), s.Target, s.MaxDist) {
				ok = false
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// String renders execution state.
func (ex *Exec) String() string {
	ex.pmu.Lock()
	stages := len(ex.stages)
	var eos int
	for _, s := range ex.stages {
		if s.eosDown {
			eos++
		}
	}
	ex.pmu.Unlock()
	return fmt.Sprintf("exec{stages=%d/%d done=%v}", eos, stages, ex.Done())
}
