package physical

import (
	"fmt"
	"time"

	"unistore/internal/algebra"
	"unistore/internal/keys"
	"unistore/internal/pgrid"
	"unistore/internal/qgram"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// Reoptimizer lets a plan host revise the remaining steps with its own
// statistics before continuing — the paper's adaptive, repeatedly
// applied optimization. A nil Reoptimizer keeps plans as compiled.
type Reoptimizer interface {
	Rechoose(steps []Step, bindingCount int, peer *pgrid.Peer) []Step
}

// Engine attaches query processing to one peer: it owns the peer's app
// handler, hosts migrated plans, and tracks queries this peer
// originated.
type Engine struct {
	peer    *pgrid.Peer
	reopt   Reoptimizer
	seq     uint64
	queries map[uint64]*Exec
	// probeCap bounds how many distinct bound values a step resolves
	// with parallel exact lookups before falling back to a range scan.
	probeCap int
}

// planMsg carries a mutant plan to its next host.
type planMsg struct {
	Steps    []Step
	Tail     Tail
	Bindings []algebra.Binding
	Origin   simnet.NodeID
	RootQID  uint64
	Hops     int
}

func (m planMsg) WireSize() int {
	s := 64 + len(m.Steps)*48
	for _, b := range m.Bindings {
		s += 24 * len(b)
	}
	return s
}

// resultMsg returns final bindings to the query origin.
type resultMsg struct {
	RootQID  uint64
	Bindings []algebra.Binding
	Hops     int
}

func (m resultMsg) WireSize() int {
	s := 16
	for _, b := range m.Bindings {
		s += 24 * len(b)
	}
	return s
}

// NewEngine wires an engine to a peer, installing the app handler that
// receives mutant plans and results.
func NewEngine(p *pgrid.Peer, reopt Reoptimizer) *Engine {
	e := &Engine{peer: p, reopt: reopt, queries: make(map[uint64]*Exec), probeCap: 64}
	p.SetAppHandler(e.handleApp)
	return e
}

// Peer returns the engine's peer.
func (e *Engine) Peer() *pgrid.Peer { return e.peer }

func (e *Engine) handleApp(_ *pgrid.Peer, payload any, from simnet.NodeID, hops int) {
	switch m := payload.(type) {
	case planMsg:
		// Host a migrated plan: re-optimize the remainder, continue.
		steps := m.Steps
		if e.reopt != nil {
			steps = e.reopt.Rechoose(steps, len(m.Bindings), e.peer)
		}
		ex := &Exec{
			eng: e, steps: steps, tail: m.Tail,
			bindings: m.Bindings, origin: m.Origin, rootQID: m.RootQID,
			started: e.peer.Net().Now(),
			seeded:  true,
		}
		ex.run()
	case resultMsg:
		ex, ok := e.queries[m.RootQID]
		if !ok || ex.done {
			return
		}
		ex.finishWith(m.Bindings)
	}
}

// Exec drives one query (or the hosted remainder of one) at one peer.
type Exec struct {
	eng      *Engine
	steps    []Step
	tail     Tail
	bindings []algebra.Binding
	stepIdx  int
	// origin/rootQID route the final result back when this Exec hosts a
	// migrated plan; origin == peer id means this is the root.
	origin  simnet.NodeID
	rootQID uint64
	// seeded marks a hosted plan that arrived with intermediate
	// bindings: its first step joins instead of seeding.
	seeded bool

	started  time.Duration
	finished time.Duration
	done     bool
	result   []algebra.Binding
	onDone   func(*Exec)

	// Stats.
	OpsIssued int
	MaxHops   int
}

// Start begins executing a compiled plan at the engine's peer,
// returning the Exec handle. The callback (optional) fires on
// completion; Wait drives the network synchronously.
func (e *Engine) Start(p *Plan, onDone func(*Exec)) *Exec {
	e.seq++
	ex := &Exec{
		eng:     e,
		steps:   p.Steps,
		tail:    p.Tail,
		origin:  e.peer.ID(),
		rootQID: e.seq,
		started: e.peer.Net().Now(),
		onDone:  onDone,
	}
	e.queries[ex.rootQID] = ex
	ex.run()
	return ex
}

// Run compiles and executes a parsed query end to end, driving the
// simulated network until completion; the synchronous entry point.
func (e *Engine) Run(q *vql.Query) ([]algebra.Binding, *Exec, error) {
	plan, err := CompileQuery(q)
	if err != nil {
		return nil, nil, err
	}
	ex := e.Start(plan, nil)
	ex.Wait()
	return ex.result, ex, nil
}

// RunPlan executes an already-compiled plan synchronously.
func (e *Engine) RunPlan(p *Plan) ([]algebra.Binding, *Exec) {
	ex := e.Start(p, nil)
	ex.Wait()
	return ex.result, ex
}

// waitTimeout bounds a synchronous query in simulated time: generous
// for any experiment topology, yet guaranteeing termination when
// message loss or churn swallows responses while periodic timers keep
// the event queue alive.
const waitTimeout = 5 * time.Minute

// Wait pumps the network until the query completes, the event queue
// drains, or the simulated-time deadline passes.
func (ex *Exec) Wait() {
	net := ex.eng.peer.Net()
	deadline := net.Now() + waitTimeout
	for !ex.done && net.Pending() > 0 && net.Now() < deadline {
		net.Step()
	}
}

// Done reports completion; Result returns the final bindings.
func (ex *Exec) Done() bool                  { return ex.done }
func (ex *Exec) Result() []algebra.Binding   { return ex.result }
func (ex *Exec) Elapsed() time.Duration      { return ex.finished - ex.started }
func (ex *Exec) Bindings() []algebra.Binding { return ex.bindings }

func (ex *Exec) run() {
	if ex.stepIdx >= len(ex.steps) {
		ex.complete()
		return
	}
	st := ex.steps[ex.stepIdx]
	if st.Ship && ex.stepIdx > 0 {
		if target, ok := shipTarget(st); ok && !ex.eng.peer.Responsible(target) {
			ex.migrate(target)
			return
		}
	}
	ex.runStep(st)
}

// migrate sends the remaining plan to the peer owning target.
func (ex *Exec) migrate(target keys.Key) {
	m := planMsg{
		Steps:    ex.steps[ex.stepIdx:],
		Tail:     ex.tail,
		Bindings: ex.bindings,
		Origin:   ex.origin,
		RootQID:  ex.rootQID,
	}
	// Shipping must not loop: the receiving host starts at step 0 with
	// Ship cleared on the first step.
	m.Steps = append([]Step(nil), m.Steps...)
	m.Steps[0].Ship = false
	ex.eng.peer.SendApp(target, m)
	// This Exec's role ends here; the result flows to ex.origin.
	if ex.origin == ex.eng.peer.ID() {
		// Root stays registered, waiting for resultMsg.
		return
	}
	ex.done = true
}

// shipTarget picks the region key the step's data lives at.
func shipTarget(st Step) (keys.Key, bool) {
	pat := st.Pat
	switch st.Strat {
	case StratOIDLookup:
		if !pat.S.IsVar() {
			return triple.OIDKey(pat.S.Val.Str), true
		}
	case StratAVLookup:
		if !pat.A.IsVar() && !pat.V.IsVar() {
			return triple.AVKey(pat.A.Val.Str, pat.V.Val), true
		}
	case StratAVRange, StratQGram:
		if !pat.A.IsVar() {
			return triple.AVPrefixRange(pat.A.Val.Str).Lo, true
		}
	case StratValLookup:
		if !pat.V.IsVar() {
			return triple.ValKey(pat.V.Val), true
		}
	}
	return keys.Key{}, false
}

func (ex *Exec) complete() {
	ex.finishWith(ex.tail.Apply(ex.bindings))
}

func (ex *Exec) finishWith(bs []algebra.Binding) {
	if ex.origin != ex.eng.peer.ID() {
		// Hosted plan: tail already applied here; ship the result home.
		ex.eng.peer.SendAppDirect(ex.origin, resultMsg{RootQID: ex.rootQID, Bindings: bs})
		ex.done = true
		return
	}
	ex.result = bs
	ex.done = true
	ex.finished = ex.eng.peer.Net().Now()
	delete(ex.eng.queries, ex.rootQID)
	if ex.onDone != nil {
		ex.onDone(ex)
	}
}

// --- Step execution ---------------------------------------------------------

// runStep resolves the pattern with the chosen physical operator and
// joins the results into the binding set.
func (ex *Exec) runStep(st Step) {
	pat := st.Pat
	// Runtime grounding: variables bound by earlier steps turn range
	// strategies into (multi-)lookups — the DHT index join.
	boundVals := ex.boundValues(pat)
	switch st.Strat {
	case StratOIDLookup:
		ex.multiLookup(st, triple.ByOID, ex.oidProbes(pat, boundVals))
	case StratAVLookup:
		ex.multiLookup(st, triple.ByAV, ex.avProbes(pat, boundVals))
	case StratValLookup:
		ex.multiLookup(st, triple.ByVal, ex.valProbes(pat, boundVals))
	case StratAVRange:
		if vals, ok := boundVals[varName(pat.V)]; ok && len(vals) <= ex.eng.probeCap {
			// Bound value variable: probe per value instead of scanning.
			ks := make([]keys.Key, 0, len(vals))
			for _, v := range vals {
				ks = append(ks, triple.AVKey(pat.A.Val.Str, v))
			}
			ex.multiLookup(st, triple.ByAV, ks)
			return
		}
		if st.ValuePrefix != "" {
			// Pushed-down startswith: the order-preserving hash makes
			// the matching values a contiguous key interval.
			ex.rangeScan(st, triple.ByAV, triple.AVStringPrefixRange(pat.A.Val.Str, st.ValuePrefix))
			return
		}
		ex.rangeScan(st, triple.ByAV, triple.AVPrefixRange(pat.A.Val.Str))
	case StratBroadcast:
		ex.rangeScan(st, triple.ByOID, keys.Range{})
	case StratQGram:
		ex.qgramStep(st)
	default:
		// Unknown strategy: degrade to broadcast, never wrong.
		ex.rangeScan(st, triple.ByOID, keys.Range{})
	}
}

func varName(t vql.Term) string {
	if t.IsVar() {
		return t.Var
	}
	return ""
}

// boundValues collects, per pattern variable, the distinct values bound
// by the accumulated bindings.
func (ex *Exec) boundValues(pat vql.Pattern) map[string][]triple.Value {
	out := map[string][]triple.Value{}
	if (ex.stepIdx == 0 && !ex.seeded) || len(ex.bindings) == 0 {
		return out
	}
	for _, term := range []vql.Term{pat.S, pat.A, pat.V} {
		if !term.IsVar() {
			continue
		}
		seen := map[string]bool{}
		var vals []triple.Value
		bound := false
		for _, b := range ex.bindings {
			v, ok := b[term.Var]
			if !ok {
				continue
			}
			bound = true
			k := v.Lexical()
			if !seen[k] {
				seen[k] = true
				vals = append(vals, v)
			}
		}
		if bound {
			out[term.Var] = vals
		}
	}
	return out
}

func (ex *Exec) oidProbes(pat vql.Pattern, bound map[string][]triple.Value) []keys.Key {
	if !pat.S.IsVar() {
		return []keys.Key{triple.OIDKey(pat.S.Val.Str)}
	}
	var ks []keys.Key
	for _, v := range bound[pat.S.Var] {
		ks = append(ks, triple.OIDKey(v.Str))
	}
	return ks
}

func (ex *Exec) avProbes(pat vql.Pattern, bound map[string][]triple.Value) []keys.Key {
	attr := pat.A.Val.Str
	if !pat.V.IsVar() {
		return []keys.Key{triple.AVKey(attr, pat.V.Val)}
	}
	var ks []keys.Key
	for _, v := range bound[pat.V.Var] {
		ks = append(ks, triple.AVKey(attr, v))
	}
	return ks
}

func (ex *Exec) valProbes(pat vql.Pattern, bound map[string][]triple.Value) []keys.Key {
	if !pat.V.IsVar() {
		return []keys.Key{triple.ValKey(pat.V.Val)}
	}
	var ks []keys.Key
	for _, v := range bound[pat.V.Var] {
		ks = append(ks, triple.ValKey(v))
	}
	return ks
}

// multiLookup issues parallel lookups and joins the union of results.
func (ex *Exec) multiLookup(st Step, kind triple.IndexKind, ks []keys.Key) {
	if len(ks) == 0 {
		// No probes derivable (e.g., join variable bound nothing):
		// empty result.
		ex.advance(st, nil)
		return
	}
	remaining := len(ks)
	var collected []store.Entry
	for _, k := range ks {
		ex.OpsIssued++
		ex.eng.peer.Lookup(kind, k, func(res pgrid.OpResult) {
			collected = append(collected, res.Entries...)
			if res.Hops > ex.MaxHops {
				ex.MaxHops = res.Hops
			}
			remaining--
			if remaining == 0 {
				ex.advance(st, collected)
			}
		})
	}
}

// rangeScan showers over a key range and joins the results.
func (ex *Exec) rangeScan(st Step, kind triple.IndexKind, r keys.Range) {
	ex.OpsIssued++
	ex.eng.peer.RangeQuery(kind, r, false, func(res pgrid.OpResult) {
		if res.Hops > ex.MaxHops {
			ex.MaxHops = res.Hops
		}
		ex.advance(st, res.Entries)
	})
}

// advance joins fetched entries into the binding set, applies the
// step's filters and similarity predicates, and proceeds.
func (ex *Exec) advance(st Step, entries []store.Entry) {
	patBindings := entriesToBindings(st.Pat, entries)
	var joined []algebra.Binding
	if ex.stepIdx == 0 && !ex.seeded {
		joined = patBindings
	} else {
		joined = algebra.HashJoin(ex.bindings, patBindings, st.JoinOn)
	}
	joined = applyStepPredicates(st, joined)
	ex.bindings = joined
	ex.stepIdx++
	ex.run()
}

// applyStepPredicates evaluates the step's filters and similarity
// predicates over a binding set.
func applyStepPredicates(st Step, bs []algebra.Binding) []algebra.Binding {
	if len(st.Filters) == 0 && len(st.Sims) == 0 {
		return bs
	}
	out := bs[:0]
	for _, b := range bs {
		ok := true
		for _, f := range st.Filters {
			if !algebra.EvalExpr(f, b) {
				ok = false
				break
			}
		}
		for _, s := range st.Sims {
			if !ok {
				break
			}
			v, bound := b[s.Var]
			if !bound || !qgram.WithinDistance(v.String(), s.Target, s.MaxDist) {
				ok = false
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out
}

// entriesToBindings unifies fetched entries with the pattern,
// deduplicating replica copies of the same fact.
func entriesToBindings(pat vql.Pattern, entries []store.Entry) []algebra.Binding {
	seen := map[string]bool{}
	var out []algebra.Binding
	for _, e := range entries {
		fact := e.Triple.OID + "\x00" + e.Triple.Attr + "\x00" + e.Triple.Val.Lexical()
		if seen[fact] {
			continue
		}
		seen[fact] = true
		if b, ok := algebra.MatchPattern(pat, e.Triple); ok {
			out = append(out, b)
		}
	}
	return out
}

// String renders execution state.
func (ex *Exec) String() string {
	return fmt.Sprintf("exec{step=%d/%d bindings=%d done=%v}",
		ex.stepIdx, len(ex.steps), len(ex.bindings), ex.done)
}
