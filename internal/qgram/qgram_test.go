package qgram

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestGrams(t *testing.T) {
	gs := Grams("abc", 2)
	want := []string{"\x01a", "ab", "bc", "c\x01"}
	if len(gs) != len(want) {
		t.Fatalf("grams = %q", gs)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("gram %d = %q, want %q", i, gs[i], want[i])
		}
	}
	if got := len(Grams("ICDE", Q)); got != 4+Q-1 {
		t.Errorf("padded gram count = %d, want |s|+q-1 = %d", got, 4+Q-1)
	}
	if gs := Grams("", 3); len(gs) != 2 {
		// Padding alone yields q-1 grams for the empty string.
		t.Errorf("empty-string grams = %q", gs)
	}
}

func TestGramsPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Grams("x", 0)
}

func TestEditDistanceKnown(t *testing.T) {
	cases := []struct {
		s, t string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"ICDE", "ICDE", 0},
		{"ICDE", "ICDM", 1},
		{"ICDE", "CIDR", 3},
		{"VLDB", "ICDE", 3},
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
	}
	for _, c := range cases {
		if got := EditDistance(c.s, c.t); got != c.want {
			t.Errorf("ed(%q,%q) = %d, want %d", c.s, c.t, got, c.want)
		}
	}
}

// Metric axioms as properties: symmetry, identity, triangle inequality.
func TestEditDistanceMetricProperties(t *testing.T) {
	alpha := func(r *rand.Rand, n int) string {
		b := make([]byte, r.Intn(n))
		for i := range b {
			b[i] = byte('a' + r.Intn(6))
		}
		return string(b)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 400; i++ {
		a, b, c := alpha(rng, 12), alpha(rng, 12), alpha(rng, 12)
		dab, dba := EditDistance(a, b), EditDistance(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: %q %q", a, b)
		}
		if EditDistance(a, a) != 0 {
			t.Fatalf("identity violated: %q", a)
		}
		if dab == 0 && a != b {
			t.Fatalf("distinct strings at distance 0: %q %q", a, b)
		}
		if dab > EditDistance(a, c)+EditDistance(c, b) {
			t.Fatalf("triangle violated: %q %q %q", a, b, c)
		}
	}
}

// Property: banded WithinDistance agrees with the full DP for all k.
func TestWithinDistanceAgreesWithFull(t *testing.T) {
	f := func(a, b string, k8 uint8) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		k := int(k8 % 8)
		return WithinDistance(a, b, k) == (EditDistance(a, b) <= k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestWithinDistanceNegativeK(t *testing.T) {
	if WithinDistance("a", "a", -1) {
		t.Error("negative k must be false")
	}
}

func TestCountFilterSoundness(t *testing.T) {
	// No false negatives: every string within distance k must survive
	// the count filter (the invariant that makes the index correct).
	rng := rand.New(rand.NewSource(5))
	base := "similarity queries"
	for i := 0; i < 1000; i++ {
		mutated := mutate(rng, base, rng.Intn(4))
		k := EditDistance(base, mutated)
		if !WithinDistanceFilter(base, mutated, Q, k) {
			t.Fatalf("count filter rejected %q at its true distance %d", mutated, k)
		}
	}
}

func mutate(rng *rand.Rand, s string, edits int) string {
	b := []byte(s)
	for e := 0; e < edits && len(b) > 0; e++ {
		switch rng.Intn(3) {
		case 0: // substitute
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
		case 1: // delete
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		case 2: // insert
			i := rng.Intn(len(b) + 1)
			b = append(b[:i], append([]byte{byte('a' + rng.Intn(26))}, b[i:]...)...)
		}
	}
	return string(b)
}

func TestIndexAddRemove(t *testing.T) {
	ix := NewIndex(Q)
	ix.Add("ICDE")
	ix.Add("ICDE") // refcount 2
	ix.Add("VLDB")
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
	ix.Remove("ICDE")
	if ix.Len() != 2 {
		t.Error("first remove must only decrement the refcount")
	}
	ix.Remove("ICDE")
	if ix.Len() != 1 {
		t.Error("second remove must unindex")
	}
	ix.Remove("never-added") // must not panic
	if got := ix.Search("ICDE", 1); len(got) != 0 {
		t.Errorf("removed string still found: %v", got)
	}
}

func TestIndexSearchExact(t *testing.T) {
	ix := NewIndex(Q)
	confs := []string{"ICDE", "ICDM", "CIDR", "VLDB", "SIGMOD", "EDBT", "ICDT"}
	for _, c := range confs {
		ix.Add(c)
	}
	got := ix.Search("ICDE", 1)
	want := []string{"ICDE", "ICDM", "ICDT"}
	if !equalStrings(got, want) {
		t.Errorf("Search(ICDE,1) = %v, want %v", got, want)
	}
	// The paper's example: edist(?sr,'ICDE') < 3 ⇒ k = 2.
	got = ix.Search("ICDE", 2)
	for _, w := range []string{"ICDE", "ICDM", "ICDT", "EDBT"} {
		if !contains(got, w) && EditDistance("ICDE", w) <= 2 {
			t.Errorf("Search(ICDE,2) missing %q (ed=%d): got %v", w, EditDistance("ICDE", w), got)
		}
	}
	for _, g := range got {
		if EditDistance("ICDE", g) > 2 {
			t.Errorf("Search returned %q beyond distance 2", g)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(xs []string, w string) bool {
	for _, x := range xs {
		if x == w {
			return true
		}
	}
	return false
}

// Property: index search equals brute force over the corpus.
func TestIndexSearchEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	corpus := make([]string, 0, 300)
	bases := []string{"ICDE 2006", "VLDB 2005", "SIGMOD Conf", "similarity", "skyline"}
	ix := NewIndex(Q)
	for i := 0; i < 300; i++ {
		s := mutate(rng, bases[i%len(bases)], rng.Intn(5))
		corpus = append(corpus, s)
		ix.Add(s)
	}
	for _, k := range []int{0, 1, 2, 3} {
		for _, query := range bases {
			got := ix.Search(query, k)
			var want []string
			seen := map[string]bool{}
			for _, s := range corpus {
				if !seen[s] && EditDistance(query, s) <= k {
					want = append(want, s)
					seen[s] = true
				}
			}
			if !equalStrings(got, want) {
				t.Fatalf("k=%d query=%q: index %v != brute %v", k, query, got, want)
			}
		}
	}
}

func TestCandidatesIncludesEverythingAtHugeK(t *testing.T) {
	ix := NewIndex(Q)
	ix.Add("completely")
	ix.Add("different")
	got := ix.Candidates("zzz", 50)
	if len(got) != 2 {
		t.Errorf("huge k must make every string a candidate: %v", got)
	}
}

func TestPostingSorted(t *testing.T) {
	ix := NewIndex(2)
	ix.Add("ba")
	ix.Add("ab")
	p := ix.Posting("ab")
	if !sort.StringsAreSorted(p) {
		t.Errorf("posting not sorted: %v", p)
	}
}

func TestSharedGramsMultiplicity(t *testing.T) {
	// "aaaa" vs "aaa": shared 'aaa'-grams must respect multiplicity.
	s, u := "aaaa", "aaa"
	shared := SharedGrams(s, u, 3)
	if shared <= 0 {
		t.Fatalf("shared = %d", shared)
	}
	if shared > len(Grams(u, 3)) {
		t.Fatalf("shared %d exceeds smaller gram count", shared)
	}
}

func TestLongStringsBand(t *testing.T) {
	a := strings.Repeat("abcdefgh", 50)
	b := a[:len(a)-5] + "xxxxx"
	if !WithinDistance(a, b, 5) {
		t.Error("banded distance must accept 5 substitutions at k=5")
	}
	if WithinDistance(a, b, 4) {
		t.Error("banded distance must reject at k=4")
	}
}

func BenchmarkEditDistance(b *testing.B) {
	s, t := "Similarity Queries on Structured Data", "Similarity Queries in Structured Overlays"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditDistance(s, t)
	}
}

var benchSink bool

func BenchmarkWithinDistanceBanded(b *testing.B) {
	s, t := "Similarity Queries on Structured Data", "Similarity Queries in Structured Overlays"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = WithinDistance(s, t, 2)
	}
	_ = benchSink
}

func BenchmarkIndexSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ix := NewIndex(Q)
	for i := 0; i < 10000; i++ {
		ix.Add(mutate(rng, "international conference on data engineering", rng.Intn(8)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("international conference on data engineering", 2)
	}
}
