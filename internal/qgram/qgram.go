// Package qgram implements string similarity primitives for UniStore's
// similarity operators: Levenshtein edit distance (full and banded) and
// the q-gram index of the companion paper [6] ("Similarity Queries on
// Structured Data in Structured Overlays", NetDB'06).
//
// A q-gram is a substring of fixed length q. Strings are padded with
// q-1 sentinel characters on each side before gram extraction so that
// prefixes and suffixes carry positional weight. The count-filtering
// lemma makes the index sound: if edit distance ed(s, t) <= k, then s
// and t share at least
//
//	max(|s|, |t|) + q - 1 - k*q
//
// padded q-grams. A peer evaluating edist(attr, c) < k therefore routes
// only to the key-space partitions of c's q-grams, collects candidate
// strings by gram, count-filters them, and verifies survivors with the
// exact edit distance — instead of broadcasting the predicate to every
// peer.
package qgram

import (
	"sort"
	"strings"
)

// Q is the default gram length; q=3 follows the companion paper's setup.
const Q = 3

// pad is the sentinel used to extend strings before gram extraction. It
// is outside the alphabet of stored values by convention.
const pad = '\x01'

// Grams returns the padded q-grams of s, in order, with duplicates.
func Grams(s string, q int) []string {
	if q <= 0 {
		panic("qgram: q must be positive")
	}
	padded := strings.Repeat(string(pad), q-1) + s + strings.Repeat(string(pad), q-1)
	n := len(padded) - q + 1
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, padded[i:i+q])
	}
	return out
}

// GramSet returns the distinct padded q-grams of s with multiplicities.
func GramSet(s string, q int) map[string]int {
	m := make(map[string]int)
	for _, g := range Grams(s, q) {
		m[g]++
	}
	return m
}

// SharedGrams counts the number of q-grams shared by s and t, respecting
// multiplicity (the quantity bounded by the count filter).
func SharedGrams(s, t string, q int) int {
	ms := GramSet(s, q)
	shared := 0
	for _, g := range Grams(t, q) {
		if ms[g] > 0 {
			ms[g]--
			shared++
		}
	}
	return shared
}

// CountFilterThreshold returns the minimum number of shared padded
// q-grams two strings must have if their edit distance is at most k.
// A non-positive threshold means the filter cannot prune (every string
// is a candidate).
func CountFilterThreshold(lenS, lenT, q, k int) int {
	max := lenS
	if lenT > max {
		max = lenT
	}
	return max + q - 1 - k*q
}

// WithinDistanceFilter reports whether t survives the count filter for
// query string s and threshold k: a false result proves ed(s,t) > k;
// a true result requires exact verification.
func WithinDistanceFilter(s, t string, q, k int) bool {
	thr := CountFilterThreshold(len(s), len(t), q, k)
	if thr <= 0 {
		return true
	}
	return SharedGrams(s, t, q) >= thr
}

// EditDistance computes the Levenshtein distance between s and t with
// unit costs, in O(|s|·|t|) time and O(min) space.
func EditDistance(s, t string) int {
	if len(s) < len(t) {
		s, t = t, s
	}
	if len(t) == 0 {
		return len(s)
	}
	prev := make([]int, len(t)+1)
	curr := make([]int, len(t)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(s); i++ {
		curr[0] = i
		si := s[i-1]
		for j := 1; j <= len(t); j++ {
			cost := 1
			if si == t[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := curr[j-1] + 1; d < m { // insert
				m = d
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[len(t)]
}

// WithinDistance reports whether ed(s, t) <= k, using a banded
// computation that early-exits in O(k·min(|s|,|t|)) time — the exact
// verifier applied to count-filter survivors.
func WithinDistance(s, t string, k int) bool {
	if k < 0 {
		return false
	}
	if len(s) < len(t) {
		s, t = t, s
	}
	if len(s)-len(t) > k {
		return false
	}
	// Band of width 2k+1 around the diagonal.
	const inf = 1 << 30
	prev := make([]int, len(t)+1)
	curr := make([]int, len(t)+1)
	for j := range prev {
		if j <= k {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(s); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > len(t) {
			hi = len(t)
		}
		if lo > 1 {
			curr[lo-1] = inf
		} else {
			curr[0] = i
		}
		rowMin := inf
		if lo == 1 && curr[0] < rowMin {
			rowMin = curr[0]
		}
		si := s[i-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if si == t[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; j <= i+k-1 && d < m {
				m = d
			}
			if d := curr[j-1] + 1; d < m {
				m = d
			}
			curr[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if hi < len(t) {
			curr[hi+1] = inf
		}
		if rowMin > k {
			return false
		}
		prev, curr = curr, prev
	}
	return prev[len(t)] <= k
}

// Index is a local q-gram index: gram → the strings containing it. The
// distributed variant places each gram's posting list at
// hash("q:"+gram) in the overlay; this local form backs both the
// single-node execution path and each peer's share of the distributed
// index.
type Index struct {
	q        int
	postings map[string]map[string]struct{}
	strings  map[string]int // string → reference count
}

// NewIndex creates a q-gram index with gram length q (use Q for the
// paper's setting).
func NewIndex(q int) *Index {
	return &Index{q: q,
		postings: make(map[string]map[string]struct{}),
		strings:  make(map[string]int)}
}

// Q returns the gram length.
func (ix *Index) Q() int { return ix.q }

// Add indexes s. Adding the same string again increments its reference
// count (several triples may share a value).
func (ix *Index) Add(s string) {
	ix.strings[s]++
	if ix.strings[s] > 1 {
		return
	}
	for g := range GramSet(s, ix.q) {
		p, ok := ix.postings[g]
		if !ok {
			p = make(map[string]struct{})
			ix.postings[g] = p
		}
		p[s] = struct{}{}
	}
}

// Remove drops one reference to s, unindexing it when the count reaches
// zero.
func (ix *Index) Remove(s string) {
	c, ok := ix.strings[s]
	if !ok {
		return
	}
	if c > 1 {
		ix.strings[s] = c - 1
		return
	}
	delete(ix.strings, s)
	for g := range GramSet(s, ix.q) {
		if p, ok := ix.postings[g]; ok {
			delete(p, s)
			if len(p) == 0 {
				delete(ix.postings, g)
			}
		}
	}
}

// Len returns the number of distinct indexed strings.
func (ix *Index) Len() int { return len(ix.strings) }

// Posting returns the strings containing gram g (nil if none).
func (ix *Index) Posting(g string) []string {
	p := ix.postings[g]
	if len(p) == 0 {
		return nil
	}
	out := make([]string, 0, len(p))
	for s := range p {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Candidates returns the strings sharing at least the count-filter
// threshold of q-grams with s for distance bound k — the superset that
// exact verification narrows down. With a non-positive threshold it
// returns every indexed string.
func (ix *Index) Candidates(s string, k int) []string {
	counts := make(map[string]int)
	for g := range GramSet(s, ix.q) {
		for cand := range ix.postings[g] {
			counts[cand]++
		}
	}
	var out []string
	for cand, shared := range counts {
		thr := CountFilterThreshold(len(s), len(cand), ix.q, k)
		if thr <= 0 || sharedAtLeast(s, cand, ix.q, thr, shared) {
			out = append(out, cand)
		}
	}
	// Strings with no shared gram at all still qualify when the
	// threshold is non-positive for them.
	for cand := range ix.strings {
		if _, seen := counts[cand]; seen {
			continue
		}
		if CountFilterThreshold(len(s), len(cand), ix.q, k) <= 0 {
			out = append(out, cand)
		}
	}
	sort.Strings(out)
	return out
}

// sharedAtLeast verifies the multiplicity-aware shared count reaches
// thr. The distinct-gram count `approx` is a lower bound of the true
// shared count (Σ min of multiplicities), so it short-circuits the
// common case; otherwise the exact count decides.
func sharedAtLeast(s, cand string, q, thr, approx int) bool {
	if approx >= thr {
		return true
	}
	return SharedGrams(s, cand, q) >= thr
}

// Search returns the indexed strings within edit distance k of s,
// verified exactly, in sorted order.
func (ix *Index) Search(s string, k int) []string {
	var out []string
	for _, cand := range ix.Candidates(s, k) {
		if WithinDistance(s, cand, k) {
			out = append(out, cand)
		}
	}
	return out
}
