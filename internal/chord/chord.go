// Package chord implements a Chord-style DHT baseline (consistent
// hashing on a ring with finger tables) for the comparison the paper
// draws in §2: uniform hashing destroys data order, so range queries
// that P-Grid answers by routing to the few covering partitions force
// Chord to contact every node (absent an additional trie structure on
// top, which is exactly the paper's point).
//
// The implementation supports exact-key lookups in O(log n) hops via
// finger tables, and range queries only as a full ring broadcast.
package chord

import (
	"fmt"
	"sort"

	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// Message kinds.
const (
	KindLookup    = "chord.lookup"
	KindInsert    = "chord.insert"
	KindResponse  = "chord.resp"
	KindBroadcast = "chord.bcast"
)

// ringBits is the identifier space size (2^ringBits points).
const ringBits = 32

// ringID is a position on the ring.
type ringID uint32

// hashKey maps a placement key onto the ring uniformly (FNV-1a over the
// key's bits) — deliberately not order-preserving.
func hashKey(k keys.Key) ringID {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	b, n := k.Bytes()
	for i := 0; i < (n+7)/8; i++ {
		h ^= uint32(b[i])
		h *= prime
	}
	return ringID(h)
}

// Node is one Chord node.
type Node struct {
	net     *simnet.Network
	id      simnet.NodeID
	ring    ringID
	pred    ringID   // immediate predecessor's ring position
	fingers []finger // finger[i] ≈ successor(ring + 2^i)
	succ    simnet.NodeID
	store   *store.Store

	reqSeq  uint64
	pending map[uint64]*pendingOp
	stats   Stats
}

type finger struct {
	start ringID
	node  simnet.NodeID
	ring  ringID
}

// Stats counts per-node protocol activity.
type Stats struct {
	Forwarded int
	Delivered int
}

type pendingOp struct {
	entries   []store.Entry
	hops      int
	responses int
	need      int
	done      bool
}

// lookupMsg is routed around the ring.
type lookupMsg struct {
	QID    uint64
	Origin simnet.NodeID
	Target ringID
	Kind   uint8
	Key    keys.Key
	Hops   int
	// Insert carries an entry to store instead of a key to read.
	Insert *store.Entry
}

func (m lookupMsg) WireSize() int { return m.Key.Len()/8 + 24 }

// respMsg answers a lookup or a broadcast branch.
type respMsg struct {
	QID     uint64
	Entries []store.Entry
	Hops    int
}

func (m respMsg) WireSize() int {
	s := 16
	for _, e := range m.Entries {
		s += e.WireSize()
	}
	return s
}

// bcastMsg floods a range scan over the ring: each node forwards to its
// successor until the message returns to the origin ring position.
type bcastMsg struct {
	QID    uint64
	Origin simnet.NodeID
	Start  ringID
	R      keys.Range
	Kind   uint8
	Hops   int
}

func (m bcastMsg) WireSize() int { return m.R.Lo.Len()/8 + m.R.Hi.Len()/8 + 24 }

// Build constructs a Chord ring of n nodes with filled finger tables.
func Build(net *simnet.Network, n int) []*Node {
	if n <= 0 {
		panic("chord: Build needs n > 0")
	}
	nodes := make([]*Node, n)
	used := map[ringID]bool{}
	for i := range nodes {
		nd := &Node{net: net, store: store.New(), pending: make(map[uint64]*pendingOp)}
		nd.id = net.AddNode(nd)
		// Unique pseudo-random ring position from the deterministic rng.
		for {
			r := ringID(net.Rand().Uint32())
			if !used[r] {
				used[r] = true
				nd.ring = r
				break
			}
		}
		nodes[i] = nd
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ring < nodes[j].ring })
	// successor pointers and finger tables from global knowledge (the
	// baseline's steady state; join/stabilize is out of scope).
	succOf := func(t ringID) *Node {
		i := sort.Search(len(nodes), func(i int) bool { return nodes[i].ring >= t })
		if i == len(nodes) {
			i = 0
		}
		return nodes[i]
	}
	for i, nd := range nodes {
		nd.succ = succOf(nd.ring + 1).id
		nd.pred = nodes[(i+len(nodes)-1)%len(nodes)].ring
		nd.fingers = nd.fingers[:0]
		for b := 0; b < ringBits; b++ {
			start := nd.ring + 1<<uint(b)
			s := succOf(start)
			nd.fingers = append(nd.fingers, finger{start: start, node: s.id, ring: s.ring})
		}
	}
	return nodes
}

// ID returns the node's network address.
func (nd *Node) ID() simnet.NodeID { return nd.id }

// Ring returns the node's ring position.
func (nd *Node) Ring() uint32 { return uint32(nd.ring) }

// Store exposes the node's local store.
func (nd *Node) Store() *store.Store { return nd.store }

// Stats returns protocol counters.
func (nd *Node) Stats() Stats { return nd.stats }

// between reports whether x lies in the half-open ring interval (a, b].
func between(a, b, x ringID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// HandleMessage implements simnet.Handler.
func (nd *Node) HandleMessage(m simnet.Message) {
	switch m.Kind {
	case KindLookup, KindInsert:
		nd.handleLookup(m.Payload.(lookupMsg))
	case KindResponse:
		nd.handleResponse(m.Payload.(respMsg))
	case KindBroadcast:
		nd.handleBroadcast(m.Payload.(bcastMsg))
	}
}

func (nd *Node) handleLookup(m lookupMsg) {
	if nd.responsible(m.Target) {
		nd.stats.Delivered++
		if m.Insert != nil {
			nd.store.Apply(*m.Insert)
			return
		}
		entries := nd.store.Lookup(triple.IndexKind(m.Kind), m.Key)
		nd.net.Send(nd.id, m.Origin, KindResponse, respMsg{QID: m.QID, Entries: entries, Hops: m.Hops})
		return
	}
	nd.forward(m)
}

// responsible reports whether this node is the successor of t, i.e., t
// lies in (pred, self].
func (nd *Node) responsible(t ringID) bool {
	return between(nd.pred, nd.ring, t)
}

// forward implements Chord's closest-preceding-finger step: pick the
// highest finger strictly inside (self, target), else the successor.
func (nd *Node) forward(m lookupMsg) {
	m.Hops++
	nd.stats.Forwarded++
	for i := len(nd.fingers) - 1; i >= 0; i-- {
		f := nd.fingers[i]
		if f.node == nd.id || f.ring == m.Target {
			continue
		}
		if between(nd.ring, m.Target, f.ring) && f.ring != m.Target {
			nd.net.Send(nd.id, f.node, m.kindOf(), m)
			return
		}
	}
	nd.net.Send(nd.id, nd.succ, m.kindOf(), m)
}

func (m lookupMsg) kindOf() string {
	if m.Insert != nil {
		return KindInsert
	}
	return KindLookup
}

func (nd *Node) handleResponse(r respMsg) {
	op, ok := nd.pending[r.QID]
	if !ok || op.done {
		return
	}
	op.entries = append(op.entries, r.Entries...)
	op.responses++
	if r.Hops > op.hops {
		op.hops = r.Hops
	}
	if op.responses >= op.need {
		op.done = true
		delete(nd.pending, r.QID)
	}
}

func (nd *Node) handleBroadcast(m bcastMsg) {
	// Serve the local overlap, then pass to the successor until the
	// ring is closed.
	var entries []store.Entry
	nd.store.Scan(triple.IndexKind(m.Kind), m.R, func(e store.Entry) bool {
		entries = append(entries, e)
		return true
	})
	nd.net.Send(nd.id, m.Origin, KindResponse, respMsg{QID: m.QID, Entries: entries, Hops: m.Hops})
	next := nd.succNode()
	if next != m.Origin {
		m.Hops++
		nd.net.Send(nd.id, next, KindBroadcast, m)
	}
}

func (nd *Node) succNode() simnet.NodeID { return nd.succ }

// --- Client operations ----------------------------------------------------

// Result is the outcome of a Chord operation.
type Result struct {
	Entries   []store.Entry
	Hops      int
	Responses int
	Complete  bool
}

// Insert routes an index entry to its successor node.
func (nd *Node) Insert(e store.Entry) {
	m := lookupMsg{Target: hashKey(e.Key), Insert: &e}
	nd.startLookup(m)
}

// InsertTriple stores tr under all three UniStore index kinds.
func (nd *Node) InsertTriple(tr triple.Triple, version uint64) {
	for _, kind := range triple.AllIndexKinds {
		nd.Insert(store.Entry{Kind: kind, Key: triple.IndexKey(tr, kind),
			Triple: tr, Version: version})
	}
}

func (nd *Node) startLookup(m lookupMsg) {
	if nd.responsible(m.Target) {
		nd.handleLookup(m)
		return
	}
	nd.forward(m)
}

// LookupSync fetches the entries at placement key k, driving the
// network until the response arrives.
func (nd *Node) LookupSync(kind triple.IndexKind, k keys.Key) Result {
	nd.reqSeq++
	qid := nd.reqSeq
	op := &pendingOp{need: 1}
	nd.pending[qid] = op
	m := lookupMsg{QID: qid, Origin: nd.id, Target: hashKey(k), Kind: uint8(kind), Key: k}
	nd.startLookup(m)
	nd.net.RunWhile(func() bool { return !op.done })
	return Result{Entries: op.entries, Hops: op.hops, Responses: op.responses, Complete: op.done}
}

// RangeQuerySync answers a key range query — necessarily by visiting
// every node on the ring, since uniform hashing scatters adjacent keys.
func (nd *Node) RangeQuerySync(kind triple.IndexKind, r keys.Range, ringSize int) Result {
	nd.reqSeq++
	qid := nd.reqSeq
	op := &pendingOp{need: ringSize}
	nd.pending[qid] = op
	// Serve locally, then circulate.
	var local []store.Entry
	nd.store.Scan(kind, r, func(e store.Entry) bool { local = append(local, e); return true })
	op.entries = append(op.entries, local...)
	op.responses++
	if ringSize > 1 {
		nd.net.Send(nd.id, nd.succ, KindBroadcast,
			bcastMsg{QID: qid, Origin: nd.id, Start: nd.ring, R: r, Kind: uint8(kind)})
	} else {
		op.done = true
	}
	nd.net.RunWhile(func() bool { return !op.done })
	return Result{Entries: op.entries, Hops: op.hops, Responses: op.responses, Complete: op.done}
}

// String renders the node.
func (nd *Node) String() string {
	return fmt.Sprintf("chord{id=%d ring=%08x}", nd.id, nd.ring)
}
