package chord

import (
	"fmt"
	"math"
	"testing"
	"time"

	"unistore/internal/simnet"
	"unistore/internal/triple"
)

func newNet(seed int64) *simnet.Network {
	return simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: seed})
}

func TestBuildRing(t *testing.T) {
	net := newNet(1)
	nodes := Build(net, 32)
	if len(nodes) != 32 {
		t.Fatalf("built %d nodes", len(nodes))
	}
	// Ring positions strictly increasing (sorted by Build).
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Ring() <= nodes[i-1].Ring() {
			t.Fatal("ring positions must be unique and sorted")
		}
	}
}

func TestInsertLookup(t *testing.T) {
	net := newNet(2)
	nodes := Build(net, 16)
	tr := triple.T("a12", "confname", "ICDE 2006 - Workshops")
	nodes[0].InsertTriple(tr, 1)
	net.Run()
	for _, nd := range nodes {
		res := nd.LookupSync(triple.ByAV, triple.AVKey("confname", triple.S("ICDE 2006 - Workshops")))
		if !res.Complete || len(res.Entries) != 1 || !res.Entries[0].Triple.Equal(tr) {
			t.Fatalf("lookup from node %v failed: %+v", nd, res)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		net := newNet(3)
		nodes := Build(net, n)
		tr := triple.T("x", "year", "2006")
		nodes[0].InsertTriple(tr, 1)
		net.Run()
		key := triple.AVKey("year", triple.S("2006"))
		sum := 0
		for _, nd := range nodes {
			res := nd.LookupSync(triple.ByAV, key)
			if !res.Complete {
				t.Fatalf("n=%d: incomplete", n)
			}
			sum += res.Hops
		}
		avg := float64(sum) / float64(n)
		bound := 2 * math.Log2(float64(n))
		if avg > bound {
			t.Errorf("n=%d: avg hops %.2f exceeds 2·log2(n)=%.2f", n, avg, bound)
		}
	}
}

func TestRangeQueryVisitsEveryNode(t *testing.T) {
	net := newNet(4)
	nodes := Build(net, 24)
	for y := 1990; y < 2010; y++ {
		nodes[y%24].InsertTriple(triple.TN(fmt.Sprintf("p%d", y), "year", float64(y)), 1)
	}
	net.Run()
	lo, hi := triple.N(1995), triple.N(2000)
	res := nodes[7].RangeQuerySync(triple.ByAV, triple.AVRange("year", lo, &hi), 24)
	if !res.Complete {
		t.Fatal("range query incomplete")
	}
	if res.Responses != 24 {
		t.Errorf("range visited %d nodes, want all 24 (Chord cannot prune)", res.Responses)
	}
	if len(res.Entries) != 5 {
		t.Errorf("range returned %d entries, want 5", len(res.Entries))
	}
	for _, e := range res.Entries {
		if y := e.Triple.Val.Num; y < 1995 || y >= 2000 {
			t.Errorf("out-of-range year %v", y)
		}
	}
}

func TestUniformHashingScattersAdjacentKeys(t *testing.T) {
	// The motivating contrast with P-Grid: consecutive years map to
	// unrelated ring positions.
	k1 := hashKey(triple.AVKey("year", triple.N(2005)))
	k2 := hashKey(triple.AVKey("year", triple.N(2006)))
	k3 := hashKey(triple.AVKey("year", triple.N(2007)))
	if k1 < k2 && k2 < k3 {
		// Monotone by coincidence is possible but three in a row with
		// small gaps would suggest order preservation.
		if k2-k1 < 1<<16 && k3-k2 < 1<<16 {
			t.Error("hashKey appears to preserve order; baseline must scatter")
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	net := newNet(5)
	nodes := Build(net, 1)
	nd := nodes[0]
	nd.InsertTriple(triple.T("solo", "name", "only"), 1)
	net.Run()
	res := nd.LookupSync(triple.ByAV, triple.AVKey("name", triple.S("only")))
	if !res.Complete || len(res.Entries) != 1 {
		t.Fatalf("single-node lookup: %+v", res)
	}
	r := nd.RangeQuerySync(triple.ByAV, triple.AVPrefixRange("name"), 1)
	if !r.Complete || len(r.Entries) != 1 {
		t.Fatalf("single-node range: %+v", r)
	}
}

func TestStatsAccumulate(t *testing.T) {
	net := newNet(6)
	nodes := Build(net, 8)
	nodes[0].InsertTriple(triple.T("s", "a", "v"), 1)
	net.Run()
	nodes[3].LookupSync(triple.ByAV, triple.AVKey("a", triple.S("v")))
	total := 0
	for _, nd := range nodes {
		total += nd.Stats().Delivered
	}
	if total == 0 {
		t.Error("no deliveries recorded")
	}
}

func BenchmarkChordLookup64(b *testing.B) {
	net := newNet(7)
	nodes := Build(net, 64)
	nodes[0].InsertTriple(triple.T("x", "year", "2006"), 1)
	net.Run()
	key := triple.AVKey("year", triple.S("2006"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%64].LookupSync(triple.ByAV, key)
	}
}
