package pgrid

import (
	"unistore/internal/agg"
	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/trace"
	"unistore/internal/triple"
)

// This file implements the replica-aware read path: every remote read
// targets a replica SET instead of a single owner. Probes pick a
// replica by load-aware power-of-two-choices over the cached owner set
// (simnet's per-node backlog is the load signal, the per-owner latency
// EWMA the tie-break), are hedged to a sibling replica when a
// configurable deadline passes unanswered, and fall back to fully
// routed lookups once the replica set is exhausted. Range scans track
// which partitions have fully answered and re-shower only the missing
// key-space gaps, so a query whose serving peer died mid-scan still
// returns exact results. All of it is an accelerator layered over
// P-Grid's best-effort routing: the routed path remains the authority
// a read can always fall back to.

// --- Probe dispatch ----------------------------------------------------------

// dispatchProbes routes the probe keys of one key-tracked operation:
// locally-owned keys answer in one loopback batch, keys with a cached
// owner set travel direct to a load-chosen replica (grouped per
// partition, hedging armed), and the rest take the routed path.
func (p *Peer) dispatchProbes(qid uint64, op *pendingOp, kind uint8, ks []keys.Key) {
	// Single-key fast path: the dominant Lookup shape needs no group
	// index map or slice bookkeeping — resolve the one key and go.
	if len(ks) == 1 {
		k := ks[0]
		p.mu.RLock()
		tc := op.tc
		if k.HasPrefix(p.path) {
			p.mu.RUnlock()
			p.serveLocalProbes(qid, op, kind, ks, tc)
			return
		}
		set, ok := p.cachedSetLocked(k)
		var spath keys.Key
		if ok {
			spath = set.path
		}
		p.mu.RUnlock()
		if ok {
			p.stats.cacheHits.Add(1)
			p.sendProbeGroup(qid, op, kind, ks, spath, nil, 0, tc)
			return
		}
		p.stats.cacheMisses.Add(1)
		p.routeProbe(qid, kind, k, op.aggSpec, tc)
		return
	}
	var local []keys.Key
	type group struct {
		path keys.Key
		ks   []keys.Key
	}
	var groups []*group // first-seen order: deterministic sends
	idx := make(map[string]*group)
	var routed []keys.Key
	p.mu.RLock()
	tc := op.tc
	for _, k := range ks {
		if k.HasPrefix(p.path) {
			local = append(local, k)
			continue
		}
		set, ok := p.cachedSetLocked(k)
		if ok {
			p.stats.cacheHits.Add(1)
			ps := set.path.String()
			g := idx[ps]
			if g == nil {
				g = &group{path: set.path}
				idx[ps] = g
				groups = append(groups, g)
			}
			g.ks = append(g.ks, k)
			continue
		}
		p.stats.cacheMisses.Add(1)
		routed = append(routed, k)
	}
	p.mu.RUnlock()
	if len(local) > 0 {
		p.serveLocalProbes(qid, op, kind, local, tc)
	}
	for _, g := range groups {
		p.sendProbeGroup(qid, op, kind, g.ks, g.path, nil, 0, tc)
	}
	for _, k := range routed {
		p.routeProbe(qid, kind, k, op.aggSpec, tc)
	}
}

// serveLocalProbes answers probe keys owned by this peer as one batch.
// The response travels through the network like any other so completion
// callbacks never fire inside the issuing call.
func (p *Peer) serveLocalProbes(qid uint64, op *pendingOp, kind uint8, local []keys.Key, tc trace.Ctx) {
	// The request leg is a function call (zero messages); the loopback
	// response below is a real self-send, so the span's outbound side is
	// charged when the origin absorbs its rider.
	ws := p.beginSpan(tc, trace.OpMultiLookup, 0, 0)
	resp := queryResp{QID: qid, Probes: len(local), ProbeKeys: local}
	p.stampResp(&resp)
	var collected []store.Entry
	for _, k := range local {
		p.stats.delivered.Add(1)
		entries := p.store.Lookup(triple.IndexKind(kind), k)
		if op.aggSpec != nil {
			collected = append(collected, entries...)
			continue
		}
		resp.Entries = append(resp.Entries, entries...)
		resp.Count += len(entries)
	}
	if op.aggSpec != nil {
		aggProbeResp(&resp, op.aggSpec, collected)
	}
	resp.TS = p.finishSpan(ws, tc.TraceID, resp.Count)
	p.net.Send(p.id, p.id, KindResponse, resp)
}

// routeProbe sends one probe down the ordinary prefix-routed path (the
// cache statistics for it were already taken by the caller). A non-nil
// spec pushes the aggregation along with it.
func (p *Peer) routeProbe(qid uint64, kind uint8, k keys.Key, spec *agg.Spec, tc trace.Ctx) {
	p.forward(routeEnvelope{Target: k, Inner: lookupReq{
		QID: qid, Origin: p.id, Kind: kind, Key: k, Agg: spec, TC: tc,
	}})
}

// sendProbeGroup sends one partition's probe keys direct to a chosen
// replica of its cached owner set, registering the group for the hedge
// timer. With no live untried replica left it invalidates the set and
// falls back to routed lookups (reporting false).
func (p *Peer) sendProbeGroup(qid uint64, op *pendingOp, kind uint8, ks []keys.Key, path keys.Key, tried map[simnet.NodeID]bool, attempt int, tc trace.Ctx) bool {
	p.mu.Lock()
	set, ok := p.cache.entries[path.String()]
	var target Ref
	if ok {
		target, ok = p.pickReplicaLocked(set, tried)
	}
	if !ok {
		if tried == nil {
			// Every known owner is dead (first attempts only: a retry
			// exhausting its alternates just means they were all tried).
			if p.cache.dropLocked(path) {
				p.stats.cacheInvalidations.Add(1)
			}
		}
		spec := op.aggSpec
		p.mu.Unlock()
		for _, k := range ks {
			p.routeProbe(qid, kind, k, spec, tc)
		}
		return false
	}
	if op.done {
		p.mu.Unlock()
		return true
	}
	op.groupSeq++
	gid := op.groupSeq
	if op.groups == nil {
		op.groups = make(map[uint64]*probeGroup)
	}
	if tried == nil {
		tried = make(map[simnet.NodeID]bool)
	}
	tried[target.ID] = true
	op.groups[gid] = &probeGroup{
		kind: kind, keys: ks, target: target.ID, path: path,
		sentAt: p.net.Now(), attempt: attempt, tried: tried,
	}
	spec := op.aggSpec
	p.mu.Unlock()
	p.stats.probeGroups.Add(1)
	p.net.Send(p.id, target.ID, KindMultiLookup, multiLookupReq{
		QID: qid, Origin: p.id, Kind: kind, Keys: ks, Agg: spec, TC: tc,
	})
	if hedge := p.cfg.hedgeAfter(); hedge > 0 {
		p.net.After(hedge, func() { p.hedgeProbeGroup(qid, gid) })
	}
	return true
}

// pickReplicaLocked chooses a live replica from an owner set by
// power-of-two-choices: sample two candidates, keep the one with the
// smaller network backlog PLUS flow-control pressure (deferred bulk
// sends stalled on the candidate's credit window — the backpressure
// signal feeding back into replica selection), breaking ties by
// latency EWMA. Config's ReadReplicas bounds the candidates considered
// (1 pins reads to the primary — the single-owner baseline). Callers
// hold p.mu; the flow table's own innermost lock makes the penalty
// reads safe here.
func (p *Peer) pickReplicaLocked(set *ownerSet, tried map[simnet.NodeID]bool) (Ref, bool) {
	cands := set.live(p.net, p.cfg.ReadReplicas, tried)
	switch len(cands) {
	case 0:
		return Ref{}, false
	case 1:
		return set.owners[cands[0]].Ref, true
	}
	i := cands[p.net.Intn(len(cands))]
	j := cands[p.net.Intn(len(cands))]
	for j == i {
		j = cands[p.net.Intn(len(cands))]
	}
	li := p.net.Load(set.owners[i].ID) + p.flow.penalty(set.owners[i].ID)
	lj := p.net.Load(set.owners[j].ID) + p.flow.penalty(set.owners[j].ID)
	if lj < li || (lj == li && set.owners[j].ewma < set.owners[i].ewma) {
		i = j
	}
	return set.owners[i].Ref, true
}

// hedgeProbeGroup fires when a probe group's deadline passes: keys
// still unanswered are re-sent to the next replica (penalizing the
// silent one's health EWMA), and once the attempt budget is spent they
// fall back to fully routed lookups. Answered groups dissolve quietly.
func (p *Peer) hedgeProbeGroup(qid, gid uint64) {
	p.mu.Lock()
	op, ok := p.pending[qid]
	if !ok || op.done {
		p.mu.Unlock()
		return
	}
	g, ok := op.groups[gid]
	if !ok {
		p.mu.Unlock()
		return
	}
	delete(op.groups, gid)
	var unanswered []keys.Key
	for _, k := range g.keys {
		if op.probeWant[k.String()] {
			unanswered = append(unanswered, k)
		}
	}
	if len(unanswered) == 0 {
		p.mu.Unlock()
		return
	}
	if set, ok := p.cache.entries[g.path.String()]; ok {
		set.penalize(g.target, p.cfg.hedgeAfter())
	}
	kind, attempt, tried, path := g.kind, g.attempt+1, g.tried, g.path
	spec := op.aggSpec
	tc := op.tc
	tc.Flags |= trace.FlagHedge
	p.mu.Unlock()
	p.stats.probeRetries.Add(1)
	if attempt < maxProbeAttempts && p.sendProbeGroup(qid, op, kind, unanswered, path, tried, attempt, tc) {
		return
	}
	if attempt >= maxProbeAttempts {
		for _, k := range unanswered {
			p.routeProbe(qid, kind, k, spec, tc)
		}
	}
}

// settleGroupsLocked dissolves probe groups whose keys have all been
// answered, folding the winner's round trip into its cached latency
// EWMA. Callers hold p.mu.
func (p *Peer) settleGroupsLocked(op *pendingOp, from simnet.NodeID) {
	if len(op.groups) == 0 {
		return
	}
	now := p.net.Now()
	for gid, g := range op.groups {
		satisfied := true
		for _, k := range g.keys {
			if op.probeWant[k.String()] {
				satisfied = false
				break
			}
		}
		if satisfied {
			if g.target == from {
				p.observeOwnerLocked(g.path, from, now-g.sentAt)
			}
			delete(op.groups, gid)
		}
	}
}

// siblingReplica picks a live replica of the partition at `path` other
// than `dead` — the page-pull redirect target when a paged scan's
// server dies between pages.
func (p *Peer) siblingReplica(path keys.Key, dead simnet.NodeID) (simnet.NodeID, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.siblingReplicaLocked(path, dead)
}

// siblingReplicaLocked is siblingReplica with p.mu already held.
func (p *Peer) siblingReplicaLocked(path keys.Key, dead simnet.NodeID) (simnet.NodeID, bool) {
	if p.cfg.DisableRouteCache || p.cfg.ReadReplicas == 1 || path.Len() == 0 {
		return 0, false
	}
	set, ok := p.cache.entries[path.String()]
	if !ok {
		return 0, false
	}
	ref, ok := p.pickReplicaLocked(set, map[simnet.NodeID]bool{dead: true})
	if !ok {
		return 0, false
	}
	return ref.ID, true
}

// --- Page-pull hedging -------------------------------------------------------

// armPagePull schedules the pull-level hedge of one in-flight page
// request: if the partition's cursor has not moved past cont when the
// hedge deadline fires, the pull (or its answer) was swallowed — most
// likely the server died with the request already sent — and the pull
// re-sends to a live sibling replica.
func (p *Peer) armPagePull(qid uint64, path keys.Key, cont pageCont, server simnet.NodeID) {
	hedge := p.cfg.hedgeAfter()
	if hedge == 0 {
		return
	}
	p.net.After(hedge, func() { p.hedgePagePull(qid, path, cont, server) })
}

// hedgePagePull fires at the pull hedge deadline. A cursor that moved
// (or a finished partition) means the stream is healthy and the timer
// dissolves; a stalled cursor re-sends the pull — direct to a sibling
// replica with the stream claim transferred (so the sibling's pages
// are accepted and a late original is dropped whole), or routed with
// the claim released when no sibling is cached. The per-cursor hedge
// budget keeps a persistently wedged position from looping; past it
// the scan-level re-shower backstop still applies.
func (p *Peer) hedgePagePull(qid uint64, path keys.Key, cont pageCont, server simnet.NodeID) {
	p.mu.Lock()
	op, ok := p.pending[qid]
	if !ok || op.done || op.scan == nil {
		p.mu.Unlock()
		return
	}
	sc := op.scan
	key := path.String()
	cu, ok := sc.cursors[key]
	if !ok || !contEqual(cu.cont, cont) {
		p.mu.Unlock()
		return
	}
	if cu.hedges >= maxProbeAttempts {
		p.mu.Unlock()
		return
	}
	cu.hedges++
	tc := op.tc
	tc.Flags |= trace.FlagRetry
	target, direct := p.siblingReplicaLocked(path, server)
	if cl, claimed := sc.claims[key]; claimed {
		if direct {
			cl.from = target
			cl.last = p.net.Now()
		} else {
			// Routed pull: whichever replica answers re-claims; the
			// claim dedup still drops whichever stream loses the race.
			delete(sc.claims, key)
		}
	}
	p.mu.Unlock()
	p.stats.pageHedges.Add(1)
	// The hedge abandons the stalled server: release any credit still
	// charged against it so its silence cannot strand unrelated bulk
	// sends (the zero-credit-deadlock rule).
	p.runFlow(p.flow.releaseNode(server))
	wb, wm := p.advertiseWindow()
	req := pageReq{QID: qid, Origin: p.id, Cont: cont, WinBytes: wb, WinMsgs: wm, TC: tc}
	if direct {
		p.net.Send(p.id, target, KindPage, req)
		p.armPagePull(qid, path, cont, target)
		return
	}
	p.route(path, req)
	p.armPagePull(qid, path, cont, server)
}

// --- Write-path failover -----------------------------------------------------

// armInsertRetry schedules the ack watchdog of an acked insert.
func (p *Peer) armInsertRetry(qid uint64, attempt int) {
	hedge := p.cfg.hedgeAfter()
	if hedge == 0 || attempt >= maxProbeAttempts {
		return
	}
	p.net.After(hedge, func() { p.retryInserts(qid, attempt) })
}

// retryInserts re-routes the entries of an acked insert whose acks are
// still missing at the hedge deadline — the envelope (or its ack) was
// swallowed, typically by the responsible primary dying with the
// message in flight. Routing re-consults the cached owner set and the
// liveness-checked reference tables, so the retry lands on a live
// replica of the partition; the store's version tie-break makes a
// duplicate delivery harmless.
func (p *Peer) retryInserts(qid uint64, attempt int) {
	p.mu.Lock()
	op, ok := p.pending[qid]
	if !ok || op.done || len(op.insertPend) == 0 {
		p.mu.Unlock()
		return
	}
	type pend struct {
		seq uint8
		e   store.Entry
	}
	var missing []pend
	for seq, e := range op.insertPend {
		missing = append(missing, pend{seq, e})
	}
	tc := op.tc
	tc.Flags |= trace.FlagRetry
	p.mu.Unlock()
	p.stats.writeRetries.Add(int64(len(missing)))
	for _, m := range missing {
		// Refund the entry's flow-control charge first: the original
		// send (possibly still parked in a dead receiver's deferred
		// queue) is superseded by this retry, which goes UNGATED — the
		// failover path must never wait on credit a dead receiver can
		// no longer return.
		p.runFlow(p.flow.releaseKey(flowKey{qid: qid, seq: m.seq}))
		p.route(m.e.Key, insertReq{Entry: m.e, QID: qid, Origin: p.id, Seq: m.seq, TC: tc})
	}
	p.armInsertRetry(qid, attempt+1)
}

// --- Range-scan failover -----------------------------------------------------

// hasCovered reports whether a partition path already delivered its
// final answer for this scan.
func (s *scanState) hasCovered(path keys.Key) bool {
	for _, c := range s.covered {
		if c.Equal(path) {
			return true
		}
	}
	return false
}

// armScanRetry schedules the churn backstop of a range query: if the
// operation is still pending when the (much longer than any healthy
// shower) deadline passes, the partitions that never finished
// answering are re-showered through fresh — live — references.
func (p *Peer) armScanRetry(qid uint64) {
	hedge := p.cfg.hedgeAfter()
	if hedge == 0 {
		return
	}
	p.net.After(hedge*scanRetryFactor, func() { p.retryScan(qid) })
}

// retryScan re-showers the key-space gaps a pending range query never
// got final answers for. Retry showers carry zero share mass — their
// mass could double-count against late original responses and complete
// the operation while a partition is still silent — so firing the
// first retry switches the operation to coverage-based completion:
// done when the partitions that answered tile the queried range.
// Duplicate rows from a late original racing a retry are dropped by
// the covered-partition check in handleResponse.
func (p *Peer) retryScan(qid uint64) {
	p.mu.Lock()
	op, ok := p.pending[qid]
	if !ok || op.done || op.scan == nil {
		p.mu.Unlock()
		return
	}
	sc := op.scan
	if sc.retries >= maxScanRetries {
		p.mu.Unlock()
		return
	}
	sc.coverage = true
	// Release the stream claims of dead or stalled owners (no progress
	// for a whole retry interval). A released stream that had already
	// delivered pages resumes at its stored cursor — a routed page
	// pull any replica of the partition can serve, so rows already
	// streamed are never replayed. Partitions that never responded
	// become gaps for the re-shower. Claims still making progress
	// count as covered for GAP computation only — their stream will
	// finish on its own, so re-showering them would just burn
	// messages — while completion keeps waiting for their final page.
	now := p.net.Now()
	interval := p.cfg.hedgeAfter() * scanRetryFactor
	active := append([]keys.Key(nil), sc.covered...)
	for key, cl := range sc.claims {
		if !p.net.Alive(cl.from) || now-cl.last >= interval {
			// Released: the resumed stream's first response (or the
			// re-shower's) re-claims. The cursor memo survives, so the
			// partition resumes below instead of re-showering.
			delete(sc.claims, key)
			continue
		}
		active = append(active, cl.path)
	}
	// Partitions with page progress but no live stream resume at their
	// memoized cursor — a routed pull any replica can serve — and never
	// count as gaps, so their delivered rows are not replayed even if a
	// previous resume pull was itself lost.
	var resumes []*scanCursor
	for key, cu := range sc.cursors {
		if _, live := sc.claims[key]; live {
			continue
		}
		resumes = append(resumes, cu)
		active = append(active, cu.path)
	}
	gaps := uncoveredPrefixes(sc.r, active)
	kind, pageSize, probe, desc, aggSpec := sc.kind, sc.pageSize, sc.probe, sc.desc, sc.agg
	if len(gaps) == 0 && len(resumes) == 0 {
		// Covered while the timer was in flight: the completion rule
		// just changed, so check it here — no further response may.
		if op.completionSatisfied() {
			fire := p.finishOpLocked(qid, op, true)
			p.mu.Unlock()
			fire()
			return
		}
		// Streams still active: keep watching them.
		p.mu.Unlock()
		p.armScanRetry(qid)
		return
	}
	sc.retries++ // only rounds that re-send spend the retry budget
	r := sc.r
	tc := op.tc
	tc.Flags |= trace.FlagRetry
	p.mu.Unlock()
	p.stats.scanRetries.Add(1)
	wb, wm := p.advertiseWindow()
	for _, cu := range resumes {
		p.route(cu.path, pageReq{QID: qid, Origin: p.id, Cont: cu.cont, WinBytes: wb, WinMsgs: wm, TC: tc})
	}
	for _, g := range gaps {
		p.handleRange(rangeMsg{
			QID: qid, Origin: p.id, Kind: kind,
			R: clipRangeToPrefix(r, g), Level: 0, Share: 0,
			Probe: probe, PageSize: pageSize, Desc: desc, Agg: aggSpec,
			TC: tc,
		}, 0)
	}
	p.armScanRetry(qid)
}

// contEqual reports whether two continuation tokens name the same
// page position (everything but the constant transport fields). An
// aggregated scan's position lives in the group-key cursor, so it
// participates too — successive group pages share the same key range.
func contEqual(a, b pageCont) bool {
	return a.Kind == b.Kind && a.SkipAtLo == b.SkipAtLo && a.Desc == b.Desc &&
		a.R.Lo.Equal(b.R.Lo) && a.R.Hi.Equal(b.R.Hi) && a.R.HiOpen == b.R.HiOpen &&
		a.Cursor.Equal(b.Cursor) &&
		(a.Agg == nil) == (b.Agg == nil) && a.AggAfter == b.AggAfter
}

// uncoveredPrefixes returns the minimal trie prefixes overlapping r
// that no covered partition path accounts for — the gaps a scan retry
// must re-shower. The recursion only descends while some covered path
// strictly extends the prefix, so it is bounded by the deepest
// answered partition.
func uncoveredPrefixes(r keys.Range, covered []keys.Key) []keys.Key {
	var out []keys.Key
	var rec func(prefix keys.Key)
	rec = func(prefix keys.Key) {
		if !r.OverlapsPrefix(prefix) {
			return
		}
		deeper := false
		for _, c := range covered {
			if prefix.HasPrefix(c) {
				return // wholly inside an answered partition
			}
			if c.HasPrefix(prefix) && c.Len() > prefix.Len() {
				deeper = true
			}
		}
		if !deeper {
			out = append(out, prefix)
			return
		}
		rec(prefix.Append(0))
		rec(prefix.Append(1))
	}
	rec(keys.Empty)
	return out
}

// clipRangeToPrefix intersects a query range with a trie prefix's key
// region, so a retry shower only revisits the missing gap.
func clipRangeToPrefix(r keys.Range, prefix keys.Key) keys.Range {
	out := keys.PrefixRange(prefix)
	if r.Lo.Compare(out.Lo) > 0 {
		out.Lo = r.Lo
	}
	if r.HiOpen && (!out.HiOpen || r.Hi.Compare(out.Hi) < 0) {
		out.Hi, out.HiOpen = r.Hi, true
	}
	return out
}
