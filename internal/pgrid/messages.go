package pgrid

import (
	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
)

// Message kinds, used for simnet accounting. The experiment harness
// separates maintenance traffic (exchange, gossip) from query traffic
// (route, range, response) through these labels.
const (
	KindRoute    = "pgrid.route"
	KindRange    = "pgrid.range"
	KindResponse = "pgrid.resp"
	KindAck      = "pgrid.ack"
	KindGossip   = "pgrid.gossip"
	KindAntiEnt  = "pgrid.antientropy"
	KindExchange = "pgrid.exchange"
	KindXferData = "pgrid.xfer"
	KindApp      = "pgrid.app"
)

// TotalShare is the share mass carried by a range/broadcast query;
// the origin knows the query has reached every overlapping partition
// when received shares sum to TotalShare.
const TotalShare = 1 << 30

// routeEnvelope carries a payload toward the peer responsible for
// Target. Hops counts forwarding steps for the logarithmic-routing
// experiments.
type routeEnvelope struct {
	Target keys.Key
	Hops   int
	Inner  any
}

func (e routeEnvelope) WireSize() int {
	s := e.Target.Len()/8 + 8
	if w, ok := e.Inner.(interface{ WireSize() int }); ok {
		s += w.WireSize()
	}
	return s
}

// insertReq asks the responsible peer to apply one index entry.
type insertReq struct {
	Entry  store.Entry
	QID    uint64 // 0 for fire-and-forget
	Origin simnet.NodeID
}

func (r insertReq) WireSize() int { return r.Entry.WireSize() + 12 }

// lookupReq asks the responsible peer for the entries at exactly Key.
type lookupReq struct {
	QID    uint64
	Origin simnet.NodeID
	Kind   uint8 // triple.IndexKind
	Key    keys.Key
}

func (r lookupReq) WireSize() int { return r.Key.Len()/8 + 16 }

// rangeMsg implements the shower algorithm: it fans out down the trie,
// reaching every peer whose partition overlaps R exactly once. Level is
// the trie depth already resolved; Share is this branch's portion of
// TotalShare.
type rangeMsg struct {
	QID    uint64
	Origin simnet.NodeID
	Kind   uint8
	R      keys.Range
	Level  int
	Share  int64
	Hops   int
	// Probe suppresses entry payloads: the peer replies with counts
	// only. Used by the cost model to sample selectivities cheaply.
	Probe bool
}

func (r rangeMsg) WireSize() int { return r.R.Lo.Len()/8 + r.R.Hi.Len()/8 + 32 }

// queryResp returns entries (or a count, for probes) to the origin.
// For range queries Share carries the branch mass; for lookups Share
// is TotalShare.
type queryResp struct {
	QID     uint64
	Entries []store.Entry
	Count   int
	Share   int64
	Hops    int
	From    simnet.NodeID
	Path    keys.Key // responding peer's path, for diagnostics
}

func (r queryResp) WireSize() int {
	s := 40
	for _, e := range r.Entries {
		s += e.WireSize()
	}
	return s
}

// ackMsg confirms an insert reached its responsible peer.
type ackMsg struct {
	QID  uint64
	Hops int
}

// gossipMsg pushes freshly written entries to replicas of the same
// partition.
type gossipMsg struct {
	Entries []store.Entry
}

func (g gossipMsg) WireSize() int {
	s := 8
	for _, e := range g.Entries {
		s += e.WireSize()
	}
	return s
}

// antiEntropyMsg carries a replica's full versioned state (facts and
// tombstones) for reconciliation; Reply requests the receiver's state
// back.
type antiEntropyMsg struct {
	Entries []store.Entry
	Reply   bool
}

func (a antiEntropyMsg) WireSize() int {
	s := 8
	for _, e := range a.Entries {
		s += e.WireSize()
	}
	return s
}

// exchangeMsg drives decentralized trie construction (bootstrap and
// merge): two peers compare paths, split or adopt complements, and
// swap routing references and data.
type exchangeMsg struct {
	Path     keys.Key
	Refs     [][]Ref // sender's routing table (pruned to relevant levels)
	Replicas []Ref
	// Data sent because the sender no longer covers its placement keys.
	Entries []store.Entry
	// Round trips a response exchange exactly once.
	IsReply bool
	// SplitBit is set when the sender has just split a shared path and
	// instructs the receiver to take the sibling side.
	SplitBit int
}

func (e exchangeMsg) WireSize() int {
	s := e.Path.Len()/8 + 16
	for _, ls := range e.Refs {
		s += len(ls) * 16
	}
	for _, en := range e.Entries {
		s += en.WireSize()
	}
	return s
}

// xferMsg ships entries to a peer after a split or responsibility
// change, outside the exchange round-trip.
type xferMsg struct {
	Entries []store.Entry
}

func (x xferMsg) WireSize() int {
	s := 8
	for _, e := range x.Entries {
		s += e.WireSize()
	}
	return s
}

// appMsg wraps application-level payloads (mutant query plans and their
// results). The overlay routes them like any other payload; the
// registered AppHandler interprets them.
type appMsg struct {
	Payload any
	Hops    int
}

func (a appMsg) WireSize() int {
	if w, ok := a.Payload.(interface{ WireSize() int }); ok {
		return w.WireSize() + 8
	}
	return 72
}
