package pgrid

import (
	"unistore/internal/agg"
	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/trace"
)

// aggWireSize sizes an optional aggregation spec rider.
func aggWireSize(sp *agg.Spec) int {
	if sp == nil {
		return 0
	}
	return sp.WireSize()
}

// Message kinds, used for simnet accounting. The experiment harness
// separates maintenance traffic (exchange, gossip) from query traffic
// (route, range, response) through these labels.
const (
	KindRoute       = "pgrid.route"
	KindRange       = "pgrid.range"
	KindResponse    = "pgrid.resp"
	KindAck         = "pgrid.ack"
	KindGossip      = "pgrid.gossip"
	KindGossipAck   = "pgrid.gossipack"
	KindAntiEnt     = "pgrid.antientropy"
	KindExchange    = "pgrid.exchange"
	KindXferData    = "pgrid.xfer"
	KindApp         = "pgrid.app"
	KindMultiLookup = "pgrid.mlookup"
	KindPage        = "pgrid.page"
	KindDigest      = "pgrid.digest"
	KindDigestPull  = "pgrid.digestpull"
	KindJoin        = "pgrid.join"
	KindLeave       = "pgrid.leave"
)

// TotalShare is the share mass carried by a range/broadcast query;
// the origin knows the query has reached every overlapping partition
// when received shares sum to TotalShare.
const TotalShare = 1 << 30

// routeEnvelope carries a payload toward the peer responsible for
// Target. Hops counts forwarding steps for the logarithmic-routing
// experiments. Spent carries legs the payload's journey already paid
// before this envelope existed (a mis-addressed probe being re-routed
// by its stale recipient): they extend the reported end-to-end hop
// count but are NOT charged to the serving span — the probe message
// itself is accounted by the span of the peer that re-routed it.
type routeEnvelope struct {
	Target keys.Key
	Hops   int
	Spent  int
	Inner  any
}

func (e routeEnvelope) WireSize() int {
	s := e.Target.Len()/8 + 8
	if w, ok := e.Inner.(interface{ WireSize() int }); ok {
		s += w.WireSize()
	}
	return s
}

// insertReq asks the responsible peer to apply one index entry. Seq
// identifies the entry within an acked insert operation, echoed in the
// ack so the origin's retry bookkeeping is per-entry exact.
type insertReq struct {
	Entry  store.Entry
	QID    uint64 // 0 for fire-and-forget
	Origin simnet.NodeID
	Seq    uint8
	// TC is the trace context (zero when tracing is off): the serving
	// peer records a span under TC.Parent and rides it home on the ack.
	TC trace.Ctx
}

func (r insertReq) WireSize() int { return r.Entry.WireSize() + 13 + r.TC.WireSize() }

// lookupReq asks the responsible peer for the entries at exactly Key.
// With Agg set the peer aggregates the matching entries and answers
// with per-group states instead of rows (the pushed-down form of a
// single-key aggregation).
type lookupReq struct {
	QID    uint64
	Origin simnet.NodeID
	Kind   uint8 // triple.IndexKind
	Key    keys.Key
	Agg    *agg.Spec
	// TC is the trace context (zero when tracing is off).
	TC trace.Ctx
}

func (r lookupReq) WireSize() int { return r.Key.Len()/8 + 16 + aggWireSize(r.Agg) + r.TC.WireSize() }

// multiLookupReq batches several exact-key probes of one query into a
// single message, sent directly to the peer the sender's routing cache
// believes responsible for all of them. The receiver answers the keys
// it covers in one batched queryResp (Probes = keys answered) and
// re-routes the rest as ordinary lookupReq envelopes — a stale cache
// degrades to normal routing, never to a wrong answer.
type multiLookupReq struct {
	QID    uint64
	Origin simnet.NodeID
	Kind   uint8 // triple.IndexKind
	Keys   []keys.Key
	// Agg, when set, asks the peer to aggregate the matching entries of
	// the keys it covers into group states (one batched state answer
	// instead of rows); mis-attributed keys re-route with the spec
	// attached, so a stale cache degrades to routed aggregation.
	Agg *agg.Spec
	// TC is the trace context (zero when tracing is off). Re-routed
	// keys carry a child context parented on the probed peer's span.
	TC trace.Ctx
}

func (r multiLookupReq) WireSize() int {
	s := 16 + aggWireSize(r.Agg) + r.TC.WireSize()
	for _, k := range r.Keys {
		s += k.Len()/8 + 2
	}
	return s
}

// rangeMsg implements the shower algorithm: it fans out down the trie,
// reaching every peer whose partition overlaps R exactly once. Level is
// the trie depth already resolved; Share is this branch's portion of
// TotalShare.
type rangeMsg struct {
	QID    uint64
	Origin simnet.NodeID
	Kind   uint8
	R      keys.Range
	Level  int
	Share  int64
	Hops   int
	// Probe suppresses entry payloads: the peer replies with counts
	// only. Used by the cost model to sample selectivities cheaply.
	Probe bool
	// PageSize bounds the entries per response: a serving peer with
	// more rows answers in pages, parking a continuation token in the
	// response for the origin to pull the next page with (0 = one
	// monolithic response). Set from the origin's Config.PageSize so
	// the whole shower pages uniformly.
	PageSize int
	// Desc serves (and pages) each partition's overlap in descending
	// key order, so a descending ranked scan streams pages instead of
	// buffering whole shards for reversal.
	Desc bool
	// Agg, when set, turns the scan into peer-side aggregation: each
	// overlapping partition matches its stored entries against the
	// spec's pattern, folds them into per-group partial states and
	// answers with those (paged by groups when PageSize is set) instead
	// of shipping rows.
	Agg *agg.Spec
	// WinBytes/WinMsgs advertise the ORIGIN's receive window for this
	// stream (flow.go): a serving peer shrinks its effective page so one
	// response fits WinBytes, making PageSize a cap rather than a
	// constant. 0 = no window (uncontrolled).
	WinBytes int
	WinMsgs  int
	// TC is the trace context (zero when tracing is off). Each shower
	// branch forwards a child context parented on the forwarder's span,
	// so the assembled trace mirrors the trie fan-out.
	TC trace.Ctx
}

func (r rangeMsg) WireSize() int {
	return r.R.Lo.Len()/8 + r.R.Hi.Len()/8 + 44 + aggWireSize(r.Agg) + r.TC.WireSize()
}

// pageCont is the continuation token of a paged range scan: everything
// the serving peer needs to produce the next page, echoed back verbatim
// by the origin so the server stays stateless. The cursor is the key
// of the last entry sent (R.Lo resumes there, inclusive) plus how many
// entries of that key's bucket went out already — key-aligned, so a
// store mutation between pulls can only perturb the one bucket the
// cursor sits in, never shift the rest of the scan. Share is released
// only with the final page, which keeps the origin's completion
// accounting exact across any number of pages.
type pageCont struct {
	Kind uint8
	R    keys.Range
	// SkipAtLo is how many entries stored at exactly the cursor key
	// were already sent (0 on the first page, whose bounds are the
	// range's own). Ascending scans cursor on R.Lo; descending scans
	// cursor on the key just below R.Hi.
	SkipAtLo int
	Share    int64
	PageSize int
	Hops     int
	// Desc pages the partition in descending key order; the cursor
	// then lives at the top of R instead of the bottom, carried
	// explicitly in Cursor (R.Lo cannot double as it the way ascending
	// pages reuse the range bound).
	Desc   bool
	Cursor keys.Key
	// Agg marks an aggregation continuation: the server recomputes its
	// partition's group table over R and serves the next PageSize
	// groups after AggAfter (group-key cursor, "" = first page). Like
	// the row cursor, the token is stateless and any replica of the
	// partition can serve the next page.
	Agg      *agg.Spec
	AggAfter string
	// StreamPath is the serving partition's path at the moment the
	// stream began — the stream's identity under live splits and
	// merges. A server whose partition split mid-stream clips the
	// continuation to the half it kept and deepens this field, telling
	// the origin exactly which region the stream still covers; one that
	// widened in a merge keeps it, so a continuation never serves
	// outside the partition it started in.
	StreamPath keys.Key
}

func (c pageCont) WireSize() int {
	return c.R.Lo.Len()/8 + c.R.Hi.Len()/8 + c.Cursor.Len()/8 + c.StreamPath.Len()/8 + 29 +
		aggWireSize(c.Agg) + len(c.AggAfter)
}

// pageReq pulls the next page of a paged range scan, sent directly to
// the serving peer. The origin only issues it while the operation is
// still pending — an early-terminated query never pulls another page.
type pageReq struct {
	QID    uint64
	Origin simnet.NodeID
	Cont   pageCont
	// WinBytes/WinMsgs refresh the origin's advertised receive window
	// on every pull, so the server sizes the next page to what the
	// receiver can absorb NOW. 0 = no window.
	WinBytes int
	WinMsgs  int
	// TC is the trace context (zero when tracing is off), parented on
	// the span that produced the continuation — pages chain in the tree.
	TC trace.Ctx
}

func (r pageReq) WireSize() int { return r.Cont.WireSize() + 20 + r.TC.WireSize() }

// queryResp returns entries (or a count, for probes) to the origin.
// For range queries Share carries the branch mass; for lookups Share
// is TotalShare. From and Path identify the responder — the origin's
// routing cache learns the partition→node map from them.
type queryResp struct {
	QID     uint64
	Entries []store.Entry
	Count   int
	Share   int64
	Hops    int
	From    simnet.NodeID
	Path    keys.Key // responding peer's path (routing-cache learning)
	// Replicas is the responder's replica group: the origin's routing
	// cache learns the whole owner set of the partition, which is what
	// the load-balanced replica chooser and the failover retries pick
	// from.
	Replicas []Ref
	// Probes is how many batched lookup keys this response resolves
	// (0 means 1, the unbatched compatibility default).
	Probes int
	// ProbeKeys lists the exact lookup keys this response answers.
	// Key-tracked operations (probe groups with failover) mark these
	// answered, so a hedged duplicate response can never double-count
	// completion or re-deliver rows.
	ProbeKeys []keys.Key
	// Final marks a response that completes its partition's branch of
	// a range scan (a monolithic answer, or the last page of a paged
	// one). The origin's coverage bookkeeping — which partitions have
	// fully answered, consulted by the churn-failover re-shower — is
	// fed only by final responses.
	Final bool
	// Cont, when non-nil, marks a partial page of a range scan: the
	// origin echoes it back in a pageReq to pull the next page. Share
	// on a partial page is 0; the final page carries the branch mass.
	Cont *pageCont
	// AggData carries encoded partial-aggregate states (agg.State) in
	// place of Entries when the operation pushed an aggregation down;
	// AggGroups is the group count it encodes. A page of an aggregated
	// scan is a bounded batch of group states, exactly as a row page is
	// a bounded batch of entries.
	AggData   []byte
	AggGroups int
	// ScanPath is the partition a range-scan response belongs to when
	// that differs from the responder's CURRENT path: live splits and
	// merges move a server mid-stream, and while Path must stay current
	// (it feeds routing-cache learning), the origin's stream claims,
	// cursors and coverage must key on the stream's partition. Empty
	// means Path.
	ScanPath keys.Key
	// WinBytes/WinMsgs piggyback the RESPONDER's receive window: the
	// origin's flow table records it per node, so later bulk sends
	// toward this peer (insert fan-out, state shipping) are credit-
	// gated against what the peer said it can absorb, and the window
	// EWMA feeds the replica chooser's pressure signal. 0 = no window.
	WinBytes int
	WinMsgs  int
	// TS piggybacks the serving peer's completed span home (nil when
	// tracing is off) — tracing adds bytes to responses, never messages.
	TS *trace.WireSpan
}

func (r queryResp) WireSize() int {
	s := 49 + len(r.Replicas)*10 + len(r.AggData) + r.ScanPath.Len()/8 + r.TS.WireSize()
	for _, k := range r.ProbeKeys {
		s += k.Len()/8 + 2
	}
	if r.Cont != nil {
		s += r.Cont.WireSize()
	}
	for _, e := range r.Entries {
		s += e.WireSize()
	}
	return s
}

// ackMsg confirms an insert reached its responsible peer; Seq echoes
// the entry it acknowledges. WinBytes/WinMsgs piggyback the acking
// peer's receive window (flow.go): the origin releases the entry's
// credit AND learns how much more this replica is willing to absorb —
// the sliding-window ack of the write path. 0 = no window.
type ackMsg struct {
	QID      uint64
	Hops     int
	Seq      uint8
	WinBytes int
	WinMsgs  int
	// TS piggybacks the applying peer's insert span home (nil when
	// tracing is off).
	TS *trace.WireSpan
}

func (a ackMsg) WireSize() int { return 21 + a.TS.WireSize() }

// gossipMsg pushes freshly written entries to replicas of the same
// partition. AckID, when nonzero, asks the replica for a gossipAckMsg
// echoing it — the credit release of a flow-controlled push; zero
// (flow control off) keeps the push fire-and-forget.
type gossipMsg struct {
	Entries []store.Entry
	AckID   uint64
}

func (g gossipMsg) WireSize() int {
	s := 16
	for _, e := range g.Entries {
		s += e.WireSize()
	}
	return s
}

// gossipAckMsg settles one flow-controlled gossip push: ID echoes the
// gossipMsg's AckID (releasing the sender's charge) and the replica's
// fresh receive window rides along like on every other ack.
type gossipAckMsg struct {
	ID       uint64
	WinBytes int
	WinMsgs  int
}

func (gossipAckMsg) WireSize() int { return 20 }

// antiEntropyMsg carries versioned replica state (facts and
// tombstones) for reconciliation; Reply requests the receiver's state
// back. The periodic digest protocol uses it only as the entry carrier
// of pulled buckets (Reply false, chunked to Config.PageSize); the
// full-state form survives as the initial sync of a freshly formed
// replica pair (becomeReplicaOf).
type antiEntropyMsg struct {
	Entries []store.Entry
	Reply   bool
	// More names the pulled buckets the responder did NOT finish
	// flushing because the puller's advertised window filled up. The
	// puller re-pulls exactly these buckets with a refreshed Have set
	// (entries just received are in it, so they do not ship twice) and
	// a fresh window — the pull loop of the windowed anti-entropy
	// transfer. Set only on the last page of a window's batch.
	More []string
}

func (a antiEntropyMsg) WireSize() int {
	s := 8
	for _, e := range a.Entries {
		s += e.WireSize()
	}
	for _, b := range a.More {
		s += len(b) + 2
	}
	return s
}

// bucketSum summarizes one digest bucket (a key-prefix slice of one
// index) without shipping its entries: live+tombstone count, the
// highest version seen, and an order-independent hash of every
// (fact, version, deleted) triple. Two replicas whose summaries match
// hold identical bucket state with overwhelming probability; a
// mismatch names exactly which bucket to pull.
type bucketSum struct {
	Count      int
	MaxVersion uint64
	Hash       uint64
}

// digestMsg opens (Reply true) or answers (Reply false) an
// anti-entropy round: per-bucket version summaries of the sender's
// whole store, a few dozen bytes per bucket instead of the full entry
// payload the pre-digest protocol shipped every round.
type digestMsg struct {
	Buckets map[string]bucketSum
	Reply   bool
}

func (d digestMsg) WireSize() int {
	s := 9
	for b := range d.Buckets {
		s += len(b) + 20
	}
	return s
}

// digestPullMsg requests the entries of the named buckets — the ones
// whose summaries differed. Have carries, per requested bucket, the
// identity hashes (factHash: kind, fact, version, deleted) of every
// entry the PULLER already holds there: eight bytes per entry against
// the ~hundred shipping one costs. The responder answers with only the
// entries whose hash the puller lacks — the exact set difference — so
// a restart catch-up pays for the writes it missed, not for the bucket
// size. Responses arrive as antiEntropyMsg pages of at most
// Config.PageSize entries, reusing the paging machinery's bound.
type digestPullMsg struct {
	Buckets []string
	Have    map[string][]uint64
	// WinBytes/WinMsgs advertise the puller's receive window: the
	// responder flushes at most WinMsgs anti-entropy pages totalling at
	// most WinBytes entry bytes, then stops and names the unfinished
	// buckets in antiEntropyMsg.More for the puller to re-pull — the
	// puller paces the transfer, not the sender. 0 = no window.
	WinBytes int
	WinMsgs  int
}

func (d digestPullMsg) WireSize() int {
	s := 16
	for _, b := range d.Buckets {
		s += len(b) + 2
	}
	for _, hs := range d.Have {
		s += 8 * len(hs)
	}
	return s
}

// exchangeMsg drives decentralized trie construction (bootstrap and
// merge): two peers compare paths, split or adopt complements, and
// swap routing references and data.
type exchangeMsg struct {
	Path     keys.Key
	Refs     [][]Ref // sender's routing table (pruned to relevant levels)
	Replicas []Ref
	// Data sent because the sender no longer covers its placement keys.
	Entries []store.Entry
	// Round trips a response exchange exactly once.
	IsReply bool
	// SplitBit is set when the sender has just split a shared path and
	// instructs the receiver to take the sibling side.
	SplitBit int
}

func (e exchangeMsg) WireSize() int {
	s := e.Path.Len()/8 + 16
	for _, ls := range e.Refs {
		s += len(ls) * 16
	}
	for _, en := range e.Entries {
		s += en.WireSize()
	}
	return s
}

// xferMsg ships entries to a peer after a split or responsibility
// change, outside the exchange round-trip.
type xferMsg struct {
	Entries []store.Entry
}

func (x xferMsg) WireSize() int {
	s := 8
	for _, e := range x.Entries {
		s += e.WireSize()
	}
	return s
}

// joinReq asks an existing peer to adopt the sender into its replica
// group — the first half of live membership growth (membership.go).
// The target answers with a joinAck (trie position and membership),
// notifies its existing replicas with memberMsg, and — unless NoState
// says the joiner recovered local state from disk — streams its full
// state to the joiner as chunked anti-entropy pages. A NoState joiner
// instead catches up via digest anti-entropy (delta pages), so rejoin
// cost scales with the writes it missed, not with the partition size.
type joinReq struct {
	NoState bool
}

func (joinReq) WireSize() int { return 4 }

// joinAck carries the target's trie position to a joining peer: path,
// routing references and the replica group (target included). The
// joiner adopts all three and becomes a live replica of the partition.
// Catchup echoes joinReq.NoState: no full-state sync is coming, run a
// digest round instead.
type joinAck struct {
	Path     keys.Key
	Refs     [][]Ref
	Replicas []Ref
	Catchup  bool
}

func (a joinAck) WireSize() int {
	s := a.Path.Len()/8 + 8 + len(a.Replicas)*10
	for _, ls := range a.Refs {
		s += len(ls) * 10
	}
	return s
}

// memberMsg tells the existing replicas of a partition about a freshly
// joined member, so writes gossip to the newcomer immediately instead
// of waiting for an anti-entropy round to discover it.
type memberMsg struct{ Member Ref }

func (m memberMsg) WireSize() int { return m.Member.Path.Len()/8 + 10 }

// leaveMsg announces a graceful departure to the sender's replica
// group: each receiver drops the leaver from its membership and
// applies the handed-off entries (chunked like anti-entropy pages), so
// a write only the leaver had seen survives the departure.
type leaveMsg struct {
	Entries []store.Entry
}

func (l leaveMsg) WireSize() int {
	s := 8
	for _, e := range l.Entries {
		s += e.WireSize()
	}
	return s
}

// appMsg wraps application-level payloads (mutant query plans and their
// results). The overlay routes them like any other payload; the
// registered AppHandler interprets them.
type appMsg struct {
	Payload any
	Hops    int
}

func (a appMsg) WireSize() int {
	if w, ok := a.Payload.(interface{ WireSize() int }); ok {
		return w.WireSize() + 8
	}
	return 72
}
