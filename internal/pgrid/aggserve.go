package pgrid

import (
	"sort"

	"unistore/internal/agg"
	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/trace"
	"unistore/internal/triple"
)

// This file is the serving side of in-network aggregation: a peer
// whose partition overlaps an aggregated range (or owns a probed key)
// matches its stored entries against the spec's pattern, folds them
// into per-group partial states, and ships those instead of rows. A
// page of an aggregated scan is a bounded batch of group states served
// in group-key order behind a stateless cursor, so the whole paging,
// claim-dedup and coverage-retry machinery of row scans applies
// unchanged — states are per-partition idempotent, which is what keeps
// failover exact.

// aggStates builds this peer's partial states for the spec over one
// key range of one index.
func (p *Peer) aggStates(kind triple.IndexKind, r keys.Range, spec *agg.Spec) []agg.State {
	tbl := agg.NewTable(spec)
	p.store.Scan(kind, r, func(e store.Entry) bool {
		tbl.AddTriple(e.Triple)
		return true
	})
	return tbl.States()
}

// serveAggPage answers one page of an aggregated range scan: the next
// cont.PageSize group states (all of them with paging off) after the
// cont.AggAfter group-key cursor. The table is recomputed per pull —
// the server keeps no per-scan state, so any replica of the partition
// can serve a resumed continuation, exactly like row pages.
//
// winBytes is the origin's advertised byte window: the page halves its
// group count until the encoded state blob fits (one group always
// ships — a window smaller than a single state degrades to
// group-at-a-time paging, never to silence). Shrinking is exact: the
// dropped groups reappear behind the tightened AggAfter cursor.
func (p *Peer) serveAggPage(qid uint64, origin simnet.NodeID, cont pageCont, winBytes int, ws *trace.WireSpan, traceID uint64) {
	if cont.PageSize > 0 {
		p.stats.pagesServed.Add(1)
	}
	states := p.aggStates(triple.IndexKind(cont.Kind), cont.R, cont.Agg)
	if cont.AggAfter != "" {
		i := sort.Search(len(states), func(i int) bool {
			return states[i].GroupKey() > cont.AggAfter
		})
		states = states[i:]
	}
	resp := queryResp{QID: qid, Hops: cont.Hops}
	p.stampResp(&resp)
	resp.ScanPath = cont.StreamPath
	page := states
	more := false
	if cont.PageSize > 0 && len(states) > cont.PageSize {
		page = states[:cont.PageSize]
		more = true
	}
	blob := agg.EncodeStates(page)
	for winBytes > 0 && len(blob) > winBytes && len(page) > 1 {
		page = page[:(len(page)+1)/2]
		more = true
		blob = agg.EncodeStates(page)
	}
	resp.AggData = blob
	resp.AggGroups = len(page)
	resp.Count = len(page)
	if more {
		next := cont
		next.AggAfter = page[len(page)-1].GroupKey()
		resp.Cont = &next
	} else {
		resp.Share = cont.Share
		resp.Final = true
	}
	resp.TS = p.finishSpan(ws, traceID, resp.Count)
	p.net.Send(p.id, origin, KindResponse, resp)
}

// aggProbeResp fills a probe response with the aggregated form of the
// given entries (the lookup and multi-lookup pushdown path).
func aggProbeResp(resp *queryResp, spec *agg.Spec, entries []store.Entry) {
	tbl := agg.NewTable(spec)
	for _, e := range entries {
		tbl.AddTriple(e.Triple)
	}
	states := tbl.States()
	resp.AggData = agg.EncodeStates(states)
	resp.AggGroups = len(states)
	resp.Count = len(states)
}

// --- Origin-side operations ---------------------------------------------------

// RangeQueryAgg runs the shower over r with the aggregation pushed to
// the serving peers: each overlapping partition answers with its
// per-group partial states (paged by Config.PageSize groups), streamed
// to onGroups as they arrive. The coordinator merges them — states are
// mergeable in any order, and the scan's claim/coverage failover keeps
// each partition's contribution exactly-once, so the merge is exact
// even under churn. The final OpResult carries counts only.
func (p *Peer) RangeQueryAgg(kind triple.IndexKind, r keys.Range, spec *agg.Spec, onGroups func([]agg.State), cb func(OpResult), opts ...OpOption) *Handle {
	qid, op := p.newOp(TotalShare, 0, trace.OpRange, cb, opts...)
	p.mu.Lock()
	op.aggSpec = spec
	op.onAgg = onGroups
	op.scan = &scanState{kind: uint8(kind), r: r, pageSize: p.cfg.PageSize, agg: spec}
	p.mu.Unlock()
	wb, wm := p.advertiseWindow()
	msg := rangeMsg{QID: qid, Origin: p.id, Kind: uint8(kind), R: r,
		Level: 0, Share: TotalShare, PageSize: p.cfg.PageSize, Agg: spec,
		WinBytes: wb, WinMsgs: wm, TC: op.tc}
	p.armScanRetry(qid)
	p.handleRange(msg, 0)
	return &Handle{peer: p, op: op, qid: qid}
}

// LookupAgg is Lookup with the aggregation pushed to the owning peer:
// the responsible replica folds the key's entries into group states
// and answers with those. It rides the same key-tracked probe path as
// Lookup — cached owner sets, load-balanced replica choice, hedged
// failover — so a dead or slow owner degrades to a sibling or the
// routed path, never to a wrong answer.
func (p *Peer) LookupAgg(kind triple.IndexKind, k keys.Key, spec *agg.Spec, onGroups func([]agg.State), cb func(OpResult), opts ...OpOption) *Handle {
	qid, op := p.newOp(0, 1, trace.OpLookup, cb, opts...)
	p.mu.Lock()
	op.probeWant = map[string]bool{k.String(): true}
	op.probeKind = uint8(kind)
	op.aggSpec = spec
	op.onAgg = onGroups
	p.mu.Unlock()
	p.dispatchProbes(qid, op, uint8(kind), []keys.Key{k})
	return &Handle{peer: p, op: op, qid: qid}
}
