package pgrid

import (
	"fmt"
	"testing"
	"time"

	"unistore/internal/keys"
	"unistore/internal/triple"
)

// TestRouteCacheLearnsAndGoesDirect: repeat probes for the same region
// must hit the cache and reach the responsible peer in one hop.
func TestRouteCacheLearnsAndGoesDirect(t *testing.T) {
	net := newNet(51)
	peers := BuildBalanced(net, 32, 1, DefaultConfig())
	for i := 0; i < 64; i++ {
		peers[i%32].InsertTriple(triple.TN(fmt.Sprintf("rc%02d", i), "age", float64(i)), 1)
	}
	net.Run()

	q := peers[0]
	key := triple.AVKey("age", triple.N(7))
	cold := q.LookupSync(triple.ByAV, key)
	if !cold.Complete || len(cold.Entries) != 1 {
		t.Fatalf("cold lookup: %+v", cold)
	}
	if q.RouteCacheSize() == 0 {
		t.Fatal("response did not populate the routing cache")
	}
	hitsBefore := q.Stats().RouteCacheHits
	msgsBefore := net.Stats().MessagesSent
	warm := q.LookupSync(triple.ByAV, key)
	if !warm.Complete || len(warm.Entries) != 1 {
		t.Fatalf("warm lookup: %+v", warm)
	}
	warmMsgs := net.Stats().MessagesSent - msgsBefore
	if q.Stats().RouteCacheHits <= hitsBefore {
		t.Error("warm lookup did not use the cache")
	}
	if warmMsgs > 2 {
		t.Errorf("warm cached lookup cost %d messages, want ≤ 2 (request + response)", warmMsgs)
	}
	if warm.Hops > 1 {
		t.Errorf("warm cached lookup took %d hops, want 1", warm.Hops)
	}
}

// TestRouteCacheFallbackOnDeadOwner: a dead primary owner must fail
// over to the cached sibling replica without giving up the direct fast
// path; once EVERY cached owner of the partition is dead, the entry is
// invalidated at send time and the probe still succeeds through normal
// routing (replicated partitions keep the data reachable).
func TestRouteCacheFallbackOnDeadOwner(t *testing.T) {
	net := newNet(52)
	peers := BuildBalanced(net, 16, 2, DefaultConfig())
	for i := 0; i < 32; i++ {
		peers[i%len(peers)].InsertTriple(triple.TN(fmt.Sprintf("fd%02d", i), "age", float64(i)), 1)
	}
	net.Run()

	q := peers[0]
	key := triple.AVKey("age", triple.N(11))
	cold := q.LookupSync(triple.ByAV, key)
	if !cold.Complete || len(cold.Entries) != 1 {
		t.Fatalf("cold lookup: %+v", cold)
	}
	if q.RouteCacheOwners(key) < 2 {
		t.Fatalf("response did not teach the replica set (owners %d)", q.RouteCacheOwners(key))
	}
	// Kill the peer that answered; the owner set still names its live
	// sibling, so the follow-up probe stays direct — no invalidation.
	q.mu.RLock()
	var dead Ref
	for _, s := range q.cache.entries {
		dead = s.owners[0].Ref
	}
	q.mu.RUnlock()
	net.Kill(dead.ID)

	hitsBefore := q.Stats().RouteCacheHits
	again := q.LookupSync(triple.ByAV, key)
	if !again.Complete || len(again.Entries) != 1 {
		t.Fatalf("lookup after owner death: %+v", again)
	}
	if q.Stats().RouteCacheHits <= hitsBefore {
		t.Error("dead primary did not fail over through the cached replica set")
	}

	// Strip the owner set down to the corpse (simulating a cache that
	// never learned the sibling): the send-time fallback must now
	// invalidate the entry and the probe must still resolve via prefix
	// routing to the live replica.
	q.mu.Lock()
	for _, s := range q.cache.entries {
		if s.path.Len() > 0 && key.HasPrefix(s.path) {
			for _, o := range s.owners {
				if o.ID == dead.ID {
					s.owners = []ownerInfo{o}
					break
				}
			}
		}
	}
	q.mu.Unlock()
	invBefore := q.Stats().RouteCacheInvalidations
	final := q.LookupSync(triple.ByAV, key)
	if !final.Complete || len(final.Entries) != 1 {
		t.Fatalf("lookup after owner-set death: %+v", final)
	}
	if q.Stats().RouteCacheInvalidations <= invBefore {
		t.Error("dead owner set was not invalidated")
	}
}

// TestRouteCacheSurvivesChurn is the merge/late-join churn scenario:
// warm caches against one overlay, merge a second overlay in (which
// splits partitions and moves data), and verify that queries through
// the now-stale caches still return correct results — stale entries
// repair through the route-failure fallback and response learning.
func TestRouteCacheSurvivesChurn(t *testing.T) {
	net := newNet(53)
	var data []triple.Triple
	for i := 0; i < 40; i++ {
		data = append(data, triple.TN(chOID(i), "age", float64(i)))
	}
	// Adapt the trie to the OID index keys: their uniform fnv bytes
	// split the OID region across most of the 16 peers, so the warmed
	// cache holds a real partition map (a shallow balanced trie would
	// put the whole region on one peer and the test would prove
	// nothing).
	var samples []keys.Key
	for _, tr := range data {
		samples = append(samples, triple.IndexKey(tr, triple.ByOID))
	}
	a := BuildAdaptive(net, 16, 1, samples, DefaultConfig())
	for i, tr := range data {
		a[i%len(a)].InsertTriple(tr, 1)
	}
	net.Run()

	// Warm the cache of a querying peer across many partitions.
	q := a[0]
	lookupAll := func(label string) {
		t.Helper()
		for i := 0; i < 40; i++ {
			key := triple.OIDKey(chOID(i))
			res := q.LookupSync(triple.ByOID, key)
			if !res.Complete || len(res.Entries) != 1 {
				t.Fatalf("%s: lookup ch%02d got %+v", label, i, res)
			}
		}
	}
	lookupAll("pre-churn")
	if q.RouteCacheSize() < 2 {
		t.Fatalf("cache not warmed across partitions (size %d)", q.RouteCacheSize())
	}

	// Churn: an independent overlay merges in. Paths deepen, partitions
	// split, entries re-home — the warmed partition map is now stale.
	b := BuildBalanced(net, 8, 1, DefaultConfig())
	RunMerge(net, a, b, 6)
	net.RunFor(30 * time.Second)
	net.Settle()
	if err := CheckTrie(append(append([]*Peer{}, a...), b...)); err != nil {
		t.Fatalf("merged trie invalid: %v", err)
	}

	// Same queries through the stale cache must still be answered
	// correctly (direct sends that miss forward onward; responses
	// replace the stale entries).
	invBefore := q.Stats().RouteCacheInvalidations
	lookupAll("post-churn")
	lookupAll("post-churn-rewarmed")
	if q.RouteCacheSize() == 0 {
		t.Error("cache never re-learned the merged trie")
	}
	t.Logf("churn: cache size %d, invalidations %d → %d", q.RouteCacheSize(),
		invBefore, q.Stats().RouteCacheInvalidations)
}

// TestRouteCacheStaleEntryRepairs: a cached entry pointing at a peer
// that is NOT responsible (the partition moved under it) must still
// deliver — the wrong peer forwards the envelope onward — and the
// response must repair the cache so the next probe goes direct again.
func TestRouteCacheStaleEntryRepairs(t *testing.T) {
	net := newNet(54)
	peers := BuildBalanced(net, 32, 1, DefaultConfig())
	for i := 0; i < 64; i++ {
		peers[i%32].InsertTriple(triple.TN(fmt.Sprintf("st%02d", i), "age", float64(i)), 1)
	}
	net.Run()

	q := peers[0]
	key := triple.AVKey("age", triple.N(5))
	var owner, wrong *Peer
	for _, p := range peers {
		if p.Responsible(key) {
			owner = p
		} else if p != q && wrong == nil {
			wrong = p
		}
	}
	if owner == nil || wrong == nil {
		t.Fatal("topology did not yield owner and non-owner")
	}
	// Poison the cache: claim the wrong peer owns the key's partition —
	// exactly what churn leaves behind when a partition moves.
	q.mu.Lock()
	q.cache.learnLocked(owner.Path(), Ref{ID: wrong.ID(), Path: owner.Path()})
	q.mu.Unlock()

	res := q.LookupSync(triple.ByAV, key)
	if !res.Complete || len(res.Entries) != 1 {
		t.Fatalf("lookup through stale entry: %+v", res)
	}
	if res.Hops < 2 {
		t.Errorf("stale direct send resolved in %d hops; the fallback leg should add at least one", res.Hops)
	}
	q.mu.RLock()
	ref, ok := q.cache.lookupLocked(key)
	q.mu.RUnlock()
	if !ok || ref.ID != owner.ID() {
		t.Errorf("cache not repaired: %+v ok=%v want owner %d", ref, ok, owner.ID())
	}
	repaired := q.LookupSync(triple.ByAV, key)
	if repaired.Hops > 1 {
		t.Errorf("post-repair lookup took %d hops, want 1", repaired.Hops)
	}
}

// TestRouteCacheLearnReplacesSplitEntries: learning a deeper path must
// drop cached entries at strict prefixes (the partition split).
func TestRouteCacheLearnReplacesSplitEntries(t *testing.T) {
	c := newRouteCache()
	p01 := keys.FromBits("01")
	c.learnLocked(p01, Ref{ID: 1, Path: p01})
	if _, ok := c.lookupLocked(keys.FromBits("0110")); !ok {
		t.Fatal("prefix entry must match extensions")
	}
	p011 := keys.FromBits("011")
	if inv := c.learnLocked(p011, Ref{ID: 2, Path: p011}); inv != 1 {
		t.Fatalf("split learn invalidated %d entries, want 1", inv)
	}
	if _, ok := c.lookupLocked(keys.FromBits("0100")); ok {
		t.Error("stale pre-split entry must be gone")
	}
	if r, ok := c.lookupLocked(keys.FromBits("0110")); !ok || r.ID != 2 {
		t.Errorf("post-split lookup = %+v, %v", r, ok)
	}
}

// chOID names the churn-test facts with a varying first character:
// FNV's avalanche is weak in the high bytes for strings differing only
// at the tail, and the OID index places by the hash's high bytes — a
// leading difference is what actually spreads the keys.
func chOID(i int) string { return fmt.Sprintf("%c-ch%02d", 'a'+i%26, i) }
