package pgrid

import (
	"fmt"
	"testing"
	"time"

	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/trace"
	"unistore/internal/triple"
)

// inflightTarget returns the destination of the single message
// currently in flight from origin q (the probe whose loss the failover
// tests engineer).
func inflightTarget(net *simnet.Network, peers []*Peer, q *Peer) (simnet.NodeID, bool) {
	for _, p := range peers {
		if p != q && net.Load(p.ID()) > 0 {
			return p.ID(), true
		}
	}
	return 0, false
}

// loadReplicated builds an n-partition × replicas overlay with one
// "age" fact per i in [0, facts).
func loadReplicated(seed int64, n, replicas, facts int, cfg Config) (*simnet.Network, []*Peer) {
	net := newNet(seed)
	peers := BuildBalanced(net, n, replicas, cfg)
	for i := 0; i < facts; i++ {
		peers[i%len(peers)].InsertTriple(triple.TN(fmt.Sprintf("rp%02d", i), "age", float64(i)), 1)
	}
	net.Run()
	return net, peers
}

// TestProbeHedgesToSiblingReplica: a probe whose request is swallowed
// by the primary's death mid-flight must be hedged to the cached
// sibling replica after the deadline and still complete — with a
// bounded number of retry messages.
func TestProbeHedgesToSiblingReplica(t *testing.T) {
	net, peers := loadReplicated(61, 16, 2, 32, DefaultConfig())
	q := peers[0]
	key := triple.AVKey("age", triple.N(9))
	cold := q.LookupSync(triple.ByAV, key)
	if !cold.Complete || len(cold.Entries) != 1 {
		t.Fatalf("cold lookup: %+v", cold)
	}
	if q.RouteCacheOwners(key) < 2 {
		t.Fatalf("owner set not learned: %d", q.RouteCacheOwners(key))
	}
	// Issue the warm probe and kill its target while the request is in
	// flight: the request is dropped at delivery, so only the hedge
	// timer can save the operation.
	msgsBefore := net.Stats().MessagesSent
	h := q.Lookup(triple.ByAV, key, nil)
	victim, ok := inflightTarget(net, peers, q)
	if !ok {
		t.Fatal("warm probe did not go direct")
	}
	net.Kill(victim)
	res := h.Wait(0)
	if !res.Complete || len(res.Entries) != 1 {
		t.Fatalf("hedged lookup: %+v", res)
	}
	if q.Stats().ProbeRetries == 0 {
		t.Error("probe was not hedged")
	}
	if msgs := net.Stats().MessagesSent - msgsBefore; msgs > 6 {
		t.Errorf("hedged probe cost %d messages, want bounded (≤6)", msgs)
	}
	if q.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", q.PendingOps())
	}
}

// TestMultiLookupFailoverExactCompletion: killing a batched probe's
// target mid-flight must neither drop nor double-count keys — the
// operation completes with exactly one response per distinct key even
// though the hedge resend races late originals.
func TestMultiLookupFailoverExactCompletion(t *testing.T) {
	net, peers := loadReplicated(62, 16, 2, 48, DefaultConfig())
	q := peers[0]
	var ks []keys.Key
	for i := 0; i < 12; i++ {
		ks = append(ks, triple.AVKey("age", triple.N(float64(i))))
	}
	// Warm the owner sets for every key.
	for _, k := range ks {
		if res := q.LookupSync(triple.ByAV, k); !res.Complete || len(res.Entries) != 1 {
			t.Fatalf("warmup %s: %+v", k, res)
		}
	}
	// Kill one cached primary mid-flight.
	q.mu.RLock()
	var victim simnet.NodeID
	for _, s := range q.cache.entries {
		if s.path.Len() > 0 && ks[0].HasPrefix(s.path) {
			victim = s.owners[0].ID
		}
	}
	q.mu.RUnlock()
	h := q.MultiLookup(triple.ByAV, ks, nil)
	net.Kill(victim)
	res := h.Wait(0)
	if !res.Complete {
		t.Fatalf("multi-lookup under churn did not complete: %+v", res)
	}
	if res.Responses != len(ks) {
		t.Errorf("responses = %d, want exactly %d (per-key tracking)", res.Responses, len(ks))
	}
	got := map[string]int{}
	for _, e := range res.Entries {
		got[e.Triple.OID]++
	}
	if len(got) != len(ks) {
		t.Errorf("distinct facts = %d, want %d", len(got), len(ks))
	}
	for oid, n := range got {
		if n != 1 {
			t.Errorf("fact %s delivered %d times, want once", oid, n)
		}
	}
	if q.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", q.PendingOps())
	}
}

// TestScanCoverageRetryUnderChurn: a range scan whose branch envelope
// dies with a first-hop peer must re-shower the missing partitions and
// still return every fact exactly once (the covered-partition dedup).
func TestScanCoverageRetryUnderChurn(t *testing.T) {
	net, peers := loadReplicated(63, 16, 2, 64, DefaultConfig())
	q := peers[0]
	r := triple.AVPrefixRange("age")
	// Start the scan, then kill the in-flight branch targets before
	// delivery (at most one replica per partition; never the origin).
	h := q.RangeQuery(triple.ByAV, r, false, nil)
	byPath := map[string]bool{}
	killed := 0
	for _, p := range peers {
		if p == q || killed >= 3 {
			continue
		}
		if net.Load(p.ID()) > 0 && !byPath[p.Path().String()] {
			byPath[p.Path().String()] = true
			net.Kill(p.ID())
			killed++
		}
	}
	if killed == 0 {
		t.Skip("no branch targets in flight at kill time")
	}
	res := h.Wait(0)
	if !res.Complete {
		t.Fatalf("scan under churn did not complete: %+v", res)
	}
	if q.Stats().ScanRetries == 0 {
		t.Error("scan was never re-showered")
	}
	got := map[string]bool{}
	for _, e := range res.Entries {
		got[e.Triple.OID] = true
	}
	if len(got) != 64 {
		t.Errorf("scan returned %d distinct facts, want 64", len(got))
	}
	if q.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", q.PendingOps())
	}
}

// TestScanStreamClaimDropsDuplicateStream: the first responder for a
// partition owns its stream; a concurrent stream of the same partition
// from a sibling replica (a retry racing a slow-but-alive original)
// must be dropped whole — pages included — so rows never duplicate.
func TestScanStreamClaimDropsDuplicateStream(t *testing.T) {
	net := newNet(69)
	peers := BuildBalanced(net, 4, 1, DefaultConfig())
	q := peers[0]
	r := triple.AVPrefixRange("age")
	qid, op := q.newOp(TotalShare, 0, trace.OpRange, nil)
	q.mu.Lock()
	op.scan = &scanState{kind: uint8(triple.ByAV), r: r}
	q.mu.Unlock()
	path := keys.FromBits("01")
	tr := triple.TN("cl01", "age", 1)
	e := store.Entry{Kind: triple.ByAV, Key: triple.IndexKey(tr, triple.ByAV), Triple: tr, Version: 1}

	// Claimant streams a partial page, then a duplicate stream from a
	// sibling replica delivers the same rows — and must be ignored.
	q.handleResponse(queryResp{QID: qid, Entries: []store.Entry{e}, Count: 1, From: 5, Path: path}, 0)
	q.handleResponse(queryResp{QID: qid, Entries: []store.Entry{e}, Count: 1, From: 6, Path: path}, 0)
	h := &Handle{peer: q, op: op, qid: qid}
	if res := h.Result(); res.Count != 1 || len(res.Entries) != 1 {
		t.Fatalf("duplicate stream leaked rows: %+v", res)
	}
	// The duplicate's final must be ignored too; the claimant's final
	// completes the branch.
	q.handleResponse(queryResp{QID: qid, Count: 0, Share: TotalShare, Final: true, From: 6, Path: path}, 0)
	if h.Done() {
		t.Fatal("duplicate stream's final completed the operation")
	}
	q.handleResponse(queryResp{QID: qid, Count: 0, Share: TotalShare, Final: true, From: 5, Path: path}, 0)
	if !h.Done() {
		t.Fatal("claimant's final did not complete the operation")
	}
	if res := h.Result(); res.Count != 1 || len(res.Entries) != 1 {
		t.Fatalf("final accounting off: %+v", res)
	}
}

// TestPagedScanResumesAtCursorAfterMidPaginationDeath: a paged scan
// whose server dies AFTER delivering pages must resume the stream at
// its stored cursor on a sibling replica — every fact arrives exactly
// once, nothing is replayed from the beginning of the partition.
func TestPagedScanResumesAtCursorAfterMidPaginationDeath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 2
	net, peers := loadReplicated(70, 2, 2, 40, cfg)
	// The whole "age" AV region lands in one partition; originate the
	// scan at a peer of the OTHER partition so the stream is remote.
	probe := triple.AVKey("age", triple.N(0))
	var q *Peer
	for _, p := range peers {
		if !p.Responsible(probe) {
			q = p
			break
		}
	}
	if q == nil {
		t.Fatal("no peer outside the age region")
	}
	r := triple.AVPrefixRange("age")

	var streamed []store.Entry
	h := q.RangeQueryPages(triple.ByAV, r, func(es []store.Entry) {
		streamed = append(streamed, es...)
	}, nil)
	// Step until at least one REMOTE page has streamed in (the origin
	// serves its own partition first via loopback), then kill every
	// remote peer that served pages: the pull for their next page is
	// already in flight and dies with them.
	remotePageIn := func() bool {
		for _, e := range streamed {
			if !e.Key.HasPrefix(q.Path()) {
				return true
			}
		}
		return false
	}
	for !remotePageIn() && net.Step() {
	}
	killedServer := false
	for _, p := range peers {
		if p != q && p.Stats().PagesServed > 0 {
			net.Kill(p.ID())
			killedServer = true
		}
	}
	if !killedServer {
		t.Skip("only the origin served pages; no remote stream to kill")
	}
	res := h.Wait(0)
	if !res.Complete {
		t.Fatalf("scan did not complete after mid-pagination death: %+v", res)
	}
	if st := q.Stats(); st.ScanRetries == 0 && st.PagePullHedges == 0 {
		// Recovery normally happens through the pull-level hedge (one
		// hedge interval); the scan-level re-shower remains the slower
		// backstop. Either path counts as a resumed stream.
		t.Error("stream was not resumed through any failover path")
	}
	got := map[string]int{}
	for _, e := range streamed {
		got[e.Triple.OID]++
	}
	if len(got) != 40 {
		t.Errorf("streamed %d distinct facts, want 40", len(got))
	}
	for oid, n := range got {
		if n != 1 {
			t.Errorf("fact %s streamed %d times, want once (cursor resume must not replay pages)", oid, n)
		}
	}
	if q.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", q.PendingOps())
	}
}

// TestForwardHopUsesOwnCache: an intermediate hop with a warm cache
// must short-cut a probe it forwards — the origin's cold probe reaches
// the responsible peer in at most 2 hops (origin → warm hop → owner)
// instead of the full prefix-routing descent.
func TestForwardHopUsesOwnCache(t *testing.T) {
	net, peers := loadReplicated(64, 32, 1, 64, DefaultConfig())
	q := peers[0]
	key := triple.AVKey("age", triple.N(33))
	var owner *Peer
	for _, p := range peers {
		if p.Responsible(key) {
			owner = p
		}
	}
	if owner == nil || owner == q {
		t.Fatal("topology gave no distinct owner")
	}
	// Pick a neighbour the origin routes through for this key, warm its
	// cache, and pin the origin's first hop to it.
	level := key.CommonPrefixLen(q.Path())
	hopRef, ok := q.pickRef(level)
	if !ok {
		t.Fatal("origin has no ref at the divergence level")
	}
	hop := net.Handler(hopRef.ID).(*Peer)
	if hop.Responsible(key) {
		t.Skip("first hop is already the owner; no intermediate leg to test")
	}
	if res := hop.LookupSync(triple.ByAV, key); !res.Complete {
		t.Fatalf("warming hop cache: %+v", res)
	}
	q.mu.Lock()
	q.refs[level] = []Ref{hopRef}
	q.mu.Unlock()

	fwdBefore := hop.Stats().RouteCacheFwdHits
	res := q.LookupSync(triple.ByAV, key)
	if !res.Complete || len(res.Entries) != 1 {
		t.Fatalf("routed lookup: %+v", res)
	}
	if res.Hops > 2 {
		t.Errorf("probe took %d hops; a warm intermediate cache must cap it at 2", res.Hops)
	}
	if hop.Stats().RouteCacheFwdHits <= fwdBefore {
		t.Error("intermediate hop did not use its own cache")
	}
}

// TestDigestAntiEntropyConverges: diverged replicas reconcile through
// digest rounds pulling only the differing buckets, and an already
// converged pair ships summaries but no entries at all.
func TestDigestAntiEntropyConverges(t *testing.T) {
	net := newNet(65)
	cfg := DefaultConfig()
	cfg.PageSize = 4
	peers := BuildBalanced(net, 2, 2, cfg)
	var a, b *Peer
	for _, p := range peers {
		if p.Path().Bit(0) == 0 {
			if a == nil {
				a = p
			} else {
				b = p
			}
		}
	}
	// Diverge: apply 10 facts only to a (as if b was offline).
	for i := 0; i < 10; i++ {
		for _, kind := range triple.AllIndexKinds {
			tr := triple.TN(fmt.Sprintf("dg%02d", i), "age", float64(i))
			e := store.Entry{Kind: kind, Key: triple.IndexKey(tr, kind), Triple: tr, Version: 2}
			if e.Key.HasPrefix(a.Path()) {
				a.store.Apply(e)
			}
		}
	}
	if a.store.Len() == b.store.Len() {
		t.Fatal("stores did not diverge; test is vacuous")
	}
	net.ResetStats()
	a.runAntiEntropy()
	net.Run()
	if a.store.Len() != b.store.Len() {
		t.Fatalf("replicas did not converge: a=%d b=%d", a.store.Len(), b.store.Len())
	}
	entriesShipped := net.Stats().PerKind[KindAntiEnt]
	if entriesShipped == 0 {
		t.Error("diverged buckets were never pulled")
	}

	// A second round on the now converged pair must ship digests only.
	net.ResetStats()
	a.runAntiEntropy()
	net.Run()
	st := net.Stats()
	if st.PerKind[KindAntiEnt] != 0 {
		t.Errorf("converged replicas still shipped %d entry messages", st.PerKind[KindAntiEnt])
	}
	if st.PerKind[KindDigest] == 0 {
		t.Error("no digest exchanged")
	}
}

// TestGossipPushDedupesAndSkipsSender: a replica push must collapse
// superseded duplicates into one message per replica and never push
// back to the peer the entries came from, counting every suppression.
func TestGossipPushDedupesAndSkipsSender(t *testing.T) {
	net := newNet(66)
	peers := BuildBalanced(net, 2, 3, DefaultConfig())
	var group []*Peer
	for _, p := range peers {
		if p.Path().Bit(0) == 0 {
			group = append(group, p)
		}
	}
	p := group[0]
	sender := group[1].ID()
	tr := triple.TN("gd01", "age", 1)
	kind := triple.ByAV
	mk := func(v uint64) store.Entry {
		return store.Entry{Kind: kind, Key: triple.IndexKey(tr, kind), Triple: tr, Version: v}
	}
	net.ResetStats()
	supBefore := p.Stats().GossipSuppressed
	p.pushToReplicas([]store.Entry{mk(1), mk(2), mk(3)}, sender)
	net.Run()
	st := net.Stats()
	// Two live sibling replicas, one of them the sender: exactly one
	// gossip message goes out, carrying the single surviving entry.
	if st.PerKind[KindGossip] != 1 {
		t.Errorf("gossip messages = %d, want 1 (dedupe + sender skip)", st.PerKind[KindGossip])
	}
	if p.Stats().GossipSuppressed <= supBefore {
		t.Error("suppressed sends were not counted")
	}
}

// TestDescPagedScanStreamsInOrder: a descending paged range query must
// deliver pages whose keys never increase across the stream of one
// partition, and the full result must equal the ascending scan's.
func TestDescPagedScanStreamsInOrder(t *testing.T) {
	net := newNet(67)
	cfg := DefaultConfig()
	cfg.PageSize = 3
	peers := BuildBalanced(net, 4, 1, cfg)
	for i := 0; i < 30; i++ {
		peers[i%4].InsertTriple(triple.TN(fmt.Sprintf("ds%02d", i), "age", float64(i)), 1)
	}
	net.Run()
	q := peers[0]
	r := triple.AVPrefixRange("age")

	asc := q.RangeQuerySync(triple.ByAV, r)
	if !asc.Complete || asc.Count != 30 {
		t.Fatalf("ascending scan: %+v", asc)
	}

	perSource := map[string][]keys.Key{}
	var pages [][]store.Entry
	h := q.RangeQueryPagesOrdered(triple.ByAV, r, true, func(es []store.Entry) {
		pages = append(pages, es)
		for _, e := range es {
			src := e.Key.Prefix(2).String()
			perSource[src] = append(perSource[src], e.Key)
		}
	}, nil)
	res := h.Wait(0)
	if !res.Complete {
		t.Fatalf("desc scan incomplete: %+v", res)
	}
	total := 0
	for _, pg := range pages {
		total += len(pg)
	}
	if total != 30 {
		t.Fatalf("desc scan streamed %d entries, want 30", total)
	}
	for src, seq := range perSource {
		for i := 1; i < len(seq); i++ {
			if seq[i].Compare(seq[i-1]) > 0 {
				t.Fatalf("partition %s streamed keys out of descending order", src)
			}
		}
	}
	if len(pages) < 30/3 {
		t.Errorf("desc scan arrived in %d pages; page size 3 over 30 entries should stream ≥10", len(pages))
	}
}

// TestHedgeDisabledFailsSlow: with HedgeAfter < 0 a probe to a corpse
// is never retried — the operation expires incomplete at the overlay
// deadline, which is exactly the single-owner baseline the benchmarks
// compare against.
func TestHedgeDisabledFailsSlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HedgeAfter = -1
	cfg.ReadReplicas = 1
	net, peers := loadReplicated(68, 16, 2, 32, cfg)
	q := peers[0]
	key := triple.AVKey("age", triple.N(7))
	if res := q.LookupSync(triple.ByAV, key); !res.Complete {
		t.Fatalf("warmup: %+v", res)
	}
	h := q.Lookup(triple.ByAV, key, nil)
	victim, ok := inflightTarget(net, peers, q)
	if !ok {
		t.Fatal("warm probe did not go direct")
	}
	net.Kill(victim)
	res := h.Wait(3 * time.Minute)
	if res.Complete && len(res.Entries) > 0 {
		t.Fatalf("hedging disabled yet the probe recovered: %+v", res)
	}
	if q.Stats().ProbeRetries != 0 {
		t.Errorf("retries fired with hedging disabled: %d", q.Stats().ProbeRetries)
	}
}
