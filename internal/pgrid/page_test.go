package pgrid

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"unistore/internal/keys"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// entryKeys canonicalizes a result entry set for comparison.
func entryKeys(es []store.Entry) []string {
	out := make([]string, 0, len(es))
	for _, e := range es {
		out = append(out, e.Key.String()+"|"+e.Triple.Val.Lexical())
	}
	sort.Strings(out)
	return out
}

// TestPagedRangeEquivalence: a paged shower must return exactly the
// entries of the monolithic one, release all shares (Complete), and
// actually serve pages.
func TestPagedRangeEquivalence(t *testing.T) {
	build := func(pageSize int) ([]*Peer, func()) {
		net := newNet(61)
		cfg := DefaultConfig()
		cfg.PageSize = pageSize
		peers := BuildBalanced(net, 16, 1, cfg)
		for i := 0; i < 50; i++ {
			peers[i%16].InsertTriple(triple.TN(fmt.Sprintf("pg%02d", i), "age", float64(i%25)), 1)
		}
		net.Run()
		return peers, func() {}
	}

	ref, _ := build(0)
	want := entryKeys(ref[0].RangeQuerySync(triple.ByAV, triple.AVPrefixRange("age")).Entries)
	if len(want) == 0 {
		t.Fatal("reference scan returned nothing")
	}
	for _, ps := range []int{1, 3, 7} {
		peers, _ := build(ps)
		res := peers[0].RangeQuerySync(triple.ByAV, triple.AVPrefixRange("age"))
		if !res.Complete {
			t.Fatalf("PageSize=%d: shares lost, scan incomplete", ps)
		}
		got := entryKeys(res.Entries)
		if len(got) != len(want) {
			t.Fatalf("PageSize=%d: %d entries, want %d", ps, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("PageSize=%d: entry %d = %s, want %s", ps, i, got[i], want[i])
			}
		}
		pages := 0
		for _, p := range peers {
			pages += p.Stats().PagesServed
		}
		if pages == 0 {
			t.Errorf("PageSize=%d: no pages served", ps)
		}
	}
}

// TestPagedResponseBounded: with PageSize=1 every paged response
// carries at most one entry, so no response message can grow with the
// partition — the bounded-response-size guarantee.
func TestPagedResponseBounded(t *testing.T) {
	net := newNet(62)
	cfg := DefaultConfig()
	cfg.PageSize = 1
	peers := BuildBalanced(net, 4, 1, cfg) // few peers → fat partitions
	for i := 0; i < 30; i++ {
		peers[i%4].InsertTriple(triple.TN(fmt.Sprintf("pb%02d", i), "age", float64(i)), 1)
	}
	net.Run()
	net.ResetStats()
	res := peers[0].RangeQuerySync(triple.ByAV, triple.AVPrefixRange("age"))
	if !res.Complete || len(res.Entries) != 30 {
		t.Fatalf("paged fat-partition scan: complete=%v n=%d", res.Complete, len(res.Entries))
	}
	// One entry ≈ well under 300 bytes; a monolithic response of a fat
	// partition would be thousands.
	if max := net.Stats().MaxSizePerKind[KindResponse]; max > 300 {
		t.Errorf("paged response reached %dB; pages of 1 entry must stay small", max)
	}
}

// TestPagedScanStableUnderMutation: the page cursor is key-aligned,
// so an entry applied to the serving peer BETWEEN page pulls — sorting
// before the cursor — must not duplicate or drop any entry that was
// present when the scan began (a positional offset cursor would
// re-send the entry the insertion shifted past the offset).
func TestPagedScanStableUnderMutation(t *testing.T) {
	net := newNet(65)
	cfg := DefaultConfig()
	cfg.PageSize = 2
	peers := BuildBalanced(net, 4, 1, cfg)
	for i := 0; i < 12; i++ {
		peers[i%4].InsertTriple(triple.TN(fmt.Sprintf("mu%02d", i), "age", float64(10+i)), 1)
	}
	net.Run()

	h := peers[0].RangeQuery(triple.ByAV, triple.AVPrefixRange("age"), false, nil)
	// Step until at least two pages have been pulled, then mutate the
	// serving peer's store with an entry sorting before the cursor.
	for net.Stats().PerKind[KindPage] < 2 && net.Step() {
	}
	if net.Stats().PerKind[KindPage] < 2 {
		t.Fatal("scan finished before any page pull; lower PageSize")
	}
	early := triple.TN("mu-early", "age", float64(1)) // sorts before every age
	e := store.Entry{Kind: triple.ByAV, Key: triple.IndexKey(early, triple.ByAV),
		Triple: early, Version: 1}
	for _, p := range peers {
		if p.Responsible(e.Key) {
			p.Store().Apply(e)
		}
	}
	res := h.Wait(5 * time.Minute)
	if !res.Complete {
		t.Fatal("mutated paged scan incomplete")
	}
	seen := map[string]int{}
	for _, en := range res.Entries {
		seen[en.Triple.OID]++
	}
	for i := 0; i < 12; i++ {
		oid := fmt.Sprintf("mu%02d", i)
		if seen[oid] != 1 {
			t.Errorf("entry %s appeared %d times, want exactly 1", oid, seen[oid])
		}
	}
	if seen["mu-early"] > 1 {
		t.Errorf("concurrent insert appeared %d times", seen["mu-early"])
	}
}

// TestMultiLookupMatchesIndividualLookups: the batched multi-lookup
// must return exactly the union of per-key lookups, cold and warm.
func TestMultiLookupMatchesIndividualLookups(t *testing.T) {
	net := newNet(63)
	peers := BuildBalanced(net, 16, 1, DefaultConfig())
	var ks []keys.Key
	for i := 0; i < 20; i++ {
		tr := triple.TN(fmt.Sprintf("%c-ml%02d", 'a'+i, i), "age", float64(i))
		peers[i%16].InsertTriple(tr, 1)
		ks = append(ks, triple.OIDKey(tr.OID))
	}
	net.Run()

	q := peers[0]
	var want []store.Entry
	for _, k := range ks {
		res := q.LookupSync(triple.ByOID, k)
		if !res.Complete {
			t.Fatalf("individual lookup incomplete for %s", k)
		}
		want = append(want, res.Entries...)
	}
	for round := 0; round < 2; round++ { // round 1 runs on a warm cache
		h := q.MultiLookup(triple.ByOID, ks, nil)
		res := h.Wait(5 * time.Minute)
		if !res.Complete {
			t.Fatalf("round %d: multi-lookup incomplete: %d/%d responses", round, res.Responses, len(ks))
		}
		got := entryKeys(res.Entries)
		if len(got) != len(entryKeys(want)) {
			t.Fatalf("round %d: %d entries, want %d", round, len(got), len(want))
		}
	}
	if q.Stats().RouteCacheHits == 0 {
		t.Error("warm multi-lookup round never hit the cache")
	}
}

// TestMultiLookupBatchesMessages: a warm multi-lookup must cost far
// fewer messages than k individually routed probes.
func TestMultiLookupBatchesMessages(t *testing.T) {
	net := newNet(64)
	peers := BuildBalanced(net, 32, 1, DefaultConfig())
	var ks []keys.Key
	for i := 0; i < 24; i++ {
		tr := triple.TN(fmt.Sprintf("%c-mb%02d", 'a'+i, i), "age", float64(i))
		peers[i%32].InsertTriple(tr, 1)
		ks = append(ks, triple.OIDKey(tr.OID))
	}
	net.Run()
	q := peers[0]

	before := net.Stats().MessagesSent
	q.MultiLookup(triple.ByOID, ks, nil).Wait(5 * time.Minute)
	cold := net.Stats().MessagesSent - before

	before = net.Stats().MessagesSent
	q.MultiLookup(triple.ByOID, ks, nil).Wait(5 * time.Minute)
	warm := net.Stats().MessagesSent - before

	if warm >= cold {
		t.Errorf("warm batched multi-lookup cost %d messages, cold cost %d — batching must help", warm, cold)
	}
	// Warm cost is bounded by a request+response pair per distinct
	// responsible peer, which cannot exceed 2·len(ks) and in practice
	// is far below the cold routed cost.
	if warm > 2*len(ks) {
		t.Errorf("warm multi-lookup cost %d messages for %d keys", warm, len(ks))
	}
	t.Logf("multi-lookup messages: cold=%d warm=%d (k=%d)", cold, warm, len(ks))
}
