package pgrid

import (
	"fmt"
	"math/rand"
	"sort"

	"unistore/internal/keys"
)

// Multi-process assembly. A single-process cluster builds its overlay
// with BuildBalanced: every peer lives in one address space and the
// builder wires paths, replica groups, and routing tables directly.
// A multi-process cluster cannot do that — no process sees the others'
// peers — so assembly is split into a pure planning step and a local
// instantiation step:
//
//	BalancedSpecs(n, replicas, cfg, seed)  →  the full cluster layout
//	BuildFromSpecs(net, specs, hosted)     →  this process's peers
//
// BalancedSpecs is a deterministic function of its arguments: every
// process calls it with the same parameters and computes the identical
// layout — the same partition paths, the same NodeID for every peer
// (gi*replicas + r in path order), the same replica groups, and the
// same randomized routing references (drawn from a rand source seeded
// only by `seed`). Each process then instantiates just the peers it
// hosts; references to peers in other processes are plain {ID, Path}
// refs that the transport resolves by address.

// NodeSpec is the complete placement-independent description of one
// overlay peer: identity, trie path, replica group, routing table.
type NodeSpec struct {
	ID       NodeID
	Path     keys.Key
	Replicas []Ref   // the other members of the peer's replica group
	Refs     [][]Ref // routing references per trie level
}

// BalancedSpecs plans a balanced overlay of n partitions × replicas
// peers, mirroring BuildBalanced + WireRouting exactly but without a
// transport: the randomized reference choice draws from a source
// seeded by `seed`, so equal arguments give equal layouts in every
// process. cfg contributes RefsPerLevel (normalized as NewPeer does).
func BalancedSpecs(n, replicas int, cfg Config, seed int64) []NodeSpec {
	if n <= 0 {
		panic("pgrid: BalancedSpecs needs n > 0")
	}
	if replicas <= 0 {
		replicas = 1
	}
	if cfg.RefsPerLevel <= 0 {
		cfg.RefsPerLevel = 3
	}
	paths := balancedPaths(n)
	sort.Slice(paths, func(i, j int) bool { return paths[i].Compare(paths[j]) < 0 })

	specs := make([]NodeSpec, 0, n*replicas)
	for gi, path := range paths {
		for r := 0; r < replicas; r++ {
			specs = append(specs, NodeSpec{
				ID:   NodeID(gi*replicas + r),
				Path: path,
			})
		}
	}
	// Replica groups know each other, in the same pair order assemble
	// uses (group-internal index order, self excluded).
	for gi := range paths {
		for a := 0; a < replicas; a++ {
			sa := &specs[gi*replicas+a]
			for b := 0; b < replicas; b++ {
				if a == b {
					continue
				}
				sb := &specs[gi*replicas+b]
				sa.Replicas = append(sa.Replicas, Ref{ID: sb.ID, Path: sb.Path})
			}
		}
	}
	wireSpecRouting(specs, cfg.RefsPerLevel, rand.New(rand.NewSource(seed)))
	return specs
}

// wireSpecRouting is WireRouting transcribed onto specs: for each level
// of each spec's path it installs up to refsPerLevel distinct random
// references into the sibling subtree. The draw pattern (rejection
// sampling over the sorted sibling range, spec-creation iteration
// order) matches WireRouting's, so a fixed rng source yields one
// well-defined layout.
func wireSpecRouting(specs []NodeSpec, refsPerLevel int, rng *rand.Rand) {
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return specs[order[i]].Path.String() < specs[order[j]].Path.String()
	})
	pathStrs := make([]string, len(order))
	for i, idx := range order {
		pathStrs[i] = specs[idx].Path.String()
	}
	specsWithPrefix := func(prefix string) (int, int) {
		lo := sort.SearchStrings(pathStrs, prefix)
		hi := lo
		for hi < len(pathStrs) && len(pathStrs[hi]) >= len(prefix) && pathStrs[hi][:len(prefix)] == prefix {
			hi++
		}
		return lo, hi
	}
	for si := range specs {
		s := &specs[si]
		s.Refs = make([][]Ref, s.Path.Len())
		for l := 0; l < s.Path.Len(); l++ {
			sibling := s.Path.Prefix(l).Append(1 - s.Path.Bit(l)).String()
			lo, hi := specsWithPrefix(sibling)
			count := hi - lo
			if count == 0 {
				continue
			}
			want := refsPerLevel
			if want > count {
				want = count
			}
			seen := make(map[int]bool, want)
			for len(seen) < want {
				i := lo + rng.Intn(count)
				if seen[i] {
					continue
				}
				seen[i] = true
				q := specs[order[i]]
				s.Refs[l] = append(s.Refs[l], Ref{ID: q.ID, Path: q.Path})
			}
		}
	}
}

// Reserver is the optional transport surface for pre-assigning the
// NodeIDs that subsequent AddNode calls return. Real transports
// implement it (netx); the simulator does not need to — its sequential
// allocation matches spec IDs when a single process hosts every spec.
type Reserver interface {
	Reserve(ids ...NodeID)
}

// BuildFromSpecs instantiates the hosted subset of a planned overlay
// on net and returns the new peers in hosted order. hosted must be
// drawn from specs; the transport must hand each peer the NodeID its
// spec names (via Reserve when supported, or by natural sequential
// assignment), and BuildFromSpecs fails loudly when it does not —
// a peer answering under the wrong address would corrupt routing
// cluster-wide.
func BuildFromSpecs(net Transport, specs []NodeSpec, hosted []NodeSpec, cfg Config) ([]*Peer, error) {
	if r, ok := net.(Reserver); ok {
		ids := make([]NodeID, len(hosted))
		for i, s := range hosted {
			ids[i] = s.ID
		}
		r.Reserve(ids...)
	}
	peers := make([]*Peer, 0, len(hosted))
	for _, s := range hosted {
		p := NewPeer(net, cfg)
		if p.id != s.ID {
			return nil, fmt.Errorf("pgrid: transport assigned node %d to spec %d (transport cannot reserve IDs?)", p.id, s.ID)
		}
		p.setPath(s.Path)
		for _, ref := range s.Replicas {
			p.addReplica(ref)
		}
		for l, refs := range s.Refs {
			for _, ref := range refs {
				p.addRef(l, ref)
			}
		}
		peers = append(peers, p)
	}
	return peers, nil
}
