package pgrid

import (
	"time"

	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// This file implements replica maintenance: eager push of fresh writes
// to the replica group, and periodic anti-entropy reconciliation. The
// combination yields the "update functionality with lose consistency
// guarantees" (Datta, Hauswirth, Aberer, ICDCS 2003) the paper relies
// on: updates reach available replicas quickly, unavailable replicas
// converge when they return.

func kindOf(i int) triple.IndexKind { return triple.IndexKind(i) }

// partitionRange is the key range a peer with the given path covers.
func partitionRange(path keys.Key) keys.Range { return keys.PrefixRange(path) }

// pushToReplicas eagerly propagates fresh entries to the replica group.
func (p *Peer) pushToReplicas(entries []store.Entry) {
	p.mu.RLock()
	replicas := append([]Ref(nil), p.replicas...)
	p.mu.RUnlock()
	for _, r := range replicas {
		p.net.Send(p.id, r.ID, KindGossip, gossipMsg{Entries: entries})
	}
}

func (p *Peer) handleGossip(g gossipMsg) {
	for _, e := range g.Entries {
		if p.store.Apply(e) {
			p.stats.gossipApplied.Add(1)
		}
	}
}

// scheduleAntiEntropy arms the periodic reconciliation timer.
func (p *Peer) scheduleAntiEntropy() {
	period := time.Duration(p.cfg.AntiEntropyEvery)
	p.net.After(period, func() {
		if p.net.Alive(p.id) {
			p.runAntiEntropy()
		}
		p.scheduleAntiEntropy()
	})
}

// runAntiEntropy reconciles with one random live replica (push-pull).
func (p *Peer) runAntiEntropy() {
	p.mu.RLock()
	if len(p.replicas) == 0 {
		p.mu.RUnlock()
		return
	}
	r := p.replicas[p.net.Intn(len(p.replicas))]
	p.mu.RUnlock()
	p.net.Send(p.id, r.ID, KindAntiEnt, antiEntropyMsg{Entries: p.store.Facts(), Reply: true})
}

func (p *Peer) handleAntiEntropy(msg antiEntropyMsg, from simnet.NodeID) {
	for _, e := range msg.Entries {
		if p.store.Apply(e) {
			p.stats.gossipApplied.Add(1)
		}
	}
	if msg.Reply {
		p.net.Send(p.id, from, KindAntiEnt, antiEntropyMsg{Entries: p.store.Facts(), Reply: false})
	}
}

// UpdateTriple writes a new value for fact (oid, attr) with a version
// from this peer's clock and routes it to all index peers; replicas
// receive it via eager push at the responsible peer.
func (p *Peer) UpdateTriple(tr triple.Triple) uint64 {
	v := p.NextClock()
	p.InsertTriple(tr, v)
	return v
}
