package pgrid

import (
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// This file implements replica maintenance: eager push of fresh writes
// to the replica group, and periodic DIGEST-BASED anti-entropy. The
// combination yields the "update functionality with lose consistency
// guarantees" (Datta, Hauswirth, Aberer, ICDCS 2003) the paper relies
// on: updates reach available replicas quickly, unavailable replicas
// converge when they return.
//
// The periodic rounds no longer ship full replica state both ways.
// A round opens with a digest — per-bucket (index kind × key prefix)
// version summaries, a few dozen bytes per bucket — and each side
// pulls only the buckets whose summaries differ, delivered in pages of
// at most Config.PageSize entries (the same bound the range-scan pager
// enforces). Identical replicas exchange two digests and nothing else.
// Full-state reconciliation survives only as the initial sync of a
// freshly formed replica pair (becomeReplicaOf).

func kindOf(i int) triple.IndexKind { return triple.IndexKind(i) }

// partitionRange is the key range a peer with the given path covers.
func partitionRange(path keys.Key) keys.Range { return keys.PrefixRange(path) }

// pushToReplicas eagerly propagates fresh entries to the replica
// group: one deduplicated gossipMsg per replica. The peer the entries
// arrived from (a replica forwarding an insert, a gossiping sibling)
// is skipped — it provably holds them already — and superseded
// duplicates within the batch are dropped; both are counted as
// suppressed sends.
func (p *Peer) pushToReplicas(entries []store.Entry, from simnet.NodeID) {
	p.mu.RLock()
	replicas := append([]Ref(nil), p.replicas...)
	p.mu.RUnlock()
	if len(replicas) == 0 {
		return
	}
	batch := dedupeEntries(entries, &p.stats)
	seen := make(map[simnet.NodeID]bool, len(replicas))
	for _, r := range replicas {
		if r.ID == from || r.ID == p.id || seen[r.ID] {
			p.stats.gossipSuppressed.Add(int64(len(batch)))
			continue
		}
		seen[r.ID] = true
		p.gossipTo(r.ID, batch)
	}
}

// gossipTo issues one eager push, credit-gated like every bulk stream.
// With flow control on, the batch charges the replica's advertised
// window under a fresh qid and the replica's gossipAckMsg releases the
// credit (piggybacking a fresh window). With the window full — or
// older entries already waiting — the batch folds into the replica's
// pending buffer instead: one entry per fact, latest version wins, so
// a slow replica costs at most its partition's worth of buffered state
// and never an unbounded queue. Freed credit flushes the buffer in
// window-sized batches (flushGossip).
func (p *Peer) gossipTo(to simnet.NodeID, batch []store.Entry) {
	if p.cfg.DisableFlowControl {
		p.net.Send(p.id, to, KindGossip, gossipMsg{Entries: batch})
		return
	}
	p.gossipMu.Lock()
	if len(p.gossipPend[to]) > 0 {
		// Entries are already parked toward this replica; join them
		// rather than overtake them.
		p.mergeGossipLocked(to, batch)
		p.gossipMu.Unlock()
		p.stats.flowStalls.Add(1)
		p.flushGossip(to)
		return
	}
	p.gossipMu.Unlock()
	if !p.tryGossipSend(to, batch) {
		p.gossipMu.Lock()
		p.mergeGossipLocked(to, batch)
		p.gossipMu.Unlock()
		p.stats.flowStalls.Add(1)
	}
}

// tryGossipSend charges and sends one gossip batch if the replica's
// window admits it now.
func (p *Peer) tryGossipSend(to simnet.NodeID, batch []store.Entry) bool {
	qid := p.nextQID()
	msg := gossipMsg{Entries: batch, AckID: qid}
	p.stats.flowBulkSends.Add(1)
	return p.flow.trySubmit(to, flowKey{qid: qid}, msg.WireSize(),
		func() { p.net.Send(p.id, to, KindGossip, msg) })
}

// mergeGossipLocked folds a batch into the pending buffer toward one
// replica, keeping only the winning entry per fact under the store's
// own LWW rule. Using store.Entry.Supersedes (not just the version)
// matters: multi-valued attributes can collide on (kind, OID, attr) at
// equal versions, and the buffer must drop the same loser every store
// would. Superseded entries are counted as suppressed.
func (p *Peer) mergeGossipLocked(to simnet.NodeID, batch []store.Entry) {
	pend := p.gossipPend[to]
	if pend == nil {
		pend = make(map[factKey]store.Entry)
		p.gossipPend[to] = pend
	}
	for _, e := range batch {
		fk := factKeyOf(e)
		if old, ok := pend[fk]; ok {
			p.stats.gossipSuppressed.Add(1)
			if !e.Supersedes(old) {
				continue
			}
		}
		pend[fk] = e
	}
}

// flushGossip drains the pending buffer toward one replica for as long
// as its window keeps admitting batches. Each batch is bounded by the
// replica's advertised byte window — the "effective page" of the
// gossip stream — so a shrunken window trickles small messages instead
// of one huge flush.
func (p *Peer) flushGossip(to simnet.NodeID) {
	for {
		budget := p.flow.windowBytesOf(to)
		if budget <= 0 {
			budget = DefaultFlowWindowBytes
		}
		p.gossipMu.Lock()
		pend := p.gossipPend[to]
		if len(pend) == 0 {
			p.gossipMu.Unlock()
			return
		}
		batch := make([]store.Entry, 0, len(pend))
		used := 16 // gossipMsg framing
		for fk, e := range pend {
			sz := e.WireSize()
			if len(batch) > 0 && used+sz > budget {
				continue
			}
			batch = append(batch, e)
			used += sz
			delete(pend, fk)
		}
		if len(pend) == 0 {
			delete(p.gossipPend, to)
		}
		p.gossipMu.Unlock()
		if !p.tryGossipSend(to, batch) {
			// Credit ran out again; put the batch back (latest versions
			// still win if fresher entries merged meanwhile).
			p.gossipMu.Lock()
			p.mergeGossipLocked(to, batch)
			p.gossipMu.Unlock()
			return
		}
	}
}

// flushGossipPending gives every replica with parked gossip a flush
// chance — called wherever credit may have freed, so a pending buffer
// can never outlive the pressure that parked it.
func (p *Peer) flushGossipPending() {
	p.gossipMu.Lock()
	if len(p.gossipPend) == 0 {
		p.gossipMu.Unlock()
		return
	}
	ids := make([]simnet.NodeID, 0, len(p.gossipPend))
	for id := range p.gossipPend {
		ids = append(ids, id)
	}
	p.gossipMu.Unlock()
	for _, id := range ids {
		p.flushGossip(id)
	}
}

// factKey is the replica layers' shared fact identity: one versioned
// fact per index kind. Gossip dedup and anti-entropy suppression must
// agree on it, so both go through factKeyOf.
type factKey struct {
	kind triple.IndexKind
	oid  string
	attr string
}

func factKeyOf(e store.Entry) factKey {
	return factKey{e.Kind, e.Triple.OID, e.Triple.Attr}
}

// latestByFact maps each fact in entries to the highest version seen.
func latestByFact(entries []store.Entry) map[factKey]uint64 {
	out := make(map[factKey]uint64, len(entries))
	for _, e := range entries {
		if v, ok := out[factKeyOf(e)]; !ok || e.Version > v {
			out[factKeyOf(e)] = e.Version
		}
	}
	return out
}

// dedupeEntries drops batch entries superseded by a later entry for
// the same fact, counting the drops.
func dedupeEntries(entries []store.Entry, counters *peerCounters) []store.Entry {
	if len(entries) <= 1 {
		return entries
	}
	best := make(map[factKey]store.Entry, len(entries))
	order := make([]factKey, 0, len(entries))
	dropped := 0
	for _, e := range entries {
		fk := factKeyOf(e)
		old, ok := best[fk]
		if !ok {
			best[fk] = e
			order = append(order, fk)
			continue
		}
		dropped++
		if e.Version > old.Version {
			best[fk] = e
		}
	}
	if dropped == 0 {
		return entries
	}
	counters.gossipSuppressed.Add(int64(dropped))
	out := make([]store.Entry, 0, len(order))
	for _, fk := range order {
		out = append(out, best[fk])
	}
	return out
}

func (p *Peer) handleGossip(g gossipMsg, from simnet.NodeID) {
	for _, e := range g.Entries {
		if p.store.Apply(e) {
			p.stats.gossipApplied.Add(1)
		}
	}
	if g.AckID != 0 {
		wb, wm := p.advertiseWindow()
		p.net.Send(p.id, from, KindGossipAck, gossipAckMsg{
			ID: g.AckID, WinBytes: wb, WinMsgs: wm,
		})
	}
}

// scheduleAntiEntropy arms the periodic reconciliation timer.
func (p *Peer) scheduleAntiEntropy() {
	period := time.Duration(p.cfg.AntiEntropyEvery)
	p.net.After(period, func() {
		if p.net.Alive(p.id) {
			p.runAntiEntropy()
		}
		p.scheduleAntiEntropy()
	})
}

// digestPrefixBits is how many key bits PAST THE PEER'S PARTITION PATH
// bucket the digest: 16 buckets per index kind within the partition.
// Bucketing relative to the path matters — a replica group only ever
// holds keys inside its own partition, so absolute root-level prefixes
// would collapse the whole store into one bucket per kind. Buckets
// bound how much state one divergent fact drags into a pull request
// (the request's Have set is per differing bucket); the response is
// exact regardless of bucket shape, so clustered keys (the
// order-preserving value index concentrates a partition's keys on a
// shared long prefix) degrade the request size, never the response.
// Replicas share their path by construction, so bucket names agree
// within a group.
const digestPrefixBits = 4

// bucketDepth is the key-prefix length this peer's digest buckets use.
func (p *Peer) bucketDepth() int { return p.Path().Len() + digestPrefixBits }

// bucketID names the digest bucket of an entry: its index kind plus
// the leading depth bits of its placement key.
func bucketID(e store.Entry, depth int) string {
	if e.Key.Len() < depth {
		depth = e.Key.Len()
	}
	return strconv.Itoa(int(e.Kind)) + ":" + e.Key.Prefix(depth).String()
}

// digest summarizes the peer's whole versioned store per bucket. The
// bucket sums are order-independent (XOR hash, count, max), so the
// unordered FactsEach walk suffices — no per-round copy or sort.
func (p *Peer) digest() map[string]bucketSum {
	out := make(map[string]bucketSum)
	depth := p.bucketDepth()
	p.store.FactsEach(func(e store.Entry) {
		b := bucketID(e, depth)
		s := out[b]
		s.Count++
		if e.Version > s.MaxVersion {
			s.MaxVersion = e.Version
		}
		s.Hash ^= factHash(e)
		out[b] = s
	})
	return out
}

// factHash folds one versioned fact into an order-independent bucket
// hash.
func factHash(e store.Entry) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(e.Kind)})
	h.Write([]byte(e.Triple.OID))
	h.Write([]byte{0})
	h.Write([]byte(e.Triple.Attr))
	h.Write([]byte{0})
	if e.Deleted {
		h.Write([]byte{1})
	}
	var v [8]byte
	for i := 0; i < 8; i++ {
		v[i] = byte(e.Version >> (8 * i))
	}
	h.Write(v[:])
	return h.Sum64()
}

// runAntiEntropy opens a digest round with one random live replica.
func (p *Peer) runAntiEntropy() {
	p.mu.RLock()
	var alive []Ref
	for _, r := range p.replicas {
		if p.net.Alive(r.ID) {
			alive = append(alive, r)
		}
	}
	p.mu.RUnlock()
	if len(alive) == 0 {
		return
	}
	r := alive[p.net.Intn(len(alive))]
	p.stats.digestRounds.Add(1)
	p.net.Send(p.id, r.ID, KindDigest, digestMsg{Buckets: p.digest(), Reply: true})
}

// shouldPull decides whether a bucket whose summaries differ is worth
// pulling from the sender. Pulling is skipped when the sender is
// provably BEHIND on that bucket (lower max version AND no more
// entries): whatever it holds, this side's copy supersedes or equals,
// and the sender will pull the other way off this side's digest. The
// one case the rule defers — the sender holds an old unique fact
// behind a bucket it otherwise trails in — resolves on the following
// round, after the sender has caught up and its count pulls ahead.
func shouldPull(mine, theirs bucketSum) bool {
	if mine == theirs {
		return false
	}
	return theirs.MaxVersion > mine.MaxVersion || theirs.Count > mine.Count ||
		(theirs.MaxVersion == mine.MaxVersion && theirs.Count == mine.Count)
}

// handleDigest compares the sender's summaries with local state and
// pulls the differing buckets the sender is ahead on; on the opening
// message of a round it answers with its own digest so the exchange
// reconciles both ways. Each pull carries this side's own bucket
// summaries so the responder can ship only the entries this side
// provably lacks.
func (p *Peer) handleDigest(msg digestMsg, from simnet.NodeID) {
	if msg.Reply {
		// The responder's participation in the round; the opener
		// counted at runAntiEntropy, and the reply leg is the same
		// round, not a new one.
		p.stats.digestRounds.Add(1)
	}
	mine := p.digest()
	want := make(map[string]bool)
	for b, theirs := range msg.Buckets {
		if shouldPull(mine[b], theirs) {
			want[b] = true
		}
	}
	// Buckets only this side holds are not pulled — the other side will
	// request them off OUR digest (reply) or already did (we are the
	// reply); entries flow toward whoever lacks them either way.
	if len(want) > 0 {
		names := make([]string, 0, len(want))
		for b := range want {
			names = append(names, b)
		}
		sort.Strings(names) // deterministic pull order
		wb, wm := p.advertiseWindow()
		p.net.Send(p.id, from, KindDigestPull, digestPullMsg{
			Buckets: names, Have: p.haveHashes(want),
			WinBytes: wb, WinMsgs: wm,
		})
	}
	if msg.Reply {
		p.net.Send(p.id, from, KindDigest, digestMsg{Buckets: mine, Reply: false})
	}
}

// haveHashes builds the per-bucket identity-hash sets of this peer's
// entries within the wanted buckets — the Have sets a digest pull
// carries so the responder ships the exact set difference.
func (p *Peer) haveHashes(want map[string]bool) map[string][]uint64 {
	have := make(map[string][]uint64, len(want))
	depth := p.bucketDepth()
	p.store.FactsEach(func(e store.Entry) {
		if b := bucketID(e, depth); want[b] {
			have[b] = append(have[b], factHash(e))
		}
	})
	return have
}

// handleDigestPull answers a bucket pull with the entries the puller
// LACKS, in pages of at most Config.PageSize (0: one message), reusing
// the paging machinery's bound on response sizes — replica
// reconciliation is batched the way probes batch by owner. The pull's
// Have sets name what the puller already holds, so the response is the
// exact per-bucket set difference: a restarted replica catching up on
// a bucket pays for the entries it missed (inserts AND overwrites, the
// superseding version travels and Apply retires the stale copy), never
// for the bucket's size. A 64-bit identity-hash collision could
// withhold an entry — vanishingly unlikely, and the next periodic
// round retries with fresh divergent sums.
//
// The transfer is PULLER-paced: the pull's WinBytes/WinMsgs advertise
// the puller's receive window, and the responder stops once the next
// entry would overflow it (the first entry always ships), naming the
// unfinished buckets in the final message's More list. The puller
// re-pulls exactly those buckets with a refreshed Have set and a fresh
// window (handleAntiEntropy), so a restart catch-up streams at the
// restarted replica's pace instead of burying it.
func (p *Peer) handleDigestPull(msg digestPullMsg, from simnet.NodeID) {
	p.stats.digestPulls.Add(1)
	// Every advertised window is a credit sighting: fold the puller's
	// into the sender-side table so bulk sends TOWARD it (eager gossip
	// above all) are gated before its first ack ever arrives.
	p.runFlow(p.flow.window(from, msg.WinBytes, msg.WinMsgs))
	want := make(map[string]bool, len(msg.Buckets))
	for _, b := range msg.Buckets {
		want[b] = true
	}
	have := make(map[uint64]bool)
	for _, hs := range msg.Have {
		for _, h := range hs {
			have[h] = true
		}
	}
	// Group the puller's missing entries per bucket, in the pull's
	// (sorted, deterministic) bucket order, so an exhausted window can
	// name the unfinished buckets exactly.
	depth := p.bucketDepth()
	missing := make(map[string][]store.Entry, len(msg.Buckets))
	for _, e := range p.store.Facts() {
		b := bucketID(e, depth)
		if !want[b] || have[factHash(e)] {
			continue
		}
		missing[b] = append(missing[b], e)
	}
	var (
		pages     [][]store.Entry
		batch     []store.Entry
		more      []string
		sentBytes int
		stop      bool
	)
	flush := func() {
		if len(batch) > 0 {
			pages = append(pages, batch)
			batch = nil
		}
	}
	for bi, b := range msg.Buckets {
		if stop {
			if len(missing[b]) > 0 {
				more = append(more, msg.Buckets[bi])
			}
			continue
		}
		for _, e := range missing[b] {
			sz := e.WireSize()
			if (len(pages) > 0 || len(batch) > 0) &&
				((msg.WinMsgs > 0 && len(pages) >= msg.WinMsgs) ||
					(msg.WinBytes > 0 && sentBytes+sz > msg.WinBytes)) {
				stop = true
				more = append(more, b)
				break
			}
			batch = append(batch, e)
			sentBytes += sz
			if p.cfg.PageSize > 0 && len(batch) >= p.cfg.PageSize {
				flush()
			}
		}
	}
	flush()
	for i, pg := range pages {
		m := antiEntropyMsg{Entries: pg}
		if i == len(pages)-1 {
			m.More = more
		}
		p.net.Send(p.id, from, KindAntiEnt, m)
	}
	if len(pages) == 0 && len(more) > 0 {
		p.net.Send(p.id, from, KindAntiEnt, antiEntropyMsg{More: more})
	}
}

// maxAePullRounds bounds one windowed anti-entropy catch-up's re-pull
// loop. The received-hash memo guarantees per-round progress, so the
// bound is a backstop; past it the next periodic digest round resumes
// the catch-up from fresh divergent sums.
const maxAePullRounds = 64

// aePullState is the puller-side memo of one windowed catch-up: the
// identity hashes of entries received so far — whether or not Apply
// kept them, which is what makes each re-pull round strictly smaller —
// and the round count.
type aePullState struct {
	extra  map[string][]uint64
	rounds int
}

// handleAntiEntropy applies pushed replica state. For the full-state
// form (Reply true — the initial sync of a fresh replica pair) it
// answers with its own facts, SUPPRESSING the ones the incoming
// message just proved the sender to hold at an equal or newer version:
// entries are never echoed straight back to the peer they came from.
// A More list marks a window-paced transfer the responder had to cut
// short: the named buckets are re-pulled with a refreshed Have set and
// a fresh window — the pull loop of puller-paced anti-entropy.
func (p *Peer) handleAntiEntropy(msg antiEntropyMsg, from simnet.NodeID) {
	for _, e := range msg.Entries {
		if p.store.Apply(e) {
			p.stats.gossipApplied.Add(1)
		}
	}
	if len(msg.More) > 0 {
		p.repullBuckets(msg.More, msg.Entries, from)
	} else {
		p.mu.Lock()
		delete(p.aePulls, from)
		p.mu.Unlock()
	}
	if !msg.Reply {
		return
	}
	theirs := latestByFact(msg.Entries)
	var reply []store.Entry
	suppressed := 0
	for _, e := range p.store.Facts() {
		if v, ok := theirs[factKeyOf(e)]; ok && v >= e.Version {
			suppressed++
			continue
		}
		reply = append(reply, e)
	}
	if suppressed > 0 {
		p.stats.gossipSuppressed.Add(int64(suppressed))
	}
	p.net.Send(p.id, from, KindAntiEnt, antiEntropyMsg{Entries: reply})
}

// repullBuckets continues a window-paced anti-entropy transfer: the
// responder cut the previous batch short at this peer's advertised
// window, naming the unfinished buckets. The re-pull carries a Have
// set refreshed from the store PLUS the memo of every hash received so
// far — entries Apply rejected as stale would otherwise be re-shipped
// each round and a tiny window could loop forever; with the memo, each
// round's candidate set strictly shrinks, so the loop terminates.
func (p *Peer) repullBuckets(buckets []string, received []store.Entry, from simnet.NodeID) {
	want := make(map[string]bool, len(buckets))
	for _, b := range buckets {
		want[b] = true
	}
	depth := p.bucketDepth()
	p.mu.Lock()
	if p.aePulls == nil {
		p.aePulls = make(map[simnet.NodeID]*aePullState)
	}
	st := p.aePulls[from]
	if st == nil {
		st = &aePullState{extra: make(map[string][]uint64)}
		p.aePulls[from] = st
	}
	st.rounds++
	if st.rounds > maxAePullRounds {
		delete(p.aePulls, from)
		p.mu.Unlock()
		return
	}
	for _, e := range received {
		if b := bucketID(e, depth); want[b] {
			st.extra[b] = append(st.extra[b], factHash(e))
		}
	}
	extra := make(map[string][]uint64, len(st.extra))
	for b, hs := range st.extra {
		if want[b] {
			extra[b] = append([]uint64(nil), hs...)
		}
	}
	p.mu.Unlock()
	have := p.haveHashes(want)
	for b, hs := range extra {
		have[b] = append(have[b], hs...)
	}
	wb, wm := p.advertiseWindow()
	p.net.Send(p.id, from, KindDigestPull, digestPullMsg{
		Buckets: buckets, Have: have, WinBytes: wb, WinMsgs: wm,
	})
}

// UpdateTriple writes a new value for fact (oid, attr) with a version
// from this peer's clock and routes it to all index peers; replicas
// receive it via eager push at the responsible peer.
func (p *Peer) UpdateTriple(tr triple.Triple) uint64 {
	v := p.NextClock()
	p.InsertTriple(tr, v)
	return v
}
