package pgrid

import (
	"sync"

	"unistore/internal/simnet"
)

// This file implements receiver-driven sliding-window flow control for
// the overlay's bulk streams. Receivers advertise a credit window in
// BOTH bytes and messages — piggybacked on every insert ack and query
// response (stampResp), and carried explicitly on range showers, page
// pulls and digest pulls — and senders keep per-peer credit
// bookkeeping here: bulk sends charge the window, acks release it, and
// a send that would overrun the receiver is deferred FIFO until credit
// returns. The page and anti-entropy paths are receiver-paced at the
// server instead (the origin's window shrinks the effective page), so
// the sender-side table governs the one bulk path with no pull loop:
// the acked-insert fan-out.
//
// Two liveness rules keep a window from ever wedging a sender:
//
//   - at least one message per peer may always be in flight, no matter
//     how tiny the advertised window (a window smaller than the entry
//     degrades to stop-and-wait, never to deadlock);
//   - every failover edge that abandons a receiver — insert retry,
//     hedge, claim transfer, operation completion or expiry — releases
//     the charges held against it and flushes the deferred queue, so a
//     dead receiver cannot strand credit (the zero-credit-deadlock
//     regression test pins this).
//
// Window pressure observed here (credit-exhaustion stalls, the EWMA of
// advertised windows, deferred-queue depth) feeds pickReplicaLocked's
// power-of-two-choices comparison and, via PeerStats, the cost model's
// Pressure input — backpressure and replica selection reinforce each
// other instead of fighting.

// Default receive windows advertised by a peer with an idle inbox.
// Bytes dominate in practice; the message window backstops payloads
// the byte estimate misses.
const (
	DefaultFlowWindowBytes = 64 << 10
	DefaultFlowWindowMsgs  = 32
)

// minAdvertiseBytes floors the advertised byte window: always enough
// for one entry, so a loaded receiver throttles senders down to
// stop-and-wait instead of silence.
const minAdvertiseBytes = 512

// flowEwmaAlpha smooths the advertised-window and incoming-size EWMAs.
const flowEwmaAlpha = 0.3

// flowKey identifies one charged bulk send: the operation and the
// sequence number its ack will echo.
type flowKey struct {
	qid uint64
	seq uint8
}

// flowCharge remembers whom a send was charged against and for how
// many bytes. The ack releasing it may arrive from a DIFFERENT node
// (routing moved the envelope to a sibling replica); release always
// goes through the charge, so credit returns to the peer that lent it.
// sent distinguishes in-flight charges from ones still sitting in the
// deferred queue (only sent charges count against the window).
type flowCharge struct {
	node  simnet.NodeID
	bytes int
	sent  bool
}

// flowDeferred is one send parked until the receiver's window admits
// it. The send closure re-routes at flush time, so credit returning
// after a topology change still lands the payload on a live owner.
type flowDeferred struct {
	key   flowKey
	bytes int
	send  func()
}

// flowPeer is the sender-side credit state toward one receiver.
type flowPeer struct {
	winBytes      int // last advertised byte window (0 = none known)
	winMsgs       int // last advertised message window (0 = none known)
	ewmaWin       float64
	inflightBytes int // sent and unacknowledged
	inflightMsgs  int
	deferred      []flowDeferred
}

// flowTable is a peer's flow-control state: sender-side credit per
// receiver plus the incoming-size EWMA behind its own advertised
// window. It has its own mutex, locked strictly after p.mu when both
// are held (innermost lock); its methods never call back into the
// peer, and every method that may trigger sends RETURNS them as
// closures for the caller to run after unlocking.
type flowTable struct {
	mu       sync.Mutex
	disabled bool
	peers    map[simnet.NodeID]*flowPeer
	charges  map[flowKey]*flowCharge
	inSize   float64 // EWMA of incoming message sizes (advertiseWindow)
}

func newFlowTable(disabled bool) *flowTable {
	return &flowTable{
		disabled: disabled,
		peers:    make(map[simnet.NodeID]*flowPeer),
		charges:  make(map[flowKey]*flowCharge),
	}
}

func (t *flowTable) peer(id simnet.NodeID) *flowPeer {
	fp := t.peers[id]
	if fp == nil {
		fp = &flowPeer{}
		t.peers[id] = fp
	}
	return fp
}

// fits reports whether one more send of `bytes` stays inside the
// peer's advertised window. An unknown window (0) never gates, and a
// peer with nothing in flight always fits — the ≥1-in-flight liveness
// rule.
func (fp *flowPeer) fits(bytes int) bool {
	if fp.inflightMsgs == 0 {
		return true
	}
	if fp.winMsgs > 0 && fp.inflightMsgs+1 > fp.winMsgs {
		return false
	}
	if fp.winBytes > 0 && fp.inflightBytes+bytes > fp.winBytes {
		return false
	}
	return true
}

// submit charges one bulk send of `bytes` toward `to` under `key` and
// either performs it now (returns true) or defers it FIFO until credit
// returns (returns false — the caller counts the stall). FIFO order is
// strict: a fitting send still queues behind earlier deferred ones, so
// entries reach a slow receiver in issue order.
func (t *flowTable) submit(to simnet.NodeID, key flowKey, bytes int, send func()) bool {
	if t.disabled {
		send()
		return true
	}
	t.mu.Lock()
	fp := t.peer(to)
	if len(fp.deferred) == 0 && fp.fits(bytes) {
		fp.inflightMsgs++
		fp.inflightBytes += bytes
		t.charges[key] = &flowCharge{node: to, bytes: bytes, sent: true}
		t.mu.Unlock()
		send()
		return true
	}
	t.charges[key] = &flowCharge{node: to, bytes: bytes}
	fp.deferred = append(fp.deferred, flowDeferred{key: key, bytes: bytes, send: send})
	t.mu.Unlock()
	return false
}

// fitsConservative is fits with slow-start semantics for best-effort
// streams: an UNKNOWN window gates at the defaults instead of passing
// freely, so a gossip burst toward a peer that has never advertised
// (a fresh replica, a rejoiner mid-catch-up) stays bounded until real
// credit news arrives. Reliable sends keep plain fits — first-contact
// inserts must not wait on credit nobody has promised.
func (fp *flowPeer) fitsConservative(bytes int) bool {
	if fp.winMsgs > 0 || fp.winBytes > 0 {
		return fp.fits(bytes)
	}
	if fp.inflightMsgs == 0 {
		return true
	}
	return fp.inflightMsgs+1 <= DefaultFlowWindowMsgs &&
		fp.inflightBytes+bytes <= DefaultFlowWindowBytes
}

// trySubmit charges and performs one best-effort send if the window
// admits it right now, and otherwise declines WITHOUT queueing — the
// caller keeps the payload (eager gossip coalesces it into a pending
// buffer) and retries when credit frees. Declining preserves FIFO for
// the deferred queue: a parked reliable send is never overtaken.
func (t *flowTable) trySubmit(to simnet.NodeID, key flowKey, bytes int, send func()) bool {
	if t.disabled {
		send()
		return true
	}
	t.mu.Lock()
	fp := t.peer(to)
	if len(fp.deferred) > 0 || !fp.fitsConservative(bytes) {
		t.mu.Unlock()
		return false
	}
	fp.inflightMsgs++
	fp.inflightBytes += bytes
	t.charges[key] = &flowCharge{node: to, bytes: bytes, sent: true}
	t.mu.Unlock()
	send()
	return true
}

// windowBytesOf reports the last byte window a peer advertised (0 when
// none known) — the batch bound of a gossip flush.
func (t *flowTable) windowBytesOf(id simnet.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fp := t.peers[id]; fp != nil {
		return fp.winBytes
	}
	return 0
}

// release settles the charge under key (its ack arrived), folds the
// acking node's piggybacked window in, and returns the deferred sends
// the freed credit admits. The ack's sender may differ from the
// charged node: the window news applies to `from`, the credit returns
// to the charge's node, and both queues get a flush chance.
func (t *flowTable) release(key flowKey, from simnet.NodeID, winBytes, winMsgs int) []func() {
	if t.disabled {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if winBytes > 0 || winMsgs > 0 {
		t.windowLocked(from, winBytes, winMsgs)
	}
	var out []func()
	if c, ok := t.charges[key]; ok {
		delete(t.charges, key)
		t.unchargeLocked(c)
		out = t.flushLocked(c.node)
		if c.node == from {
			return out
		}
	}
	return append(out, t.flushLocked(from)...)
}

// unchargeLocked returns a SENT charge's credit; a still-deferred
// charge never consumed any.
func (t *flowTable) unchargeLocked(c *flowCharge) {
	if !c.sent {
		return
	}
	fp := t.peers[c.node]
	if fp == nil {
		return
	}
	if fp.inflightMsgs--; fp.inflightMsgs < 0 {
		fp.inflightMsgs = 0
	}
	if fp.inflightBytes -= c.bytes; fp.inflightBytes < 0 {
		fp.inflightBytes = 0
	}
}

// window records a receiver's freshly advertised window and flushes
// any deferred sends the new credit admits.
func (t *flowTable) window(from simnet.NodeID, winBytes, winMsgs int) []func() {
	if t.disabled || (winBytes == 0 && winMsgs == 0) {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.windowLocked(from, winBytes, winMsgs)
	return t.flushLocked(from)
}

func (t *flowTable) windowLocked(from simnet.NodeID, winBytes, winMsgs int) {
	fp := t.peer(from)
	fp.winBytes = winBytes
	fp.winMsgs = winMsgs
	if fp.ewmaWin == 0 {
		fp.ewmaWin = float64(winBytes)
	} else {
		fp.ewmaWin += flowEwmaAlpha * (float64(winBytes) - fp.ewmaWin)
	}
}

// flushLocked pops deferred sends for one peer while the window admits
// them, charging each as it goes out. Entries whose charge was
// released while they waited (operation completed or expired) are
// dropped — nobody needs them anymore.
func (t *flowTable) flushLocked(id simnet.NodeID) []func() {
	fp := t.peers[id]
	if fp == nil {
		return nil
	}
	var out []func()
	for len(fp.deferred) > 0 {
		d := fp.deferred[0]
		c, ok := t.charges[d.key]
		if !ok || c.sent {
			// Released while deferred, or re-sent by a failover path.
			fp.deferred = fp.deferred[1:]
			continue
		}
		if !fp.fits(d.bytes) {
			break
		}
		fp.deferred = fp.deferred[1:]
		c.sent = true
		fp.inflightMsgs++
		fp.inflightBytes += d.bytes
		out = append(out, d.send)
	}
	if len(fp.deferred) == 0 {
		fp.deferred = nil
	}
	return out
}

// releaseNode abandons every charge held against one receiver and
// flushes its whole deferred queue unconditionally — the failover
// release: the receiver is dead, hedged around, or its claim moved, so
// holding credit against it can only strand the sender. The deferred
// sends still run (their closures re-route, finding a live owner);
// duplicate deliveries the flush may cause are harmless (store version
// tie-break, ack dedup).
func (t *flowTable) releaseNode(id simnet.NodeID) []func() {
	if t.disabled {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fp := t.peers[id]
	var out []func()
	if fp != nil {
		for _, d := range fp.deferred {
			if c, ok := t.charges[d.key]; ok && !c.sent {
				out = append(out, d.send)
			}
		}
		fp.deferred = nil
		fp.inflightMsgs, fp.inflightBytes = 0, 0
	}
	for k, c := range t.charges {
		if c.node == id {
			delete(t.charges, k)
		}
	}
	return out
}

// releaseKey abandons one charge without an ack (its entry is being
// re-routed by the retry timer): the credit returns, and if the charge
// was still deferred the retry's own send supersedes the parked one.
func (t *flowTable) releaseKey(key flowKey) []func() {
	if t.disabled {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.charges[key]
	if !ok {
		return nil
	}
	delete(t.charges, key)
	t.unchargeLocked(c)
	return t.flushLocked(c.node)
}

// releaseOp settles every charge of one operation (completion, expiry
// or cancel), flushing whatever the returned credit admits.
func (t *flowTable) releaseOp(qid uint64) []func() {
	if t.disabled {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	touched := map[simnet.NodeID]bool{}
	for k, c := range t.charges {
		if k.qid != qid {
			continue
		}
		delete(t.charges, k)
		t.unchargeLocked(c)
		touched[c.node] = true
	}
	var out []func()
	for id := range touched {
		out = append(out, t.flushLocked(id)...)
	}
	return out
}

// penalty is the chooser-visible pressure toward one peer: deferred
// sends waiting on credit weigh heaviest, a fully consumed window adds
// one more — added to Transport.Load in pickReplicaLocked so power-of-
// two-choices steers new reads away from a receiver this sender is
// already stalled on.
func (t *flowTable) penalty(id simnet.NodeID) int {
	if t.disabled {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fp := t.peers[id]
	if fp == nil {
		return 0
	}
	pen := 2 * len(fp.deferred)
	if fp.inflightMsgs > 0 && !fp.fits(minAdvertiseBytes) {
		pen++
	}
	return pen
}

// ewmaWindow returns the smoothed advertised byte window of one peer
// (0 when none has been observed) — the slow pressure signal.
func (t *flowTable) ewmaWindow(id simnet.NodeID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fp := t.peers[id]; fp != nil {
		return fp.ewmaWin
	}
	return 0
}

// observeIn folds one incoming message size into the EWMA behind the
// peer's own advertised byte window.
func (t *flowTable) observeIn(size int) {
	if t.disabled || size <= 0 {
		return
	}
	t.mu.Lock()
	if t.inSize == 0 {
		t.inSize = float64(size)
	} else {
		t.inSize += flowEwmaAlpha * (float64(size) - t.inSize)
	}
	t.mu.Unlock()
}

// avgInSize is the EWMA of incoming message sizes, defaulting to a
// plausible entry size before any message has been observed.
func (t *flowTable) avgInSize() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inSize == 0 {
		return 256
	}
	return t.inSize
}

// inflight reports the committed in-flight toward one peer (tests).
func (t *flowTable) inflight(id simnet.NodeID) (msgs, bytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fp := t.peers[id]; fp != nil {
		return fp.inflightMsgs, fp.inflightBytes
	}
	return 0, 0
}

// deferredLen reports the deferred-queue depth toward one peer (tests
// and diagnostics).
func (t *flowTable) deferredLen(id simnet.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fp := t.peers[id]; fp != nil {
		return len(fp.deferred)
	}
	return 0
}
