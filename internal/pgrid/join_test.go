package pgrid

import (
	"fmt"
	"testing"
	"time"

	"unistore/internal/triple"
)

// TestLateJoinIntegrates: a fresh peer with an empty path joins a
// running overlay purely via exchanges (the demo's "allowing interested
// people to include their own machines into a running P-Grid overlay").
func TestLateJoinIntegrates(t *testing.T) {
	net := newNet(41)
	peers := BuildBalanced(net, 16, 1, DefaultConfig())
	for i := 0; i < 40; i++ {
		peers[i%16].InsertTriple(triple.TN(fmt.Sprintf("d%d", i), "age", float64(i)), 1)
	}
	net.Run()

	joiner := NewPeer(net, DefaultConfig())
	// A few exchange rounds against random existing peers; the
	// recursive refinement walks the joiner into its niche.
	for r := 0; r < 8; r++ {
		joiner.StartExchange(peers[net.Rand().Intn(len(peers))].ID())
		net.RunFor(2 * time.Second)
		net.Settle()
	}
	if joiner.Path().Len() == 0 {
		t.Fatal("joiner never specialized")
	}
	// The joiner can query the overlay.
	res := joiner.LookupSync(triple.ByAV, triple.AVKey("age", triple.N(7)))
	if !res.Complete || len(res.Entries) != 1 {
		t.Fatalf("joiner lookup failed: %+v", res)
	}
	// And the overlay can route inserts *to* the joiner's partition:
	// data inserted after the join lands correctly wherever it belongs.
	tr := triple.T("late", "name", "newcomer")
	peers[0].InsertTripleSync(tr, 1)
	res = joiner.LookupSync(triple.ByAV, triple.AVKey("name", triple.S("newcomer")))
	if !res.Complete || len(res.Entries) != 1 {
		t.Fatalf("post-join insert not visible to joiner: %+v", res)
	}
}

// TestRouteFailureCounting: with every reference dead, forwarding is
// counted as a failure rather than looping.
func TestRouteFailureCounting(t *testing.T) {
	net := newNet(42)
	peers := BuildBalanced(net, 8, 1, DefaultConfig())
	// Kill everything except peer 0.
	for _, p := range peers[1:] {
		net.Kill(p.ID())
	}
	p := peers[0]
	// A key outside p's partition cannot be routed anywhere live.
	target := p.Path().Flip(0)
	before := p.Stats().RouteFailures
	h := p.Lookup(triple.ByAV, triple.AVKey("zz", triple.S("zz")), nil)
	_ = target
	net.RunFor(time.Second)
	if p.Stats().RouteFailures <= before && !h.Done() {
		// Either the route failed (counted) or a response arrived
		// (impossible: all dead). The op must eventually expire.
		t.Log("no immediate failure; relying on op expiry")
	}
	res := h.Wait(5 * time.Minute)
	if res.Complete {
		t.Fatal("lookup across dead peers must not report complete")
	}
}

// TestShowerShareConservation: every range query's shares sum exactly
// to TotalShare on a healthy network, whatever the range.
func TestShowerShareConservation(t *testing.T) {
	net := newNet(43)
	peers := BuildBalanced(net, 24, 1, DefaultConfig())
	for i := 0; i < 60; i++ {
		peers[i%24].InsertTriple(triple.TN(fmt.Sprintf("s%d", i), "age", float64(i%50)), 1)
	}
	net.Run()
	ranges := []struct {
		lo, hi float64
	}{
		{0, 1}, {10, 30}, {0, 50}, {45, 49},
	}
	for _, r := range ranges {
		lo, hi := triple.N(r.lo), triple.N(r.hi)
		res := peers[5].RangeQuerySync(triple.ByAV, triple.AVRange("age", lo, &hi))
		if !res.Complete {
			t.Fatalf("range [%v,%v) incomplete: shares lost", r.lo, r.hi)
		}
	}
}

// TestConcurrentQueriesInterleave: many queries in flight at once must
// not cross-contaminate responses (QID correlation).
func TestConcurrentQueriesInterleave(t *testing.T) {
	net := newNet(44)
	peers := BuildBalanced(net, 16, 1, DefaultConfig())
	for i := 0; i < 30; i++ {
		peers[i%16].InsertTriple(triple.TN(fmt.Sprintf("c%d", i), "age", float64(i)), 1)
	}
	net.Run()
	type pending struct {
		h    *Handle
		want float64
	}
	var ps []pending
	for i := 0; i < 30; i += 3 {
		h := peers[i%16].Lookup(triple.ByAV, triple.AVKey("age", triple.N(float64(i))), nil)
		ps = append(ps, pending{h: h, want: float64(i)})
	}
	net.Run()
	for _, p := range ps {
		res := p.h.Result()
		if !res.Complete || len(res.Entries) != 1 || res.Entries[0].Triple.Val.Num != p.want {
			t.Fatalf("interleaved query for %v got %+v", p.want, res)
		}
	}
}
