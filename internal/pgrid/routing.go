package pgrid

import (
	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/trace"
	"unistore/internal/triple"
)

// handleRoute implements P-Grid prefix routing: each hop forwards the
// envelope to a reference whose path agrees with the target on at least
// one more bit, so an envelope reaches the responsible peer in at most
// len(path) hops — O(log n) for a balanced trie.
func (p *Peer) handleRoute(env routeEnvelope, from simnet.NodeID, size int) {
	if p.Responsible(env.Target) {
		p.deliver(env, from, size)
		return
	}
	p.forward(env)
}

// maxRouteHops bounds an envelope's life. Stale references (paths
// recorded before a split or merge) can route sideways; the TTL turns a
// potential loop into a counted routing failure.
const maxRouteHops = 64

// forward sends the envelope one hop closer to its target. The hop
// first consults its OWN routing cache: a cached owner whose recorded
// path resolves strictly more target bits than this peer's own path
// takes the envelope the rest of the way in one leg (the
// strict-progress guard is what keeps two mutually stale caches from
// bouncing an envelope back and forth; the hop TTL bounds what churn
// can still construct). Otherwise it picks a live reference at the
// divergence level, trying alternates for fault tolerance; with none
// live, the envelope is dropped and counted.
func (p *Peer) forward(env routeEnvelope) {
	if env.Hops >= maxRouteHops {
		p.stats.routeFailures.Add(1)
		return
	}
	if ref, ok := p.cachedOwner(env.Target); ok && ref.ID != p.id {
		p.mu.RLock()
		progress := ref.Path.CommonPrefixLen(env.Target) > p.path.CommonPrefixLen(env.Target)
		p.mu.RUnlock()
		if progress {
			env.Hops++
			p.stats.forwarded.Add(1)
			p.stats.cacheFwdHits.Add(1)
			p.net.Send(p.id, ref.ID, KindRoute, env)
			return
		}
	}
	p.mu.RLock()
	level := env.Target.CommonPrefixLen(p.path)
	// level < len(path): our bit at `level` differs from the target's,
	// so refs[level] covers the target's side of the trie.
	if level >= len(p.refs) {
		// Target extends our whole path — we are responsible (handled
		// by caller) or the trie is inconsistent; drop.
		p.mu.RUnlock()
		p.stats.routeFailures.Add(1)
		return
	}
	ref, ok := p.pickRefLocked(level)
	p.mu.RUnlock()
	env.Hops++
	if ok {
		p.stats.forwarded.Add(1)
		p.net.Send(p.id, ref.ID, KindRoute, env)
		return
	}
	p.stats.routeFailures.Add(1)
}

// pickRef chooses a live reference at the given level: the first live
// entry in table order. Load spreads across the cluster because every
// peer samples its OWN random references at wiring time; keeping the
// per-call choice deterministic makes routing — and therefore a traced
// query's span tree — a pure function of the overlay, identical on
// simnet and real transports for the same seeded layout.
func (p *Peer) pickRef(level int) (Ref, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pickRefLocked(level)
}

// pickRefLocked is pickRef with p.mu already held (read or write).
// Among the live references it prefers the shortest path (a peer
// higher in the sibling subtree resolves more of any target in one
// leg), breaking ties by path order then table order.
func (p *Peer) pickRefLocked(level int) (Ref, bool) {
	if level < 0 || level >= len(p.refs) {
		return Ref{}, false
	}
	var best Ref
	found := false
	for _, ref := range p.refs[level] {
		if !p.net.Alive(ref.ID) {
			continue
		}
		if !found || ref.Path.Len() < best.Path.Len() ||
			(ref.Path.Len() == best.Path.Len() && ref.Path.Compare(best.Path) < 0) {
			best, found = ref, true
		}
	}
	return best, found
}

// route starts an envelope toward target from this peer, delivering
// locally when this peer is already responsible. A routing-cache hit
// sends the envelope to the learned partition owner in one hop; if the
// cached owner turns out stale (its partition split or moved), it
// simply forwards the envelope onward — the fast path can add a leg,
// never lose a message — and the eventual response repairs the cache.
func (p *Peer) route(target keys.Key, inner any) {
	p.routeSpent(target, inner, 0)
}

// routeSpent is route for a payload whose journey already cost `spent`
// legs the sender accounted (a mis-addressed probe being re-routed):
// the spent legs ride along so end-to-end hop reporting stays truthful.
func (p *Peer) routeSpent(target keys.Key, inner any, spent int) {
	env := routeEnvelope{Target: target, Spent: spent, Inner: inner}
	if p.Responsible(target) {
		p.deliver(env, p.id, 0)
		return
	}
	// Hit/miss counters track probe traffic only: they feed the cost
	// model's CacheHitRate, which prices lookups — a bulk load's
	// fire-and-forget inserts (which get no learning response) would
	// otherwise dilute the rate toward zero forever.
	_, probe := inner.(lookupReq)
	if ref, ok := p.cachedOwner(target); ok {
		if probe {
			p.stats.cacheHits.Add(1)
		}
		env.Hops = 1
		p.net.Send(p.id, ref.ID, KindRoute, env)
		return
	}
	if probe {
		p.stats.cacheMisses.Add(1)
	}
	p.forward(env)
}

// addRef installs a reference at the given level, growing the table as
// needed, deduplicating, and respecting the per-level bound.
func (p *Peer) addRef(level int, r Ref) {
	if r.ID == p.id {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.refs) <= level {
		p.refs = append(p.refs, nil)
	}
	for i, old := range p.refs[level] {
		if old.ID == r.ID {
			p.refs[level][i] = r // refresh the recorded path
			return
		}
	}
	if len(p.refs[level]) >= p.cfg.RefsPerLevel {
		// Replace a random entry so long-lived peers still rotate in
		// fresh references.
		p.refs[level][p.net.Intn(len(p.refs[level]))] = r
		return
	}
	p.refs[level] = append(p.refs[level], r)
}

// addReplica records a same-path replica.
func (p *Peer) addReplica(r Ref) {
	if r.ID == p.id {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, old := range p.replicas {
		if old.ID == r.ID {
			p.replicas[i] = r
			return
		}
	}
	if len(p.replicas) >= p.cfg.MaxReplicas {
		p.replicas[p.net.Intn(len(p.replicas))] = r
		return
	}
	p.replicas = append(p.replicas, r)
}

// setPath rewrites the peer's path, truncating or growing the routing
// table to match. The routing cache is cleared wholesale: a local path
// change (bootstrap split, merge, late join) means the trie this peer
// learned its partition map against no longer exists.
func (p *Peer) setPath(path keys.Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.path = path
	for len(p.refs) > path.Len() {
		p.refs = p.refs[:len(p.refs)-1]
	}
	for len(p.refs) < path.Len() {
		p.refs = append(p.refs, nil)
	}
	if n := p.cache.clearLocked(); n > 0 {
		p.stats.cacheInvalidations.Add(int64(n))
	}
}

// handleRange implements the shower algorithm: at each level of the
// trie not yet resolved, forward the query into the sibling subtree if
// it overlaps the range, then serve the local overlap. Every peer whose
// partition overlaps the range receives the query exactly once, after
// at most depth hops. size is the delivering message's wire size (0
// when the origin enters its own shower locally).
func (p *Peer) handleRange(msg rangeMsg, size int) {
	// The shower's advertised origin window is a credit sighting too.
	p.runFlow(p.flow.window(msg.Origin, msg.WinBytes, msg.WinMsgs))
	// One range span per shower participant: it owns the message that
	// delivered this branch (none for the origin's local entry) and the
	// branch's first response; forwarded branches parent under it, so
	// the assembled trace mirrors the trie fan-out.
	msgsIn := 0
	if size > 0 {
		msgsIn = 1
	}
	ws := p.beginSpan(msg.TC, trace.OpRange, msgsIn, size)
	// Collect the levels whose sibling subtrees overlap the range.
	type branch struct {
		level   int
		ref     Ref
		sibling keys.Key
	}
	var branches []branch
	failures := 0
	p.mu.RLock()
	for l := msg.Level; l < len(p.refs); l++ {
		sibling := p.path.Prefix(l).Append(1 - p.path.Bit(l))
		if !msg.R.OverlapsPrefix(sibling) {
			continue
		}
		if ref, ok := p.pickRefLocked(l); ok {
			branches = append(branches, branch{level: l, ref: ref, sibling: sibling})
		} else {
			failures++
		}
	}
	p.mu.RUnlock()
	if failures > 0 {
		p.stats.routeFailures.Add(int64(failures))
	}
	// Split the share mass: local serving keeps one part, each branch
	// takes one part; the remainder sticks to the local part so the
	// total is conserved exactly.
	parts := int64(len(branches)) + 1
	each := msg.Share / parts
	local := msg.Share - each*int64(len(branches))
	for _, b := range branches {
		fwd := msg
		fwd.Level = b.level + 1
		fwd.Share = each
		fwd.Hops = msg.Hops + 1
		// Clip each branch to its sibling subtree's region: under live
		// splits and merges a recipient whose path changed in flight
		// re-branches from its NEW position, and the clip keeps that
		// re-branching inside the region this branch is accountable
		// for — no region is ever served under two branches' shares.
		fwd.R = clipRangeToPrefix(msg.R, b.sibling)
		if ws != nil {
			fwd.TC = msg.TC.Child(ws.ID)
		}
		p.net.Send(p.id, b.ref.ID, KindRange, fwd)
	}
	p.serveRange(msg, local, ws)
}

// serveRange answers the part of the range this peer stores. With a
// page size set (and actual entry payloads requested), the answer is
// the first page plus a continuation token; count-only probes are
// never paged — a count is one integer regardless of cardinality.
// Desc serves the overlap top-down so descending ranked scans stream.
func (p *Peer) serveRange(msg rangeMsg, share int64, ws *trace.WireSpan) {
	p.stats.rangeServed.Add(1)
	// Serve only the intersection of the queried range with this peer's
	// own partition, and bake the partition into paged continuations as
	// the stream's identity. Under live splits and merges the store can
	// transiently hold a neighbouring partition's entries (merge
	// handoff) or lose half its region (split); the clip pins every
	// answer to the partition it was served under, which is what keeps
	// the origin's claim and coverage bookkeeping exact.
	path := p.Path()
	r := msg.R
	if path.Len() > 0 {
		r = clipRangeToPrefix(r, path)
	}
	if msg.Agg != nil && !msg.Probe {
		// Pushed-down aggregation: answer with per-group states (paged
		// by groups when a page size is set) instead of rows.
		p.serveAggPage(msg.QID, msg.Origin, pageCont{
			Kind: msg.Kind, R: r, Share: share,
			PageSize: msg.PageSize, Hops: msg.Hops, Agg: msg.Agg,
			StreamPath: path,
		}, msg.WinBytes, ws, msg.TC.TraceID)
		return
	}
	if msg.PageSize > 0 && !msg.Probe {
		p.servePage(msg.QID, msg.Origin, pageCont{
			Kind: msg.Kind, R: r, Share: share,
			PageSize: msg.PageSize, Hops: msg.Hops, Desc: msg.Desc,
			StreamPath: path,
		}, msg.WinBytes, ws, msg.TC.TraceID)
		return
	}
	resp := queryResp{QID: msg.QID, Share: share, Hops: msg.Hops, Final: true}
	p.stampResp(&resp)
	scan := p.store.Scan
	if msg.Desc {
		scan = p.store.ScanDesc
	}
	scan(triple.IndexKind(msg.Kind), r, func(e store.Entry) bool {
		if msg.Probe {
			resp.Count++
		} else {
			resp.Entries = append(resp.Entries, e)
			resp.Count++
		}
		return true
	})
	resp.TS = p.finishSpan(ws, msg.TC.TraceID, resp.Count)
	p.net.Send(p.id, msg.Origin, KindResponse, resp)
}

// servePage answers one page of this peer's overlap with a range: at
// most cont.PageSize entries starting at the key cursor (R.Lo, with
// the first cont.SkipAtLo entries of that exact key's bucket already
// sent). A partial page carries Share 0 and a continuation token whose
// cursor is the last key sent; the final page releases the branch
// share, completing the origin's accounting. The server keeps no
// per-scan state — the token is echoed back verbatim in the next
// pageReq — and the key-aligned cursor means entries applied or
// removed between pulls outside the cursor's bucket never duplicate or
// drop rows of the scan.
//
// winBytes is the origin's advertised byte window (refreshed on every
// pull): the page closes early once its entry payload would exceed it,
// so PageSize is a CAP and the receiver's window sets the effective
// page. A window smaller than one entry still ships one — progress
// over precision, the receiver asked for data after all.
func (p *Peer) servePage(qid uint64, origin simnet.NodeID, cont pageCont, winBytes int, ws *trace.WireSpan, traceID uint64) {
	// Reconcile the stream with the server's current partition first: a
	// split deepens and clips it, a merge keeps it, an unrelated move
	// drops the pull (the origin's hedge finds a live replica).
	if !p.adjustStream(&cont) {
		return
	}
	if cont.Agg != nil {
		p.serveAggPage(qid, origin, cont, winBytes, ws, traceID)
		return
	}
	if cont.Desc {
		p.servePageDesc(qid, origin, cont, winBytes, ws, traceID)
		return
	}
	p.stats.pagesServed.Add(1)
	resp := queryResp{QID: qid, Hops: cont.Hops}
	p.stampResp(&resp)
	resp.ScanPath = cont.StreamPath
	skipLeft := cont.SkipAtLo
	pageBytes := 0
	var last keys.Key
	lastCount := 0 // entries sent at key `last` this page
	more := false
	p.store.Scan(triple.IndexKind(cont.Kind), cont.R, func(e store.Entry) bool {
		if skipLeft > 0 && e.Key.Equal(cont.R.Lo) {
			skipLeft--
			return true
		}
		if len(resp.Entries) >= cont.PageSize ||
			(winBytes > 0 && len(resp.Entries) > 0 && pageBytes+e.WireSize() > winBytes) {
			more = true
			return false
		}
		pageBytes += e.WireSize()
		if last.Equal(e.Key) {
			lastCount++
		} else {
			last = e.Key
			lastCount = 1
		}
		resp.Entries = append(resp.Entries, e)
		resp.Count++
		return true
	})
	if more {
		next := cont
		next.R.Lo = last
		next.SkipAtLo = lastCount
		if last.Equal(cont.R.Lo) {
			// The page never left the resumed bucket: carry the prior
			// skip forward.
			next.SkipAtLo += cont.SkipAtLo
		}
		resp.Cont = &next
	} else {
		resp.Share = cont.Share
		resp.Final = true
	}
	resp.TS = p.finishSpan(ws, traceID, resp.Count)
	p.net.Send(p.id, origin, KindResponse, resp)
}

// servePageDesc is servePage walking the overlap top-down: at most
// PageSize entries ending at the key cursor carried in cont.Cursor
// (with the first SkipAtLo entries of that bucket already sent). The
// continuation tightens R.Hi to just above the cursor so the next page
// resumes without rescanning, and — like the ascending form — the
// token stays stateless and key-aligned, so any replica of the
// partition can serve the next page without duplicating or dropping
// rows. winBytes caps the page payload exactly as in servePage.
func (p *Peer) servePageDesc(qid uint64, origin simnet.NodeID, cont pageCont, winBytes int, ws *trace.WireSpan, traceID uint64) {
	p.stats.pagesServed.Add(1)
	resp := queryResp{QID: qid, Hops: cont.Hops}
	p.stampResp(&resp)
	resp.ScanPath = cont.StreamPath
	skipLeft := cont.SkipAtLo
	cursor := cont.Cursor
	pageBytes := 0
	var last keys.Key
	lastCount := 0
	more := false
	p.store.ScanDesc(triple.IndexKind(cont.Kind), cont.R, func(e store.Entry) bool {
		if cursor.Len() > 0 {
			if e.Key.Compare(cursor) > 0 {
				// Applied above the cursor between pulls: already past.
				return true
			}
			if skipLeft > 0 && e.Key.Equal(cursor) {
				skipLeft--
				return true
			}
		}
		if len(resp.Entries) >= cont.PageSize ||
			(winBytes > 0 && len(resp.Entries) > 0 && pageBytes+e.WireSize() > winBytes) {
			more = true
			return false
		}
		pageBytes += e.WireSize()
		if last.Equal(e.Key) {
			lastCount++
		} else {
			last = e.Key
			lastCount = 1
		}
		resp.Entries = append(resp.Entries, e)
		resp.Count++
		return true
	})
	if more {
		next := cont
		next.Cursor = last
		next.SkipAtLo = lastCount
		if cursor.Len() > 0 && last.Equal(cursor) {
			next.SkipAtLo += cont.SkipAtLo
		}
		if hi, ok := last.Successor(); ok {
			next.R.Hi = hi
			next.R.HiOpen = true
		}
		resp.Cont = &next
	} else {
		resp.Share = cont.Share
		resp.Final = true
	}
	resp.TS = p.finishSpan(ws, traceID, resp.Count)
	p.net.Send(p.id, origin, KindResponse, resp)
}

// handlePage serves a continuation pulled by a paged scan's origin,
// honoring the pull's freshly advertised receive window (which also
// counts as a credit sighting for bulk sends toward the origin).
func (p *Peer) handlePage(req pageReq, size int) {
	p.runFlow(p.flow.window(req.Origin, req.WinBytes, req.WinMsgs))
	ws := p.beginSpan(req.TC, trace.OpPage, 1, size)
	p.servePage(req.QID, req.Origin, req.Cont, req.WinBytes, ws, req.TC.TraceID)
}

// handleMultiLookup answers a batch of exact-key probes in one
// response. Keys this peer is responsible for are served together
// (Probes counts them, so the origin's completion accounting stays
// per-key exact); keys a stale sender cache mis-attributed are
// re-routed as ordinary lookups toward their real owners.
func (p *Peer) handleMultiLookup(req multiLookupReq, size int) {
	ws := p.beginSpan(req.TC, trace.OpMultiLookup, 1, size)
	childTC := req.TC
	if ws != nil {
		childTC = req.TC.Child(ws.ID)
	}
	resp := queryResp{QID: req.QID, Hops: 1}
	p.stampResp(&resp)
	var covered []store.Entry
	for _, k := range req.Keys {
		if !p.Responsible(k) {
			// The probe leg that landed here is already spent; the
			// re-route continues the journey's hop count from 1.
			p.routeSpent(k, lookupReq{QID: req.QID, Origin: req.Origin, Kind: req.Kind, Key: k, Agg: req.Agg, TC: childTC}, 1)
			continue
		}
		p.stats.delivered.Add(1)
		resp.Probes++
		resp.ProbeKeys = append(resp.ProbeKeys, k)
		entries := p.store.Lookup(triple.IndexKind(req.Kind), k)
		if req.Agg != nil {
			covered = append(covered, entries...)
			continue
		}
		resp.Entries = append(resp.Entries, entries...)
		resp.Count += len(entries)
	}
	if resp.Probes == 0 {
		if ws == nil {
			return
		}
		// Traced batch that covered none of its keys (every probe
		// re-routed): the span must still reach home or the re-routed
		// lookups' spans would orphan. Probes -1 marks the response as
		// trace-only — it carries no completion signal.
		resp.Probes = -1
		resp.ProbeKeys = nil
	}
	if req.Agg != nil && resp.Probes > 0 {
		// Aggregated probe batch: one set of group states covers every
		// key this peer answered.
		aggProbeResp(&resp, req.Agg, covered)
	}
	resp.TS = p.finishSpan(ws, req.TC.TraceID, resp.Count)
	p.net.Send(p.id, req.Origin, KindResponse, resp)
}
