package pgrid

import (
	"fmt"
	"sort"
	"strings"

	"unistore/internal/keys"
)

// BuildBalanced constructs a P-Grid overlay of n*replicas peers whose
// trie is balanced by peer count: every partition holds `replicas`
// peers and partitions split the key space evenly. This is the
// experiment workhorse — it produces in one step the trie that the
// decentralized exchange protocol (see exchange.go) converges to under
// uniform data, so large-scale runs skip the bootstrap phase.
func BuildBalanced(net Transport, n, replicas int, cfg Config) []*Peer {
	if n <= 0 {
		panic("pgrid: BuildBalanced needs n > 0")
	}
	if replicas <= 0 {
		replicas = 1
	}
	paths := balancedPaths(n)
	return assemble(net, paths, replicas, cfg)
}

// balancedPaths returns n trie leaf paths splitting peers evenly: the
// recursion halves the peer count per subtree, so leaf depths differ by
// at most one.
func balancedPaths(n int) []keys.Key {
	var out []keys.Key
	var rec func(prefix keys.Key, count int)
	rec = func(prefix keys.Key, count int) {
		if count == 1 {
			out = append(out, prefix)
			return
		}
		left := count / 2
		rec(prefix.Append(0), left)
		rec(prefix.Append(1), count-left)
	}
	rec(keys.Empty, n)
	return out
}

// BuildAdaptive constructs an overlay whose trie adapts to the data
// distribution, reproducing the effect of P-Grid's skew-aware load
// balancing (Aberer et al., VLDB 2005): the partition holding the most
// sample keys splits first, so hot key regions get proportionally more
// peers and per-peer storage load evens out. samples should be the
// placement keys of (a sample of) the workload.
func BuildAdaptive(net Transport, n, replicas int, samples []keys.Key, cfg Config) []*Peer {
	if n <= 0 {
		panic("pgrid: BuildAdaptive needs n > 0")
	}
	if replicas <= 0 {
		replicas = 1
	}
	type leaf struct {
		prefix  keys.Key
		samples []keys.Key
	}
	leaves := []leaf{{prefix: keys.Empty, samples: samples}}
	for len(leaves) < n {
		// Split the fullest leaf. Linear scan keeps the code simple;
		// construction is not on any measured path.
		best, bestCount := -1, -1
		for i, l := range leaves {
			if len(l.samples) > bestCount {
				best, bestCount = i, len(l.samples)
			}
		}
		l := leaves[best]
		d := l.prefix.Len()
		var zero, one []keys.Key
		for _, k := range l.samples {
			if k.Len() <= d {
				// Sample shorter than the prefix: treat as bit 0.
				zero = append(zero, k)
				continue
			}
			if k.Bit(d) == 0 {
				zero = append(zero, k)
			} else {
				one = append(one, k)
			}
		}
		leaves[best] = leaf{prefix: l.prefix.Append(0), samples: zero}
		leaves = append(leaves, leaf{prefix: l.prefix.Append(1), samples: one})
	}
	paths := make([]keys.Key, len(leaves))
	for i, l := range leaves {
		paths[i] = l.prefix
	}
	return assemble(net, paths, replicas, cfg)
}

// assemble creates peers for the given partition paths (each `replicas`
// times), wires routing tables and replica groups, and returns all
// peers.
func assemble(net Transport, paths []keys.Key, replicas int, cfg Config) []*Peer {
	sort.Slice(paths, func(i, j int) bool { return paths[i].Compare(paths[j]) < 0 })
	var peers []*Peer
	groups := make([][]*Peer, len(paths))
	for gi, path := range paths {
		for r := 0; r < replicas; r++ {
			p := NewPeer(net, cfg)
			p.setPath(path)
			groups[gi] = append(groups[gi], p)
			peers = append(peers, p)
		}
	}
	// Replica groups know each other.
	for _, g := range groups {
		for _, a := range g {
			for _, b := range g {
				if a != b {
					a.addReplica(Ref{ID: b.id, Path: b.path})
				}
			}
		}
	}
	WireRouting(net, peers)
	return peers
}

// WireRouting (re)builds every peer's routing table from the global
// peer list: for each level l of a peer's path, it installs up to
// RefsPerLevel random references into the sibling subtree at l. The
// exchange protocol builds the same structure pairwise; experiments use
// this direct form. Existing references are discarded.
func WireRouting(net Transport, peers []*Peer) {
	// Sort peers by path string so each prefix owns a contiguous run.
	sorted := make([]*Peer, len(peers))
	copy(sorted, peers)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].path.String() < sorted[j].path.String()
	})
	pathStrs := make([]string, len(sorted))
	for i, p := range sorted {
		pathStrs[i] = p.path.String()
	}
	// peersWithPrefix returns the index range [lo, hi) of peers whose
	// path begins with prefix (or equals a prefix of it — i.e., whose
	// partition contains or intersects the prefix region).
	peersWithPrefix := func(prefix string) (int, int) {
		lo := sort.SearchStrings(pathStrs, prefix)
		// Paths sharing the prefix sort contiguously after lo; binary-
		// search the end of the run so wiring N peers costs O(N log² N)
		// rather than O(N²) at the deepest levels.
		hi := lo + sort.Search(len(pathStrs)-lo, func(i int) bool {
			return !strings.HasPrefix(pathStrs[lo+i], prefix)
		})
		return lo, hi
	}
	for _, p := range peers {
		p.refs = make([][]Ref, p.path.Len())
		for l := 0; l < p.path.Len(); l++ {
			sibling := p.path.Prefix(l).Append(1 - p.path.Bit(l)).String()
			lo, hi := peersWithPrefix(sibling)
			count := hi - lo
			if count == 0 {
				continue
			}
			want := p.cfg.RefsPerLevel
			if want > count {
				want = count
			}
			seen := make(map[int]bool, want)
			for len(seen) < want {
				i := lo + net.Intn(count)
				if seen[i] {
					continue
				}
				seen[i] = true
				q := sorted[i]
				p.addRef(l, Ref{ID: q.id, Path: q.path})
			}
		}
	}
}

// Partitions returns the distinct partition paths of a peer set, sorted.
func Partitions(peers []*Peer) []keys.Key {
	seen := make(map[string]keys.Key)
	for _, p := range peers {
		seen[p.path.String()] = p.path
	}
	out := make([]keys.Key, 0, len(seen))
	for _, k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// CheckTrie validates the structural invariant that partitions form a
// complete prefix-free cover of the key space: no partition is a prefix
// of another, and the partition count equals leaves of a full binary
// trie (sum of 2^-depth == 1). It returns an error describing the first
// violation.
func CheckTrie(peers []*Peer) error {
	parts := Partitions(peers)
	for i := 0; i < len(parts)-1; i++ {
		if parts[i+1].HasPrefix(parts[i]) {
			return fmt.Errorf("partition %s is a prefix of %s", parts[i], parts[i+1])
		}
	}
	// Σ 2^(maxDepth - depth) must equal 2^maxDepth.
	maxDepth := 0
	for _, p := range parts {
		if p.Len() > maxDepth {
			maxDepth = p.Len()
		}
	}
	var sum, full uint64
	full = 1 << uint(maxDepth)
	for _, p := range parts {
		sum += 1 << uint(maxDepth-p.Len())
	}
	if sum != full {
		return fmt.Errorf("partitions cover %d/%d of the key space", sum, full)
	}
	return nil
}
