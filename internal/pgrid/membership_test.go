package pgrid

import (
	"testing"

	"unistore/internal/keys"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// The live-membership regression suite: joins that trigger splits
// mid-scan, merges during paged pulls, and routing-cache self-repair.
// Everything runs on the deterministic simnet — same seeds, same
// interleavings, every run.

// scanAge opens a paged scan over the age region from a peer outside
// it and returns the origin, the handle and the collected stream.
func scanAge(t *testing.T, peers []*Peer) (*Peer, *Handle, *[]store.Entry) {
	t.Helper()
	probe := triple.AVKey("age", triple.N(0))
	var q *Peer
	for _, p := range peers {
		if !p.Responsible(probe) {
			q = p
			break
		}
	}
	if q == nil {
		t.Fatal("no peer outside the age region")
	}
	streamed := &[]store.Entry{}
	h := q.RangeQueryPages(triple.ByAV, triple.AVPrefixRange("age"), func(es []store.Entry) {
		*streamed = append(*streamed, es...)
	}, nil)
	return q, h, streamed
}

// checkExact asserts the stream holds each of the facts exactly once.
func checkExact(t *testing.T, streamed []store.Entry, facts int) {
	t.Helper()
	seen := map[string]int{}
	for _, e := range streamed {
		seen[e.Triple.OID]++
	}
	if len(seen) != facts {
		t.Errorf("streamed %d distinct facts, want %d", len(seen), facts)
	}
	for oid, n := range seen {
		if n != 1 {
			t.Errorf("fact %s streamed %d times, want once", oid, n)
		}
	}
}

// TestJoinTriggersSplitMidScanExact: a fresh peer joins a replica
// group whose pages are mid-flight toward a scan origin, the enlarged
// group then splits live — paths deepen, stores re-partition, the
// joiner takes one half — and the scan must still deliver every fact
// exactly once.
func TestJoinTriggersSplitMidScanExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 2
	const facts = 120
	net, peers := loadReplicated(91, 8, 2, facts, cfg)
	q, h, streamed := scanAge(t, peers)
	remotePageIn := func() bool {
		for _, e := range *streamed {
			if !e.Key.HasPrefix(q.Path()) {
				return true
			}
		}
		return false
	}
	for !remotePageIn() && net.Step() {
	}
	var server *Peer
	for _, p := range peers {
		if p != q && p.Stats().PagesServed > 0 {
			server = p
			break
		}
	}
	if server == nil {
		t.Fatal("no remote page server")
	}
	// The join: graceful entry into the serving group, state sync by
	// pages, all while the scan's pulls keep flowing.
	nb := NewPeer(net, cfg)
	nb.Join(server.ID())
	for i := 0; i < 6000 && (nb.Path().Len() == 0 || nb.Store().Len() < server.Store().Len()); i++ {
		if !net.Step() {
			break
		}
	}
	if nb.Path().Len() == 0 {
		t.Fatal("join never completed")
	}
	if nb.Store().Len() < server.Store().Len() {
		t.Fatalf("join state sync incomplete: %d < %d entries", nb.Store().Len(), server.Store().Len())
	}
	if h.Done() {
		t.Fatal("scan finished before the split — scenario lost its mid-flight property")
	}
	group := []*Peer{nb}
	for _, p := range peers {
		if p.Path().Equal(server.Path()) {
			group = append(group, p)
		}
	}
	oldLen := server.Path().Len()
	if err := SplitGroup(group); err != nil {
		t.Fatalf("live split: %v", err)
	}
	if server.Path().Len() != oldLen+1 || nb.Path().Len() != oldLen+1 {
		t.Fatalf("split did not deepen paths: server=%s joiner=%s", server.Path(), nb.Path())
	}
	res := h.Wait(0)
	if !res.Complete {
		t.Fatalf("scan incomplete across live split: %+v", res)
	}
	checkExact(t, *streamed, facts)
	if q.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", q.PendingOps())
	}
}

// TestMergeDuringPagedPullResumesExact: a replica group retires while
// a paged scan holds an open cursor into its partition — the leavers
// transfer their store to the sibling group, the sibling widens to the
// parent path, the leavers die. The resumed pulls must pick up at the
// cursor through the widened group, and the scan stays exact.
func TestMergeDuringPagedPullResumesExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 2
	const facts = 120
	net, peers := loadReplicated(92, 8, 2, facts, cfg)
	q, h, streamed := scanAge(t, peers)
	remotePageIn := func() bool {
		for _, e := range *streamed {
			if !e.Key.HasPrefix(q.Path()) {
				return true
			}
		}
		return false
	}
	for !remotePageIn() && net.Step() {
	}
	// Pick a serving group whose partition (and sibling partition) the
	// origin is not part of.
	var server *Peer
	for _, p := range peers {
		if p == q || p.Stats().PagesServed == 0 {
			continue
		}
		base := p.Path()
		sib := base.Prefix(base.Len() - 1).Append(1 - base.Bit(base.Len()-1))
		if !q.Path().Equal(base) && !q.Path().Equal(sib) {
			server = p
			break
		}
	}
	if server == nil {
		t.Fatal("no mergeable remote page server")
	}
	base := server.Path()
	sibPath := base.Prefix(base.Len() - 1).Append(1 - base.Bit(base.Len()-1))
	var leavers, sibs []*Peer
	for _, p := range peers {
		if p.Path().Equal(base) {
			leavers = append(leavers, p)
		} else if p.Path().Equal(sibPath) {
			sibs = append(sibs, p)
		}
	}
	if len(sibs) == 0 {
		t.Fatalf("sibling partition %s has no peers", sibPath)
	}
	// Data phase: leavers hand their store to the sibling group while
	// the scan keeps pulling.
	want := sibs[0].Store().Len() + leavers[0].Store().Len()
	TransferStores(leavers, sibs[0])
	for i := 0; i < 6000 && sibs[0].Store().Len() < want; i++ {
		if !net.Step() {
			break
		}
	}
	if sibs[0].Store().Len() < want {
		t.Fatalf("store transfer incomplete: %d < %d entries", sibs[0].Store().Len(), want)
	}
	if h.Done() {
		t.Fatal("scan finished before the merge — scenario lost its mid-flight property")
	}
	// Structure phase: the sibling group widens to the parent and the
	// leavers depart for good.
	if err := WidenGroup(sibs); err != nil {
		t.Fatalf("widen: %v", err)
	}
	for _, p := range leavers {
		net.Kill(p.ID())
	}
	res := h.Wait(0)
	if !res.Complete {
		t.Fatalf("scan incomplete across live merge: %+v", res)
	}
	checkExact(t, *streamed, facts)
	if q.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", q.PendingOps())
	}
}

// TestSplitInvalidatesCachesWarmProbeRecovers: a live split must not
// poison learned routing caches — the stale direct probe re-routes,
// answers exactly, repairs the origin's cache (visible as an
// invalidation), and the NEXT probe lands in one hop again.
func TestSplitInvalidatesCachesWarmProbeRecovers(t *testing.T) {
	net, peers := loadReplicated(93, 8, 2, 48, DefaultConfig())
	q := peers[0]
	var key keys.Key
	for i := 0; i < 48; i++ {
		if k := triple.AVKey("age", triple.N(float64(i))); !q.Responsible(k) {
			key = k
			break
		}
	}
	cold := q.LookupSync(triple.ByAV, key)
	if !cold.Complete || cold.Count != 1 {
		t.Fatalf("cold lookup: %+v", cold)
	}
	before := net.Stats().MessagesSent
	warm := q.LookupSync(triple.ByAV, key)
	if !warm.Complete || warm.Count != 1 {
		t.Fatalf("warm lookup: %+v", warm)
	}
	if n := net.Stats().MessagesSent - before; n > 2 {
		t.Fatalf("warm probe cost %d messages, want ≤2", n)
	}
	var owner *Peer
	for _, p := range peers {
		if p.Responsible(key) {
			owner = p
			break
		}
	}
	var group []*Peer
	for _, p := range peers {
		if p.Path().Equal(owner.Path()) {
			group = append(group, p)
		}
	}
	invalBefore := 0
	for _, p := range peers {
		invalBefore += p.Stats().RouteCacheInvalidations
	}
	if err := SplitGroup(group); err != nil {
		t.Fatalf("live split: %v", err)
	}
	net.Settle()
	// Stale probe: the cached owner set predates the split. It must
	// still answer exactly (re-routed if the chosen replica lost the
	// key's half) and teach the origin the deeper partition.
	res := q.LookupSync(triple.ByAV, key)
	if !res.Complete || res.Count != 1 {
		t.Fatalf("post-split probe: %+v", res)
	}
	invalAfter := 0
	for _, p := range peers {
		invalAfter += p.Stats().RouteCacheInvalidations
	}
	if invalAfter <= invalBefore {
		t.Errorf("split invalidated no routing-cache entries (%d before, %d after)", invalBefore, invalAfter)
	}
	// Self-repaired: the re-learned set probes direct again.
	before = net.Stats().MessagesSent
	rewarm := q.LookupSync(triple.ByAV, key)
	if !rewarm.Complete || rewarm.Count != 1 {
		t.Fatalf("re-warmed lookup: %+v", rewarm)
	}
	if n := net.Stats().MessagesSent - before; n > 2 {
		t.Errorf("re-warmed probe cost %d messages, want ≤2 (cache did not self-repair)", n)
	}
}

// TestWarmProbeAllocsBounded guards the warm probe path against O(N)
// allocation regressions: on a 256-peer overlay a warm lookup must
// stay under a flat allocation bound — an accidental per-peer scan or
// per-probe map rebuild blows straight past it.
func TestWarmProbeAllocsBounded(t *testing.T) {
	net, peers := loadReplicated(95, 256, 1, 64, DefaultConfig())
	_ = net
	q := peers[0]
	var key keys.Key
	for i := 0; i < 64; i++ {
		if k := triple.AVKey("age", triple.N(float64(i))); !q.Responsible(k) {
			key = k
			break
		}
	}
	if warm := q.LookupSync(triple.ByAV, key); !warm.Complete || warm.Count != 1 {
		t.Fatalf("warmup lookup: %+v", warm)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if res := q.LookupSync(triple.ByAV, key); !res.Complete {
			t.Error("warm lookup incomplete")
		}
	})
	const bound = 150
	if allocs > bound {
		t.Errorf("warm probe allocated %.0f objects per lookup on a 256-peer overlay (bound %d): an O(peers) allocation crept into the probe path", allocs, bound)
	}
	t.Logf("warm probe: %.1f allocs per lookup", allocs)
}
