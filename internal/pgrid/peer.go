// Package pgrid implements the P-Grid structured overlay (Aberer,
// CoopIS 2001) that UniStore builds on: a virtual binary trie whose
// leaves are peers, prefix routing with logarithmic hop counts, an
// order-preserving placement of data (delegated to package keys),
// skew-aware trie construction for load balancing (Aberer et al.,
// VLDB 2005), replica groups with gossip-based loosely consistent
// updates (Datta et al., ICDCS 2003), range queries via the shower
// algorithm, and merging of independent overlays.
//
// Peers live inside a simnet.Network. In the network's deterministic
// mode an entire overlay runs in one goroutine; in concurrent mode
// each peer's messages are handled on its own worker goroutine while
// query drivers issue operations from arbitrary goroutines, so peer
// state (routing table, replica group, pending operations, local
// store) is guarded by a read-write mutex and protocol counters are
// atomic.
package pgrid

import (
	"fmt"
	"sync"
	"sync/atomic"

	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// Ref is a routing reference: another peer's address and the path it
// had when the reference was learned.
type Ref struct {
	ID   simnet.NodeID
	Path keys.Key
}

// Config parameterizes peer behaviour.
type Config struct {
	// RefsPerLevel bounds the routing references kept per trie level
	// (fault tolerance and load spreading). P-Grid keeps a handful.
	RefsPerLevel int
	// MaxReplicas bounds the replica group size tracked per peer.
	MaxReplicas int
	// AntiEntropyEvery enables periodic replica reconciliation when
	// positive (simulated time between rounds).
	AntiEntropyEvery int64 // nanoseconds of simulated time; 0 disables
	// PageSize bounds the entries per range-scan response: serving
	// peers answer in pages of at most this many entries, with the
	// origin pulling continuations only while it still needs rows.
	// 0 disables paging (one monolithic response per partition).
	PageSize int
	// DisableRouteCache turns the learned partition→node routing cache
	// off: every probe takes the full O(log n) routed path and batched
	// lookups degrade to per-key envelopes. Benchmarks use it as the
	// pre-cache baseline.
	DisableRouteCache bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{RefsPerLevel: 3, MaxReplicas: 4}
}

// AppHandler processes application payloads routed through the overlay
// (UniStore's mutant query plans). hops is the routing distance the
// payload travelled.
type AppHandler func(p *Peer, payload any, from simnet.NodeID, hops int)

// Peer is one P-Grid node: a leaf of the virtual binary trie.
type Peer struct {
	net *simnet.Network
	id  simnet.NodeID

	// mu guards the trie position and protocol state below. The peer's
	// own message handler is the only writer of path/refs/replicas
	// (single worker goroutine per node), but query drivers read them
	// from other goroutines, and pending-operation state is written
	// from both sides.
	mu   sync.RWMutex
	path keys.Key
	// refs[l] holds references to peers whose paths agree with ours on
	// the first l bits and differ at bit l — they cover the sibling
	// subtree at level l. len(refs) tracks len(path).
	refs     [][]Ref
	replicas []Ref
	// cache is the learned partition→node routing cache (cache.go),
	// guarded by mu like the routing table it shortcuts.
	cache *routeCache

	store *store.Store
	cfg   Config

	// Request correlation for operations this peer originated
	// (guarded by mu).
	reqSeq  uint64
	pending map[uint64]*pendingOp

	// Monotonic version source for locally issued updates.
	clock atomic.Uint64

	app AppHandler

	// Counters for experiments (atomic: bumped from worker goroutines,
	// snapshotted by experiment drivers).
	stats peerCounters
}

// peerCounters holds the atomic protocol counters behind PeerStats.
type peerCounters struct {
	forwarded          atomic.Int64
	delivered          atomic.Int64
	rangeServed        atomic.Int64
	routeFailures      atomic.Int64
	gossipApplied      atomic.Int64
	exchangesRun       atomic.Int64
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheInvalidations atomic.Int64
	pagesServed        atomic.Int64
}

// PeerStats is a snapshot of per-peer protocol counters.
type PeerStats struct {
	Forwarded     int // envelopes passed on toward their target
	Delivered     int // envelopes this peer was responsible for
	RangeServed   int // range branches served from the local store
	RouteFailures int // envelopes dropped for lack of a live reference
	GossipApplied int
	ExchangesRun  int
	// Routing-cache counters: probes sent direct on a cached partition
	// owner, probes that took the full routed path, and cache entries
	// dropped or replaced (dead node, split partition, churn).
	RouteCacheHits          int
	RouteCacheMisses        int
	RouteCacheInvalidations int
	// PagesServed counts paged range-scan responses (including the
	// final page of each paged scan).
	PagesServed int
}

// pendingOp tracks one outstanding operation issued by this peer.
// Completion fires when shares reach needShares (range queries) or
// responses reach needResponses (lookups, acked inserts) — whichever
// rule is armed. Fields are guarded by the owning peer's mu; fin is
// closed exactly once on completion so concurrent-mode waiters can
// block without pumping the event loop.
type pendingOp struct {
	entries       []store.Entry
	count         int
	shares        int64
	needShares    int64
	needResponses int
	hops          int // max hops over all responses
	responses     int
	done          bool
	complete      bool // all expected responses arrived (vs. expired)
	onDone        func(*pendingOp)
	// onPartial, when set, receives each response's entries the moment
	// it arrives (pages of a paged scan, shard responses) instead of
	// accumulating them for the final result — the streaming delivery
	// that lets a consumer's early-out stop the page pull loop
	// mid-scan. It is invoked outside the peer lock, strictly before
	// the completion callback, and never after it.
	onPartial func([]store.Entry)
	fin       chan struct{}
}

// NewPeer creates a peer with an empty path and registers it in the
// network. The peer is not part of any trie until built or bootstrapped.
func NewPeer(net *simnet.Network, cfg Config) *Peer {
	if cfg.RefsPerLevel <= 0 {
		cfg.RefsPerLevel = 3
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 4
	}
	p := &Peer{
		net:     net,
		store:   store.New(),
		cfg:     cfg,
		cache:   newRouteCache(),
		pending: make(map[uint64]*pendingOp),
	}
	p.id = net.AddNode(p)
	if cfg.AntiEntropyEvery > 0 {
		p.scheduleAntiEntropy()
	}
	return p
}

// ID returns the peer's network address.
func (p *Peer) ID() simnet.NodeID { return p.id }

// Path returns the peer's trie path (its key-space responsibility).
func (p *Peer) Path() keys.Key {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.path
}

// Store exposes the peer's local storage service (the demo UI's
// "inspect the local data" tab).
func (p *Peer) Store() *store.Store { return p.store }

// Net returns the underlying simulated network.
func (p *Peer) Net() *simnet.Network { return p.net }

// Stats returns a snapshot of the peer's protocol counters.
func (p *Peer) Stats() PeerStats {
	return PeerStats{
		Forwarded:               int(p.stats.forwarded.Load()),
		Delivered:               int(p.stats.delivered.Load()),
		RangeServed:             int(p.stats.rangeServed.Load()),
		RouteFailures:           int(p.stats.routeFailures.Load()),
		GossipApplied:           int(p.stats.gossipApplied.Load()),
		ExchangesRun:            int(p.stats.exchangesRun.Load()),
		RouteCacheHits:          int(p.stats.cacheHits.Load()),
		RouteCacheMisses:        int(p.stats.cacheMisses.Load()),
		RouteCacheInvalidations: int(p.stats.cacheInvalidations.Load()),
		PagesServed:             int(p.stats.pagesServed.Load()),
	}
}

// Refs returns a copy of the routing table level l (the demo UI's
// "inspect the locally built routing tables" tab).
func (p *Peer) Refs(level int) []Ref {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if level < 0 || level >= len(p.refs) {
		return nil
	}
	return append([]Ref(nil), p.refs[level]...)
}

// Levels returns the number of routing-table levels (= path length).
func (p *Peer) Levels() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.refs)
}

// Replicas returns the peer's known replica group.
func (p *Peer) Replicas() []Ref {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]Ref(nil), p.replicas...)
}

// SetAppHandler installs the handler for application payloads (mutant
// query plans). The triple-storage layer calls this once per peer.
func (p *Peer) SetAppHandler(h AppHandler) {
	p.mu.Lock()
	p.app = h
	p.mu.Unlock()
}

func (p *Peer) appHandler() AppHandler {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.app
}

// Responsible reports whether key k falls into this peer's partition.
func (p *Peer) Responsible(k keys.Key) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return k.HasPrefix(p.path)
}

// NextClock returns a fresh version for an update issued at this peer.
// P-Grid's loose consistency needs only per-fact monotonicity at the
// writer; cross-writer conflicts resolve by the store's deterministic
// tie-break.
func (p *Peer) NextClock() uint64 { return p.clock.Add(1) }

// HandleMessage implements simnet.Handler: the protocol dispatcher.
func (p *Peer) HandleMessage(m simnet.Message) {
	switch m.Kind {
	case KindRoute:
		p.handleRoute(m.Payload.(routeEnvelope), m.From)
	case KindRange:
		p.handleRange(m.Payload.(rangeMsg))
	case KindResponse:
		p.handleResponse(m.Payload.(queryResp))
	case KindAck:
		p.handleAck(m.Payload.(ackMsg))
	case KindGossip:
		p.handleGossip(m.Payload.(gossipMsg))
	case KindAntiEnt:
		p.handleAntiEntropy(m.Payload.(antiEntropyMsg), m.From)
	case KindExchange:
		p.handleExchange(m.Payload.(exchangeMsg), m.From)
	case KindMultiLookup:
		p.handleMultiLookup(m.Payload.(multiLookupReq))
	case KindPage:
		p.handlePage(m.Payload.(pageReq))
	case KindXferData:
		for _, e := range m.Payload.(xferMsg).Entries {
			p.store.Apply(e)
		}
	case KindApp:
		a := m.Payload.(appMsg)
		if h := p.appHandler(); h != nil {
			h(p, a.Payload, m.From, a.Hops)
		}
	default:
		// Unknown kinds are ignored; forward compatibility.
	}
}

// deliver processes an envelope this peer is responsible for.
func (p *Peer) deliver(env routeEnvelope, from simnet.NodeID) {
	p.stats.delivered.Add(1)
	switch inner := env.Inner.(type) {
	case insertReq:
		p.applyInsert(inner, env.Hops)
	case lookupReq:
		entries := p.store.Lookup(triple.IndexKind(inner.Kind), inner.Key)
		p.net.Send(p.id, inner.Origin, KindResponse, queryResp{
			QID: inner.QID, Entries: entries, Count: len(entries),
			Share: TotalShare, Hops: env.Hops, From: p.id, Path: p.Path(),
		})
	case appMsg:
		if h := p.appHandler(); h != nil {
			h(p, inner.Payload, from, env.Hops)
		}
	default:
		// Unknown payloads are dropped.
	}
}

func (p *Peer) applyInsert(req insertReq, hops int) {
	won := p.store.Apply(req.Entry)
	if won {
		p.pushToReplicas([]store.Entry{req.Entry})
	}
	if req.QID != 0 {
		p.net.Send(p.id, req.Origin, KindAck, ackMsg{QID: req.QID, Hops: hops})
	}
}

// String renders the peer for diagnostics.
func (p *Peer) String() string {
	return fmt.Sprintf("peer{id=%d path=%s store=%d}", p.id, p.Path(), p.store.Len())
}
