// Package pgrid implements the P-Grid structured overlay (Aberer,
// CoopIS 2001) that UniStore builds on: a virtual binary trie whose
// leaves are peers, prefix routing with logarithmic hop counts, an
// order-preserving placement of data (delegated to package keys),
// skew-aware trie construction for load balancing (Aberer et al.,
// VLDB 2005), replica groups with gossip-based loosely consistent
// updates (Datta et al., ICDCS 2003), range queries via the shower
// algorithm, and merging of independent overlays.
//
// Peers live inside a simnet.Network. In the network's deterministic
// mode an entire overlay runs in one goroutine; in concurrent mode
// each peer's messages are handled on its own worker goroutine while
// query drivers issue operations from arbitrary goroutines, so peer
// state (routing table, replica group, pending operations, local
// store) is guarded by a read-write mutex and protocol counters are
// atomic.
package pgrid

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unistore/internal/agg"
	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/trace"
	"unistore/internal/triple"
)

// Ref is a routing reference: another peer's address and the path it
// had when the reference was learned.
type Ref struct {
	ID   simnet.NodeID
	Path keys.Key
}

// Config parameterizes peer behaviour.
type Config struct {
	// RefsPerLevel bounds the routing references kept per trie level
	// (fault tolerance and load spreading). P-Grid keeps a handful.
	RefsPerLevel int
	// MaxReplicas bounds the replica group size tracked per peer.
	MaxReplicas int
	// AntiEntropyEvery enables periodic replica reconciliation when
	// positive (simulated time between rounds).
	AntiEntropyEvery int64 // nanoseconds of simulated time; 0 disables
	// PageSize bounds the entries per range-scan response: serving
	// peers answer in pages of at most this many entries, with the
	// origin pulling continuations only while it still needs rows.
	// 0 disables paging (one monolithic response per partition).
	PageSize int
	// DisableRouteCache turns the learned partition→node routing cache
	// off: every probe takes the full O(log n) routed path and batched
	// lookups degrade to per-key envelopes. Benchmarks use it as the
	// pre-cache baseline.
	DisableRouteCache bool
	// ReadReplicas bounds how many replicas of a cached owner set the
	// read path considers: 0 uses every known replica, 1 pins reads to
	// the primary owner (the single-owner baseline — no load
	// balancing, no failover target).
	ReadReplicas int
	// HedgeAfter is the simulated time a direct probe may stay
	// unanswered before it is hedged to a sibling replica (and a range
	// scan's missing partitions are re-showered, at a multiple of it).
	// 0 selects DefaultHedgeAfter; negative disables hedging and scan
	// retries entirely (the fail-slow baseline that waits out the
	// operation deadline).
	HedgeAfter int64 // nanoseconds of simulated time
	// FlowWindowBytes / FlowWindowMsgs size the receive window this
	// peer advertises to bulk senders (flow.go): the most unacked
	// bytes / messages a well-behaved sender keeps in flight toward
	// it, shrunk further while the peer's own inbox backs up. 0
	// selects the defaults; the knobs exist so the equivalence-matrix
	// tests can pin pathological windows.
	FlowWindowBytes int
	FlowWindowMsgs  int
	// DisableFlowControl turns the credit machinery off entirely:
	// windows advertise as 0 (no window) and sends are never gated —
	// the uncontrolled baseline the flow benchmark compares against.
	DisableFlowControl bool
	// Tracing enables distributed query tracing (tracing.go): operations
	// issued WithTrace carry a trace context on every request, serving
	// peers record spans and piggyback them home on responses, and the
	// origin accumulates the full trace per operation. Off by default —
	// untraced runs send identical messages and pay zero extra bytes.
	Tracing bool
}

// DefaultHedgeAfter is the probe-hedging deadline used when
// Config.HedgeAfter is zero: far above any healthy round trip of the
// experiment latency models, far below the operation deadline.
const DefaultHedgeAfter = 100 * time.Millisecond

// scanRetryFactor scales the hedge deadline into the range-scan
// re-shower deadline: a shower fans out over log n hops and possibly
// several pages, so its patience is an order of magnitude longer than
// a single probe's.
const scanRetryFactor = 10

// maxProbeAttempts bounds how many replicas a probe group tries before
// falling back to fully routed per-key lookups.
const maxProbeAttempts = 3

// maxScanRetries bounds the coverage re-shower rounds of one range
// query; past it the operation expires with partial results as before.
const maxScanRetries = 4

// hedgeAfter resolves the configured hedging deadline (0 if disabled).
func (c Config) hedgeAfter() time.Duration {
	if c.HedgeAfter < 0 {
		return 0
	}
	if c.HedgeAfter == 0 {
		return DefaultHedgeAfter
	}
	return time.Duration(c.HedgeAfter)
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{RefsPerLevel: 3, MaxReplicas: 4}
}

// AppHandler processes application payloads routed through the overlay
// (UniStore's mutant query plans). hops is the routing distance the
// payload travelled.
type AppHandler func(p *Peer, payload any, from simnet.NodeID, hops int)

// Peer is one P-Grid node: a leaf of the virtual binary trie.
type Peer struct {
	net Transport
	id  simnet.NodeID

	// mu guards the trie position and protocol state below. The peer's
	// own message handler is the only writer of path/refs/replicas
	// (single worker goroutine per node), but query drivers read them
	// from other goroutines, and pending-operation state is written
	// from both sides.
	mu   sync.RWMutex
	path keys.Key
	// refs[l] holds references to peers whose paths agree with ours on
	// the first l bits and differ at bit l — they cover the sibling
	// subtree at level l. len(refs) tracks len(path).
	refs     [][]Ref
	replicas []Ref
	// cache is the learned partition→node routing cache (cache.go),
	// guarded by mu like the routing table it shortcuts.
	cache *routeCache
	// flow is the sliding-window credit state (flow.go): sender-side
	// per-receiver windows and this peer's own advertised-window
	// inputs. It carries its own innermost mutex — safe to consult
	// with or without mu held.
	flow *flowTable
	// gossipPend coalesces eager pushes a replica's window would not
	// admit: one latest-version entry per fact per replica, flushed in
	// window-sized batches as credit frees (gossip.go). Guarded by
	// gossipMu (innermost, never held across sends).
	gossipMu   sync.Mutex
	gossipPend map[simnet.NodeID]map[factKey]store.Entry

	store *store.Store
	cfg   Config

	// Request correlation for operations this peer originated
	// (guarded by mu).
	reqSeq  uint64
	pending map[uint64]*pendingOp

	// aePulls tracks in-progress windowed anti-entropy catch-ups, one
	// per source peer (guarded by mu): the identity hashes received so
	// far — applied or not — and the re-pull round count, so a
	// window-paced transfer resumes statelessly and always terminates.
	aePulls map[simnet.NodeID]*aePullState

	// Monotonic version source for locally issued updates.
	clock atomic.Uint64

	app AppHandler

	// Counters for experiments (atomic: bumped from worker goroutines,
	// snapshotted by experiment drivers).
	stats peerCounters

	// Tracing state (tracing.go), allocated only with cfg.Tracing set:
	// tring buffers spans this peer served, traces accumulates the spans
	// of operations this peer originated (keyed by qid, independent of
	// the pendingOp lifetime so late riders still reconcile), spanSeq
	// sources span ids. traceMu is innermost — never held across sends.
	tring   *trace.SpanRing
	traceMu sync.Mutex
	traces  map[uint64][]trace.Span
	spanSeq atomic.Uint64
}

// peerCounters holds the atomic protocol counters behind PeerStats.
type peerCounters struct {
	forwarded          atomic.Int64
	delivered          atomic.Int64
	rangeServed        atomic.Int64
	routeFailures      atomic.Int64
	gossipApplied      atomic.Int64
	gossipSuppressed   atomic.Int64
	exchangesRun       atomic.Int64
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheFwdHits       atomic.Int64
	cacheInvalidations atomic.Int64
	pagesServed        atomic.Int64
	probeGroups        atomic.Int64
	probeRetries       atomic.Int64
	scanRetries        atomic.Int64
	pageHedges         atomic.Int64
	writeRetries       atomic.Int64
	digestRounds       atomic.Int64
	digestPulls        atomic.Int64
	flowBulkSends      atomic.Int64
	flowStalls         atomic.Int64
}

// PeerStats is a snapshot of per-peer protocol counters.
type PeerStats struct {
	Forwarded     int // envelopes passed on toward their target
	Delivered     int // envelopes this peer was responsible for
	RangeServed   int // range branches served from the local store
	RouteFailures int // envelopes dropped for lack of a live reference
	GossipApplied int
	// GossipSuppressed counts replica pushes the dedup layers withheld:
	// batch entries superseded within one push, pushes skipped back to
	// the peer an entry arrived from, and anti-entropy reply entries
	// the other side had just proven to hold.
	GossipSuppressed int
	ExchangesRun     int
	// Routing-cache counters: probes sent direct on a cached partition
	// owner, probes that took the full routed path, and cache entries
	// dropped or replaced (dead node, split partition, churn).
	RouteCacheHits          int
	RouteCacheMisses        int
	RouteCacheInvalidations int
	// RouteCacheFwdHits counts envelopes an INTERMEDIATE hop short-cut
	// through its own cache while forwarding (the origin's hits are
	// RouteCacheHits). Kept separate so the cost model's hit rate stays
	// a per-probe origin statistic.
	RouteCacheFwdHits int
	// PagesServed counts paged range-scan responses (including the
	// final page of each paged scan).
	PagesServed int
	// ProbeGroups counts direct probe groups sent to a chosen replica;
	// ProbeRetries counts the groups re-sent to a sibling (hedged past
	// the deadline or aimed at a dead owner) — their ratio is the cost
	// model's RetryRate. ScanRetries counts coverage re-shower rounds
	// of range queries.
	ProbeGroups  int
	ProbeRetries int
	ScanRetries  int
	// PagePullHedges counts stalled page pulls re-sent to a sibling
	// replica (or re-routed) after the hedge deadline — the pull-level
	// failover that recovers a server dying between pages without
	// waiting for the scan-level re-shower backstop.
	PagePullHedges int
	// WriteRetries counts acked insert entries re-routed after the
	// hedge deadline passed without their ack — the write-path mirror
	// of probe failover (idempotent by entry version).
	WriteRetries int
	// Digest anti-entropy: rounds participated in, and bucket pulls
	// answered with entry pages.
	DigestRounds int
	DigestPulls  int
	// Flow control: credit-gated bulk sends issued, and the subset
	// that stalled waiting for receiver credit. Their ratio is the
	// cost model's Pressure input.
	FlowBulkSends int
	FlowStalls    int
}

// pendingOp tracks one outstanding operation issued by this peer.
// Completion fires when shares reach needShares (range queries) or
// responses reach needResponses (lookups, acked inserts) — whichever
// rule is armed. Fields are guarded by the owning peer's mu; fin is
// closed exactly once on completion so concurrent-mode waiters can
// block without pumping the event loop.
type pendingOp struct {
	entries       []store.Entry
	count         int
	shares        int64
	needShares    int64
	needResponses int
	hops          int // max hops over all responses
	responses     int
	done          bool
	complete      bool // all expected responses arrived (vs. expired)
	onDone        func(*pendingOp)
	// onPartial, when set, receives each response's entries the moment
	// it arrives (pages of a paged scan, shard responses) instead of
	// accumulating them for the final result — the streaming delivery
	// that lets a consumer's early-out stop the page pull loop
	// mid-scan. It is invoked outside the peer lock, strictly before
	// the completion callback, and never after it.
	onPartial func([]store.Entry)
	// aggSpec/onAgg mark a pushed-down aggregation: responses carry
	// encoded partial group states, decoded and streamed to onAgg with
	// the same ordering guarantees onPartial has.
	aggSpec *agg.Spec
	onAgg   func([]agg.State)
	fin     chan struct{}

	// Key-tracked probe state (lookups and multi-lookups with replica
	// failover). probeWant holds the keys still unanswered; responses
	// mark keys answered through their ProbeKeys echo, so a hedged
	// duplicate can neither double-count completion nor re-deliver
	// rows. groups tracks the direct sends awaiting answers for the
	// hedge timer.
	probeWant map[string]bool
	probeKind uint8
	groupSeq  uint64
	groups    map[uint64]*probeGroup

	// scan tracks a range query's failover bookkeeping (which
	// partitions answered, for the coverage re-shower).
	scan *scanState

	// insertPend tracks an acked insert's entries still awaiting their
	// ack, by sequence number: the retry timer re-routes the missing
	// ones (idempotent — the store resolves duplicates by version), and
	// a duplicate ack from a retried entry cannot double-count.
	insertPend map[uint8]store.Entry

	// tc is the trace context this operation's requests carry (parented
	// on the origin's root span); zero when the op is untraced. Retries
	// and hedges re-send with the matching flag set.
	tc trace.Ctx
}

// probeGroup is one direct send of probe keys to a chosen replica,
// tracked until its keys are answered or the hedge deadline passes.
type probeGroup struct {
	kind    uint8
	keys    []keys.Key
	target  simnet.NodeID
	path    keys.Key // partition path the group was aimed at
	sentAt  time.Duration
	attempt int
	tried   map[simnet.NodeID]bool
}

// scanState is the failover bookkeeping of one range query: enough to
// re-shower the partitions that never finished answering, and the set
// of partitions that did (fed by Final responses). Once a retry round
// has run, completion switches from share mass to coverage — covered
// partitions tiling the queried range — because retry showers carry no
// share mass (double-counting a late original against a retry could
// otherwise complete the operation while a partition is still silent).
//
// claims dedupes concurrent streams of one partition: the first
// responder for a path owns its stream, and responses (pages included)
// from any other replica of the same path are dropped whole — a retry
// racing a slow-but-alive original can never duplicate rows. A claim
// is released by the retry timer once its owner is dead or the stream
// has made no progress for a whole retry interval, so a genuinely
// wedged stream does hand the partition to a sibling.
type scanState struct {
	kind     uint8
	r        keys.Range
	pageSize int
	probe    bool
	desc     bool
	// agg is the pushed-down aggregation spec; retry showers carry it
	// so re-showered partitions keep answering in group states.
	agg     *agg.Spec
	covered []keys.Key
	claims  map[string]*scanClaim
	// cursors memoizes each partition's page progress (the latest
	// accepted continuation), independent of stream claims: it
	// survives claim releases and lost resume pulls, so EVERY retry
	// round resumes a partially-streamed partition at its cursor —
	// never a from-scratch re-shower that would replay delivered rows.
	// An entry is dropped when its partition's final page lands.
	cursors  map[string]*scanCursor
	retries  int
	coverage bool // completion by coverage (armed by the first retry)
}

// scanClaim is one partition's stream ownership within a range query.
// cont is the continuation of the last page accepted from the stream:
// a same-From response carrying the identical continuation is the same
// page again (a resume pull racing the original stream on one server)
// and is dropped, so even same-node stream forks cannot duplicate
// rows.
type scanClaim struct {
	path keys.Key
	from simnet.NodeID
	last time.Duration // simulated instant of the stream's last response
	cont *pageCont
}

// scanCursor is one partition's resume point. hedges counts the
// pull-level retries spent at this exact position; a fresh page resets
// it (a new scanCursor replaces the old), so the budget is per page,
// with the scan-level re-shower still backstopping a position that
// exhausts it.
type scanCursor struct {
	path   keys.Key
	cont   pageCont
	hedges int
}

// NewPeer creates a peer with an empty path and registers it in the
// transport. The peer is not part of any trie until built or
// bootstrapped. Any Transport works: the simulated network (both
// modes) or a real one (netx).
func NewPeer(net Transport, cfg Config) *Peer {
	if cfg.RefsPerLevel <= 0 {
		cfg.RefsPerLevel = 3
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 4
	}
	if cfg.FlowWindowBytes == 0 {
		cfg.FlowWindowBytes = DefaultFlowWindowBytes
	}
	if cfg.FlowWindowMsgs == 0 {
		cfg.FlowWindowMsgs = DefaultFlowWindowMsgs
	}
	p := &Peer{
		net:        net,
		store:      store.New(),
		cfg:        cfg,
		cache:      newRouteCache(),
		flow:       newFlowTable(cfg.DisableFlowControl),
		gossipPend: make(map[simnet.NodeID]map[factKey]store.Entry),
		pending:    make(map[uint64]*pendingOp),
	}
	if cfg.Tracing {
		p.tring = trace.NewSpanRing(0)
		p.traces = make(map[uint64][]trace.Span)
	}
	p.id = net.AddNode(p)
	if cfg.AntiEntropyEvery > 0 {
		p.scheduleAntiEntropy()
	}
	return p
}

// ID returns the peer's network address.
func (p *Peer) ID() simnet.NodeID { return p.id }

// Path returns the peer's trie path (its key-space responsibility).
func (p *Peer) Path() keys.Key {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.path
}

// Store exposes the peer's local storage service (the demo UI's
// "inspect the local data" tab).
func (p *Peer) Store() *store.Store { return p.store }

// Net returns the transport the peer runs on.
func (p *Peer) Net() Transport { return p.net }

// Stats returns a snapshot of the peer's protocol counters.
func (p *Peer) Stats() PeerStats {
	return PeerStats{
		Forwarded:               int(p.stats.forwarded.Load()),
		Delivered:               int(p.stats.delivered.Load()),
		RangeServed:             int(p.stats.rangeServed.Load()),
		RouteFailures:           int(p.stats.routeFailures.Load()),
		GossipApplied:           int(p.stats.gossipApplied.Load()),
		GossipSuppressed:        int(p.stats.gossipSuppressed.Load()),
		ExchangesRun:            int(p.stats.exchangesRun.Load()),
		RouteCacheHits:          int(p.stats.cacheHits.Load()),
		RouteCacheMisses:        int(p.stats.cacheMisses.Load()),
		RouteCacheFwdHits:       int(p.stats.cacheFwdHits.Load()),
		RouteCacheInvalidations: int(p.stats.cacheInvalidations.Load()),
		PagesServed:             int(p.stats.pagesServed.Load()),
		ProbeGroups:             int(p.stats.probeGroups.Load()),
		ProbeRetries:            int(p.stats.probeRetries.Load()),
		ScanRetries:             int(p.stats.scanRetries.Load()),
		PagePullHedges:          int(p.stats.pageHedges.Load()),
		WriteRetries:            int(p.stats.writeRetries.Load()),
		DigestRounds:            int(p.stats.digestRounds.Load()),
		DigestPulls:             int(p.stats.digestPulls.Load()),
		FlowBulkSends:           int(p.stats.flowBulkSends.Load()),
		FlowStalls:              int(p.stats.flowStalls.Load()),
	}
}

// Refs returns a copy of the routing table level l (the demo UI's
// "inspect the locally built routing tables" tab).
func (p *Peer) Refs(level int) []Ref {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if level < 0 || level >= len(p.refs) {
		return nil
	}
	return append([]Ref(nil), p.refs[level]...)
}

// Levels returns the number of routing-table levels (= path length).
func (p *Peer) Levels() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.refs)
}

// Replicas returns the peer's known replica group.
func (p *Peer) Replicas() []Ref {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]Ref(nil), p.replicas...)
}

// SetAppHandler installs the handler for application payloads (mutant
// query plans). The triple-storage layer calls this once per peer.
func (p *Peer) SetAppHandler(h AppHandler) {
	p.mu.Lock()
	p.app = h
	p.mu.Unlock()
}

func (p *Peer) appHandler() AppHandler {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.app
}

// Responsible reports whether key k falls into this peer's partition.
func (p *Peer) Responsible(k keys.Key) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return k.HasPrefix(p.path)
}

// NextClock returns a fresh version for an update issued at this peer.
// P-Grid's loose consistency needs only per-fact monotonicity at the
// writer; cross-writer conflicts resolve by the store's deterministic
// tie-break.
func (p *Peer) NextClock() uint64 { return p.clock.Add(1) }

// runFlow performs the sends a flow-table release returned (outside
// any peer lock), then gives every replica with parked gossip a flush
// chance: wherever credit frees, a pending push must get its shot, or
// a buffer could outlive the pressure that parked it.
func (p *Peer) runFlow(sends []func()) {
	for _, send := range sends {
		send()
	}
	p.flushGossipPending()
}

// HandleMessage implements simnet.Handler: the protocol dispatcher.
func (p *Peer) HandleMessage(m simnet.Message) {
	p.flow.observeIn(m.Size)
	switch m.Kind {
	case KindRoute:
		p.handleRoute(m.Payload.(routeEnvelope), m.From, m.Size)
	case KindRange:
		p.handleRange(m.Payload.(rangeMsg), m.Size)
	case KindResponse:
		p.handleResponse(m.Payload.(queryResp), m.Size)
	case KindAck:
		p.handleAck(m.Payload.(ackMsg), m.From, m.Size)
	case KindGossip:
		p.handleGossip(m.Payload.(gossipMsg), m.From)
	case KindGossipAck:
		ga := m.Payload.(gossipAckMsg)
		p.runFlow(p.flow.release(flowKey{qid: ga.ID}, m.From, ga.WinBytes, ga.WinMsgs))
	case KindAntiEnt:
		p.handleAntiEntropy(m.Payload.(antiEntropyMsg), m.From)
	case KindDigest:
		p.handleDigest(m.Payload.(digestMsg), m.From)
	case KindDigestPull:
		p.handleDigestPull(m.Payload.(digestPullMsg), m.From)
	case KindExchange:
		p.handleExchange(m.Payload.(exchangeMsg), m.From)
	case KindMultiLookup:
		p.handleMultiLookup(m.Payload.(multiLookupReq), m.Size)
	case KindPage:
		p.handlePage(m.Payload.(pageReq), m.Size)
	case KindXferData:
		// Split/re-home data: apply, then push the batch on to the
		// replica group (deduplicated, one gossipMsg per replica) so
		// siblings converge without waiting for an anti-entropy round.
		var won []store.Entry
		for _, e := range m.Payload.(xferMsg).Entries {
			if p.store.Apply(e) {
				won = append(won, e)
			}
		}
		if len(won) > 0 {
			p.pushToReplicas(won, m.From)
		}
	case KindJoin:
		switch jm := m.Payload.(type) {
		case joinReq:
			p.handleJoinReq(jm, m.From)
		case joinAck:
			p.handleJoinAck(jm)
		case memberMsg:
			p.addReplica(jm.Member)
		}
	case KindLeave:
		p.handleLeave(m.Payload.(leaveMsg), m.From)
	case KindApp:
		a := m.Payload.(appMsg)
		if h := p.appHandler(); h != nil {
			h(p, a.Payload, m.From, a.Hops)
		}
	default:
		// Unknown kinds are ignored; forward compatibility.
	}
}

// deliver processes an envelope this peer is responsible for. size is
// the delivering message's wire size (0 for a local delivery); the
// request's trace span is charged env.Hops messages of that size.
func (p *Peer) deliver(env routeEnvelope, from simnet.NodeID, size int) {
	p.stats.delivered.Add(1)
	switch inner := env.Inner.(type) {
	case insertReq:
		p.applyInsert(inner, env.Hops, from, size)
	case lookupReq:
		ws := p.beginSpan(inner.TC, trace.OpLookup, env.Hops, env.Hops*size)
		entries := p.store.Lookup(triple.IndexKind(inner.Kind), inner.Key)
		resp := queryResp{
			QID: inner.QID, Share: TotalShare, Hops: env.Hops + env.Spent,
			ProbeKeys: []keys.Key{inner.Key},
		}
		if inner.Agg != nil {
			aggProbeResp(&resp, inner.Agg, entries)
		} else {
			resp.Entries = entries
			resp.Count = len(entries)
		}
		p.stampResp(&resp)
		resp.TS = p.finishSpan(ws, inner.TC.TraceID, resp.Count)
		p.net.Send(p.id, inner.Origin, KindResponse, resp)
	case pageReq:
		// A routed page pull: the churn re-shower resumes a dead
		// server's paged stream at its cursor through whichever replica
		// of the partition routing reaches.
		ws := p.beginSpan(inner.TC, trace.OpPage, env.Hops, env.Hops*size)
		p.servePage(inner.QID, inner.Origin, inner.Cont, inner.WinBytes, ws, inner.TC.TraceID)
	case appMsg:
		if h := p.appHandler(); h != nil {
			h(p, inner.Payload, from, env.Hops)
		}
	default:
		// Unknown payloads are dropped.
	}
}

func (p *Peer) applyInsert(req insertReq, hops int, from simnet.NodeID, size int) {
	ws := p.beginSpan(req.TC, trace.OpInsert, hops, hops*size)
	won := p.store.Apply(req.Entry)
	if won {
		p.pushToReplicas([]store.Entry{req.Entry}, from)
	}
	if req.QID != 0 {
		rows := 0
		if won {
			rows = 1
		}
		wb, wm := p.advertiseWindow()
		p.net.Send(p.id, req.Origin, KindAck, ackMsg{
			QID: req.QID, Hops: hops, Seq: req.Seq,
			WinBytes: wb, WinMsgs: wm,
			TS: p.finishSpan(ws, req.TC.TraceID, rows),
		})
	}
}

// advertiseWindow computes the receive window this peer piggybacks on
// acks and responses: the configured window, shrunk by what the
// transport says is already queued toward the peer (messages directly;
// bytes through the incoming-size EWMA), floored so a drowning
// receiver degrades senders to stop-and-wait rather than starving
// them. Returns (0, 0) — no window — with flow control disabled.
func (p *Peer) advertiseWindow() (winBytes, winMsgs int) {
	if p.cfg.DisableFlowControl {
		return 0, 0
	}
	backlog := p.net.Load(p.id)
	winMsgs = p.cfg.FlowWindowMsgs - backlog
	if winMsgs < 1 {
		winMsgs = 1
	}
	winBytes = p.cfg.FlowWindowBytes - int(float64(backlog)*p.flow.avgInSize())
	if winBytes < minAdvertiseBytes {
		winBytes = minAdvertiseBytes
	}
	return winBytes, winMsgs
}

// stampResp fills the responder-identity fields every query response
// carries: who answered, for which partition, and with which replica
// siblings — the raw material of the origin's owner-set cache. The
// responder's receive window rides along, so origins keep a fresh
// credit picture of every peer they hear from.
func (p *Peer) stampResp(r *queryResp) {
	r.WinBytes, r.WinMsgs = p.advertiseWindow()
	p.mu.RLock()
	r.From = p.id
	r.Path = p.path
	r.Replicas = append([]Ref(nil), p.replicas...)
	p.mu.RUnlock()
}

// String renders the peer for diagnostics.
func (p *Peer) String() string {
	return fmt.Sprintf("peer{id=%d path=%s store=%d}", p.id, p.Path(), p.store.Len())
}
