package pgrid

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire encoding of overlay messages, used by real transports (netx):
// each payload is serialized self-contained — a fresh gob stream per
// message, so decoding never depends on connection state and a
// reconnect mid-stream cannot corrupt later messages. The simulated
// network passes payloads by reference and never touches this codec.
//
// Self-contained gob re-ships type descriptors on every message. That
// costs tens of bytes per frame — irrelevant next to loopback TCP
// latency, and a fair price for statelessness: frames can be decoded
// in isolation, which is also what makes the codec directly fuzzable.

// wirePayload wraps the payload so gob records its concrete type: all
// overlay message types are registered in init below (and application
// payload types by the packages that own them), so any registered
// value round-trips through the one Encode/Decode pair.
type wirePayload struct {
	P any
}

func init() {
	// Top-level message payloads, one per message kind.
	gob.Register(routeEnvelope{})
	gob.Register(insertReq{})
	gob.Register(lookupReq{})
	gob.Register(multiLookupReq{})
	gob.Register(rangeMsg{})
	gob.Register(pageReq{})
	gob.Register(queryResp{})
	gob.Register(ackMsg{})
	gob.Register(gossipMsg{})
	gob.Register(gossipAckMsg{})
	gob.Register(antiEntropyMsg{})
	gob.Register(digestMsg{})
	gob.Register(digestPullMsg{})
	gob.Register(exchangeMsg{})
	gob.Register(xferMsg{})
	gob.Register(appMsg{})
	gob.Register(joinReq{})
	gob.Register(joinAck{})
	gob.Register(memberMsg{})
	gob.Register(leaveMsg{})
	// pageCont travels inside queryResp/pageReq by value already; the
	// registration covers any future any-field carrying it.
	gob.Register(pageCont{})
}

// WireCodec adapts the payload codec to the Codec interface real
// transports accept (netx.Codec) without netx importing this package.
type WireCodec struct{}

// Encode implements the transport codec via EncodePayload.
func (WireCodec) Encode(payload any) ([]byte, error) { return EncodePayload(payload) }

// Decode implements the transport codec via DecodePayload.
func (WireCodec) Decode(data []byte) (any, error) { return DecodePayload(data) }

// EncodePayload serializes one overlay message payload for the wire.
// The payload's concrete type must be gob-registered (all pgrid types
// are; application payloads register themselves).
func EncodePayload(payload any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wirePayload{P: payload}); err != nil {
		return nil, fmt.Errorf("pgrid: encode payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePayload deserializes a payload produced by EncodePayload. Wire
// data is untrusted: malformed input yields an error, never a panic.
func DecodePayload(data []byte) (payload any, err error) {
	// gob's decoder is error-returning by design, but a hostile stream
	// that names a registered type with mismatched wire structure can
	// trip internal panics; a transport must treat that as a bad frame,
	// not die.
	defer func() {
		if r := recover(); r != nil {
			payload, err = nil, fmt.Errorf("pgrid: decode payload: panic: %v", r)
		}
	}()
	var w wirePayload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("pgrid: decode payload: %w", err)
	}
	return w.P, nil
}
