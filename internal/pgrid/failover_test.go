package pgrid

import (
	"testing"
	"time"

	"unistore/internal/store"
	"unistore/internal/trace"
	"unistore/internal/triple"
)

// TestPagePullHedgeRecoversFastMidPaginationDeath: the pull-level
// hedge must recover a server that dies between pages within roughly
// one hedge interval — not the 10× scan-level re-shower backstop — and
// deliver every fact exactly once.
func TestPagePullHedgeRecoversFastMidPaginationDeath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 2
	net, peers := loadReplicated(81, 2, 2, 40, cfg)
	// Two partitions × two replicas: originate outside the age region
	// so the whole stream is remote.
	probe := triple.AVKey("age", triple.N(0))
	var q *Peer
	for _, p := range peers {
		if !p.Responsible(probe) {
			q = p
			break
		}
	}
	if q == nil {
		t.Fatal("no peer outside the age region")
	}
	var streamed []store.Entry
	start := net.Now()
	h := q.RangeQueryPages(triple.ByAV, triple.AVPrefixRange("age"), func(es []store.Entry) {
		streamed = append(streamed, es...)
	}, nil)
	// Step until the first remote page landed — the pull for the next
	// page is then already in flight — and kill its server.
	for len(streamed) == 0 && net.Step() {
	}
	if len(streamed) == 0 {
		t.Fatal("no page ever streamed")
	}
	killed := false
	for _, p := range peers {
		if p != q && p.Stats().PagesServed > 0 {
			net.Kill(p.ID())
			killed = true
		}
	}
	if !killed {
		t.Fatal("no remote server to kill")
	}
	res := h.Wait(0)
	if !res.Complete {
		t.Fatalf("scan incomplete after mid-pagination death: %+v", res)
	}
	elapsed := net.Now() - start
	if st := q.Stats(); st.PagePullHedges == 0 {
		t.Errorf("pull hedge never fired (stats %+v)", st)
	}
	// Recovery must beat the scan-level backstop (hedge × scanRetryFactor).
	if backstop := DefaultHedgeAfter * scanRetryFactor; elapsed >= backstop {
		t.Errorf("recovery took %v, want < %v (the pull hedge, not the re-shower, must recover)",
			elapsed, backstop)
	}
	seen := map[string]int{}
	for _, e := range streamed {
		seen[e.Triple.OID]++
	}
	if len(seen) != 40 {
		t.Errorf("streamed %d distinct facts, want 40", len(seen))
	}
	for oid, n := range seen {
		if n != 1 {
			t.Errorf("fact %s streamed %d times, want once", oid, n)
		}
	}
	if q.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", q.PendingOps())
	}
}

// TestPagePullHedgeQuietOnHealthyStream: a healthy paged scan must not
// spend hedges — the timers dissolve as cursors progress.
func TestPagePullHedgeQuietOnHealthyStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 2
	net, peers := loadReplicated(83, 4, 2, 40, cfg)
	q := peers[0]
	res := q.RangeQuerySync(triple.ByAV, triple.AVPrefixRange("age"))
	net.Run()
	if !res.Complete {
		t.Fatalf("healthy scan incomplete: %+v", res)
	}
	if st := q.Stats(); st.PagePullHedges != 0 {
		t.Errorf("healthy stream spent %d pull hedges", st.PagePullHedges)
	}
}

// TestAckedInsertRetriesPastDeadOwner: an acked insert whose
// responsible primary dies with the envelope in flight must re-route
// after the hedge deadline, land on a live replica, and complete —
// the write-path mirror of probe failover.
func TestAckedInsertRetriesPastDeadOwner(t *testing.T) {
	net, peers := loadReplicated(85, 16, 2, 16, DefaultConfig())
	origin := peers[0]
	tr := triple.TN("wnew", "age", 999)
	h := origin.InsertTripleAcked(tr, 7, nil)
	// The three index envelopes are in flight; kill a loaded
	// responsible peer (not the origin) before delivery.
	responsible := func(p *Peer) bool {
		for _, kind := range triple.AllIndexKinds {
			if p.Responsible(triple.IndexKey(tr, kind)) {
				return true
			}
		}
		return false
	}
	killed := false
	for steps := 0; steps < 10000 && !killed; steps++ {
		for _, p := range peers[1:] {
			if responsible(p) && net.Load(p.ID()) > 0 && net.Alive(p.ID()) {
				net.Kill(p.ID())
				killed = true
				break
			}
		}
		if !killed && !net.Step() {
			break
		}
	}
	if !killed {
		t.Skip("no responsible peer ever held the envelope (all delivered locally)")
	}
	res := h.Wait(0)
	if !res.Complete {
		t.Fatalf("acked insert incomplete after owner death: %+v", res)
	}
	if origin.Stats().WriteRetries == 0 {
		t.Error("write retry never fired")
	}
	// The fact must be readable through every index from another peer.
	for _, kind := range triple.AllIndexKinds {
		got := peers[1].LookupSync(kind, triple.IndexKey(tr, kind))
		found := false
		for _, e := range got.Entries {
			if e.Triple.Equal(tr) {
				found = true
			}
		}
		if !found {
			t.Errorf("fact missing from index %v after write failover", kind)
		}
	}
	if origin.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", origin.PendingOps())
	}
}

// TestAckedInsertDuplicateAcksDoNotOvercount: a retried entry whose
// original also landed produces two acks; the second must not complete
// the operation while another entry is still unacked.
func TestAckedInsertDuplicateAcksDoNotOvercount(t *testing.T) {
	net, peers := loadReplicated(87, 4, 1, 8, DefaultConfig())
	_ = net
	p := peers[0]
	qid, op := p.newOp(0, 3, trace.OpInsert, nil)
	p.mu.Lock()
	op.insertPend = map[uint8]store.Entry{0: {}, 1: {}, 2: {}}
	p.mu.Unlock()
	p.handleAck(ackMsg{QID: qid, Seq: 0}, p.id, 0)
	p.handleAck(ackMsg{QID: qid, Seq: 0}, p.id, 0) // duplicate
	p.handleAck(ackMsg{QID: qid, Seq: 1}, p.id, 0)
	h := &Handle{peer: p, op: op, qid: qid}
	if h.Done() {
		t.Fatal("duplicate ack completed the operation early")
	}
	p.handleAck(ackMsg{QID: qid, Seq: 2}, p.id, 0)
	if !h.Done() {
		t.Fatal("distinct acks did not complete the operation")
	}
}

// TestInsertRetryBudgetBounded: with every replica of a partition dead
// the retry loop must stop at its attempt budget, not spin forever.
func TestInsertRetryBudgetBounded(t *testing.T) {
	net, peers := loadReplicated(89, 4, 1, 8, DefaultConfig())
	origin := peers[0]
	tr := triple.TN("wdead", "age", 1234)
	// Kill every OTHER peer: only locally-owned entries can ack.
	for _, p := range peers[1:] {
		net.Kill(p.ID())
	}
	h := origin.InsertTripleAcked(tr, 9, nil)
	res := h.Wait(0)
	_ = res
	if got := origin.Stats().WriteRetries; got > 3*maxProbeAttempts {
		t.Errorf("retry budget blown: %d write retries", got)
	}
	if !h.Done() {
		// The op deadline timer eventually expires it; drive there.
		net.RunUntil(net.Now() + 3*time.Minute)
	}
	if !h.Done() {
		t.Error("acked insert never terminated with all owners dead")
	}
}
