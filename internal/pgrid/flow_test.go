package pgrid

import (
	"testing"
	"time"

	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// run executes the sends a flowTable method returned.
func runSends(sends []func()) {
	for _, s := range sends {
		s()
	}
}

// TestFlowTableSubmitWindowRelease: sends inside the advertised window
// go out immediately, the overrun defers FIFO, and each release admits
// the next parked send in issue order.
func TestFlowTableSubmitWindowRelease(t *testing.T) {
	ft := newFlowTable(false)
	runSends(ft.window(1, 100, 2))

	var sent []int
	mk := func(i int) func() { return func() { sent = append(sent, i) } }
	for i := 0; i < 4; i++ {
		ft.submit(1, flowKey{qid: uint64(i + 1)}, 40, mk(i))
	}
	if len(sent) != 2 {
		t.Fatalf("window of 2 msgs admitted %d sends, want 2", len(sent))
	}
	if n := ft.deferredLen(1); n != 2 {
		t.Fatalf("deferred %d, want 2", n)
	}
	runSends(ft.release(flowKey{qid: 1}, 1, 100, 2))
	runSends(ft.release(flowKey{qid: 2}, 1, 100, 2))
	if len(sent) != 4 || sent[2] != 2 || sent[3] != 3 {
		t.Fatalf("flush order %v, want [0 1 2 3]", sent)
	}
	if msgs, bytes := ft.inflight(1); msgs != 2 || bytes != 80 {
		t.Fatalf("inflight after flush = %d msgs / %dB, want 2/80", msgs, bytes)
	}
}

// TestFlowTableTinyWindowLiveness: a window smaller than one entry
// degrades to stop-and-wait, never to silence — the ≥1-in-flight rule.
func TestFlowTableTinyWindowLiveness(t *testing.T) {
	ft := newFlowTable(false)
	runSends(ft.window(7, 1, 1)) // 1 byte, 1 msg: nothing "fits"

	sent := 0
	for i := 0; i < 3; i++ {
		ft.submit(7, flowKey{qid: uint64(i + 1)}, 500, func() { sent++ })
	}
	if sent != 1 {
		t.Fatalf("tiny window let %d sends out at once, want exactly 1", sent)
	}
	runSends(ft.release(flowKey{qid: 1}, 7, 1, 1))
	if sent != 2 {
		t.Fatalf("release admitted %d total, want stop-and-wait progress to 2", sent)
	}
	runSends(ft.release(flowKey{qid: 2}, 7, 1, 1))
	runSends(ft.release(flowKey{qid: 3}, 7, 1, 1))
	if sent != 3 {
		t.Fatalf("stream wedged at %d/3 sends", sent)
	}
}

// TestFlowTableTrySubmitSlowStart: with no window ever advertised,
// best-effort sends gate at the default window instead of passing
// freely; once the peer advertises, the real window governs; and a
// parked reliable send is never overtaken by a best-effort one.
func TestFlowTableTrySubmitSlowStart(t *testing.T) {
	ft := newFlowTable(false)
	accepted := 0
	for i := 0; i < 2*DefaultFlowWindowMsgs; i++ {
		if ft.trySubmit(3, flowKey{qid: uint64(i + 1)}, 64, func() { accepted++ }) {
			continue
		}
	}
	if accepted != DefaultFlowWindowMsgs {
		t.Fatalf("slow start admitted %d sends, want the default window %d",
			accepted, DefaultFlowWindowMsgs)
	}

	// Real credit news replaces the conservative bound.
	ft2 := newFlowTable(false)
	runSends(ft2.window(4, 1<<20, 2))
	ok1 := ft2.trySubmit(4, flowKey{qid: 101}, 64, func() {})
	ok2 := ft2.trySubmit(4, flowKey{qid: 102}, 64, func() {})
	ok3 := ft2.trySubmit(4, flowKey{qid: 103}, 64, func() {})
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("advertised 2-msg window admitted (%v,%v,%v), want (true,true,false)", ok1, ok2, ok3)
	}

	// FIFO: once a reliable send is parked, trySubmit declines even
	// with credit to spare.
	ft3 := newFlowTable(false)
	runSends(ft3.window(5, 64, 1))
	ft3.submit(5, flowKey{qid: 201}, 32, func() {}) // in flight
	ft3.submit(5, flowKey{qid: 202}, 32, func() {}) // parked
	if ft3.trySubmit(5, flowKey{qid: 203}, 1, func() {}) {
		t.Fatal("best-effort send overtook a parked reliable send")
	}
}

// TestFlowTableZeroCreditDeadlock is the regression pin for the
// failover liveness rule: when every byte of a receiver's window is
// charged and the receiver dies without acking, releaseNode must
// return all credit and flush the parked queue — otherwise the sender
// holds zero credit forever and the stream deadlocks.
func TestFlowTableZeroCreditDeadlock(t *testing.T) {
	ft := newFlowTable(false)
	runSends(ft.window(9, 100, 2))

	sent := 0
	for i := 0; i < 5; i++ {
		ft.submit(9, flowKey{qid: uint64(i + 1)}, 50, func() { sent++ })
	}
	if sent != 2 {
		t.Fatalf("setup: %d in flight, want 2", sent)
	}
	// The receiver dies; no ack will ever arrive.
	runSends(ft.releaseNode(9))
	if sent != 5 {
		t.Fatalf("releaseNode left the stream wedged at %d/5 sends", sent)
	}
	if msgs, bytes := ft.inflight(9); msgs != 0 || bytes != 0 {
		t.Fatalf("credit still held against a dead node: %d msgs / %dB", msgs, bytes)
	}
	if ft.deferredLen(9) != 0 {
		t.Fatal("deferred queue survived releaseNode")
	}

	// releaseOp variant: the operation is cancelled instead.
	ft2 := newFlowTable(false)
	runSends(ft2.window(9, 100, 1))
	sent2 := 0
	ft2.submit(9, flowKey{qid: 77, seq: 0}, 80, func() { sent2++ })
	ft2.submit(9, flowKey{qid: 77, seq: 1}, 80, func() { sent2++ })
	ft2.submit(9, flowKey{qid: 78}, 80, func() { sent2++ })
	runSends(ft2.releaseOp(77))
	if sent2 != 2 {
		t.Fatalf("releaseOp did not free credit for the next operation: %d sends", sent2)
	}
}

// TestFlowTablePenalty: deferred sends and an exhausted window raise
// the replica chooser's pressure signal; an idle peer costs nothing.
func TestFlowTablePenalty(t *testing.T) {
	ft := newFlowTable(false)
	if ft.penalty(2) != 0 {
		t.Fatal("idle peer has nonzero penalty")
	}
	runSends(ft.window(2, 600, 1))
	ft.submit(2, flowKey{qid: 1}, 600, func() {})
	if got := ft.penalty(2); got != 1 {
		t.Fatalf("exhausted window penalty = %d, want 1", got)
	}
	ft.submit(2, flowKey{qid: 2}, 600, func() {})
	if got := ft.penalty(2); got != 3 {
		t.Fatalf("deferred+exhausted penalty = %d, want 3", got)
	}
}

// TestGossipCoalescingKeepsStoreWinner: when two distinct entries of
// the same fact collide at equal versions in the pending buffer, the
// one kept must be the one the store's LWW tie-break would keep —
// otherwise two replicas can converge to different winners.
func TestGossipCoalescingKeepsStoreWinner(t *testing.T) {
	net := newNet(11)
	peers := BuildBalanced(net, 2, 1, DefaultConfig())
	p := peers[0]

	a := store.Entry{Kind: triple.ByOID, Triple: triple.T("p1", "pub", "Paper A"), Version: 1}
	b := store.Entry{Kind: triple.ByOID, Triple: triple.T("p1", "pub", "Paper B"), Version: 1}
	if !b.Supersedes(a) || a.Supersedes(b) {
		t.Fatal("fixture: B must supersede A under the value tie-break")
	}
	for _, batch := range [][]store.Entry{{b}, {a}} { // winner arrives FIRST
		p.gossipMu.Lock()
		p.mergeGossipLocked(99, batch)
		p.gossipMu.Unlock()
	}
	pend := p.gossipPend[99]
	if len(pend) != 1 {
		t.Fatalf("pending holds %d entries, want 1 coalesced", len(pend))
	}
	for _, e := range pend {
		if !e.Triple.Equal(b.Triple) {
			t.Fatalf("coalescing kept %v, want the store winner %v", e.Triple, b.Triple)
		}
	}
	// Higher version still wins regardless of value order.
	c := store.Entry{Kind: triple.ByOID, Triple: triple.T("p1", "pub", "Paper A"), Version: 2}
	p.gossipMu.Lock()
	p.mergeGossipLocked(99, []store.Entry{c})
	p.gossipMu.Unlock()
	for _, e := range p.gossipPend[99] {
		if e.Version != 2 {
			t.Fatalf("version 2 did not supersede: kept v%d", e.Version)
		}
	}
}

// TestGossipPendingDrainsOnCredit: gossip declined by a tiny window
// parks in the pending buffer and must drain completely once acks
// return credit — by quiescence the replica holds every entry.
func TestGossipPendingDrainsOnCredit(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: 12})
	cfg := DefaultConfig()
	cfg.FlowWindowBytes = 600 // a couple of entries per credit grant
	cfg.FlowWindowMsgs = 1
	peers := BuildBalanced(net, 4, 2, cfg)

	origin := peers[0]
	for i := 0; i < 40; i++ {
		tr := triple.T(personOID(i), "name", personOID(i))
		if res := origin.InsertTripleSync(tr, 1); !res.Complete {
			t.Fatalf("insert %d did not complete", i)
		}
	}
	net.Settle()
	for _, p := range peers {
		p.gossipMu.Lock()
		held := 0
		for _, pend := range p.gossipPend {
			held += len(pend)
		}
		p.gossipMu.Unlock()
		if held != 0 {
			t.Fatalf("peer %d still holds %d pending gossip entries at quiescence", p.ID(), held)
		}
	}
	// Replica siblings converged despite the 1-msg window.
	for _, p := range peers {
		for _, r := range p.Replicas() {
			var sib *Peer
			for _, q := range peers {
				if q.ID() == r.ID {
					sib = q
				}
			}
			if sib == nil {
				continue
			}
			if got, want := len(sib.Store().Facts()), len(p.Store().Facts()); got != want {
				t.Fatalf("replica pair %d/%d diverged: %d vs %d facts", p.ID(), sib.ID(), got, want)
			}
		}
	}
}

func personOID(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + "x"
}
