package pgrid

import "testing"

// FuzzDecodePayload throws arbitrary bytes at the wire decoder. The
// invariant under test is the transport's safety contract: DecodePayload
// returns (payload, nil) or (nil, error) — it never panics, whatever the
// peer on the other end of the socket sent. Valid frames must also
// survive a re-encode/re-decode cycle.
func FuzzDecodePayload(f *testing.F) {
	for _, p := range samplePayloads() {
		data, err := EncodePayload(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte("go test fuzz"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data)
		if err != nil {
			return
		}
		// A frame the decoder accepted must be re-encodable: otherwise a
		// relay node could receive a message it cannot forward.
		out, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("decoded payload %T does not re-encode: %v", p, err)
		}
		if _, err := DecodePayload(out); err != nil {
			t.Fatalf("re-encoded payload %T does not decode: %v", p, err)
		}
	})
}
