package pgrid

import (
	"testing"

	"unistore/internal/agg"
	"unistore/internal/keys"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// samplePayloads returns one representative instance of every overlay
// message payload, exercising the optional riders (agg specs, paging
// continuations, replica lists) that plain zero values would skip.
func samplePayloads() []any {
	k := keys.FromBits("10110")
	r := keys.Range{Lo: keys.FromBits("10"), Hi: keys.FromBits("11"), HiOpen: true}
	e := store.Entry{
		Kind:    triple.ByAV,
		Key:     k,
		Triple:  triple.Triple{OID: "o1", Attr: "name", Val: triple.S("miller")},
		Version: 7,
	}
	spec := &agg.Spec{
		GroupBy: []string{"a"},
		Items:   []agg.Item{{Func: agg.Count, Var: "v", Out: "n"}},
		Pat:     [3]agg.Term{agg.VarTerm("o"), agg.LitTerm(triple.S("age")), agg.VarTerm("v")},
	}
	cont := pageCont{Kind: 1, R: r, SkipAtLo: 2, Share: 1 << 20, PageSize: 3,
		Hops: 2, Desc: true, Cursor: k, Agg: spec, AggAfter: "g1"}
	return []any{
		routeEnvelope{Target: k, Hops: 3, Inner: insertReq{Entry: e, QID: 9, Origin: 4, Seq: 1}},
		routeEnvelope{Target: k, Hops: 1, Inner: lookupReq{QID: 2, Origin: 0, Kind: 1, Key: k, Agg: spec}},
		routeEnvelope{Target: keys.Empty, Hops: 0, Inner: pageReq{QID: 5, Origin: 2, Cont: cont}},
		insertReq{Entry: e, QID: 1, Origin: 3, Seq: 2},
		lookupReq{QID: 4, Origin: 1, Kind: 0, Key: k},
		multiLookupReq{QID: 6, Origin: 2, Kind: 1, Keys: []keys.Key{k, keys.FromBits("01")}, Agg: spec},
		rangeMsg{QID: 7, Origin: 0, Kind: 2, R: r, Level: 1, Share: 512, Hops: 1,
			Probe: true, PageSize: 4, Desc: true, Agg: spec},
		pageReq{QID: 8, Origin: 5, Cont: cont},
		queryResp{QID: 9, Entries: []store.Entry{e}, Count: 1, Share: 256, Hops: 2,
			From: 6, Path: k, Replicas: []Ref{{ID: 7, Path: k}}, Probes: 2,
			ProbeKeys: []keys.Key{k}, Final: true, Cont: &cont,
			AggData: []byte{1, 2, 3}, AggGroups: 1},
		ackMsg{QID: 10, Hops: 4, Seq: 2},
		gossipMsg{Entries: []store.Entry{e}},
		antiEntropyMsg{Entries: []store.Entry{e}, Reply: true},
		digestMsg{Buckets: map[string]bucketSum{"1/0110": {Count: 3, MaxVersion: 9, Hash: 0xdead}}, Reply: true},
		digestPullMsg{Buckets: []string{"1/0110", "2/01"}},
		exchangeMsg{Path: k, Refs: [][]Ref{{{ID: 1, Path: k}}, nil}, Replicas: []Ref{{ID: 2, Path: k}},
			Entries: []store.Entry{e}, IsReply: true, SplitBit: 1},
		xferMsg{Entries: []store.Entry{e}},
		appMsg{Payload: xferMsg{Entries: []store.Entry{e}}, Hops: 2},
	}
}

func TestWireRoundTrip(t *testing.T) {
	for i, p := range samplePayloads() {
		data, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("payload %d (%T): encode: %v", i, p, err)
		}
		got, err := DecodePayload(data)
		if err != nil {
			t.Fatalf("payload %d (%T): decode: %v", i, p, err)
		}
		if err := equalPayload(p, got); err != nil {
			t.Errorf("payload %d (%T): round-trip mismatch: %v", i, p, err)
		}
	}
}

// equalPayload compares a decoded payload against the original through
// re-encoding: gob is deterministic for a fixed type registry, so two
// equal values encode to identical bytes (map iteration order is the
// one exception, covered by the single-entry digest sample).
func equalPayload(want, got any) error {
	wb, err := EncodePayload(want)
	if err != nil {
		return err
	}
	gb, err := EncodePayload(got)
	if err != nil {
		return err
	}
	if string(wb) != string(gb) {
		return errMismatch
	}
	return nil
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "re-encoded bytes differ" }

func TestWireDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{0xff, 0xff, 0xff, 0xff},
		[]byte("not a gob stream at all"),
	}
	for i, c := range cases {
		if _, err := DecodePayload(c); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestWireDecodeTruncated(t *testing.T) {
	data, err := EncodePayload(samplePayloads()[8]) // the large queryResp
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut += 7 {
		if _, err := DecodePayload(data[:cut]); err == nil {
			t.Errorf("truncation at %d/%d decoded without error", cut, len(data))
		}
	}
}
