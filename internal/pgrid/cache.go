package pgrid

import (
	"unistore/internal/keys"
	"unistore/internal/simnet"
)

// This file implements the per-peer routing cache: a learned
// partition→node map that turns repeat probes into single-hop direct
// sends. Every queryResp already carries the responder's identity and
// trie path, so a peer passively accumulates the partition map of the
// regions its queries touch — no extra maintenance traffic. The cache
// is an accelerator, never an authority: a stale entry only costs the
// message an extra forwarding leg through normal prefix routing, and
// the repaired response replaces the entry.
//
// Invalidation:
//   - a cached node that died is dropped the moment a send would use it
//     (route failure fallback: the probe takes the normal routed path);
//   - learning a deeper path for a region deletes cached entries at
//     strict prefixes of it — those described a partition that has
//     since split (bootstrap, merge, late join);
//   - learning a different node for the same path replaces the entry;
//   - a peer whose OWN path changes clears its whole cache, since a
//     local split/merge means the trie it learned is suspect.

// routeCacheMax bounds the entries kept per peer. A full partition map
// of the largest experiment fits comfortably; the bound only guards
// against pathological workloads.
const routeCacheMax = 4096

// routeCache is the learned partition→node map. It is guarded by the
// owning peer's mu (reads under RLock, writes under Lock).
type routeCache struct {
	entries  map[string]Ref // partition path (bit string) → responder
	maxDepth int            // longest cached path, bounds the lookup walk
}

func newRouteCache() *routeCache {
	return &routeCache{entries: make(map[string]Ref)}
}

// lookupLocked finds the cached owner of the deepest cached partition
// containing target. Longest prefix wins, so entries learned after a
// split shadow the stale pre-split entry for the keys that moved.
func (c *routeCache) lookupLocked(target keys.Key) (Ref, bool) {
	if len(c.entries) == 0 {
		return Ref{}, false
	}
	top := c.maxDepth
	if target.Len() < top {
		top = target.Len()
	}
	for l := top; l >= 0; l-- {
		if r, ok := c.entries[target.Prefix(l).String()]; ok {
			return r, true
		}
	}
	return Ref{}, false
}

// learnLocked records that node ref answers for partition path,
// returning how many contradicted entries were invalidated.
func (c *routeCache) learnLocked(path keys.Key, ref Ref) int {
	key := path.String()
	invalidated := 0
	if old, ok := c.entries[key]; ok && old.ID != ref.ID {
		invalidated++
	}
	// Entries at strict prefixes of the learned path described a
	// partition that has since split; drop them so they stop shadowing.
	for l := path.Len() - 1; l >= 0; l-- {
		p := path.Prefix(l).String()
		if _, ok := c.entries[p]; ok {
			delete(c.entries, p)
			invalidated++
		}
	}
	// Symmetrically, entries at strict extensions described partitions
	// the learned one now covers. P-Grid paths only ever deepen today,
	// so this sweep is normally empty — it exists so a future
	// shallowing (partition coalescing) cannot leave deeper stale
	// entries shadowing the fresh owner forever, degrading the 1-hop
	// fast path while still counting as cache hits.
	for p := range c.entries {
		if len(p) > len(key) && p[:len(key)] == key {
			delete(c.entries, p)
			invalidated++
		}
	}
	if _, exists := c.entries[key]; !exists && len(c.entries) >= routeCacheMax {
		return invalidated // full: keep what we have rather than evict randomly
	}
	c.entries[key] = Ref{ID: ref.ID, Path: path}
	if path.Len() > c.maxDepth {
		c.maxDepth = path.Len()
	}
	return invalidated
}

// dropLocked removes the entry for one partition path.
func (c *routeCache) dropLocked(path keys.Key) bool {
	key := path.String()
	if _, ok := c.entries[key]; !ok {
		return false
	}
	delete(c.entries, key)
	return true
}

// clearLocked empties the cache.
func (c *routeCache) clearLocked() int {
	n := len(c.entries)
	c.entries = make(map[string]Ref)
	c.maxDepth = 0
	return n
}

// --- Peer-side cache operations ----------------------------------------------

// cachedOwner resolves the cached responsible peer for a key, dropping
// (and counting) an entry whose node has died — the route-failure
// invalidation path.
func (p *Peer) cachedOwner(target keys.Key) (Ref, bool) {
	if p.cfg.DisableRouteCache {
		return Ref{}, false
	}
	p.mu.RLock()
	ref, ok := p.cache.lookupLocked(target)
	p.mu.RUnlock()
	if !ok {
		return Ref{}, false
	}
	if !p.net.Alive(ref.ID) {
		p.mu.Lock()
		dropped := p.cache.dropLocked(ref.Path)
		p.mu.Unlock()
		if dropped {
			p.stats.cacheInvalidations.Add(1)
		}
		return Ref{}, false
	}
	return ref, true
}

// learnRouteLocked records a responder observed in a query response;
// callers hold p.mu. Entries for the peer itself are pointless
// (Responsible short-circuits before the cache is consulted).
func (p *Peer) learnRouteLocked(path keys.Key, from simnet.NodeID) {
	if p.cfg.DisableRouteCache || from == p.id || path.Len() == 0 {
		return
	}
	if inv := p.cache.learnLocked(path, Ref{ID: from, Path: path}); inv > 0 {
		p.stats.cacheInvalidations.Add(int64(inv))
	}
}

// RouteCacheSize reports how many partition→node entries the peer has
// learned (tests and the demo UI's inspection tabs).
func (p *Peer) RouteCacheSize() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.cache.entries)
}
