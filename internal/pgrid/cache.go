package pgrid

import (
	"time"

	"unistore/internal/keys"
	"unistore/internal/simnet"
)

// This file implements the per-peer routing cache: a learned
// partition→owner-set map that turns repeat probes into single-hop
// direct sends. Every queryResp carries the responder's identity, trie
// path AND replica group, so a peer passively accumulates not just one
// owner per partition but the whole replica set of the regions its
// queries touch — no extra maintenance traffic. The cache is an
// accelerator, never an authority: a stale entry only costs the
// message an extra forwarding leg through normal prefix routing, and
// the repaired response replaces the entry.
//
// Each cached owner carries a health/latency EWMA fed by observed
// response round trips (and penalized when a probe to it had to be
// hedged), which the power-of-two-choices replica chooser (replica.go)
// uses as its tie-break.
//
// Invalidation:
//   - a cached owner that died is dropped from its set the moment a
//     send would use it; a set whose owners all died is dropped whole
//     (route failure fallback: the probe takes the normal routed path);
//   - learning a deeper path for a region deletes cached entries at
//     strict prefixes of it — those described a partition that has
//     since split (bootstrap, merge, late join);
//   - learning a different responder for the same path ADDS it to the
//     set (it is a sibling replica, not a contradiction);
//   - a peer whose OWN path changes clears its whole cache, since a
//     local split/merge means the trie it learned is suspect.

// routeCacheMax bounds the entries kept per peer. A full partition map
// of the largest experiment fits comfortably; the bound only guards
// against pathological workloads.
const routeCacheMax = 4096

// maxOwnersPerSet bounds the replicas tracked per cached partition.
const maxOwnersPerSet = 8

// ewmaAlpha is the weight of a fresh latency sample in the owner EWMA.
const ewmaAlpha = 0.3

// ownerInfo is one replica of a cached partition: the routing
// reference plus a smoothed round-trip estimate (simulated
// nanoseconds; 0 = no sample yet). A hedged probe doubles the estimate
// as a health penalty, so chronically slow or silent replicas sink in
// the chooser's tie-break until a fresh response rehabilitates them.
type ownerInfo struct {
	Ref
	ewma float64
}

// ownerSet is the cached replica group of one partition. owners[0] is
// the most recent responder (the "primary" that single-owner reads and
// write routing use); the rest are siblings learned from response
// replica lists or from other responders answering for the same path.
type ownerSet struct {
	path   keys.Key
	owners []ownerInfo
}

// live returns the indexes of owners currently alive, capped at bound
// (0 = no cap) — the candidate list of the replica chooser.
func (s *ownerSet) live(net Transport, bound int, skip map[simnet.NodeID]bool) []int {
	n := len(s.owners)
	if bound > 0 && bound < n {
		n = bound
	}
	var out []int
	for i := 0; i < n; i++ {
		if skip != nil && skip[s.owners[i].ID] {
			continue
		}
		if net.Alive(s.owners[i].ID) {
			out = append(out, i)
		}
	}
	return out
}

// routeCache is the learned partition→owner-set map. It is guarded by
// the owning peer's mu (reads under RLock, writes under Lock).
type routeCache struct {
	entries  map[string]*ownerSet
	maxDepth int // longest cached path, bounds the lookup walk
}

func newRouteCache() *routeCache {
	return &routeCache{entries: make(map[string]*ownerSet)}
}

// setLocked finds the owner set of the deepest cached partition
// containing target. Longest prefix wins, so entries learned after a
// split shadow the stale pre-split entry for the keys that moved.
func (c *routeCache) setLocked(target keys.Key) (*ownerSet, bool) {
	if len(c.entries) == 0 {
		return nil, false
	}
	top := c.maxDepth
	if target.Len() < top {
		top = target.Len()
	}
	for l := top; l >= 0; l-- {
		if s, ok := c.entries[target.Prefix(l).String()]; ok {
			return s, true
		}
	}
	return nil, false
}

// lookupLocked resolves the primary cached owner for a key (the
// single-owner view kept for write routing and tests).
func (c *routeCache) lookupLocked(target keys.Key) (Ref, bool) {
	s, ok := c.setLocked(target)
	if !ok || len(s.owners) == 0 {
		return Ref{}, false
	}
	return s.owners[0].Ref, true
}

// learnLocked records that node ref answers for partition path,
// optionally with its replica siblings, returning how many
// contradicted entries were invalidated. The responder moves to the
// front of the set (it is provably alive and serving); replicas join
// behind it.
func (c *routeCache) learnLocked(path keys.Key, ref Ref, replicas ...Ref) int {
	key := path.String()
	invalidated := 0
	// Entries at strict prefixes of the learned path described a
	// partition that has since split; drop them so they stop shadowing.
	for l := path.Len() - 1; l >= 0; l-- {
		p := path.Prefix(l).String()
		if _, ok := c.entries[p]; ok {
			delete(c.entries, p)
			invalidated++
		}
	}
	// Symmetrically, entries at strict extensions described partitions
	// the learned one now covers. P-Grid paths only ever deepen today,
	// so this sweep is normally empty — it exists so a future
	// shallowing (partition coalescing) cannot leave deeper stale
	// entries shadowing the fresh owner forever, degrading the 1-hop
	// fast path while still counting as cache hits.
	for p := range c.entries {
		if len(p) > len(key) && p[:len(key)] == key {
			delete(c.entries, p)
			invalidated++
		}
	}
	set, exists := c.entries[key]
	if !exists {
		if len(c.entries) >= routeCacheMax {
			return invalidated // full: keep what we have rather than evict randomly
		}
		set = &ownerSet{path: path}
		c.entries[key] = set
		if path.Len() > c.maxDepth {
			c.maxDepth = path.Len()
		}
	}
	set.promote(Ref{ID: ref.ID, Path: path})
	for _, r := range replicas {
		set.add(r)
	}
	return invalidated
}

// promote inserts or moves ref to the front of the set, preserving its
// EWMA if already known.
func (s *ownerSet) promote(ref Ref) {
	for i, o := range s.owners {
		if o.ID == ref.ID {
			o.Ref = ref
			copy(s.owners[1:i+1], s.owners[:i])
			s.owners[0] = o
			return
		}
	}
	s.owners = append(s.owners, ownerInfo{})
	copy(s.owners[1:], s.owners)
	s.owners[0] = ownerInfo{Ref: ref}
	if len(s.owners) > maxOwnersPerSet {
		s.owners = s.owners[:maxOwnersPerSet]
	}
}

// add appends a sibling replica if not already present.
func (s *ownerSet) add(ref Ref) {
	for _, o := range s.owners {
		if o.ID == ref.ID {
			return
		}
	}
	if len(s.owners) < maxOwnersPerSet {
		s.owners = append(s.owners, ownerInfo{Ref: ref})
	}
}

// observe folds a round-trip sample (or a penalty) into one owner's
// EWMA.
func (s *ownerSet) observe(id simnet.NodeID, rtt time.Duration) {
	for i := range s.owners {
		if s.owners[i].ID == id {
			if s.owners[i].ewma == 0 {
				s.owners[i].ewma = float64(rtt)
			} else {
				s.owners[i].ewma = (1-ewmaAlpha)*s.owners[i].ewma + ewmaAlpha*float64(rtt)
			}
			return
		}
	}
}

// penalize doubles an owner's EWMA (floored at the penalty) — the
// health signal of a probe that had to be hedged or retried away from
// it.
func (s *ownerSet) penalize(id simnet.NodeID, floor time.Duration) {
	for i := range s.owners {
		if s.owners[i].ID == id {
			s.owners[i].ewma *= 2
			if s.owners[i].ewma < float64(floor) {
				s.owners[i].ewma = float64(floor)
			}
			return
		}
	}
}

// dropOwnerLocked removes one (dead) owner from a partition's set,
// deleting the set when it empties. It reports whether anything was
// removed.
func (c *routeCache) dropOwnerLocked(path keys.Key, id simnet.NodeID) bool {
	key := path.String()
	set, ok := c.entries[key]
	if !ok {
		return false
	}
	for i, o := range set.owners {
		if o.ID == id {
			set.owners = append(set.owners[:i], set.owners[i+1:]...)
			if len(set.owners) == 0 {
				delete(c.entries, key)
			}
			return true
		}
	}
	return false
}

// dropLocked removes the entry for one partition path.
func (c *routeCache) dropLocked(path keys.Key) bool {
	key := path.String()
	if _, ok := c.entries[key]; !ok {
		return false
	}
	delete(c.entries, key)
	return true
}

// clearLocked empties the cache.
func (c *routeCache) clearLocked() int {
	n := len(c.entries)
	c.entries = make(map[string]*ownerSet)
	c.maxDepth = 0
	return n
}

// --- Peer-side cache operations ----------------------------------------------

// cachedOwner resolves the primary cached responsible peer for a key,
// failing over to a live sibling replica (and dropping dead owners,
// counted) when the primary has died — the route-failure invalidation
// path. Write routing and plain envelope sends use it; the probe read
// path goes through cachedSet + pickReplica for load-aware choice.
func (p *Peer) cachedOwner(target keys.Key) (Ref, bool) {
	if p.cfg.DisableRouteCache {
		return Ref{}, false
	}
	for {
		p.mu.RLock()
		set, ok := p.cache.setLocked(target)
		var ref Ref
		if ok && len(set.owners) > 0 {
			ref = set.owners[0].Ref
		} else {
			ok = false
		}
		p.mu.RUnlock()
		if !ok {
			return Ref{}, false
		}
		if p.net.Alive(ref.ID) {
			return ref, true
		}
		p.mu.Lock()
		dropped := p.cache.dropOwnerLocked(ref.Path, ref.ID)
		p.mu.Unlock()
		if dropped {
			p.stats.cacheInvalidations.Add(1)
		} else {
			// Lost a race with another invalidation; avoid spinning.
			return Ref{}, false
		}
	}
}

// cachedSet returns the owner set covering target, if any. The pointer
// is only valid under p.mu; callers needing it across unlocks must
// snapshot.
func (p *Peer) cachedSetLocked(target keys.Key) (*ownerSet, bool) {
	if p.cfg.DisableRouteCache {
		return nil, false
	}
	return p.cache.setLocked(target)
}

// learnRouteLocked records a responder (and its replica group)
// observed in a query response; callers hold p.mu. Entries for the
// peer itself are pointless (Responsible short-circuits before the
// cache is consulted).
func (p *Peer) learnRouteLocked(path keys.Key, from simnet.NodeID, replicas []Ref) {
	if p.cfg.DisableRouteCache || from == p.id || path.Len() == 0 {
		return
	}
	sibs := replicas[:0:0]
	for _, r := range replicas {
		if r.ID != p.id {
			sibs = append(sibs, r)
		}
	}
	if inv := p.cache.learnLocked(path, Ref{ID: from, Path: path}, sibs...); inv > 0 {
		p.stats.cacheInvalidations.Add(int64(inv))
	}
}

// observeOwnerLocked folds a response round trip into the responder's
// cached EWMA; callers hold p.mu.
func (p *Peer) observeOwnerLocked(path keys.Key, from simnet.NodeID, rtt time.Duration) {
	if set, ok := p.cache.entries[path.String()]; ok {
		set.observe(from, rtt)
	}
}

// RouteCacheLatency sums the cached per-replica latency EWMAs (and
// counts the owners carrying a sample) — the raw material the harness
// averages into cost.Stats.ProbeRTT, so probe pricing tracks the
// latency profile the replica chooser actually observes.
func (p *Peer) RouteCacheLatency() (sum time.Duration, samples int) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, set := range p.cache.entries {
		for _, o := range set.owners {
			if o.ewma > 0 {
				sum += time.Duration(o.ewma)
				samples++
			}
		}
	}
	return sum, samples
}

// RouteCacheSize reports how many partition→owner-set entries the peer
// has learned (tests and the demo UI's inspection tabs).
func (p *Peer) RouteCacheSize() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.cache.entries)
}

// RouteCacheOwners reports how many replicas the cache tracks for the
// partition covering target (tests).
func (p *Peer) RouteCacheOwners(target keys.Key) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	set, ok := p.cache.setLocked(target)
	if !ok {
		return 0
	}
	return len(set.owners)
}
