package pgrid

import (
	"fmt"
	"testing"
	"time"

	"unistore/internal/agg"
	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/trace"
	"unistore/internal/triple"
)

// countSpec is the canonical GROUP BY ?g / count(*) spec over pattern
// (?p,'group',?g).
func countSpec() *agg.Spec {
	return &agg.Spec{
		GroupBy: []string{"g"},
		Items:   []agg.Item{{Func: agg.Count, Out: "n"}},
		Pat: [3]agg.Term{
			agg.VarTerm("p"),
			agg.LitTerm(triple.S("group")),
			agg.VarTerm("g"),
		},
	}
}

func buildAggOverlay(t *testing.T, n, replicas, pageSize int, seed int64) (*simnet.Network, []*Peer) {
	t.Helper()
	net := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: seed})
	cfg := DefaultConfig()
	cfg.PageSize = pageSize
	peers := BuildBalanced(net, n, replicas, cfg)
	return net, peers
}

func loadGroups(net *simnet.Network, peers []*Peer, persons int) map[string]float64 {
	groups := []string{"db", "os", "net"}
	want := map[string]float64{}
	for i := 0; i < persons; i++ {
		g := groups[i%len(groups)]
		want[g]++
		peers[i%len(peers)].InsertTriple(triple.T(fmt.Sprintf("p%03d", i), "group", g), 1)
	}
	net.Run()
	return want
}

// TestRangeQueryAggPaged: an aggregated shower must return exactly one
// merged state per group, with the per-partition answers paged by
// group count.
func TestRangeQueryAggPaged(t *testing.T) {
	for _, pageSize := range []int{0, 1, 2} {
		net, peers := buildAggOverlay(t, 16, 1, pageSize, 41)
		want := loadGroups(net, peers, 60)
		spec := countSpec()
		tbl := agg.NewTable(spec)
		h := peers[0].RangeQueryAgg(triple.ByAV, triple.AVPrefixRange("group"), spec,
			func(states []agg.State) { tbl.MergeStates(states) }, nil)
		res := h.Wait(0)
		if !res.Complete {
			t.Fatalf("pageSize %d: aggregated scan incomplete", pageSize)
		}
		rows := tbl.Rows()
		if len(rows) != len(want) {
			t.Fatalf("pageSize %d: %d groups, want %d", pageSize, len(rows), len(want))
		}
		for _, r := range rows {
			if r["n"].Num != want[r["g"].Str] {
				t.Fatalf("pageSize %d: group %q count %v, want %v",
					pageSize, r["g"].Str, r["n"], want[r["g"].Str])
			}
		}
	}
}

// TestRangeQueryAggChurn: killing a serving replica mid-aggregation
// must still produce exact group counts — the coverage re-shower and
// claim dedup keep each partition's contribution exactly-once.
func TestRangeQueryAggChurn(t *testing.T) {
	net, peers := buildAggOverlay(t, 32, 2, 2, 43)
	want := loadGroups(net, peers, 90)
	// Warm the origin's routing knowledge, then aggregate with a victim
	// killed while branch envelopes are in flight.
	spec := countSpec()
	tbl := agg.NewTable(spec)
	h := peers[0].RangeQueryAgg(triple.ByAV, triple.AVPrefixRange("group"), spec,
		func(states []agg.State) { tbl.MergeStates(states) }, nil)
	// Kill one loaded non-origin node before anything is delivered.
	killed := false
	for _, p := range peers[1:] {
		if net.Load(p.ID()) > 0 {
			net.Kill(p.ID())
			killed = true
			break
		}
	}
	if !killed {
		net.Kill(peers[1].ID())
	}
	h.Wait(0)
	rows := tbl.Rows()
	if len(rows) != len(want) {
		t.Fatalf("churned aggregation lost groups: %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		if r["n"].Num != want[r["g"].Str] {
			t.Fatalf("churned group %q count %v, want %v", r["g"].Str, r["n"], want[r["g"].Str])
		}
	}
}

// TestLookupAgg: a single-key aggregated probe returns the key's
// entries folded into group states instead of rows.
func TestLookupAgg(t *testing.T) {
	net, peers := buildAggOverlay(t, 16, 1, 0, 47)
	want := loadGroups(net, peers, 30)
	spec := countSpec()
	tbl := agg.NewTable(spec)
	h := peers[0].LookupAgg(triple.ByAV, triple.AVKey("group", triple.S("db")), spec,
		func(states []agg.State) { tbl.MergeStates(states) }, nil)
	res := h.Wait(0)
	if !res.Complete {
		t.Fatal("aggregated lookup incomplete")
	}
	rows := tbl.Rows()
	if len(rows) != 1 || rows[0]["g"].Str != "db" || rows[0]["n"].Num != want["db"] {
		t.Fatalf("aggregated lookup rows: %v, want db=%v", rows, want["db"])
	}
	if res.Entries != nil {
		t.Fatalf("aggregated lookup shipped %d raw entries", len(res.Entries))
	}
}

// TestAggProbePartialOverlapDropsWhole: an aggregated probe response
// that answers a mix of still-wanted and already-answered keys must be
// dropped whole (states cannot be split per key), with its wanted keys
// put back for the path that answered the others.
func TestAggProbePartialOverlapDropsWhole(t *testing.T) {
	net, peers := buildAggOverlay(t, 4, 1, 0, 53)
	_ = net
	p := peers[0]
	spec := countSpec()
	k1 := triple.AVKey("group", triple.S("db"))
	k2 := triple.AVKey("group", triple.S("os"))
	qid, op := p.newOp(0, 2, trace.OpMultiLookup, nil)
	p.mu.Lock()
	op.probeWant = map[string]bool{k1.String(): true, k2.String(): true}
	op.aggSpec = spec
	tbl := agg.NewTable(spec)
	op.onAgg = func(states []agg.State) { tbl.MergeStates(states) }
	p.mu.Unlock()

	one := agg.NewTable(spec)
	one.AddTriple(triple.T("p1", "group", "db"))
	both := agg.NewTable(spec)
	both.AddTriple(triple.T("p1", "group", "db"))
	both.AddTriple(triple.T("p2", "group", "os"))

	// k1 answered alone first; then a late batch re-answers k1 along
	// with k2 — its states fold k1's rows again, so it must be dropped.
	p.handleResponse(queryResp{QID: qid, ProbeKeys: []keys.Key{k1},
		AggData: agg.EncodeStates(one.States()), AggGroups: 1, From: 99, Path: keys.FromBits("0")}, 0)
	p.handleResponse(queryResp{QID: qid, ProbeKeys: []keys.Key{k1, k2},
		AggData: agg.EncodeStates(both.States()), AggGroups: 2, From: 98, Path: keys.FromBits("0")}, 0)
	h := &Handle{peer: p, op: op, qid: qid}
	if h.Done() {
		t.Fatal("partially overlapping batch completed the operation")
	}
	// The clean k2 answer completes it.
	two := agg.NewTable(spec)
	two.AddTriple(triple.T("p2", "group", "os"))
	p.handleResponse(queryResp{QID: qid, ProbeKeys: []keys.Key{k2},
		AggData: agg.EncodeStates(two.States()), AggGroups: 1, From: 97, Path: keys.FromBits("0")}, 0)
	if !h.Done() {
		t.Fatal("clean remainder did not complete the operation")
	}
	for _, r := range tbl.Rows() {
		if r["n"].Num != 1 {
			t.Fatalf("group %q counted %v times — overlapping batch double-counted", r["g"].Str, r["n"])
		}
	}
}
