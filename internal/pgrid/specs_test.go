package pgrid

import (
	"reflect"
	"testing"

	"unistore/internal/simnet"
)

func TestBalancedSpecsDeterministic(t *testing.T) {
	a := BalancedSpecs(8, 2, DefaultConfig(), 42)
	b := BalancedSpecs(8, 2, DefaultConfig(), 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same arguments produced different layouts")
	}
	c := BalancedSpecs(8, 2, DefaultConfig(), 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical routing (suspicious)")
	}
}

func TestBalancedSpecsShape(t *testing.T) {
	const n, replicas = 8, 2
	specs := BalancedSpecs(n, replicas, DefaultConfig(), 7)
	if len(specs) != n*replicas {
		t.Fatalf("got %d specs, want %d", len(specs), n*replicas)
	}
	byID := make(map[NodeID]NodeSpec, len(specs))
	for i, s := range specs {
		if s.ID != NodeID(i) {
			t.Errorf("spec %d has ID %d", i, s.ID)
		}
		byID[s.ID] = s
	}
	for _, s := range specs {
		// Replica group: replicas-1 others, same path, symmetric.
		if len(s.Replicas) != replicas-1 {
			t.Errorf("node %d: %d replicas", s.ID, len(s.Replicas))
		}
		for _, r := range s.Replicas {
			o := byID[r.ID]
			if o.Path.Compare(s.Path) != 0 {
				t.Errorf("node %d: replica %d has different path", s.ID, r.ID)
			}
			back := false
			for _, rr := range o.Replicas {
				if rr.ID == s.ID {
					back = true
				}
			}
			if !back {
				t.Errorf("replica link %d->%d not symmetric", s.ID, r.ID)
			}
		}
		// Routing refs: one level per path bit, targets in the sibling
		// subtree at that level.
		if len(s.Refs) != s.Path.Len() {
			t.Errorf("node %d: %d ref levels for path of %d bits", s.ID, len(s.Refs), s.Path.Len())
		}
		for l, refs := range s.Refs {
			if len(refs) == 0 {
				t.Errorf("node %d level %d: no refs", s.ID, l)
			}
			sibling := s.Path.Prefix(l).Append(1 - s.Path.Bit(l))
			for _, r := range refs {
				if !byID[r.ID].Path.HasPrefix(sibling) {
					t.Errorf("node %d level %d: ref %d outside sibling subtree %s",
						s.ID, l, r.ID, sibling)
				}
			}
		}
	}
}

// TestBuildFromSpecsMatchesSimnet instantiates a full spec layout on a
// simulated network and checks the resulting overlay is structurally
// valid and functionally equivalent to a directly built one: inserts
// route to the right partitions and queries find them.
func TestBuildFromSpecsMatchesSimnet(t *testing.T) {
	const n, replicas = 8, 2
	specs := BalancedSpecs(n, replicas, DefaultConfig(), 11)
	net := simnet.New(simnet.Config{Seed: 11})
	peers, err := BuildFromSpecs(net, specs, specs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != n*replicas {
		t.Fatalf("got %d peers", len(peers))
	}
	for i, p := range peers {
		if p.ID() != specs[i].ID {
			t.Fatalf("peer %d has ID %d", i, p.ID())
		}
		if p.Path().Compare(specs[i].Path) != 0 {
			t.Fatalf("peer %d path %s, want %s", i, p.Path(), specs[i].Path)
		}
	}
	if err := CheckTrie(peers); err != nil {
		t.Fatal(err)
	}
}
