package pgrid

import (
	"time"

	"unistore/internal/simnet"
)

// NodeID is the overlay-wide peer address. It aliases simnet.NodeID so
// the simulated network and real transports share one address space:
// a NodeID indexes the cluster's node table regardless of whether the
// node lives in the same process (simnet, or a co-hosted netx node) or
// behind a TCP connection.
type NodeID = simnet.NodeID

// Handler aliases simnet.Handler: the message-delivery interface every
// transport drives. A Peer is a Handler.
type Handler = simnet.Handler

// Message aliases simnet.Message, the unit of delivery.
type Message = simnet.Message

// Transport is the substrate peers run on: message delivery, timers, a
// clock, liveness and load signals, and seeded randomness. The simnet
// Network implements it for simulation (deterministic and concurrent
// modes); netx implements it over real TCP connections.
//
// Contract notes:
//
//   - Send is asynchronous and best-effort: it must not block on
//     network progress and may drop messages (loss, dead receivers,
//     full queues). The overlay's retry machinery owns reliability.
//   - After schedules fn on transport time (simulated or wall clock);
//     fn may run on an internal goroutine and must synchronize access
//     to shared state.
//   - Now is the transport's monotonic clock. All protocol durations
//     (hedge deadlines, EWMA decay, claim staleness) are measured on
//     it, so a real transport's Now advances in wall-clock time while
//     the simulator's advances in simulated time.
//   - Alive is advisory liveness: true unless the transport has
//     evidence the node is down (a killed simnet node, a failing TCP
//     address). Senders use it to skip known-dead replicas; it is
//     never required for correctness.
//   - Load is the advisory backlog signal of the power-of-two-choices
//     replica chooser; 0 is a fine answer for transports that cannot
//     observe remote queues.
//   - Concurrent reports asynchronous delivery: waiters must block on
//     completion signals instead of pumping an event loop. Real
//     transports always return true.
//   - WallTimeout converts a protocol-time budget into the wall-clock
//     bound a waiter should use (identity on real transports).
type Transport interface {
	// Send schedules best-effort delivery of payload to node `to`.
	Send(from, to NodeID, kind string, payload any)
	// After schedules fn to run once after d of transport time.
	After(d time.Duration, fn func())
	// Now returns the transport's monotonic clock reading.
	Now() time.Duration
	// AddNode registers a handler and returns its node address.
	AddNode(h Handler) NodeID
	// Alive reports advisory liveness of a node.
	Alive(id NodeID) bool
	// Load reports a node's advisory backlog (0 if unobservable).
	Load(id NodeID) int
	// Concurrent reports whether delivery is asynchronous.
	Concurrent() bool
	// WallTimeout scales a protocol-time budget to wall clock.
	WallTimeout(d time.Duration) time.Duration

	// Seeded randomness, safe for concurrent use.
	Intn(k int) int
	Int63() int64
	Float64() float64
	Perm(k int) []int
}

// Driver is the optional deterministic-mode surface of a Transport:
// the single-threaded event loop the simulator exposes, which
// synchronous waiters pump when Concurrent() is false. Real transports
// do not implement it — their waiters block on completion channels.
type Driver interface {
	// Step processes the next queued event; false when none remain.
	Step() bool
	// Pending returns the number of queued events.
	Pending() int
	// RunWhile steps while cond holds and events remain.
	RunWhile(cond func() bool) int
}

// DriverOf returns the deterministic driving surface of t when t is a
// simulator running in deterministic mode, else nil — the shared
// branch point of every synchronous wait: a non-nil Driver is pumped,
// nil means block on completion signals.
func DriverOf(t Transport) Driver {
	if t.Concurrent() {
		return nil
	}
	d, ok := t.(Driver)
	if !ok {
		return nil
	}
	return d
}

// driver is the package-internal shorthand for DriverOf.
func driver(t Transport) Driver { return DriverOf(t) }
