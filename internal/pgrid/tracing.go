package pgrid

import (
	"unistore/internal/trace"
)

// This file is the overlay's tracing glue (trace/span.go has the
// model). The invariant everything below maintains: every overlay
// message of a traced operation is charged to exactly one span field —
// a request's delivery cost (routing hops included) to the serving
// span's MsgsIn/BytesIn, its response or ack to the same span's
// MsgsOut/BytesOut (stamped by the origin from the received message) —
// so a quiet deterministic run's QueryTrace totals reconcile exactly
// with the transport's sent counters. Spans travel home as compact
// riders on responses the protocol sends anyway: tracing adds bytes,
// never messages.

// newSpanID allocates a span id unique across the overlay: the peer's
// address in the high bits, a local sequence below. Only uniqueness
// matters — structural trace comparison never looks at ids.
func (p *Peer) newSpanID() uint64 {
	return uint64(p.id+1)<<32 | (p.spanSeq.Add(1) & 0xffffffff)
}

// beginSpan opens the serving-side span of a traced request that
// arrived at the cost of msgsIn messages / bytesIn bytes (0/0 for a
// local serve). Nil when the request carries no trace context.
func (p *Peer) beginSpan(tc trace.Ctx, op uint8, msgsIn, bytesIn int) *trace.WireSpan {
	if !tc.Active() {
		return nil
	}
	now := int64(p.net.Now())
	return &trace.WireSpan{
		ID: p.newSpanID(), Parent: tc.Parent, Op: op,
		Flags: tc.Flags, Depth: tc.Depth, Peer: int64(p.id),
		Path:   p.Path().String(),
		MsgsIn: int32(msgsIn), BytesIn: int32(bytesIn),
		Enq: now, Srv: now,
	}
}

// finishSpan stamps the reply instant and row count, buffers the span
// in the peer's ring, and returns it for piggybacking on the response.
func (p *Peer) finishSpan(ws *trace.WireSpan, traceID uint64, rows int) *trace.WireSpan {
	if ws == nil {
		return nil
	}
	ws.Rows = int32(rows)
	ws.Rep = int64(p.net.Now())
	if p.tring != nil {
		// The ring's copy cannot know the response cost yet; the
		// origin-side copy carries it.
		p.tring.Add(ws.Span(traceID, 0, 0))
	}
	return ws
}

// beginOpTrace registers the origin-side root span of a traced
// operation in the per-qid accumulator and returns the child context
// its requests carry. The accumulator is independent of the pendingOp
// lifetime, so riders arriving after completion still reconcile; the
// issuer drains it with TakeTrace.
func (p *Peer) beginOpTrace(qid uint64, tc trace.Ctx, op uint8) trace.Ctx {
	if p.traces == nil || !tc.Active() {
		return trace.Ctx{}
	}
	id := p.newSpanID()
	now := int64(p.net.Now())
	root := trace.Span{
		ID: id, Parent: tc.Parent, TraceID: tc.TraceID,
		Kind: trace.OpName(op), Peer: int64(p.id), Path: p.Path().String(),
		Flags: tc.Flags, Depth: tc.Depth, Enq: now, Srv: now,
	}
	p.traceMu.Lock()
	p.traces[qid] = append(p.traces[qid], root)
	p.traceMu.Unlock()
	return tc.Child(id)
}

// absorbRider folds a piggybacked span rider into the accumulator of
// the operation it answers, charging it the response's own cost (one
// message of `size` bytes). Riders of unknown or untraced operations
// are dropped. This runs BEFORE any op-done check, so a late response
// still reconciles.
func (p *Peer) absorbRider(qid uint64, ws *trace.WireSpan, size int) {
	if ws == nil || p.traces == nil {
		return
	}
	p.traceMu.Lock()
	tr, ok := p.traces[qid]
	if ok {
		p.traces[qid] = append(tr, ws.Span(tr[0].TraceID, 1, size))
	}
	p.traceMu.Unlock()
}

// noteTraceStall charges one credit-window stall to the operation's
// root span (the stall happens at the origin, before any server span
// exists).
func (p *Peer) noteTraceStall(qid uint64) {
	if p.traces == nil {
		return
	}
	p.traceMu.Lock()
	if tr := p.traces[qid]; len(tr) > 0 {
		tr[0].Stalls++
	}
	p.traceMu.Unlock()
}

// TakeTrace drains and returns the spans accumulated for one traced
// operation this peer originated — root span first, riders in arrival
// order. The root's reply instant is stamped at drain time if still
// open. Callers that issued an operation WithTrace own its qid's
// accumulator entry and must drain it (or leave it for a later drain;
// entries are per-op and bounded by the ops the caller traces).
func (p *Peer) TakeTrace(qid uint64) []trace.Span {
	if p.traces == nil {
		return nil
	}
	p.traceMu.Lock()
	tr := p.traces[qid]
	delete(p.traces, qid)
	p.traceMu.Unlock()
	if len(tr) > 0 && tr[0].Rep == 0 {
		tr[0].Rep = int64(p.net.Now())
	}
	return tr
}

// peekTrace copies a traced operation's accumulated spans without
// draining (OpResult.Spans at completion; TakeTrace is the drain).
func (p *Peer) peekTrace(qid uint64) []trace.Span {
	if p.traces == nil {
		return nil
	}
	p.traceMu.Lock()
	defer p.traceMu.Unlock()
	tr := p.traces[qid]
	if tr == nil {
		return nil
	}
	return append([]trace.Span(nil), tr...)
}

// SpanRing exposes the peer's bounded buffer of served spans (nil with
// tracing off) — the raw material of daemon diagnostics.
func (p *Peer) SpanRing() *trace.SpanRing { return p.tring }

// TracingEnabled reports whether this peer records spans and honors
// WithTrace contexts on the operations it originates.
func (p *Peer) TracingEnabled() bool { return p.cfg.Tracing }

// NewTraceID allocates an id unique across the overlay, usable as a
// trace id or as the id of a coordinator-synthesized span.
func (p *Peer) NewTraceID() uint64 { return p.newSpanID() }
