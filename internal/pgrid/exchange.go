package pgrid

import (
	"time"

	"unistore/internal/simnet"
)

// This file implements P-Grid's decentralized construction: the trie
// emerges from pairwise exchanges between peers without central
// coordination or global knowledge (Aberer, CoopIS 2001). The same
// interaction merges two formerly independent overlays (the paper's
// "merging ... in a parallel fashion"), because an exchange only ever
// compares the two peers' paths.
//
// Exchange cases for peers a (initiator) and b, with cpl the length of
// their paths' common prefix:
//
//  1. identical paths  — both split: one takes bit 0, the other bit 1,
//     referencing each other at the new level (unless the depth limit
//     is reached, in which case they become replicas and reconcile).
//  2. one path is a prefix of the other — the shorter peer specializes
//     into the sibling subtree of the longer peer's next bit.
//  3. diverging paths — each records the other as a routing reference
//     at level cpl and adopts references for shallower levels.
//
// After any path change a peer re-homes entries it no longer covers by
// routing them as ordinary inserts.

// MaxSplitDepth bounds trie depth during exchanges; identical-path
// peers at the bound become replicas instead of splitting further.
// Depth 20 supports ~10^6 partitions, far beyond the experiments.
const MaxSplitDepth = 20

// StartExchange initiates one exchange round-trip with peer `to`.
func (p *Peer) StartExchange(to simnet.NodeID) {
	p.net.Send(p.id, to, KindExchange, p.exchangePayload(false))
}

func (p *Peer) exchangePayload(reply bool) exchangeMsg {
	p.mu.RLock()
	defer p.mu.RUnlock()
	refs := make([][]Ref, len(p.refs))
	for i, ls := range p.refs {
		refs[i] = append([]Ref(nil), ls...)
	}
	return exchangeMsg{
		Path:     p.path,
		Refs:     refs,
		Replicas: append([]Ref(nil), p.replicas...),
		IsReply:  reply,
	}
}

func (p *Peer) handleExchange(msg exchangeMsg, from simnet.NodeID) {
	p.stats.exchangesRun.Add(1)
	path := p.Path()
	cpl := path.CommonPrefixLen(msg.Path)

	// Adopt the sender's references for levels where our paths agree:
	// a reference valid for the sender at level l < cpl is valid for us.
	for l := 0; l < cpl && l < len(msg.Refs); l++ {
		for _, r := range msg.Refs[l] {
			p.addRef(l, r)
		}
	}

	switch {
	case path.Equal(msg.Path):
		p.exchangeEqualPaths(msg, from)
	case cpl == path.Len():
		// Our path is a proper prefix of the sender's: specialize into
		// the sibling of the sender's next bit.
		bit := msg.Path.Bit(cpl)
		p.setPath(path.Append(1 - bit))
		p.addRef(cpl, Ref{ID: from, Path: msg.Path})
		p.rehomeEntries()
	case cpl == msg.Path.Len():
		// The sender's path is a proper prefix of ours: it will
		// specialize when it processes our reply; meanwhile it serves
		// as a (coarse) reference for our sibling at its divergence.
		// Nothing to change locally beyond replying.
	default:
		// Diverging paths: mutual references at the divergence level.
		p.addRef(cpl, Ref{ID: from, Path: msg.Path})
		// Recursive refinement (Aberer's construction algorithm): the
		// sender's references may include peers more similar to us
		// than the sender itself — continuing the exchange with one of
		// them differentiates paths inside our own subtree, which
		// random global pairing alone reaches only slowly.
		p.recurseToward(msg, cpl)
	}

	if !msg.IsReply {
		p.net.Send(p.id, from, KindExchange, p.exchangePayload(true))
	}
}

// recurseToward starts a fresh exchange with the sender's reference
// whose path is strictly more similar to ours than the sender's own
// path. Strict improvement bounds the recursion by the trie depth.
func (p *Peer) recurseToward(msg exchangeMsg, cpl int) {
	path := p.Path()
	best := Ref{}
	bestCpl := cpl
	for _, ls := range msg.Refs {
		for _, r := range ls {
			if r.ID == p.id {
				continue
			}
			if c := path.CommonPrefixLen(r.Path); c > bestCpl {
				best, bestCpl = r, c
			}
		}
	}
	for _, r := range msg.Replicas {
		if r.ID == p.id {
			continue
		}
		if c := path.CommonPrefixLen(r.Path); c > bestCpl {
			best, bestCpl = r, c
		}
	}
	if bestCpl > cpl && p.net.Alive(best.ID) {
		p.StartExchange(best.ID)
	}
}

// exchangeEqualPaths handles the identical-path case: split or merge
// into a replica group.
//
// Only the responder of a fresh exchange splits eagerly; the initiator
// follows up when it processes the reply (its then-shorter path
// specializes against the responder's extended one). Splitting on a
// *reply* would be unilateral — the responder gets no further message
// and could be left covering a region the initiator also claims — so
// when paths are equal on a reply the peers simply coexist (implicit
// replicas) until a later round pairs them again.
func (p *Peer) exchangeEqualPaths(msg exchangeMsg, from simnet.NodeID) {
	path := p.Path()
	if msg.IsReply {
		// Resolve the coexistence promptly: a fresh (non-reply)
		// exchange makes the other peer the responder, which splits,
		// and our processing of its reply specializes us. At the depth
		// limit the peers are replicas by design — no follow-up, or
		// the pair would re-exchange forever.
		if path.Len() < MaxSplitDepth {
			p.StartExchange(from)
		}
		return
	}
	if path.Len() >= MaxSplitDepth {
		p.becomeReplicaOf(msg, from)
		return
	}
	// Both peers extend the shared path; the tie is broken by node id,
	// which both sides can compute without coordination.
	var myBit int
	if p.id < from {
		myBit = 0
	} else {
		myBit = 1
	}
	p.setPath(path.Append(myBit))
	p.addRef(path.Len(), Ref{ID: from, Path: msg.Path.Append(1 - myBit)})
	// Former replicas stay replicas only if they took the same side;
	// we cannot know, so drop them — anti-entropy re-discovers.
	p.mu.Lock()
	p.replicas = nil
	p.mu.Unlock()
	p.rehomeEntries()
}

func (p *Peer) becomeReplicaOf(msg exchangeMsg, from simnet.NodeID) {
	path := p.Path()
	p.addReplica(Ref{ID: from, Path: msg.Path})
	for _, r := range msg.Replicas {
		if r.Path.Equal(path) {
			p.addReplica(r)
		}
	}
	// Reconcile data with the new replica.
	p.net.Send(p.id, from, KindAntiEnt, antiEntropyMsg{Entries: p.store.Facts(), Reply: true})
}

// rehomeEntries re-inserts every entry the peer no longer covers; the
// overlay routes each to its new responsible peer. Entries for which no
// live route exists yet are parked locally instead of dropped — a later
// path change re-homes them again, and serving stale data beats losing
// it under P-Grid's best-effort guarantees.
func (p *Peer) rehomeEntries() {
	path := p.Path()
	levels := p.Levels()
	for kind := 0; kind < 3; kind++ {
		r := partitionRange(path)
		dropped := p.store.RetainRange(kindOf(kind), r)
		for _, e := range dropped {
			level := e.Key.CommonPrefixLen(path)
			if level < levels {
				if _, ok := p.pickRef(level); ok {
					p.route(e.Key, insertReq{Entry: e})
					continue
				}
			}
			p.store.Apply(e)
		}
	}
}

// RunBootstrap drives decentralized construction: `rounds` rounds of
// random pairwise exchanges over all peers, advancing the network
// between rounds. It returns the number of simulated exchange rounds
// executed.
func RunBootstrap(net *simnet.Network, peers []*Peer, rounds int) int {
	for r := 0; r < rounds; r++ {
		perm := net.Perm(len(peers))
		for i := 0; i+1 < len(perm); i += 2 {
			peers[perm[i]].StartExchange(peers[perm[i+1]].id)
		}
		// Let the exchanges (and any re-homing traffic) settle.
		net.RunFor(5 * time.Second)
		net.Settle()
	}
	return rounds
}

// RunMerge connects two formerly independent overlays living in the
// same network: each peer of one exchanges with random peers of the
// other over `rounds` rounds (in parallel, as the paper highlights),
// after which routing tables interlink and re-homed data migrates.
func RunMerge(net *simnet.Network, a, b []*Peer, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, p := range a {
			q := b[net.Intn(len(b))]
			p.StartExchange(q.id)
		}
		for _, p := range b {
			q := a[net.Intn(len(a))]
			p.StartExchange(q.id)
		}
		net.RunFor(5 * time.Second)
		net.Settle()
	}
}
