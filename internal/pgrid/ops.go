package pgrid

import (
	"time"

	"unistore/internal/agg"
	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/trace"
	"unistore/internal/triple"
)

// OpResult is the outcome of one overlay operation.
type OpResult struct {
	Entries   []store.Entry
	Count     int  // matching entries (meaningful for probes too)
	Hops      int  // maximum routing hops over all branches
	Responses int  // responding partitions
	Complete  bool // all expected responses (or shares) arrived
	// Spans is a snapshot of the operation's trace at completion (nil
	// untraced). Late riders keep accumulating afterwards; TakeTrace
	// drains the final set.
	Spans []trace.Span
}

// OpOption customizes an issued operation.
type OpOption func(*opSettings)

type opSettings struct {
	tc trace.Ctx
}

// WithTrace runs the operation under a trace context (tracing must be
// enabled in Config): the origin records a root span, every request
// carries a child context, and serving peers' spans ride home into the
// origin's accumulator — drained with Peer.TakeTrace(handle.QID()).
func WithTrace(tc trace.Ctx) OpOption {
	return func(s *opSettings) { s.tc = tc }
}

// Handle tracks an asynchronous overlay operation.
type Handle struct {
	peer *Peer
	op   *pendingOp
	qid  uint64
}

// QID returns the operation's request id — the key Peer.TakeTrace
// drains origin-side spans under.
func (h *Handle) QID() uint64 { return h.qid }

// Done reports whether the operation completed.
func (h *Handle) Done() bool {
	h.peer.mu.RLock()
	defer h.peer.mu.RUnlock()
	return h.op.done
}

// Result snapshots the operation outcome (valid any time; Complete
// tells whether it is final).
func (h *Handle) Result() OpResult {
	h.peer.mu.RLock()
	defer h.peer.mu.RUnlock()
	return h.op.result()
}

// result builds the OpResult snapshot; callers hold the peer's mu.
func (o *pendingOp) result() OpResult {
	return OpResult{
		Entries:   o.entries,
		Count:     o.count,
		Hops:      o.hops,
		Responses: o.responses,
		Complete:  o.complete,
	}
}

// Wait blocks until the operation completes, returning the (possibly
// partial) result. In deterministic mode it pumps the network until
// completion or until simulated time advances by timeout (zero: until
// the event queue drains). In concurrent mode it blocks on the
// operation's completion signal, bounding the wait by the timeout
// scaled to wall clock.
func (h *Handle) Wait(timeout time.Duration) OpResult {
	net := h.peer.net
	d := driver(net)
	if d == nil {
		if timeout <= 0 {
			<-h.op.fin
		} else {
			select {
			case <-h.op.fin:
			case <-time.After(net.WallTimeout(timeout)):
			}
		}
		return h.Result()
	}
	if timeout <= 0 {
		d.RunWhile(func() bool { return !h.Done() })
	} else {
		deadline := net.Now() + timeout
		for !h.Done() && d.Pending() > 0 && net.Now() < deadline {
			d.Step()
		}
	}
	return h.Result()
}

// Cancel abandons the operation: the pending state is released
// immediately, the completion callback never fires, and responses still
// in flight are dropped on arrival. Canceling a completed (or already
// canceled) operation is a no-op. This is how the query executor's
// early termination turns "discard the answer" into "stop waiting for
// it" — combined with not issuing queued probes, a top-k early-out
// actually reduces network traffic instead of ignoring it.
func (h *Handle) Cancel() {
	p := h.peer
	p.mu.Lock()
	if h.op.done {
		p.mu.Unlock()
		return
	}
	h.op.done = true
	h.op.complete = false
	h.op.onDone = nil
	delete(p.pending, h.qid)
	close(h.op.fin)
	p.mu.Unlock()
	p.runFlow(p.flow.releaseOp(h.qid))
}

// PendingOps reports how many operations this peer originated that are
// still awaiting responses — zero once every query against the peer has
// completed or been canceled (leak detection in tests).
func (p *Peer) PendingOps() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pending)
}

// opDeadline bounds how long (in simulated time) an operation waits for
// missing responses before completing with whatever arrived — P-Grid's
// best-effort guarantee under churn and loss.
const opDeadline = 2 * time.Minute

// newOp registers a pending operation. needShares/needResponses define
// the completion rule (whichever is positive). A deadline timer expires
// the operation with partial results if responses are lost. opKind
// names the operation in its trace root span, recorded when an option
// supplies an active trace context (and Config.Tracing is on).
func (p *Peer) newOp(needShares int64, needResponses int, opKind uint8, cb func(OpResult), opts ...OpOption) (uint64, *pendingOp) {
	var st opSettings
	for _, o := range opts {
		o(&st)
	}
	op := &pendingOp{
		needShares:    needShares,
		needResponses: needResponses,
		fin:           make(chan struct{}),
	}
	p.mu.Lock()
	p.reqSeq++
	qid := p.reqSeq
	p.pending[qid] = op
	op.onDone = func(o *pendingOp) {
		if cb != nil {
			res := o.result()
			res.Spans = p.peekTrace(qid)
			cb(res)
		}
	}
	p.mu.Unlock()
	if st.tc.Active() && p.cfg.Tracing {
		tc := p.beginOpTrace(qid, st.tc, opKind)
		p.mu.Lock()
		op.tc = tc
		p.mu.Unlock()
	}
	p.net.After(opDeadline, func() { p.expireOp(qid) })
	return qid, op
}

// nextQID allocates a bare request id from the operation sequence —
// for charges that settle by their own ack rather than a pendingOp
// (flow-controlled gossip). Sharing the sequence keeps flowKeys
// collision-free across both uses.
func (p *Peer) nextQID() uint64 {
	p.mu.Lock()
	p.reqSeq++
	qid := p.reqSeq
	p.mu.Unlock()
	return qid
}

// finishOpLocked marks the op done, removes it from the pending table
// and returns the completion callback to run after unlocking (the
// callback may start new operations on this peer, so it must not run
// under the lock). The returned closure also settles the operation's
// remaining flow-control charges — a completed or expired op must
// never keep credit pinned against a receiver. Callers hold p.mu and
// then invoke the result.
func (p *Peer) finishOpLocked(qid uint64, op *pendingOp, complete bool) func() {
	op.done = true
	op.complete = complete
	delete(p.pending, qid)
	close(op.fin)
	onDone := op.onDone
	return func() {
		p.runFlow(p.flow.releaseOp(qid))
		if onDone != nil {
			onDone(op)
		}
	}
}

// expireOp force-completes an operation whose responses went missing.
func (p *Peer) expireOp(qid uint64) {
	p.mu.Lock()
	op, ok := p.pending[qid]
	if !ok || op.done {
		p.mu.Unlock()
		return
	}
	fire := p.finishOpLocked(qid, op, false)
	p.mu.Unlock()
	fire()
}

func (p *Peer) handleResponse(r queryResp, size int) {
	// Fold the responder's piggybacked receive window in first: the
	// fresh credit may flush deferred bulk sends toward it.
	p.runFlow(p.flow.window(r.From, r.WinBytes, r.WinMsgs))
	// Absorb the piggybacked span before ANY drop decision: a late or
	// duplicate-suppressed response still cost a real message, and the
	// trace's accounting must reconcile with the transport's.
	p.absorbRider(r.QID, r.TS, size)
	p.mu.Lock()
	p.learnRouteLocked(r.Path, r.From, r.Replicas)
	op, ok := p.pending[r.QID]
	if !ok || op.done {
		// The operation completed or was canceled: a continuation is
		// deliberately NOT pulled — the tail no longer needs rows, so
		// the remaining pages are never requested.
		p.mu.Unlock()
		return
	}
	if op.probeWant != nil && len(r.ProbeKeys) > 0 {
		// Key-tracked probe op: mark keys answered. A response that
		// answers nothing new is a hedged duplicate — its rows were
		// already delivered by the replica that won the race, so the
		// whole response is dropped; one that answers only SOME of its
		// keys (a late batch racing per-key routed fallbacks) keeps
		// only the entries of the newly answered keys. Either way
		// entries and completion accounting stay exact.
		newlySet := make(map[string]bool, len(r.ProbeKeys))
		newly := 0
		for _, k := range r.ProbeKeys {
			ks := k.String()
			if op.probeWant[ks] {
				delete(op.probeWant, ks)
				newlySet[ks] = true
				newly++
			}
		}
		if newly == 0 {
			p.mu.Unlock()
			return
		}
		if newly < len(r.ProbeKeys) {
			if op.aggSpec != nil {
				// Aggregated probe batches cannot be split per key: the
				// states fold every answered key's rows together, so
				// keeping this response would re-count the rows of keys
				// another response already delivered. Drop it whole and
				// put its keys back — the path that answered the others
				// (hedge resend, per-key routed fallback) also carries
				// the still-wanted keys, and the retry budget plus the
				// operation deadline backstop the rest.
				for ks := range newlySet {
					op.probeWant[ks] = true
				}
				p.mu.Unlock()
				return
			}
			kept := r.Entries[:0:0]
			for _, e := range r.Entries {
				if newlySet[e.Key.String()] {
					kept = append(kept, e)
				}
			}
			r.Entries = kept
			r.Count = len(kept)
		}
		op.responses += newly
		p.settleGroupsLocked(op, r.From)
	} else if r.Probes < 0 {
		// A trace-only response (a probe batch that covered none of its
		// keys): the rider was absorbed above; it carries no rows and no
		// completion signal.
	} else if r.Probes > 1 {
		// A batched response resolves Probes lookup keys at once; plain
		// responses (Probes 0) count as one.
		op.responses += r.Probes
	} else {
		op.responses++
	}
	// spath is the partition identity of a scan response: the paged
	// stream's StreamPath when the server's path moved mid-stream
	// (split, merge), the responder's current path otherwise.
	spath := r.ScanPath
	if spath.Len() == 0 {
		spath = r.Path
	}
	if op.scan != nil && spath.Len() > 0 {
		// Stream-claim dedup: the first responder for a partition owns
		// its stream; a second stream of the same partition (a retry
		// racing a slow-but-alive original, or vice versa) is dropped
		// whole — pages included — so rows are never duplicated. The
		// retry timer releases claims of dead or stalled owners.
		sc := op.scan
		key := spath.String()
		now := p.net.Now()
		cl, claimed := sc.claims[key]
		if !claimed {
			if mcl, mkey := sc.splitClaim(r.From, spath); mcl != nil {
				// The server's partition split mid-stream: its stream now
				// covers only the deeper half it kept. Migrate the claim
				// (and cursor memo) to the deeper identity and classify
				// the abandoned sibling regions — covered, resumable at
				// the old cursor, or a gap for the coverage re-shower.
				p.migrateSplitClaimLocked(sc, mcl, mkey, spath)
				cl, claimed = mcl, true
			}
		}
		if claimed && cl.from != r.From {
			p.mu.Unlock()
			return
		} else if claimed {
			if r.Cont != nil && cl.cont != nil && contEqual(*r.Cont, *cl.cont) {
				// Same page again from the same server: a resume pull
				// raced the original stream on one node. Keep one.
				p.mu.Unlock()
				return
			}
			cl.last = now
			cl.cont = r.Cont
		} else {
			if sc.claims == nil {
				sc.claims = make(map[string]*scanClaim)
			}
			sc.claims[key] = &scanClaim{path: spath, from: r.From, last: now, cont: r.Cont}
		}
		if r.Cont != nil {
			if sc.cursors == nil {
				sc.cursors = make(map[string]*scanCursor)
			}
			sc.cursors[key] = &scanCursor{path: spath, cont: *r.Cont}
		}
		if r.Final {
			// Coverage bookkeeping for the churn re-shower: this
			// partition has fully answered. A second final answer from
			// the claimant itself would be a protocol bug; drop it too.
			if sc.hasCovered(spath) {
				p.mu.Unlock()
				return
			}
			sc.covered = append(sc.covered, spath)
			delete(sc.cursors, key)
		}
	}
	onPartial := op.onPartial
	var partial []store.Entry
	if onPartial != nil {
		partial = r.Entries // streamed out below, not accumulated
	} else {
		op.entries = append(op.entries, r.Entries...)
	}
	// Pushed-down aggregation: decode the response's partial group
	// states for streaming delivery (outside the lock, below). A batch
	// that fails to decode is dropped — the coverage machinery treats
	// the partition as unanswered and retries it.
	onAgg := op.onAgg
	var aggStates []agg.State
	if onAgg != nil && len(r.AggData) > 0 {
		if sts, err := agg.DecodeStates(r.AggData); err == nil {
			aggStates = sts
		}
	}
	op.count += r.Count
	op.shares += r.Share
	if r.Hops > op.hops {
		op.hops = r.Hops
	}
	pull := r.Cont != nil
	// A page pull chains on the span that produced the continuation, so
	// each partition's pages form a chain in the trace tree.
	pullTC := op.tc
	if r.TS != nil && pullTC.Active() {
		pullTC = trace.Ctx{TraceID: pullTC.TraceID, Parent: r.TS.ID, Depth: r.TS.Depth + 1}
	}
	// Completion must fire after the partial delivery, so the check is
	// made under the lock but both callbacks run after unlocking.
	var fire func()
	if op.completionSatisfied() {
		fire = p.finishOpLocked(r.QID, op, true)
	}
	p.mu.Unlock()
	if len(partial) > 0 {
		onPartial(partial)
	}
	if len(aggStates) > 0 {
		onAgg(aggStates)
	}
	if fire != nil {
		fire()
	}
	if pull && fire == nil {
		// The op was still pending (a partial page withholds its
		// share) — but the partial delivery above may have fired an
		// early-out that canceled it, so re-check before pulling: an
		// early-terminated query must never request another page.
		p.mu.Lock()
		_, alive := p.pending[r.QID]
		p.mu.Unlock()
		if alive {
			target := r.From
			if !p.net.Alive(target) {
				// The server died between page and pull: the stateless
				// continuation lets any sibling replica of its
				// partition resume the cursor exactly — no duplicated
				// or dropped rows. The partition's stream claim moves
				// with the pull, or the sibling's pages would be
				// rejected as a duplicate stream.
				if sib, ok := p.siblingReplica(r.Path, target); ok {
					target = sib
					p.mu.Lock()
					if op, live := p.pending[r.QID]; live && op.scan != nil {
						if cl, ok := op.scan.claims[spath.String()]; ok && cl.from == r.From {
							cl.from = sib
							cl.last = p.net.Now()
						}
					}
					p.mu.Unlock()
				}
			}
			wb, wm := p.advertiseWindow()
			p.net.Send(p.id, target, KindPage, pageReq{
				QID: r.QID, Origin: p.id, Cont: *r.Cont,
				WinBytes: wb, WinMsgs: wm, TC: pullTC,
			})
			// Hedge the pull itself: if the server dies (or the pull or
			// its answer is swallowed) with the request already sent,
			// the stalled cursor re-sends to a live sibling after the
			// hedge deadline instead of waiting for the scan-level
			// re-shower backstop. Hedging keys on the STREAM's
			// partition — that is what the cursor memo is filed under.
			p.armPagePull(r.QID, spath, *r.Cont, target)
		}
	}
}

func (p *Peer) handleAck(a ackMsg, from simnet.NodeID, size int) {
	// Settle the entry's flow-control charge and fold the acking
	// peer's advertised window in; both may flush deferred sends.
	p.runFlow(p.flow.release(flowKey{qid: a.QID, seq: a.Seq}, from, a.WinBytes, a.WinMsgs))
	// The rider is absorbed before the duplicate-ack guard: a retried
	// insert's second ack is dropped for completion but its span (and
	// message cost) still belongs in the trace.
	p.absorbRider(a.QID, a.TS, size)
	p.mu.Lock()
	op, ok := p.pending[a.QID]
	if !ok || op.done {
		p.mu.Unlock()
		return
	}
	if op.insertPend != nil {
		if _, pending := op.insertPend[a.Seq]; !pending {
			// A duplicate ack: the original and a retried insert both
			// landed (idempotently). Counting it would complete the
			// operation while another entry is still unacked.
			p.mu.Unlock()
			return
		}
		delete(op.insertPend, a.Seq)
	}
	op.responses++
	if a.Hops > op.hops {
		op.hops = a.Hops
	}
	p.maybeCompleteLocked(a.QID, op)
}

// completionSatisfied is THE completion rule, shared by the response
// and ack paths: done once shares reach needShares and responses reach
// needResponses (whichever rules are armed). A range operation whose
// scan needed repair (scan.coverage — armed by the first retry round
// or by a mid-stream split) completes ONLY when the partitions that
// answered fully tile the queried range: retry showers carry no share
// mass, and a split server's final page releases its whole pre-split
// branch share — either way the share ledger stops being trustworthy
// the moment the scan needed repair. Callers hold the owning peer's
// mu.
func (o *pendingOp) completionSatisfied() bool {
	if o.scan != nil && o.scan.coverage {
		return len(uncoveredPrefixes(o.scan.r, o.scan.covered)) == 0
	}
	return !((o.needShares > 0 && o.shares < o.needShares) ||
		(o.needResponses > 0 && o.responses < o.needResponses))
}

// maybeCompleteLocked checks the completion rule and, when satisfied,
// finishes the op and fires its callback. It is entered with p.mu held
// and returns with it released.
func (p *Peer) maybeCompleteLocked(qid uint64, op *pendingOp) {
	if !op.completionSatisfied() {
		p.mu.Unlock()
		return
	}
	fire := p.finishOpLocked(qid, op, true)
	p.mu.Unlock()
	fire()
}

// --- Inserts ------------------------------------------------------------

// InsertEntry routes one prepared index entry to its responsible peer.
func (p *Peer) InsertEntry(e store.Entry) {
	p.route(e.Key, insertReq{Entry: e})
}

// InsertTriple inserts tr under all three index kinds (paper Fig. 2) at
// the given version, fire-and-forget.
func (p *Peer) InsertTriple(tr triple.Triple, version uint64) {
	for _, kind := range triple.AllIndexKinds {
		p.InsertEntry(store.Entry{
			Kind: kind, Key: triple.IndexKey(tr, kind),
			Triple: tr, Version: version,
		})
	}
}

// InsertTripleAcked inserts tr under all three kinds and reports
// completion (all three acks) through the returned handle. The write
// path is replica-aware like the read path: routing consults the
// cached owner set (dead primaries fail over to live siblings at send
// time), and entries whose ack is still missing when the hedge
// deadline passes are re-routed — safely, because the store resolves
// duplicate entries by version, so a retried insert is idempotent.
func (p *Peer) InsertTripleAcked(tr triple.Triple, version uint64, cb func(OpResult), opts ...OpOption) *Handle {
	qid, op := p.newOp(0, len(triple.AllIndexKinds), trace.OpInsert, cb, opts...)
	p.mu.Lock()
	op.insertPend = make(map[uint8]store.Entry, len(triple.AllIndexKinds))
	for i, kind := range triple.AllIndexKinds {
		op.insertPend[uint8(i)] = store.Entry{Kind: kind, Key: triple.IndexKey(tr, kind),
			Triple: tr, Version: version}
	}
	p.mu.Unlock()
	for i, kind := range triple.AllIndexKinds {
		p.sendInsert(qid, uint8(i), store.Entry{Kind: kind, Key: triple.IndexKey(tr, kind),
			Triple: tr, Version: version}, op.tc)
	}
	p.armInsertRetry(qid, 0)
	return &Handle{peer: p, op: op, qid: qid}
}

// sendInsert issues one acked-insert entry, credit-gated against the
// partition's cached owner when one is known: the send charges that
// receiver's advertised window and, with the window full, parks FIFO
// until an ack or window update returns credit. With no cached owner
// the receiver is unknowable until routing resolves it, so the send
// goes uncontrolled — the ack still releases nothing (no charge), and
// the first response from the partition seeds the window for next
// time. The deferred closure re-routes at flush time, so credit
// returning after a split or failover still lands the entry on a live
// owner.
func (p *Peer) sendInsert(qid uint64, seq uint8, e store.Entry, tc trace.Ctx) {
	req := insertReq{Entry: e, QID: qid, Origin: p.id, Seq: seq, TC: tc}
	target, ok := p.cachedOwner(e.Key)
	if !ok || target.ID == p.id {
		p.route(e.Key, req)
		return
	}
	p.stats.flowBulkSends.Add(1)
	if !p.flow.submit(target.ID, flowKey{qid: qid, seq: seq}, req.WireSize(),
		func() { p.route(e.Key, req) }) {
		p.stats.flowStalls.Add(1)
		p.noteTraceStall(qid)
	}
}

// InsertTuple decomposes a logical tuple and inserts all its triples.
func (p *Peer) InsertTuple(tp *triple.Tuple, version uint64) {
	for _, tr := range tp.Triples() {
		p.InsertTriple(tr, version)
	}
}

// DeleteTriple routes tombstones for fact (oid, attr) at the given
// version to all three index peers.
func (p *Peer) DeleteTriple(oid, attr string, version uint64) {
	tr := triple.Triple{OID: oid, Attr: attr}
	for _, kind := range triple.AllIndexKinds {
		p.InsertEntry(store.Entry{
			Kind: kind, Key: triple.IndexKey(tr, kind),
			Triple: tr, Version: version, Deleted: true,
		})
	}
}

// --- Lookups and range queries -------------------------------------------

// Lookup asynchronously fetches the entries stored at exactly key k in
// the given index. The probe is key-tracked: a cached owner set sends
// it direct to a load-chosen replica with hedged failover; otherwise
// it takes the routed path.
func (p *Peer) Lookup(kind triple.IndexKind, k keys.Key, cb func(OpResult), opts ...OpOption) *Handle {
	qid, op := p.newOp(0, 1, trace.OpLookup, cb, opts...)
	p.mu.Lock()
	op.probeWant = map[string]bool{k.String(): true}
	op.probeKind = uint8(kind)
	p.mu.Unlock()
	p.dispatchProbes(qid, op, uint8(kind), []keys.Key{k})
	return &Handle{peer: p, op: op, qid: qid}
}

// MultiLookup fetches the entries at every key of ks in one operation,
// coalescing keys whose cached responsible PARTITION coincides into a
// single multiLookupReq/batched-response pair, sent to a replica of
// that partition chosen by load (power of two choices over the cached
// owner set). Keys this peer covers itself are answered in one local
// batch; keys with no cache entry fall back to individually routed
// lookups. Answers are tracked per key, so the operation completes
// exactly when every distinct key has been answered — no matter how
// responses, hedged duplicates, or failover retries interleave.
func (p *Peer) MultiLookup(kind triple.IndexKind, ks []keys.Key, cb func(OpResult), opts ...OpOption) *Handle {
	distinct := make([]keys.Key, 0, len(ks))
	want := make(map[string]bool, len(ks))
	for _, k := range ks {
		s := k.String()
		if !want[s] {
			want[s] = true
			distinct = append(distinct, k)
		}
	}
	qid, op := p.newOp(0, len(distinct), trace.OpMultiLookup, cb, opts...)
	p.mu.Lock()
	op.probeWant = want
	op.probeKind = uint8(kind)
	p.mu.Unlock()
	p.dispatchProbes(qid, op, uint8(kind), distinct)
	return &Handle{peer: p, op: op, qid: qid}
}

// RangeQuery asynchronously collects all entries of `kind` with keys in
// r, using the shower algorithm. probe=true returns counts only.
func (p *Peer) RangeQuery(kind triple.IndexKind, r keys.Range, probe bool, cb func(OpResult), opts ...OpOption) *Handle {
	qid, op := p.newOp(TotalShare, 0, trace.OpRange, cb, opts...)
	p.mu.Lock()
	op.scan = &scanState{kind: uint8(kind), r: r, pageSize: p.cfg.PageSize, probe: probe}
	p.mu.Unlock()
	wb, wm := p.advertiseWindow()
	msg := rangeMsg{QID: qid, Origin: p.id, Kind: uint8(kind), R: r,
		Level: 0, Share: TotalShare, Probe: probe, PageSize: p.cfg.PageSize,
		WinBytes: wb, WinMsgs: wm, TC: op.tc}
	p.armScanRetry(qid)
	// The origin participates in the shower like any other peer.
	p.handleRange(msg, 0)
	return &Handle{peer: p, op: op, qid: qid}
}

// RangeQueryPages is RangeQuery with streaming delivery: every
// response's entries (each page of a paged scan, each partition's
// answer) are handed to onPage the moment they arrive, in within-scan
// key order per partition, and the final OpResult carries counts only.
// Canceling the handle between pages stops the pull loop — remaining
// pages are never requested. onPage runs outside the peer lock but
// always before the completion callback.
func (p *Peer) RangeQueryPages(kind triple.IndexKind, r keys.Range, onPage func([]store.Entry), cb func(OpResult), opts ...OpOption) *Handle {
	return p.RangeQueryPagesOrdered(kind, r, false, onPage, cb, opts...)
}

// RangeQueryPagesOrdered is RangeQueryPages with a direction: desc
// serves (and pages) every partition's overlap from the top of the key
// range down, so descending ranked scans stream pages in ranking order
// instead of buffering whole shards for reversal.
func (p *Peer) RangeQueryPagesOrdered(kind triple.IndexKind, r keys.Range, desc bool, onPage func([]store.Entry), cb func(OpResult), opts ...OpOption) *Handle {
	qid, op := p.newOp(TotalShare, 0, trace.OpRange, cb, opts...)
	p.mu.Lock()
	op.onPartial = onPage
	op.scan = &scanState{kind: uint8(kind), r: r, pageSize: p.cfg.PageSize, desc: desc}
	p.mu.Unlock()
	wb, wm := p.advertiseWindow()
	msg := rangeMsg{QID: qid, Origin: p.id, Kind: uint8(kind), R: r,
		Level: 0, Share: TotalShare, PageSize: p.cfg.PageSize, Desc: desc,
		WinBytes: wb, WinMsgs: wm, TC: op.tc}
	p.armScanRetry(qid)
	p.handleRange(msg, 0)
	return &Handle{peer: p, op: op, qid: qid}
}

// Broadcast asynchronously reaches every peer and collects all entries
// of one index kind (the naive full-scan access path).
func (p *Peer) Broadcast(kind triple.IndexKind, probe bool, cb func(OpResult), opts ...OpOption) *Handle {
	return p.RangeQuery(kind, keys.Range{}, probe, cb, opts...)
}

// --- Application payload routing -----------------------------------------

// SendApp routes an application payload (a mutant query plan) to the
// peer responsible for target.
func (p *Peer) SendApp(target keys.Key, payload any) {
	p.route(target, appMsg{Payload: payload})
}

// SendAppDirect sends an application payload straight to a known peer.
func (p *Peer) SendAppDirect(to simnet.NodeID, payload any) {
	p.net.Send(p.id, to, KindApp, appMsg{Payload: payload})
}

// --- Synchronous conveniences ---------------------------------------------

// defaultOpTimeout bounds synchronous waits in simulated time; generous
// enough for any experiment topology while guaranteeing termination
// under message loss.
const defaultOpTimeout = 5 * time.Minute

// LookupSync performs a lookup, driving the network until the response
// arrives.
func (p *Peer) LookupSync(kind triple.IndexKind, k keys.Key) OpResult {
	return p.Lookup(kind, k, nil).Wait(defaultOpTimeout)
}

// RangeQuerySync performs a range query, driving the network.
func (p *Peer) RangeQuerySync(kind triple.IndexKind, r keys.Range) OpResult {
	return p.RangeQuery(kind, r, false, nil).Wait(defaultOpTimeout)
}

// InsertTripleSync inserts and waits for all three acks.
func (p *Peer) InsertTripleSync(tr triple.Triple, version uint64) OpResult {
	return p.InsertTripleAcked(tr, version, nil).Wait(defaultOpTimeout)
}

// InsertTupleSync inserts a tuple and waits for all acks.
func (p *Peer) InsertTupleSync(tp *triple.Tuple, version uint64) {
	for _, tr := range tp.Triples() {
		p.InsertTripleSync(tr, version)
	}
}
