package pgrid

import (
	"fmt"
	"math"
	"testing"
	"time"

	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/triple"
)

func newNet(seed int64) *simnet.Network {
	return simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond), Seed: seed})
}

func TestBuildBalancedTrieInvariant(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17, 64, 100} {
		net := newNet(1)
		peers := BuildBalanced(net, n, 1, DefaultConfig())
		if len(peers) != n {
			t.Fatalf("n=%d: built %d peers", n, len(peers))
		}
		if err := CheckTrie(peers); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuildBalancedDepths(t *testing.T) {
	net := newNet(2)
	peers := BuildBalanced(net, 8, 1, DefaultConfig())
	for _, p := range peers {
		if p.Path().Len() != 3 {
			t.Errorf("8 peers must sit at depth 3, got %s", p.Path())
		}
	}
}

func TestRoutingReachesResponsiblePeer(t *testing.T) {
	net := newNet(3)
	peers := BuildBalanced(net, 32, 1, DefaultConfig())
	// Insert from an arbitrary peer, then look up from every peer.
	origin := peers[7]
	tr := triple.T("a12", "confname", "ICDE 2006 - Workshops")
	res := origin.InsertTripleSync(tr, 1)
	if !res.Complete {
		t.Fatal("insert did not complete")
	}
	for _, p := range peers {
		got := p.LookupSync(triple.ByAV, triple.AVKey("confname", triple.S("ICDE 2006 - Workshops")))
		if !got.Complete || len(got.Entries) != 1 || !got.Entries[0].Triple.Equal(tr) {
			t.Fatalf("lookup from peer %d failed: %+v", p.ID(), got)
		}
	}
}

func TestDataPlacementMatchesPartition(t *testing.T) {
	net := newNet(4)
	peers := BuildBalanced(net, 16, 1, DefaultConfig())
	for i := 0; i < 200; i++ {
		tp := triple.NewTuple(triple.GenerateOID("pl")).
			Set("name", triple.S(fmt.Sprintf("person-%03d", i))).
			Set("age", triple.N(float64(20+i%60)))
		peers[i%len(peers)].InsertTuple(tp, 1)
	}
	net.Run()
	// Every stored entry must live on the peer whose partition holds
	// its placement key.
	total := 0
	for _, p := range peers {
		for _, kind := range triple.AllIndexKinds {
			for _, e := range p.Store().Entries(kind) {
				if !e.Key.HasPrefix(p.Path()) {
					t.Fatalf("peer %s stores foreign key %s", p.Path(), e.Key)
				}
				total++
			}
		}
	}
	if total != 200*2*3 {
		t.Fatalf("stored %d entries, want %d", total, 200*2*3)
	}
}

func TestRoutingHopsLogarithmic(t *testing.T) {
	// E2's invariant: average hops ≈ log2(n)/2..log2(n), max ≤ depth.
	for _, n := range []int{16, 64, 256} {
		net := newNet(5)
		peers := BuildBalanced(net, n, 1, DefaultConfig())
		tr := triple.T("x", "year", "2006")
		peers[0].InsertTripleSync(tr, 1)
		depth := int(math.Ceil(math.Log2(float64(n))))
		sumHops, count := 0, 0
		for _, p := range peers {
			res := p.LookupSync(triple.ByAV, triple.AVKey("year", triple.S("2006")))
			if !res.Complete {
				t.Fatalf("n=%d: lookup incomplete", n)
			}
			if res.Hops > depth {
				t.Errorf("n=%d: %d hops exceeds trie depth %d", n, res.Hops, depth)
			}
			sumHops += res.Hops
			count++
		}
		avg := float64(sumHops) / float64(count)
		if avg > float64(depth) {
			t.Errorf("n=%d: average hops %.2f exceeds depth %d", n, avg, depth)
		}
	}
}

func TestRangeQueryShower(t *testing.T) {
	net := newNet(6)
	peers := BuildBalanced(net, 32, 1, DefaultConfig())
	for y := 1990; y < 2010; y++ {
		tr := triple.TN(fmt.Sprintf("pub%d", y), "year", float64(y))
		peers[y%32].InsertTriple(tr, 1)
	}
	net.Run()
	lo, hi := triple.N(1995), triple.N(2000)
	res := peers[3].RangeQuerySync(triple.ByAV, triple.AVRange("year", lo, &hi))
	if !res.Complete {
		t.Fatal("range query incomplete")
	}
	if len(res.Entries) != 5 {
		t.Fatalf("range [1995,2000) returned %d entries, want 5", len(res.Entries))
	}
	for _, e := range res.Entries {
		if y := e.Triple.Val.Num; y < 1995 || y >= 2000 {
			t.Errorf("out-of-range year %v", y)
		}
	}
}

func TestRangeQueryUnboundedAndEmpty(t *testing.T) {
	net := newNet(7)
	peers := BuildBalanced(net, 8, 1, DefaultConfig())
	for y := 2000; y < 2006; y++ {
		peers[0].InsertTriple(triple.TN(fmt.Sprintf("p%d", y), "year", float64(y)), 1)
	}
	net.Run()
	res := peers[1].RangeQuerySync(triple.ByAV, triple.AVRange("year", triple.N(2003), nil))
	if len(res.Entries) != 3 {
		t.Fatalf("year >= 2003 returned %d, want 3", len(res.Entries))
	}
	res = peers[1].RangeQuerySync(triple.ByAV, triple.AVRange("year", triple.N(2050), nil))
	if !res.Complete || len(res.Entries) != 0 {
		t.Fatalf("empty range: complete=%v n=%d", res.Complete, len(res.Entries))
	}
}

func TestBroadcastReachesAllPartitions(t *testing.T) {
	net := newNet(8)
	peers := BuildBalanced(net, 16, 1, DefaultConfig())
	for i := 0; i < 64; i++ {
		peers[i%16].InsertTriple(triple.T(fmt.Sprintf("o%d", i), "name", fmt.Sprintf("n%02d", i)), 1)
	}
	net.Run()
	res := peers[5].Broadcast(triple.ByAV, false, nil).Wait(0)
	if !res.Complete {
		t.Fatal("broadcast incomplete")
	}
	if res.Responses != 16 {
		t.Errorf("broadcast responses = %d, want 16 (one per partition)", res.Responses)
	}
	if len(res.Entries) != 64 {
		t.Errorf("broadcast collected %d entries, want 64", len(res.Entries))
	}
}

func TestProbeCountsWithoutEntries(t *testing.T) {
	net := newNet(9)
	peers := BuildBalanced(net, 8, 1, DefaultConfig())
	for i := 0; i < 10; i++ {
		peers[0].InsertTriple(triple.TN(fmt.Sprintf("o%d", i), "age", float64(30+i)), 1)
	}
	net.Run()
	res := peers[2].RangeQuery(triple.ByAV, triple.AVPrefixRange("age"), true, nil).Wait(0)
	if res.Count != 10 || len(res.Entries) != 0 {
		t.Errorf("probe: count=%d entries=%d", res.Count, len(res.Entries))
	}
}

func TestReplicationAndFailover(t *testing.T) {
	net := newNet(10)
	peers := BuildBalanced(net, 8, 3, DefaultConfig()) // 8 partitions × 3 replicas
	tr := triple.T("a12", "title", "Similarity...")
	peers[0].InsertTripleSync(tr, 1)
	net.Run() // drain replica pushes
	// Count replicas holding the A#v entry.
	key := triple.AVKey("title", triple.S("Similarity..."))
	holders := 0
	var holderPeers []*Peer
	for _, p := range peers {
		if len(p.Store().Lookup(triple.ByAV, key)) > 0 {
			holders++
			holderPeers = append(holderPeers, p)
		}
	}
	if holders != 3 {
		t.Fatalf("entry replicated to %d peers, want 3", holders)
	}
	// Kill one replica; lookups must still succeed via alternates.
	net.Kill(holderPeers[0].ID())
	ok := 0
	for _, p := range peers {
		if net.Alive(p.ID()) {
			res := p.LookupSync(triple.ByAV, key)
			if res.Complete && len(res.Entries) == 1 {
				ok++
			}
		}
	}
	if ok < len(peers)-5 { // allow a few failures from stale refs
		t.Errorf("only %d/%d peers could read after replica failure", ok, len(peers)-1)
	}
}

func TestUpdatePropagationToReplicas(t *testing.T) {
	net := newNet(11)
	peers := BuildBalanced(net, 4, 3, DefaultConfig())
	tr := triple.T("p1", "phone", "111")
	peers[0].InsertTripleSync(tr, 1)
	net.Run()
	peers[3].InsertTripleSync(triple.T("p1", "phone", "222"), 2)
	net.Run()
	key := triple.AVKey("phone", triple.S("222"))
	holders := 0
	for _, p := range peers {
		for _, e := range p.Store().Lookup(triple.ByAV, key) {
			if e.Triple.Val.Str == "222" && e.Version == 2 {
				holders++
			}
		}
	}
	if holders != 3 {
		t.Errorf("updated value on %d replicas, want 3", holders)
	}
}

func TestAntiEntropyConvergenceAfterPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AntiEntropyEvery = int64(2 * time.Second)
	net := newNet(12)
	peers := BuildBalanced(net, 4, 3, cfg)
	// Find the replica group holding this entry.
	tr := triple.T("p9", "email", "a@b")
	key := triple.AVKey("email", triple.S("a@b"))
	var group []*Peer
	for _, p := range peers {
		if key.HasPrefix(p.Path()) {
			group = append(group, p)
		}
	}
	if len(group) != 3 {
		t.Fatalf("replica group size %d", len(group))
	}
	// One replica is down during the write.
	net.Kill(group[0].ID())
	peers[0].InsertTripleSync(tr, 5)
	net.RunFor(1 * time.Second)
	if len(group[0].Store().Lookup(triple.ByAV, key)) != 0 {
		t.Fatal("dead replica received the write")
	}
	// It comes back; anti-entropy repairs it.
	net.Revive(group[0].ID())
	net.RunFor(30 * time.Second)
	if len(group[0].Store().Lookup(triple.ByAV, key)) != 1 {
		t.Error("anti-entropy did not repair the returned replica")
	}
}

func TestDeleteTombstonePropagates(t *testing.T) {
	net := newNet(13)
	peers := BuildBalanced(net, 8, 1, DefaultConfig())
	tr := triple.T("doomed", "name", "x")
	peers[0].InsertTripleSync(tr, 1)
	peers[2].DeleteTriple("doomed", "name", 2)
	net.Run()
	res := peers[4].LookupSync(triple.ByAV, triple.AVKey("name", triple.S("x")))
	if len(res.Entries) != 0 {
		t.Errorf("deleted fact still visible: %v", res.Entries)
	}
}

func TestBootstrapConvergence(t *testing.T) {
	net := newNet(14)
	cfg := DefaultConfig()
	var peers []*Peer
	for i := 0; i < 32; i++ {
		peers = append(peers, NewPeer(net, cfg))
	}
	RunBootstrap(net, peers, 40)
	// All partitions must be prefix-free and cover the key space.
	if err := CheckTrie(peers); err != nil {
		// Replica groups are allowed: dedupe by path first (CheckTrie
		// uses Partitions internally, so an error is structural).
		t.Fatalf("bootstrap trie invalid: %v", err)
	}
	// Paths must have differentiated (no peer stuck at the root).
	for _, p := range peers {
		if p.Path().Len() == 0 {
			t.Fatalf("peer %d still has the empty path", p.ID())
		}
	}
	// Routing must work on the bootstrapped trie.
	tr := triple.T("boot", "name", "strapped")
	res := peers[0].InsertTripleSync(tr, 1)
	if !res.Complete {
		t.Fatal("insert on bootstrapped trie failed")
	}
	okCount := 0
	for _, p := range peers {
		got := p.LookupSync(triple.ByAV, triple.AVKey("name", triple.S("strapped")))
		if got.Complete && len(got.Entries) == 1 {
			okCount++
		}
	}
	if okCount < len(peers)*9/10 {
		t.Errorf("only %d/%d peers can route lookups after bootstrap", okCount, len(peers))
	}
}

func TestMergeTwoOverlays(t *testing.T) {
	net := newNet(15)
	a := BuildBalanced(net, 8, 1, DefaultConfig())
	b := BuildBalanced(net, 8, 1, DefaultConfig())
	// Each overlay holds distinct data.
	a[0].InsertTripleSync(triple.T("fromA", "name", "alice"), 1)
	b[0].InsertTripleSync(triple.T("fromB", "name", "bob"), 1)
	net.Run()
	RunMerge(net, a, b, 6)
	// After merging, peers from A must find B's data and vice versa.
	all := append(append([]*Peer(nil), a...), b...)
	okA, okB := 0, 0
	for _, p := range all {
		if r := p.LookupSync(triple.ByAV, triple.AVKey("name", triple.S("bob"))); r.Complete && len(r.Entries) >= 1 {
			okA++
		}
		if r := p.LookupSync(triple.ByAV, triple.AVKey("name", triple.S("alice"))); r.Complete && len(r.Entries) >= 1 {
			okB++
		}
	}
	if okA < len(all)*8/10 || okB < len(all)*8/10 {
		t.Errorf("post-merge reachability: bob %d/%d, alice %d/%d", okA, len(all), okB, len(all))
	}
}

func TestAdaptiveBuildBalancesSkew(t *testing.T) {
	// Zipf-like skew: 80% of keys fall in the 1/16th of the key space
	// below prefix 0000. The adaptive trie must yield a visibly more
	// even storage distribution than the peer-balanced trie.
	mkKeys := func() []keys.Key {
		rng := simnet.New(simnet.Config{Seed: 77}).Rand()
		var ks []keys.Key
		for i := 0; i < 2000; i++ {
			k := keys.Empty
			if i%5 != 0 {
				k = keys.FromBits("0000")
			}
			for k.Len() < 24 {
				k = k.Append(rng.Intn(2))
			}
			ks = append(ks, k)
		}
		return ks
	}
	load := func(peers []*Peer, ks []keys.Key) (max int, avg float64) {
		counts := make(map[string]int)
		for _, k := range ks {
			for _, p := range peers {
				if k.HasPrefix(p.Path()) {
					counts[p.Path().String()]++
					break
				}
			}
		}
		sum := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
			sum += c
		}
		return max, float64(sum) / float64(len(peers))
	}
	ks := mkKeys()
	netA := newNet(16)
	balanced := BuildBalanced(netA, 16, 1, DefaultConfig())
	netB := newNet(16)
	adaptive := BuildAdaptive(netB, 16, 1, ks, DefaultConfig())
	if err := CheckTrie(adaptive); err != nil {
		t.Fatalf("adaptive trie invalid: %v", err)
	}
	maxBal, avg := load(balanced, ks)
	maxAda, _ := load(adaptive, ks)
	t.Logf("skewed load: balanced max=%d adaptive max=%d avg=%.1f", maxBal, maxAda, avg)
	if maxAda >= maxBal {
		t.Errorf("adaptive trie must lower the max load: balanced=%d adaptive=%d", maxBal, maxAda)
	}
}

func TestChurnLookupsSurvive(t *testing.T) {
	net := newNet(17)
	peers := BuildBalanced(net, 32, 2, DefaultConfig())
	for i := 0; i < 50; i++ {
		peers[i%32].InsertTriple(triple.TN(fmt.Sprintf("c%d", i), "age", float64(i)), 1)
	}
	net.Run()
	// Kill 20% of peers.
	for i := 0; i < len(peers); i += 5 {
		net.Kill(peers[i].ID())
	}
	ok, tried := 0, 0
	for i, p := range peers {
		if !net.Alive(p.ID()) || i%3 != 0 {
			continue
		}
		tried++
		res := p.LookupSync(triple.ByAV, triple.AVKey("age", triple.N(7)))
		if res.Complete && len(res.Entries) == 1 {
			ok++
		}
	}
	if ok*10 < tried*7 {
		t.Errorf("under 20%% churn only %d/%d lookups succeeded", ok, tried)
	}
}

func TestCheckTrieDetectsViolations(t *testing.T) {
	net := newNet(18)
	peers := BuildBalanced(net, 4, 1, DefaultConfig())
	// Corrupt one path to be a prefix of another.
	peers[0].setPath(peers[1].Path().Prefix(1))
	if err := CheckTrie(peers); err == nil {
		t.Error("CheckTrie must detect prefix violations")
	}
	net2 := newNet(18)
	peers2 := BuildBalanced(net2, 4, 1, DefaultConfig())
	peers2[0].setPath(keys.FromBits("11111"))
	if err := CheckTrie(peers2); err == nil {
		t.Error("CheckTrie must detect coverage gaps")
	}
}

func TestAppPayloadRouting(t *testing.T) {
	net := newNet(19)
	peers := BuildBalanced(net, 16, 1, DefaultConfig())
	var gotPayload any
	var gotHops int
	for _, p := range peers {
		p.SetAppHandler(func(self *Peer, payload any, from simnet.NodeID, hops int) {
			gotPayload, gotHops = payload, hops
		})
	}
	target := triple.AVKey("name", triple.S("zzz"))
	peers[0].SendApp(target, "mutant-plan")
	net.Run()
	if gotPayload != "mutant-plan" {
		t.Fatalf("app payload not delivered: %v", gotPayload)
	}
	if gotHops < 0 || gotHops > 5 {
		t.Errorf("hops = %d", gotHops)
	}
	// Direct send too.
	gotPayload = nil
	peers[0].SendAppDirect(peers[5].ID(), "direct")
	net.Run()
	if gotPayload != "direct" {
		t.Error("direct app payload not delivered")
	}
}

func TestRefsInspection(t *testing.T) {
	net := newNet(20)
	peers := BuildBalanced(net, 16, 1, DefaultConfig())
	p := peers[0]
	if p.Levels() != 4 {
		t.Fatalf("levels = %d, want 4", p.Levels())
	}
	for l := 0; l < p.Levels(); l++ {
		refs := p.Refs(l)
		if len(refs) == 0 {
			t.Fatalf("no refs at level %d", l)
		}
		for _, r := range refs {
			wantPrefix := p.Path().Prefix(l).Append(1 - p.Path().Bit(l))
			if !r.Path.HasPrefix(wantPrefix) {
				t.Errorf("level-%d ref path %s lacks prefix %s", l, r.Path, wantPrefix)
			}
		}
	}
	if p.Refs(-1) != nil || p.Refs(99) != nil {
		t.Error("out-of-range levels must return nil")
	}
}

func TestSinglePeerOverlay(t *testing.T) {
	net := newNet(21)
	peers := BuildBalanced(net, 1, 1, DefaultConfig())
	p := peers[0]
	tr := triple.T("solo", "name", "only")
	res := p.InsertTripleSync(tr, 1)
	if !res.Complete {
		t.Fatal("single-peer insert failed")
	}
	got := p.LookupSync(triple.ByAV, triple.AVKey("name", triple.S("only")))
	if len(got.Entries) != 1 {
		t.Fatal("single-peer lookup failed")
	}
	rng := p.RangeQuerySync(triple.ByAV, triple.AVPrefixRange("name"))
	if !rng.Complete || len(rng.Entries) != 1 {
		t.Fatal("single-peer range failed")
	}
}

func BenchmarkLookup64(b *testing.B) {
	net := newNet(22)
	peers := BuildBalanced(net, 64, 1, DefaultConfig())
	peers[0].InsertTripleSync(triple.T("x", "year", "2006"), 1)
	key := triple.AVKey("year", triple.S("2006"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peers[i%64].LookupSync(triple.ByAV, key)
	}
}

func BenchmarkRangeQuery64(b *testing.B) {
	net := newNet(23)
	peers := BuildBalanced(net, 64, 1, DefaultConfig())
	for y := 1950; y < 2010; y++ {
		peers[0].InsertTriple(triple.TN(fmt.Sprintf("p%d", y), "year", float64(y)), 1)
	}
	net.Run()
	lo, hi := triple.N(1990), triple.N(2000)
	r := triple.AVRange("year", lo, &hi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peers[i%64].RangeQuerySync(triple.ByAV, r)
	}
}
