package pgrid

import (
	"fmt"
	"sort"

	"unistore/internal/keys"
	"unistore/internal/simnet"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// This file implements LIVE membership changes: peers joining a
// running trie, replica groups splitting one level deeper, and sibling
// partitions merging back — all while queries (paged scans included)
// are in flight. The exchange protocol (exchange.go) builds a trie
// from scratch in quiesced rounds; these operations reshape one that
// is actively serving.
//
// Exactness under a mid-stream reshape rests on three mechanisms:
//
//  1. Every paged stream is clipped server-side to the serving
//     partition at stream start and carries that partition as its
//     identity (pageCont.StreamPath), so a server that later widens in
//     a merge can never serve rows outside the region its stream
//     promised.
//  2. A server whose partition SPLITS mid-stream clips the live
//     continuation to the half it kept and deepens the stream
//     identity; the origin migrates its claim and classifies the
//     abandoned sibling region — already covered, resumable at the old
//     cursor, or a gap for the coverage re-shower (ops.go).
//  3. A merge moves data BEFORE paths widen (TransferStores, then
//     WidenGroup): at no instant does a query observe a partition that
//     owns a region it does not hold.

// --- Join -----------------------------------------------------------------

// Join asks target to adopt this (fresh, pathless) peer into its
// replica group. The target answers with its trie position and
// membership plus a chunked full-state sync; once those land the
// joiner is a live replica, and SplitGroup can deepen the partition.
func (p *Peer) Join(target simnet.NodeID) {
	p.net.Send(p.id, target, KindJoin, joinReq{})
}

// Rejoin is Join for a peer that recovered its store from disk: it
// re-registers with target's replica group but asks it to skip the
// full-state stream when local state survived — the existing digest
// anti-entropy then pulls only the buckets that drifted while the peer
// was down (delta pages). An empty disk degrades to a plain Join, so
// full-state sync remains the fallback.
func (p *Peer) Rejoin(target simnet.NodeID) {
	p.net.Send(p.id, target, KindJoin, joinReq{NoState: p.store.FactCount() > 0})
}

// handleJoinReq adopts a joining peer: reply with position and
// membership, tell the existing replicas about the newcomer, and
// stream the full local state over as anti-entropy pages.
func (p *Peer) handleJoinReq(req joinReq, from simnet.NodeID) {
	p.mu.RLock()
	path := p.path
	refs := make([][]Ref, len(p.refs))
	for i, ls := range p.refs {
		refs[i] = append([]Ref(nil), ls...)
	}
	reps := append([]Ref(nil), p.replicas...)
	p.mu.RUnlock()
	ack := joinAck{Path: path, Refs: refs,
		Replicas: append(append([]Ref(nil), reps...), Ref{ID: p.id, Path: path}),
		Catchup:  req.NoState}
	p.net.Send(p.id, from, KindJoin, ack)
	jref := Ref{ID: from, Path: path}
	for _, r := range reps {
		p.net.Send(p.id, r.ID, KindJoin, memberMsg{Member: jref})
	}
	p.addReplica(jref)
	if req.NoState {
		// The joiner recovered its store from disk; the digest round it
		// runs on our ack pulls just the delta, so the full stream would
		// be waste.
		return
	}
	p.sendStateChunks(from, KindAntiEnt, p.store.Facts())
}

// handleJoinAck installs the adopted position at the joiner.
func (p *Peer) handleJoinAck(ack joinAck) {
	p.setPath(ack.Path)
	for l, ls := range ack.Refs {
		for _, r := range ls {
			p.addRef(l, r)
		}
	}
	for _, r := range ack.Replicas {
		p.addReplica(r)
	}
	if ack.Catchup {
		// Recovered-state rejoin: reconcile with the group by digest —
		// only drifted buckets travel.
		p.runAntiEntropy()
	}
}

// sendStateChunks ships entries in pages of at most Config.PageSize
// (everything at once when paging is off), wrapped per kind:
// anti-entropy pages for a join sync, leave pages for a departure.
func (p *Peer) sendStateChunks(to simnet.NodeID, kind string, entries []store.Entry) {
	ps := p.cfg.PageSize
	if ps <= 0 {
		ps = len(entries)
	}
	if len(entries) == 0 {
		if kind == KindLeave {
			p.net.Send(p.id, to, kind, leaveMsg{})
		}
		return
	}
	for i := 0; i < len(entries); i += ps {
		end := i + ps
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[i:end]
		switch kind {
		case KindLeave:
			p.net.Send(p.id, to, kind, leaveMsg{Entries: chunk})
		case KindXferData:
			p.net.Send(p.id, to, kind, xferMsg{Entries: chunk})
		default:
			p.net.Send(p.id, to, kind, antiEntropyMsg{Entries: chunk})
		}
	}
}

// --- Leave ----------------------------------------------------------------

// Leave announces a graceful departure: the peer hands its full state
// (tombstones included) to every replica sibling, which also drops it
// from the group roster. The caller kills the node afterwards — the
// rest of the network observes the death through the transport, and
// reads fail over exactly as they do for a crash, minus the risk of
// losing a write only this peer had seen.
func (p *Peer) Leave() {
	facts := p.store.Facts()
	for _, r := range p.Replicas() {
		p.sendStateChunks(r.ID, KindLeave, facts)
	}
}

// handleLeave applies a departing sibling's handoff and drops it from
// the replica roster.
func (p *Peer) handleLeave(l leaveMsg, from simnet.NodeID) {
	p.removeReplica(from)
	var won []store.Entry
	for _, e := range l.Entries {
		if p.store.Apply(e) {
			won = append(won, e)
		}
	}
	if len(won) > 0 {
		p.pushToReplicas(won, from)
	}
}

// removeReplica drops one member from the replica roster.
func (p *Peer) removeReplica(id simnet.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.replicas {
		if r.ID == id {
			p.replicas = append(p.replicas[:i], p.replicas[i+1:]...)
			return
		}
	}
}

// --- Live split -----------------------------------------------------------

// SplitGroup splits one replica group in place: the peers sharing a
// path divide into two halves that take the path's 0- and
// 1-extensions, repartition their stored data, and cross-link at the
// new trie level. Unlike the exchange protocol's bootstrap splits this
// runs while queries are mid-flight: each half serves its side
// immediately, live paged streams are clipped server-side to the half
// their server kept, and the origins' claim migration re-covers the
// rest. Requires at least two peers (each side must stay non-empty);
// an odd count leaves the extra peer on the 0-side.
func SplitGroup(group []*Peer) error {
	if len(group) < 2 {
		return fmt.Errorf("pgrid: split needs >= 2 same-path peers, got %d", len(group))
	}
	base := group[0].Path()
	for _, g := range group[1:] {
		if !g.Path().Equal(base) {
			return fmt.Errorf("pgrid: split group paths differ: %s vs %s", base, g.Path())
		}
	}
	if base.Len() >= MaxSplitDepth {
		return fmt.Errorf("pgrid: partition %s already at max depth", base)
	}
	sorted := append([]*Peer(nil), group...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	half := (len(sorted) + 1) / 2
	sides := [2][]*Peer{sorted[:half], sorted[half:]}
	var paths [2]keys.Key
	var refs [2][]Ref
	for b := range sides {
		paths[b] = base.Append(b)
		for _, g := range sides[b] {
			refs[b] = append(refs[b], Ref{ID: g.id, Path: paths[b]})
		}
	}
	for b := range sides {
		for _, g := range sides[b] {
			g.applySplit(paths[b], refs[b], refs[1-b])
		}
	}
	return nil
}

// applySplit moves this peer one trie level deeper: retain the kept
// half of the store, adopt the new path (clearing the routing cache —
// the trie it was learned against no longer exists), rebuild the
// replica roster from the same-side members, and point the new
// bottom routing level at the other side. Entries of the dropped half
// are pushed to the other side once: both sides held the full
// partition as replicas, so the transfer only matters for a write that
// had not finished gossiping at the instant of the split (idempotent
// on the receiver — the store's version tie-break).
func (p *Peer) applySplit(newPath keys.Key, sameSide, otherSide []Ref) {
	var dropped []store.Entry
	for _, kind := range triple.AllIndexKinds {
		dropped = append(dropped, p.store.RetainRange(kind, partitionRange(newPath))...)
	}
	p.setPath(newPath)
	p.mu.Lock()
	p.replicas = nil
	p.mu.Unlock()
	for _, r := range sameSide {
		p.addReplica(r)
	}
	level := newPath.Len() - 1
	for _, r := range otherSide {
		p.addRef(level, r)
	}
	if len(dropped) > 0 && len(otherSide) > 0 {
		p.net.Send(p.id, otherSide[0].ID, KindXferData, xferMsg{Entries: dropped})
	}
}

// --- Merge ----------------------------------------------------------------

// TransferStores ships every leaver's full state (tombstones included)
// to `to`, which applies it and gossips winners on to its replica
// group — the data phase of a graceful merge. It runs while both
// sibling groups still serve their original paths, so no query ever
// observes a partition that claims a region it does not hold; the
// receiving group's baked stream clips keep the foreign entries out of
// its live scans until WidenGroup makes them its own.
func TransferStores(leavers []*Peer, to *Peer) {
	for _, l := range leavers {
		l.sendStateChunks(to.id, KindXferData, l.store.Facts())
	}
}

// WidenGroup widens one replica group to its parent path after the
// sibling partition's state has been transferred in (TransferStores):
// the group now owns both halves. setPath truncates the routing level
// that pointed at the dissolved sibling and clears the routing cache;
// live paged streams keep their baked clip, so a stream started under
// the old path never serves the newly absorbed half — the sibling's
// own streams, or their routed resumes landing here, do.
func WidenGroup(group []*Peer) error {
	if len(group) == 0 {
		return fmt.Errorf("pgrid: widen needs a non-empty group")
	}
	base := group[0].Path()
	if base.Len() == 0 {
		return fmt.Errorf("pgrid: cannot widen the root partition")
	}
	for _, g := range group[1:] {
		if !g.Path().Equal(base) {
			return fmt.Errorf("pgrid: widen group paths differ: %s vs %s", base, g.Path())
		}
	}
	parent := base.Prefix(base.Len() - 1)
	refs := make([]Ref, 0, len(group))
	for _, g := range group {
		refs = append(refs, Ref{ID: g.id, Path: parent})
	}
	for _, g := range group {
		g.setPath(parent)
		g.mu.Lock()
		g.replicas = nil
		g.mu.Unlock()
		for _, r := range refs {
			g.addReplica(r)
		}
	}
	return nil
}

// --- Mid-stream reconciliation -------------------------------------------

// splitClaim finds the claim a deeper-path response from the same
// server continues: the server's partition split mid-stream and its
// responses now carry the deeper identity. Returns the claim and its
// map key, or nil when the response belongs to no known stream.
// Callers hold the owning peer's mu.
func (s *scanState) splitClaim(from simnet.NodeID, spath keys.Key) (*scanClaim, string) {
	for key, cl := range s.claims {
		if cl.from == from && spath.HasPrefix(cl.path) && spath.Len() > cl.path.Len() {
			return cl, key
		}
	}
	return nil, ""
}

// migrateSplitClaimLocked re-keys a claim (and its cursor memo) from
// the pre-split partition to the deeper half its server kept, arms
// coverage-based completion (the split stream's final page releases
// the whole pre-split branch share, so the share ledger is no longer
// trustworthy), and classifies each abandoned sibling region by where
// the stream's cursor stood at the split:
//
//   - already scanned past → covered (all its rows were delivered);
//   - cursor inside it → a resume cursor clipped to the region, pulled
//     from the sibling half by the retry machinery (rows before the
//     cursor were delivered, rows after it stream from the new leaf);
//   - not reached yet → left uncovered, a clean gap the re-shower
//     refills from scratch.
//
// Aggregated streams classify differently: group states already sent
// (groups at or before the group-key cursor) were folded over the FULL
// pre-split partition, so the sibling region resumes at the same group
// cursor — every row then counts exactly once, pre-split rows through
// the already-shipped states and post-split rows through exactly one
// half's remaining pages. Callers hold the owning peer's mu.
func (p *Peer) migrateSplitClaimLocked(sc *scanState, cl *scanClaim, oldKey string, newPath keys.Key) {
	delete(sc.claims, oldKey)
	sc.claims[newPath.String()] = cl
	prior := cl.cont
	oldPath := cl.path
	cl.path = newPath
	if cu, ok := sc.cursors[oldKey]; ok {
		delete(sc.cursors, oldKey)
		cu.path = newPath
		sc.cursors[newPath.String()] = cu
	}
	sc.coverage = true
	for l := oldPath.Len(); l < newPath.Len(); l++ {
		q := newPath.Prefix(l).Append(1 - newPath.Bit(l))
		qs := q.String()
		if sc.hasCovered(q) {
			continue
		}
		if _, ok := sc.claims[qs]; ok {
			continue
		}
		if _, ok := sc.cursors[qs]; ok {
			continue
		}
		if prior == nil {
			continue // no pages yet: plain gap, the re-shower refills it
		}
		if prior.Agg != nil {
			nc := *prior
			nc.R = clipRangeToPrefix(nc.R, q)
			nc.StreamPath = q
			if sc.cursors == nil {
				sc.cursors = make(map[string]*scanCursor)
			}
			sc.cursors[qs] = &scanCursor{path: q, cont: nc}
			continue
		}
		cpos := prior.R.Lo // ascending cursor lives on the range bound
		if prior.Desc {
			cpos = prior.Cursor
		}
		qr := keys.PrefixRange(q)
		switch {
		case qr.Contains(cpos):
			nc := *prior
			nc.R = clipRangeToPrefix(nc.R, q)
			nc.StreamPath = q
			if sc.cursors == nil {
				sc.cursors = make(map[string]*scanCursor)
			}
			sc.cursors[qs] = &scanCursor{path: q, cont: nc}
		case !prior.Desc && cpos.Compare(qr.Lo) > 0,
			prior.Desc && cpos.Compare(qr.Lo) < 0:
			// The stream had moved past this region before the split:
			// its rows were all delivered.
			sc.covered = append(sc.covered, q)
		default:
			// Not reached yet: a clean gap for the re-shower.
		}
	}
}

// adjustStream reconciles a paged continuation with the server's
// current partition before serving. A server that split mid-stream
// (path now strictly deeper than the stream's) clips the continuation
// to the half it kept and adopts the deeper identity — the response
// tells the origin exactly which region the stream still covers, and
// the origin's claim migration re-covers the abandoned sibling. A
// server that widened (merge) keeps the original identity: the baked
// clip already pins the stream to the region it started in. A server
// whose path moved somewhere unrelated cannot serve the stream at all
// and drops the pull — the origin's pull hedge finds a live replica.
func (p *Peer) adjustStream(cont *pageCont) bool {
	if cont.StreamPath.IsEmpty() {
		return true
	}
	cur := p.Path()
	switch {
	case cur.HasPrefix(cont.StreamPath):
		if cur.Len() > cont.StreamPath.Len() {
			oldLo := cont.R.Lo
			cont.R = clipRangeToPrefix(cont.R, cur)
			if !cont.R.Lo.Equal(oldLo) {
				// The ascending cursor (R.Lo) fell outside the kept
				// half: the skip count belonged to the old cursor's
				// bucket, not the clipped bound.
				cont.SkipAtLo = 0
			}
			cont.StreamPath = cur
		}
		return true
	case cont.StreamPath.HasPrefix(cur):
		return true
	default:
		return false
	}
}
