// Package simnet provides a deterministic discrete-event network
// simulator that stands in for the paper's physical substrate (TCP/IP
// links between workstation peers, and the PlanetLab wide-area testbed
// used for the scalability demonstration).
//
// The simulator delivers messages between nodes with latencies drawn
// from a configurable LatencyModel, optionally drops messages, and
// supports node churn (nodes leaving and rejoining). All randomness
// flows from a single seeded source, so every experiment is exactly
// repeatable — the paper's "results are traceable, analyzable and (in
// limits) repeatable" claim, made unconditional.
//
// Time is virtual: the event loop advances a simulated clock to each
// delivery instant, so a 400-node wide-area experiment runs in
// milliseconds of wall time while reporting seconds of simulated
// latency.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// NodeID identifies a node in the simulated network.
type NodeID int

// Message is a unit of communication between nodes.
type Message struct {
	From, To NodeID
	Kind     string // protocol-level message type, used for accounting
	Payload  any
	Sent     time.Duration // simulated send instant
	Deliver  time.Duration // simulated delivery instant
	Size     int           // approximate wire size in bytes, for stats
}

// Handler is implemented by protocol layers (P-Grid peers, Chord nodes).
type Handler interface {
	// HandleMessage processes one delivered message. It runs in the
	// event loop; it may call Network.Send but must not block.
	HandleMessage(msg Message)
}

// event is a scheduled occurrence: a message delivery or a timer.
type event struct {
	at    time.Duration
	seq   uint64 // tie-breaker for determinism
	msg   *Message
	timer func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

// Stats accumulates network-level accounting for an experiment window.
type Stats struct {
	MessagesSent      int
	MessagesDelivered int
	MessagesDropped   int // lost to simulated loss or dead receivers
	BytesSent         int
	PerKind           map[string]int
}

func newStats() Stats { return Stats{PerKind: make(map[string]int)} }

// Config parameterizes a Network.
type Config struct {
	Latency  LatencyModel
	LossRate float64 // probability a message is silently dropped
	Seed     int64
}

// Network is the simulated network. It is not safe for concurrent use;
// the event loop is single-threaded by design (determinism).
type Network struct {
	cfg      Config
	rng      *rand.Rand
	nodes    map[NodeID]Handler
	alive    map[NodeID]bool
	queue    eventHeap
	now      time.Duration
	seq      uint64
	stats    Stats
	nextID   NodeID
	inflight int
}

// New creates a network with the given configuration. A nil Latency
// model defaults to ConstantLatency(1ms).
func New(cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(time.Millisecond)
	}
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make(map[NodeID]Handler),
		alive: make(map[NodeID]bool),
		stats: newStats(),
	}
}

// Rand exposes the network's seeded random source so protocol layers can
// share the deterministic stream (e.g., for gossip fan-out choices).
func (n *Network) Rand() *rand.Rand { return n.rng }

// Now returns the current simulated time.
func (n *Network) Now() time.Duration { return n.now }

// AddNode registers a handler and returns its fresh NodeID.
func (n *Network) AddNode(h Handler) NodeID {
	id := n.nextID
	n.nextID++
	n.nodes[id] = h
	n.alive[id] = true
	return id
}

// Handler returns the handler registered for id, or nil.
func (n *Network) Handler(id NodeID) Handler { return n.nodes[id] }

// NodeIDs returns all registered node ids in ascending order.
func (n *Network) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Alive reports whether the node is currently up.
func (n *Network) Alive(id NodeID) bool { return n.alive[id] }

// Kill marks a node as down: messages to it are dropped until Revive.
// Models churn / unreliable PlanetLab nodes.
func (n *Network) Kill(id NodeID) { n.alive[id] = false }

// Revive brings a node back up.
func (n *Network) Revive(id NodeID) { n.alive[id] = true }

// AliveCount returns the number of live nodes.
func (n *Network) AliveCount() int {
	c := 0
	for _, up := range n.alive {
		if up {
			c++
		}
	}
	return c
}

// Send schedules delivery of a message. Size is estimated from the
// payload if the payload implements interface{ WireSize() int }.
func (n *Network) Send(from, to NodeID, kind string, payload any) {
	n.stats.MessagesSent++
	n.stats.PerKind[kind]++
	size := 64 // baseline header estimate
	if s, ok := payload.(interface{ WireSize() int }); ok {
		size += s.WireSize()
	}
	n.stats.BytesSent += size
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.MessagesDropped++
		return
	}
	lat := n.cfg.Latency.Sample(n.rng, from, to)
	m := &Message{From: from, To: to, Kind: kind, Payload: payload,
		Sent: n.now, Deliver: n.now + lat, Size: size}
	n.seq++
	heap.Push(&n.queue, &event{at: m.Deliver, seq: n.seq, msg: m})
	n.inflight++
}

// After schedules fn to run at now+d. Used for protocol timers
// (gossip rounds, retries).
func (n *Network) After(d time.Duration, fn func()) {
	n.seq++
	heap.Push(&n.queue, &event{at: n.now + d, seq: n.seq, timer: fn})
}

// Step processes the next event. It returns false when the queue is
// empty.
func (n *Network) Step() bool {
	if len(n.queue) == 0 {
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	if e.at > n.now {
		n.now = e.at
	}
	if e.timer != nil {
		e.timer()
		return true
	}
	n.inflight--
	m := e.msg
	if !n.alive[m.To] {
		n.stats.MessagesDropped++
		return true
	}
	h := n.nodes[m.To]
	if h == nil {
		n.stats.MessagesDropped++
		return true
	}
	n.stats.MessagesDelivered++
	h.HandleMessage(*m)
	return true
}

// Run processes events until the queue drains and returns the number of
// events processed. Protocols with periodic timers should use RunUntil
// instead, or Run will never return.
func (n *Network) Run() int {
	c := 0
	for n.Step() {
		c++
	}
	return c
}

// RunUntil processes events with timestamps <= t (advancing the clock
// to t) and returns the number processed.
func (n *Network) RunUntil(t time.Duration) int {
	c := 0
	for len(n.queue) > 0 && n.queue.Peek().at <= t {
		n.Step()
		c++
	}
	if n.now < t {
		n.now = t
	}
	return c
}

// RunFor advances the simulation by d.
func (n *Network) RunFor(d time.Duration) int { return n.RunUntil(n.now + d) }

// Settle processes events until no message is in flight — quiescence
// with respect to protocol traffic. Unlike Run it terminates even when
// periodic timers (anti-entropy) keep the event queue non-empty
// forever; timers that fire while messages are in flight do run.
func (n *Network) Settle() int {
	c := 0
	for n.inflight > 0 && n.Step() {
		c++
	}
	return c
}

// RunWhile keeps stepping while cond() holds and events remain. It is
// the request/response driver: issue a request, then RunWhile(pending).
func (n *Network) RunWhile(cond func() bool) int {
	c := 0
	for cond() && n.Step() {
		c++
	}
	return c
}

// Stats returns a snapshot of accumulated statistics.
func (n *Network) Stats() Stats {
	s := n.stats
	s.PerKind = make(map[string]int, len(n.stats.PerKind))
	for k, v := range n.stats.PerKind {
		s.PerKind[k] = v
	}
	return s
}

// ResetStats zeroes the counters (the clock keeps running). Use between
// experiment phases so setup traffic is not billed to the measured
// query.
func (n *Network) ResetStats() { n.stats = newStats() }

// Pending returns the number of queued events (messages + timers).
func (n *Network) Pending() int { return len(n.queue) }

// String summarizes the network state.
func (n *Network) String() string {
	return fmt.Sprintf("simnet{nodes=%d alive=%d now=%v sent=%d delivered=%d dropped=%d}",
		len(n.nodes), n.AliveCount(), n.now, n.stats.MessagesSent,
		n.stats.MessagesDelivered, n.stats.MessagesDropped)
}
