// Package simnet provides a discrete-event network simulator that
// stands in for the paper's physical substrate (TCP/IP links between
// workstation peers, and the PlanetLab wide-area testbed used for the
// scalability demonstration).
//
// The simulator delivers messages between nodes with latencies drawn
// from a configurable LatencyModel, optionally drops messages, and
// supports node churn (nodes leaving and rejoining). All randomness
// flows from a single seeded source, so every experiment is exactly
// repeatable — the paper's "results are traceable, analyzable and (in
// limits) repeatable" claim, made unconditional.
//
// The network runs in one of two modes:
//
//   - Deterministic (the default): a single-threaded event loop driven
//     by Step/Run/Settle. Time is virtual — the loop advances a
//     simulated clock to each delivery instant, so a 400-node
//     wide-area experiment runs in milliseconds of wall time while
//     reporting seconds of simulated latency. Handlers run in the
//     calling goroutine; per-seed runs are bit-for-bit repeatable.
//
//   - Concurrent (StartConcurrent): a scheduler goroutine releases
//     events in simulated-time order, pacing them by wall clock
//     (simulated time divided by the dilation factor), and hands each
//     message to the destination node's FIFO inbox, where a dedicated
//     worker goroutine runs the handler. Different nodes process
//     messages in parallel; per-link FIFO order, loss, and latency
//     distributions are preserved. Drivers block with Quiesce instead
//     of pumping Step.
//
// All Network methods are safe for concurrent use in both modes.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// NodeID identifies a node in the simulated network.
type NodeID int

// Message is a unit of communication between nodes.
type Message struct {
	From, To NodeID
	Kind     string // protocol-level message type, used for accounting
	Payload  any
	Sent     time.Duration // simulated send instant
	Deliver  time.Duration // simulated delivery instant
	Size     int           // approximate wire size in bytes, for stats
}

// Handler is implemented by protocol layers (P-Grid peers, Chord nodes).
type Handler interface {
	// HandleMessage processes one delivered message. In deterministic
	// mode it runs in the event loop; in concurrent mode it runs on the
	// destination node's worker goroutine (one handler at a time per
	// node, but different nodes run in parallel). It may call
	// Network.Send but must not block on network progress.
	HandleMessage(msg Message)
}

// event is a scheduled occurrence: a message delivery or a timer.
type event struct {
	at    time.Duration
	seq   uint64 // tie-breaker for determinism
	msg   *Message
	timer func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

// Stats accumulates network-level accounting for an experiment window.
type Stats struct {
	MessagesSent      int
	MessagesDelivered int
	MessagesDropped   int // lost to simulated loss or dead receivers
	BytesSent         int
	PerKind           map[string]int
	// MaxSizePerKind records the largest single message (wire bytes,
	// including the header estimate) sent per kind — how page-size
	// bounds on responses are verified.
	MaxSizePerKind map[string]int
	// MaxInflightBytes records, per node, the peak number of bytes that
	// were simultaneously sent-but-unhandled toward it — the signal the
	// flow-control benchmarks budget: receiver-driven windows exist to
	// keep this bounded at a slow or hot replica.
	MaxInflightBytes map[NodeID]int
	// MaxStall records, per service-throttled node, the longest a
	// message waited beyond its network latency (service queueing plus
	// the service time itself). Zero for nodes with no service delay.
	MaxStall map[NodeID]time.Duration
}

func newStats() Stats {
	return Stats{
		PerKind:          make(map[string]int),
		MaxSizePerKind:   make(map[string]int),
		MaxInflightBytes: make(map[NodeID]int),
		MaxStall:         make(map[NodeID]time.Duration),
	}
}

// Config parameterizes a Network.
type Config struct {
	Latency  LatencyModel
	LossRate float64 // probability a message is silently dropped
	Seed     int64
}

// DefaultTimeDilation is the simulated-to-wall-clock compression used
// by StartConcurrent when the caller passes 0: one simulated
// millisecond costs one wall-clock microsecond.
const DefaultTimeDilation = 1000

// inbox is an unbounded FIFO queue feeding one node's worker goroutine.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*Message
	closed bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(m *Message) {
	ib.mu.Lock()
	ib.q = append(ib.q, m)
	ib.mu.Unlock()
	ib.cond.Signal()
}

// popAll blocks until messages are available and drains them all, or
// returns nil when the inbox closes. Draining in batches amortizes the
// per-message synchronization on hot nodes.
func (ib *inbox) popAll() []*Message {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for len(ib.q) == 0 && !ib.closed {
		ib.cond.Wait()
	}
	if len(ib.q) == 0 {
		return nil
	}
	ms := ib.q
	ib.q = nil
	return ms
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// Network is the simulated network. All methods are safe for concurrent
// use; in deterministic mode the event loop itself (Step and the Run
// helpers) is intended to be driven from one goroutine at a time.
type Network struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	nodes    map[NodeID]Handler
	alive    map[NodeID]bool
	queue    eventHeap
	now      time.Duration
	seq      uint64
	stats    Stats
	nextID   NodeID
	inflight int
	quiet    *sync.Cond // broadcast when inflight drops to zero
	// load tracks the per-node backlog: messages sent to a node but not
	// yet fully handled (scheduled deliveries plus, in concurrent mode,
	// the node's inbox). Replica choosers read it through Load as the
	// "least loaded of two" signal. loadBytes is the same backlog in
	// wire bytes, so payload pressure is visible, not just frame count.
	load      map[NodeID]int
	loadBytes map[NodeID]int

	// svcDelay models a per-node service rate: each message addressed to
	// the node occupies its (single-threaded) service for svcDelay after
	// arriving, and messages queue behind each other — svcFree is the
	// instant the node's service next becomes idle. A deterministic
	// slow-replica throttle that composes with any LatencyModel.
	svcDelay map[NodeID]time.Duration
	svcFree  map[NodeID]time.Duration

	// Concurrent-mode state.
	concurrent bool
	dilation   float64
	inboxes    map[NodeID]*inbox
	linkLast   map[[2]NodeID]time.Duration // per-link FIFO clamp
	kick       chan struct{}               // wakes the scheduler on new events
	stopCh     chan struct{}
	wg         sync.WaitGroup
	// sleeping/sleepTarget describe the scheduler's pacing sleep, so
	// Send only kicks it for events that beat the current target.
	sleeping    bool
	sleepTarget time.Duration
}

// New creates a network with the given configuration. A nil Latency
// model defaults to ConstantLatency(1ms).
func New(cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(time.Millisecond)
	}
	n := &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		nodes:     make(map[NodeID]Handler),
		alive:     make(map[NodeID]bool),
		load:      make(map[NodeID]int),
		loadBytes: make(map[NodeID]int),
		svcDelay:  make(map[NodeID]time.Duration),
		svcFree:   make(map[NodeID]time.Duration),
		stats:     newStats(),
	}
	n.quiet = sync.NewCond(&n.mu)
	return n
}

// Rand exposes the network's seeded random source so single-threaded
// protocol phases (trie construction, deterministic experiments) can
// share the deterministic stream. It must not be used concurrently;
// concurrent callers use Intn/Int63/Float64/Perm, which lock.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Intn draws from the network's seeded source under the network lock.
func (n *Network) Intn(k int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Intn(k)
}

// Int63 draws a non-negative int64 under the network lock.
func (n *Network) Int63() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Int63()
}

// Float64 draws from [0,1) under the network lock.
func (n *Network) Float64() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

// Perm returns a random permutation of [0,k) under the network lock.
func (n *Network) Perm(k int) []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Perm(k)
}

// Now returns the current simulated time.
func (n *Network) Now() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// AddNode registers a handler and returns its fresh NodeID.
func (n *Network) AddNode(h Handler) NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.nextID
	n.nextID++
	n.nodes[id] = h
	n.alive[id] = true
	if n.concurrent {
		n.startWorkerLocked(id)
	}
	return id
}

// Handler returns the handler registered for id, or nil.
func (n *Network) Handler(id NodeID) Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodes[id]
}

// NodeIDs returns all registered node ids in ascending order.
func (n *Network) NodeIDs() []NodeID {
	n.mu.Lock()
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	n.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Alive reports whether the node is currently up.
func (n *Network) Alive(id NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive[id]
}

// Kill marks a node as down: messages to it are dropped until Revive.
// Models churn / unreliable PlanetLab nodes.
func (n *Network) Kill(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive[id] = false
}

// Revive brings a node back up.
func (n *Network) Revive(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive[id] = true
}

// AliveCount returns the number of live nodes.
func (n *Network) AliveCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, up := range n.alive {
		if up {
			c++
		}
	}
	return c
}

// Send schedules delivery of a message. Size is estimated from the
// payload if the payload implements interface{ WireSize() int }.
func (n *Network) Send(from, to NodeID, kind string, payload any) {
	n.mu.Lock()
	n.stats.MessagesSent++
	n.stats.PerKind[kind]++
	size := 64 // baseline header estimate
	if s, ok := payload.(interface{ WireSize() int }); ok {
		size += s.WireSize()
	}
	n.stats.BytesSent += size
	if size > n.stats.MaxSizePerKind[kind] {
		n.stats.MaxSizePerKind[kind] = size
	}
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.MessagesDropped++
		n.mu.Unlock()
		return
	}
	lat := n.cfg.Latency.Sample(n.rng, from, to)
	deliver := n.now + lat
	if n.concurrent {
		// Per-link FIFO: clamp the delivery instant so a later send on
		// the same (from,to) link never overtakes an earlier one —
		// TCP-like ordered channels, as exemplar DHT simulators model.
		link := [2]NodeID{from, to}
		if last, ok := n.linkLast[link]; ok && deliver < last {
			deliver = last
		}
		n.linkLast[link] = deliver
	}
	if d := n.svcDelay[to]; d > 0 {
		// Serialized service: the message starts service when it arrives
		// AND the node's service is idle, and occupies it for d. The
		// extra wait beyond network latency is the node's stall.
		arrival := deliver
		start := arrival
		if free := n.svcFree[to]; free > start {
			start = free
		}
		deliver = start + d
		n.svcFree[to] = deliver
		if stall := deliver - arrival; stall > n.stats.MaxStall[to] {
			n.stats.MaxStall[to] = stall
		}
	}
	m := &Message{From: from, To: to, Kind: kind, Payload: payload,
		Sent: n.now, Deliver: deliver, Size: size}
	n.seq++
	heap.Push(&n.queue, &event{at: m.Deliver, seq: n.seq, msg: m})
	n.inflight++
	n.load[to]++
	if n.loadBytes[to] += size; n.loadBytes[to] > n.stats.MaxInflightBytes[to] {
		n.stats.MaxInflightBytes[to] = n.loadBytes[to]
	}
	// Kick the scheduler only when it is parked waiting for something
	// later than (or other than) this event; if it is mid-dispatch it
	// re-peeks the queue on its own.
	needKick := n.concurrent && n.sleeping && deliver < n.sleepTarget
	n.mu.Unlock()
	if needKick {
		n.wake()
	}
}

// After schedules fn to run at now+d. Used for protocol timers
// (gossip rounds, retries). In concurrent mode fn runs on the
// scheduler goroutine; it must synchronize access to shared state.
func (n *Network) After(d time.Duration, fn func()) {
	n.mu.Lock()
	n.seq++
	heap.Push(&n.queue, &event{at: n.now + d, seq: n.seq, timer: fn})
	concurrent := n.concurrent
	n.mu.Unlock()
	if concurrent {
		n.wake()
	}
}

// Step processes the next event. It returns false when the queue is
// empty. In concurrent mode the scheduler owns the queue and Step is a
// no-op returning false.
func (n *Network) Step() bool {
	n.mu.Lock()
	if n.concurrent || len(n.queue) == 0 {
		n.mu.Unlock()
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	if e.at > n.now {
		n.now = e.at
	}
	if e.timer != nil {
		n.mu.Unlock()
		e.timer()
		return true
	}
	n.dropInflightLocked()
	m := e.msg
	n.dropLoadLocked(m.To, m.Size)
	if !n.alive[m.To] || n.nodes[m.To] == nil {
		n.stats.MessagesDropped++
		n.mu.Unlock()
		return true
	}
	n.stats.MessagesDelivered++
	h := n.nodes[m.To]
	n.mu.Unlock()
	h.HandleMessage(*m)
	return true
}

// dropInflightLocked decrements the in-flight count, waking quiescence
// waiters at zero. Callers hold n.mu.
func (n *Network) dropInflightLocked() {
	n.inflight--
	if n.inflight == 0 {
		n.quiet.Broadcast()
	}
}

// dropLoadLocked releases one message of `bytes` wire bytes from a
// node's tracked backlog. Callers hold n.mu.
func (n *Network) dropLoadLocked(id NodeID, bytes int) {
	if n.load[id]--; n.load[id] <= 0 {
		delete(n.load, id)
	}
	if n.loadBytes[id] -= bytes; n.loadBytes[id] <= 0 {
		delete(n.loadBytes, id)
	}
}

// Load reports a node's current backlog: messages addressed to it that
// have not yet been fully handled (scheduled deliveries plus, in
// concurrent mode, its inbox). The replica-aware read path uses it as
// the load signal of its power-of-two-choices replica chooser.
func (n *Network) Load(id NodeID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.load[id]
}

// LoadBytes reports the same backlog in wire bytes — the payload
// pressure toward a node, which frame counts alone understate.
func (n *Network) LoadBytes(id NodeID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.loadBytes[id]
}

// SetServiceDelay throttles a node to a fixed per-message service time:
// every message addressed to it is handled d after both its network
// arrival and the completion of the previous message's service —
// a single-threaded server draining a queue at rate 1/d. Zero removes
// the throttle. Deterministic, and composes with any LatencyModel
// (including ClusteredLatency): the network part of the delay is still
// drawn from the model; the service part queues on top of it.
func (n *Network) SetServiceDelay(id NodeID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.svcDelay, id)
		delete(n.svcFree, id)
		return
	}
	n.svcDelay[id] = d
}

// Run processes events until the queue drains and returns the number of
// events processed. Protocols with periodic timers should use RunUntil
// instead, or Run will never return.
func (n *Network) Run() int {
	c := 0
	for n.Step() {
		c++
	}
	return c
}

// RunUntil processes events with timestamps <= t (advancing the clock
// to t) and returns the number processed.
func (n *Network) RunUntil(t time.Duration) int {
	c := 0
	for {
		n.mu.Lock()
		ok := !n.concurrent && len(n.queue) > 0 && n.queue.Peek().at <= t
		n.mu.Unlock()
		if !ok {
			break
		}
		n.Step()
		c++
	}
	n.mu.Lock()
	if n.now < t {
		n.now = t
	}
	n.mu.Unlock()
	return c
}

// RunFor advances the simulation by d.
func (n *Network) RunFor(d time.Duration) int { return n.RunUntil(n.Now() + d) }

// Settle processes events until no message is in flight — quiescence
// with respect to protocol traffic. Unlike Run it terminates even when
// periodic timers (anti-entropy) keep the event queue non-empty
// forever; timers that fire while messages are in flight do run. In
// concurrent mode Settle blocks until the workers drain (see Quiesce).
func (n *Network) Settle() int {
	n.mu.Lock()
	if n.concurrent {
		n.mu.Unlock()
		n.Quiesce()
		return 0
	}
	n.mu.Unlock()
	c := 0
	for n.Inflight() > 0 && n.Step() {
		c++
	}
	return c
}

// Inflight returns the number of messages sent but not yet delivered
// (or, in concurrent mode, not yet fully handled).
func (n *Network) Inflight() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inflight
}

// RunWhile keeps stepping while cond() holds and events remain. It is
// the request/response driver: issue a request, then RunWhile(pending).
func (n *Network) RunWhile(cond func() bool) int {
	c := 0
	for cond() && n.Step() {
		c++
	}
	return c
}

// Stats returns a snapshot of accumulated statistics.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.PerKind = make(map[string]int, len(n.stats.PerKind))
	for k, v := range n.stats.PerKind {
		s.PerKind[k] = v
	}
	s.MaxSizePerKind = make(map[string]int, len(n.stats.MaxSizePerKind))
	for k, v := range n.stats.MaxSizePerKind {
		s.MaxSizePerKind[k] = v
	}
	s.MaxInflightBytes = make(map[NodeID]int, len(n.stats.MaxInflightBytes))
	for k, v := range n.stats.MaxInflightBytes {
		s.MaxInflightBytes[k] = v
	}
	s.MaxStall = make(map[NodeID]time.Duration, len(n.stats.MaxStall))
	for k, v := range n.stats.MaxStall {
		s.MaxStall[k] = v
	}
	return s
}

// ResetStats zeroes the counters (the clock keeps running). Use between
// experiment phases so setup traffic is not billed to the measured
// query. Peak in-flight bytes restart at the CURRENT backlog — bytes
// already in the air keep counting against the new window.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = newStats()
	for id, b := range n.loadBytes {
		n.stats.MaxInflightBytes[id] = b
	}
}

// Pending returns the number of queued events (messages + timers).
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// String summarizes the network state.
func (n *Network) String() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return fmt.Sprintf("simnet{nodes=%d alive=%d now=%v sent=%d delivered=%d dropped=%d}",
		len(n.nodes), n.aliveCountLocked(), n.now, n.stats.MessagesSent,
		n.stats.MessagesDelivered, n.stats.MessagesDropped)
}

// aliveCountLocked counts live nodes with n.mu held.
func (n *Network) aliveCountLocked() int {
	c := 0
	for _, up := range n.alive {
		if up {
			c++
		}
	}
	return c
}

// --- Concurrent mode ---------------------------------------------------------

// Concurrent reports whether the network runs in concurrent mode.
func (n *Network) Concurrent() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.concurrent
}

// StartConcurrent switches the network from the deterministic step
// loop to goroutine-driven delivery: a scheduler goroutine releases
// events in simulated-time order (paced by wall clock at the given
// dilation: wall = simulated / dilation; 0 means DefaultTimeDilation),
// and each node's messages are handled on its own worker goroutine in
// per-link FIFO order.
//
// The usual pattern builds the overlay deterministically first (exact
// repeatability of the topology), then calls StartConcurrent to serve
// queries in parallel. Stop shuts the goroutines down.
func (n *Network) StartConcurrent(dilation float64) {
	n.mu.Lock()
	if n.concurrent {
		n.mu.Unlock()
		return
	}
	if dilation <= 0 {
		dilation = DefaultTimeDilation
	}
	n.concurrent = true
	n.dilation = dilation
	n.inboxes = make(map[NodeID]*inbox, len(n.nodes))
	n.linkLast = make(map[[2]NodeID]time.Duration)
	n.kick = make(chan struct{}, 1)
	n.stopCh = make(chan struct{})
	for id := range n.nodes {
		n.startWorkerLocked(id)
	}
	n.wg.Add(1)
	go n.schedule()
	n.mu.Unlock()
	n.wake()
}

// startWorkerLocked creates the inbox and worker goroutine for a node.
// Callers hold n.mu.
func (n *Network) startWorkerLocked(id NodeID) {
	ib := newInbox()
	n.inboxes[id] = ib
	n.wg.Add(1)
	go n.worker(n.nodes[id], ib)
}

// Stop shuts down the concurrent fabric: the scheduler and all workers
// exit after finishing the message each is currently handling. Events
// still queued are discarded. Stop is a no-op in deterministic mode.
func (n *Network) Stop() {
	n.mu.Lock()
	if !n.concurrent {
		n.mu.Unlock()
		return
	}
	n.concurrent = false
	close(n.stopCh)
	inboxes := n.inboxes
	n.inboxes = nil
	n.mu.Unlock()
	for _, ib := range inboxes {
		ib.close()
	}
	// Workers finish (and account for) the batches they already hold
	// before the in-flight count and event queue are reset — resetting
	// first would race their decrements and leave inflight negative,
	// silently breaking Settle/Quiesce on any later use.
	n.wg.Wait()
	n.mu.Lock()
	n.queue = nil
	n.inflight = 0
	n.load = make(map[NodeID]int)
	n.quiet.Broadcast()
	n.mu.Unlock()
}

// Quiesce blocks until no message is in flight: every sent message has
// been delivered and its handler has returned (or it was dropped).
// The concurrent-mode analogue of Settle. Pending timers do not count,
// mirroring Settle's treatment of periodic maintenance.
func (n *Network) Quiesce() {
	n.mu.Lock()
	for n.inflight > 0 && n.concurrent {
		n.quiet.Wait()
	}
	n.mu.Unlock()
}

// WallTimeout converts a simulated-time budget into the wall-clock
// bound a concurrent-mode waiter should use: the budget divided by the
// dilation factor, floored at one second of slack for scheduling
// overhead. In deterministic mode it returns d unchanged.
func (n *Network) WallTimeout(d time.Duration) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.concurrent {
		return d
	}
	w := time.Duration(float64(d) / n.dilation)
	if w < time.Second {
		w = time.Second
	}
	return w
}

// wake nudges the scheduler after queue changes.
func (n *Network) wake() {
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// dispatch is one scheduler decision: a due message bound for an
// inbox, or a due timer to run.
type dispatch struct {
	ib    *inbox
	msg   *Message
	timer func()
}

// farFuture parks the scheduler's sleep target beyond any event time
// while it waits on an empty queue, so every new event kicks it.
const farFuture = time.Duration(1<<63 - 1)

// schedule is the concurrent-mode event dispatcher: it pops events in
// simulated-time order, sleeps the dilated wall-clock gap between
// event times, runs timers, and routes messages to their destination
// inboxes. Due events are drained in batches under one lock
// acquisition so a large fan-out pays the synchronization cost once.
func (n *Network) schedule() {
	defer n.wg.Done()
	var batch []dispatch
	for {
		n.mu.Lock()
		n.sleeping = false
		if !n.concurrent {
			n.mu.Unlock()
			return
		}
		if len(n.queue) == 0 {
			n.sleeping = true
			n.sleepTarget = farFuture
			n.mu.Unlock()
			select {
			case <-n.kick:
				continue
			case <-n.stopCh:
				return
			}
		}
		next := n.queue.Peek()
		if gap := next.at - n.now; gap > 0 {
			wall := time.Duration(float64(gap) / n.dilation)
			if wall > 0 {
				target := next.at
				n.sleeping = true
				n.sleepTarget = target
				n.mu.Unlock()
				t := time.NewTimer(wall)
				select {
				case <-t.C:
					// The pacing sleep elapsed: advance the simulated
					// clock to the instant slept toward, so the event
					// is due on the next pass.
					n.mu.Lock()
					n.sleeping = false
					if n.now < target {
						n.now = target
					}
					n.mu.Unlock()
				case <-n.kick: // an earlier event arrived
					t.Stop()
				case <-n.stopCh:
					t.Stop()
					return
				}
				continue
			}
			// Gap below wall-clock resolution: advance immediately.
			n.now = next.at
		}
		// Drain everything due at (or before) the current instant.
		batch = batch[:0]
		for len(n.queue) > 0 && n.queue.Peek().at <= n.now {
			e := heap.Pop(&n.queue).(*event)
			if e.timer != nil {
				batch = append(batch, dispatch{timer: e.timer})
				continue
			}
			m := e.msg
			ib := n.inboxes[m.To]
			if !n.alive[m.To] || ib == nil {
				n.stats.MessagesDropped++
				n.dropInflightLocked()
				n.dropLoadLocked(m.To, m.Size)
				continue
			}
			n.stats.MessagesDelivered++
			batch = append(batch, dispatch{ib: ib, msg: m})
		}
		n.mu.Unlock()
		for _, d := range batch {
			if d.timer != nil {
				d.timer()
			} else {
				d.ib.push(d.msg)
			}
		}
	}
}

// worker drains one node's inbox in batches, running the handler for
// each message in FIFO order.
func (n *Network) worker(h Handler, ib *inbox) {
	defer n.wg.Done()
	for {
		ms := ib.popAll()
		if ms == nil {
			return
		}
		if h != nil {
			for _, m := range ms {
				h.HandleMessage(*m)
			}
		}
		n.mu.Lock()
		n.inflight -= len(ms)
		for _, m := range ms {
			n.dropLoadLocked(m.To, m.Size)
		}
		if n.inflight == 0 {
			n.quiet.Broadcast()
		}
		n.mu.Unlock()
	}
}
