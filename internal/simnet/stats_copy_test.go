package simnet

import (
	"testing"
	"time"
)

type statsNop struct{}

func (statsNop) HandleMessage(Message) {}

// TestStatsSnapshotIsDefensiveCopy pins the Stats contract observers
// rely on for before/after deltas (trace.Capture, the metrics
// registry's collectors): the returned maps are copies, so a caller
// mutating its snapshot can never corrupt the network's counters or a
// concurrently taken snapshot.
func TestStatsSnapshotIsDefensiveCopy(t *testing.T) {
	net := New(Config{Latency: ConstantLatency(time.Millisecond)})
	a := net.AddNode(statsNop{})
	b := net.AddNode(statsNop{})
	net.Send(a, b, "probe", nil)
	net.Run()

	s1 := net.Stats()
	s1.PerKind["probe"] = 999
	s1.PerKind["forged"] = 1
	s1.MaxSizePerKind["probe"] = -5
	s1.MaxInflightBytes[b] = -5
	s1.MaxStall[b] = time.Hour

	s2 := net.Stats()
	if s2.PerKind["probe"] != 1 || s2.PerKind["forged"] != 0 {
		t.Errorf("PerKind leaked caller mutations: %v", s2.PerKind)
	}
	if s2.MaxSizePerKind["probe"] < 0 {
		t.Errorf("MaxSizePerKind leaked caller mutations: %v", s2.MaxSizePerKind)
	}
	if s2.MaxInflightBytes[b] < 0 {
		t.Errorf("MaxInflightBytes leaked caller mutations: %v", s2.MaxInflightBytes)
	}
	if s2.MaxStall[b] == time.Hour {
		t.Errorf("MaxStall leaked caller mutations: %v", s2.MaxStall)
	}
}
