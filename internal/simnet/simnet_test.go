package simnet

import (
	"testing"
	"time"
)

// echoNode replies to "ping" with "pong" and records what it saw.
type echoNode struct {
	net      *Network
	id       NodeID
	received []Message
}

func (e *echoNode) HandleMessage(m Message) {
	e.received = append(e.received, m)
	if m.Kind == "ping" {
		e.net.Send(e.id, m.From, "pong", m.Payload)
	}
}

func newEcho(n *Network) *echoNode {
	e := &echoNode{net: n}
	e.id = n.AddNode(e)
	return e
}

func TestSendDeliver(t *testing.T) {
	n := New(Config{Latency: ConstantLatency(5 * time.Millisecond)})
	a, b := newEcho(n), newEcho(n)
	n.Send(a.id, b.id, "ping", 42)
	n.Run()
	if len(b.received) != 1 || b.received[0].Payload.(int) != 42 {
		t.Fatalf("b received %v", b.received)
	}
	if len(a.received) != 1 || a.received[0].Kind != "pong" {
		t.Fatalf("a received %v", a.received)
	}
	if got := a.received[0].Deliver; got != 10*time.Millisecond {
		t.Errorf("round trip delivered at %v, want 10ms", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, time.Duration) {
		n := New(Config{Latency: UniformLatency{Min: time.Millisecond, Max: 20 * time.Millisecond}, Seed: 99})
		nodes := make([]*echoNode, 10)
		for i := range nodes {
			nodes[i] = newEcho(n)
		}
		for i := 0; i < 100; i++ {
			n.Send(nodes[i%10].id, nodes[(i*3+1)%10].id, "ping", i)
		}
		n.Run()
		return n.Stats(), n.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1.MessagesDelivered != s2.MessagesDelivered || t1 != t2 {
		t.Errorf("same seed must reproduce: %v@%v vs %v@%v",
			s1.MessagesDelivered, t1, s2.MessagesDelivered, t2)
	}
}

func TestOrderingByDeliveryTime(t *testing.T) {
	n := New(Config{Latency: ConstantLatency(time.Millisecond)})
	var order []int
	rec := &funcNode{fn: func(m Message) { order = append(order, m.Payload.(int)) }}
	id := n.AddNode(rec)
	src := n.AddNode(&funcNode{})
	// Scheduled out of order via timers with different delays.
	n.After(30*time.Millisecond, func() { n.Send(src, id, "x", 3) })
	n.After(10*time.Millisecond, func() { n.Send(src, id, "x", 1) })
	n.After(20*time.Millisecond, func() { n.Send(src, id, "x", 2) })
	n.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("delivery order = %v", order)
	}
}

type funcNode struct{ fn func(Message) }

func (f *funcNode) HandleMessage(m Message) {
	if f.fn != nil {
		f.fn(m)
	}
}

func TestLoss(t *testing.T) {
	n := New(Config{LossRate: 1.0, Seed: 1})
	a, b := newEcho(n), newEcho(n)
	for i := 0; i < 50; i++ {
		n.Send(a.id, b.id, "ping", i)
	}
	n.Run()
	if len(b.received) != 0 {
		t.Errorf("loss rate 1.0 delivered %d messages", len(b.received))
	}
	if n.Stats().MessagesDropped != 50 {
		t.Errorf("dropped = %d, want 50", n.Stats().MessagesDropped)
	}
}

func TestKillRevive(t *testing.T) {
	n := New(Config{})
	a, b := newEcho(n), newEcho(n)
	n.Kill(b.id)
	n.Send(a.id, b.id, "ping", 1)
	n.Run()
	if len(b.received) != 0 {
		t.Error("dead node must not receive")
	}
	n.Revive(b.id)
	n.Send(a.id, b.id, "ping", 2)
	n.Run()
	if len(b.received) != 1 {
		t.Error("revived node must receive")
	}
	if n.AliveCount() != 2 {
		t.Errorf("alive = %d", n.AliveCount())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	n := New(Config{})
	fired := false
	n.After(100*time.Millisecond, func() { fired = true })
	n.RunUntil(50 * time.Millisecond)
	if fired {
		t.Error("timer fired early")
	}
	if n.Now() != 50*time.Millisecond {
		t.Errorf("clock = %v", n.Now())
	}
	n.RunUntil(150 * time.Millisecond)
	if !fired {
		t.Error("timer did not fire")
	}
}

func TestRunWhile(t *testing.T) {
	n := New(Config{Latency: ConstantLatency(time.Millisecond)})
	count := 0
	rec := &funcNode{fn: func(m Message) { count++ }}
	id := n.AddNode(rec)
	src := n.AddNode(&funcNode{})
	for i := 0; i < 10; i++ {
		n.Send(src, id, "x", i)
	}
	n.RunWhile(func() bool { return count < 4 })
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
}

func TestStatsPerKind(t *testing.T) {
	n := New(Config{})
	a, b := newEcho(n), newEcho(n)
	n.Send(a.id, b.id, "ping", nil)
	n.Send(a.id, b.id, "other", nil)
	n.Run()
	s := n.Stats()
	if s.PerKind["ping"] != 1 || s.PerKind["other"] != 1 || s.PerKind["pong"] != 1 {
		t.Errorf("per-kind stats = %v", s.PerKind)
	}
	n.ResetStats()
	if n.Stats().MessagesSent != 0 {
		t.Error("ResetStats must zero counters")
	}
}

func TestPairwiseLatencyStable(t *testing.T) {
	n := New(Config{Seed: 3})
	m := NewPairwiseLatency(WANLatency(), nil)
	d1 := m.Sample(n.Rand(), 1, 2)
	d2 := m.Sample(n.Rand(), 2, 1)
	if d1 != d2 {
		t.Errorf("pair latency not symmetric/stable: %v vs %v", d1, d2)
	}
	d3 := m.Sample(n.Rand(), 1, 3)
	if d3 == d1 {
		t.Log("different pairs coincidentally equal (allowed but unlikely)")
	}
}

func TestPlanetLabLatencyBounds(t *testing.T) {
	n := New(Config{Seed: 5})
	m := PlanetLabLatency()
	for i := 0; i < 1000; i++ {
		d := m.Sample(n.Rand(), 0, 1)
		if d < 10*time.Millisecond || d > 1500*time.Millisecond {
			t.Fatalf("latency %v out of clamped bounds", d)
		}
	}
}

func TestWireSizeAccounting(t *testing.T) {
	n := New(Config{})
	a, b := newEcho(n), newEcho(n)
	n.Send(a.id, b.id, "big", sized{1000})
	s := n.Stats()
	if s.BytesSent != 64+1000 {
		t.Errorf("bytes = %d, want 1064", s.BytesSent)
	}
}

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func BenchmarkSendDeliver(b *testing.B) {
	n := New(Config{Latency: ConstantLatency(time.Millisecond)})
	sink := n.AddNode(&funcNode{})
	src := n.AddNode(&funcNode{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(src, sink, "x", i)
		n.Step()
	}
}

// TestServiceDelaySerializes: a throttled node is a single-threaded
// server — a burst of B messages drains one per service interval, the
// last delivery lands at roughly link + B×delay, and MaxStall records
// the queueing tail. An unthrottled node in the same run is unaffected.
func TestServiceDelaySerializes(t *testing.T) {
	const (
		link  = time.Millisecond
		delay = 5 * time.Millisecond
		burst = 4
	)
	n := New(Config{Latency: ConstantLatency(link)})
	src, slow, fast := newEcho(n), newEcho(n), newEcho(n)
	n.SetServiceDelay(slow.id, delay)
	for i := 0; i < burst; i++ {
		n.Send(src.id, slow.id, "work", i)
		n.Send(src.id, fast.id, "work", i)
	}
	n.Run()
	if len(slow.received) != burst || len(fast.received) != burst {
		t.Fatalf("delivered %d slow / %d fast, want %d each", len(slow.received), len(fast.received), burst)
	}
	// All arrive at t=link; the i-th finishes service at link + (i+1)×delay.
	for i, m := range slow.received {
		want := link + time.Duration(i+1)*delay
		if m.Deliver != want {
			t.Errorf("slow message %d delivered at %v, want %v", i, m.Deliver, want)
		}
	}
	for _, m := range fast.received {
		if m.Deliver != link {
			t.Errorf("unthrottled node delayed: delivered at %v, want %v", m.Deliver, link)
		}
	}
	st := n.Stats()
	if got, want := st.MaxStall[slow.id], time.Duration(burst)*delay; got != want {
		t.Errorf("MaxStall[slow] = %v, want %v", got, want)
	}
	if st.MaxStall[fast.id] != 0 {
		t.Errorf("MaxStall[fast] = %v, want 0", st.MaxStall[fast.id])
	}

	// Clearing the throttle restores immediate delivery.
	n.SetServiceDelay(slow.id, 0)
	before := len(slow.received)
	n.Send(src.id, slow.id, "work", 99)
	n.Run()
	if m := slow.received[before]; m.Deliver-n.Now() != 0 && m.Deliver != n.Now() {
		t.Errorf("throttle not cleared: delivered at %v, now %v", m.Deliver, n.Now())
	}
}
