package simnet

import (
	"math"
	"math/rand"
	"time"
)

// LatencyModel produces per-message one-way delays. Implementations must
// be deterministic given the rng stream.
type LatencyModel interface {
	Sample(rng *rand.Rand, from, to NodeID) time.Duration
}

// ConstantLatency delivers every message after a fixed delay. Useful for
// hop-count-style analysis where latency = hops × delay exactly.
type ConstantLatency time.Duration

// Sample implements LatencyModel.
func (c ConstantLatency) Sample(*rand.Rand, NodeID, NodeID) time.Duration {
	return time.Duration(c)
}

// UniformLatency draws delays uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Sample implements LatencyModel.
func (u UniformLatency) Sample(rng *rand.Rand, _, _ NodeID) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// LANLatency models a local cluster: low base delay with small jitter.
func LANLatency() LatencyModel {
	return UniformLatency{Min: 200 * time.Microsecond, Max: 2 * time.Millisecond}
}

// lognormal draws a log-normally distributed delay with the given median
// and sigma, clamped to [min, max].
type lognormal struct {
	median   time.Duration
	sigma    float64
	min, max time.Duration
}

func (l lognormal) Sample(rng *rand.Rand, _, _ NodeID) time.Duration {
	mu := math.Log(float64(l.median))
	d := time.Duration(math.Exp(mu + l.sigma*rng.NormFloat64()))
	if d < l.min {
		d = l.min
	}
	if d > l.max {
		d = l.max
	}
	return d
}

// WANLatency models generic wide-area links: ~40ms median round influence
// with moderate variance.
func WANLatency() LatencyModel {
	return lognormal{median: 40 * time.Millisecond, sigma: 0.5,
		min: 5 * time.Millisecond, max: 400 * time.Millisecond}
}

// PlanetLabLatency models the heavy-tailed delays observed on PlanetLab
// (the testbed of the paper's scalability demonstration): ~75ms median
// one-way delay with a long tail from overloaded nodes, clamped at 1.5s.
// Parameters follow published PlanetLab all-pairs-ping characterizations.
func PlanetLabLatency() LatencyModel {
	return lognormal{median: 75 * time.Millisecond, sigma: 0.8,
		min: 10 * time.Millisecond, max: 1500 * time.Millisecond}
}

// ClusteredLatency partitions nodes into Clusters groups by NodeID
// modulo and samples intra-cluster messages from Intra and cross-
// cluster messages from Inter — the classic two-datacenter (or
// multi-site) WAN topology where locality matters.
type ClusteredLatency struct {
	Intra    LatencyModel
	Inter    LatencyModel
	Clusters int
}

// Sample implements LatencyModel.
func (c ClusteredLatency) Sample(rng *rand.Rand, from, to NodeID) time.Duration {
	n := c.Clusters
	if n <= 1 {
		return c.Intra.Sample(rng, from, to)
	}
	if int(from)%n == int(to)%n {
		return c.Intra.Sample(rng, from, to)
	}
	return c.Inter.Sample(rng, from, to)
}

// TwoClusterLatency models two LAN sites joined by a WAN link: nodes in
// the same site see LAN delays, cross-site messages pay WAN delays.
func TwoClusterLatency() LatencyModel {
	return ClusteredLatency{Intra: LANLatency(), Inter: WANLatency(), Clusters: 2}
}

// PairwiseLatency assigns each unordered node pair a stable base delay
// drawn once from Base, plus per-message jitter from Jitter. This gives
// a consistent "geography": the same two nodes always observe similar
// delay, as on a real overlay.
type PairwiseLatency struct {
	Base   LatencyModel
	Jitter LatencyModel
	pairs  map[[2]NodeID]time.Duration
}

// NewPairwiseLatency constructs a PairwiseLatency model.
func NewPairwiseLatency(base, jitter LatencyModel) *PairwiseLatency {
	return &PairwiseLatency{Base: base, Jitter: jitter,
		pairs: make(map[[2]NodeID]time.Duration)}
}

// Sample implements LatencyModel.
func (p *PairwiseLatency) Sample(rng *rand.Rand, from, to NodeID) time.Duration {
	k := [2]NodeID{from, to}
	if to < from {
		k = [2]NodeID{to, from}
	}
	base, ok := p.pairs[k]
	if !ok {
		base = p.Base.Sample(rng, from, to)
		p.pairs[k] = base
	}
	j := time.Duration(0)
	if p.Jitter != nil {
		j = p.Jitter.Sample(rng, from, to)
	}
	return base + j
}
