package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recorder is a Handler that records delivered payloads in order.
type recorder struct {
	mu   sync.Mutex
	got  []Message
	hook func(Message)
}

func (r *recorder) HandleMessage(m Message) {
	r.mu.Lock()
	r.got = append(r.got, m)
	r.mu.Unlock()
	if r.hook != nil {
		r.hook(m)
	}
}

func (r *recorder) messages() []Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Message(nil), r.got...)
}

// TestConcurrentPerLinkFIFO sends numbered messages over a jittery
// link in concurrent mode and asserts they arrive in send order: the
// per-link clamp must prevent a later send with a luckier latency draw
// from overtaking an earlier one.
func TestConcurrentPerLinkFIFO(t *testing.T) {
	n := New(Config{Seed: 1, Latency: UniformLatency{Min: time.Millisecond, Max: 50 * time.Millisecond}})
	sender := &recorder{}
	receiver := &recorder{}
	a := n.AddNode(sender)
	b := n.AddNode(receiver)
	n.StartConcurrent(10000)

	const count = 300
	for i := 0; i < count; i++ {
		n.Send(a, b, "seq", i)
	}
	n.Quiesce()
	n.Stop()

	got := receiver.messages()
	if len(got) != count {
		t.Fatalf("delivered %d messages, want %d", len(got), count)
	}
	for i, m := range got {
		if m.Payload.(int) != i {
			t.Fatalf("message %d carried payload %v: per-link FIFO violated", i, m.Payload)
		}
		if m.Deliver < m.Sent {
			t.Fatalf("message %d delivered before it was sent", i)
		}
	}
}

// TestConcurrentLatencyAndLoss checks that concurrent delivery keeps
// the deterministic mode's latency and loss semantics: constant-delay
// links stamp exactly that delay, and a lossy link drops the expected
// fraction while Quiesce still returns.
func TestConcurrentLatencyAndLoss(t *testing.T) {
	const delay = 5 * time.Millisecond
	n := New(Config{Seed: 2, Latency: ConstantLatency(delay)})
	recv := &recorder{}
	a := n.AddNode(&recorder{})
	b := n.AddNode(recv)
	n.StartConcurrent(10000)
	for i := 0; i < 50; i++ {
		n.Send(a, b, "ping", i)
	}
	n.Quiesce()
	n.Stop()
	for _, m := range recv.messages() {
		if m.Deliver-m.Sent != delay {
			t.Fatalf("constant-latency message stamped %v, want %v", m.Deliver-m.Sent, delay)
		}
	}
	if got := n.Stats().MessagesDelivered; got != 50 {
		t.Fatalf("delivered = %d, want 50", got)
	}

	// Full loss: nothing arrives, nothing hangs.
	lossy := New(Config{Seed: 3, LossRate: 1})
	recv2 := &recorder{}
	x := lossy.AddNode(&recorder{})
	y := lossy.AddNode(recv2)
	lossy.StartConcurrent(0)
	for i := 0; i < 40; i++ {
		lossy.Send(x, y, "void", i)
	}
	lossy.Quiesce()
	lossy.Stop()
	if len(recv2.messages()) != 0 {
		t.Fatalf("lossy link delivered %d messages, want 0", len(recv2.messages()))
	}
	if got := lossy.Stats().MessagesDropped; got != 40 {
		t.Fatalf("dropped = %d, want 40", got)
	}
}

// TestConcurrentDeadReceiver checks churn semantics: messages to a
// killed node are dropped (counted), and delivery resumes after Revive.
func TestConcurrentDeadReceiver(t *testing.T) {
	n := New(Config{Seed: 4})
	recv := &recorder{}
	a := n.AddNode(&recorder{})
	b := n.AddNode(recv)
	n.StartConcurrent(0)
	n.Kill(b)
	n.Send(a, b, "lost", 1)
	n.Quiesce()
	if got := len(recv.messages()); got != 0 {
		t.Fatalf("dead node received %d messages", got)
	}
	n.Revive(b)
	n.Send(a, b, "found", 2)
	n.Quiesce()
	n.Stop()
	if got := len(recv.messages()); got != 1 {
		t.Fatalf("revived node received %d messages, want 1", got)
	}
	if got := n.Stats().MessagesDropped; got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}

// TestConcurrentParallelSenders hammers one network from many sender
// goroutines (exercised under -race by CI) and verifies conservation:
// sent == delivered + dropped once quiescent.
func TestConcurrentParallelSenders(t *testing.T) {
	n := New(Config{Seed: 5, Latency: UniformLatency{Min: time.Microsecond, Max: time.Millisecond}})
	const nodes = 16
	recvs := make([]*recorder, nodes)
	ids := make([]NodeID, nodes)
	for i := range recvs {
		recvs[i] = &recorder{}
		ids[i] = n.AddNode(recvs[i])
	}
	n.StartConcurrent(0)

	const perSender = 50
	var wg sync.WaitGroup
	for s := 0; s < nodes; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				n.Send(ids[s], ids[(s+i+1)%nodes], "blast", i)
			}
		}(s)
	}
	wg.Wait()
	n.Quiesce()
	n.Stop()

	st := n.Stats()
	if st.MessagesSent != nodes*perSender {
		t.Fatalf("sent = %d, want %d", st.MessagesSent, nodes*perSender)
	}
	if st.MessagesDelivered+st.MessagesDropped != st.MessagesSent {
		t.Fatalf("conservation violated: %d delivered + %d dropped != %d sent",
			st.MessagesDelivered, st.MessagesDropped, st.MessagesSent)
	}
	total := 0
	for _, r := range recvs {
		total += len(r.messages())
	}
	if total != st.MessagesDelivered {
		t.Fatalf("handlers saw %d messages, stats say %d", total, st.MessagesDelivered)
	}
}

// TestConcurrentHandlersRunInParallel proves the fabric actually runs
// handlers on different nodes concurrently: two nodes block in their
// handlers until both have entered, which can only happen if delivery
// is not serialized through one thread.
func TestConcurrentHandlersRunInParallel(t *testing.T) {
	n := New(Config{Seed: 6})
	var entered atomic.Int32
	both := make(chan struct{})
	var once sync.Once
	mk := func() *recorder {
		r := &recorder{}
		r.hook = func(Message) {
			if entered.Add(1) == 2 {
				once.Do(func() { close(both) })
			}
			select {
			case <-both:
			case <-time.After(5 * time.Second):
				t.Error("handlers never overlapped: delivery is serialized")
			}
		}
		return r
	}
	src := n.AddNode(&recorder{})
	x := n.AddNode(mk())
	y := n.AddNode(mk())
	n.StartConcurrent(0)
	n.Send(src, x, "par", 1)
	n.Send(src, y, "par", 2)
	n.Quiesce()
	n.Stop()
	if entered.Load() != 2 {
		t.Fatalf("expected both handlers to run, got %d", entered.Load())
	}
}

// TestConcurrentTimers checks After fires in concurrent mode and that
// timers scheduled by handlers keep working.
func TestConcurrentTimers(t *testing.T) {
	n := New(Config{Seed: 7})
	n.StartConcurrent(0)
	fired := make(chan struct{})
	n.After(10*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired in concurrent mode")
	}
	n.Stop()
}

// TestStopIsIdempotent ensures double-Stop and Stop-without-Start are
// safe, and that deterministic stepping still works before Start.
func TestStopIsIdempotent(t *testing.T) {
	n := New(Config{Seed: 8})
	recv := &recorder{}
	a := n.AddNode(&recorder{})
	b := n.AddNode(recv)
	n.Stop() // no-op: not concurrent
	n.Send(a, b, "det", 1)
	n.Run()
	if len(recv.messages()) != 1 {
		t.Fatal("deterministic delivery broken")
	}
	n.StartConcurrent(0)
	n.Stop()
	n.Stop()
}
