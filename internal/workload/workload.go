// Package workload generates the synthetic datasets the experiments
// run on: instances of the paper's Fig. 3 schema (persons with
// publications at conferences), Zipf-skewed value distributions (the
// load-balancing stressor), typo-injected strings (similarity-query
// targets), and heterogeneous multi-namespace variants with
// correspondence mappings. All generation is seeded and reproducible —
// the stand-in for the contact/publication data the demo collected from
// conference participants.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"unistore/internal/schema"
	"unistore/internal/triple"
)

// Conference series pool: realistic names keep the similarity
// experiments honest (ICDE vs ICDM vs ICDT are near neighbours).
var Series = []string{"ICDE", "VLDB", "SIGMOD", "EDBT", "ICDM", "ICDT", "CIDR", "PODS", "KDD", "WWW"}

// FirstNames and LastNames seed person generation.
var FirstNames = []string{
	"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
	"ivan", "judy", "karl", "laura", "mallory", "nina", "oscar", "peggy",
}
var LastNames = []string{
	"mueller", "schmidt", "karnstedt", "sattler", "hauswirth", "aberer",
	"weber", "fischer", "wagner", "becker", "hoffmann", "schulz",
}

// Zipf draws ranks 0..n-1 with exponent s (s=0 is uniform; s≈1 is the
// classic web-data skew).
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a Zipf sampler over n ranks.
func NewZipf(rng *rand.Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Typo injects up to `edits` random single-character edits.
func Typo(rng *rand.Rand, s string, edits int) string {
	b := []byte(s)
	for e := 0; e < edits && len(b) > 0; e++ {
		switch rng.Intn(3) {
		case 0:
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
		case 1:
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		case 2:
			i := rng.Intn(len(b) + 1)
			b = append(b[:i], append([]byte{byte('a' + rng.Intn(26))}, b[i:]...)...)
		}
	}
	return string(b)
}

// Options parameterize dataset generation.
type Options struct {
	Seed int64
	// Persons is the number of person tuples (publications and
	// conferences scale with it).
	Persons int
	// ZipfS skews value popularity (conference choice, name prefixes);
	// 0 disables skew.
	ZipfS float64
	// TypoRate is the fraction of series strings receiving 1-2 typos —
	// the similarity queries' raison d'être.
	TypoRate float64
	// Namespace prefixes attribute names (heterogeneity experiments);
	// empty means the paper's plain attribute names.
	Namespace string
}

// Dataset is a generated corpus plus the ground truth experiments
// assert against.
type Dataset struct {
	Triples []triple.Triple
	Persons int
	// CleanSeries maps each typo'd series string to its original.
	CleanSeries map[string]string
}

// Attr applies the option namespace to an attribute name.
func (o Options) Attr(a string) string {
	if o.Namespace == "" {
		return a
	}
	return o.Namespace + ":" + a
}

// Generate builds a Fig. 3 instance: persons (name, age, num_of_pubs,
// phone, email), their publications (title, published_in), and the
// conferences (confname, series, year).
func Generate(o Options) *Dataset {
	rng := rand.New(rand.NewSource(o.Seed))
	ds := &Dataset{Persons: o.Persons, CleanSeries: map[string]string{}}
	var seriesPick func() int
	if o.ZipfS > 0 {
		z := NewZipf(rng, len(Series), o.ZipfS)
		seriesPick = z.Next
	} else {
		seriesPick = func() int { return rng.Intn(len(Series)) }
	}

	// Conferences: a pool proportional to persons, with typo'd series.
	nConfs := o.Persons/2 + 3
	confNames := make([]string, nConfs)
	for i := 0; i < nConfs; i++ {
		base := Series[seriesPick()]
		year := 1998 + rng.Intn(10)
		name := fmt.Sprintf("%s %d", base, year)
		series := base
		if rng.Float64() < o.TypoRate {
			series = Typo(rng, base, 1+rng.Intn(2))
		}
		ds.CleanSeries[series] = base
		oid := fmt.Sprintf("conf-%04d", i)
		confNames[i] = name
		ds.Triples = append(ds.Triples,
			triple.T(oid, o.Attr("confname"), name),
			triple.T(oid, o.Attr("series"), series),
			triple.TN(oid, o.Attr("year"), float64(year)))
	}

	// Persons and publications.
	pubID := 0
	for i := 0; i < o.Persons; i++ {
		oid := fmt.Sprintf("person-%05d", i)
		name := fmt.Sprintf("%s %s %d",
			FirstNames[rng.Intn(len(FirstNames))],
			LastNames[rng.Intn(len(LastNames))], i)
		age := 22 + rng.Intn(48)
		nPubs := rng.Intn(6)
		ds.Triples = append(ds.Triples,
			triple.T(oid, o.Attr("name"), name),
			triple.TN(oid, o.Attr("age"), float64(age)),
			triple.TN(oid, o.Attr("num_of_pubs"), float64(nPubs)),
			triple.T(oid, o.Attr("phone"), fmt.Sprintf("+41-%07d", rng.Intn(10000000))),
			triple.T(oid, o.Attr("email"), fmt.Sprintf("p%d@example.org", i)))
		for j := 0; j < nPubs; j++ {
			title := fmt.Sprintf("Paper %05d-%d on %s", i, j, topicFor(rng))
			uid := fmt.Sprintf("pub-%06d", pubID)
			pubID++
			conf := confNames[rng.Intn(len(confNames))]
			ds.Triples = append(ds.Triples,
				triple.T(oid, o.Attr("has_published"), title),
				triple.T(uid, o.Attr("title"), title),
				triple.T(uid, o.Attr("published_in"), conf))
		}
	}
	return ds
}

func topicFor(rng *rand.Rand) string {
	topics := []string{
		"similarity queries", "skyline processing", "universal storage",
		"query optimization", "overlay networks", "schema mappings",
		"range indexing", "load balancing",
	}
	return topics[rng.Intn(len(topics))]
}

// HeterogeneousPair generates the same logical data under two
// namespaces plus the correspondence mappings between them — the E10
// workload: querying one schema should retrieve both datasets once the
// mappings are applied.
func HeterogeneousPair(seed int64, personsEach int) (a, b *Dataset, mappings []schema.Mapping) {
	a = Generate(Options{Seed: seed, Persons: personsEach, Namespace: "dblp"})
	b = Generate(Options{Seed: seed + 1, Persons: personsEach, Namespace: "ceur"})
	for _, attr := range []string{"name", "age", "num_of_pubs", "title",
		"published_in", "confname", "series", "year", "has_published"} {
		mappings = append(mappings, schema.Mapping{From: "dblp:" + attr, To: "ceur:" + attr})
	}
	return a, b, mappings
}

// HotQueries draws query targets from a fixed value pool with
// Zipf-ranked popularity — the hot-query axis of the scale scenarios:
// rank 0 (the first value) absorbs the largest share of lookups, so
// whichever partition owns it becomes the hot shard. s=0 degrades to
// uniform popularity.
type HotQueries struct {
	values []string
	z      *Zipf
}

// NewHotQueries builds a seeded hot-query sampler over the value pool.
func NewHotQueries(seed int64, values []string, s float64) *HotQueries {
	if len(values) == 0 {
		panic("workload: NewHotQueries needs a non-empty value pool")
	}
	rng := rand.New(rand.NewSource(seed))
	return &HotQueries{values: values, z: NewZipf(rng, len(values), s)}
}

// Next draws one query value.
func (h *HotQueries) Next() string { return h.values[h.z.Next()] }

// SkewedValues generates n triples of one attribute whose values follow
// a Zipf rank distribution over distinct strings with shared prefixes —
// the E6 load-balancing stressor for order-preserving hashing.
func SkewedValues(seed int64, n int, s float64) []triple.Triple {
	rng := rand.New(rand.NewSource(seed))
	z := NewZipf(rng, 26, s)
	out := make([]triple.Triple, 0, n)
	for i := 0; i < n; i++ {
		// Skewed leading letter, uniform tail: hot alphabet regions.
		lead := byte('a' + z.Next())
		val := fmt.Sprintf("%c%c%c-%05d", lead, 'a'+rng.Intn(26), 'a'+rng.Intn(26), i)
		out = append(out, triple.T(fmt.Sprintf("sv-%06d", i), "tag", val))
	}
	return out
}
