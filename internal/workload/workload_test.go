package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"unistore/internal/qgram"
)

func TestGenerateReproducible(t *testing.T) {
	a := Generate(Options{Seed: 7, Persons: 50})
	b := Generate(Options{Seed: 7, Persons: 50})
	if len(a.Triples) != len(b.Triples) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.Triples {
		if !a.Triples[i].Equal(b.Triples[i]) {
			t.Fatalf("triple %d differs: %v vs %v", i, a.Triples[i], b.Triples[i])
		}
	}
	c := Generate(Options{Seed: 8, Persons: 50})
	if len(a.Triples) == len(c.Triples) {
		same := true
		for i := range a.Triples {
			if !a.Triples[i].Equal(c.Triples[i]) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical corpora")
		}
	}
}

func TestGenerateSchemaShape(t *testing.T) {
	ds := Generate(Options{Seed: 1, Persons: 30})
	attrs := map[string]int{}
	for _, tr := range ds.Triples {
		attrs[tr.Attr]++
	}
	for _, want := range []string{"name", "age", "num_of_pubs", "phone",
		"email", "confname", "series", "year", "title", "published_in"} {
		if attrs[want] == 0 {
			t.Errorf("attribute %q missing from corpus", want)
		}
	}
	if attrs["name"] != 30 {
		t.Errorf("expected 30 name triples, got %d", attrs["name"])
	}
	// Publications are consistent: every has_published title exists.
	titles := map[string]bool{}
	for _, tr := range ds.Triples {
		if tr.Attr == "title" {
			titles[tr.Val.Str] = true
		}
	}
	for _, tr := range ds.Triples {
		if tr.Attr == "has_published" && !titles[tr.Val.Str] {
			t.Errorf("dangling publication %q", tr.Val.Str)
		}
	}
}

func TestNamespacePrefix(t *testing.T) {
	ds := Generate(Options{Seed: 2, Persons: 5, Namespace: "dblp"})
	for _, tr := range ds.Triples {
		if !strings.HasPrefix(tr.Attr, "dblp:") {
			t.Fatalf("attribute %q lacks namespace", tr.Attr)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[9]*3 {
		t.Errorf("rank 0 (%d) must dominate rank 9 (%d) at s=1.2", counts[0], counts[9])
	}
	// Monotone-ish decreasing head.
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Errorf("head not decreasing: %v", counts[:3])
	}
	// s=0 is uniform.
	u := NewZipf(rng, 10, 0)
	uc := make([]int, 10)
	for i := 0; i < 20000; i++ {
		uc[u.Next()]++
	}
	for _, c := range uc {
		if math.Abs(float64(c)-2000) > 500 {
			t.Errorf("uniform draw skewed: %v", uc)
		}
	}
}

func TestTypoWithinDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		s := "ICDE"
		edits := rng.Intn(3)
		mutated := Typo(rng, s, edits)
		if d := qgram.EditDistance(s, mutated); d > edits {
			t.Fatalf("Typo(%d edits) produced distance %d: %q", edits, d, mutated)
		}
	}
}

func TestTypoRateProducesDirtySeries(t *testing.T) {
	ds := Generate(Options{Seed: 5, Persons: 100, TypoRate: 0.5})
	dirty := 0
	for typo, clean := range ds.CleanSeries {
		if typo != clean {
			dirty++
		}
	}
	if dirty == 0 {
		t.Error("typo rate 0.5 produced no dirty series")
	}
	// Every dirty series is near its clean original.
	for typo, clean := range ds.CleanSeries {
		if qgram.EditDistance(typo, clean) > 2 {
			t.Errorf("typo %q too far from %q", typo, clean)
		}
	}
}

func TestHeterogeneousPair(t *testing.T) {
	a, b, ms := HeterogeneousPair(9, 10)
	if len(ms) == 0 {
		t.Fatal("no mappings generated")
	}
	for _, tr := range a.Triples {
		if !strings.HasPrefix(tr.Attr, "dblp:") {
			t.Fatal("dataset A must use dblp namespace")
		}
	}
	for _, tr := range b.Triples {
		if !strings.HasPrefix(tr.Attr, "ceur:") {
			t.Fatal("dataset B must use ceur namespace")
		}
	}
	for _, m := range ms {
		if !strings.HasPrefix(m.From, "dblp:") || !strings.HasPrefix(m.To, "ceur:") {
			t.Errorf("mapping namespaces wrong: %v", m)
		}
	}
}

func TestSkewedValues(t *testing.T) {
	ts := SkewedValues(11, 5000, 1.1)
	if len(ts) != 5000 {
		t.Fatalf("generated %d", len(ts))
	}
	counts := map[byte]int{}
	for _, tr := range ts {
		counts[tr.Val.Str[0]]++
	}
	if counts['a'] <= counts['z']*2 {
		t.Errorf("leading-letter skew absent: a=%d z=%d", counts['a'], counts['z'])
	}
	// Distinct values (no artificial duplicates): the skew is in the
	// key-space region, which is what stresses order-preserving
	// placement.
	seen := map[string]bool{}
	for _, tr := range ts {
		if seen[tr.Val.Str] {
			t.Fatalf("duplicate value %q", tr.Val.Str)
		}
		seen[tr.Val.Str] = true
	}
}

func TestHotQueriesTop1Frequency(t *testing.T) {
	// The rank-0 value's draw frequency must track the Zipf prediction
	// 1/H_n(s) — the hot-shard scenarios calibrate load against it.
	values := make([]string, 50)
	for i := range values {
		values[i] = Series[i%len(Series)] + string(rune('a'+i/len(Series)))
	}
	for _, s := range []float64{0.8, 1.1, 1.4} {
		hn := 0.0
		for i := 1; i <= len(values); i++ {
			hn += 1 / math.Pow(float64(i), s)
		}
		wantFreq := 1 / hn
		hot := NewHotQueries(21, values, s)
		const draws = 30000
		top := 0
		for i := 0; i < draws; i++ {
			if hot.Next() == values[0] {
				top++
			}
		}
		gotFreq := float64(top) / draws
		if math.Abs(gotFreq-wantFreq) > 0.25*wantFreq {
			t.Errorf("s=%.1f: top-1 frequency %.3f, want %.3f ±25%%", s, gotFreq, wantFreq)
		}
	}
}

func TestHotQueriesReproducible(t *testing.T) {
	values := []string{"icde", "vldb", "sigmod", "edbt", "cidr"}
	a := NewHotQueries(33, values, 1.2)
	b := NewHotQueries(33, values, 1.2)
	for i := 0; i < 500; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("draw %d diverged: %q vs %q", i, av, bv)
		}
	}
	c := NewHotQueries(34, values, 1.2)
	diverged := false
	for i := 0; i < 500; i++ {
		if a.Next() != c.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical draw sequences")
	}
}

func TestHotQueriesRankStableAcrossNamespaces(t *testing.T) {
	// The same seed must pick the same RANKS regardless of the value
	// pool's namespace decoration — so heterogeneity experiments can
	// replay one hot-query schedule against both schemas.
	base := []string{"icde", "vldb", "sigmod", "edbt", "cidr", "pods"}
	dblp := make([]string, len(base))
	ceur := make([]string, len(base))
	for i, v := range base {
		dblp[i] = "dblp:" + v
		ceur[i] = "ceur:" + v
	}
	a := NewHotQueries(55, dblp, 1.1)
	b := NewHotQueries(55, ceur, 1.1)
	for i := 0; i < 500; i++ {
		av := strings.TrimPrefix(a.Next(), "dblp:")
		bv := strings.TrimPrefix(b.Next(), "ceur:")
		if av != bv {
			t.Fatalf("draw %d picked different ranks: %q vs %q", i, av, bv)
		}
	}
}

func TestTypoZeroEditsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, s := range []string{"ICDE", "VLDB 2003", ""} {
		if got := Typo(rng, s, 0); got != s {
			t.Errorf("Typo(%q, 0) = %q, want identity", s, got)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(rand.New(rand.NewSource(1)), 0, 1)
}
