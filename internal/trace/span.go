package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span flags: how a span came to exist. A retry span replaces work
// toward a peer that stalled or died; a hedge span races a slow one.
const (
	FlagRetry uint8 = 1 << iota
	FlagHedge
)

// Op codes name the overlay operation a span measures. They travel on
// the wire (one byte) instead of the kind string.
const (
	OpLookup uint8 = iota + 1
	OpMultiLookup
	OpRange
	OpPage
	OpInsert
	OpPlan
)

// OpName expands a wire op code to the span-kind string.
func OpName(op uint8) string {
	switch op {
	case OpLookup:
		return "lookup"
	case OpMultiLookup:
		return "multilookup"
	case OpRange:
		return "range"
	case OpPage:
		return "page"
	case OpInsert:
		return "insert"
	case OpPlan:
		return "plan"
	}
	return fmt.Sprintf("op%d", op)
}

// Ctx is the trace context propagated on every overlay request that
// carries a query id: which trace the work belongs to, which span
// caused it, and how deep in the tree it sits. The zero Ctx means
// tracing is off — no span is recorded and no rider is attached.
type Ctx struct {
	TraceID uint64
	Parent  uint64
	Depth   uint8
	Flags   uint8
}

// Active reports whether this context belongs to a live trace.
func (c Ctx) Active() bool { return c.TraceID != 0 }

// Child derives the context for work caused by span `parent` one level
// deeper. Flags do not inherit: a retry's children are ordinary spans.
func (c Ctx) Child(parent uint64) Ctx {
	return Ctx{TraceID: c.TraceID, Parent: parent, Depth: c.Depth + 1}
}

// WireSize is the estimated encoded size of the context: two ids, a
// depth and a flag byte. Zero when inactive — untraced messages pay
// nothing.
func (c Ctx) WireSize() int {
	if c.TraceID == 0 {
		return 0
	}
	return 18
}

// Span is one completed unit of traced work: a peer served one
// request (or the coordinator ran one synthetic stage). Timestamps are
// transport-clock nanoseconds (simulated time on simnet, wall time on
// TCP); structural comparisons ignore them.
type Span struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent"`
	TraceID uint64 `json:"trace"`
	Kind    string `json:"kind"`
	Peer    int64  `json:"peer"`
	Path    string `json:"path,omitempty"`
	Stage   string `json:"stage,omitempty"`
	Flags   uint8  `json:"flags,omitempty"`
	Depth   uint8  `json:"depth"`
	// Enq/Srv/Rep: request delivery, serve start, reply send.
	Enq int64 `json:"enq"`
	Srv int64 `json:"srv"`
	Rep int64 `json:"rep"`
	// MsgsIn/BytesIn: messages and bytes spent delivering the request
	// to this span's peer (routing hops included). MsgsOut/BytesOut:
	// its reply. Every overlay message belongs to exactly one span
	// field, so totals reconcile with the transport's counters.
	MsgsIn   int `json:"msgsIn"`
	MsgsOut  int `json:"msgsOut"`
	BytesIn  int `json:"bytesIn"`
	BytesOut int `json:"bytesOut"`
	// Stalls counts credit-window stalls charged to this span.
	Stalls int `json:"stalls,omitempty"`
	// Rows is the number of entries/rows this span produced. RowsIn is
	// the upstream rows a pipeline-stage span consumed (overlay spans
	// leave it zero).
	Rows   int `json:"rows,omitempty"`
	RowsIn int `json:"rowsIn,omitempty"`
}

// WireSpan is the compact rider a serving peer piggybacks on its
// response: everything the coordinator cannot reconstruct locally.
// MsgsOut/BytesOut are stamped by the receiver from the response
// message itself, so they never travel.
type WireSpan struct {
	ID      uint64
	Parent  uint64
	Op      uint8
	Flags   uint8
	Depth   uint8
	Peer    int64
	Path    string
	MsgsIn  int32
	BytesIn int32
	Stalls  int32
	Rows    int32
	Enq     int64
	Srv     int64
	Rep     int64
}

// WireSize estimates the rider's encoded size (varint counters and
// timestamps; the path packs to a bit per character).
func (w *WireSpan) WireSize() int {
	if w == nil {
		return 0
	}
	return 48 + len(w.Path)/8
}

// Span expands the rider into a full span; the caller stamps the
// response's own cost (msgsOut is 1 for a piggybacked rider).
func (w *WireSpan) Span(traceID uint64, msgsOut, bytesOut int) Span {
	return Span{
		ID: w.ID, Parent: w.Parent, TraceID: traceID,
		Kind: OpName(w.Op), Peer: w.Peer, Path: w.Path,
		Flags: w.Flags, Depth: w.Depth,
		Enq: w.Enq, Srv: w.Srv, Rep: w.Rep,
		MsgsIn: int(w.MsgsIn), MsgsOut: msgsOut,
		BytesIn: int(w.BytesIn), BytesOut: bytesOut,
		Stalls: int(w.Stalls), Rows: int(w.Rows),
	}
}

// QueryTrace is the coordinator-assembled trace of one query: a flat
// span list linked by parent ids into a tree rooted at Root.
type QueryTrace struct {
	TraceID uint64 `json:"trace"`
	Root    uint64 `json:"root"`
	Spans   []Span `json:"spans"`
}

// Assemble sorts and dedups spans (first occurrence wins) into a
// QueryTrace. The deterministic order — depth, then kind, path, id —
// makes equal traces byte-equal when rendered.
func Assemble(traceID, root uint64, spans []Span) *QueryTrace {
	seen := make(map[uint64]bool, len(spans))
	out := make([]Span, 0, len(spans))
	for _, s := range spans {
		if s.ID != 0 && seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return a.ID < b.ID
	})
	return &QueryTrace{TraceID: traceID, Root: root, Spans: out}
}

// Totals sums the per-span message and byte accounting. On a quiet
// deterministic network the result reconciles exactly with the
// transport's own sent counters.
func (t *QueryTrace) Totals() (msgs, bytes int) {
	for _, s := range t.Spans {
		msgs += s.MsgsIn + s.MsgsOut
		bytes += s.BytesIn + s.BytesOut
	}
	return msgs, bytes
}

// Orphans returns spans whose parent id is neither zero, the root, nor
// present in the trace — broken links a propagation bug would leave.
func (t *QueryTrace) Orphans() []Span {
	ids := make(map[uint64]bool, len(t.Spans))
	for _, s := range t.Spans {
		ids[s.ID] = true
	}
	var out []Span
	for _, s := range t.Spans {
		if s.Parent != 0 && s.Parent != t.Root && !ids[s.Parent] {
			out = append(out, s)
		}
	}
	return out
}

// node is one tree position during rendering/canonicalization.
type node struct {
	span     Span
	children []*node
}

// tree links spans into parent→children form. Spans with a missing
// parent hang off the root so nothing is silently dropped.
func (t *QueryTrace) tree() *node {
	byID := make(map[uint64]*node, len(t.Spans)+1)
	root := &node{span: Span{ID: t.Root, Kind: "query"}}
	byID[t.Root] = root
	for i := range t.Spans {
		n := &node{span: t.Spans[i]}
		if t.Spans[i].ID == t.Root {
			root.span = t.Spans[i]
			continue
		}
		byID[t.Spans[i].ID] = n
	}
	for _, n := range byID {
		if n == root {
			continue
		}
		p := byID[n.span.Parent]
		if p == nil || p == n {
			p = root
		}
		p.children = append(p.children, n)
	}
	var order func(*node)
	order = func(n *node) {
		sort.Slice(n.children, func(i, j int) bool {
			a, b := n.children[i].span, n.children[j].span
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			if a.Path != b.Path {
				return a.Path < b.Path
			}
			if a.Stage != b.Stage {
				return a.Stage < b.Stage
			}
			return a.ID < b.ID
		})
		for _, c := range n.children {
			order(c)
		}
	}
	order(root)
	return root
}

// label is the structural identity of a span: what it did and where in
// the key space — never who (peer ids differ across replica choices)
// and never when (timings differ across transports).
func (s Span) label() string {
	l := s.Kind
	if s.Stage != "" {
		l += ":" + s.Stage
	}
	if s.Path != "" {
		l += "@" + s.Path
	}
	return l
}

// Canonical renders the trace's structure as sorted root-to-span label
// chains, one per span. Two runs of the same deterministic scenario —
// simulated or over TCP — produce byte-equal canonical forms, which is
// how the cross-transport identity test compares them. keep filters
// spans (nil keeps all); dropping a span drops its subtree.
func (t *QueryTrace) Canonical(keep func(Span) bool) string {
	var lines []string
	var walk func(n *node, prefix string)
	walk = func(n *node, prefix string) {
		line := prefix + n.span.label()
		lines = append(lines, line)
		for _, c := range n.children {
			if keep != nil && !keep(c.span) {
				continue
			}
			walk(c, line+" > ")
		}
	}
	walk(t.tree(), "")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// String renders the trace as an indented tree with per-span cost —
// the slow-query log's payload.
func (t *QueryTrace) String() string {
	var sb strings.Builder
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		s := n.span
		fmt.Fprintf(&sb, "%s%s peer=%d msgs=%d/%d bytes=%d/%d",
			strings.Repeat("  ", depth), s.label(), s.Peer,
			s.MsgsIn, s.MsgsOut, s.BytesIn, s.BytesOut)
		if s.Rows > 0 {
			fmt.Fprintf(&sb, " rows=%d", s.Rows)
		}
		if s.Stalls > 0 {
			fmt.Fprintf(&sb, " stalls=%d", s.Stalls)
		}
		if d := s.Rep - s.Enq; d > 0 {
			fmt.Fprintf(&sb, " t=%v", time.Duration(d).Round(time.Microsecond))
		}
		if s.Flags&FlagHedge != 0 {
			sb.WriteString(" [hedge]")
		}
		if s.Flags&FlagRetry != 0 {
			sb.WriteString(" [retry]")
		}
		sb.WriteString("\n")
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.tree(), 0)
	return sb.String()
}

// SpanRing is a peer's bounded buffer of completed spans: cheap to
// append under load, snapshotable for diagnostics.
type SpanRing struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

// NewSpanRing returns a ring holding the most recent `capacity` spans.
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &SpanRing{buf: make([]Span, capacity)}
}

// Add records one span, overwriting the oldest when full.
func (r *SpanRing) Add(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered spans, oldest first.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// TraceLog is the daemon's bounded buffer of recently completed query
// traces, served by /trace/recent.
type TraceLog struct {
	mu   sync.Mutex
	buf  []*QueryTrace
	next int
	full bool
}

// NewTraceLog returns a log holding the most recent `capacity` traces.
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = 32
	}
	return &TraceLog{buf: make([]*QueryTrace, capacity)}
}

// Add records one completed trace.
func (l *TraceLog) Add(t *QueryTrace) {
	if t == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = t
	l.next = (l.next + 1) % len(l.buf)
	if l.next == 0 {
		l.full = true
	}
	l.mu.Unlock()
}

// Recent returns buffered traces, newest first.
func (l *TraceLog) Recent() []*QueryTrace {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*QueryTrace
	for i := 1; i <= len(l.buf); i++ {
		t := l.buf[(l.next-i+len(l.buf))%len(l.buf)]
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}
