package trace

import (
	"strings"
	"testing"
)

func TestRegistryInstrumentsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("pgrid.delivered").Add(5)
	r.Counter("pgrid.delivered").Inc()
	r.Gauge("pgrid.route_cache.hit_rate").Set(0.75)
	h := r.Histogram("query.latency_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	s := r.Snapshot()
	if s.Counters["pgrid.delivered"] != 6 {
		t.Errorf("counter = %d", s.Counters["pgrid.delivered"])
	}
	if s.Gauges["pgrid.route_cache.hit_rate"] != 0.75 {
		t.Errorf("gauge = %v", s.Gauges["pgrid.route_cache.hit_rate"])
	}
	hs := s.Histograms["query.latency_ms"]
	if hs.Count != 3 || hs.Sum != 105.5 {
		t.Errorf("hist count=%d sum=%v", hs.Count, hs.Sum)
	}
	if hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Errorf("bucket counts = %v", hs.Counts)
	}
	// Same name returns the same instrument.
	if r.Counter("pgrid.delivered").Value() != 6 {
		t.Error("get-or-create must return the existing counter")
	}
}

func TestSnapshotSubDeltas(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.messages_sent").Add(100)
	h := r.Histogram("lat", []float64{1})
	h.Observe(0.5)
	before := r.Snapshot()
	r.Counter("net.messages_sent").Add(42)
	h.Observe(2)
	d := r.Snapshot().Sub(before)
	if d.Counters["net.messages_sent"] != 42 {
		t.Errorf("counter delta = %d", d.Counters["net.messages_sent"])
	}
	hd := d.Histograms["lat"]
	if hd.Count != 1 || hd.Counts[0] != 0 || hd.Counts[1] != 1 {
		t.Errorf("hist delta = %+v", hd)
	}
}

func TestCollectorsRunAtSnapshot(t *testing.T) {
	r := NewRegistry()
	native := int64(0)
	r.OnCollect(func(reg *Registry) {
		c := reg.Counter("external.mirrored")
		if d := native - c.Value(); d != 0 {
			c.Add(d)
		}
	})
	native = 7
	if got := r.Snapshot().Counters["external.mirrored"]; got != 7 {
		t.Errorf("first snapshot = %d", got)
	}
	native = 9
	if got := r.Snapshot().Counters["external.mirrored"]; got != 9 {
		t.Errorf("second snapshot = %d", got)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("pgrid.probe.groups").Add(3)
	r.Gauge("pgrid.flow.pressure").Set(0.25)
	r.Histogram("query.latency_ms", []float64{1, 10}).Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"# TYPE unistore_pgrid_probe_groups counter",
		"unistore_pgrid_probe_groups 3",
		"# TYPE unistore_pgrid_flow_pressure gauge",
		"unistore_pgrid_flow_pressure 0.25",
		"# TYPE unistore_query_latency_ms histogram",
		`unistore_query_latency_ms_bucket{le="10"} 1`,
		`unistore_query_latency_ms_bucket{le="+Inf"} 1`,
		"unistore_query_latency_ms_count 1",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("prometheus output missing %q:\n%s", frag, out)
		}
	}
}
