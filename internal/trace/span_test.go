package trace

import (
	"strings"
	"testing"
)

func TestCtxActivationAndWireSize(t *testing.T) {
	var zero Ctx
	if zero.Active() || zero.WireSize() != 0 {
		t.Fatalf("zero ctx must be inactive and free on the wire")
	}
	c := Ctx{TraceID: 7, Parent: 3, Depth: 1, Flags: FlagRetry}
	if !c.Active() || c.WireSize() == 0 {
		t.Fatalf("active ctx must cost wire bytes")
	}
	child := c.Child(99)
	if child.Parent != 99 || child.Depth != 2 || child.TraceID != 7 {
		t.Fatalf("child ctx wrong: %+v", child)
	}
	if child.Flags != 0 {
		t.Fatalf("flags must not inherit: a retry's children are ordinary spans")
	}
}

func TestWireSpanExpansion(t *testing.T) {
	ws := &WireSpan{
		ID: 5, Parent: 2, Op: OpRange, Flags: FlagHedge, Depth: 3,
		Peer: 11, Path: "0110", MsgsIn: 4, BytesIn: 400, Stalls: 1, Rows: 9,
		Enq: 10, Srv: 20, Rep: 30,
	}
	sp := ws.Span(77, 1, 123)
	if sp.TraceID != 77 || sp.Kind != "range" || sp.MsgsIn != 4 || sp.MsgsOut != 1 ||
		sp.BytesIn != 400 || sp.BytesOut != 123 || sp.Rows != 9 || sp.Stalls != 1 {
		t.Fatalf("expanded span wrong: %+v", sp)
	}
	if ws.WireSize() <= 0 {
		t.Fatalf("rider must report a positive wire size")
	}
	var nilWS *WireSpan
	if nilWS.WireSize() != 0 {
		t.Fatalf("nil rider must be free")
	}
}

func TestAssembleDedupsAndTotals(t *testing.T) {
	spans := []Span{
		{ID: 1, TraceID: 9, Kind: "query", Depth: 0, MsgsOut: 1, BytesOut: 10},
		{ID: 2, Parent: 1, TraceID: 9, Kind: "range", Depth: 1, MsgsIn: 3, BytesIn: 300},
		{ID: 2, Parent: 1, TraceID: 9, Kind: "range", Depth: 1, MsgsIn: 999}, // duplicate rider: first wins
		{ID: 3, Parent: 2, TraceID: 9, Kind: "page", Depth: 2, MsgsIn: 1, MsgsOut: 1, BytesIn: 50, BytesOut: 60},
	}
	qt := Assemble(9, 1, spans)
	if len(qt.Spans) != 3 {
		t.Fatalf("dedup failed: %d spans", len(qt.Spans))
	}
	msgs, bytes := qt.Totals()
	if msgs != 1+3+2 || bytes != 10+300+110 {
		t.Fatalf("totals = %d msgs / %d bytes", msgs, bytes)
	}
	if orphans := qt.Orphans(); len(orphans) != 0 {
		t.Fatalf("unexpected orphans: %v", orphans)
	}
}

func TestOrphanDetection(t *testing.T) {
	qt := Assemble(9, 1, []Span{
		{ID: 1, TraceID: 9, Kind: "query"},
		{ID: 4, Parent: 77, TraceID: 9, Kind: "lookup", Depth: 2}, // parent never recorded
	})
	orphans := qt.Orphans()
	if len(orphans) != 1 || orphans[0].ID != 4 {
		t.Fatalf("orphans = %v", orphans)
	}
}

// TestCanonicalIgnoresIdentityAndTiming pins the structural-comparison
// contract: two traces of the same work differing only in span ids,
// peer ids and timestamps canonicalize identically, while a structural
// difference (an extra hop) shows.
func TestCanonicalIgnoresIdentityAndTiming(t *testing.T) {
	mk := func(base uint64, peer int64, ts int64) *QueryTrace {
		return Assemble(base, base+1, []Span{
			{ID: base + 1, TraceID: base, Kind: "query", Peer: peer, Enq: ts, Rep: ts + 5},
			{ID: base + 2, Parent: base + 1, TraceID: base, Kind: "stage", Stage: "s0:av-range", Depth: 1, Peer: peer},
			{ID: base + 3, Parent: base + 2, TraceID: base, Kind: "range", Path: "01", Depth: 2, Peer: peer + 7, Enq: ts + 1},
		})
	}
	a, b := mk(100, 1, 1000), mk(200, 42, 99999)
	if a.Canonical(nil) != b.Canonical(nil) {
		t.Fatalf("canonical forms differ:\n%s\n--\n%s", a.Canonical(nil), b.Canonical(nil))
	}
	c := mk(300, 1, 0)
	c.Spans = append(c.Spans, Span{ID: 304, Parent: 303, TraceID: 300, Kind: "page", Path: "01", Depth: 3})
	if a.Canonical(nil) == c.Canonical(nil) {
		t.Fatalf("extra span must change the canonical form")
	}
	// Filtering a subtree drops it and its children.
	keep := func(s Span) bool { return s.Kind != "range" }
	if strings.Contains(c.Canonical(keep), "page") {
		t.Fatalf("dropping a span must drop its subtree:\n%s", c.Canonical(keep))
	}
}

func TestTraceStringMarksFlagsAndCosts(t *testing.T) {
	qt := Assemble(9, 1, []Span{
		{ID: 1, TraceID: 9, Kind: "query", Rows: 3},
		{ID: 2, Parent: 1, TraceID: 9, Kind: "multilookup", Depth: 1, Flags: FlagHedge, MsgsIn: 2, BytesIn: 128, Stalls: 1},
	})
	out := qt.String()
	for _, frag := range []string{"[hedge]", "msgs=2/0", "bytes=128/0", "rows=3", "stalls=1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, out)
		}
	}
}

func TestSpanRingWraps(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 6; i++ {
		r.Add(Span{ID: uint64(i + 1)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring held %d spans, want 4", len(got))
	}
	if got[0].ID != 3 || got[3].ID != 6 {
		t.Fatalf("ring must keep the most recent spans oldest-first: %v", got)
	}
}

func TestTraceLogNewestFirst(t *testing.T) {
	l := NewTraceLog(2)
	l.Add(nil) // ignored
	l.Add(&QueryTrace{TraceID: 1})
	l.Add(&QueryTrace{TraceID: 2})
	l.Add(&QueryTrace{TraceID: 3})
	got := l.Recent()
	if len(got) != 2 || got[0].TraceID != 3 || got[1].TraceID != 2 {
		t.Fatalf("recent = %v", got)
	}
}
