package trace

import (
	"strings"
	"testing"
	"time"

	"unistore/internal/simnet"
)

type nop struct{}

func (nop) HandleMessage(simnet.Message) {}

func TestCaptureIsolatesWindow(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond)})
	a := net.AddNode(nop{})
	b := net.AddNode(nop{})
	// Setup traffic outside the window.
	net.Send(a, b, "setup", nil)
	net.Run()
	span := Capture(net, "op", func() {
		net.Send(a, b, "query", nil)
		net.Send(a, b, "query", nil)
		net.Run()
	})
	if span.Messages != 2 {
		t.Errorf("span captured %d messages, want 2", span.Messages)
	}
	if span.PerKind["setup"] != 0 {
		t.Error("setup traffic leaked into the span")
	}
	if span.Elapsed <= 0 {
		t.Error("elapsed must advance")
	}
	if !strings.Contains(span.String(), "msgs=2") {
		t.Errorf("render: %s", span)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := NewSeries("E2: routing hops", "peers", "avg hops", "latency")
	s.Add(64, 3.17, 250*time.Millisecond)
	s.Add(1024, 5.02, 410*time.Millisecond)
	out := s.String()
	for _, frag := range []string{"E2: routing hops", "peers", "avg hops", "3.17", "1024", "250ms"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
	if len(s.Rows()) != 2 {
		t.Errorf("rows = %d", len(s.Rows()))
	}
}
