// Package trace implements the observability layer behind the paper's
// "logging capabilities: results are traceable, analyzable and (in
// limits) repeatable" — transport-independent, so the same machinery
// measures the deterministic simulator and the real TCP cluster.
//
// Three pieces:
//
//   - Distributed query tracing (span.go): a Ctx rides every overlay
//     request that carries a query id, each serving peer records a
//     Span, and a compact WireSpan piggybacks home on the response so
//     the coordinator assembles a full QueryTrace tree. No extra
//     messages are ever sent for tracing.
//   - A unified metrics Registry (registry.go): lock-cheap atomic
//     counters, gauges and fixed-bucket histograms under stable dotted
//     names, snapshotable and renderable as Prometheus text.
//   - Harness helpers (this file): Capture diffs the simulator's
//     cumulative counters around a closure, and Series renders
//     experiment tables.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"unistore/internal/simnet"
)

// NetDelta is the network-level cost of one operation window: the
// difference of the simulator's cumulative counters across it.
type NetDelta struct {
	Label    string
	Elapsed  time.Duration // simulated time
	Messages int
	Bytes    int
	Dropped  int
	PerKind  map[string]int
}

// Capture measures fn as a before/after delta of the network's
// cumulative counters. Unlike the old reset-run-diff pattern it never
// resets shared state, so concurrent traffic outside the window can
// inflate the delta but can no longer corrupt other observers — and
// two Captures may nest or overlap safely.
func Capture(net *simnet.Network, label string, fn func()) NetDelta {
	before := net.Stats()
	start := net.Now()
	fn()
	after := net.Stats()
	perKind := make(map[string]int)
	for k, v := range after.PerKind {
		if d := v - before.PerKind[k]; d != 0 {
			perKind[k] = d
		}
	}
	return NetDelta{
		Label:    label,
		Elapsed:  net.Now() - start,
		Messages: after.MessagesSent - before.MessagesSent,
		Bytes:    after.BytesSent - before.BytesSent,
		Dropped:  after.MessagesDropped - before.MessagesDropped,
		PerKind:  perKind,
	}
}

// String renders the delta as a log line.
func (s NetDelta) String() string {
	var kinds []string
	for k, v := range s.PerKind {
		kinds = append(kinds, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(kinds)
	return fmt.Sprintf("%s: msgs=%d bytes=%d dropped=%d t=%v [%s]",
		s.Label, s.Messages, s.Bytes, s.Dropped, s.Elapsed, strings.Join(kinds, " "))
}

// Series accumulates rows for one experiment and renders them as an
// aligned table — the harness's table-row printer.
type Series struct {
	Name    string
	Columns []string
	rows    [][]string
}

// NewSeries starts a table with the given column headers.
func NewSeries(name string, columns ...string) *Series {
	return &Series{Name: name, Columns: columns}
}

// Add appends a row (values are formatted with %v).
func (t *Series) Add(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case time.Duration:
			row[i] = x.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the accumulated rows.
func (t *Series) Rows() [][]string { return t.rows }

// String renders the table with aligned columns.
func (t *Series) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Name)
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteString("\n")
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteString("\n")
	for _, r := range t.rows {
		for i, cell := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", w, cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
