// Package trace implements the measurement plumbing behind the paper's
// "logging capabilities: results are traceable, analyzable and (in
// limits) repeatable" — here made fully repeatable by the deterministic
// simulator. A Span captures the network-level cost of one operation
// window (messages, bytes, per-kind counts, simulated latency); the
// experiment harness prints spans as table rows.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"unistore/internal/simnet"
)

// Span is the measured cost of one operation window.
type Span struct {
	Label    string
	Elapsed  time.Duration // simulated time
	Messages int
	Bytes    int
	Dropped  int
	PerKind  map[string]int
}

// Capture measures fn against the network: it resets the network's
// counters, runs fn, and returns the delta. Setup traffic before the
// call is therefore excluded — the per-query isolation the experiments
// need.
func Capture(net *simnet.Network, label string, fn func()) Span {
	net.ResetStats()
	start := net.Now()
	fn()
	s := net.Stats()
	return Span{
		Label:    label,
		Elapsed:  net.Now() - start,
		Messages: s.MessagesSent,
		Bytes:    s.BytesSent,
		Dropped:  s.MessagesDropped,
		PerKind:  s.PerKind,
	}
}

// String renders the span as a log line.
func (s Span) String() string {
	var kinds []string
	for k, v := range s.PerKind {
		kinds = append(kinds, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(kinds)
	return fmt.Sprintf("%s: msgs=%d bytes=%d dropped=%d t=%v [%s]",
		s.Label, s.Messages, s.Bytes, s.Dropped, s.Elapsed, strings.Join(kinds, " "))
}

// Series accumulates spans for one experiment and renders them as an
// aligned table — the harness's table-row printer.
type Series struct {
	Name    string
	Columns []string
	rows    [][]string
}

// NewSeries starts a table with the given column headers.
func NewSeries(name string, columns ...string) *Series {
	return &Series{Name: name, Columns: columns}
}

// Add appends a row (values are formatted with %v).
func (t *Series) Add(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case time.Duration:
			row[i] = x.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the accumulated rows.
func (t *Series) Rows() [][]string { return t.rows }

// String renders the table with aligned columns.
func (t *Series) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Name)
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteString("\n")
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteString("\n")
	for _, r := range t.rows {
		for i, cell := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", w, cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
