package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the process-wide metrics surface: atomic counters,
// gauges and fixed-bucket histograms under stable dotted names. The
// hot path is lock-free — instruments are looked up once and cached by
// their owners; Observe/Add/Set are single atomic operations. The
// registry lock guards only name→instrument maps and is taken on
// creation and snapshot.
//
// Components that already keep their own counters (peerCounters,
// netx.Stats, the WAL) register a collector instead: a callback run at
// snapshot time that copies current values into gauges, so the
// registry never duplicates their bookkeeping.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(*Registry)
	// collectMu serializes collector execution across concurrent
	// snapshots: collectors mirror external counters with a
	// read-modify-write, which two scrapes must not interleave.
	collectMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size histogram: counts per
// upper-bound bucket plus a +Inf overflow, a sum and a count.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per bucket; last is +Inf
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// DefaultLatencyBuckets are millisecond upper bounds spanning sub-ms
// simulated queries to multi-second stragglers.
var DefaultLatencyBuckets = []float64{
	0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// Counter returns (creating if needed) the counter under name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram under name.
// Bounds are fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DefaultLatencyBuckets
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// OnCollect registers a callback run before every snapshot — the hook
// components use to mirror their native counters into gauges.
func (r *Registry) OnCollect(fn func(*Registry)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Snapshot runs the collectors and copies every instrument.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot runs collectors, then returns a copy of all instruments.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	collectors := append([]func(*Registry){}, r.collectors...)
	r.mu.RUnlock()
	r.collectMu.Lock()
	for _, fn := range collectors {
		fn(r)
	}
	r.collectMu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Sub returns the per-window delta against an earlier snapshot:
// counters and histogram counts subtract, gauges keep their current
// value. This is how per-query deltas are taken without resetting
// anything shared.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, h := range s.Histograms {
		d := HistogramSnapshot{Bounds: h.Bounds, Counts: append([]int64{}, h.Counts...), Sum: h.Sum, Count: h.Count}
		if p, ok := prev.Histograms[name]; ok && len(p.Counts) == len(d.Counts) {
			for i := range d.Counts {
				d.Counts[i] -= p.Counts[i]
			}
			d.Sum -= p.Sum
			d.Count -= p.Count
		}
		out.Histograms[name] = d
	}
	return out
}

// promName maps a dotted metric name to a Prometheus-legal series
// name, prefixed with the subsystem namespace.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("unistore_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WritePrometheus renders a fresh snapshot in Prometheus text
// exposition format, series sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", p, p, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		h := s.Histograms[n]
		fmt.Fprintf(w, "# TYPE %s histogram\n", p)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p, fmt.Sprintf("%g", b), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", p, cum)
		fmt.Fprintf(w, "%s_sum %g\n", p, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", p, h.Count)
	}
	return nil
}
