package netx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{From: 0, To: 1, Kind: "pgrid.insert", Body: []byte("hello")},
		{From: 42, To: -1, Kind: "!table", Body: []byte(`{"Addr":"x"}`)},
		{From: 7, To: 7, Kind: "", Body: nil},
		{From: 1, To: 2, Kind: "k", Body: bytes.Repeat([]byte{0xab}, 4096)},
	}
	var buf []byte
	for _, f := range frames {
		var err error
		buf, err = AppendFrame(buf, f)
		if err != nil {
			t.Fatalf("append %+v: %v", f, err)
		}
	}
	r := bytes.NewReader(buf)
	for i, want := range frames {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.From != want.From || got.To != want.To || got.Kind != want.Kind ||
			!bytes.Equal(got.Body, want.Body) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Errorf("after last frame: got %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	f := Frame{From: 1, To: 2, Kind: "k", Body: make([]byte, 1000)}
	buf, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReadFrame(bytes.NewReader(buf), 100)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("got %v, want ErrFrameTooLarge", err)
	}
	// A hostile length prefix must be rejected before allocation.
	huge := binary.BigEndian.AppendUint32(nil, 0xffffffff)
	_, err = ReadFrame(bytes.NewReader(huge), 0)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("hostile length: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameRejectsTruncated(t *testing.T) {
	buf, err := AppendFrame(nil, Frame{From: 3, To: 4, Kind: "pgrid.range", Body: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		_, err := ReadFrame(bytes.NewReader(buf[:cut]), 0)
		if err == nil {
			t.Fatalf("truncation at %d/%d read without error", cut, len(buf))
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d/%d reported clean EOF", cut, len(buf))
		}
	}
}

func TestFrameRejectsBadHeader(t *testing.T) {
	good, err := AppendFrame(nil, Frame{From: 1, To: 2, Kind: "kk", Body: []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong version byte.
	bad := bytes.Clone(good)
	bad[4] = 99
	if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: got %v", err)
	}
	// Kind length pointing past the frame end.
	bad = bytes.Clone(good)
	bad[4+17] = 255
	if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrBadKindLen) {
		t.Errorf("bad kind length: got %v", err)
	}
	// Length prefix smaller than the fixed header.
	short := binary.BigEndian.AppendUint32(nil, uint32(frameFixed-1))
	short = append(short, make([]byte, frameFixed-1)...)
	if _, err := ReadFrame(bytes.NewReader(short), 0); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("short frame: got %v", err)
	}
}
