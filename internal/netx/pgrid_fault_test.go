package netx_test

import (
	"sync"
	"testing"
	"time"

	"unistore/internal/netx"
	"unistore/internal/pgrid"
	"unistore/internal/store"
	"unistore/internal/triple"
)

// netxCluster is an in-process "multi-process" cluster: several netx
// transports on loopback TCP, each hosting a round-robin slice of one
// deterministically planned overlay. Round-robin placement (id mod
// procs) puts the members of each replica group on different
// transports, so killing one transport never destroys a partition.
type netxCluster struct {
	transports []*netx.Transport
	peers      [][]*pgrid.Peer // per transport, in hosted order
}

func startNetxCluster(t *testing.T, procs, parts, replicas int, cfg pgrid.Config) *netxCluster {
	t.Helper()
	specs := pgrid.BalancedSpecs(parts, replicas, cfg, 99)
	c := &netxCluster{}
	for pi := 0; pi < procs; pi++ {
		var seeds []string
		if pi > 0 {
			seeds = []string{c.transports[0].Addr()}
		}
		tr, err := netx.New(netx.Config{
			Seeds: seeds, Seed: int64(pi + 1),
			DialTimeout: time.Second, RedialBackoff: 10 * time.Millisecond,
			Logf: t.Logf,
		}, pgrid.WireCodec{})
		if err != nil {
			t.Fatal(err)
		}
		var hosted []pgrid.NodeSpec
		for _, s := range specs {
			if int(s.ID)%procs == pi {
				hosted = append(hosted, s)
			}
		}
		peers, err := pgrid.BuildFromSpecs(tr, specs, hosted, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr.Start()
		c.transports = append(c.transports, tr)
		c.peers = append(c.peers, peers)
	}
	total := parts * replicas
	for _, tr := range c.transports {
		if !tr.WaitRoutes(total, 10*time.Second) {
			t.Fatalf("bootstrap did not converge: %v", tr.Routes())
		}
	}
	t.Cleanup(func() {
		for _, tr := range c.transports {
			tr.Close()
		}
	})
	return c
}

func (c *netxCluster) flush(t *testing.T) {
	t.Helper()
	for _, tr := range c.transports {
		tr.Flush(10 * time.Second)
	}
}

// loadAges inserts n "age" facts through a transport-0 peer, acked, and
// waits for replication to settle on every transport.
func (c *netxCluster) loadAges(t *testing.T, n int) {
	t.Helper()
	w := c.peers[0][0]
	handles := make([]*pgrid.Handle, 0, n)
	for i := 0; i < n; i++ {
		tr := triple.Triple{OID: oid(i), Attr: "age", Val: triple.N(float64(20 + i%50))}
		handles = append(handles, w.InsertTripleAcked(tr, uint64(i+1), nil))
	}
	for i, h := range handles {
		if res := h.Wait(30 * time.Second); !res.Complete {
			t.Fatalf("insert %d incomplete: %+v", i, res)
		}
	}
	// Acks confirm the primaries; the replica push is fire-and-forget,
	// so drain the pipes before anyone starts killing transports.
	c.flush(t)
	c.flush(t)
}

func oid(i int) string {
	return string([]byte{'o', byte('a' + i/26), byte('a' + i%26)})
}

// scanOrigin picks a transport-0 peer not responsible for the probed
// region, so the scan's pages stream in over TCP.
func (c *netxCluster) scanOrigin(t *testing.T) *pgrid.Peer {
	t.Helper()
	probe := triple.AVKey("age", triple.N(0))
	for _, p := range c.peers[0] {
		if !p.Responsible(probe) {
			return p
		}
	}
	t.Fatal("no transport-0 peer outside the age region")
	return nil
}

func distinctOIDs(entries []store.Entry) map[string]bool {
	seen := make(map[string]bool)
	for _, e := range entries {
		seen[e.Triple.OID] = true
	}
	return seen
}

// TestPGridOverNetxEquivalence runs the overlay's insert/scan path over
// real TCP and checks the results a simnet cluster would produce: every
// inserted fact comes back exactly once from a complete range scan.
func TestPGridOverNetxEquivalence(t *testing.T) {
	cfg := pgrid.DefaultConfig()
	const facts = 40
	c := startNetxCluster(t, 2, 4, 2, cfg)
	c.loadAges(t, facts)

	q := c.scanOrigin(t)
	res := q.RangeQuerySync(triple.ByAV, triple.AVPrefixRange("age"))
	if !res.Complete {
		t.Fatalf("scan incomplete: %+v", res)
	}
	seen := distinctOIDs(res.Entries)
	if len(seen) != facts {
		t.Fatalf("scan found %d distinct facts, want %d", len(seen), facts)
	}
	if len(res.Entries) != facts {
		t.Errorf("scan returned %d entries for %d facts (duplicates)", len(res.Entries), facts)
	}
}

// TestPGridOverNetxMidScanTransportDeath drops a whole transport (all
// its TCP connections and hosted peers) after the first page of a
// paged scan has streamed. The origin's pull hedge and coverage retry
// must finish the scan from the surviving replicas.
func TestPGridOverNetxMidScanTransportDeath(t *testing.T) {
	cfg := pgrid.DefaultConfig()
	cfg.PageSize = 4
	const facts = 40
	c := startNetxCluster(t, 2, 4, 2, cfg)
	c.loadAges(t, facts)

	q := c.scanOrigin(t)
	var (
		mu       sync.Mutex
		streamed []store.Entry
		kill     sync.Once
	)
	h := q.RangeQueryPages(triple.ByAV, triple.AVPrefixRange("age"), func(es []store.Entry) {
		mu.Lock()
		streamed = append(streamed, es...)
		mu.Unlock()
		// First page landed: sever every connection to transport 1,
		// mid-response. Close blocks until its goroutines exit, so run
		// it off the inbox worker delivering this page.
		kill.Do(func() { go c.transports[1].Close() })
	}, nil)
	res := h.Wait(2 * time.Minute)
	if !res.Complete {
		t.Fatalf("scan incomplete after transport death: %+v", res)
	}
	mu.Lock()
	seen := distinctOIDs(streamed)
	mu.Unlock()
	if len(seen) != facts {
		t.Fatalf("streamed %d distinct facts, want %d", len(seen), facts)
	}
	if q.PendingOps() != 0 {
		t.Errorf("pending ops leaked: %d", q.PendingOps())
	}
}

// TestPGridOverNetxQueryAfterTransportDeath kills transport 1 outright
// and then issues fresh queries: the read path's replica failover must
// answer completely from transport 0's halves of every replica group.
func TestPGridOverNetxQueryAfterTransportDeath(t *testing.T) {
	cfg := pgrid.DefaultConfig()
	const facts = 30
	c := startNetxCluster(t, 2, 4, 2, cfg)
	c.loadAges(t, facts)

	if err := c.transports[1].Close(); err != nil {
		t.Fatal(err)
	}
	q := c.scanOrigin(t)
	res := q.RangeQuerySync(triple.ByAV, triple.AVPrefixRange("age"))
	if !res.Complete {
		t.Fatalf("post-death scan incomplete: %+v", res)
	}
	if seen := distinctOIDs(res.Entries); len(seen) != facts {
		t.Fatalf("post-death scan found %d distinct facts, want %d", len(seen), facts)
	}
}
