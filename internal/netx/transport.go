package netx

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"unistore/internal/simnet"
)

// Codec encodes overlay message payloads for the wire. The concrete
// implementation lives with the payload types (pgrid's gob codec);
// injecting it here keeps netx free of protocol imports.
type Codec interface {
	Encode(payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Config parameterizes a Transport.
type Config struct {
	// Listen is the TCP listen address; ":0" picks a free port.
	Listen string
	// Seeds are addresses of already-running transports to bootstrap
	// the NodeID→address routing table from. Empty for the first node.
	Seeds []string
	// Seed feeds the transport's rand source (the overlay draws replica
	// choices and gossip fanout from it).
	Seed int64
	// MaxFrame bounds one wire message; 0 means DefaultMaxFrame.
	MaxFrame int
	// QueueCap bounds each per-address outbound queue and each node
	// inbox; 0 means 1024. Overflow drops frames (the overlay's retry
	// machinery owns reliability).
	QueueCap int
	// DialTimeout bounds one TCP dial; 0 means 2s.
	DialTimeout time.Duration
	// RedialBackoff is the initial pause after a failed dial, doubling
	// to 32x; 0 means 50ms.
	RedialBackoff time.Duration
	// Logf, when set, receives transport diagnostics (one line each).
	Logf func(format string, args ...any)
}

// Stats counts transport activity; all fields are monotone. Queue
// overflow drops split by frame class — losing a small control frame
// (acks, routing, digests) starves the protocol in a different way
// than losing a bulk data page, and the split tells which of the two
// a congested link is actually shedding.
type Stats struct {
	FramesOut, FramesIn              int64
	BytesOut, BytesIn                int64
	Dials, DialErrs                  int64
	DropsQueueCtrl, DropsQueueBulk   int64
	DropsDead, DropsInbox, BadFrames int64
}

// bulkFrameBytes classifies an outbound frame: at or above this many
// encoded bytes it counts as bulk (data pages, state transfer), below
// as control (acks, probes, digests, routing gossip).
const bulkFrameBytes = 1024

// node is one locally hosted overlay node: its handler plus the FIFO
// inbox worker that serializes message handling, mirroring simnet's
// concurrent mode (one handler at a time per node, nodes in parallel).
type node struct {
	id    simnet.NodeID
	h     simnet.Handler
	inbox chan simnet.Message
}

// peerConn is the pooled outbound connection to one remote address: a
// bounded frame queue drained by a writer goroutine that dials lazily
// and redials (with backoff) after any write failure. The pool entry
// persists across reconnects — callers always enqueue on the same
// peerConn and never observe connection state.
type peerConn struct {
	addr string
	q    chan []byte
	// qBytes tracks the queued payload in bytes (atomic): frames add on
	// enqueue and subtract when the writer dequeues, so Load can weigh a
	// backlog of big pages heavier than the same count of tiny acks.
	qBytes int64
}

// Transport carries overlay messages over TCP. It implements
// pgrid.Transport; Concurrent() is always true, so waiters block on
// completion signals rather than pumping an event loop.
type Transport struct {
	cfg   Config
	codec Codec
	ln    net.Listener
	addr  string // resolved listen address
	start time.Time

	mu       sync.Mutex
	nodes    map[simnet.NodeID]*node
	routes   map[simnet.NodeID]string // remote NodeID → address
	conns    map[string]*peerConn
	dead     map[string]bool // addresses with a live dial failure
	reserved []simnet.NodeID // pre-assigned IDs for AddNode, in order
	nextID   simnet.NodeID   // fallback allocator when reserved is empty
	timers   map[int64]*time.Timer
	timerSeq int64
	started  bool
	closed   bool

	rngMu sync.Mutex
	rng   *rand.Rand

	stats   Stats
	closeCh chan struct{}
	wg      sync.WaitGroup // accept loop + readers + writers + workers
}

// New opens the listener and returns a transport ready for AddNode.
// Start launches the accept loop and bootstrap; Close shuts down.
func New(cfg Config, codec Codec) (*Transport, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 50 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netx: listen %s: %w", cfg.Listen, err)
	}
	return &Transport{
		cfg:     cfg,
		codec:   codec,
		ln:      ln,
		addr:    ln.Addr().String(),
		start:   time.Now(),
		nodes:   make(map[simnet.NodeID]*node),
		routes:  make(map[simnet.NodeID]string),
		conns:   make(map[string]*peerConn),
		dead:    make(map[string]bool),
		timers:  make(map[int64]*time.Timer),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		closeCh: make(chan struct{}),
	}, nil
}

// Addr returns the transport's resolved listen address.
func (t *Transport) Addr() string { return t.addr }

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Reserve pre-assigns the NodeIDs the next AddNode calls will return,
// in order. Multi-process assembly computes every node's global ID
// deterministically (pgrid.BalancedSpecs) and reserves the locally
// hosted ones before building peers, so AddNode hands out addresses
// consistent across the whole cluster.
func (t *Transport) Reserve(ids ...simnet.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reserved = append(t.reserved, ids...)
}

// AddNode registers a locally hosted handler and returns its NodeID
// (the next reserved ID, or a local counter when none are reserved).
func (t *Transport) AddNode(h simnet.Handler) simnet.NodeID {
	t.mu.Lock()
	var id simnet.NodeID
	if len(t.reserved) > 0 {
		id = t.reserved[0]
		t.reserved = t.reserved[1:]
	} else {
		id = t.nextID
		t.nextID++
	}
	n := &node{id: id, h: h, inbox: make(chan simnet.Message, t.cfg.QueueCap)}
	t.nodes[id] = n
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		// The inbox is never closed (readers may race a close); the
		// worker exits on the shutdown signal after a final drain.
		for {
			select {
			case msg := <-n.inbox:
				n.h.HandleMessage(msg)
			case <-t.closeCh:
				for {
					select {
					case msg := <-n.inbox:
						n.h.HandleMessage(msg)
					default:
						return
					}
				}
			}
		}
	}()
	return id
}

// Start launches the accept loop and announces this transport's nodes
// to the seed addresses. Call after all local nodes are registered.
func (t *Transport) Start() {
	t.mu.Lock()
	if t.started || t.closed {
		t.mu.Unlock()
		return
	}
	t.started = true
	t.mu.Unlock()

	t.wg.Add(1)
	go t.acceptLoop()
	for _, seed := range t.cfg.Seeds {
		t.sendTable(seed)
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *Transport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	// Close unblocks pending reads by closing the conn via closeCh.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-t.closeCh:
			c.Close()
		case <-stop:
		}
	}()
	for {
		f, err := ReadFrame(c, t.cfg.MaxFrame)
		if err != nil {
			// EOF is a clean close; anything else poisons the stream —
			// framing cannot resync, so drop the connection. The peer's
			// writer will redial.
			if !errors.Is(err, io.EOF) {
				atomic.AddInt64(&t.stats.BadFrames, 1)
				t.logf("netx: %s: dropping conn: %v", t.addr, err)
			}
			return
		}
		atomic.AddInt64(&t.stats.FramesIn, 1)
		atomic.AddInt64(&t.stats.BytesIn, int64(4+frameFixed+len(f.Kind)+len(f.Body)))
		if f.To == controlNode {
			t.handleControl(f)
			continue
		}
		payload, err := t.codec.Decode(f.Body)
		if err != nil {
			atomic.AddInt64(&t.stats.BadFrames, 1)
			t.logf("netx: %s: bad payload (%s): %v", t.addr, f.Kind, err)
			continue
		}
		t.deliverLocal(simnet.Message{
			From: f.From, To: f.To, Kind: f.Kind, Payload: payload,
			Sent: t.Now(), Deliver: t.Now(), Size: len(f.Body),
		})
	}
}

func (t *Transport) deliverLocal(msg simnet.Message) {
	t.mu.Lock()
	n := t.nodes[msg.To]
	closed := t.closed
	t.mu.Unlock()
	if n == nil || closed {
		atomic.AddInt64(&t.stats.DropsDead, 1)
		return
	}
	select {
	case n.inbox <- msg:
	default:
		atomic.AddInt64(&t.stats.DropsInbox, 1)
	}
}

// Send schedules best-effort delivery. Local destinations are handed
// to the node's inbox through the same encode/decode cycle a remote
// message takes, so co-hosted and cross-process delivery have
// identical aliasing semantics (the receiver always owns a copy).
func (t *Transport) Send(from, to simnet.NodeID, kind string, payload any) {
	body, err := t.codec.Encode(payload)
	if err != nil {
		t.logf("netx: %s: encode %s: %v", t.addr, kind, err)
		atomic.AddInt64(&t.stats.BadFrames, 1)
		return
	}
	t.mu.Lock()
	_, local := t.nodes[to]
	addr := t.routes[to]
	t.mu.Unlock()
	if local {
		payload2, err := t.codec.Decode(body)
		if err != nil {
			t.logf("netx: %s: local decode %s: %v", t.addr, kind, err)
			return
		}
		t.deliverLocal(simnet.Message{
			From: from, To: to, Kind: kind, Payload: payload2,
			Sent: t.Now(), Deliver: t.Now(), Size: len(body),
		})
		return
	}
	if addr == "" {
		atomic.AddInt64(&t.stats.DropsDead, 1)
		t.logf("netx: %s: no route to node %d (%s)", t.addr, to, kind)
		return
	}
	t.sendFrame(addr, Frame{From: from, To: to, Kind: kind, Body: body})
}

func (t *Transport) sendFrame(addr string, f Frame) {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		t.logf("netx: %s: frame %s: %v", t.addr, f.Kind, err)
		return
	}
	pc := t.conn(addr)
	if pc == nil {
		atomic.AddInt64(&t.stats.DropsDead, 1)
		return
	}
	select {
	case pc.q <- buf:
		atomic.AddInt64(&pc.qBytes, int64(len(buf)))
		atomic.AddInt64(&t.stats.FramesOut, 1)
		atomic.AddInt64(&t.stats.BytesOut, int64(len(buf)))
	default:
		if len(buf) >= bulkFrameBytes {
			atomic.AddInt64(&t.stats.DropsQueueBulk, 1)
		} else {
			atomic.AddInt64(&t.stats.DropsQueueCtrl, 1)
		}
	}
}

// conn returns the pooled outbound connection for addr, creating its
// writer on first use. The entry is reused across reconnects.
func (t *Transport) conn(addr string) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	pc := t.conns[addr]
	if pc == nil {
		pc = &peerConn{addr: addr, q: make(chan []byte, t.cfg.QueueCap)}
		t.conns[addr] = pc
		t.wg.Add(1)
		go t.writeLoop(pc)
	}
	return pc
}

func (t *Transport) writeLoop(pc *peerConn) {
	defer t.wg.Done()
	var c net.Conn
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	for {
		var buf []byte
		select {
		case <-t.closeCh:
			// Graceful shutdown: flush whatever is queued on the live
			// connection, then exit. No redial during drain.
			for {
				select {
				case buf = <-pc.q:
					atomic.AddInt64(&pc.qBytes, -int64(len(buf)))
					if c == nil {
						var err error
						c, err = net.DialTimeout("tcp", pc.addr, t.cfg.DialTimeout)
						if err != nil {
							return
						}
					}
					c.SetWriteDeadline(time.Now().Add(t.cfg.DialTimeout))
					if _, err := c.Write(buf); err != nil {
						return
					}
				default:
					return
				}
			}
		case buf = <-pc.q:
			atomic.AddInt64(&pc.qBytes, -int64(len(buf)))
		}
		// Write with bounded redial: a frame survives reconnects but is
		// dropped after repeated dial failures — reliability belongs to
		// the overlay's retries, not the transport.
		backoff := t.cfg.RedialBackoff
		for attempt := 0; ; attempt++ {
			if c == nil {
				var err error
				c, err = net.DialTimeout("tcp", pc.addr, t.cfg.DialTimeout)
				if err != nil {
					atomic.AddInt64(&t.stats.DialErrs, 1)
					t.setDead(pc.addr, true)
					if attempt >= 3 {
						atomic.AddInt64(&t.stats.DropsDead, 1)
						break
					}
					select {
					case <-t.closeCh:
						return
					case <-time.After(backoff):
					}
					if backoff < 32*t.cfg.RedialBackoff {
						backoff *= 2
					}
					continue
				}
				atomic.AddInt64(&t.stats.Dials, 1)
				t.setDead(pc.addr, false)
			}
			c.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if _, err := c.Write(buf); err == nil {
				break
			}
			// Broken connection: drop it and retry the same frame on a
			// fresh dial (reconnect reuses this pool entry).
			c.Close()
			c = nil
			t.setDead(pc.addr, true)
		}
	}
}

func (t *Transport) setDead(addr string, dead bool) {
	t.mu.Lock()
	if dead {
		t.dead[addr] = true
	} else {
		delete(t.dead, addr)
	}
	t.mu.Unlock()
}

// --- pgrid.Transport surface --------------------------------------------

// Now is wall-clock time since the transport started.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// WallTimeout is the identity: protocol time is wall time here.
func (t *Transport) WallTimeout(d time.Duration) time.Duration { return d }

// Concurrent reports asynchronous delivery; always true.
func (t *Transport) Concurrent() bool { return true }

// After schedules fn once after d. Timers are tracked so Close can
// cancel the unexpired ones (hedge and deadline timers are minutes
// long; a daemon must not hold them past shutdown).
func (t *Transport) After(d time.Duration, fn func()) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.timerSeq++
	seq := t.timerSeq
	timer := time.AfterFunc(d, func() {
		t.mu.Lock()
		delete(t.timers, seq)
		t.mu.Unlock()
		fn()
	})
	t.timers[seq] = timer
	t.mu.Unlock()
}

// Alive reports advisory liveness: local nodes are alive; remote nodes
// are alive unless their address has a standing dial failure. Unknown
// nodes are reported alive (no evidence either way).
func (t *Transport) Alive(id simnet.NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.nodes[id]; ok {
		return !t.closed
	}
	addr, ok := t.routes[id]
	if !ok {
		return true
	}
	return !t.dead[addr]
}

// Load is the advisory backlog: a local node's inbox depth, or the
// outbound queue depth toward a remote node's address weighted by the
// queued payload (one extra unit per KiB parked), so ten queued bulk
// pages read as more pressure than ten queued acks and replica
// selection steers around payload congestion, not just frame counts.
func (t *Transport) Load(id simnet.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.nodes[id]; ok {
		return len(n.inbox)
	}
	if addr, ok := t.routes[id]; ok {
		if pc, ok := t.conns[addr]; ok {
			return len(pc.q) + int(atomic.LoadInt64(&pc.qBytes)/1024)
		}
	}
	return 0
}

// Seeded randomness, locked for concurrent use.

func (t *Transport) Intn(k int) int {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Intn(k)
}

func (t *Transport) Int63() int64 {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Int63()
}

func (t *Transport) Float64() float64 {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Float64()
}

func (t *Transport) Perm(k int) []int {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Perm(k)
}

// Stats returns a snapshot of the activity counters.
func (t *Transport) Stats() Stats {
	return Stats{
		FramesOut:      atomic.LoadInt64(&t.stats.FramesOut),
		FramesIn:       atomic.LoadInt64(&t.stats.FramesIn),
		BytesOut:       atomic.LoadInt64(&t.stats.BytesOut),
		BytesIn:        atomic.LoadInt64(&t.stats.BytesIn),
		Dials:          atomic.LoadInt64(&t.stats.Dials),
		DialErrs:       atomic.LoadInt64(&t.stats.DialErrs),
		DropsQueueCtrl: atomic.LoadInt64(&t.stats.DropsQueueCtrl),
		DropsQueueBulk: atomic.LoadInt64(&t.stats.DropsQueueBulk),
		DropsDead:      atomic.LoadInt64(&t.stats.DropsDead),
		DropsInbox:     atomic.LoadInt64(&t.stats.DropsInbox),
		BadFrames:      atomic.LoadInt64(&t.stats.BadFrames),
	}
}

// Routes returns a copy of the NodeID→address table (plus local nodes
// mapped to this transport's own address).
func (t *Transport) Routes() map[simnet.NodeID]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[simnet.NodeID]string, len(t.routes)+len(t.nodes))
	for id, addr := range t.routes {
		out[id] = addr
	}
	for id := range t.nodes {
		out[id] = t.addr
	}
	return out
}

// WaitRoutes blocks until the routing table covers at least n nodes
// (local included) or the timeout elapses; it reports whether coverage
// was reached. Daemons call it after Start before serving traffic.
func (t *Transport) WaitRoutes(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if len(t.Routes()) >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Flush waits until every outbound queue and node inbox is empty and
// stays empty for a settle interval, or the timeout elapses; it
// reports whether the transport quiesced. In-flight frames on the TCP
// stream are not observable — callers pair Flush on the sender with
// Flush on the receiver (the integration barrier does both).
func (t *Transport) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	settled := 0
	for {
		if t.idle() {
			settled++
			if settled >= 3 {
				return true
			}
		} else {
			settled = 0
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (t *Transport) idle() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, pc := range t.conns {
		if len(pc.q) > 0 {
			return false
		}
	}
	for _, n := range t.nodes {
		if len(n.inbox) > 0 {
			return false
		}
	}
	return true
}

// Close shuts the transport down: stops accepting, drains outbound
// queues onto live connections, cancels unexpired timers, and waits
// for every goroutine (accept loop, readers, writers, inbox workers)
// to exit. Safe to call once; messages sent after Close are dropped.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, timer := range t.timers {
		timer.Stop()
	}
	t.timers = map[int64]*time.Timer{}
	t.mu.Unlock()

	close(t.closeCh) // writers drain, readers unblock, workers wind down
	t.ln.Close()     // accept loop exits
	t.wg.Wait()
	return nil
}

// --- bootstrap ----------------------------------------------------------

// tableMsg is the routing-gossip control payload: the sender's address
// and its full NodeID→address view. JSON keeps the control plane
// independent of the payload codec.
type tableMsg struct {
	Addr  string
	Nodes map[simnet.NodeID]string
}

const kindTable = "!table"

// sendTable pushes this transport's full routing view to addr.
func (t *Transport) sendTable(addr string) {
	body, err := json.Marshal(tableMsg{Addr: t.addr, Nodes: t.Routes()})
	if err != nil {
		return
	}
	t.sendFrame(addr, Frame{From: controlNode, To: controlNode, Kind: kindTable, Body: body})
}

// handleControl merges routing gossip. The transport pushes its view
// onward only when the exchange was asymmetric — it learned something,
// or it holds mappings the sender's view lacked. Once all views are
// equal both conditions are false everywhere and the flood stops, so
// convergence is also termination.
func (t *Transport) handleControl(f Frame) {
	if f.Kind != kindTable {
		atomic.AddInt64(&t.stats.BadFrames, 1)
		return
	}
	var msg tableMsg
	if err := json.Unmarshal(f.Body, &msg); err != nil {
		atomic.AddInt64(&t.stats.BadFrames, 1)
		return
	}
	t.mu.Lock()
	learned := false
	for id, addr := range msg.Nodes {
		if addr == t.addr {
			continue // our own nodes route locally
		}
		if _, ok := t.nodes[id]; ok {
			continue
		}
		if t.routes[id] != addr {
			t.routes[id] = addr
			learned = true
		}
	}
	haveMore := false
	for id := range t.nodes {
		if msg.Nodes[id] == "" {
			haveMore = true
		}
	}
	for id := range t.routes {
		if msg.Nodes[id] == "" {
			haveMore = true
		}
	}
	// Collect distinct process addresses to gossip to.
	peers := make(map[string]bool)
	for _, addr := range t.routes {
		peers[addr] = true
	}
	t.mu.Unlock()
	if msg.Addr != "" && msg.Addr != t.addr {
		peers[msg.Addr] = true
	}
	if learned || haveMore {
		for addr := range peers {
			t.sendTable(addr)
		}
	}
}
