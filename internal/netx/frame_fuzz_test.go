package netx

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader. The
// invariants: never panic, never allocate beyond maxFrame, and any
// successfully read frame must re-serialize to bytes the reader parses
// back to the same frame.
func FuzzReadFrame(f *testing.F) {
	seed1, _ := AppendFrame(nil, Frame{From: 0, To: 1, Kind: "pgrid.insert", Body: []byte("hi")})
	seed2, _ := AppendFrame(nil, Frame{From: -1, To: -1, Kind: "!table", Body: []byte("{}")})
	f.Add(seed1)
	f.Add(append(seed1, seed2...))
	f.Add(seed1[:5])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r, maxFrame)
			if err != nil {
				if err == io.EOF && r.Len() != 0 {
					t.Fatalf("clean EOF with %d bytes left", r.Len())
				}
				return
			}
			buf, err := AppendFrame(nil, fr)
			if err != nil {
				t.Fatalf("parsed frame does not re-serialize: %v", err)
			}
			fr2, err := ReadFrame(bytes.NewReader(buf), maxFrame)
			if err != nil {
				t.Fatalf("re-serialized frame does not parse: %v", err)
			}
			if fr2.From != fr.From || fr2.To != fr.To || fr2.Kind != fr.Kind ||
				!bytes.Equal(fr2.Body, fr.Body) {
				t.Fatalf("round-trip mismatch: %+v vs %+v", fr, fr2)
			}
		}
	})
}
