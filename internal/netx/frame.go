// Package netx is the real-network transport: it carries the same
// overlay messages the simulator delivers in-process over TCP
// connections between node processes. It implements pgrid.Transport
// (by method set — netx does not import pgrid) with length-prefixed
// binary framing, a per-address outbound connection pool with
// reconnect-on-failure, seed-address bootstrap, and graceful shutdown
// that drains queued frames.
package netx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"unistore/internal/simnet"
)

// Frame layout (all integers big-endian):
//
//	u32  length   — byte count of everything after this field
//	u8   version  — frameVersion
//	i64  from     — sender NodeID
//	i64  to       — receiver NodeID (controlNode for transport control)
//	u8   kindLen  — length of the kind string
//	...  kind     — message kind (UTF-8)
//	...  body     — encoded payload (length - fixed header - kindLen)
//
// The length prefix is bounded by the transport's max frame size;
// readers reject oversized lengths before allocating and treat any
// short read as a broken connection, so a truncated or hostile stream
// can neither panic the reader nor balloon memory.

const (
	frameVersion = 1

	// frameFixed is the byte count of the fixed fields after the length
	// prefix: version(1) + from(8) + to(8) + kindLen(1).
	frameFixed = 1 + 8 + 8 + 1

	// DefaultMaxFrame bounds a single message on the wire. Query pages
	// are capped well below this by the overlay's page sizing.
	DefaultMaxFrame = 16 << 20

	// maxKindLen bounds the kind string; all real kinds are short
	// dotted identifiers ("pgrid.range", "phys.plan").
	maxKindLen = 255
)

// controlNode is the To address of transport-internal control frames
// (bootstrap/routing gossip). It is outside the valid NodeID space.
const controlNode simnet.NodeID = -1

// Frame is one wire message, decoded as far as the transport cares:
// the body stays opaque bytes until the payload codec runs.
type Frame struct {
	From, To simnet.NodeID
	Kind     string
	Body     []byte
}

var (
	ErrFrameTooLarge = errors.New("netx: frame exceeds max size")
	ErrFrameTooShort = errors.New("netx: frame shorter than fixed header")
	ErrBadVersion    = errors.New("netx: unknown frame version")
	ErrBadKindLen    = errors.New("netx: kind length exceeds frame")
)

// AppendFrame serializes f onto buf and returns the extended slice.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	if len(f.Kind) > maxKindLen {
		return nil, fmt.Errorf("netx: kind %q too long", f.Kind)
	}
	n := frameFixed + len(f.Kind) + len(f.Body)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, frameVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(f.From))
	buf = binary.BigEndian.AppendUint64(buf, uint64(f.To))
	buf = append(buf, byte(len(f.Kind)))
	buf = append(buf, f.Kind...)
	buf = append(buf, f.Body...)
	return buf, nil
}

// ReadFrame reads one frame from r, enforcing maxFrame (0 means
// DefaultMaxFrame). It returns io.EOF only on a clean boundary —
// a stream that ends mid-frame yields io.ErrUnexpectedEOF, and any
// header violation yields a descriptive error; it never panics and
// never allocates more than maxFrame bytes.
func ReadFrame(r io.Reader, maxFrame int) (Frame, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF // clean close between frames
		}
		return Frame{}, fmt.Errorf("netx: read frame length: %w", err)
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:]))
	if n > maxFrame {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	if n < frameFixed {
		return Frame{}, fmt.Errorf("%w: %d < %d", ErrFrameTooShort, n, frameFixed)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("netx: read frame body: %w", err)
	}
	if buf[0] != frameVersion {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadVersion, buf[0])
	}
	f := Frame{
		From: simnet.NodeID(int64(binary.BigEndian.Uint64(buf[1:9]))),
		To:   simnet.NodeID(int64(binary.BigEndian.Uint64(buf[9:17]))),
	}
	kindLen := int(buf[17])
	if frameFixed+kindLen > n {
		return Frame{}, fmt.Errorf("%w: %d in frame of %d", ErrBadKindLen, kindLen, n)
	}
	f.Kind = string(buf[frameFixed : frameFixed+kindLen])
	f.Body = buf[frameFixed+kindLen:]
	return f, nil
}
