package netx

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"unistore/internal/simnet"
)

// gobCodec is the test stand-in for pgrid's payload codec.
type gobCodec struct{}

type testPayload struct{ S string }

func init() { gob.Register(testPayload{}) }

func (gobCodec) Encode(payload any) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&payload)
	return buf.Bytes(), err
}

func (gobCodec) Decode(data []byte) (any, error) {
	var p any
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p)
	return p, err
}

// recorder collects delivered messages and signals each arrival.
type recorder struct {
	mu   sync.Mutex
	msgs []simnet.Message
	ch   chan simnet.Message
}

func newRecorder() *recorder { return &recorder{ch: make(chan simnet.Message, 128)} }

func (r *recorder) HandleMessage(msg simnet.Message) {
	r.mu.Lock()
	r.msgs = append(r.msgs, msg)
	r.mu.Unlock()
	r.ch <- msg
}

func (r *recorder) wait(t *testing.T, timeout time.Duration) simnet.Message {
	t.Helper()
	select {
	case m := <-r.ch:
		return m
	case <-time.After(timeout):
		t.Fatal("timed out waiting for message")
		return simnet.Message{}
	}
}

func newTestTransport(t *testing.T, seeds ...string) *Transport {
	t.Helper()
	tr, err := New(Config{Listen: "127.0.0.1:0", Seeds: seeds, Seed: 1,
		DialTimeout: time.Second, RedialBackoff: 10 * time.Millisecond}, gobCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTransportLocalAndRemoteDelivery(t *testing.T) {
	a := newTestTransport(t)
	defer a.Close()
	ra0, ra1 := newRecorder(), newRecorder()
	a.Reserve(0, 1)
	a.AddNode(ra0)
	a.AddNode(ra1)
	a.Start()

	b := newTestTransport(t, a.Addr())
	defer b.Close()
	rb := newRecorder()
	b.Reserve(2)
	b.AddNode(rb)
	b.Start()

	if !a.WaitRoutes(3, 5*time.Second) || !b.WaitRoutes(3, 5*time.Second) {
		t.Fatalf("bootstrap did not converge: a=%v b=%v", a.Routes(), b.Routes())
	}

	// Local delivery (same transport).
	a.Send(0, 1, "test.local", testPayload{S: "x"})
	if m := ra1.wait(t, 5*time.Second); m.Payload.(testPayload).S != "x" {
		t.Errorf("local payload: %+v", m.Payload)
	}
	// Remote delivery, both directions.
	a.Send(0, 2, "test.remote", testPayload{S: "a->b"})
	if m := rb.wait(t, 5*time.Second); m.Payload.(testPayload).S != "a->b" || m.From != 0 {
		t.Errorf("remote payload: %+v", m)
	}
	b.Send(2, 0, "test.remote", testPayload{S: "b->a"})
	if m := ra0.wait(t, 5*time.Second); m.Payload.(testPayload).S != "b->a" || m.From != 2 {
		t.Errorf("remote payload: %+v", m)
	}
}

func TestTransportBootstrapTransitive(t *testing.T) {
	// C seeds only on B, B seeds only on A: routes to A's nodes must
	// reach C through gossip, not direct seeding.
	a := newTestTransport(t)
	defer a.Close()
	a.Reserve(0)
	a.AddNode(newRecorder())
	a.Start()

	b := newTestTransport(t, a.Addr())
	defer b.Close()
	b.Reserve(1)
	b.AddNode(newRecorder())
	b.Start()

	c := newTestTransport(t, b.Addr())
	defer c.Close()
	rc := newRecorder()
	c.Reserve(2)
	c.AddNode(rc)
	c.Start()

	for _, tr := range []*Transport{a, b, c} {
		if !tr.WaitRoutes(3, 5*time.Second) {
			t.Fatalf("%s did not learn all routes: %v", tr.Addr(), tr.Routes())
		}
	}
	a.Send(0, 2, "test.hop", testPayload{S: "far"})
	if m := rc.wait(t, 5*time.Second); m.Payload.(testPayload).S != "far" {
		t.Errorf("transitive delivery: %+v", m)
	}
}

func TestTransportReconnectReusesPool(t *testing.T) {
	a := newTestTransport(t)
	defer a.Close()
	a.Reserve(0)
	a.AddNode(newRecorder())
	a.Start()

	b := newTestTransport(t, a.Addr())
	rb := newRecorder()
	b.Reserve(1)
	b.AddNode(rb)
	b.Start()
	if !a.WaitRoutes(2, 5*time.Second) {
		t.Fatal("bootstrap did not converge")
	}

	a.Send(0, 1, "test.one", testPayload{S: "1"})
	rb.wait(t, 5*time.Second)
	a.mu.Lock()
	pc1 := a.conns[b.Addr()]
	a.mu.Unlock()
	if pc1 == nil {
		t.Fatal("no pooled connection after first send")
	}
	dials1 := a.Stats().Dials

	// Kill the receiving transport; its replacement reuses the address,
	// so the sender's pool entry must carry over with a fresh dial.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := New(Config{Listen: addr, Seed: 2,
		DialTimeout: time.Second, RedialBackoff: 10 * time.Millisecond}, gobCodec{})
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer b2.Close()
	rb2 := newRecorder()
	b2.Reserve(1)
	b2.AddNode(rb2)
	b2.Start()

	// The sender discovers the break only on write; retry until the
	// redial lands a message on the revived receiver.
	deadline := time.Now().Add(10 * time.Second)
	delivered := false
	for !delivered && time.Now().Before(deadline) {
		a.Send(0, 1, "test.two", testPayload{S: "2"})
		select {
		case <-rb2.ch:
			delivered = true
		case <-time.After(200 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no delivery after reconnect")
	}
	a.mu.Lock()
	pc2 := a.conns[addr]
	poolSize := len(a.conns)
	a.mu.Unlock()
	if pc2 != pc1 {
		t.Error("reconnect created a new pool entry instead of reusing it")
	}
	if poolSize != 1 {
		t.Errorf("pool grew to %d entries", poolSize)
	}
	if a.Stats().Dials <= dials1 {
		t.Error("no fresh dial recorded after reconnect")
	}
	if !a.Alive(1) {
		t.Error("node 1 still marked dead after successful reconnect")
	}
}

func TestTransportDeadPeerDetection(t *testing.T) {
	a := newTestTransport(t)
	defer a.Close()
	a.Reserve(0)
	a.AddNode(newRecorder())
	a.Start()

	b := newTestTransport(t, a.Addr())
	b.Reserve(1)
	b.AddNode(newRecorder())
	b.Start()
	if !a.WaitRoutes(2, 5*time.Second) {
		t.Fatal("bootstrap did not converge")
	}
	b.Close()

	if !a.Alive(1) {
		t.Fatal("peer marked dead before any failure observed")
	}
	// Sends to the closed address must eventually mark it dead without
	// blocking the caller.
	deadline := time.Now().Add(10 * time.Second)
	for a.Alive(1) && time.Now().Before(deadline) {
		a.Send(0, 1, "test.dead", testPayload{S: "x"})
		time.Sleep(50 * time.Millisecond)
	}
	if a.Alive(1) {
		t.Error("peer with failing dials never marked dead")
	}
}

func TestTransportCloseLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	a := newTestTransport(t)
	a.Reserve(0)
	a.AddNode(newRecorder())
	a.Start()
	b := newTestTransport(t, a.Addr())
	rb := newRecorder()
	b.Reserve(1)
	b.AddNode(rb)
	b.Start()
	a.WaitRoutes(2, 5*time.Second)
	a.Send(0, 1, "test.x", testPayload{S: "x"})
	rb.wait(t, 5*time.Second)
	// Leave a long timer pending: Close must cancel it, not wait on it.
	a.After(time.Hour, func() {})

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Goroutine counts settle asynchronously (conn teardown).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	after := runtime.NumGoroutine()
	if after > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		stacks := string(buf[:n])
		var leaked []string
		for _, g := range strings.Split(stacks, "\n\n") {
			if strings.Contains(g, "netx.") {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) > 0 {
			t.Errorf("%d goroutines leaked (%d -> %d):\n%s",
				len(leaked), before, after, strings.Join(leaked, "\n\n"))
		}
	}
}

func TestTransportSendAfterCloseDrops(t *testing.T) {
	a := newTestTransport(t)
	a.Reserve(0)
	a.AddNode(newRecorder())
	a.Start()
	a.Close()
	// Must not panic or block.
	a.Send(0, 1, "test.after", testPayload{S: "x"})
	a.After(time.Millisecond, func() { t.Error("timer fired after Close") })
	time.Sleep(20 * time.Millisecond)
}

func TestTransportConcurrentSends(t *testing.T) {
	a := newTestTransport(t)
	defer a.Close()
	a.Reserve(0)
	a.AddNode(newRecorder())
	a.Start()
	b := newTestTransport(t, a.Addr())
	defer b.Close()
	rb := newRecorder()
	rb.ch = make(chan simnet.Message, 2048)
	b.Reserve(1)
	b.AddNode(rb)
	b.Start()
	if !a.WaitRoutes(2, 5*time.Second) {
		t.Fatal("bootstrap did not converge")
	}

	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Send(0, 1, "test.cc", testPayload{S: fmt.Sprintf("%d/%d", s, i)})
			}
		}(s)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rb.mu.Lock()
		n := len(rb.msgs)
		rb.mu.Unlock()
		if n == senders*per {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	rb.mu.Lock()
	n := len(rb.msgs)
	rb.mu.Unlock()
	t.Fatalf("got %d/%d messages", n, senders*per)
}
