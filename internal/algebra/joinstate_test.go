package algebra

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"unistore/internal/triple"
)

// canonRows renders bindings order-independently.
func canonRows(bs []Binding) []string {
	var out []string
	for _, b := range bs {
		var vars []string
		for k := range b {
			vars = append(vars, k)
		}
		sort.Strings(vars)
		s := ""
		for _, v := range vars {
			s += v + "=" + b[v].Lexical() + ";"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestJoinStateMatchesHashJoin checks the incremental symmetric join
// produces exactly HashJoin's rows for random inputs, interleaved in
// random arrival order — the contract the streaming executor depends
// on.
func TestJoinStateMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		var on []string
		if rng.Intn(4) > 0 {
			on = []string{"k"}
		}
		mk := func(n int, side string) []Binding {
			out := make([]Binding, n)
			for i := range out {
				b := Binding{
					"k":  triple.N(float64(rng.Intn(5))),
					side: triple.N(float64(i)),
				}
				if rng.Intn(3) == 0 {
					// A shared non-key variable: Compatible must gate.
					b["s"] = triple.N(float64(rng.Intn(2)))
				}
				out[i] = b
			}
			return out
		}
		left := mk(rng.Intn(8), "l")
		right := mk(rng.Intn(8), "r")
		want := canonRows(HashJoin(left, right, on))

		j := NewJoinState(on)
		var got []Binding
		li, ri := 0, 0
		for li < len(left) || ri < len(right) {
			if ri >= len(right) || (li < len(left) && rng.Intn(2) == 0) {
				got = append(got, j.AddLeft(left[li])...)
				li++
			} else {
				got = append(got, j.AddRight(right[ri])...)
				ri++
			}
		}
		if !reflect.DeepEqual(canonRows(got), want) {
			t.Fatalf("iter %d (on=%v):\n got %v\nwant %v", iter, on, canonRows(got), want)
		}
		if j.LeftCount() != len(left) || len(j.LeftRows()) != len(left) {
			t.Fatalf("iter %d: left accounting %d/%d want %d", iter,
				j.LeftCount(), len(j.LeftRows()), len(left))
		}
	}
}
