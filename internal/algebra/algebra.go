// Package algebra implements UniStore's logical query algebra: the
// traditional relational operators (selection, projection, join) plus
// the special operators of the paper — similarity selection (edist),
// ranking (top-N) and skyline — over variable bindings produced by
// triple patterns. All operators apply uniformly to instance, schema
// and metadata triples, because patterns may put variables in any
// position.
//
// The package also provides a reference in-memory executor used to
// validate the distributed physical engine: both must produce the same
// bindings for the same query over the same triples.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"unistore/internal/agg"
	"unistore/internal/qgram"
	"unistore/internal/ranking"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// Binding maps variable names to values. OIDs bind as string values.
type Binding map[string]triple.Value

// Clone copies a binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Compatible reports whether two bindings agree on every shared
// variable — the natural-join condition.
func (b Binding) Compatible(o Binding) bool {
	for k, v := range b {
		if ov, ok := o[k]; ok && !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Merge returns the union of two compatible bindings.
func (b Binding) Merge(o Binding) Binding {
	m := b.Clone()
	for k, v := range o {
		m[k] = v
	}
	return m
}

// Key renders the binding's values for the given variables as a
// hashable string (join key).
func Key(b Binding, vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		val := b[v]
		sb.WriteString(val.Lexical())
		sb.WriteByte(0)
	}
	return sb.String()
}

// --- Logical plan -----------------------------------------------------------

// Plan is a logical operator tree.
type Plan interface {
	fmt.Stringer
	// Inputs returns child plans (nil for leaves).
	Inputs() []Plan
}

// PatternScan is the leaf operator: produce bindings for one triple
// pattern.
type PatternScan struct {
	Pat vql.Pattern
}

// Join is the natural join of two subplans on their shared variables.
type Join struct {
	L, R Plan
	// On lists the shared variables (computed by Build).
	On []string
}

// Select filters bindings by a boolean expression.
type Select struct {
	Input Plan
	Cond  vql.Expr
}

// SimilaritySelect is the pushed-down form of FILTER edist(?v, 'c') < k:
// a similarity selection the physical layer can answer with the q-gram
// index instead of a scan-then-filter.
type SimilaritySelect struct {
	Input  Plan
	Var    string
	Target string
	// MaxDist is the inclusive edit-distance bound (paper: < 3 ⇒ 2).
	MaxDist int
}

// Project keeps only the given variables.
type Project struct {
	Input Plan
	Vars  []string
}

// OrderBy sorts bindings.
type OrderBy struct {
	Input Plan
	Keys  []vql.OrderKey
}

// Limit truncates to N bindings.
type Limit struct {
	Input Plan
	N     int
}

// TopN keeps the N best bindings under the ORDER BY keys without a full
// sort (the ranking operator the paper lists next to skyline).
type TopN struct {
	Input Plan
	Keys  []vql.OrderKey
	N     int
}

// Aggregate groups its input by the GroupBy variables and folds each
// group through the mergeable aggregate states of package agg —
// COUNT / SUM / AVG / MIN / MAX / COUNT DISTINCT. An empty GroupBy is
// a global aggregate (one group, even over zero rows); empty Items is
// DISTINCT over the group variables. Having filters the finalized
// groups and may reference aggregate outputs.
type Aggregate struct {
	Input   Plan
	GroupBy []string
	Items   []agg.Item
	Having  vql.Expr
}

// Skyline keeps the non-dominated bindings.
type Skyline struct {
	Input Plan
	Keys  []vql.SkylineKey
}

func (p *PatternScan) Inputs() []Plan      { return nil }
func (j *Join) Inputs() []Plan             { return []Plan{j.L, j.R} }
func (s *Select) Inputs() []Plan           { return []Plan{s.Input} }
func (s *SimilaritySelect) Inputs() []Plan { return []Plan{s.Input} }
func (p *Project) Inputs() []Plan          { return []Plan{p.Input} }
func (o *OrderBy) Inputs() []Plan          { return []Plan{o.Input} }
func (l *Limit) Inputs() []Plan            { return []Plan{l.Input} }
func (t *TopN) Inputs() []Plan             { return []Plan{t.Input} }
func (a *Aggregate) Inputs() []Plan        { return []Plan{a.Input} }
func (s *Skyline) Inputs() []Plan          { return []Plan{s.Input} }

func (p *PatternScan) String() string { return "scan" + p.Pat.String() }
func (j *Join) String() string {
	return fmt.Sprintf("(%s ⋈[%s] %s)", j.L, strings.Join(j.On, ","), j.R)
}
func (s *Select) String() string { return fmt.Sprintf("σ[%s](%s)", s.Cond, s.Input) }
func (s *SimilaritySelect) String() string {
	return fmt.Sprintf("σ~[edist(?%s,'%s')<=%d](%s)", s.Var, s.Target, s.MaxDist, s.Input)
}
func (p *Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Vars, ","), p.Input)
}
func (o *OrderBy) String() string {
	parts := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		parts[i] = k.String()
	}
	return fmt.Sprintf("sort[%s](%s)", strings.Join(parts, ","), o.Input)
}
func (l *Limit) String() string { return fmt.Sprintf("limit[%d](%s)", l.N, l.Input) }
func (t *TopN) String() string  { return fmt.Sprintf("top[%d](%s)", t.N, t.Input) }
func (a *Aggregate) String() string {
	parts := make([]string, 0, len(a.Items))
	for _, it := range a.Items {
		parts = append(parts, it.String())
	}
	s := fmt.Sprintf("γ[%s;%s](%s)", strings.Join(a.GroupBy, ","), strings.Join(parts, ","), a.Input)
	if a.Having != nil {
		s = fmt.Sprintf("σH[%s](%s)", a.Having, s)
	}
	return s
}
func (s *Skyline) String() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.String()
	}
	return fmt.Sprintf("skyline[%s](%s)", strings.Join(parts, ","), s.Input)
}

// --- Plan construction --------------------------------------------------------

// Build compiles a parsed query into a canonical logical plan:
// a left-deep join tree over the patterns (in connectivity order),
// filters applied as early as their variables allow (with similarity
// predicates recognized and pushed down as SimilaritySelect), then
// skyline / ordering / limit, then projection.
func Build(q *vql.Query) (Plan, error) {
	if len(q.Where) == 0 {
		return nil, fmt.Errorf("algebra: query has no patterns")
	}
	patterns := orderPatterns(q.Where)
	var plan Plan = &PatternScan{Pat: patterns[0]}
	bound := map[string]bool{}
	for _, v := range patterns[0].Vars() {
		bound[v] = true
	}
	filters := make([]vql.Expr, len(q.Filters))
	copy(filters, q.Filters)
	applied := make([]bool, len(filters))
	attach := func(p Plan) Plan {
		for i, f := range filters {
			if applied[i] {
				continue
			}
			if !varsCovered(f, bound) {
				continue
			}
			applied[i] = true
			if sim, ok := asSimilarity(f); ok {
				sim.Input = p
				p = sim
			} else {
				p = &Select{Input: p, Cond: f}
			}
		}
		return p
	}
	plan = attach(plan)
	remaining := patterns[1:]
	for len(remaining) > 0 {
		// Prefer a pattern sharing a variable with what is bound.
		pick := -1
		for i, pat := range remaining {
			for _, v := range pat.Vars() {
				if bound[v] {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			pick = 0 // cartesian product: no shared variable exists
		}
		pat := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		var shared []string
		for _, v := range pat.Vars() {
			if bound[v] {
				shared = append(shared, v)
			}
			bound[v] = true
		}
		plan = &Join{L: plan, R: &PatternScan{Pat: pat}, On: shared}
		plan = attach(plan)
	}
	for i := range filters {
		if !applied[i] {
			return nil, fmt.Errorf("algebra: filter %s references unbound variables", filters[i])
		}
	}
	// Aggregation sits between the join/filter pipeline and the
	// ordering tail: after it, only the group variables and the
	// aggregate outputs are visible.
	visible := bound
	project := q.Select
	if HasAggregation(q) {
		if len(q.Skyline) > 0 {
			return nil, fmt.Errorf("algebra: SKYLINE OF cannot combine with aggregation")
		}
		node, outs, err := buildAggregate(q, bound)
		if err != nil {
			return nil, err
		}
		node.Input = plan
		plan = node
		visible = map[string]bool{}
		for _, g := range node.GroupBy {
			visible[g] = true
		}
		for _, o := range outs {
			visible[o] = true
		}
		for _, k := range q.OrderBy {
			if !visible[k.Var] {
				return nil, fmt.Errorf("algebra: ORDER BY ?%s is neither grouped nor an aggregate output", k.Var)
			}
		}
		if len(q.Select) > 0 || len(q.Aggs) > 0 {
			project = append(append([]string{}, q.Select...), outs...)
		}
	}
	if len(q.Skyline) > 0 {
		for _, k := range q.Skyline {
			if !visible[k.Var] {
				return nil, fmt.Errorf("algebra: skyline variable ?%s is unbound", k.Var)
			}
		}
		plan = &Skyline{Input: plan, Keys: q.Skyline}
	}
	switch {
	case q.Top && len(q.OrderBy) > 0 && q.Limit > 0:
		plan = &TopN{Input: plan, Keys: q.OrderBy, N: q.Limit}
	case len(q.OrderBy) > 0:
		plan = &OrderBy{Input: plan, Keys: q.OrderBy}
	}
	if q.Limit > 0 && !(q.Top && len(q.OrderBy) > 0) {
		plan = &Limit{Input: plan, N: q.Limit}
	}
	if len(project) > 0 {
		for _, v := range project {
			if !visible[v] {
				return nil, fmt.Errorf("algebra: selected variable ?%s is unbound", v)
			}
		}
		plan = &Project{Input: plan, Vars: project}
	}
	return plan, nil
}

// HasAggregation reports whether the query needs an Aggregate node:
// aggregate select items, a GROUP BY clause, or SELECT DISTINCT.
func HasAggregation(q *vql.Query) bool {
	return len(q.Aggs) > 0 || len(q.GroupBy) > 0 || q.Distinct
}

// AggregateClauses extracts the validated aggregation clauses of a
// query — the Aggregate node (without input) plus the ordered output
// names — for callers that apply the aggregation to externally
// produced bindings, such as the schema-mapping union path. It returns
// (nil, nil, nil) for non-aggregating queries.
func AggregateClauses(q *vql.Query) (*Aggregate, []string, error) {
	if !HasAggregation(q) {
		return nil, nil, nil
	}
	bound := map[string]bool{}
	for _, v := range q.Vars() {
		bound[v] = true
	}
	return buildAggregate(q, bound)
}

// buildAggregate validates the query's aggregation clauses against the
// pattern-bound variables and constructs the (input-less) Aggregate
// node plus the ordered aggregate output names.
func buildAggregate(q *vql.Query, bound map[string]bool) (*Aggregate, []string, error) {
	groupBy := q.GroupBy
	if len(groupBy) == 0 && len(q.Aggs) == 0 {
		// SELECT DISTINCT: group by the projected variables (all bound
		// variables for SELECT DISTINCT *).
		if len(q.Select) > 0 {
			groupBy = q.Select
		} else {
			groupBy = q.Vars()
		}
	}
	for _, g := range groupBy {
		if !bound[g] {
			return nil, nil, fmt.Errorf("algebra: GROUP BY ?%s is unbound", g)
		}
	}
	grouped := map[string]bool{}
	for _, g := range groupBy {
		grouped[g] = true
	}
	// Non-grouped bare variables in the select list are rejected — the
	// classic SQL rule; every plain projection must be a group key.
	for _, v := range q.Select {
		if !grouped[v] {
			return nil, nil, fmt.Errorf("algebra: selected variable ?%s is neither grouped nor aggregated", v)
		}
	}
	items := make([]agg.Item, 0, len(q.Aggs))
	outs := make([]string, 0, len(q.Aggs))
	for _, a := range q.Aggs {
		if !a.Star && !bound[a.Var] {
			return nil, nil, fmt.Errorf("algebra: aggregate argument ?%s is unbound", a.Var)
		}
		if bound[a.As] {
			return nil, nil, fmt.Errorf("algebra: aggregate output ?%s collides with a pattern variable", a.As)
		}
		items = append(items, agg.Item{
			Func:     aggFunc(a.Func),
			Var:      a.Var,
			Distinct: a.Distinct,
			Out:      a.As,
		})
		outs = append(outs, a.As)
	}
	node := &Aggregate{GroupBy: groupBy, Items: items, Having: q.Having}
	if q.Having != nil {
		visible := map[string]bool{}
		for _, g := range groupBy {
			visible[g] = true
		}
		for _, o := range outs {
			visible[o] = true
		}
		if !varsCovered(q.Having, visible) {
			return nil, nil, fmt.Errorf("algebra: HAVING %s references a variable that is neither grouped nor an aggregate output", q.Having)
		}
	}
	return node, outs, nil
}

// aggFunc maps the syntactic aggregate function to its state kind.
func aggFunc(f vql.AggFunc) agg.Func {
	switch f {
	case vql.AggSum:
		return agg.Sum
	case vql.AggAvg:
		return agg.Avg
	case vql.AggMin:
		return agg.Min
	case vql.AggMax:
		return agg.Max
	default:
		return agg.Count
	}
}

// ExecuteAggregate folds already-produced bindings through an
// Aggregate node — shared by the reference executor and the physical
// tail's centralized fallback.
func ExecuteAggregate(a *Aggregate, in []Binding) []Binding {
	tbl := agg.NewTable(&agg.Spec{GroupBy: a.GroupBy, Items: a.Items})
	for _, b := range in {
		tbl.Add(b)
	}
	return FinalizeAggregate(a.Having, tbl)
}

// FinalizeAggregate turns an accumulated table into result bindings,
// applying the HAVING filter.
func FinalizeAggregate(having vql.Expr, tbl *agg.Table) []Binding {
	rows := tbl.Rows()
	out := make([]Binding, 0, len(rows))
	for _, r := range rows {
		b := Binding(r)
		if having != nil && !EvalExpr(having, b) {
			continue
		}
		out = append(out, b)
	}
	return out
}

// orderPatterns sorts patterns by estimated selectivity: fully-ground
// patterns first, then attribute+value bound, then attribute bound,
// then the rest — the canonical ordering the cost-based optimizer
// refines with statistics.
func orderPatterns(pats []vql.Pattern) []vql.Pattern {
	out := make([]vql.Pattern, len(pats))
	copy(out, pats)
	rank := func(p vql.Pattern) int {
		switch {
		case !p.S.IsVar():
			return 0 // OID lookup: one tuple
		case !p.A.IsVar() && !p.V.IsVar():
			return 1 // exact A#v lookup
		case !p.A.IsVar():
			return 2 // attribute range
		case !p.V.IsVar():
			return 3 // value lookup across attributes
		default:
			return 4 // full scan
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return rank(out[i]) < rank(out[j]) })
	return out
}

// varsCovered reports whether every variable in the expression is bound.
func varsCovered(e vql.Expr, bound map[string]bool) bool {
	ok := true
	walkExprVars(e, func(v string) {
		if !bound[v] {
			ok = false
		}
	})
	return ok
}

func walkExprVars(e vql.Expr, fn func(string)) {
	switch x := e.(type) {
	case vql.Cmp:
		walkOperandVars(x.L, fn)
		walkOperandVars(x.R, fn)
	case vql.And:
		walkExprVars(x.L, fn)
		walkExprVars(x.R, fn)
	case vql.Or:
		walkExprVars(x.L, fn)
		walkExprVars(x.R, fn)
	case vql.Not:
		walkExprVars(x.E, fn)
	case vql.BoolFunc:
		for _, a := range x.Args {
			walkOperandVars(a, fn)
		}
	}
}

func walkOperandVars(o vql.Operand, fn func(string)) {
	switch x := o.(type) {
	case vql.VarOperand:
		fn(x.Name)
	case vql.FuncOperand:
		for _, a := range x.Args {
			walkOperandVars(a, fn)
		}
	}
}

// asSimilarity recognizes edist(?v,'c') < k / <= k (either argument
// order) and converts it to a SimilaritySelect with an inclusive bound.
func asSimilarity(e vql.Expr) (*SimilaritySelect, bool) {
	cmp, ok := e.(vql.Cmp)
	if !ok {
		return nil, false
	}
	fn, ok := cmp.L.(vql.FuncOperand)
	if !ok || fn.Name != "edist" || len(fn.Args) != 2 {
		return nil, false
	}
	lit, ok := cmp.R.(vql.LitOperand)
	if !ok || lit.Val.Kind != triple.KindNumber {
		return nil, false
	}
	var maxDist int
	switch cmp.Op {
	case "<":
		maxDist = int(lit.Val.Num) - 1
	case "<=":
		maxDist = int(lit.Val.Num)
	default:
		return nil, false
	}
	// One argument must be a variable, the other a string literal.
	var v, target string
	switch a := fn.Args[0].(type) {
	case vql.VarOperand:
		v = a.Name
		l, ok := fn.Args[1].(vql.LitOperand)
		if !ok || l.Val.Kind != triple.KindString {
			return nil, false
		}
		target = l.Val.Str
	case vql.LitOperand:
		if a.Val.Kind != triple.KindString {
			return nil, false
		}
		target = a.Val.Str
		vv, ok := fn.Args[1].(vql.VarOperand)
		if !ok {
			return nil, false
		}
		v = vv.Name
	default:
		return nil, false
	}
	if maxDist < 0 {
		maxDist = 0
	}
	return &SimilaritySelect{Var: v, Target: target, MaxDist: maxDist}, true
}

// --- Expression evaluation -----------------------------------------------------

// EvalExpr evaluates a filter against a binding. Unbound variables make
// the expression false (best-effort semantics).
func EvalExpr(e vql.Expr, b Binding) bool {
	switch x := e.(type) {
	case vql.Cmp:
		l, ok1 := evalOperand(x.L, b)
		r, ok2 := evalOperand(x.R, b)
		if !ok1 || !ok2 {
			return false
		}
		return applyCmp(x.Op, l, r)
	case vql.And:
		return EvalExpr(x.L, b) && EvalExpr(x.R, b)
	case vql.Or:
		return EvalExpr(x.L, b) || EvalExpr(x.R, b)
	case vql.Not:
		return !EvalExpr(x.E, b)
	case vql.BoolFunc:
		v, ok := evalFunc(x.Name, x.Args, b)
		if !ok {
			return false
		}
		return v.Kind == triple.KindNumber && v.Num != 0
	}
	return false
}

func applyCmp(op string, l, r triple.Value) bool {
	// Numeric comparison when either side is numeric and the other
	// parses; string comparison otherwise.
	if l.Kind == triple.KindNumber || r.Kind == triple.KindNumber {
		lf, ok1 := l.AsNumber()
		rf, ok2 := r.AsNumber()
		if ok1 && ok2 {
			switch op {
			case "=":
				return lf == rf
			case "!=":
				return lf != rf
			case "<":
				return lf < rf
			case "<=":
				return lf <= rf
			case ">":
				return lf > rf
			case ">=":
				return lf >= rf
			}
			return false
		}
	}
	c := strings.Compare(l.String(), r.String())
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

func evalOperand(o vql.Operand, b Binding) (triple.Value, bool) {
	switch x := o.(type) {
	case vql.VarOperand:
		v, ok := b[x.Name]
		return v, ok
	case vql.LitOperand:
		return x.Val, true
	case vql.FuncOperand:
		return evalFunc(x.Name, x.Args, b)
	}
	return triple.Value{}, false
}

// evalFunc evaluates the built-in scalar functions of VQL.
func evalFunc(name string, args []vql.Operand, b Binding) (triple.Value, bool) {
	vals := make([]triple.Value, len(args))
	for i, a := range args {
		v, ok := evalOperand(a, b)
		if !ok {
			return triple.Value{}, false
		}
		vals[i] = v
	}
	boolVal := func(x bool) (triple.Value, bool) {
		if x {
			return triple.N(1), true
		}
		return triple.N(0), true
	}
	switch name {
	case "edist":
		if len(vals) != 2 {
			return triple.Value{}, false
		}
		return triple.N(float64(qgram.EditDistance(vals[0].String(), vals[1].String()))), true
	case "contains":
		if len(vals) != 2 {
			return triple.Value{}, false
		}
		return boolVal(strings.Contains(vals[0].String(), vals[1].String()))
	case "startswith":
		if len(vals) != 2 {
			return triple.Value{}, false
		}
		return boolVal(strings.HasPrefix(vals[0].String(), vals[1].String()))
	case "endswith":
		if len(vals) != 2 {
			return triple.Value{}, false
		}
		return boolVal(strings.HasSuffix(vals[0].String(), vals[1].String()))
	case "length":
		if len(vals) != 1 {
			return triple.Value{}, false
		}
		return triple.N(float64(len(vals[0].String()))), true
	case "lower":
		if len(vals) != 1 {
			return triple.Value{}, false
		}
		return triple.S(strings.ToLower(vals[0].String())), true
	case "upper":
		if len(vals) != 1 {
			return triple.Value{}, false
		}
		return triple.S(strings.ToUpper(vals[0].String())), true
	}
	return triple.Value{}, false
}

// --- Reference executor ---------------------------------------------------------

// TripleSource resolves a pattern to bindings — the abstraction the
// reference executor scans. The distributed engine implements the same
// contract with overlay operations.
type TripleSource interface {
	ScanPattern(pat vql.Pattern) []Binding
}

// MemSource is an in-memory TripleSource over a triple slice.
type MemSource struct {
	Triples []triple.Triple
}

// ScanPattern matches the pattern against every triple.
func (m *MemSource) ScanPattern(pat vql.Pattern) []Binding {
	var out []Binding
	for _, tr := range m.Triples {
		if b, ok := MatchPattern(pat, tr); ok {
			out = append(out, b)
		}
	}
	return out
}

// MatchPattern unifies a pattern with a triple, returning the binding.
func MatchPattern(pat vql.Pattern, tr triple.Triple) (Binding, bool) {
	b := Binding{}
	bind := func(t vql.Term, v triple.Value) bool {
		if !t.IsVar() {
			return t.Val.Equal(v)
		}
		if old, ok := b[t.Var]; ok {
			return old.Equal(v)
		}
		b[t.Var] = v
		return true
	}
	if !bind(pat.S, triple.S(tr.OID)) {
		return nil, false
	}
	if !bind(pat.A, triple.S(tr.Attr)) {
		return nil, false
	}
	if !bind(pat.V, tr.Val) {
		return nil, false
	}
	return b, true
}

// Execute runs the plan against the source, returning result bindings.
// It is the semantics oracle for the distributed engine.
func Execute(p Plan, src TripleSource) []Binding {
	switch x := p.(type) {
	case *PatternScan:
		return src.ScanPattern(x.Pat)
	case *Join:
		return HashJoin(Execute(x.L, src), Execute(x.R, src), x.On)
	case *Select:
		var out []Binding
		for _, b := range Execute(x.Input, src) {
			if EvalExpr(x.Cond, b) {
				out = append(out, b)
			}
		}
		return out
	case *SimilaritySelect:
		var out []Binding
		for _, b := range Execute(x.Input, src) {
			v, ok := b[x.Var]
			if ok && qgram.WithinDistance(v.String(), x.Target, x.MaxDist) {
				out = append(out, b)
			}
		}
		return out
	case *Project:
		out := make([]Binding, 0, 16)
		for _, b := range Execute(x.Input, src) {
			nb := Binding{}
			for _, v := range x.Vars {
				if val, ok := b[v]; ok {
					nb[v] = val
				}
			}
			out = append(out, nb)
		}
		return out
	case *OrderBy:
		out := Execute(x.Input, src)
		SortBindings(out, x.Keys)
		return out
	case *Limit:
		out := Execute(x.Input, src)
		if len(out) > x.N {
			out = out[:x.N]
		}
		return out
	case *TopN:
		in := Execute(x.Input, src)
		idx := ranking.TopN(x.N, len(in), func(i int) float64 {
			return OrderScore(in[i], x.Keys)
		})
		out := make([]Binding, len(idx))
		for i, j := range idx {
			out[i] = in[j]
		}
		return out
	case *Aggregate:
		return ExecuteAggregate(x, Execute(x.Input, src))
	case *Skyline:
		in := Execute(x.Input, src)
		idx := SkylineIndexes(in, x.Keys)
		out := make([]Binding, len(idx))
		for i, j := range idx {
			out[i] = in[j]
		}
		return out
	}
	return nil
}

// HashJoin naturally joins two binding sets on the given variables
// (cartesian product when on is empty).
func HashJoin(l, r []Binding, on []string) []Binding {
	var out []Binding
	if len(on) == 0 {
		for _, lb := range l {
			for _, rb := range r {
				if lb.Compatible(rb) {
					out = append(out, lb.Merge(rb))
				}
			}
		}
		return out
	}
	idx := make(map[string][]Binding, len(l))
	for _, lb := range l {
		k := Key(lb, on)
		idx[k] = append(idx[k], lb)
	}
	for _, rb := range r {
		for _, lb := range idx[Key(rb, on)] {
			if lb.Compatible(rb) {
				out = append(out, lb.Merge(rb))
			}
		}
	}
	return out
}

// JoinState is an incremental symmetric hash join over two binding
// streams: rows may arrive on either side in any order and every
// matching pair is produced exactly once, so a pipelined executor can
// emit join results as soon as both halves of a pair exist instead of
// materializing either input. Semantics match HashJoin exactly — rows
// pair when they agree on the `on` variables AND are Compatible on
// every other shared variable (an empty `on` list degrades to the
// Compatible-checked cartesian product), and the merged row is
// left.Merge(right).
//
// JoinState is not safe for concurrent use; the executor serializes
// access under its pipeline lock.
type JoinState struct {
	on    []string
	left  map[string][]Binding
	right map[string][]Binding
	// Arrival order per side, for the keyless (cartesian) path.
	leftSeq  []Binding
	rightSeq []Binding
	nLeft    int
}

// NewJoinState creates an empty incremental join on the given shared
// variables.
func NewJoinState(on []string) *JoinState {
	return &JoinState{
		on:    on,
		left:  make(map[string][]Binding),
		right: make(map[string][]Binding),
	}
}

// AddLeft inserts one left row and returns the merged rows it forms
// with every right row seen so far.
func (j *JoinState) AddLeft(b Binding) []Binding {
	j.nLeft++
	if len(j.on) == 0 {
		j.leftSeq = append(j.leftSeq, b)
		var out []Binding
		for _, rb := range j.rightSeq {
			if b.Compatible(rb) {
				out = append(out, b.Merge(rb))
			}
		}
		return out
	}
	j.leftSeq = append(j.leftSeq, b)
	k := Key(b, j.on)
	j.left[k] = append(j.left[k], b)
	var out []Binding
	for _, rb := range j.right[k] {
		if b.Compatible(rb) {
			out = append(out, b.Merge(rb))
		}
	}
	return out
}

// AddRight inserts one right row and returns the merged rows it forms
// with every left row seen so far.
func (j *JoinState) AddRight(b Binding) []Binding {
	if len(j.on) == 0 {
		j.rightSeq = append(j.rightSeq, b)
		var out []Binding
		for _, lb := range j.leftSeq {
			if lb.Compatible(b) {
				out = append(out, lb.Merge(b))
			}
		}
		return out
	}
	k := Key(b, j.on)
	j.right[k] = append(j.right[k], b)
	var out []Binding
	for _, lb := range j.left[k] {
		if lb.Compatible(b) {
			out = append(out, lb.Merge(b))
		}
	}
	return out
}

// LeftRows returns every left row added so far, in arrival order —
// the materialized frontier a mutant plan ships to its next host.
func (j *JoinState) LeftRows() []Binding { return j.leftSeq }

// LeftCount returns how many left rows were added.
func (j *JoinState) LeftCount() int { return j.nLeft }

// SortBindings sorts bindings by the ORDER BY keys (stable).
func SortBindings(bs []Binding, keys []vql.OrderKey) {
	sort.SliceStable(bs, func(i, j int) bool {
		for _, k := range keys {
			c := bs[i][k.Var].Compare(bs[j][k.Var])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// OrderScore maps a binding to a scalar such that ascending score order
// matches the ORDER BY keys — usable by TopN. Only the first key
// contributes magnitude; further keys break ties with tiny offsets, so
// exact multi-key ordering is delegated to OrderBy when precision
// matters.
func OrderScore(b Binding, keys []vql.OrderKey) float64 {
	score := 0.0
	weight := 1.0
	for _, k := range keys {
		v, _ := b[k.Var].AsNumber()
		if k.Desc {
			v = -v
		}
		score += v * weight
		weight /= 1e6
	}
	return score
}

// SkylineIndexes projects bindings onto the skyline dimensions and
// returns the non-dominated indexes.
func SkylineIndexes(bs []Binding, keys []vql.SkylineKey) []int {
	pts := make([][]float64, len(bs))
	dirs := make([]ranking.Direction, len(keys))
	for i, k := range keys {
		if k.Max {
			dirs[i] = ranking.Max
		}
	}
	for i, b := range bs {
		pts[i] = make([]float64, len(keys))
		for j, k := range keys {
			v, _ := b[k.Var].AsNumber()
			pts[i][j] = v
		}
	}
	return ranking.SkylineBNL(pts, dirs)
}
