package algebra

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"unistore/internal/triple"
	"unistore/internal/vql"
)

// paperData builds a small instance of the paper's Fig. 3 schema:
// persons with name/age/num_of_pubs, publications, conferences.
func paperData() []triple.Triple {
	var ts []triple.Triple
	person := func(id, name string, age, pubs float64, titles ...string) {
		ts = append(ts,
			triple.T(id, "name", name),
			triple.TN(id, "age", age),
			triple.TN(id, "num_of_pubs", pubs))
		for _, title := range titles {
			ts = append(ts, triple.T(id, "has_published", title))
		}
	}
	pub := func(id, title, conf string) {
		ts = append(ts,
			triple.T(id, "title", title),
			triple.T(id, "published_in", conf))
	}
	conf := func(id, name, series string, year float64) {
		ts = append(ts,
			triple.T(id, "confname", name),
			triple.T(id, "series", series),
			triple.TN(id, "year", year))
	}
	person("p1", "alice", 28, 10, "Similarity Queries")
	person("p2", "bob", 45, 25, "Progressive Skylines")
	person("p3", "carol", 25, 3, "Universal Storage")
	person("p4", "dave", 33, 25, "Mutant Plans")
	pub("u1", "Similarity Queries", "ICDE 2006")
	pub("u2", "Progressive Skylines", "ICDE 2005")
	pub("u3", "Universal Storage", "VLDB 2006")
	pub("u4", "Mutant Plans", "ICDE 2005")
	conf("c1", "ICDE 2006", "ICDE", 2006)
	conf("c2", "ICDE 2005", "ICDE", 2005)
	conf("c3", "VLDB 2006", "VLDB", 2006)
	return ts
}

func mustPlan(t *testing.T, src string) Plan {
	t.Helper()
	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Build(q)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func run(t *testing.T, src string) []Binding {
	t.Helper()
	return Execute(mustPlan(t, src), &MemSource{Triples: paperData()})
}

func names(bs []Binding, v string) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b[v].String())
	}
	sort.Strings(out)
	return out
}

func TestSinglePatternScan(t *testing.T) {
	bs := run(t, `SELECT ?n WHERE {(?p,'name',?n)}`)
	if got := names(bs, "n"); !reflect.DeepEqual(got, []string{"alice", "bob", "carol", "dave"}) {
		t.Errorf("names = %v", got)
	}
}

func TestGroundPattern(t *testing.T) {
	bs := run(t, `SELECT * WHERE {('p1','age',?a)}`)
	if len(bs) != 1 || bs[0]["a"].Num != 28 {
		t.Fatalf("bindings = %v", bs)
	}
}

func TestSchemaLevelQuery(t *testing.T) {
	// Variable in attribute position: list p1's attributes.
	bs := run(t, `SELECT ?attr WHERE {('p1',?attr,?v)}`)
	got := names(bs, "attr")
	want := []string{"age", "has_published", "name", "num_of_pubs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("attributes = %v", got)
	}
}

func TestJoinTwoPatterns(t *testing.T) {
	bs := run(t, `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a < 30}`)
	if got := names(bs, "n"); !reflect.DeepEqual(got, []string{"alice", "carol"}) {
		t.Errorf("young authors = %v", got)
	}
}

func TestMultiHopJoin(t *testing.T) {
	// Authors published at an ICDE-series conference.
	bs := run(t, `SELECT ?n WHERE {
		(?p,'name',?n) (?p,'has_published',?t)
		(?u,'title',?t) (?u,'published_in',?cn)
		(?c,'confname',?cn) (?c,'series','ICDE')}`)
	if got := names(bs, "n"); !reflect.DeepEqual(got, []string{"alice", "bob", "dave"}) {
		t.Errorf("ICDE authors = %v", got)
	}
}

func TestFilterEdistSimilarity(t *testing.T) {
	// edist(?sr,'ICDE')<3 also admits… nothing else in this corpus, but
	// a typo'd series would match; exact series does.
	bs := run(t, `SELECT ?sr WHERE {(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}`)
	for _, b := range bs {
		if b["sr"].Str == "VLDB" {
			t.Error("VLDB is at distance 4 from ICDE; must be filtered")
		}
	}
	if len(bs) != 2 { // two ICDE conferences
		t.Errorf("similarity matches = %d, want 2", len(bs))
	}
}

func TestSimilarityPushdownRecognized(t *testing.T) {
	p := mustPlan(t, `SELECT ?sr WHERE {(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}`)
	found := false
	var walk func(Plan)
	walk = func(pl Plan) {
		if s, ok := pl.(*SimilaritySelect); ok {
			found = true
			if s.MaxDist != 2 || s.Target != "ICDE" || s.Var != "sr" {
				t.Errorf("similarity select = %+v", s)
			}
		}
		for _, c := range pl.Inputs() {
			walk(c)
		}
	}
	walk(p)
	if !found {
		t.Errorf("edist filter not pushed down: %s", p)
	}
}

func TestPaperSkylineQuery(t *testing.T) {
	// The paper's flagship query restricted to this corpus: skyline of
	// authors over (age MIN, num_of_pubs MAX) among ICDE authors.
	bs := run(t, `SELECT ?n,?age,?cnt WHERE {
		(?p,'name',?n) (?p,'age',?age) (?p,'num_of_pubs',?cnt)
		(?p,'has_published',?t) (?u,'title',?t) (?u,'published_in',?cn)
		(?c,'confname',?cn) (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
	} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`)
	// ICDE authors: alice(28,10), bob(45,25), dave(33,25).
	// bob is dominated by dave (younger, equal pubs).
	got := names(bs, "n")
	if !reflect.DeepEqual(got, []string{"alice", "dave"}) {
		t.Errorf("skyline = %v, want [alice dave]", got)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	bs := run(t, `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)} ORDER BY ?a LIMIT 2`)
	if len(bs) != 2 || bs[0]["n"].Str != "carol" || bs[1]["n"].Str != "alice" {
		t.Errorf("youngest two = %v", bs)
	}
	bs = run(t, `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)} ORDER BY ?a DESC LIMIT 1`)
	if len(bs) != 1 || bs[0]["n"].Str != "bob" {
		t.Errorf("oldest = %v", bs)
	}
}

func TestTopNOperator(t *testing.T) {
	bs := run(t, `SELECT ?n,?c WHERE {(?p,'name',?n) (?p,'num_of_pubs',?c)} ORDER BY ?c DESC TOP 2`)
	if len(bs) != 2 {
		t.Fatalf("top-2 size = %d", len(bs))
	}
	for _, b := range bs {
		if b["c"].Num != 25 {
			t.Errorf("top-2 by pubs = %v", bs)
		}
	}
}

func TestProjectRestrictsVars(t *testing.T) {
	bs := run(t, `SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a)}`)
	for _, b := range bs {
		if _, ok := b["a"]; ok {
			t.Fatalf("projection leaked ?a: %v", b)
		}
		if _, ok := b["n"]; !ok {
			t.Fatalf("projection lost ?n: %v", b)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	bad := []string{
		`SELECT ?zzz WHERE {(?p,'name',?n)}`,                          // unbound select
		`SELECT ?n WHERE {(?p,'name',?n)} ORDER BY SKYLINE OF ?q MIN`, // unbound skyline
		`SELECT ?n WHERE {(?p,'name',?n) FILTER ?zzz > 5}`,            // unbound filter
	}
	for _, src := range bad {
		q, err := vql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Build(q); err == nil {
			t.Errorf("Build(%q) must fail", src)
		}
	}
}

func TestCartesianProductWhenDisconnected(t *testing.T) {
	bs := run(t, `SELECT ?n,?sr WHERE {(?p,'name','alice') (?p,'name',?n) (?c,'series',?sr)}`)
	if len(bs) != 3 { // alice × 3 conference series rows
		t.Errorf("cartesian size = %d, want 3", len(bs))
	}
}

func TestBindingHelpers(t *testing.T) {
	a := Binding{"x": triple.N(1), "y": triple.S("s")}
	b := Binding{"x": triple.N(1), "z": triple.N(9)}
	if !a.Compatible(b) {
		t.Error("bindings agreeing on shared vars must be compatible")
	}
	c := Binding{"x": triple.N(2)}
	if a.Compatible(c) {
		t.Error("conflicting bindings must be incompatible")
	}
	m := a.Merge(b)
	if len(m) != 3 || m["z"].Num != 9 {
		t.Errorf("merge = %v", m)
	}
	clone := a.Clone()
	clone["x"] = triple.N(99)
	if a["x"].Num != 1 {
		t.Error("Clone must not alias")
	}
}

func TestEvalExprFunctions(t *testing.T) {
	b := Binding{"t": triple.S("Universal Storage"), "n": triple.N(7)}
	cases := []struct {
		src  string
		want bool
	}{
		{`contains(?t,'Storage')`, true},
		{`contains(?t,'zzz')`, false},
		{`startswith(?t,'Uni')`, true},
		{`endswith(?t,'age')`, true},
		{`length(?t) > 10`, true},
		{`lower(?t) = 'universal storage'`, true},
		{`upper(?t) = 'UNIVERSAL STORAGE'`, true},
		{`edist(?t,'Universal Storage') = 0`, true},
		{`?n >= 7`, true},
		{`?n != 7`, false},
		{`NOT ?n < 5`, true},
		{`?n < 5 OR contains(?t,'Uni')`, true},
		{`?n < 5 AND contains(?t,'Uni')`, false},
	}
	for _, c := range cases {
		q, err := vql.ParseQuery(`SELECT ?t WHERE {(?x,'a',?t) FILTER ` + c.src + `}`)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := EvalExpr(q.Filters[0], b); got != c.want {
			t.Errorf("EvalExpr(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalUnboundVarIsFalse(t *testing.T) {
	q, _ := vql.ParseQuery(`SELECT ?t WHERE {(?x,'a',?t) FILTER ?zz > 1}`)
	if EvalExpr(q.Filters[0], Binding{}) {
		t.Error("unbound variable must evaluate to false")
	}
}

func TestHashJoinMatchesNestedLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int) []Binding {
		out := make([]Binding, n)
		for i := range out {
			out[i] = Binding{
				"j": triple.N(float64(rng.Intn(5))),
				"x": triple.N(float64(rng.Intn(100))),
			}
		}
		return out
	}
	for iter := 0; iter < 50; iter++ {
		l, r := mk(rng.Intn(20)), mk(rng.Intn(20))
		got := HashJoin(l, r, []string{"j"})
		var want []Binding
		for _, lb := range l {
			for _, rb := range r {
				if lb["j"].Equal(rb["j"]) && lb.Compatible(rb) {
					want = append(want, lb.Merge(rb))
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("hash join size %d != nested loops %d", len(got), len(want))
		}
	}
}

// Property: plan construction covers every pattern exactly once.
func TestBuildCoversAllPatterns(t *testing.T) {
	q, err := vql.ParseQuery(`SELECT * WHERE {
		(?a,'x',?b) (?b,'y',?c) (?d,'z','l') (?a,'w',?d) (?e,'q',?f)}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var walk func(Plan)
	walk = func(pl Plan) {
		if _, ok := pl.(*PatternScan); ok {
			count++
		}
		for _, c := range pl.Inputs() {
			walk(c)
		}
	}
	walk(p)
	if count != 5 {
		t.Errorf("plan has %d scans, want 5: %s", count, p)
	}
}

func TestOrderPatternsSelectivity(t *testing.T) {
	q, err := vql.ParseQuery(`SELECT * WHERE {(?s,?a,?v) (?s,'name',?n) (?s,'age',30) ('p1','x',?y)}`)
	if err != nil {
		t.Fatal(err)
	}
	pats := orderPatterns(q.Where)
	if !(!pats[0].S.IsVar()) {
		t.Errorf("ground-subject pattern must come first: %v", pats)
	}
	last := pats[len(pats)-1]
	if !(last.S.IsVar() && last.A.IsVar() && last.V.IsVar()) {
		t.Errorf("full wildcard must come last: %v", pats)
	}
}

func TestPlanStringRendering(t *testing.T) {
	p := mustPlan(t, `SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a > 18}
		ORDER BY SKYLINE OF ?a MIN LIMIT 3`)
	s := p.String()
	for _, frag := range []string{"π", "skyline", "⋈", "scan", "limit"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan rendering lacks %q: %s", frag, s)
		}
	}
}

func TestExecuteDeterministicOrderIndependence(t *testing.T) {
	// Shuffling the triple corpus must not change the result multiset.
	q, err := vql.ParseQuery(`SELECT ?n WHERE {(?p,'name',?n) (?p,'num_of_pubs',?c) FILTER ?c >= 10}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	data := paperData()
	ref := names(Execute(p, &MemSource{Triples: data}), "n")
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 10; iter++ {
		rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
		got := names(Execute(p, &MemSource{Triples: data}), "n")
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("result depends on data order: %v vs %v", got, ref)
		}
	}
}

func BenchmarkExecutePaperQuery(b *testing.B) {
	q, err := vql.ParseQuery(`SELECT ?n,?age,?cnt WHERE {
		(?p,'name',?n) (?p,'age',?age) (?p,'num_of_pubs',?cnt)
		(?p,'has_published',?t) (?u,'title',?t) (?u,'published_in',?cn)
		(?c,'confname',?cn) (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
	} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`)
	if err != nil {
		b.Fatal(err)
	}
	p, err := Build(q)
	if err != nil {
		b.Fatal(err)
	}
	// Larger corpus.
	var data []triple.Triple
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("p%d", i)
		data = append(data,
			triple.T(id, "name", fmt.Sprintf("author%d", i)),
			triple.TN(id, "age", float64(25+i%40)),
			triple.TN(id, "num_of_pubs", float64(i%30)),
			triple.T(id, "has_published", fmt.Sprintf("title%d", i)))
		u := fmt.Sprintf("u%d", i)
		data = append(data,
			triple.T(u, "title", fmt.Sprintf("title%d", i)),
			triple.T(u, "published_in", fmt.Sprintf("conf%d", i%10)))
	}
	for i := 0; i < 10; i++ {
		c := fmt.Sprintf("c%d", i)
		series := "ICDE"
		if i%2 == 0 {
			series = "VLDB"
		}
		data = append(data,
			triple.T(c, "confname", fmt.Sprintf("conf%d", i)),
			triple.T(c, "series", series))
	}
	src := &MemSource{Triples: data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Execute(p, src)
	}
}
