package algebra

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"unistore/internal/triple"
	"unistore/internal/vql"
)

func aggCorpus() []triple.Triple {
	return []triple.Triple{
		triple.T("p1", "group", "db"), triple.TN("p1", "age", 30),
		triple.T("p2", "group", "db"), triple.TN("p2", "age", 40),
		triple.T("p3", "group", "os"), triple.TN("p3", "age", 20),
		triple.T("p4", "group", "db"), triple.TN("p4", "age", 40),
		triple.T("p5", "group", "os"), // no age triple: unbound ?a in its group row
	}
}

func runRef(t *testing.T, src string, data []triple.Triple) []Binding {
	t.Helper()
	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	lp, err := Build(q)
	if err != nil {
		t.Fatalf("build %q: %v", src, err)
	}
	return Execute(lp, &MemSource{Triples: data})
}

func canonAggRows(bs []Binding) []string {
	var out []string
	for _, b := range bs {
		var vars []string
		for k := range b {
			vars = append(vars, k)
		}
		sort.Strings(vars)
		var sb strings.Builder
		for _, v := range vars {
			sb.WriteString(v + "=" + b[v].Lexical() + ";")
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func TestAggregateCountGroupBy(t *testing.T) {
	got := runRef(t, `SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g`, aggCorpus())
	want := map[string]float64{"db": 3, "os": 2}
	if len(got) != 2 {
		t.Fatalf("got %d groups", len(got))
	}
	for _, b := range got {
		if b["n"].Num != want[b["g"].Str] {
			t.Fatalf("group %s count %v", b["g"].Str, b["n"])
		}
	}
}

func TestAggregateJoinedSumAvgMinMax(t *testing.T) {
	src := `SELECT ?g, sum(?a) AS ?s, avg(?a) AS ?m, min(?a) AS ?lo, max(?a) AS ?hi
		WHERE {(?p,'group',?g) (?p,'age',?a)} GROUP BY ?g`
	got := runRef(t, src, aggCorpus())
	byG := map[string]Binding{}
	for _, b := range got {
		byG[b["g"].Str] = b
	}
	db := byG["db"]
	if db["s"].Num != 110 || db["m"].Num != 110.0/3 || db["lo"].Num != 30 || db["hi"].Num != 40 {
		t.Fatalf("db aggregates wrong: %v", db)
	}
	os := byG["os"]
	// p5 has no age triple, so the join drops it: os aggregates over p3.
	if os["s"].Num != 20 || os["m"].Num != 20 || os["lo"].Num != 20 || os["hi"].Num != 20 {
		t.Fatalf("os aggregates wrong: %v", os)
	}
}

func TestAggregateCountDistinctAndHaving(t *testing.T) {
	src := `SELECT ?g, count(DISTINCT ?a) AS ?d WHERE {(?p,'group',?g) (?p,'age',?a)}
		GROUP BY ?g HAVING ?d >= 2`
	got := runRef(t, src, aggCorpus())
	if len(got) != 1 || got[0]["g"].Str != "db" || got[0]["d"].Num != 2 {
		t.Fatalf("having/distinct wrong: %v", got)
	}
}

func TestAggregateGlobal(t *testing.T) {
	got := runRef(t, `SELECT count(*) WHERE {(?p,'group',?g)}`, aggCorpus())
	if len(got) != 1 || got[0]["count"].Num != 5 {
		t.Fatalf("global count: %v", got)
	}
	// Global aggregate over zero matching rows still yields count 0.
	empty := runRef(t, `SELECT count(*) WHERE {(?p,'nosuch',?g)}`, aggCorpus())
	if len(empty) != 1 || empty[0]["count"].Num != 0 {
		t.Fatalf("empty global count: %v", empty)
	}
}

func TestSelectDistinct(t *testing.T) {
	got := runRef(t, `SELECT DISTINCT ?g WHERE {(?p,'group',?g)}`, aggCorpus())
	want := runRef(t, `SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g`, aggCorpus())
	if len(got) != len(want) {
		t.Fatalf("distinct %d rows, grouped %d", len(got), len(want))
	}
	for _, b := range got {
		if len(b) != 1 {
			t.Fatalf("distinct row carries extra vars: %v", b)
		}
	}
}

func TestAggregateOrderByOutput(t *testing.T) {
	src := `SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g ORDER BY ?n DESC LIMIT 1`
	got := runRef(t, src, aggCorpus())
	if len(got) != 1 || got[0]["g"].Str != "db" || got[0]["n"].Num != 3 {
		t.Fatalf("top group wrong: %v", got)
	}
}

func TestAggregateValidation(t *testing.T) {
	for _, src := range []string{
		`SELECT ?p, count(*) WHERE {(?p,'group',?g)} GROUP BY ?g`,               // bare non-grouped var
		`SELECT ?g, count(*) WHERE {(?p,'group',?g)}`,                           // select without group by
		`SELECT count(?z) WHERE {(?p,'group',?g)}`,                              // unbound argument
		`SELECT count(*) WHERE {(?p,'group',?g)} GROUP BY ?z`,                   // unbound group var
		`SELECT count(*) AS ?g WHERE {(?p,'group',?g)}`,                         // output collides with pattern var
		`SELECT ?g, count(*) WHERE {(?p,'group',?g)} GROUP BY ?g HAVING ?p > 1`, // having on non-grouped var
		`SELECT ?g, count(*) WHERE {(?p,'group',?g)} GROUP BY ?g ORDER BY ?p`,   // order on non-grouped var
	} {
		q, err := vql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Build(q); err == nil {
			t.Errorf("Build accepted %q", src)
		}
	}
}

// TestAggregateEquivalentFormulations: GROUP BY with an explicit
// DISTINCT select must match the grouped formulation row for row.
func TestAggregateEquivalentFormulations(t *testing.T) {
	a := runRef(t, `SELECT DISTINCT ?g, ?a WHERE {(?p,'group',?g) (?p,'age',?a)}`, aggCorpus())
	b := runRef(t, `SELECT ?g, ?a WHERE {(?p,'group',?g) (?p,'age',?a)} GROUP BY ?g, ?a`, aggCorpus())
	if !reflect.DeepEqual(canonAggRows(a), canonAggRows(b)) {
		t.Fatalf("distinct vs group by diverged:\n%v\n%v", canonAggRows(a), canonAggRows(b))
	}
}
