// Package optimizer implements UniStore's cost-based plan selection:
// choosing among the physical implementations of each logical operator
// (lookup vs. range vs. broadcast vs. q-gram access paths), ordering
// the join steps by estimated cost, and deciding where mutant plans
// migrate. Because the same optimizer runs again at every peer hosting
// a migrated plan — with that peer's own statistics — query processing
// is adaptive, as §2 of the paper describes.
//
// Costs are startup-vs-total aware: under a streamable LIMIT/top-k
// tail the final operator is priced at what the early-terminating
// streaming executor will actually pay (cost.Estimate.ScaledToLimit),
// steering plans toward access paths that produce their first tuples
// cheaply instead of ones that must materialize before emitting.
package optimizer

import (
	"math"

	"unistore/internal/cost"
	"unistore/internal/pgrid"
	"unistore/internal/physical"
	"unistore/internal/triple"
	"unistore/internal/vql"
)

// Mode controls mutant plan migration.
type Mode int

// Modes.
const (
	// ModeAuto ships the plan when intermediate results are small
	// enough that moving the plan beats moving the data.
	ModeAuto Mode = iota
	// ModeFetch always pulls data to the coordinating peer.
	ModeFetch
	// ModeShip always migrates the plan to the next step's region.
	ModeShip
)

// AggChoice selects the aggregation execution strategy.
type AggChoice int

// Aggregation strategies.
const (
	// AggAuto prices pushdown (groups shipped) against centralized
	// (rows shipped) and picks the cheaper.
	AggAuto AggChoice = iota
	// AggPushdown forces peer-side partial aggregation wherever the
	// plan shape allows it.
	AggPushdown
	// AggCentralized forces the centralized fallback — rows stream to
	// the coordinator and aggregate there (the benchmarks' baseline).
	AggCentralized
)

// Options tune the optimizer; the demo's "influencing the integrated
// optimizer" (§4) maps to these knobs.
type Options struct {
	Mode Mode
	// Agg selects pushdown vs centralized aggregation (default: cost
	// decides).
	Agg AggChoice
	// UseQGram enables the q-gram access path for similarity
	// predicates (requires the gram index to be populated).
	UseQGram bool
	// Disabled turns cost-based reordering off: the plan executes in
	// compiled order with shape-default strategies.
	Disabled bool
	// ForceStrategy overrides the strategy of every step it can apply
	// to (experiment plan variants). StratAuto means no override.
	ForceStrategy physical.AccessStrategy
	// ShipThreshold is the binding count below which ModeAuto ships.
	ShipThreshold int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Mode: ModeAuto, UseQGram: true, ShipThreshold: 64}
}

// Optimizer holds statistics and options; it implements
// physical.Reoptimizer.
type Optimizer struct {
	Stats *cost.Stats
	Opt   Options
}

// New creates an optimizer over a statistics snapshot.
func New(stats *cost.Stats, opt Options) *Optimizer {
	if opt.ShipThreshold == 0 {
		opt.ShipThreshold = 64
	}
	return &Optimizer{Stats: stats, Opt: opt}
}

// Optimize rewrites a compiled plan in place: strategy selection, join
// ordering and ship decisions. It returns the plan for chaining.
// When the tail is a streamable LIMIT/top-k, operator costs are
// repriced with their startup-vs-total split (cost.ScaledToLimit), so
// plans whose expensive operators can terminate early — range scans
// over access paths that must materialize before producing anything —
// win ties against startup-heavy alternatives like the q-gram path.
func (o *Optimizer) Optimize(p *physical.Plan) *physical.Plan {
	p.Steps = o.order(p.Steps, 0, streamableLimit(p.Tail))
	o.chooseAggStrategy(p)
	return p
}

// EstimatePlan prices an already-optimized plan without reordering it:
// the sequential composition of each step's estimate, with the final
// step repriced for early termination on the tail's streamable limit.
// It is the observability-side readout of the same model Optimize
// chooses by — slow-query logs print it next to a query's observed
// messages and latency, so model drift is visible where it matters.
func (o *Optimizer) EstimatePlan(p *physical.Plan) cost.Estimate {
	limit := streamableLimit(p.Tail)
	var total cost.Estimate
	card := 1.0
	for i, st := range p.Steps {
		stepLimit := 0
		if i == len(p.Steps)-1 {
			stepLimit = limit
		}
		est := o.estimate(st.Strat, st, card, len(st.JoinOn) > 0).ScaledToLimit(stepLimit)
		if i == 0 {
			total = est
		} else {
			total = total.Plus(est)
		}
		card = math.Max(est.Results, 1)
	}
	return total
}

// chooseAggStrategy decides pushdown vs centralized for an aggregating
// tail by pricing groups-shipped against rows-shipped. Pushdown ships
// at most min(groups, partition rows) states per partition; the
// centralized row stream pays for every row but can terminate early
// when the ordering key is the group variable the scan streams in key
// order (the rank-fed group-by), which is the one shape where rows can
// beat states. Forced choices short-circuit the pricing.
func (o *Optimizer) chooseAggStrategy(p *physical.Plan) {
	if !p.Tail.HasAgg() {
		return
	}
	switch o.Opt.Agg {
	case AggPushdown:
		p.Tail.AggPushdown = physical.AggPushdownable(p)
		return
	case AggCentralized:
		p.Tail.AggPushdown = false
		return
	}
	if o.Opt.Disabled || !physical.AggPushdownable(p) {
		return
	}
	st := p.Steps[0]
	est := o.estimate(st.Strat, st, 1, false)
	rows := math.Max(est.Results, 1)
	groups := math.Max(rows*cost.GroupShare, 1)
	attr := ""
	if !st.Pat.A.IsVar() {
		attr = st.Pat.A.Val.Str
	}
	frac := float64(o.Stats.AttrCount(attr)) / math.Max(float64(o.Stats.TotalTriples), 1)
	if st.Strat == physical.StratBroadcast {
		frac = 1
	}
	push := o.Stats.AggRange(frac, rows, groups)
	central := est
	if physical.AggRankStreamable(p) {
		// Rank-fed group-by: the centralized stream stops after the
		// rows of the first Limit groups. The gate mirrors the
		// executor's (the scan must emit the ordering variable in key
		// order), so the discount never credits a plan that would run
		// blocking.
		kRows := int(math.Ceil(rows * float64(p.Tail.Limit) / groups))
		central = central.ScaledToLimit(kRows)
	}
	p.Tail.AggPushdown = push.Messages <= central.Messages
}

// streamableLimit returns the limit the streaming executor can
// terminate on early, or 0 when the tail blocks (skyline, multi-key
// orderings) and every operator must run to completion. An aggregating
// tail's limit counts GROUPS, not rows, so per-step row costs must not
// scale by it — chooseAggStrategy prices the rank-fed group-by case
// itself.
func streamableLimit(t physical.Tail) int {
	if t.Limit <= 0 || len(t.Skyline) > 0 || len(t.OrderBy) > 1 || t.HasAgg() {
		return 0
	}
	return t.Limit
}

// Rechoose implements physical.Reoptimizer: a peer hosting a migrated
// plan re-optimizes the remaining steps with its local view. The
// partition estimate derives from the peer's own trie depth — a purely
// local approximation of network size.
func (o *Optimizer) Rechoose(steps []physical.Step, tail physical.Tail, bindingCount int, peer *pgrid.Peer) []physical.Step {
	if o.Opt.Disabled || len(steps) <= 1 {
		return steps
	}
	local := *o.Stats
	if d := peer.Path().Len(); d > 0 {
		local.Partitions = 1 << uint(min(d, 20))
	}
	lo := &Optimizer{Stats: &local, Opt: o.Opt}
	// The first step is pinned: we are already at (or heading to) its
	// region.
	rest := lo.order(steps[1:], float64(bindingCount), streamableLimit(tail))
	out := make([]physical.Step, 0, len(steps))
	out = append(out, steps[0])
	out = append(out, rest...)
	return out
}

// order greedily sequences steps by estimated cost, recomputing join
// variables, filter attachment and ship flags for the new order.
// prevCard seeds the cardinality estimate (bindings already present);
// limit > 0 reprices the final step for early termination.
func (o *Optimizer) order(steps []physical.Step, prevCard float64, limit int) []physical.Step {
	if len(steps) == 0 {
		return steps
	}
	if o.Opt.Disabled {
		// Strategies only (shape defaults + forced override), original
		// order, no shipping.
		out := make([]physical.Step, len(steps))
		copy(out, steps)
		for i := range out {
			out[i].Strat = o.chooseStrategy(out[i], i > 0 || prevCard > 0, 0)
			out[i].Ship = false
		}
		return out
	}
	// Pool all predicates; they re-attach as variables become bound.
	type pooled struct {
		pat     vql.Pattern
		filters []vql.Expr
		sims    []physical.SimSpec
	}
	pool := make([]pooled, len(steps))
	var allFilters []vql.Expr
	var allSims []physical.SimSpec
	for i, st := range steps {
		pool[i] = pooled{pat: st.Pat}
		allFilters = append(allFilters, st.Filters...)
		allSims = append(allSims, st.Sims...)
	}
	bound := map[string]bool{}
	if prevCard > 0 {
		// Variables bound by earlier (already-executed) steps are
		// unknown here; treat shared variables optimistically by
		// seeding nothing — join vars with prior bindings are
		// recomputed at runtime anyway.
		_ = prevCard
	}
	usedFilters := make([]bool, len(allFilters))
	usedSims := make([]bool, len(allSims))
	remaining := make([]int, len(pool))
	for i := range remaining {
		remaining[i] = i
	}
	var out []physical.Step
	card := math.Max(prevCard, 1)
	for len(remaining) > 0 {
		// Only the final operator of a streamable-limit plan gets the
		// early-termination discount: upstream steps feed joins and run
		// to completion regardless.
		stepLimit := 0
		if len(remaining) == 1 {
			stepLimit = limit
		}
		bestIdx, bestCost := -1, math.Inf(1)
		var bestEst cost.Estimate
		for _, ri := range remaining {
			st := physical.Step{Pat: pool[ri].pat, Sims: simsFor(pool[ri].pat, allSims, usedSims)}
			strat := o.chooseStrategy(st, len(out) > 0, stepLimit)
			est := o.estimate(strat, st, card, connected(pool[ri].pat, bound)).ScaledToLimit(stepLimit)
			// Prefer connected, cheap, selective steps.
			c := est.Messages + est.Results*0.1
			if !connected(pool[ri].pat, bound) && len(bound) > 0 {
				c *= 100 // cartesian products last
			}
			if c < bestCost {
				bestCost, bestIdx, bestEst = c, ri, est
			}
		}
		// Build the chosen step.
		pat := pool[bestIdx].pat
		st := physical.Step{Pat: pat}
		for _, v := range pat.Vars() {
			if bound[v] {
				st.JoinOn = append(st.JoinOn, v)
			}
		}
		st.Sims = takeSims(pat, allSims, usedSims, bound)
		st.Strat = o.chooseStrategy(st, len(out) > 0, stepLimit)
		for _, v := range pat.Vars() {
			bound[v] = true
		}
		// Attach every filter whose variables are now bound.
		for fi, f := range allFilters {
			if usedFilters[fi] {
				continue
			}
			if filterCovered(f, bound) {
				usedFilters[fi] = true
				st.Filters = append(st.Filters, f)
			}
		}
		// Push startswith(?v,'p') into the range scan: with the
		// order-preserving hash, the matching values form one
		// contiguous key interval (the paper's native prefix search).
		if st.Strat == physical.StratAVRange {
			st.ValuePrefix = prefixFor(st)
		}
		// Ship decision.
		switch o.Opt.Mode {
		case ModeShip:
			st.Ship = len(out) > 0
		case ModeAuto:
			st.Ship = len(out) > 0 && card <= float64(o.Opt.ShipThreshold)
		}
		out = append(out, st)
		card = math.Max(bestEst.Results, 1)
		// Drop from remaining.
		for i, ri := range remaining {
			if ri == bestIdx {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	// Any unattached similarity predicates become post-filters of the
	// last step (their variables must be bound by now or Build would
	// have failed).
	last := &out[len(out)-1]
	for si, s := range allSims {
		if !usedSims[si] {
			last.Sims = append(last.Sims, s)
			usedSims[si] = true
		}
	}
	for fi, f := range allFilters {
		if !usedFilters[fi] {
			last.Filters = append(last.Filters, f)
			usedFilters[fi] = true
		}
	}
	return out
}

// connected reports whether the pattern shares a variable with the
// bound set.
func connected(pat vql.Pattern, bound map[string]bool) bool {
	for _, v := range pat.Vars() {
		if bound[v] {
			return true
		}
	}
	return false
}

// simsFor previews the sims applicable to a pattern (for costing).
func simsFor(pat vql.Pattern, sims []physical.SimSpec, used []bool) []physical.SimSpec {
	var out []physical.SimSpec
	if !pat.V.IsVar() {
		return nil
	}
	for i, s := range sims {
		if !used[i] && s.Var == pat.V.Var {
			out = append(out, s)
		}
	}
	return out
}

// takeSims consumes sims that can attach to this step: predicates on
// the pattern's value variable (usable by the q-gram path) or whose
// variables are all bound after this step.
func takeSims(pat vql.Pattern, sims []physical.SimSpec, used []bool, bound map[string]bool) []physical.SimSpec {
	var out []physical.SimSpec
	willBind := map[string]bool{}
	for v := range bound {
		willBind[v] = true
	}
	for _, v := range pat.Vars() {
		willBind[v] = true
	}
	for i, s := range sims {
		if used[i] {
			continue
		}
		if willBind[s.Var] {
			used[i] = true
			out = append(out, s)
		}
	}
	return out
}

// prefixFor extracts the longest literal prefix constraint
// startswith(?v, 'p') among the step's filters, for the step's own
// value variable. The filter itself stays attached (re-checking is
// free and keeps the pushdown purely an access-path optimization).
func prefixFor(st physical.Step) string {
	if !st.Pat.V.IsVar() {
		return ""
	}
	best := ""
	for _, f := range st.Filters {
		bf, ok := f.(vql.BoolFunc)
		if !ok || bf.Name != "startswith" || len(bf.Args) != 2 {
			continue
		}
		v, ok := bf.Args[0].(vql.VarOperand)
		if !ok || v.Name != st.Pat.V.Var {
			continue
		}
		lit, ok := bf.Args[1].(vql.LitOperand)
		if !ok || lit.Val.Kind != triple.KindString {
			continue
		}
		if len(lit.Val.Str) > len(best) {
			best = lit.Val.Str
		}
	}
	return best
}

// filterCovered reports whether all filter variables are bound.
func filterCovered(f vql.Expr, bound map[string]bool) bool {
	covered := true
	walkVars(f, func(v string) {
		if !bound[v] {
			covered = false
		}
	})
	return covered
}

func walkVars(e vql.Expr, fn func(string)) {
	switch x := e.(type) {
	case vql.Cmp:
		walkOperand(x.L, fn)
		walkOperand(x.R, fn)
	case vql.And:
		walkVars(x.L, fn)
		walkVars(x.R, fn)
	case vql.Or:
		walkVars(x.L, fn)
		walkVars(x.R, fn)
	case vql.Not:
		walkVars(x.E, fn)
	case vql.BoolFunc:
		for _, a := range x.Args {
			walkOperand(a, fn)
		}
	}
}

func walkOperand(o vql.Operand, fn func(string)) {
	switch x := o.(type) {
	case vql.VarOperand:
		fn(x.Name)
	case vql.FuncOperand:
		for _, a := range x.Args {
			walkOperand(a, fn)
		}
	}
}

// chooseStrategy selects the physical access path for a step. With a
// streamable limit in effect for this step, candidate costs are scaled
// to what the early-terminating executor will actually pay — which
// penalizes the q-gram path (its gram phase is pure startup) relative
// to the shard-by-shard range scan.
func (o *Optimizer) chooseStrategy(st physical.Step, hasBindings bool, limit int) physical.AccessStrategy {
	if o.Opt.ForceStrategy != physical.StratAuto {
		if applicable(o.Opt.ForceStrategy, st) {
			return o.Opt.ForceStrategy
		}
	}
	shape := physical.DefaultStrategy(st)
	if shape == physical.StratAVRange && o.Opt.UseQGram && len(simsFor(st.Pat, st.Sims, make([]bool, len(st.Sims)))) > 0 {
		// Compare the q-gram path against the attribute range scan.
		attr := st.Pat.A.Val.Str
		sim := st.Sims[0]
		attrCount := float64(o.Stats.AttrCount(attr))
		frac := attrCount / math.Max(float64(o.Stats.TotalTriples), 1)
		rangeCost := o.Stats.Range(frac, attrCount).ScaledToLimit(limit)
		qgramCost := o.Stats.QGramSearch(len(sim.Target), 3, sim.MaxDist, 8).ScaledToLimit(limit)
		if qgramCost.Messages < rangeCost.Messages {
			return physical.StratQGram
		}
	}
	_ = hasBindings
	return shape
}

// applicable reports whether a forced strategy can execute the step's
// pattern shape at all.
func applicable(s physical.AccessStrategy, st physical.Step) bool {
	pat := st.Pat
	switch s {
	case physical.StratOIDLookup:
		return !pat.S.IsVar() || pat.S.IsVar() // runtime probes handle bound vars
	case physical.StratAVLookup:
		return !pat.A.IsVar()
	case physical.StratAVRange:
		return !pat.A.IsVar()
	case physical.StratValLookup:
		return true
	case physical.StratBroadcast:
		return true
	case physical.StratQGram:
		return !pat.A.IsVar() && pat.V.IsVar() && len(st.Sims) > 0
	}
	return false
}

// estimate prices one step.
func (o *Optimizer) estimate(strat physical.AccessStrategy, st physical.Step, card float64, conn bool) cost.Estimate {
	s := o.Stats
	attr := ""
	if !st.Pat.A.IsVar() {
		attr = st.Pat.A.Val.Str
	}
	attrCount := float64(s.AttrCount(attr))
	switch strat {
	case physical.StratOIDLookup:
		k := 1
		if st.Pat.S.IsVar() {
			k = int(card)
		}
		return s.MultiLookup(k, card)
	case physical.StratAVLookup:
		return s.Lookup(attrCount * cost.EqSelectivity)
	case physical.StratAVRange:
		if conn {
			// Joins via bound values: parallel probes.
			return s.MultiLookup(int(card), card)
		}
		frac := attrCount / math.Max(float64(s.TotalTriples), 1)
		return s.Range(frac, attrCount)
	case physical.StratValLookup:
		return s.Lookup(attrCount * cost.EqSelectivity)
	case physical.StratBroadcast:
		return s.Broadcast(float64(s.TotalTriples))
	case physical.StratQGram:
		target := ""
		if len(st.Sims) > 0 {
			target = st.Sims[0].Target
		}
		return s.QGramSearch(len(target), 3, 2, 8)
	}
	return s.Broadcast(float64(s.TotalTriples))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
