package optimizer_test

import (
	"testing"

	"unistore/internal/cost"
	"unistore/internal/optimizer"
	"unistore/internal/physical"
	"unistore/internal/vql"
)

func compile(t *testing.T, src string) *physical.Plan {
	t.Helper()
	q, err := vql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := physical.CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptimizePrefersExactLookups(t *testing.T) {
	o := optimizer.New(cost.DefaultStats(256), optimizer.DefaultOptions())
	p := compile(t, `SELECT ?n WHERE {(?p,'name',?n) (?p,'email','x@y')}`)
	o.Optimize(p)
	if p.Steps[0].Strat != physical.StratAVLookup {
		t.Errorf("exact A#v lookup must lead: %s", p)
	}
	if len(p.Steps[1].JoinOn) != 1 || p.Steps[1].JoinOn[0] != "p" {
		t.Errorf("join vars recomputed wrong: %+v", p.Steps[1])
	}
}

func TestOptimizeKeepsFiltersApplicable(t *testing.T) {
	o := optimizer.New(cost.DefaultStats(64), optimizer.DefaultOptions())
	p := compile(t, `SELECT ?n WHERE {(?p,'name',?n) (?p,'age',?a) FILTER ?a > 30 FILTER length(?n) > 3}`)
	o.Optimize(p)
	// Every filter must sit on a step whose prior vars cover it.
	bound := map[string]bool{}
	for _, st := range p.Steps {
		for _, v := range st.Pat.Vars() {
			bound[v] = true
		}
		for _, f := range st.Filters {
			covered := true
			for _, v := range exprVars(f) {
				if !bound[v] {
					covered = false
				}
			}
			if !covered {
				t.Errorf("filter %s attached before its vars bind: %s", f, p)
			}
		}
	}
	total := 0
	for _, st := range p.Steps {
		total += len(st.Filters)
	}
	if total != 2 {
		t.Errorf("filters lost or duplicated: %d", total)
	}
}

func exprVars(e vql.Expr) []string {
	var out []string
	var walkOp func(o vql.Operand)
	walkOp = func(o vql.Operand) {
		switch x := o.(type) {
		case vql.VarOperand:
			out = append(out, x.Name)
		case vql.FuncOperand:
			for _, a := range x.Args {
				walkOp(a)
			}
		}
	}
	switch x := e.(type) {
	case vql.Cmp:
		walkOp(x.L)
		walkOp(x.R)
	case vql.BoolFunc:
		for _, a := range x.Args {
			walkOp(a)
		}
	}
	return out
}

func TestModeShipMarksSteps(t *testing.T) {
	o := optimizer.New(cost.DefaultStats(64), optimizer.Options{Mode: optimizer.ModeShip})
	p := compile(t, `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`)
	o.Optimize(p)
	if !p.Steps[1].Ship {
		t.Errorf("ModeShip must mark later steps: %s", p)
	}
	if p.Steps[0].Ship {
		t.Error("first step never ships")
	}
}

func TestModeFetchNeverShips(t *testing.T) {
	o := optimizer.New(cost.DefaultStats(64), optimizer.Options{Mode: optimizer.ModeFetch})
	p := compile(t, `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`)
	o.Optimize(p)
	for _, st := range p.Steps {
		if st.Ship {
			t.Errorf("ModeFetch shipped: %s", p)
		}
	}
}

func TestForceStrategyOverrides(t *testing.T) {
	o := optimizer.New(cost.DefaultStats(64), optimizer.Options{
		Mode: optimizer.ModeFetch, ForceStrategy: physical.StratBroadcast})
	p := compile(t, `SELECT ?n WHERE {(?p,'name',?n)}`)
	o.Optimize(p)
	if p.Steps[0].Strat != physical.StratBroadcast {
		t.Errorf("force ignored: %s", p)
	}
}

func TestQGramChosenWhenCheaper(t *testing.T) {
	stats := cost.DefaultStats(512)
	stats.TriplesPerAttr["series"] = 5000
	stats.TotalTriples = 10000
	o := optimizer.New(stats, optimizer.Options{Mode: optimizer.ModeFetch, UseQGram: true})
	p := compile(t, `SELECT ?sr WHERE {(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}`)
	o.Optimize(p)
	if p.Steps[0].Strat != physical.StratQGram {
		t.Errorf("q-gram path not chosen on a large network: %s", p)
	}
	// Without the index enabled, the range scan remains.
	o2 := optimizer.New(stats, optimizer.Options{Mode: optimizer.ModeFetch, UseQGram: false})
	p2 := compile(t, `SELECT ?sr WHERE {(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}`)
	o2.Optimize(p2)
	if p2.Steps[0].Strat == physical.StratQGram {
		t.Error("q-gram path chosen despite UseQGram=false")
	}
}

func TestDisabledOptimizerPreservesCompiledOrder(t *testing.T) {
	o := optimizer.New(cost.DefaultStats(64), optimizer.Options{Disabled: true})
	p := compile(t, `SELECT ?n,?a WHERE {(?p,'name',?n) (?p,'age',?a)}`)
	first := p.Steps[0].Pat.String()
	o.Optimize(p)
	if p.Steps[0].Pat.String() != first {
		t.Error("disabled optimizer reordered steps")
	}
}

func TestSimsAttachOnce(t *testing.T) {
	o := optimizer.New(cost.DefaultStats(64), optimizer.DefaultOptions())
	p := compile(t, `SELECT ?sr WHERE {(?c,'series',?sr) (?c,'confname',?cn) FILTER edist(?sr,'ICDE')<3}`)
	o.Optimize(p)
	total := 0
	for _, st := range p.Steps {
		total += len(st.Sims)
	}
	if total != 1 {
		t.Errorf("similarity predicate attached %d times: %s", total, p)
	}
}

func TestPrefixPushdown(t *testing.T) {
	o := optimizer.New(cost.DefaultStats(64), optimizer.DefaultOptions())
	p := compile(t, `SELECT ?t WHERE {(?p,'title',?t) FILTER startswith(?t,'Paper 001')}`)
	o.Optimize(p)
	if p.Steps[0].ValuePrefix != "Paper 001" {
		t.Errorf("prefix not pushed down: %+v", p.Steps[0])
	}
	// The filter stays attached for re-checking.
	if len(p.Steps[0].Filters) != 1 {
		t.Errorf("filter lost: %+v", p.Steps[0])
	}
	// Not applicable when the predicate targets another variable.
	p2 := compile(t, `SELECT ?t WHERE {(?p,'title',?t) (?p,'name',?n) FILTER startswith(?n,'x')}`)
	o.Optimize(p2)
	for _, st := range p2.Steps {
		if st.Pat.A.Val.Str == "title" && st.ValuePrefix != "" {
			t.Errorf("prefix wrongly pushed to title scan: %+v", st)
		}
	}
}

// TestAggStrategyChoice: the cost model must push aggregation down
// when groups are much smaller than rows, keep the centralized stream
// for a small rank-fed group limit, and honor forced choices.
func TestAggStrategyChoice(t *testing.T) {
	stats := cost.DefaultStats(64)
	stats.TriplesPerAttr["group"] = 5000
	stats.TotalTriples = 20000
	stats.PageSize = 8
	grouped := `SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g`
	ranked := `SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g ORDER BY ?g LIMIT 2`
	joined := `SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g) (?p,'age',?a)} GROUP BY ?g`

	o := optimizer.New(stats, optimizer.DefaultOptions())
	if p := o.Optimize(compile(t, grouped)); !p.Tail.AggPushdown {
		t.Error("auto: exhaustive group-by must push down")
	}
	if p := o.Optimize(compile(t, ranked)); p.Tail.AggPushdown {
		t.Error("auto: small rank-fed group limit must stay centralized")
	}
	if p := o.Optimize(compile(t, joined)); p.Tail.AggPushdown {
		t.Error("a join below the aggregation cannot push down")
	}
	forcedC := optimizer.New(stats, optimizer.Options{Mode: optimizer.ModeFetch, Agg: optimizer.AggCentralized})
	if p := forcedC.Optimize(compile(t, grouped)); p.Tail.AggPushdown {
		t.Error("forced centralized ignored")
	}
	// A group-key ordering the scan CANNOT stream (order var is the
	// subject, scan key order is the value) must not earn the
	// centralized limit discount — pushdown still wins.
	unstreamable := `SELECT ?p, count(*) AS ?n WHERE {(?p,'score',?s)} GROUP BY ?p ORDER BY ?p LIMIT 2`
	if p := o.Optimize(compile(t, unstreamable)); !p.Tail.AggPushdown {
		t.Error("auto: unstreamable group ordering must not discount the centralized scan")
	}
	forcedP := optimizer.New(stats, optimizer.Options{Mode: optimizer.ModeFetch, Agg: optimizer.AggPushdown})
	if p := forcedP.Optimize(compile(t, grouped)); !p.Tail.AggPushdown {
		t.Error("forced pushdown ignored")
	}
	if p := forcedP.Optimize(compile(t, joined)); p.Tail.AggPushdown {
		t.Error("forced pushdown must still respect feasibility")
	}
}
