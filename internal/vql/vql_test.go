package vql

import (
	"math/rand"
	"reflect"

	"testing"

	"unistore/internal/triple"
)

// paperQuery is the complete example query from §2 of the paper.
const paperQuery = `
SELECT ?name,?age,?cnt
WHERE {(?a,'name',?name) (?a,'age',?age)
(?a,'num_of_pubs',?cnt)
(?a,'has_published',?title) (?p,'title',?title)
(?p,'published_in',?conf) (?c,'confname',?conf)
(?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
}
ORDER BY SKYLINE OF ?age MIN, ?cnt MAX`

func TestParsePaperQuery(t *testing.T) {
	q, err := ParseQuery(paperQuery)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(q.Select, []string{"name", "age", "cnt"}) {
		t.Errorf("select = %v", q.Select)
	}
	if len(q.Where) != 8 {
		t.Fatalf("patterns = %d, want 8", len(q.Where))
	}
	p0 := q.Where[0]
	if !p0.S.IsVar() || p0.S.Var != "a" || p0.A.Val.Str != "name" || !p0.V.IsVar() {
		t.Errorf("first pattern = %v", p0)
	}
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %d", len(q.Filters))
	}
	cmp, ok := q.Filters[0].(Cmp)
	if !ok || cmp.Op != "<" {
		t.Fatalf("filter = %v", q.Filters[0])
	}
	fn, ok := cmp.L.(FuncOperand)
	if !ok || fn.Name != "edist" || len(fn.Args) != 2 {
		t.Fatalf("filter lhs = %v", cmp.L)
	}
	if lit, ok := cmp.R.(LitOperand); !ok || lit.Val.Num != 3 {
		t.Fatalf("filter rhs = %v", cmp.R)
	}
	want := []SkylineKey{{Var: "age"}, {Var: "cnt", Max: true}}
	if !reflect.DeepEqual(q.Skyline, want) {
		t.Errorf("skyline = %v", q.Skyline)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT ?x WHERE {(?x,'a''b',3.5)} LIMIT 10 # comment`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{TokIdent, TokVar, TokIdent, TokLBrace, TokLParen,
		TokVar, TokComma, TokString, TokComma, TokNumber, TokRParen,
		TokRBrace, TokIdent, TokNumber, TokEOF}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v", kinds)
	}
	// Escaped quote inside string.
	if toks[7].Text != "a'b" {
		t.Errorf("string literal = %q", toks[7].Text)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{"'unterminated", "?", "!x", "@"}
	for _, src := range bad {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) must fail", src)
		}
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := ParseQuery(`SELECT * WHERE {(?s,?a,?v)}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 0 {
		t.Errorf("SELECT * must leave Select empty: %v", q.Select)
	}
	// Schema-level query: attribute position is a variable.
	if !q.Where[0].A.IsVar() {
		t.Error("attribute variable lost")
	}
}

func TestParseOrderLimitTop(t *testing.T) {
	q, err := ParseQuery(`SELECT ?n WHERE {(?s,'name',?n)} ORDER BY ?n DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc || q.Limit != 5 || q.Top {
		t.Errorf("parsed %+v", q)
	}
	q, err = ParseQuery(`SELECT ?n WHERE {(?s,'age',?n)} ORDER BY ?n TOP 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 3 || !q.Top {
		t.Errorf("TOP parsed as %+v", q)
	}
}

func TestParseBooleanFilters(t *testing.T) {
	q, err := ParseQuery(
		`SELECT ?n WHERE {(?s,'age',?x) FILTER ?x >= 18 AND NOT ?x > 65 OR ?x = 99}`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Filters[0].(Or)
	if !ok {
		t.Fatalf("top filter = %T", q.Filters[0])
	}
	and, ok := or.L.(And)
	if !ok {
		t.Fatalf("or.L = %T", or.L)
	}
	if _, ok := and.R.(Not); !ok {
		t.Fatalf("and.R = %T", and.R)
	}
}

func TestParseParenthesizedFilter(t *testing.T) {
	q, err := ParseQuery(
		`SELECT ?n WHERE {(?s,'a',?x) FILTER ?x > 1 AND (?x < 5 OR ?x = 9)}`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Filters[0].(And)
	if !ok {
		t.Fatalf("filter = %T", q.Filters[0])
	}
	if _, ok := and.R.(Or); !ok {
		t.Fatalf("and.R = %T (parentheses ignored?)", and.R)
	}
}

func TestParseBoolFuncFilter(t *testing.T) {
	q, err := ParseQuery(`SELECT ?t WHERE {(?s,'title',?t) FILTER contains(?t,'data')}`)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := q.Filters[0].(BoolFunc)
	if !ok || bf.Name != "contains" || len(bf.Args) != 2 {
		t.Fatalf("filter = %v", q.Filters[0])
	}
}

func TestParseMultipleFilters(t *testing.T) {
	q, err := ParseQuery(
		`SELECT ?n WHERE {(?s,'age',?x) FILTER ?x > 1 (?s,'name',?n) FILTER ?n != 'bob'}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 2 || len(q.Where) != 2 {
		t.Errorf("filters=%d patterns=%d", len(q.Filters), len(q.Where))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?x`,
		`SELECT ?x WHERE {}`,
		`SELECT ?x WHERE {(?x,'a')}`,
		`SELECT ?x WHERE {(?x,'a','b') } garbage`,
		`SELECT ?x WHERE {(?x,'a','b')} LIMIT 0`,
		`SELECT ?x WHERE {(?x,'a','b')} LIMIT 2.5`,
		`SELECT ?x WHERE {(?x,'a','b')} ORDER BY SKYLINE OF ?x`,
		`SELECT ?x WHERE {(?x,'a','b') FILTER}`,
		`SELECT ?x, WHERE {(?x,'a','b')}`,
		`UPDATE ?x`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse(`INSERT {('a12','title','Similarity...') ('a12','year',2006)}`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if len(ins.Triples) != 2 {
		t.Fatalf("triples = %d", len(ins.Triples))
	}
	if ins.Triples[1].Val.Kind != triple.KindNumber || ins.Triples[1].Val.Num != 2006 {
		t.Errorf("numeric value = %v", ins.Triples[1].Val)
	}
	if _, err := Parse(`INSERT {}`); err == nil {
		t.Error("empty INSERT must fail")
	}
}

func TestQueryVars(t *testing.T) {
	q, err := ParseQuery(`SELECT * WHERE {(?a,'x',?b) (?b,'y',?c) (?a,'z','lit')}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("vars = %v", got)
	}
}

// Property: Parse(q.String()) == q (structural fixpoint) for generated
// queries.
func TestParsePrintParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randTerm := func() Term {
		switch rng.Intn(3) {
		case 0:
			return V(string(rune('a' + rng.Intn(26))))
		case 1:
			return Lit("s" + string(rune('a'+rng.Intn(26))))
		default:
			return LitN(float64(rng.Intn(100)))
		}
	}
	for iter := 0; iter < 300; iter++ {
		q := &Query{}
		for i := 0; i <= rng.Intn(4); i++ {
			q.Select = append(q.Select, string(rune('a'+i)))
		}
		for i := 0; i <= rng.Intn(5); i++ {
			q.Where = append(q.Where, Pattern{S: randTerm(), A: randTerm(), V: randTerm()})
		}
		if rng.Intn(2) == 0 {
			q.Filters = append(q.Filters, Cmp{Op: ">=",
				L: VarOperand{Name: "a"}, R: LitOperand{Val: triple.N(7)}})
		}
		if rng.Intn(3) == 0 {
			q.Filters = append(q.Filters, Cmp{Op: "<",
				L: FuncOperand{Name: "edist", Args: []Operand{
					VarOperand{Name: "b"}, LitOperand{Val: triple.S("ICDE")}}},
				R: LitOperand{Val: triple.N(3)}})
		}
		switch rng.Intn(3) {
		case 0:
			q.OrderBy = []OrderKey{{Var: "a"}, {Var: "b", Desc: true}}
		case 1:
			q.Skyline = []SkylineKey{{Var: "a"}, {Var: "b", Max: true}}
		}
		if rng.Intn(2) == 0 {
			q.Limit = 1 + rng.Intn(20)
			q.Top = rng.Intn(2) == 0 && len(q.OrderBy) > 0
		}
		src := q.String()
		back, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("reparse %q: %v", src, err)
		}
		if back.String() != src {
			t.Fatalf("fixpoint violated:\n 1: %s\n 2: %s", src, back.String())
		}
	}
}

func TestStringEscaping(t *testing.T) {
	q := &Query{Where: []Pattern{{S: V("s"), A: Lit("attr"), V: Lit("it's")}}}
	src := q.String()
	back, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("reparse %q: %v", src, err)
	}
	if back.Where[0].V.Val.Str != "it's" {
		t.Errorf("escaped literal = %q", back.Where[0].V.Val.Str)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if _, err := ParseQuery(`select ?x where {(?x,'a','b')} order by ?x limit 2`); err != nil {
		t.Errorf("lowercase keywords must parse: %v", err)
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{S: V("a"), A: Lit("name"), V: Lit("bob")}
	if p.String() != "(?a,'name','bob')" {
		t.Errorf("pattern = %s", p.String())
	}
}

func BenchmarkParsePaperQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(paperQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func FuzzParse(f *testing.F) {
	f.Add(paperQuery)
	f.Add(`SELECT * WHERE {(?s,?a,?v)}`)
	f.Add(`INSERT {('x','y','z')}`)
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		// Whatever parses must print and reparse.
		if q, ok := stmt.(*Query); ok {
			if _, err := ParseQuery(q.String()); err != nil {
				t.Fatalf("reparse of %q (from %q): %v", q.String(), src, err)
			}
		}
	})
}
