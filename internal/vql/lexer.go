package vql

import (
	"strconv"
	"strings"
)

// lexer scans VQL source into tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isIdent0(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdent(c byte) bool  { return isIdent0(c) || isDigit(c) || c == ':' || c == '.' }

func (l *lexer) skipSpaceAndComments() {
	for {
		for {
			c, ok := l.peekByte()
			if !ok || !isSpace(c) {
				break
			}
			l.pos++
		}
		// '#' starts a comment to end of line (handy in REPL scripts).
		if c, ok := l.peekByte(); ok && c == '#' {
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.pos++
			}
			continue
		}
		return
	}
}

// Next returns the next token. Errors are reported as a token with
// Kind TokEOF and a non-nil error.
func (l *lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	c, ok := l.peekByte()
	if !ok {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	switch {
	case c == '(':
		l.pos++
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case c == ')':
		l.pos++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case c == '{':
		l.pos++
		return Token{Kind: TokLBrace, Text: "{", Pos: start}, nil
	case c == '}':
		l.pos++
		return Token{Kind: TokRBrace, Text: "}", Pos: start}, nil
	case c == ',':
		l.pos++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case c == '*':
		l.pos++
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case c == '?':
		l.pos++
		return l.lexVar(start)
	case c == '\'':
		l.pos++
		return l.lexString(start)
	case c == '<' || c == '>' || c == '=' || c == '!':
		return l.lexOp(start)
	case isDigit(c) || c == '-' || c == '+':
		return l.lexNumber(start)
	case isIdent0(c):
		return l.lexIdent(start)
	}
	return Token{Kind: TokEOF, Pos: start}, errf(start, "unexpected character %q", c)
}

func (l *lexer) lexVar(start int) (Token, error) {
	b := l.pos
	for {
		c, ok := l.peekByte()
		if !ok || !isIdent(c) {
			break
		}
		l.pos++
	}
	if l.pos == b {
		return Token{}, errf(start, "empty variable name after '?'")
	}
	return Token{Kind: TokVar, Text: l.src[b:l.pos], Pos: start}, nil
}

func (l *lexer) lexString(start int) (Token, error) {
	var sb strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok {
			return Token{}, errf(start, "unterminated string literal")
		}
		l.pos++
		if c == '\'' {
			// '' is an escaped quote, as in SQL.
			if c2, ok := l.peekByte(); ok && c2 == '\'' {
				l.pos++
				sb.WriteByte('\'')
				continue
			}
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
	}
}

func (l *lexer) lexOp(start int) (Token, error) {
	c := l.src[l.pos]
	l.pos++
	if c2, ok := l.peekByte(); ok && c2 == '=' {
		l.pos++
		return Token{Kind: TokOp, Text: string(c) + "=", Pos: start}, nil
	}
	if c == '!' {
		return Token{}, errf(start, "expected '=' after '!'")
	}
	return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
}

func (l *lexer) lexNumber(start int) (Token, error) {
	b := l.pos
	if c, _ := l.peekByte(); c == '-' || c == '+' {
		l.pos++
	}
	digits := false
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if isDigit(c) {
			digits = true
			l.pos++
			continue
		}
		if c == '.' || c == 'e' || c == 'E' {
			l.pos++
			continue
		}
		if (c == '-' || c == '+') && l.pos > b && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
			l.pos++
			continue
		}
		break
	}
	if !digits {
		return Token{}, errf(start, "malformed number")
	}
	f, err := strconv.ParseFloat(l.src[b:l.pos], 64)
	if err != nil {
		return Token{}, errf(start, "malformed number %q", l.src[b:l.pos])
	}
	return Token{Kind: TokNumber, Num: f, Text: l.src[b:l.pos], Pos: start}, nil
}

func (l *lexer) lexIdent(start int) (Token, error) {
	b := l.pos
	for {
		c, ok := l.peekByte()
		if !ok || !isIdent(c) {
			break
		}
		l.pos++
	}
	return Token{Kind: TokIdent, Text: l.src[b:l.pos], Pos: start}, nil
}

// Lex tokenizes the whole input (testing convenience).
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
