// Package vql implements VQL (Vertical Query Language), UniStore's
// SPARQL-derived structured query language (§2 of the paper): triple
// patterns in braces with ?variables, FILTER predicates (comparisons,
// boolean combinations, and similarity via edist), and the SQL-like
// clauses SELECT, WHERE, ORDER BY, LIMIT, TOP and SKYLINE OF.
//
// The package is purely syntactic: it produces an AST that package
// algebra compiles into a logical plan.
package vql

import "fmt"

// TokenKind enumerates lexical token types.
type TokenKind int

// Token kinds.
const (
	TokEOF    TokenKind = iota
	TokIdent            // bare identifier: keywords, function names
	TokVar              // ?name
	TokString           // 'quoted literal'
	TokNumber           // 123, -4.5
	TokLParen           // (
	TokRParen           // )
	TokLBrace           // {
	TokRBrace           // }
	TokComma            // ,
	TokOp               // < <= > >= = !=
	TokStar             // *
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokVar:
		return "variable"
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokComma:
		return "','"
	case TokOp:
		return "operator"
	case TokStar:
		return "'*'"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Text string  // identifier/operator text, string contents, var name
	Num  float64 // numeric value for TokNumber
	Pos  int     // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokVar:
		return "?" + t.Text
	case TokString:
		return "'" + t.Text + "'"
	case TokNumber:
		return fmt.Sprintf("%g", t.Num)
	case TokEOF:
		return "<eof>"
	default:
		return t.Text
	}
}

// Error is a syntax error with position information.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("vql: offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
