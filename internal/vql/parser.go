package vql

import (
	"strings"

	"unistore/internal/triple"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lex *lexer
	tok Token // lookahead
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: newLexer(src)}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// kw reports whether the lookahead is the given keyword
// (case-insensitive, as in SQL).
func (p *parser) kw(word string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, word)
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return errf(p.tok.Pos, "expected %s, found %s", word, p.tok)
	}
	return p.advance()
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", kind, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

// Parse parses one VQL statement (SELECT query or INSERT).
func Parse(src string) (Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var stmt Statement
	switch {
	case p.kw("SELECT"):
		stmt, err = p.parseQuery()
	case p.kw("INSERT"):
		stmt, err = p.parseInsert()
	default:
		return nil, errf(p.tok.Pos, "expected SELECT or INSERT, found %s", p.tok)
	}
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, errf(p.tok.Pos, "unexpected trailing input: %s", p.tok)
	}
	return stmt, nil
}

// ParseQuery parses a SELECT query, rejecting other statements.
func ParseQuery(src string) (*Query, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	q, ok := stmt.(*Query)
	if !ok {
		return nil, errf(0, "not a SELECT query")
	}
	return q, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	if p.kw("DISTINCT") {
		q.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind == TokStar {
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			switch p.tok.Kind {
			case TokVar:
				q.Select = append(q.Select, p.tok.Text)
				if err := p.advance(); err != nil {
					return nil, err
				}
			case TokIdent:
				a, err := p.parseAggSelect()
				if err != nil {
					return nil, err
				}
				q.Aggs = append(q.Aggs, a)
			default:
				return nil, errf(p.tok.Pos, "expected variable or aggregate, found %s", p.tok)
			}
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := nameAggs(q); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("WHERE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.tok.Kind == TokLParen:
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pat)
		case p.kw("FILTER"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			f, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, f)
		case p.tok.Kind == TokRBrace:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if len(q.Where) == 0 {
				return nil, errf(p.tok.Pos, "WHERE block needs at least one pattern")
			}
			return q, p.parseClauses(q)
		default:
			return nil, errf(p.tok.Pos, "expected pattern, FILTER or '}', found %s", p.tok)
		}
	}
}

// aggFuncs maps select-list function names to aggregate functions.
var aggFuncs = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

// parseAggSelect parses one aggregate select item:
// fn( * | [DISTINCT] ?var ) [AS ?name].
func (p *parser) parseAggSelect() (AggSelect, error) {
	var a AggSelect
	fn, ok := aggFuncs[strings.ToLower(p.tok.Text)]
	if !ok {
		return a, errf(p.tok.Pos, "unknown aggregate function %q", p.tok.Text)
	}
	a.Func = fn
	if err := p.advance(); err != nil {
		return a, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return a, err
	}
	switch {
	case p.tok.Kind == TokStar:
		if a.Func != AggCount {
			return a, errf(p.tok.Pos, "%s(*) is not valid; only count(*)", a.Func)
		}
		a.Star = true
		if err := p.advance(); err != nil {
			return a, err
		}
	default:
		if p.kw("DISTINCT") {
			if a.Func != AggCount {
				return a, errf(p.tok.Pos, "DISTINCT inside %s is not supported", a.Func)
			}
			a.Distinct = true
			if err := p.advance(); err != nil {
				return a, err
			}
		}
		v, err := p.expect(TokVar)
		if err != nil {
			return a, err
		}
		a.Var = v.Text
	}
	if _, err := p.expect(TokRParen); err != nil {
		return a, err
	}
	if p.kw("AS") {
		if err := p.advance(); err != nil {
			return a, err
		}
		v, err := p.expect(TokVar)
		if err != nil {
			return a, err
		}
		a.As = v.Text
	}
	return a, nil
}

// nameAggs assigns default output names to unnamed aggregates
// (count(*) → ?count, sum(?v) → ?sum_v, count(DISTINCT ?v) →
// ?count_distinct_v) and rejects duplicate output names.
func nameAggs(q *Query) error {
	used := map[string]bool{}
	for _, v := range q.Select {
		used[v] = true
	}
	for i := range q.Aggs {
		a := &q.Aggs[i]
		if a.As == "" {
			switch {
			case a.Star:
				a.As = "count"
			case a.Distinct:
				a.As = "count_distinct_" + a.Var
			default:
				a.As = a.Func.String() + "_" + a.Var
			}
		}
		if used[a.As] {
			return errf(0, "duplicate select name ?%s (use AS to disambiguate)", a.As)
		}
		used[a.As] = true
	}
	return nil
}

func (p *parser) parsePattern() (Pattern, error) {
	var pat Pattern
	if _, err := p.expect(TokLParen); err != nil {
		return pat, err
	}
	terms := make([]Term, 0, 3)
	for i := 0; i < 3; i++ {
		t, err := p.parseTerm()
		if err != nil {
			return pat, err
		}
		terms = append(terms, t)
		if i < 2 {
			if _, err := p.expect(TokComma); err != nil {
				return pat, err
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return pat, err
	}
	pat.S, pat.A, pat.V = terms[0], terms[1], terms[2]
	return pat, nil
}

func (p *parser) parseTerm() (Term, error) {
	switch p.tok.Kind {
	case TokVar:
		t := V(p.tok.Text)
		return t, p.advance()
	case TokString:
		t := Lit(p.tok.Text)
		return t, p.advance()
	case TokNumber:
		t := LitN(p.tok.Num)
		return t, p.advance()
	}
	return Term{}, errf(p.tok.Pos, "expected term, found %s", p.tok)
}

// parseOr / parseAnd / parseUnary implement precedence OR < AND < NOT.
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.kw("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	if p.tok.Kind == TokLParen {
		// Parenthesized boolean expression.
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokOp {
		// A bare function call is a boolean predicate.
		if f, ok := l.(FuncOperand); ok {
			return BoolFunc{Name: f.Name, Args: f.Args}, nil
		}
		return nil, errf(p.tok.Pos, "expected comparison operator, found %s", p.tok)
	}
	op := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return Cmp{Op: op, L: l, R: r}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	switch p.tok.Kind {
	case TokVar:
		v := VarOperand{Name: p.tok.Text}
		return v, p.advance()
	case TokString:
		v := LitOperand{Val: triple.S(p.tok.Text)}
		return v, p.advance()
	case TokNumber:
		v := LitOperand{Val: triple.N(p.tok.Num)}
		return v, p.advance()
	case TokIdent:
		name := strings.ToLower(p.tok.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var args []Operand
		if p.tok.Kind != TokRParen {
			for {
				a, err := p.parseOperand()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.Kind != TokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return FuncOperand{Name: name, Args: args}, nil
	}
	return nil, errf(p.tok.Pos, "expected operand, found %s", p.tok)
}

func (p *parser) parseClauses(q *Query) error {
	if p.kw("GROUP") {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKw("BY"); err != nil {
			return err
		}
		for {
			v, err := p.expect(TokVar)
			if err != nil {
				return err
			}
			q.GroupBy = append(q.GroupBy, v.Text)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if p.kw("HAVING") {
		if err := p.advance(); err != nil {
			return err
		}
		h, err := p.parseOr()
		if err != nil {
			return err
		}
		q.Having = h
	}
	if p.kw("ORDER") {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKw("BY"); err != nil {
			return err
		}
		if p.kw("SKYLINE") {
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectKw("OF"); err != nil {
				return err
			}
			for {
				v, err := p.expect(TokVar)
				if err != nil {
					return err
				}
				k := SkylineKey{Var: v.Text}
				switch {
				case p.kw("MIN"):
					if err := p.advance(); err != nil {
						return err
					}
				case p.kw("MAX"):
					k.Max = true
					if err := p.advance(); err != nil {
						return err
					}
				default:
					return errf(p.tok.Pos, "expected MIN or MAX, found %s", p.tok)
				}
				q.Skyline = append(q.Skyline, k)
				if p.tok.Kind != TokComma {
					break
				}
				if err := p.advance(); err != nil {
					return err
				}
			}
		} else {
			for {
				v, err := p.expect(TokVar)
				if err != nil {
					return err
				}
				k := OrderKey{Var: v.Text}
				if p.kw("DESC") {
					k.Desc = true
					if err := p.advance(); err != nil {
						return err
					}
				} else if p.kw("ASC") {
					if err := p.advance(); err != nil {
						return err
					}
				}
				q.OrderBy = append(q.OrderBy, k)
				if p.tok.Kind != TokComma {
					break
				}
				if err := p.advance(); err != nil {
					return err
				}
			}
		}
	}
	switch {
	case p.kw("LIMIT"):
		if err := p.advance(); err != nil {
			return err
		}
		n, err := p.expect(TokNumber)
		if err != nil {
			return err
		}
		if n.Num < 1 || n.Num != float64(int(n.Num)) {
			return errf(n.Pos, "LIMIT must be a positive integer")
		}
		q.Limit = int(n.Num)
	case p.kw("TOP"):
		if err := p.advance(); err != nil {
			return err
		}
		n, err := p.expect(TokNumber)
		if err != nil {
			return err
		}
		if n.Num < 1 || n.Num != float64(int(n.Num)) {
			return errf(n.Pos, "TOP must be a positive integer")
		}
		q.Limit = int(n.Num)
		q.Top = true
	}
	return nil
}

func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	ins := &Insert{}
	for p.tok.Kind == TokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		oid, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		attr, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		var val triple.Value
		switch p.tok.Kind {
		case TokString:
			val = triple.S(p.tok.Text)
		case TokNumber:
			val = triple.N(p.tok.Num)
		default:
			return nil, errf(p.tok.Pos, "expected value literal, found %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		ins.Triples = append(ins.Triples, triple.Triple{OID: oid.Text, Attr: attr.Text, Val: val})
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if len(ins.Triples) == 0 {
		return nil, errf(p.tok.Pos, "INSERT needs at least one triple")
	}
	return ins, nil
}
