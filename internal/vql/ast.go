package vql

import (
	"fmt"
	"strconv"
	"strings"

	"unistore/internal/triple"
)

// TermKind discriminates pattern terms.
type TermKind int

// Term kinds.
const (
	TermVar TermKind = iota
	TermLit
)

// Term is one position of a triple pattern: a ?variable or a literal.
type Term struct {
	Kind TermKind
	Var  string       // without the '?' sigil
	Val  triple.Value // for TermLit
}

// V constructs a variable term.
func V(name string) Term { return Term{Kind: TermVar, Var: name} }

// Lit constructs a string-literal term.
func Lit(s string) Term { return Term{Kind: TermLit, Val: triple.S(s)} }

// LitN constructs a numeric-literal term.
func LitN(f float64) Term { return Term{Kind: TermLit, Val: triple.N(f)} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == TermVar }

func (t Term) String() string {
	if t.Kind == TermVar {
		return "?" + t.Var
	}
	if t.Val.Kind == triple.KindNumber {
		return t.Val.String()
	}
	return "'" + strings.ReplaceAll(t.Val.Str, "'", "''") + "'"
}

// Pattern is one triple pattern (subject, attribute, value). Variables
// may appear in any position — attribute variables query the schema
// level, which the paper calls out explicitly.
type Pattern struct {
	S, A, V Term
}

func (p Pattern) String() string {
	return fmt.Sprintf("(%s,%s,%s)", p.S, p.A, p.V)
}

// Vars returns the variable names bound by the pattern, in S, A, V
// order, without duplicates.
func (p Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range []Term{p.S, p.A, p.V} {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// --- Filter expressions ---------------------------------------------------

// Expr is a boolean filter expression.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Operand is a value-producing expression inside a comparison.
type Operand interface {
	fmt.Stringer
	operandNode()
}

// VarOperand references a bound variable.
type VarOperand struct{ Name string }

// LitOperand is a literal value.
type LitOperand struct{ Val triple.Value }

// FuncOperand is a function application, e.g. edist(?sr,'ICDE').
type FuncOperand struct {
	Name string
	Args []Operand
}

func (v VarOperand) operandNode() {}
func (LitOperand) operandNode()   {}
func (FuncOperand) operandNode()  {}

func (v VarOperand) String() string { return "?" + v.Name }
func (l LitOperand) String() string {
	if l.Val.Kind == triple.KindNumber {
		return strconv.FormatFloat(l.Val.Num, 'g', -1, 64)
	}
	return "'" + strings.ReplaceAll(l.Val.Str, "'", "''") + "'"
}
func (f FuncOperand) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ",") + ")"
}

// Cmp is a comparison: L op R with op ∈ {=, !=, <, <=, >, >=}.
type Cmp struct {
	Op   string
	L, R Operand
}

// And, Or, Not combine filters.
type And struct{ L, R Expr }
type Or struct{ L, R Expr }
type Not struct{ E Expr }

// BoolFunc is a function used directly as a boolean predicate, e.g.
// contains(?title,'data').
type BoolFunc struct {
	Name string
	Args []Operand
}

func (Cmp) exprNode()      {}
func (And) exprNode()      {}
func (Or) exprNode()       {}
func (Not) exprNode()      {}
func (BoolFunc) exprNode() {}

func (c Cmp) String() string { return fmt.Sprintf("%s%s%s", c.L, c.Op, c.R) }
func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }
func (o Or) String() string  { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }
func (n Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }
func (b BoolFunc) String() string {
	parts := make([]string, len(b.Args))
	for i, a := range b.Args {
		parts[i] = a.String()
	}
	return b.Name + "(" + strings.Join(parts, ",") + ")"
}

// --- Clauses ----------------------------------------------------------------

// OrderKey is one ORDER BY component.
type OrderKey struct {
	Var  string
	Desc bool
}

func (o OrderKey) String() string {
	if o.Desc {
		return "?" + o.Var + " DESC"
	}
	return "?" + o.Var + " ASC"
}

// SkylineKey is one SKYLINE OF component: minimize or maximize.
type SkylineKey struct {
	Var string
	Max bool
}

func (s SkylineKey) String() string {
	if s.Max {
		return "?" + s.Var + " MAX"
	}
	return "?" + s.Var + " MIN"
}

// AggFunc enumerates the aggregate functions of the select list.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the function as written in VQL.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// AggSelect is one aggregate item of the select list, e.g.
// count(*) AS ?n or sum(?pubs) AS ?total. Without an explicit AS the
// parser derives the output name from the function and argument.
type AggSelect struct {
	Func AggFunc
	// Var is the argument variable; empty with Star set for count(*).
	Var  string
	Star bool
	// Distinct counts distinct values: count(DISTINCT ?v).
	Distinct bool
	// As is the output variable name the result binds to.
	As string
}

func (a AggSelect) String() string {
	arg := "*"
	if !a.Star {
		arg = "?" + a.Var
		if a.Distinct {
			arg = "DISTINCT " + arg
		}
	}
	return fmt.Sprintf("%s(%s) AS ?%s", a.Func, arg, a.As)
}

// Query is a parsed VQL query.
type Query struct {
	// Select lists projected variable names; empty (with no Aggs)
	// means SELECT *.
	Select []string
	// Aggs lists the aggregate items of the select list; rows are
	// grouped by GroupBy (or form one global group when it is empty).
	Aggs []AggSelect
	// Distinct marks SELECT DISTINCT: duplicate result rows collapse
	// (compiled as grouping by the projected variables).
	Distinct bool
	Where    []Pattern
	Filters  []Expr
	GroupBy  []string
	// Having filters groups after aggregation; it may reference group
	// variables and aggregate output names.
	Having  Expr
	OrderBy []OrderKey
	Skyline []SkylineKey
	// Limit bounds the result (0 = unlimited). TOP n parses as
	// Limit=n with Top=true.
	Limit int
	Top   bool
}

// Vars returns all variables bound by the WHERE patterns.
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range q.Where {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// String renders the query in canonical VQL; Parse(String()) returns an
// equivalent query (tested as a property).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if len(q.Select) == 0 && len(q.Aggs) == 0 {
		sb.WriteString("*")
	} else {
		for i, v := range q.Select {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString("?" + v)
		}
		for i, a := range q.Aggs {
			if i > 0 || len(q.Select) > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(a.String())
		}
	}
	sb.WriteString(" WHERE {")
	for i, p := range q.Where {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(p.String())
	}
	for _, f := range q.Filters {
		sb.WriteString(" FILTER " + f.String())
	}
	sb.WriteString("}")
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("?" + g)
		}
	}
	if q.Having != nil {
		sb.WriteString(" HAVING " + q.Having.String())
	}
	if len(q.Skyline) > 0 {
		sb.WriteString(" ORDER BY SKYLINE OF ")
		for i, s := range q.Skyline {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(s.String())
		}
	} else if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.String())
		}
	}
	if q.Limit > 0 {
		if q.Top {
			sb.WriteString(fmt.Sprintf(" TOP %d", q.Limit))
		} else {
			sb.WriteString(fmt.Sprintf(" LIMIT %d", q.Limit))
		}
	}
	return sb.String()
}

// Insert is a parsed INSERT statement (REPL convenience):
// INSERT {(oid,'attr','value') ...}.
type Insert struct {
	Triples []triple.Triple
}

func (ins *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT {")
	for i, t := range ins.Triples {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "('%s','%s',", t.OID, t.Attr)
		if t.Val.Kind == triple.KindNumber {
			sb.WriteString(t.Val.String())
		} else {
			sb.WriteString("'" + strings.ReplaceAll(t.Val.Str, "'", "''") + "'")
		}
		sb.WriteString(")")
	}
	sb.WriteString("}")
	return sb.String()
}

// Statement is a Query or an Insert.
type Statement interface{ stmtNode() }

func (*Query) stmtNode()  {}
func (*Insert) stmtNode() {}
