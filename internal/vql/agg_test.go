package vql

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseGroupByAggregates(t *testing.T) {
	q, err := ParseQuery(`SELECT ?g, count(*) AS ?n, sum(?a), avg(?a), min(?a), max(?a),
		count(DISTINCT ?a) WHERE {(?p,'group',?g) (?p,'age',?a)}
		GROUP BY ?g HAVING ?n > 2 ORDER BY ?n DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Select, []string{"g"}) {
		t.Fatalf("select = %v", q.Select)
	}
	wantAggs := []AggSelect{
		{Func: AggCount, Star: true, As: "n"},
		{Func: AggSum, Var: "a", As: "sum_a"},
		{Func: AggAvg, Var: "a", As: "avg_a"},
		{Func: AggMin, Var: "a", As: "min_a"},
		{Func: AggMax, Var: "a", As: "max_a"},
		{Func: AggCount, Var: "a", Distinct: true, As: "count_distinct_a"},
	}
	if !reflect.DeepEqual(q.Aggs, wantAggs) {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
	if !reflect.DeepEqual(q.GroupBy, []string{"g"}) {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	if q.Having == nil || q.Having.String() != "?n>2" {
		t.Fatalf("having = %v", q.Having)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Var != "n" || !q.OrderBy[0].Desc || q.Limit != 3 {
		t.Fatalf("order/limit = %v %d", q.OrderBy, q.Limit)
	}
}

func TestParseSelectDistinct(t *testing.T) {
	q, err := ParseQuery(`SELECT DISTINCT ?g WHERE {(?p,'group',?g)}`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || !reflect.DeepEqual(q.Select, []string{"g"}) {
		t.Fatalf("distinct=%v select=%v", q.Distinct, q.Select)
	}
	if _, err := ParseQuery(`SELECT DISTINCT * WHERE {(?p,'group',?g)}`); err != nil {
		t.Fatalf("SELECT DISTINCT *: %v", err)
	}
}

func TestParseGlobalAggregate(t *testing.T) {
	q, err := ParseQuery(`SELECT count(*) WHERE {(?p,'name',?n)}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 0 || len(q.Aggs) != 1 || q.Aggs[0].As != "count" || len(q.GroupBy) != 0 {
		t.Fatalf("parsed %+v", q)
	}
}

func TestAggParseErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT sum(*) WHERE {(?p,'a',?v)}`,                       // only count(*)
		`SELECT sum(DISTINCT ?v) WHERE {(?p,'a',?v)}`,             // DISTINCT only in count
		`SELECT count(*), count(*) WHERE {(?p,'a',?v)}`,           // duplicate default name
		`SELECT count(*) AS ?v, ?v WHERE {(?p,'a',?v)}`,           // AS collides with var — caught as dup
		`SELECT frobnicate(?v) WHERE {(?p,'a',?v)}`,               // unknown function
		`SELECT ?v WHERE {(?p,'a',?v)} GROUP BY`,                  // missing var list
		`SELECT ?v WHERE {(?p,'a',?v)} HAVING`,                    // missing expr
		`SELECT count(?v AS ?n WHERE {(?p,'a',?v)}`,               // malformed call
		`SELECT ?v, count() WHERE {(?p,'a',?v)}`,                  // empty argument
		`SELECT ?g WHERE {(?p,'a',?g)} HAVING ?g > 1 GROUP BY ?g`, // clause order
		`SELECT ?g WHERE {(?p,'a',?g)} ORDER BY ?g GROUP BY ?g`,   // clause order
		`SELECT sum(?v) AS ?s, avg(?v) AS ?s WHERE {(?p,'a',?v)}`, // explicit dup AS
	} {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// TestAggPrintParseFixpoint: String() of an aggregate query must parse
// back to an equivalent query.
func TestAggPrintParseFixpoint(t *testing.T) {
	srcs := []string{
		`SELECT ?g, count(*) AS ?n WHERE {(?p,'group',?g)} GROUP BY ?g HAVING ?n >= 2 ORDER BY ?n DESC LIMIT 2`,
		`SELECT DISTINCT ?g WHERE {(?p,'group',?g)}`,
		`SELECT count(DISTINCT ?v) AS ?d, sum(?v) WHERE {(?p,'a',?v)}`,
		`SELECT ?a, ?b, min(?v) WHERE {(?x,?a,?v) (?x,'k',?b)} GROUP BY ?a, ?b`,
	}
	for _, src := range srcs {
		q1, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		rendered := q1.String()
		q2, err := ParseQuery(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", rendered, err)
		}
		if q1.String() != q2.String() {
			t.Fatalf("fixpoint broken:\n %q\n %q", q1.String(), q2.String())
		}
		if !strings.Contains(rendered, "GROUP BY") == (len(q1.GroupBy) > 0) {
			t.Fatalf("GROUP BY rendering mismatch: %q", rendered)
		}
	}
}
