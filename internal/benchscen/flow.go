package benchscen

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"unistore/internal/core"
	"unistore/internal/keys"
	"unistore/internal/pgrid"
	"unistore/internal/physical"
	"unistore/internal/store"
	"unistore/internal/store/wal"
	"unistore/internal/triple"
	"unistore/internal/workload"
)

// The flow-control scenario: a replicated deterministic simnet where
// ONE replica is both STALE (it was dead through a write burst and
// rejoins to catch up by digest anti-entropy) and SLOW (a 10x
// per-message service-rate throttle), while the cluster keeps serving
// a mix of range reads and replicated acked writes. The claim is the
// tentpole's: the catch-up and the write fan-out are paced by the slow
// receiver's advertised credit windows, so its in-flight backlog stays
// near the configured window and its tail stall stays short, where the
// uncontrolled baseline dumps the whole delta on it at once — and the
// answers (and the converged replica state) are exactly equal either
// way.
const (
	// FlowPeers/FlowReplicas size the cluster (32 simnet nodes).
	FlowPeers    = 16
	FlowReplicas = 2
	// FlowBasePersons is the dataset loaded before the kill;
	// FlowMissedPersons the burst written while the victim is down (the
	// catch-up delta); FlowRoundPersons the acked write batch issued
	// while the catch-up streams.
	FlowBasePersons   = 150
	FlowMissedPersons = 300
	FlowRoundPersons  = 30
	// FlowRounds is how many mixed scan+write rounds run after the
	// throttled replica rejoins.
	FlowRounds = 2
	// FlowWindowBytes/FlowWindowMsgs are the advertised receive windows
	// the controlled variant runs with — small enough that the catch-up
	// delta spans many windows.
	FlowWindowBytes = 16 << 10
	FlowWindowMsgs  = 16
	// FlowSlowDelay is the throttled replica's per-message service time
	// (10x the constant 1ms link of the deterministic profile).
	FlowSlowDelay = 10 * time.Millisecond
)

// FlowVariant is one measured run of the slow-replica mix, with flow
// control either on or disabled.
type FlowVariant struct {
	// MaxInflightBytes is the worst per-node peak of queued bytes —
	// the backlog bound flow control exists to enforce. SlowStallMS is
	// the longest any message waited in the throttled node's service
	// queue (its tail stall).
	MaxInflightBytes int     `json:"max_inflight_bytes"`
	SlowStallMS      float64 `json:"slow_stall_ms"`
	Msgs             int     `json:"msgs"`
	Bytes            int     `json:"bytes"`
	// FlowBulkSends/FlowStalls aggregate the peers' credit-gate
	// counters (zero with flow control disabled).
	FlowBulkSends int `json:"flow_bulk_sends"`
	FlowStalls    int `json:"flow_stalls"`
	// CatchupExact reports whether the throttled rejoiner converged to
	// its live sibling's exact fact set.
	CatchupExact bool `json:"catchup_exact"`
	// Rows is the sorted final quiescent scan — the exactness surface
	// the two variants must agree on. RowCount is its length.
	Rows     []string `json:"-"`
	RowCount int      `json:"rows"`
}

// FlowRun builds the slow-replica cluster and drives the measured mix.
// Deterministic per variant (simnet, fixed seeds); the two variants
// differ only in Config.DisableFlowControl.
func FlowRun(controlled bool) (FlowVariant, error) {
	var res FlowVariant
	fs := wal.NewMemFS()
	c := core.NewCluster(core.Config{
		Peers: FlowPeers, Replicas: FlowReplicas, Seed: 41,
		RangeShards: 4, PageSize: ScanPageSize, ProbeParallelism: 2,
		FlowWindowBytes: FlowWindowBytes, FlowWindowMsgs: FlowWindowMsgs,
		DisableFlowControl: !controlled,
	})
	ds := workload.Generate(workload.Options{Seed: 42, Persons: FlowBasePersons})

	// The victim is the heaviest partition's peer by PREDICTED load
	// (the WAL must attach before any write flows) and never the
	// measuring origin: the node whose catch-up delta is largest and
	// whose partition the scan pulls the most pages from.
	victimIdx, best := 1, -1
	for i, p := range c.Peers() {
		if i == 0 {
			continue
		}
		r := keys.PrefixRange(p.Path())
		n := 0
		for _, tr := range ds.Triples {
			for _, kind := range triple.AllIndexKinds {
				if r.Contains(triple.IndexKey(tr, kind)) {
					n++
				}
			}
		}
		if n > best {
			victimIdx, best = i, n
		}
	}
	victim := c.Peers()[victimIdx]
	if _, err := wal.Open("victim", victim.Store(), wal.Options{FS: fs, Sync: wal.SyncOff}); err != nil {
		return res, fmt.Errorf("benchscen: open victim wal: %w", err)
	}
	reps := victim.Replicas()
	if len(reps) == 0 {
		return res, fmt.Errorf("benchscen: victim has no replicas")
	}
	sibIdx := -1
	for i, p := range c.Peers() {
		if p.ID() == reps[0].ID {
			sibIdx = i
			break
		}
	}
	if sibIdx < 0 {
		return res, fmt.Errorf("benchscen: victim sibling not found")
	}
	sibling := c.Peers()[sibIdx]

	c.BulkInsert(ds.Triples...)
	// Warm the routing caches (and the replica sets the read path and
	// the insert fan-out gate on) from the querying peer.
	if _, err := c.QueryFrom(0, ScanQuery); err != nil {
		return res, fmt.Errorf("benchscen: flow warmup: %w", err)
	}
	net := c.Net()
	net.Settle()

	// Crash the victim through a write burst: the missed writes are the
	// delta the rejoin must stream back in.
	c.Kill(victimIdx)
	missed := workload.Generate(workload.Options{Seed: 43, Persons: FlowMissedPersons})
	c.InsertFrom(sibIdx, missed.Triples...)
	net.Settle()

	// Measured phase. The victim restarts from its WAL — already 10x
	// slower (the throttle installs before any message flows) — and the
	// delta catch-up streams into it: receiver-paced by its advertised
	// window when flow control is on, dumped wholesale when off.
	net.ResetStats()
	idx, err := c.RejoinPeer(sibIdx, func(p *pgrid.Peer) error {
		if _, werr := wal.Open("victim", p.Store(), wal.Options{FS: fs, Sync: wal.SyncOff}); werr != nil {
			return werr
		}
		net.SetServiceDelay(p.ID(), FlowSlowDelay)
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("benchscen: flow rejoin: %w", err)
	}
	rejoined := c.Peers()[idx]
	slowID := rejoined.ID()

	// Then the sustained mix with the slow member serving: each round
	// starts a full scan (its shard envelopes queue), then fires a
	// replicated acked write batch behind it.
	plan, err := physical.CompileQuery(mustParse(ScanQuery))
	if err != nil {
		return res, fmt.Errorf("benchscen: flow plan: %w", err)
	}
	for r := 0; r < FlowRounds; r++ {
		ex := c.Engine(0).Start(plan, nil)
		batch := workload.Generate(workload.Options{
			Seed: int64(45 + r), Persons: FlowRoundPersons})
		c.BulkInsertAcked(batch.Triples...)
		ex.Wait()
	}
	net.Settle()

	after := net.Stats()
	for _, v := range after.MaxInflightBytes {
		if v > res.MaxInflightBytes {
			res.MaxInflightBytes = v
		}
	}
	res.SlowStallMS = float64(after.MaxStall[slowID].Microseconds()) / 1000
	res.Msgs = after.MessagesSent
	res.Bytes = after.BytesSent
	for _, p := range c.Peers() {
		st := p.Stats()
		res.FlowBulkSends += st.FlowBulkSends
		res.FlowStalls += st.FlowStalls
	}
	res.CatchupExact = sameFactSet(rejoined, sibling)

	// The exactness surface: a quiescent final scan must agree across
	// variants row for row (all rounds' writes applied everywhere).
	qr, err := c.QueryFrom(0, ScanQuery)
	if err != nil {
		return res, fmt.Errorf("benchscen: flow final scan: %w", err)
	}
	for _, row := range qr.Rows() {
		res.Rows = append(res.Rows, fmt.Sprint(row))
	}
	sort.Strings(res.Rows)
	res.RowCount = len(res.Rows)
	return res, nil
}

// The WAL group-commit measurement: concurrent fsync-always appenders
// against a simulated 1ms-fsync disk (an in-memory FS whose Sync
// sleeps), with and without the shared commit queue. The simulated
// disk makes the measurement host-independent: CI machines sit on
// filesystems whose fsync ranges from microseconds (tmpfs, where
// batching is unobservable) to tens of milliseconds, and the claim
// under test — one flush covers a batch — needs a flush that costs
// something.
const (
	// GroupCommitWriters/GroupCommitPerWriter size the append load.
	GroupCommitWriters   = 8
	GroupCommitPerWriter = 25
	// GroupCommitSyncDelay is the simulated disk's per-fsync cost.
	GroupCommitSyncDelay = time.Millisecond
)

// slowDiskFS wraps a wal.FS so every file fsync pays a fixed delay.
type slowDiskFS struct {
	wal.FS
	delay time.Duration
}

func (f slowDiskFS) Create(name string) (wal.File, error) {
	w, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return slowDiskFile{File: w, delay: f.delay}, nil
}

func (f slowDiskFS) Append(name string) (wal.File, error) {
	w, err := f.FS.Append(name)
	if err != nil {
		return nil, err
	}
	return slowDiskFile{File: w, delay: f.delay}, nil
}

type slowDiskFile struct {
	wal.File
	delay time.Duration
}

func (f slowDiskFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// GroupCommitResult reports writes-per-second with the commit queue on
// (group) and off (baseline), plus the fsync counts that explain the
// difference. WPS values are wall-clock and host-dependent; the
// durable gate is the ratio.
type GroupCommitResult struct {
	Writes        int     `json:"writes"`
	BaselineWPS   float64 `json:"baseline_wps"`
	GroupWPS      float64 `json:"group_wps"`
	BaselineSyncs int64   `json:"baseline_syncs"`
	GroupSyncs    int64   `json:"group_syncs"`
	Speedup       float64 `json:"speedup"`
}

// GroupCommitRun measures both fsync-always variants on the simulated
// slow disk.
func GroupCommitRun() (GroupCommitResult, error) {
	var res GroupCommitResult
	res.Writes = GroupCommitWriters * GroupCommitPerWriter
	baseline, bSyncs, err := groupCommitVariant(true)
	if err != nil {
		return res, err
	}
	grouped, gSyncs, err := groupCommitVariant(false)
	if err != nil {
		return res, err
	}
	res.BaselineWPS = float64(res.Writes) / baseline.Seconds()
	res.GroupWPS = float64(res.Writes) / grouped.Seconds()
	res.BaselineSyncs = bSyncs
	res.GroupSyncs = gSyncs
	if baseline > 0 {
		res.Speedup = float64(baseline) / float64(grouped)
	}
	return res, nil
}

func groupCommitVariant(noGroup bool) (elapsed time.Duration, syncs int64, err error) {
	db, err := wal.Open("d", store.New(), wal.Options{
		FS:   slowDiskFS{FS: wal.NewMemFS(), delay: GroupCommitSyncDelay},
		Sync: wal.SyncAlways, NoGroupCommit: noGroup,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("benchscen: open wal: %w", err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, GroupCommitWriters)
	for w := 0; w < GroupCommitWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < GroupCommitPerWriter; i++ {
				tr := triple.Triple{
					OID:  fmt.Sprintf("oid-%d-%d", w, i),
					Attr: "name",
					Val:  triple.S(fmt.Sprintf("v-%d-%d", w, i)),
				}
				e := store.Entry{
					Kind:    triple.AllIndexKinds[0],
					Key:     triple.IndexKey(tr, triple.AllIndexKinds[0]),
					Triple:  tr,
					Version: uint64(w*GroupCommitPerWriter + i + 1),
				}
				if aerr := db.LogApply(e); aerr != nil {
					errCh <- aerr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed = time.Since(start)
	syncs = db.Syncs()
	cerr := db.Close()
	select {
	case werr := <-errCh:
		return elapsed, syncs, fmt.Errorf("benchscen: wal append: %w", werr)
	default:
	}
	if cerr != nil {
		return elapsed, syncs, fmt.Errorf("benchscen: wal close: %w", cerr)
	}
	return elapsed, syncs, nil
}
