package benchscen

import (
	"fmt"
	"reflect"
	"time"

	"unistore/internal/core"
	"unistore/internal/keys"
	"unistore/internal/pgrid"
	"unistore/internal/store/wal"
	"unistore/internal/triple"
	"unistore/internal/workload"
)

// The restart-rejoin scenario: a replicated simnet cluster with one
// WAL-backed peer that is killed, misses writes, and comes back two
// ways — restart-rejoin (recover the WAL, catch up by digest delta)
// and the empty-disk fallback (full-state join sync). The benchmark's
// claim is the tentpole's: recovery cost is proportional to the writes
// MISSED, not to the store size, so the delta catch-up must stay
// cheaper than the full sync on both messages and bytes.
const (
	// DurabilityPeers/DurabilityReplicas size the cluster.
	DurabilityPeers    = 16
	DurabilityReplicas = 2
	// DurabilityBasePersons is the dataset loaded before the kill;
	// DurabilityMissedPersons the writes inserted while the victim is
	// down. Base ≫ missed is the regime that separates delta from full.
	DurabilityBasePersons   = 200
	DurabilityMissedPersons = 20
)

// DurabilityResult is one measured restart-rejoin run.
type DurabilityResult struct {
	// AckedAtKill is the victim's fact count when it died; Recovered is
	// what WAL recovery rebuilt — the two must match exactly.
	AckedAtKill int `json:"acked_at_kill"`
	Recovered   int `json:"recovered"`
	// Replayed is the number of log records recovery replayed.
	Replayed int `json:"replayed"`
	// RecoveryMS is the wall-clock WAL recovery time (reported, not
	// gated: it is host-dependent).
	RecoveryMS float64 `json:"recovery_ms"`
	// DeltaMsgs/DeltaBytes is the network cost of restart-rejoin
	// catch-up; FullMsgs/FullBytes the empty-disk full-sync baseline.
	DeltaMsgs  int `json:"delta_msgs"`
	DeltaBytes int `json:"delta_bytes"`
	FullMsgs   int `json:"full_msgs"`
	FullBytes  int `json:"full_bytes"`
	// DeltaExact/FullExact report whether each rejoined peer converged
	// to the exact fact set of its live sibling.
	DeltaExact bool `json:"delta_exact"`
	FullExact  bool `json:"full_exact"`
}

// DurabilityRun builds the cluster, runs both restart variants, and
// measures them. Deterministic apart from RecoveryMS.
func DurabilityRun() (DurabilityResult, error) {
	var res DurabilityResult
	fs := wal.NewMemFS()
	c := core.NewCluster(core.Config{
		Peers: DurabilityPeers, Replicas: DurabilityReplicas, Seed: 31,
		PageSize: ScanPageSize,
	})

	ds := workload.Generate(workload.Options{Seed: 32, Persons: DurabilityBasePersons})

	// Pick the victim by PREDICTED partition load (the WAL must attach
	// before any write flows, so the choice cannot look at stores): the
	// peer whose partition will hold the most entries — the case where
	// full-state sync is at its most expensive and the delta claim has
	// to earn its keep. The order-preserving value hash skews entries
	// across partitions, so some partition is always clearly loaded.
	victimIdx, best := 0, -1
	for i, p := range c.Peers() {
		r := keys.PrefixRange(p.Path())
		n := 0
		for _, tr := range ds.Triples {
			for _, kind := range triple.AllIndexKinds {
				if r.Contains(triple.IndexKey(tr, kind)) {
					n++
				}
			}
		}
		if n > best {
			victimIdx, best = i, n
		}
	}
	victim := c.Peers()[victimIdx]

	// The victim peer logs every mutation. SyncOff is the sim policy:
	// no fsync cost in the measured run, same-machine restart semantics
	// (exactly what the perf-baseline docs promise).
	db, err := wal.Open("victim", victim.Store(), wal.Options{FS: fs, Sync: wal.SyncOff})
	if err != nil {
		return res, fmt.Errorf("benchscen: open victim wal: %w", err)
	}
	_ = db // never closed: the kill below is a crash, not a shutdown

	reps := victim.Replicas()
	if len(reps) == 0 {
		return res, fmt.Errorf("benchscen: victim has no replicas")
	}
	sibIdx := -1
	for i, p := range c.Peers() {
		if p.ID() == reps[0].ID {
			sibIdx = i
			break
		}
	}
	if sibIdx < 0 {
		return res, fmt.Errorf("benchscen: victim sibling not found")
	}
	sibling := c.Peers()[sibIdx]

	c.BulkInsert(ds.Triples...)
	c.Net().Settle()
	res.AckedAtKill = victim.Store().FactCount()

	// kill -9: the victim drops off the network with its WAL on disk.
	c.Kill(victimIdx)
	missed := workload.Generate(workload.Options{Seed: 33, Persons: DurabilityMissedPersons})
	c.InsertFrom(sibIdx, missed.Triples...)
	c.Net().Settle()

	// Restart-rejoin: recover the WAL into a fresh peer, re-register,
	// catch up by digest delta.
	net := c.Net()
	before := net.Stats()
	var info wal.RecoveryInfo
	start := time.Now()
	idx, err := c.RejoinPeer(sibIdx, func(p *pgrid.Peer) error {
		db2, err := wal.Open("victim", p.Store(), wal.Options{FS: fs, Sync: wal.SyncOff})
		if err != nil {
			return err
		}
		info = db2.Info()
		res.Recovered = p.Store().FactCount()
		res.RecoveryMS = float64(time.Since(start).Microseconds()) / 1000
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("benchscen: restart-rejoin: %w", err)
	}
	net.Settle()
	after := net.Stats()
	res.Replayed = info.Replayed
	res.DeltaMsgs = after.MessagesSent - before.MessagesSent
	res.DeltaBytes = after.BytesSent - before.BytesSent
	res.DeltaExact = sameFactSet(c.Peers()[idx], sibling)

	// Empty-disk fallback: a blank peer joins the same group and pulls
	// the whole partition.
	before = net.Stats()
	idx2, err := c.RejoinPeer(sibIdx, nil)
	if err != nil {
		return res, fmt.Errorf("benchscen: full-sync rejoin: %w", err)
	}
	net.Settle()
	after = net.Stats()
	res.FullMsgs = after.MessagesSent - before.MessagesSent
	res.FullBytes = after.BytesSent - before.BytesSent
	res.FullExact = sameFactSet(c.Peers()[idx2], sibling)
	return res, nil
}

// sameFactSet reports whether two peers hold the identical versioned
// fact set (tombstones included).
func sameFactSet(a, b *pgrid.Peer) bool {
	return reflect.DeepEqual(a.Store().Facts(), b.Store().Facts())
}
